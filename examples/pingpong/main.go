// Ping-pong avoidance: the paper's iseed = 100 scenario (Fig. 7, Table 3).
//
// A terminal wanders along the boundary of three 1 km cells.  A naive
// strongest-BS policy flips its attachment back and forth (the ping-pong
// effect); the fuzzy controller holds the original attachment through the
// whole walk, at every speed from 0 to 50 km/h.
//
// Run with: go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

func main() {
	base := fuzzyho.PaperBoundaryConfig()
	cfg, search, err := fuzzyho.ResolveScenario(base, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boundary-hover walk: iseed %d, replica %d, cells %v\n\n",
		search.BaseSeed, search.Replica, search.Cells)

	fmt.Printf("%-24s %9s %9s\n", "algorithm", "handovers", "ping-pong")
	algos := []fuzzyho.Algorithm{
		fuzzyho.NewFuzzyAlgorithm(nil),
		fuzzyho.Hysteresis{MarginDB: 0}, // strongest-BS policy
		fuzzyho.AbsoluteThreshold{ThresholdDB: -85},
		fuzzyho.Hysteresis{MarginDB: 4},
	}
	for _, algo := range algos {
		run := cfg
		run.Algorithm = algo
		res, err := fuzzyho.RunSim(run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %9d %9d\n", algo.Name(), res.HandoverCount(), res.PingPongCount)
	}

	fmt.Println("\nfuzzy controller across the speed sweep (Table 3 protocol):")
	fmt.Printf("%-10s %9s %9s %10s\n", "speed", "handovers", "ping-pong", "max HD")
	for _, speed := range []float64{0, 10, 20, 30, 40, 50} {
		run := cfg
		run.SpeedKmh = speed
		res, err := fuzzyho.RunSim(run)
		if err != nil {
			log.Fatal(err)
		}
		maxHD := 0.0
		for _, e := range res.Epochs {
			if e.Decision.Scored && e.Decision.Score > maxHD {
				maxHD = e.Decision.Score
			}
		}
		fmt.Printf("%7.0f    %9d %9d %10.3f\n", speed, res.HandoverCount(), res.PingPongCount, maxHD)
	}
	fmt.Printf("\nevery max HD stays below the %.1f threshold: ping-pong avoided.\n",
		fuzzyho.HandoverThreshold)
}
