// QoS extension: the call-level experiment the paper's introduction
// motivates — "a good handover strategy is needed in order to balance the
// call blocking and call dropping" (§1).
//
// A 19-cell network carries Poisson call traffic; terminals move during
// calls and hand over under either the paper's fuzzy controller or the
// naive strongest-BS policy.  Because the naive policy flaps at cell
// boundaries it generates many more handover attempts, each of which can be
// dropped when the target cell is full — the fuzzy controller protects the
// dropping budget without reserving extra guard channels.
//
// Run with: go run ./examples/qos   (takes ~20 s)
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

func main() {
	base := fuzzyho.QoSConfig{
		Seed:            1,
		ChannelsPerCell: 8,
		MeanHoldMinutes: 3,
		SpeedKmh:        60,
		TickSeconds:     30,
		SimHours:        6,
	}

	fmt.Println("blocking vs load (static calls: event engine vs Erlang-B)")
	fmt.Printf("%10s %12s %12s\n", "erlangs", "measured B", "Erlang-B")
	static := base
	static.SpeedKmh = 0
	static.SimHours = 12
	for _, rate := range []float64{60, 100, 140, 180} {
		cfg := static
		cfg.ArrivalsPerCellHour = rate
		res, err := fuzzyho.RunQoS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.1f %12.4f %12.4f\n", rate*3/60, res.BlockingProb, res.ErlangBReference)
	}

	fmt.Println("\nfuzzy vs naive handover under load (60 km/h terminals)")
	fmt.Printf("%-16s %9s %9s %10s %10s %9s\n",
		"algorithm", "offered", "blocked", "handovers", "dropped", "pingpong")
	for _, mode := range []string{"fuzzy", "naive"} {
		cfg := base
		cfg.ArrivalsPerCellHour = 120
		if mode == "naive" {
			cfg.NewAlgorithm = func() fuzzyho.Algorithm { return fuzzyho.Hysteresis{MarginDB: 0} }
		}
		res, err := fuzzyho.RunQoS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9d %9d %10d %10d %9d\n",
			mode, res.Offered, res.Blocked, res.HandoverAttempts, res.Dropped, res.PingPong)
	}

	fmt.Println("\nguard-channel trade-off (fuzzy controller, 5 erlangs/cell)")
	fmt.Printf("%8s %12s %12s\n", "guard", "blocking", "dropping")
	for _, guard := range []int{0, 1, 2} {
		cfg := base
		cfg.ArrivalsPerCellHour = 100
		cfg.GuardChannels = guard
		res, err := fuzzyho.RunQoS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12.4f %12.4f\n", guard, res.BlockingProb, res.DroppingProb)
	}
}
