// Custom rulebase: build a handover controller from a rule-DSL string.
//
// The library's fuzzy engine is generic: this example defines a simplified
// two-input controller (neighbor advantage and distance) in the text DSL,
// compiles it, and compares its decisions with the paper's three-input FLC
// on the crossing scenario.
//
// Run with: go run ./examples/customrules
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

// twoInputRules is a miniature margin-style controller expressed as fuzzy
// rules: hand over when the neighbor advantage is large, earlier when far
// from the serving BS.
const twoInputRules = `
# adv = neighbor - serving [dB]; dist = distance / cell radius
IF adv IS losing  AND dist IS near THEN hd IS no
IF adv IS losing  AND dist IS far  THEN hd IS no
IF adv IS even    AND dist IS near THEN hd IS no
IF adv IS even    AND dist IS far  THEN hd IS maybe
IF adv IS winning AND dist IS near THEN hd IS maybe
IF adv IS winning AND dist IS far  THEN hd IS yes
`

func main() {
	adv, err := fuzzyho.NewVariable("adv", -20, 20,
		fuzzyho.Term{Name: "losing", MF: fuzzyho.ShoulderLeft(-20, 0)},
		fuzzyho.Term{Name: "even", MF: fuzzyho.Tri(-20, 0, 20)},
		fuzzyho.Term{Name: "winning", MF: fuzzyho.ShoulderRight(0, 20)},
	)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fuzzyho.NewVariable("dist", 0, 1.5,
		fuzzyho.Term{Name: "near", MF: fuzzyho.ShoulderLeft(0.5, 1.0)},
		fuzzyho.Term{Name: "far", MF: fuzzyho.ShoulderRight(0.5, 1.0)},
	)
	if err != nil {
		log.Fatal(err)
	}
	hd, err := fuzzyho.NewVariable("hd", 0, 1,
		fuzzyho.Term{Name: "no", MF: fuzzyho.Trap(0, 0, 0.2, 0.5)},
		fuzzyho.Term{Name: "maybe", MF: fuzzyho.Tri(0.2, 0.5, 0.8)},
		fuzzyho.Term{Name: "yes", MF: fuzzyho.Trap(0.5, 0.8, 1, 1)},
	)
	if err != nil {
		log.Fatal(err)
	}

	rules, err := fuzzyho.ParseRules(twoInputRules)
	if err != nil {
		log.Fatal(err)
	}
	system, err := fuzzyho.NewInferenceSystem(hd, rules, fuzzyho.InferenceOptions{}, adv, dist)
	if err != nil {
		log.Fatal(err)
	}

	paper := fuzzyho.NewFLC()

	fmt.Printf("%-34s %12s %12s\n", "situation (adv dB, dist, cssp, ssn)", "custom HD", "paper HD")
	cases := []struct {
		name           string
		advDB, distN   float64 // custom controller inputs
		cssp, ssn, dmb float64 // paper controller inputs
	}{
		{"mid-cell, behind", -8, 0.3, -0.5, -100, 0.3},
		{"boundary, even", 0, 0.95, -1.0, -93, 0.95},
		{"crossed, ahead", 8, 1.2, -3.5, -93.7, 1.2},
		{"deep, far ahead", 14, 1.4, -6, -90, 1.4},
	}
	for _, c := range cases {
		custom, err := system.Evaluate(map[string]float64{"adv": c.advDB, "dist": c.distN})
		if err != nil {
			log.Fatal(err)
		}
		ref, err := paper.Evaluate(c.cssp, c.ssn, c.dmb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %12.3f %12.3f\n", c.name, custom, ref)
	}

	fmt.Println("\nexplanation of the last decision (custom controller):")
	_, trace, err := system.EvaluateTrace(map[string]float64{"adv": 14, "dist": 1.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.String())
}
