// Quickstart: evaluate fuzzy handover decisions with the paper's controller.
//
// The FLC takes three measurements — the change of the serving signal
// (CSSP, dB), the strongest neighbor's signal (SSN, dB) and the normalised
// distance from the serving base station (DMB, distance / cell radius) —
// and produces a handover-decision value HD in [0, 1].  The handover path
// is taken when HD exceeds 0.7.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

func main() {
	flc := fuzzyho.NewFLC()

	scenarios := []struct {
		name           string
		cssp, ssn, dmb float64
	}{
		{"mid-cell, stable signal", -0.5, -100, 0.30},
		{"cell boundary, weak neighbor", -1.9, -102.5, 0.90},
		{"cell boundary, normal neighbor", -1.0, -93.0, 1.00},
		{"deep in neighbor cell", -3.5, -93.7, 1.20},
		{"signal collapsing, strong neighbor", -7.0, -85.0, 1.30},
		{"signal recovering (anti-ping-pong)", +8.0, -85.0, 1.20},
	}

	fmt.Printf("%-38s %8s %8s %6s  %6s  verdict\n", "scenario", "CSSP", "SSN", "DMB", "HD")
	for _, s := range scenarios {
		hd, err := flc.Evaluate(s.cssp, s.ssn, s.dmb)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "stay"
		if hd > fuzzyho.HandoverThreshold {
			verdict = "HANDOVER"
		}
		fmt.Printf("%-38s %8.1f %8.1f %6.2f  %6.3f  %s\n",
			s.name, s.cssp, s.ssn, s.dmb, hd, verdict)
	}

	// The full pipeline adds the POTLC quality gate (no handover machinery
	// while the serving signal is strong) and the PRTLC confirmation (only
	// hand over while the signal is still falling).
	ctrl := fuzzyho.NewController()
	decision, err := ctrl.Decide(fuzzyho.Report{
		ServingDB:     -98.0,
		PrevServingDB: -96.5,
		HavePrev:      true,
		CSSPdB:        -3.5,
		SSNdB:         -93.7,
		DMBNorm:       1.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull pipeline: %v\n", decision)
}
