// Comparison: fuzzy versus classic non-fuzzy handover algorithms — the
// experiment the paper names as future work (§6).
//
// Both paper scenarios are run under every algorithm, deterministic channel
// and then under correlated log-normal shadow fading (the disturbance that
// causes ping-pong in the first place).  The fuzzy controller needs no
// per-deployment margin: naive baselines either flap (small margins) or
// miss necessary handovers (large margins).
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

func main() {
	hover, _, err := fuzzyho.ResolveScenario(fuzzyho.PaperBoundaryConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}
	crossing, _, err := fuzzyho.ResolveScenario(fuzzyho.PaperCrossingConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}

	algos := func() []fuzzyho.Algorithm {
		return []fuzzyho.Algorithm{
			fuzzyho.NewFuzzyAlgorithm(nil),
			fuzzyho.AbsoluteThreshold{ThresholdDB: -85},
			fuzzyho.Hysteresis{MarginDB: 0},
			fuzzyho.Hysteresis{MarginDB: 2},
			fuzzyho.Hysteresis{MarginDB: 4},
			fuzzyho.Hysteresis{MarginDB: 8},
			fuzzyho.NewHysteresisTTT(4, 2),
			fuzzyho.DistanceBased{TriggerNorm: 1.0},
		}
	}

	fmt.Println("deterministic channel")
	fmt.Printf("%-24s | %-22s | %-22s\n", "", "boundary-hover", "crossing (3 necessary)")
	fmt.Printf("%-24s | %9s %10s | %9s %10s\n", "algorithm", "handovers", "ping-pong", "handovers", "ping-pong")
	for _, algo := range algos() {
		h := runWith(hover, algo)
		c := runWith(crossing, algo)
		fmt.Printf("%-24s | %9d %10d | %9d %10d\n",
			algo.Name(), h.HandoverCount(), h.PingPongCount, c.HandoverCount(), c.PingPongCount)
	}

	fmt.Println("\nwith correlated shadow fading (σ = 6 dB, D = 50 m), 10 replicas, crossing walk")
	fmt.Printf("%-24s %10s %10s %8s\n", "algorithm", "handovers", "ping-pong", "outage")
	for _, algo := range algos() {
		var ho, pp int
		var outage float64
		for rep := 0; rep < 10; rep++ {
			cfg := crossing
			cfg.Seed = fuzzyho.DeriveSeed(crossing.Seed, 1000+rep)
			cfg.ShadowSigmaDB = 6
			cfg.ShadowDecorrKm = 0.05
			cfg.Algorithm = algo
			res, err := fuzzyho.RunSim(cfg)
			if err != nil {
				log.Fatal(err)
			}
			ho += res.HandoverCount()
			pp += res.PingPongCount
			outage += res.OutageFraction
		}
		fmt.Printf("%-24s %10d %10d %8.3f\n", algo.Name(), ho, pp, outage/10)
	}
}

func runWith(cfg fuzzyho.SimConfig, algo fuzzyho.Algorithm) *fuzzyho.SimResult {
	cfg.Algorithm = algo
	res, err := fuzzyho.RunSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
