// Crossing scenario: the paper's iseed = 200 experiment (Fig. 8, Table 4).
//
// A terminal walks deep into neighbor cells three times; the fuzzy
// controller must execute exactly those three handovers — no more (no
// ping-pong), no fewer (no outage) — each with a decision value above 0.7.
//
// Run with: go run ./examples/crossing
package main

import (
	"fmt"
	"log"

	fuzzyho "repro"
)

func main() {
	cfg, search, err := fuzzyho.ResolveScenario(fuzzyho.PaperCrossingConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crossing walk: iseed %d, replica %d\ncells: %v\n\n",
		search.BaseSeed, search.Replica, search.Cells)

	res, err := fuzzyho.RunSim(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch-by-epoch decisions:")
	for _, e := range res.Epochs {
		mark := "    "
		if e.Executed {
			mark = " ->H"
		}
		hd := "  -  "
		if e.Decision.Scored {
			hd = fmt.Sprintf("%.3f", e.Decision.Score)
		}
		fmt.Printf("%s %5.2f km  in %v, serving %v, HD %s\n",
			mark, e.WalkedKm, e.GeoCell, e.Serving, hd)
	}

	fmt.Printf("\nhandovers executed: %d (paper: 3), ping-pong: %d\n",
		res.HandoverCount(), res.PingPongCount)
	for i, ev := range res.Events {
		fmt.Printf("  %d. %v\n", i+1, ev)
	}

	// The serving attachment follows the walk's deep cell visits.
	fmt.Printf("\nattachment sequence: %v\n", res.ServingCells)
	fmt.Printf("geometric sequence:  %v\n", res.GeoCells)
}
