package fuzzyho

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeFLCQuickstart(t *testing.T) {
	flc := NewFLC()
	// Crossing profile: must vote handover.
	hd, err := flc.Evaluate(-3.5, -93.7, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if hd <= HandoverThreshold {
		t.Errorf("crossing HD = %g, want > %g", hd, HandoverThreshold)
	}
	// Mid-cell profile: must not.
	hd, err = flc.Evaluate(-0.5, -100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hd > HandoverThreshold {
		t.Errorf("mid-cell HD = %g, want ≤ %g", hd, HandoverThreshold)
	}
}

func TestFacadeControllerPipeline(t *testing.T) {
	ctrl := NewController()
	d, err := ctrl.Decide(Report{
		ServingDB:     -98,
		PrevServingDB: -96.5,
		HavePrev:      true,
		CSSPdB:        -3.5,
		SSNdB:         -93.7,
		DMBNorm:       1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Handover || d.Stage != StageExecute {
		t.Errorf("decision = %v", d)
	}
}

func TestFacadeCustomRuleDSL(t *testing.T) {
	rb, err := ParseRules(`
		IF load IS high THEN action IS shed
		IF load IS low THEN action IS keep
	`)
	if err != nil {
		t.Fatal(err)
	}
	load, err := NewVariable("load", 0, 1,
		Term{Name: "low", MF: ShoulderLeft(0, 1)},
		Term{Name: "high", MF: ShoulderRight(0, 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	action, err := NewVariable("action", 0, 1,
		Term{Name: "keep", MF: Tri(0, 0.25, 0.5)},
		Term{Name: "shed", MF: Tri(0.5, 0.75, 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewInferenceSystem(action, rb, InferenceOptions{}, load)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := sys.Evaluate(map[string]float64{"load": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := sys.Evaluate(map[string]float64{"load": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Errorf("custom system outputs not ordered: %g vs %g", lo, hi)
	}
}

func TestFacadeSimRoundTrip(t *testing.T) {
	lattice := NewLattice(2)
	cfg := SimConfig{
		Seed:         1,
		CellRadiusKm: 2,
	}
	cfg.Walk = lineWalk(lattice)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoverCount() != 1 {
		t.Errorf("corridor handovers = %d", res.HandoverCount())
	}
}

// lineWalk builds a corridor walk via the facade types only.
func lineWalk(lattice *Lattice) MobilityModel {
	return corridorModel{to: lattice.Center(Cell{I: 2, J: -1})}
}

type corridorModel struct{ to Vec }

func (m corridorModel) Name() string { return "facade-corridor" }
func (m corridorModel) Generate(RandSource) Path {
	return Path{Points: []Vec{{}, m.to}}
}

func TestFacadeDipole(t *testing.T) {
	d := NewDipole(10)
	if d.ReceivedPowerDB(1) >= d.ReceivedPowerDB(2) == false {
		t.Error("dipole not monotone through the facade")
	}
}

func TestFacadeCSVAndPlot(t *testing.T) {
	var b strings.Builder
	s := Series{Name: "p", X: []float64{0, 1}, Y: []float64{-60, -80}}
	if err := WriteCSV(&b, "km", s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "km,p\n") {
		t.Errorf("csv = %q", b.String())
	}
	if out := LinePlot(40, 8, "x", "y", s); !strings.Contains(out, "*") {
		t.Error("plot empty")
	}
}

func TestDeriveSeedExposed(t *testing.T) {
	if DeriveSeed(100, 1) == DeriveSeed(100, 2) {
		t.Error("derived seeds collide")
	}
}

func TestFacadeFCLRoundTrip(t *testing.T) {
	src, err := WriteFCL("paper", NewFLC().System())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ParseFCL(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewFLC().Evaluate(-3.5, -93.7, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Evaluate(map[string]float64{"CSSP": -3.5, "SSN": -93.7, "DMB": 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("FCL round trip: %g vs %g", got, want)
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	data, err := MarshalSystemJSON(NewFLC().System())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := UnmarshalSystemJSON(data, InferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFLC().Evaluate(-2, -95, 1.0)
	got, err := sys.Evaluate(map[string]float64{"CSSP": -2, "SSN": -95, "DMB": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("JSON round trip: %g vs %g", got, want)
	}
}

func TestFacadeQoS(t *testing.T) {
	res, err := RunQoS(QoSConfig{Seed: 3, SimHours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Error("no calls offered")
	}
	b, err := ErlangB(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ErlangBInverse(b, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inv-4) > 1e-3 {
		t.Errorf("ErlangB inverse = %g, want 4", inv)
	}
}
