// Package fuzzyho is the public facade of the fuzzy-based handover system
// reproduction (Barolli, Xhafa, Durresi, Koyama: "A Fuzzy-based Handover
// System for Avoiding Ping-Pong Effect in Wireless Cellular Networks",
// ICPP Workshops 2008).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - the paper's fuzzy logic controller (FLC) and the POTLC → FLC → PRTLC
//     decision pipeline (Controller);
//   - the generic fuzzy-inference library it is built on (variables, rules,
//     engines, defuzzifiers, rule DSL);
//   - the cellular simulation substrate (hex lattice, dipole radio model,
//     mobility models, measurement pipeline);
//   - classic non-fuzzy baselines for comparison; and
//   - the experiment harness that regenerates every table and figure of the
//     paper's evaluation (see experiments.go and EXPERIMENTS.md).
//
// Quick start:
//
//	flc := fuzzyho.NewFLC()
//	hd, _ := flc.Evaluate(-3.5, -93.7, 1.2) // CSSP dB, SSN dB, DMB (d/R)
//	if hd > fuzzyho.HandoverThreshold {
//	    // hand over to the strongest neighbor
//	}
package fuzzyho

import (
	"repro/internal/cell"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fcl"
	"repro/internal/fuzzy"
	"repro/internal/handover"
	"repro/internal/hexgrid"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HandoverThreshold is the paper's decision threshold: handover is carried
// out when the FLC output exceeds 0.7 (§5).
const HandoverThreshold = core.DefaultHandoverThreshold

// The paper's fuzzy controller and decision pipeline.
type (
	// FLC is the paper's fuzzy logic controller (Fig. 5 variables,
	// Table 1 rules, Mamdani max–min inference).
	FLC = core.FLC
	// FLCOptions overrides FLC operators/variables/rules for ablations.
	FLCOptions = core.FLCOptions
	// Controller is the full POTLC → FLC → PRTLC pipeline of Fig. 4.
	Controller = core.Controller
	// ControllerConfig configures a Controller.
	ControllerConfig = core.ControllerConfig
	// Report is the controller's per-epoch measurement input.
	Report = core.Report
	// Decision is the controller's verdict.
	Decision = core.Decision
	// Stage identifies the pipeline stage that settled a decision.
	Stage = core.Stage
)

// Pipeline stages (re-exported from the core package).
const (
	StageQualityGate = core.StageQualityGate
	StageFLC         = core.StageFLC
	StagePRTLC       = core.StagePRTLC
	StageExecute     = core.StageExecute
)

// NewFLC returns the paper's fuzzy logic controller.
func NewFLC() *FLC { return core.NewFLC() }

// NewFLCWithOptions returns an FLC with overridden operators, variables or
// rules — the ablation entry point.
func NewFLCWithOptions(opts FLCOptions) (*FLC, error) {
	return core.NewFLCWithOptions(opts)
}

// NewController returns the paper's handover controller with defaults.
func NewController() *Controller { return core.NewController() }

// NewControllerWithConfig returns a controller with overrides.
func NewControllerWithConfig(cfg ControllerConfig) *Controller {
	return core.NewControllerWithConfig(cfg)
}

// Generic fuzzy-logic library (the FLC's substrate), for building custom
// controllers and rule bases.
type (
	// Variable is a linguistic variable.
	Variable = fuzzy.Variable
	// Term is one linguistic value of a variable.
	Term = fuzzy.Term
	// MembershipFunc maps crisp values to grades in [0, 1].
	MembershipFunc = fuzzy.MembershipFunc
	// Rule is one IF/THEN control rule.
	Rule = fuzzy.Rule
	// RuleBase is an ordered rule collection.
	RuleBase = fuzzy.RuleBase
	// InferenceOptions selects t-norms, implication and defuzzifier.
	InferenceOptions = fuzzy.Options
	// InferenceSystem is a compiled fuzzy system.
	InferenceSystem = fuzzy.System
	// InferenceTrace explains one evaluation.
	InferenceTrace = fuzzy.Trace
	// Scratch holds reusable inference buffers for the allocation-free
	// fast path (one per goroutine; see InferenceSystem.EvaluateInto).
	Scratch = fuzzy.Scratch
	// CompiledSurface is a precompiled control surface: the exact
	// segment-table kernel for grid-shaped min/max systems (the paper's
	// FLC), or a sampled interpolation lattice with a probe-reported
	// error bound otherwise.  Scratch-free, allocation-free, concurrent.
	CompiledSurface = fuzzy.CompiledSurface
	// CompileOptions tunes CompileSurface.
	CompileOptions = fuzzy.CompileOptions
)

// CompileSurface compiles an inference system's control surface; see
// fuzzy.CompileSurface.  FLC.Compile is the controller-level entry point
// and core.DefaultCompiledFLC the shared compiled paper controller.
func CompileSurface(s *InferenceSystem, opts CompileOptions) (*CompiledSurface, error) {
	return fuzzy.CompileSurface(s, opts)
}

// DefaultCompiledFLC returns the process-wide compiled instance of the
// paper's controller (sim.Config.CompiledFLC and ServeConfig.Compiled use
// it under the hood).
func DefaultCompiledFLC() (*FLC, error) { return core.DefaultCompiledFLC() }

// Membership-function constructors (re-exported).
var (
	Tri           = fuzzy.Tri
	Trap          = fuzzy.Trap
	ShoulderLeft  = fuzzy.ShoulderLeft
	ShoulderRight = fuzzy.ShoulderRight
)

// ParseRules parses a rulebase in the text DSL
// ("IF cssp IS SM AND ssn IS WK THEN hd IS LO").
func ParseRules(src string) (RuleBase, error) { return fuzzy.ParseRules(src) }

// ParseRule parses a single rule.
func ParseRule(src string) (Rule, error) { return fuzzy.ParseRule(src) }

// NewVariable constructs and validates a linguistic variable.
func NewVariable(name string, min, max float64, terms ...Term) (*Variable, error) {
	return fuzzy.NewVariable(name, min, max, terms...)
}

// NewInferenceSystem compiles a fuzzy inference system.
func NewInferenceSystem(output *Variable, rules RuleBase, opts InferenceOptions, inputs ...*Variable) (*InferenceSystem, error) {
	return fuzzy.NewSystem(output, rules, opts, inputs...)
}

// Simulation substrate.
type (
	// SimConfig describes one simulation run (zero values = Table 2).
	SimConfig = sim.Config
	// SimResult is a completed run.
	SimResult = sim.Result
	// SimEpoch is one measurement epoch with its verdict.
	SimEpoch = sim.Epoch
	// PaperTable is the Tables 3-4 structure.
	PaperTable = sim.PaperTable
	// WalkClass labels trajectories (boundary-hover / crossing).
	WalkClass = sim.WalkClass
	// ScenarioSearchResult records which sub-stream realised a scenario.
	ScenarioSearchResult = sim.ScenarioSearchResult
	// FleetPoint identifies one cell of a fleet sweep grid.
	FleetPoint = sim.FleetPoint
	// Cell is a hexagonal lattice cell label, the paper's BS(i,j).
	Cell = hexgrid.Cell
	// Vec is a planar point in km.
	Vec = hexgrid.Vec
	// Lattice is the hexagonal cell lattice.
	Lattice = hexgrid.Lattice
	// Path is a mobility trajectory.
	Path = mobility.Path
	// MobilityModel generates trajectories.
	MobilityModel = mobility.Model
	// RandSource is the randomness interface mobility models consume.
	RandSource = mobility.RandSource
	// Measurement is one epoch's view of the radio environment.
	Measurement = cell.Measurement
	// Algorithm is the handover decision interface.
	Algorithm = handover.Algorithm
	// HandoverEvent is one executed handover.
	HandoverEvent = metrics.HandoverEvent
	// Series is a named (x, y) data series for CSV/ASCII output.
	Series = trace.Series
	// Dipole is the paper's antenna/propagation model (Eqs. 3-4).
	Dipole = radio.Dipole
)

// Walk classes (re-exported).
const (
	ClassOther         = sim.ClassOther
	ClassBoundaryHover = sim.ClassBoundaryHover
	ClassCrossing      = sim.ClassCrossing
)

// RunSim executes one simulation run.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// RunFleet executes many independent simulation configs across a worker
// pool with deterministic, config-ordered results; see sim.RunFleet.
func RunFleet(cfgs []SimConfig, workers int) ([]*SimResult, error) {
	return sim.RunFleet(cfgs, workers)
}

// SweepGrid expands a labelled base config into the seed-replica × speed
// cross product for RunFleet; see sim.SweepGrid.
func SweepGrid(label string, base SimConfig, replicas int, speeds []float64) ([]SimConfig, []FleetPoint) {
	return sim.SweepGrid(label, base, replicas, speeds)
}

// ParseSpeeds parses a comma-separated speed list in km/h (the CLI sweep
// axis), rejecting malformed and negative entries.
func ParseSpeeds(csv string) ([]float64, error) { return sim.ParseSpeeds(csv) }

// PaperBoundaryConfig is the iseed = 100 scenario (Fig. 7 / Table 3).
func PaperBoundaryConfig() SimConfig { return sim.PaperBoundaryConfig() }

// PaperCrossingConfig is the iseed = 200 scenario (Fig. 8 / Table 4).
func PaperCrossingConfig() SimConfig { return sim.PaperCrossingConfig() }

// TrendDriftConfig is the SSN-trend scenario family: the crossing walk
// class under correlated shadow fading, where the TrendFuzzy fourth
// antecedent changes decisions.
func TrendDriftConfig() SimConfig { return sim.TrendDriftConfig() }

// ResolveScenario finds the sub-stream of cfg.Seed realising the paper's
// scenario for that seed; see sim.ResolveScenario.
func ResolveScenario(cfg SimConfig, maxReplicas int) (SimConfig, ScenarioSearchResult, error) {
	return sim.ResolveScenario(cfg, maxReplicas)
}

// NewLattice returns a hexagonal lattice with the given cell radius (km).
func NewLattice(radiusKm float64) *Lattice { return hexgrid.NewLattice(radiusKm) }

// NewDipole returns the paper's dipole model at the given transmit power.
func NewDipole(powerW float64) *Dipole { return radio.NewDipole(powerW) }

// Handover algorithms.
type (
	// FuzzyAlgorithm adapts the paper's controller to the simulator.
	FuzzyAlgorithm = handover.Fuzzy
	// AbsoluteThreshold is the naive RSS baseline.
	AbsoluteThreshold = handover.AbsoluteThreshold
	// Hysteresis is the handover-margin baseline.
	Hysteresis = handover.Hysteresis
	// HysteresisTTT adds a time-to-trigger to Hysteresis.
	HysteresisTTT = handover.HysteresisTTT
	// DistanceBased is the location-aided baseline.
	DistanceBased = handover.DistanceBased
	// Passive never hands over (measurement-only control).
	Passive = handover.Passive
	// SIRThreshold is the dominant-interferer-ratio baseline.
	SIRThreshold = handover.SIRThreshold
	// AdaptiveFuzzy is the speed-adaptive extension of the paper controller.
	AdaptiveFuzzy = handover.AdaptiveFuzzy
	// TrendFuzzy is the 4-input FLC variant with the SSN-trend antecedent.
	TrendFuzzy = handover.TrendFuzzy
	// BatchScorer is the optional Algorithm extension behind the serve
	// layer's columnar pipeline: it declares a FeatureSchema and scores
	// whole FeatureFrame columns at once.
	BatchScorer = handover.BatchScorer
	// FeatureSchema is an ordered, named feature set a BatchScorer
	// consumes; its hash is the cross-node compatibility contract.
	FeatureSchema = handover.FeatureSchema
	// FeatureFrame is the reusable columnar (structure-of-arrays) batch a
	// BatchScorer scores.
	FeatureFrame = handover.FeatureFrame
	// ExtValue is one named extension feature carried by a wire report's
	// "x" object.
	ExtValue = handover.ExtValue
	// TrendState is the per-terminal EWMA slope state behind the SSN-trend
	// feature.
	TrendState = handover.TrendState
	// ScoreStatus classifies one row of a BatchScorer.ScoreFrame result.
	ScoreStatus = handover.ScoreStatus
)

// ScoreFrame row statuses (re-exported).
const (
	ScoreGated          = handover.ScoreGated
	ScoreEvaluated      = handover.ScoreEvaluated
	ScoreError          = handover.ScoreError
	ScoreBelowThreshold = handover.ScoreBelowThreshold
)

// NewCompiledFuzzyAlgorithm returns the paper's controller on the shared
// compiled control surface, wrapped as an Algorithm.
func NewCompiledFuzzyAlgorithm() (*FuzzyAlgorithm, error) { return handover.NewCompiledFuzzy() }

// NewFuzzyAlgorithm wraps a controller (nil = paper defaults) as a
// simulator algorithm.
func NewFuzzyAlgorithm(ctrl *Controller) *FuzzyAlgorithm {
	return handover.NewFuzzy(ctrl)
}

// NewHysteresisTTT returns the hysteresis + time-to-trigger baseline.
func NewHysteresisTTT(marginDB float64, epochs int) *HysteresisTTT {
	return handover.NewHysteresisTTT(marginDB, epochs)
}

// NewAdaptiveFuzzy returns the speed-adaptive fuzzy controller extension.
func NewAdaptiveFuzzy() *AdaptiveFuzzy { return handover.NewAdaptiveFuzzy() }

// NewCompiledAdaptiveFuzzy returns the speed-adaptive extension on the
// process-wide compiled control surface — serve engines built with an
// AlgorithmFactory returning it decide through the columnar pipeline at
// compiled-kernel speed.
func NewCompiledAdaptiveFuzzy() (*AdaptiveFuzzy, error) { return handover.NewCompiledAdaptiveFuzzy() }

// NewTrendFuzzy returns the 4-input trend controller (CSSP, SSN, DMB plus
// the per-terminal SSN-trend antecedent) on per-decision Mamdani
// inference.
func NewTrendFuzzy() (*TrendFuzzy, error) { return handover.NewTrendFuzzy() }

// NewCompiledTrendFuzzy returns the trend controller on its process-wide
// compiled 4-axis control surface.
func NewCompiledTrendFuzzy() (*TrendFuzzy, error) { return handover.NewCompiledTrendFuzzy() }

// PaperFeatureSchema returns the paper's 3-feature schema
// (cssp, ssn, dmb) — what every fixed-pipeline algorithm consumes.
func PaperFeatureSchema() *FeatureSchema { return handover.PaperFeatureSchema() }

// TrendFeatureSchema returns the 4-feature schema (cssp, ssn, dmb,
// ssn_trend) consumed by TrendFuzzy; its ssn_trend feature is stateful.
func TrendFeatureSchema() *FeatureSchema { return handover.TrendFeatureSchema() }

// SchemaHashOf returns the feature-schema hash an algorithm serves: the
// declared schema's hash for a BatchScorer, the paper schema's hash for
// everything else.  It is what hoserve announces in Daemon.SchemaHash and
// node clients announce in their hello line.
func SchemaHashOf(a Algorithm) uint64 { return handover.SchemaHashOf(a) }

// ServeAlgorithmFactory resolves an algorithm selector ("fuzzy",
// "adaptive", "trendfuzzy") into a ServeConfig.AlgorithmFactory; a nil
// factory with nil error means the engine's default algorithm should be
// used, honoring ServeConfig.Compiled.  See handover.AlgorithmFactoryFor.
func ServeAlgorithmFactory(name string, compiled bool) (func() Algorithm, error) {
	return handover.AlgorithmFactoryFor(name, compiled)
}

// Streaming serve layer: the sharded decision engine that owns
// per-terminal state across streamed measurement reports.
type (
	// ServeEngine is the concurrent sharded handover decision engine.
	ServeEngine = serve.Engine
	// ServeConfig configures a ServeEngine.
	ServeConfig = serve.Config
	// ServeStats is a snapshot of the engine's per-shard counters.
	ServeStats = serve.Stats
	// MeasurementReport is one terminal's measurement epoch (serve ingest).
	MeasurementReport = serve.Report
	// ServeOutcome is the engine's per-report verdict.
	ServeOutcome = serve.Outcome
	// TerminalID identifies a terminal across reports.
	TerminalID = serve.TerminalID
	// LatencyRecorder accumulates concurrent latency samples (load harness).
	LatencyRecorder = serve.LatencyRecorder
	// LatencySnapshot is a point-in-time — or, via SnapshotDelta,
	// windowed — view of a LatencyRecorder.
	LatencySnapshot = serve.LatencySnapshot
	// DecisionTrace is one sampled decision with its FLC explanation
	// (ServeConfig.TraceEvery; served at /tracez).
	DecisionTrace = serve.DecisionTrace
)

// Observability layer: the dependency-free metrics registry and admin
// endpoints every serving binary exposes (see internal/obs).
type (
	// MetricsRegistry collects counters, gauges, histograms and
	// collector callbacks for export.
	MetricsRegistry = obs.Registry
	// MetricsLabel is one key=value metric label.
	MetricsLabel = obs.Label
	// MetricsPoint is one exported metric sample (the /metrics and
	// {"ctl":"stats"} payload unit).
	MetricsPoint = obs.Point
	// MetricsHistogram is the lock-free log-linear histogram shared by
	// the registry and LatencyRecorder.
	MetricsHistogram = obs.Histogram
	// ObsAdmin serves /metrics, /statusz, /healthz and /tracez.
	ObsAdmin = obs.Admin
)

// NewMetricsRegistry builds a metrics registry; base labels are attached
// to every exported point.
func NewMetricsRegistry(base ...MetricsLabel) *MetricsRegistry { return obs.NewRegistry(base...) }

// Serve-layer sentinel errors (re-exported).
var (
	ErrServeNotRunning = serve.ErrNotRunning
	ErrServeBacklogged = serve.ErrBacklogged
)

// NewServeEngine validates the configuration and builds a stopped engine;
// see serve.New.
func NewServeEngine(cfg ServeConfig) (*ServeEngine, error) { return serve.New(cfg) }

// ReplayReports tags a measurement stream (e.g. SimResult.Measurements)
// with a terminal identity for serve-engine ingest.
func ReplayReports(id TerminalID, ms []Measurement) []MeasurementReport {
	return serve.ReplayReports(id, ms)
}

// InterleaveReports merges per-terminal report streams round-robin — the
// arrival pattern of a live population.
func InterleaveReports(streams [][]MeasurementReport) []MeasurementReport {
	return serve.InterleaveReports(streams)
}

// Multi-node cluster layer: consistent-hash routing of terminals across
// N engine nodes (in-process or remote hoserve daemons over TCP), with
// per-terminal decision sequences identical to a single engine's.
type (
	// ClusterRouter is the node-routing interface (both backends).
	ClusterRouter = cluster.Router
	// ClusterStats merges the per-node counters.
	ClusterStats = cluster.Stats
	// ClusterNodeStats is one node's counter snapshot.
	ClusterNodeStats = cluster.NodeStats
	// ClusterLocalConfig configures an in-process cluster.
	ClusterLocalConfig = cluster.LocalConfig
	// ClusterTCPConfig configures a TCP cluster over hoserve daemons.
	ClusterTCPConfig = cluster.TCPConfig
	// LocalCluster is the in-process Router backend.
	LocalCluster = cluster.Local
	// TCPCluster is the wire-protocol Router backend.
	TCPCluster = cluster.TCP
	// ClusterRing is the consistent-hash ring over TerminalID.
	ClusterRing = cluster.Ring
	// ClusterBacklogError reports reports shed by a backlogged node.
	ClusterBacklogError = cluster.BacklogError
	// ServeNodeClient speaks the wire protocol to one engine node.
	ServeNodeClient = serve.NodeClient
	// ServeNodeClientConfig configures a ServeNodeClient.
	ServeNodeClientConfig = serve.NodeClientConfig
	// TerminalSnapshot is one terminal's complete decision state — the
	// migration and crash-recovery payload.
	TerminalSnapshot = serve.TerminalSnapshot
	// SnapshotEvent is one executed handover in a snapshot's ring.
	SnapshotEvent = serve.SnapshotEvent
	// ServeWireControl is one snapshot-control-plane line (hello,
	// extract, restore) interleaved with a connection's report stream.
	ServeWireControl = serve.WireControl
	// ServeFaultInjector wraps node-client dials with deterministic
	// fault knobs (delay, drop, duplicate, partition, cut).
	ServeFaultInjector = serve.FaultInjector
)

// DefaultClusterVirtualNodes is the ring's per-member virtual node count.
const DefaultClusterVirtualNodes = cluster.DefaultVirtualNodes

// NewClusterRing builds a consistent-hash ring (virtualNodes 0 selects
// the default); see cluster.NewRing.
func NewClusterRing(nodes, virtualNodes int) (*ClusterRing, error) {
	return cluster.NewRing(nodes, virtualNodes)
}

// NewClusterRingMembers builds a ring over an explicit member-ID set —
// the elastic-membership form; see cluster.NewRingMembers.
func NewClusterRingMembers(members []int, virtualNodes int) (*ClusterRing, error) {
	return cluster.NewRingMembers(members, virtualNodes)
}

// ClusterMigrationHooks returns serve.Daemon Extract/Restore/Release
// hooks that serve the two-phase snapshot control plane for an engine,
// as hoserve wires them; see cluster.MigrationHooks.
func ClusterMigrationHooks(e *ServeEngine) (
	extract func(members []int, vnodes, self int, keep bool) ([]TerminalSnapshot, error),
	restore func(snaps []TerminalSnapshot, skipLive bool) error,
	release func(members []int, vnodes, self int) (int, error),
) {
	return cluster.MigrationHooks(e)
}

// NewServeFaultInjector builds a fault-injection dialer for resilience
// tests; see serve.NewFaultInjector.
func NewServeFaultInjector() *ServeFaultInjector { return serve.NewFaultInjector() }

// NewLocalCluster builds and starts an in-process cluster router.
func NewLocalCluster(cfg ClusterLocalConfig) (*LocalCluster, error) {
	return cluster.NewLocal(cfg)
}

// DialTCPCluster connects a cluster router to remote hoserve daemons.
func DialTCPCluster(cfg ClusterTCPConfig) (*TCPCluster, error) {
	return cluster.DialTCP(cfg)
}

// DialServeNode connects a wire-protocol client to one hoserve daemon.
func DialServeNode(addr string, cfg ServeNodeClientConfig) (*ServeNodeClient, error) {
	return serve.DialNode(addr, cfg)
}

// DeriveSeed maps a (seed, replica) pair to a derived seed, the replica
// protocol used throughout the experiments.
func DeriveSeed(seed int64, replica int) int64 { return rng.DeriveSeed(seed, replica) }

// ParseFCL compiles an IEC 61131-7 Fuzzy Control Language function block
// into an inference system.
func ParseFCL(src string) (*InferenceSystem, error) { return fcl.Parse(src) }

// WriteFCL exports an inference system as FCL text.
func WriteFCL(name string, sys *InferenceSystem) (string, error) { return fcl.Write(name, sys) }

// MarshalSystemJSON serializes an inference system's structure to JSON.
var MarshalSystemJSON = fuzzy.MarshalSystem

// UnmarshalSystemJSON decodes and compiles an inference system from JSON.
var UnmarshalSystemJSON = fuzzy.UnmarshalSystem

// WriteCSV writes data series as CSV with a shared x column.
var WriteCSV = trace.WriteCSV

// LinePlot renders series as an ASCII chart.
var LinePlot = trace.LinePlot
