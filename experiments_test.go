package fuzzyho

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass is the repository's headline integration test: every
// regenerated table and figure must satisfy its DESIGN.md §4 success
// criteria.
func TestAllExperimentsPass(t *testing.T) {
	exps, err := AllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 12 {
		t.Fatalf("regenerated %d experiments, want 12", len(exps))
	}
	for _, e := range exps {
		if !e.Pass() {
			t.Errorf("%s failed:\n%s", e.ID, e.VerdictString())
		}
		if e.Text == "" {
			t.Errorf("%s has no rendered artifact", e.ID)
		}
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	exp, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Pass() {
		t.Fatalf("table 3 verdict:\n%s", exp.VerdictString())
	}
	// Six measurement columns, like the paper's three points × two epochs.
	if !strings.Contains(exp.Text, "Speed 50") || !strings.Contains(exp.Text, "System Output") {
		t.Error("table text missing speed rows")
	}
	if exp.Search == nil || exp.Search.BaseSeed != 100 {
		t.Errorf("search metadata = %+v", exp.Search)
	}
}

func TestTable4MatchesPaperShape(t *testing.T) {
	exp, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Pass() {
		t.Fatalf("table 4 verdict:\n%s", exp.VerdictString())
	}
	if exp.Search == nil || exp.Search.BaseSeed != 200 {
		t.Errorf("search metadata = %+v", exp.Search)
	}
}

func TestFiguresCarrySeries(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig11", "fig12", "fig13"} {
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(exp.Series) == 0 {
			t.Errorf("%s has no data series", id)
		}
		for _, s := range exp.Series {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", id, err)
			}
		}
		if !strings.Contains(exp.Text, "Received Power") {
			t.Errorf("%s missing axis label", id)
		}
	}
}

func TestWalkFiguresShowLayout(t *testing.T) {
	for _, id := range []string{"fig7", "fig8"} {
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"cells visited", "B=BS", ".=walk"} {
			if !strings.Contains(exp.Text, want) {
				t.Errorf("%s missing %q", id, want)
			}
		}
	}
}

func TestExperimentByIDUnknown(t *testing.T) {
	if _, err := ExperimentByID("table99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestComparisonCoversAllAlgorithms(t *testing.T) {
	exp, err := Comparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"fuzzy", "rss-threshold", "hysteresis-0dB", "hysteresis-4dB", "hysteresis-4dB-ttt2", "distance-1.00R"} {
		if !strings.Contains(exp.Text, algo) {
			t.Errorf("comparison missing %s", algo)
		}
	}
	// Both scenarios present.
	if !strings.Contains(exp.Text, "boundary-hover") || !strings.Contains(exp.Text, "crossing") {
		t.Error("comparison missing a scenario")
	}
}

func TestScenarioCacheConsistency(t *testing.T) {
	// Two calls must resolve to identical sub-streams (memoised).
	_, sr1, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, sr2, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sr1.Seed != sr2.Seed || sr1.Replica != sr2.Replica {
		t.Error("scenario cache returned different resolutions")
	}
}

func TestVerdictStringFormat(t *testing.T) {
	e := &Experiment{Checks: []Check{
		{Name: "a", Pass: true, Note: "ok"},
		{Name: "b", Pass: false, Note: "bad"},
	}}
	s := e.VerdictString()
	if !strings.Contains(s, "[PASS] a") || !strings.Contains(s, "[FAIL] b") {
		t.Errorf("verdict = %q", s)
	}
	if e.Pass() {
		t.Error("Pass() with a failing check")
	}
}
