package fuzzyho

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/handover"
	"repro/internal/hexgrid"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Experiment is one regenerated artifact of the paper's evaluation section:
// a table or a figure, with the data behind it and a pass/fail verdict
// against the DESIGN.md §4 success criteria.
type Experiment struct {
	// ID is the artifact key: "table2", "table3", "table4", "fig7" … "fig13",
	// "comparison".
	ID string
	// Title describes the artifact.
	Title string
	// Text is the rendered artifact (table text or ASCII figure).
	Text string
	// Series carries the figure data for CSV export (nil for tables).
	Series []Series
	// XLabel labels the shared x column of Series.
	XLabel string
	// Checks lists the success criteria with their outcomes.
	Checks []Check
	// Search records the scenario sub-stream used, when one was resolved.
	Search *ScenarioSearchResult
}

// Check is one success criterion with its outcome.
type Check struct {
	Name string
	Pass bool
	Note string
}

// Pass reports whether every check passed.
func (e *Experiment) Pass() bool {
	for _, c := range e.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// VerdictString renders the checks compactly.
func (e *Experiment) VerdictString() string {
	var b strings.Builder
	for _, c := range e.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s — %s\n", mark, c.Name, c.Note)
	}
	return b.String()
}

// TableSpeeds is the paper's speed sweep for Tables 3-4.
var TableSpeeds = []float64{0, 10, 20, 30, 40, 50}

// scenarioCache memoises ResolveScenario per base seed so that benches,
// tables and figures share one search.
var scenarioCache struct {
	mu sync.Mutex
	m  map[int64]scenarioEntry
}

type scenarioEntry struct {
	cfg SimConfig
	sr  ScenarioSearchResult
}

func resolvedScenario(base SimConfig) (SimConfig, ScenarioSearchResult, error) {
	scenarioCache.mu.Lock()
	defer scenarioCache.mu.Unlock()
	if scenarioCache.m == nil {
		scenarioCache.m = make(map[int64]scenarioEntry)
	}
	if e, ok := scenarioCache.m[base.Seed]; ok {
		return e.cfg, e.sr, nil
	}
	cfg, sr, err := sim.ResolveScenario(base, 0)
	if err != nil {
		return cfg, sr, err
	}
	scenarioCache.m[base.Seed] = scenarioEntry{cfg: cfg, sr: sr}
	return cfg, sr, nil
}

// Table2 renders the simulation parameter set (the paper's Table 2) as
// realised by this reproduction.
func Table2() (*Experiment, error) {
	var b strings.Builder
	rows := [][2]string{
		{"Distribution Law", "Gaussian (step length), uniform angle"},
		{"Number of Walks", "5 (iseed=100), 10 (iseed=200)"},
		{"Random Types (iseed)", "100, 200 (+ documented sub-stream replicas)"},
		{"Cell Radius", "1 km (iseed=100), 2 km (iseed=200)"},
		{"Transmission Power", fmt.Sprintf("%g W (20 W exercised in ablations)", sim.DefaultPowerW)},
		{"Frequency", "2000 MHz"},
		{"Tx Antenna Beam Tilting", "3°"},
		{"Tx Antenna Height", "40 m"},
		{"Rx Antenna Height", "1.5 m"},
		{"Average Value for a Walk", "0.6 km"},
		{"Path exponent n", "1.1"},
		{"Measurement spacing", fmt.Sprintf("%g km (one per walk leg)", sim.DefaultSampleSpacingKm)},
		{"Handover threshold", fmt.Sprintf("%g", HandoverThreshold)},
		{"POTLC quality gate", fmt.Sprintf("%g dB", core.DefaultQualityGateDB)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %s\n", r[0], r[1])
	}
	return &Experiment{
		ID:     "table2",
		Title:  "Table 2: simulation parameters",
		Text:   b.String(),
		Checks: []Check{{Name: "parameters transcribed", Pass: true, Note: "Table 2 values wired as defaults"}},
	}, nil
}

// Table3 regenerates the paper's Table 3: the boundary-hover scenario
// (iseed = 100) measured across the 0-50 km/h sweep.  Success: every output
// stays below the 0.7 threshold and the fuzzy system executes no handover
// at any speed, while the naive baseline ping-pongs on the same walk.
func Table3() (*Experiment, error) {
	cfg, sr, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	epochs := res.BoundaryTableEpochs(6)
	table, err := sim.BuildPaperTable(
		fmt.Sprintf("Table 3: iseed=%d (replica %d), boundary-hover walk %s",
			sr.BaseSeed, sr.Replica, cellsString(sr.Cells)),
		res, nil, epochs, TableSpeeds)
	if err != nil {
		return nil, err
	}

	exp := &Experiment{
		ID:     "table3",
		Title:  "Table 3: simulation results for iseed = 100 (ping-pong avoidance)",
		Text:   table.String(),
		Search: &sr,
	}
	maxOut := table.MaxOutput()
	exp.Checks = append(exp.Checks, Check{
		Name: "all outputs below threshold",
		Pass: maxOut < HandoverThreshold,
		Note: fmt.Sprintf("max output %.3f vs threshold %.2f (paper: max 0.693)", maxOut, HandoverThreshold),
	})
	handovers := 0
	for _, speed := range TableSpeeds {
		run := cfg
		run.SpeedKmh = speed
		r, err := sim.Run(run)
		if err != nil {
			return nil, err
		}
		handovers += r.HandoverCount()
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "no handover executed at any speed",
		Pass: handovers == 0,
		Note: fmt.Sprintf("%d handovers across the sweep (paper: ping-pong avoided)", handovers),
	})
	naive := cfg
	naive.Algorithm = handover.Hysteresis{MarginDB: 0}
	nr, err := sim.Run(naive)
	if err != nil {
		return nil, err
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "naive baseline ping-pongs on the same walk",
		Pass: nr.PingPongCount >= 1,
		Note: fmt.Sprintf("hysteresis-0dB: %d handovers, %d ping-pong", nr.HandoverCount(), nr.PingPongCount),
	})
	// The paper's "10 times simulations, average values" protocol: under
	// correlated shadow fading the 10-replica averaged outputs must still
	// sit below the threshold.  The averaged table carries the 95%
	// confidence interval of every cell over the shadow sub-streams, and
	// is rendered alongside the deterministic one.
	avg, err := sim.BuildAveragedPaperTable("Table 3 averaged", cfg, nil, epochs, TableSpeeds, 10, 4, 0.05)
	if err != nil {
		return nil, err
	}
	exp.Text += "\n" + avg.String()
	maxCell := avg.MaxOutputCell()
	exp.Checks = append(exp.Checks, Check{
		Name: "10-replica shadowed average below threshold",
		Pass: maxCell.OutputHD < HandoverThreshold,
		Note: fmt.Sprintf("averaged max output %.3f ± %.3f (95%% CI, σ = 4 dB)", maxCell.OutputHD, maxCell.OutputHDCI95),
	})
	exp.Checks = append(exp.Checks, Check{
		Name: "replica spread quantified",
		Pass: avg.Replicas == 10 && maxCell.OutputHDCI95 > 0,
		Note: fmt.Sprintf("95%% CIs over %d shadow sub-streams; max-output cell ± %.3f", avg.Replicas, maxCell.OutputHDCI95),
	})
	return exp, nil
}

// Table4 regenerates the paper's Table 4: the crossing scenario
// (iseed = 200).  Success: exactly 3 handovers, no ping-pong, and the
// crossing column of every measurement pair above 0.7 at 0 km/h.
func Table4() (*Experiment, error) {
	cfg, sr, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	epochs := res.CrossingTableEpochs()
	table, err := sim.BuildPaperTable(
		fmt.Sprintf("Table 4: iseed=%d (replica %d), crossing walk %s",
			sr.BaseSeed, sr.Replica, cellsString(sr.Cells)),
		res, nil, epochs, TableSpeeds)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:     "table4",
		Title:  "Table 4: simulation results for iseed = 200 (handover decision)",
		Text:   table.String(),
		Search: &sr,
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "exactly 3 handovers executed",
		Pass: res.HandoverCount() == sim.PaperCrossingHandovers,
		Note: fmt.Sprintf("%d handovers (paper: 3)", res.HandoverCount()),
	})
	exp.Checks = append(exp.Checks, Check{
		Name: "no ping-pong",
		Pass: res.PingPongCount == 0,
		Note: fmt.Sprintf("%d ping-pong returns", res.PingPongCount),
	})
	crossingsAbove := true
	var notes []string
	cells := table.Rows[0].Cells
	for i := 1; i < len(cells); i += 2 {
		notes = append(notes, fmt.Sprintf("%.3f", cells[i].OutputHD))
		if cells[i].OutputHD <= HandoverThreshold {
			crossingsAbove = false
		}
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "crossing columns above threshold at 0 km/h",
		Pass: crossingsAbove,
		Note: fmt.Sprintf("outputs %s vs 0.7 (paper: 0.730-0.745)", strings.Join(notes, ", ")),
	})
	// Replica-averaged companion with 95% CIs, mirroring Table 3: the
	// crossing decisions' FLC outputs under shadow fading, averaged over
	// the paper's 10 sub-streams.
	avg, err := sim.BuildAveragedPaperTable("Table 4 averaged", cfg, nil, epochs, TableSpeeds, 10, 4, 0.05)
	if err != nil {
		return nil, err
	}
	exp.Text += "\n" + avg.String()
	maxCell := avg.MaxOutputCell()
	exp.Checks = append(exp.Checks, Check{
		Name: "replica spread quantified",
		Pass: avg.Replicas == 10 && maxCell.OutputHDCI95 > 0,
		Note: fmt.Sprintf("95%% CIs over %d shadow sub-streams; max-output cell %.3f ± %.3f",
			avg.Replicas, maxCell.OutputHD, maxCell.OutputHDCI95),
	})
	return exp, nil
}

// Figure7 regenerates the Fig. 7 walk pattern (iseed = 100): the
// boundary-hover trajectory over the cell layout.
func Figure7() (*Experiment, error) {
	return walkFigure("fig7", PaperBoundaryConfig(),
		"Fig. 7: RW pattern for iseed = 100 (boundary hover)", ClassBoundaryHover)
}

// Figure8 regenerates the Fig. 8 walk pattern (iseed = 200): the crossing
// trajectory over the cell layout.
func Figure8() (*Experiment, error) {
	return walkFigure("fig8", PaperCrossingConfig(),
		"Fig. 8: RW pattern for iseed = 200 (crossing)", ClassCrossing)
}

func walkFigure(id string, base SimConfig, title string, wantClass WalkClass) (*Experiment, error) {
	cfg, sr, err := resolvedScenario(base)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	lattice := res.Network.Lattice()
	var centers, walkPts [][2]float64
	for _, c := range res.Network.Cells() {
		p := lattice.Center(c)
		centers = append(centers, [2]float64{p.X, p.Y})
	}
	var xs, ys []float64
	for _, p := range res.Path.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	walkPts = trace.PolylinePoints(xs, ys, 24)
	ascii := trace.ScatterPlot(72, 30,
		trace.MarkerSet{Name: "BS", Glyph: 'B', Points: centers},
		trace.MarkerSet{Name: "walk", Glyph: '.', Points: walkPts},
		trace.MarkerSet{Name: "start", Glyph: 'S', Points: walkPts[:1]},
	)
	text := fmt.Sprintf("%s\ncells visited: %s\n%s", title, cellsString(sr.Cells), ascii)
	exp := &Experiment{
		ID:     id,
		Title:  title,
		Text:   text,
		XLabel: "x [km]",
		Series: []Series{
			{Name: "walk-y(x) vertex order", X: xs, Y: ys},
		},
		Search: &sr,
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "walk class matches the paper's scenario",
		Pass: sr.Class == wantClass,
		Note: fmt.Sprintf("class %v, cells %s", sr.Class, cellsString(sr.Cells)),
	})
	return exp, nil
}

// Figure9 regenerates Fig. 9: received power from the starting (serving)
// base station along the crossing walk.
func Figure9() (*Experiment, error) {
	return powerFigure("fig9", 0, "Fig. 9: received power from the start BS along the walk (iseed = 200)")
}

// Figure10 regenerates Fig. 10: received power from the most-visited
// neighbor BS along the crossing walk.
func Figure10() (*Experiment, error) {
	return powerFigure("fig10", 1, "Fig. 10: received power from the 1st crossed BS (iseed = 200)")
}

// Figure11 regenerates Fig. 11: received power from the second crossed
// neighbor BS along the crossing walk.
func Figure11() (*Experiment, error) {
	return powerFigure("fig11", 2, "Fig. 11: received power from the 2nd crossed BS (iseed = 200)")
}

// powerFigure emits the received-power trace of one BS along the resolved
// crossing walk: which = 0 selects the start cell (the paper's BS(0,0)),
// 1 and 2 the two most-visited foreign cells (the paper's BS(-1,2) and
// BS(-2,1)).
func powerFigure(id string, which int, title string) (*Experiment, error) {
	cfg, sr, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	var target hexgrid.Cell
	if which == 0 {
		target = res.Epochs[0].GeoCell
	} else {
		foreign := res.TopForeignCells(2)
		if len(foreign) < which {
			return nil, fmt.Errorf("fuzzyho: crossing walk visited only %d foreign cells", len(foreign))
		}
		target = foreign[which-1]
	}
	series, err := res.PowerTrace(target)
	if err != nil {
		return nil, err
	}
	ascii := trace.LinePlot(76, 20, "Distance [km]", "Received Power [dB]", series)
	exp := &Experiment{
		ID:     id,
		Title:  title,
		Text:   fmt.Sprintf("%s — %s\n%s", title, series.Name, ascii),
		XLabel: "walked [km]",
		Series: []Series{series},
		Search: &sr,
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, y := range series.Y {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "power varies over the paper's dynamic range",
		Pass: maxY-minY > 8 && maxY < -55 && minY > -145,
		Note: fmt.Sprintf("range [%.1f, %.1f] dB (paper axes: -140…-60 dB)", minY, maxY),
	})
	// The serving trace must fall as the terminal leaves; the crossed-BS
	// traces must rise toward their closest approach.
	if which == 0 {
		exp.Checks = append(exp.Checks, Check{
			Name: "serving power decreases along the walk",
			Pass: series.Y[len(series.Y)-1] < series.Y[0],
			Note: fmt.Sprintf("start %.1f dB → end %.1f dB", series.Y[0], series.Y[len(series.Y)-1]),
		})
	} else {
		exp.Checks = append(exp.Checks, Check{
			Name: "neighbor power peaks above its starting level",
			Pass: maxY > series.Y[0]+5,
			Note: fmt.Sprintf("start %.1f dB, peak %.1f dB", series.Y[0], maxY),
		})
	}
	return exp, nil
}

// Figure12 regenerates Fig. 12: the three-BS power curves around the three
// measurement points of the boundary-hover walk.
func Figure12() (*Experiment, error) {
	return measurementFigure("fig12", PaperBoundaryConfig(),
		"Fig. 12: 3 measurement points for iseed = 100 (3-cell boundary)")
}

// Figure13 regenerates Fig. 13: the three-BS power curves around the
// handover points of the crossing walk.
func Figure13() (*Experiment, error) {
	return measurementFigure("fig13", PaperCrossingConfig(),
		"Fig. 13: 3 measurement points for iseed = 200 (crossings)")
}

func measurementFigure(id string, base SimConfig, title string) (*Experiment, error) {
	cfg, sr, err := resolvedScenario(base)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	// The three curves: the start cell plus the two most-visited foreign
	// cells (falling back to nearest ring-1 cells on short hover walks).
	cells := []hexgrid.Cell{res.Epochs[0].GeoCell}
	cells = append(cells, res.TopForeignCells(2)...)
	for _, c := range res.Epochs[0].GeoCell.Neighbors() {
		if len(cells) >= 3 {
			break
		}
		if c != cells[0] && (len(cells) < 2 || c != cells[1]) && res.Network.Has(c) {
			cells = append(cells, c)
		}
	}
	var series []Series
	for _, c := range cells[:3] {
		s, err := res.PowerTrace(c)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	var points []int
	if base.Seed == 100 {
		points = res.BoundaryMeasurementPoints(3, 0.5)
	} else {
		points = res.HandoverEpochs()
	}
	marker := Series{Name: "measurement points"}
	for _, idx := range points {
		marker.X = append(marker.X, res.Epochs[idx].WalkedKm)
		marker.Y = append(marker.Y, res.Epochs[idx].ServingDB)
	}
	ascii := trace.LinePlot(76, 22, "Distance [km]", "Received Power [dB]", append(series, marker)...)
	exp := &Experiment{
		ID:     id,
		Title:  title,
		Text:   fmt.Sprintf("%s\n%s", title, ascii),
		XLabel: "walked [km]",
		Series: append(series, marker),
		Search: &sr,
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "three measurement points selected",
		Pass: len(points) == 3,
		Note: fmt.Sprintf("epochs %v", points),
	})
	// At each measurement point the involved powers are close — the
	// "boundary of the 3 cells" condition (tightest for the hover case).
	maxSpread := 0.0
	for _, idx := range points {
		e := res.Epochs[idx]
		spread := math.Abs(e.ServingDB - e.NeighborDB)
		if spread > maxSpread {
			maxSpread = spread
		}
	}
	limit := 6.0
	if base.Seed != 100 {
		limit = 12.0
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "measurement points lie in the boundary region",
		Pass: maxSpread < limit,
		Note: fmt.Sprintf("max |serving − neighbor| = %.1f dB (limit %.0f)", maxSpread, limit),
	})
	return exp, nil
}

// ComparisonRow is one algorithm's outcome on one scenario.
type ComparisonRow struct {
	Scenario  string
	Algorithm string
	Handovers int
	PingPong  int
	Outage    float64
}

// Comparison runs the paper's stated future-work experiment: the fuzzy
// system against the non-fuzzy baselines on both resolved scenarios.
func Comparison() (*Experiment, error) {
	algos := func() []Algorithm {
		return []Algorithm{
			handover.NewFuzzy(nil),
			handover.AbsoluteThreshold{ThresholdDB: -85},
			handover.Hysteresis{MarginDB: 0},
			handover.Hysteresis{MarginDB: 4},
			handover.NewHysteresisTTT(4, 2),
			handover.DistanceBased{TriggerNorm: 1.0},
			handover.SIRThreshold{ThresholdDB: 3, MarginDB: 0},
			handover.NewAdaptiveFuzzy(),
			handover.Passive{},
		}
	}
	var rows []ComparisonRow
	scenarios := []struct {
		name string
		base SimConfig
	}{
		{"boundary-hover (iseed=100)", PaperBoundaryConfig()},
		{"crossing (iseed=200)", PaperCrossingConfig()},
	}
	var checks []Check
	for _, sc := range scenarios {
		cfg, _, err := resolvedScenario(sc.base)
		if err != nil {
			return nil, err
		}
		var fuzzyRow ComparisonRow
		for _, algo := range algos() {
			run := cfg
			run.Algorithm = algo
			res, err := sim.Run(run)
			if err != nil {
				return nil, err
			}
			row := ComparisonRow{
				Scenario:  sc.name,
				Algorithm: algo.Name(),
				Handovers: res.HandoverCount(),
				PingPong:  res.PingPongCount,
				Outage:    res.OutageFraction,
			}
			rows = append(rows, row)
			if row.Algorithm == "fuzzy" {
				fuzzyRow = row
			}
		}
		if strings.HasPrefix(sc.name, "boundary") {
			checks = append(checks, Check{
				Name: "fuzzy avoids ping-pong on the hover walk",
				Pass: fuzzyRow.PingPong == 0 && fuzzyRow.Handovers == 0,
				Note: fmt.Sprintf("fuzzy: %d handovers, %d ping-pong", fuzzyRow.Handovers, fuzzyRow.PingPong),
			})
		} else {
			checks = append(checks, Check{
				Name: "fuzzy executes the 3 necessary handovers",
				Pass: fuzzyRow.Handovers == 3 && fuzzyRow.PingPong == 0,
				Note: fmt.Sprintf("fuzzy: %d handovers, %d ping-pong", fuzzyRow.Handovers, fuzzyRow.PingPong),
			})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-22s %10s %9s %8s\n", "Scenario", "Algorithm", "Handovers", "PingPong", "Outage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-22s %10d %9d %8.3f\n", r.Scenario, r.Algorithm, r.Handovers, r.PingPong, r.Outage)
	}
	return &Experiment{
		ID:     "comparison",
		Title:  "Extension: fuzzy vs non-fuzzy baselines (paper §6 future work)",
		Text:   b.String(),
		Checks: checks,
	}, nil
}

// Timeliness runs the §2-motivated experiment: "a timely handover
// algorithm is one which initiates handoffs neither too early nor too
// late."  A terminal drives a straight corridor from the serving BS through
// the boundary into the neighbor cell; each algorithm's handover lag is the
// distance past the geometric boundary at which it fires.
func Timeliness() (*Experiment, error) {
	lattice := NewLattice(2)
	target := lattice.Center(Cell{I: 2, J: -1})
	boundaryKm := lattice.Spacing() / 2
	base := SimConfig{
		Seed:         1,
		CellRadiusKm: 2,
		Walk:         corridorWalk{to: target},
	}
	algos := []Algorithm{
		handover.NewFuzzy(nil),
		handover.Hysteresis{MarginDB: 0},
		handover.Hysteresis{MarginDB: 4},
		handover.Hysteresis{MarginDB: 8},
		handover.DistanceBased{TriggerNorm: 1.0},
		handover.SIRThreshold{ThresholdDB: 3, MarginDB: 0},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "corridor: BS(0,0) -> BS(2,-1), boundary at %.2f km, corridor end %.2f km\n",
		boundaryKm, 2*boundaryKm)
	fmt.Fprintf(&b, "%-22s %12s %14s\n", "algorithm", "fires at", "lag past boundary")
	var fuzzyLag float64
	fuzzyFired := false
	for _, algo := range algos {
		cfg := base
		cfg.Algorithm = algo
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		if res.HandoverCount() == 0 {
			fmt.Fprintf(&b, "%-22s %12s %14s\n", algo.Name(), "never", "-")
			continue
		}
		at := res.Events[0].WalkedKm
		lag := at - boundaryKm
		fmt.Fprintf(&b, "%-22s %9.2f km %11.2f km\n", algo.Name(), at, lag)
		if algo.Name() == "fuzzy" {
			fuzzyLag = lag
			fuzzyFired = true
		}
	}
	exp := &Experiment{
		ID:    "timeliness",
		Title: "Extension: handover timeliness on a boundary-crossing corridor (paper §2)",
		Text:  b.String(),
	}
	exp.Checks = append(exp.Checks, Check{
		Name: "fuzzy fires after the boundary but before the corridor ends",
		Pass: fuzzyFired && fuzzyLag > 0 && fuzzyLag < boundaryKm*0.9,
		Note: fmt.Sprintf("fuzzy lag %.2f km past the %.2f km boundary", fuzzyLag, boundaryKm),
	})
	return exp, nil
}

// corridorWalk is the deterministic straight-line mobility of Timeliness.
type corridorWalk struct{ to Vec }

func (c corridorWalk) Name() string { return "scripted:corridor" }
func (c corridorWalk) Generate(RandSource) Path {
	return Path{Points: []Vec{{}, c.to}}
}

// AllExperiments regenerates every table and figure in order.
func AllExperiments() ([]*Experiment, error) {
	builders := []func() (*Experiment, error){
		Table2, Figure7, Figure8, Figure9, Figure10, Figure11,
		Figure12, Figure13, Table3, Table4, Comparison, Timeliness,
	}
	out := make([]*Experiment, 0, len(builders))
	for _, build := range builders {
		exp, err := build()
		if err != nil {
			return out, err
		}
		out = append(out, exp)
	}
	return out, nil
}

// ExperimentByID regenerates a single artifact ("table3", "fig9", …).
func ExperimentByID(id string) (*Experiment, error) {
	builders := map[string]func() (*Experiment, error){
		"table2": Table2, "table3": Table3, "table4": Table4,
		"fig7": Figure7, "fig8": Figure8, "fig9": Figure9,
		"fig10": Figure10, "fig11": Figure11, "fig12": Figure12,
		"fig13": Figure13, "comparison": Comparison, "timeliness": Timeliness,
	}
	build, ok := builders[id]
	if !ok {
		return nil, fmt.Errorf("fuzzyho: unknown experiment %q", id)
	}
	return build()
}

func cellsString(cells []hexgrid.Cell) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = c.String()
	}
	return strings.Join(parts, "→")
}
