package fuzzyho

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run with `go test -bench=. -benchmem`).  Each
// BenchmarkTableN / BenchmarkFigNN target rebuilds the corresponding
// artifact end-to-end and reports its headline quantity as a custom metric,
// so a single bench run doubles as the reproduction record for
// EXPERIMENTS.md.  BenchmarkAblation* targets quantify the design choices
// called out in DESIGN.md §5; the remaining benchmarks measure the
// throughput of the hot paths (FLC inference, defuzzifiers, simulation).

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzy"
	"repro/internal/handover"
	"repro/internal/sim"
)

// benchExperiment runs one experiment builder per iteration and fails the
// bench if the artifact misses its success criteria.
func benchExperiment(b *testing.B, build func() (*Experiment, error)) *Experiment {
	b.Helper()
	var exp *Experiment
	var err error
	for i := 0; i < b.N; i++ {
		exp, err = build()
		if err != nil {
			b.Fatal(err)
		}
	}
	if !exp.Pass() {
		b.Fatalf("experiment %s failed its criteria:\n%s", exp.ID, exp.VerdictString())
	}
	return exp
}

// BenchmarkTable2Parameters regenerates the Table 2 parameter sheet.
func BenchmarkTable2Parameters(b *testing.B) {
	benchExperiment(b, Table2)
}

// BenchmarkTable3PingPongAvoidance regenerates Table 3 (iseed = 100,
// speeds 0-50 km/h).  Metric max_output must stay below 0.7.
func BenchmarkTable3PingPongAvoidance(b *testing.B) {
	exp := benchExperiment(b, Table3)
	b.ReportMetric(extractMaxOutput(b, exp), "max_output")
}

// BenchmarkTable4HandoverDecision regenerates Table 4 (iseed = 200).
// Metric handovers must equal 3.
func BenchmarkTable4HandoverDecision(b *testing.B) {
	benchExperiment(b, Table4)
	cfg, _, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunSim(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.HandoverCount()), "handovers")
	b.ReportMetric(float64(res.PingPongCount), "pingpong")
}

func extractMaxOutput(b *testing.B, exp *Experiment) float64 {
	b.Helper()
	cfg, _, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunSim(cfg)
	if err != nil {
		b.Fatal(err)
	}
	table, err := sim.BuildPaperTable("t", res, nil, res.BoundaryTableEpochs(6), TableSpeeds)
	if err != nil {
		b.Fatal(err)
	}
	return table.MaxOutput()
}

// BenchmarkFig07WalkSeed100 regenerates the Fig. 7 walk pattern.
func BenchmarkFig07WalkSeed100(b *testing.B) {
	benchExperiment(b, Figure7)
}

// BenchmarkFig08WalkSeed200 regenerates the Fig. 8 walk pattern.
func BenchmarkFig08WalkSeed200(b *testing.B) {
	benchExperiment(b, Figure8)
}

// BenchmarkFig09PowerServing regenerates the Fig. 9 serving-power trace.
func BenchmarkFig09PowerServing(b *testing.B) {
	benchExperiment(b, Figure9)
}

// BenchmarkFig10PowerNeighbor1 regenerates Fig. 10.
func BenchmarkFig10PowerNeighbor1(b *testing.B) {
	benchExperiment(b, Figure10)
}

// BenchmarkFig11PowerNeighbor2 regenerates Fig. 11.
func BenchmarkFig11PowerNeighbor2(b *testing.B) {
	benchExperiment(b, Figure11)
}

// BenchmarkFig12MeasurementPoints100 regenerates Fig. 12.
func BenchmarkFig12MeasurementPoints100(b *testing.B) {
	benchExperiment(b, Figure12)
}

// BenchmarkFig13MeasurementPoints200 regenerates Fig. 13.
func BenchmarkFig13MeasurementPoints200(b *testing.B) {
	benchExperiment(b, Figure13)
}

// BenchmarkComparisonFuzzyVsBaselines runs the §6 future-work comparison.
func BenchmarkComparisonFuzzyVsBaselines(b *testing.B) {
	benchExperiment(b, Comparison)
}

// --- Micro-benchmarks: hot paths -----------------------------------------

// BenchmarkEvaluate is the map-based inference baseline: one decision of the
// paper's FLC through fuzzy.System.Evaluate, building the input map per call
// the way a map-API caller must.  BenchmarkEvaluateFast measures the same
// decision on the positional fast path; the ratio of the two is the fast
// path's headline speedup.
func BenchmarkEvaluate(b *testing.B) {
	sys := NewFLC().System()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd, err := sys.Evaluate(map[string]float64{
			core.VarCSSP: -3.5,
			core.VarSSN:  -95 + float64(i%10),
			core.VarDMB:  1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sink += hd
	}
	if math.IsNaN(sink) {
		b.Fatal("sink NaN")
	}
}

// BenchmarkEvaluateFast measures the allocation-free positional path:
// fuzzify → 64-rule inference → height defuzzification on caller-owned
// Scratch buffers.  Must report 0 allocs/op.
func BenchmarkEvaluateFast(b *testing.B) {
	sys := NewFLC().System()
	sc := sys.NewScratch()
	xs := sc.Xs()
	xs[0], xs[2] = -3.5, 1.1
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs[1] = -95 + float64(i%10)
		hd, err := sys.EvaluateInto(sc, xs)
		if err != nil {
			b.Fatal(err)
		}
		sink += hd
	}
	if math.IsNaN(sink) {
		b.Fatal("sink NaN")
	}
}

// BenchmarkEvaluateCompiled measures one decision through the compiled
// control surface (the exact segment-table kernel for the paper's FLC):
// the same query loop as BenchmarkEvaluateFast with the Mamdani pipeline
// compiled away.  Must report 0 allocs/op; the headline is the ratio to
// BenchmarkEvaluateFast.
func BenchmarkEvaluateCompiled(b *testing.B) {
	cs, err := fuzzy.NewCompiledSurface(NewFLC().System(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if !cs.Exact() {
		b.Fatal("paper FLC did not compile to the exact kernel")
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd, err := cs.At3(-3.5, -95+float64(i%10), 1.1)
		if err != nil {
			b.Fatal(err)
		}
		sink += hd
	}
	if math.IsNaN(sink) {
		b.Fatal("sink NaN")
	}
}

// BenchmarkEvaluateCompiledBatch measures the columnar batch entry point
// the serve shards drain sub-batches through: per-decision cost with the
// call and branch overhead amortized across a 64-row column batch.
func BenchmarkEvaluateCompiledBatch(b *testing.B) {
	cs, err := fuzzy.NewCompiledSurface(NewFLC().System(), 0)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	var c0, c1, c2, dst [n]float64
	for i := 0; i < n; i++ {
		c0[i] = -6 + float64(i%13)
		c1[i] = -110 + float64(i%9)*3
		c2[i] = 0.2 + float64(i%7)*0.2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cs.EvaluateBatch3(dst[:], c0[:], c1[:], c2[:]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/decision")
}

// BenchmarkEvaluateLattice measures the interpolation-lattice fallback at
// the default resolution (forced: the paper's FLC normally takes the
// kernel) — the compiled mode operator ablations get.
func BenchmarkEvaluateLattice(b *testing.B) {
	cs, err := fuzzy.CompileSurface(NewFLC().System(), fuzzy.CompileOptions{ForceLattice: true})
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd, err := cs.At3(-3.5, -95+float64(i%10), 1.1)
		if err != nil {
			b.Fatal(err)
		}
		sink += hd
	}
	if math.IsNaN(sink) {
		b.Fatal("sink NaN")
	}
}

// BenchmarkEvaluateParallel runs the fast path on every core with one
// Scratch per goroutine — the aggregate inference throughput ceiling.
func BenchmarkEvaluateParallel(b *testing.B) {
	sys := NewFLC().System()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := sys.NewScratch()
		xs := sc.Xs()
		xs[0], xs[2] = -3.5, 1.1
		i := 0
		for pb.Next() {
			xs[1] = -95 + float64(i%10)
			if _, err := sys.EvaluateInto(sc, xs); err != nil {
				b.Error(err) // FailNow is not allowed off the benchmark goroutine
				return
			}
			i++
		}
	})
}

// --- Fleet benchmarks ------------------------------------------------------

// fleetBenchConfigs builds the scenario grid the fleet benchmarks run: both
// paper base seeds × 4 replicas × 3 speeds = 24 independent simulations.
func fleetBenchConfigs() []SimConfig {
	speeds := []float64{0, 25, 50}
	cfgs, _ := SweepGrid("boundary", PaperBoundaryConfig(), 4, speeds)
	c2, _ := SweepGrid("crossing", PaperCrossingConfig(), 4, speeds)
	return append(cfgs, c2...)
}

// benchFleet runs the grid through RunFleet with the given worker count and
// reports epochs/sec (the scale metric the ROADMAP tracks).
func benchFleet(b *testing.B, workers int) {
	cfgs := fleetBenchConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	epochs := 0
	for i := 0; i < b.N; i++ {
		results, err := RunFleet(cfgs, workers)
		if err != nil {
			b.Fatal(err)
		}
		epochs = 0
		for _, r := range results {
			epochs += len(r.Epochs)
		}
	}
	b.ReportMetric(float64(epochs*b.N)/b.Elapsed().Seconds(), "epochs/sec")
	b.ReportMetric(float64(len(cfgs)*b.N)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkFleetSequential is the single-worker fleet baseline.
func BenchmarkFleetSequential(b *testing.B) { benchFleet(b, 1) }

// BenchmarkFleetParallel8 shards the same grid across 8 workers; results
// are byte-identical to the sequential run (see sim/fleet_test.go), only
// the wall clock changes.
func BenchmarkFleetParallel8(b *testing.B) { benchFleet(b, 8) }

// BenchmarkFLCInference measures one fuzzy handover decision (fuzzify →
// 64-rule inference → height defuzzification), the per-epoch cost of the
// paper's controller.
func BenchmarkFLCInference(b *testing.B) {
	flc := NewFLC()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd, err := flc.Evaluate(-3.5, -95+float64(i%10), 1.1)
		if err != nil {
			b.Fatal(err)
		}
		sink += hd
	}
	if math.IsNaN(sink) {
		b.Fatal("sink NaN")
	}
}

// BenchmarkFLCInferenceTrace measures the explained-decision path.
func BenchmarkFLCInferenceTrace(b *testing.B) {
	flc := NewFLC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := flc.EvaluateTrace(-3.5, -95, 1.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerDecide measures the full POTLC → FLC → PRTLC pipeline.
func BenchmarkControllerDecide(b *testing.B) {
	ctrl := NewController()
	r := Report{
		ServingDB: -98, PrevServingDB: -96.5, HavePrev: true,
		CSSPdB: -3.5, SSNdB: -93.7, DMBNorm: 1.2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Decide(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationRun measures one full crossing-scenario simulation
// (walk generation, 19-cell scans, fuzzy decisions, event accounting).
func BenchmarkSimulationRun(b *testing.B) {
	cfg, _, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioSearch measures the seed-search cost for the
// boundary-hover scenario (geometric pre-filter + behavioural verify).
func BenchmarkScenarioSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.ResolveScenario(sim.PaperBoundaryConfig(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Defuzzifier micro-benchmarks ----------------------------------------

func benchDefuzzifier(b *testing.B, d fuzzy.Defuzzifier) {
	flc, err := NewFLCWithOptions(FLCOptions{Engine: fuzzy.Options{Defuzzifier: d}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flc.Evaluate(-3.5, -95, 1.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefuzzWeightedAverage measures the paper's height method.
func BenchmarkDefuzzWeightedAverage(b *testing.B) {
	benchDefuzzifier(b, fuzzy.WeightedAverage{})
}

// BenchmarkDefuzzCentroid measures numeric centroid defuzzification.
func BenchmarkDefuzzCentroid(b *testing.B) {
	benchDefuzzifier(b, fuzzy.Centroid{})
}

// BenchmarkDefuzzBisector measures bisector defuzzification.
func BenchmarkDefuzzBisector(b *testing.B) {
	benchDefuzzifier(b, fuzzy.Bisector{})
}

// --- Ablation benches (DESIGN.md §5) --------------------------------------

// ablationOutcome re-runs both paper scenarios under a modified controller
// and reports (hover handovers, crossing handovers, crossing ping-pong).
func ablationOutcome(b *testing.B, algo Algorithm) (hoverHO, crossHO, crossPP int) {
	b.Helper()
	hoverCfg, _, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		b.Fatal(err)
	}
	crossCfg, _, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		b.Fatal(err)
	}
	hoverCfg.Algorithm = algo
	crossCfg.Algorithm = algo
	hr, err := RunSim(hoverCfg)
	if err != nil {
		b.Fatal(err)
	}
	cr, err := RunSim(crossCfg)
	if err != nil {
		b.Fatal(err)
	}
	return hr.HandoverCount(), cr.HandoverCount(), cr.PingPongCount
}

// BenchmarkAblationMamdaniVsLarsen compares max–min inference (paper)
// against max–product (Larsen) on both scenarios.
func BenchmarkAblationMamdaniVsLarsen(b *testing.B) {
	larsenFLC, err := NewFLCWithOptions(FLCOptions{Engine: fuzzy.Options{
		AndNorm:     fuzzy.ProductNorm,
		Implication: fuzzy.ProductImplication,
	}})
	if err != nil {
		b.Fatal(err)
	}
	larsen := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{FLC: larsenFLC}))
	var hoverHO, crossHO int
	for i := 0; i < b.N; i++ {
		hoverHO, crossHO, _ = ablationOutcome(b, larsen)
	}
	b.ReportMetric(float64(hoverHO), "larsen_hover_handovers")
	b.ReportMetric(float64(crossHO), "larsen_cross_handovers")
}

// BenchmarkAblationCentroidDefuzzifier swaps the height defuzzifier for the
// centroid and reports the behavioural deltas.
func BenchmarkAblationCentroidDefuzzifier(b *testing.B) {
	centroidFLC, err := NewFLCWithOptions(FLCOptions{Engine: fuzzy.Options{
		Defuzzifier: fuzzy.Centroid{},
	}})
	if err != nil {
		b.Fatal(err)
	}
	algo := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{FLC: centroidFLC}))
	var hoverHO, crossHO int
	for i := 0; i < b.N; i++ {
		hoverHO, crossHO, _ = ablationOutcome(b, algo)
	}
	b.ReportMetric(float64(hoverHO), "centroid_hover_handovers")
	b.ReportMetric(float64(crossHO), "centroid_cross_handovers")
}

// BenchmarkAblationNoPRTLC disables the PRTLC confirmation stage; the
// metric quantifies how much of the ping-pong suppression the test loop
// contributes versus the FLC itself.
func BenchmarkAblationNoPRTLC(b *testing.B) {
	algo := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{DisablePRTLC: true}))
	var hoverHO, crossHO, crossPP int
	for i := 0; i < b.N; i++ {
		hoverHO, crossHO, crossPP = ablationOutcome(b, algo)
	}
	b.ReportMetric(float64(hoverHO), "noprtlc_hover_handovers")
	b.ReportMetric(float64(crossHO), "noprtlc_cross_handovers")
	b.ReportMetric(float64(crossPP), "noprtlc_cross_pingpong")
}

// BenchmarkAblationNoQualityGate disables the POTLC gate and measures the
// extra FLC evaluations it would cost (the gate exists for economy, not
// correctness).
func BenchmarkAblationNoQualityGate(b *testing.B) {
	algo := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{DisableQualityGate: true}))
	var hoverHO, crossHO int
	for i := 0; i < b.N; i++ {
		hoverHO, crossHO, _ = ablationOutcome(b, algo)
	}
	b.ReportMetric(float64(hoverHO), "nogate_hover_handovers")
	b.ReportMetric(float64(crossHO), "nogate_cross_handovers")
}

// BenchmarkAblationThresholdSweep sweeps the 0.7 decision threshold and
// reports the hover/crossing handover counts at 0.6 and 0.8, bracketing the
// paper's operating point.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.6, 0.8} {
			algo := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{Threshold: th}))
			hoverHO, crossHO, _ := ablationOutcome(b, algo)
			if i == b.N-1 {
				b.ReportMetric(float64(hoverHO), "hover_handovers_th"+thLabel(th))
				b.ReportMetric(float64(crossHO), "cross_handovers_th"+thLabel(th))
			}
		}
	}
}

func thLabel(th float64) string {
	if th == 0.6 {
		return "060"
	}
	return "080"
}

// BenchmarkAblationHysteresisMarginSweep sweeps the baseline margin to show
// the tuning sensitivity the fuzzy controller avoids: small margins
// ping-pong, large margins miss necessary handovers.
func BenchmarkAblationHysteresisMarginSweep(b *testing.B) {
	margins := []float64{0, 2, 4, 8}
	for i := 0; i < b.N; i++ {
		for _, m := range margins {
			hoverHO, crossHO, crossPP := ablationOutcome(b, handover.Hysteresis{MarginDB: m})
			if i == b.N-1 && (m == 0 || m == 8) {
				label := "0dB"
				if m == 8 {
					label = "8dB"
				}
				b.ReportMetric(float64(hoverHO), "hover_handovers_"+label)
				b.ReportMetric(float64(crossHO), "cross_handovers_"+label)
				b.ReportMetric(float64(crossPP), "cross_pingpong_"+label)
			}
		}
	}
}

// BenchmarkAblationAdaptiveThreshold evaluates the speed-adaptive extension
// (EXPERIMENTS.md: the fixed 0.7 threshold stalls at 40-50 km/h): both
// scenarios are re-run at 50 km/h under the fixed and the adaptive
// controller.  The adaptive variant must restore the crossing handovers
// without flapping on the hover walk.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	hoverCfg, _, err := resolvedScenario(PaperBoundaryConfig())
	if err != nil {
		b.Fatal(err)
	}
	crossCfg, _, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		b.Fatal(err)
	}
	var fixedCross, adaptiveCross, adaptiveHover int
	for i := 0; i < b.N; i++ {
		run := func(cfg SimConfig, algo Algorithm, speed float64) int {
			cfg.Algorithm = algo
			cfg.SpeedKmh = speed
			res, err := RunSim(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res.HandoverCount()
		}
		fixedCross = run(crossCfg, NewFuzzyAlgorithm(nil), 50)
		adaptiveCross = run(crossCfg, NewAdaptiveFuzzy(), 50)
		adaptiveHover = run(hoverCfg, NewAdaptiveFuzzy(), 50)
	}
	b.ReportMetric(float64(fixedCross), "fixed_cross_handovers_50kmh")
	b.ReportMetric(float64(adaptiveCross), "adaptive_cross_handovers_50kmh")
	b.ReportMetric(float64(adaptiveHover), "adaptive_hover_handovers_50kmh")
	if adaptiveHover != 0 {
		b.Fatalf("adaptive controller flapped on the hover walk at 50 km/h: %d", adaptiveHover)
	}
	if adaptiveCross <= fixedCross {
		b.Fatalf("adaptive (%d) did not beat fixed (%d) crossing handovers at 50 km/h",
			adaptiveCross, fixedCross)
	}
}

// BenchmarkAblationShadowing runs the crossing scenario under correlated
// log-normal shadow fading (σ = 6 dB, D = 50 m) — the disturbance the paper
// names as the root cause of ping-pong — and reports the fuzzy and naive
// ping-pong counts over 10 replicas.
func BenchmarkAblationShadowing(b *testing.B) {
	base, _, err := resolvedScenario(PaperCrossingConfig())
	if err != nil {
		b.Fatal(err)
	}
	var fuzzyPP, naivePP int
	for i := 0; i < b.N; i++ {
		fuzzyPP, naivePP = 0, 0
		for rep := 0; rep < 10; rep++ {
			cfg := base
			cfg.Seed = DeriveSeed(base.Seed, 1000+rep)
			cfg.ShadowSigmaDB = 6
			cfg.ShadowDecorrKm = 0.05
			fr, err := RunSim(cfg)
			if err != nil {
				b.Fatal(err)
			}
			fuzzyPP += fr.PingPongCount
			cfg.Algorithm = handover.Hysteresis{MarginDB: 0}
			nr, err := RunSim(cfg)
			if err != nil {
				b.Fatal(err)
			}
			naivePP += nr.PingPongCount
		}
	}
	b.ReportMetric(float64(fuzzyPP), "fuzzy_pingpong_10rep")
	b.ReportMetric(float64(naivePP), "naive_pingpong_10rep")
}

// BenchmarkAblationPartitionShift re-anchors the DMB partition ±10% and
// verifies the Table 3/4 verdicts survive — the membership-sensitivity
// check of DESIGN.md §5.
func BenchmarkAblationPartitionShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scale := range []float64{0.9, 1.1} {
			dmb := fuzzy.MustVariable(core.VarDMB, core.DmbMin, core.DmbMax,
				fuzzy.Term{Name: core.DmbNR, MF: fuzzy.ShoulderLeft(0.25*scale, 0.4*scale)},
				fuzzy.Term{Name: core.DmbNSN, MF: fuzzy.Tri(0.25*scale, 0.4*scale, 0.75*scale)},
				fuzzy.Term{Name: core.DmbNSF, MF: fuzzy.Tri(0.4*scale, 0.75*scale, 1.0*scale)},
				fuzzy.Term{Name: core.DmbFA, MF: fuzzy.ShoulderRight(0.8*scale, 1.0*scale)},
			)
			flc, err := NewFLCWithOptions(FLCOptions{DMB: dmb})
			if err != nil {
				b.Fatal(err)
			}
			algo := NewFuzzyAlgorithm(NewControllerWithConfig(ControllerConfig{FLC: flc}))
			hoverHO, crossHO, _ := ablationOutcome(b, algo)
			if i == b.N-1 {
				label := "090"
				if scale > 1 {
					label = "110"
				}
				b.ReportMetric(float64(hoverHO), "hover_handovers_dmb"+label)
				b.ReportMetric(float64(crossHO), "cross_handovers_dmb"+label)
			}
		}
	}
}
