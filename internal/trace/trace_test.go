package trace

import (
	"strings"
	"testing"
)

func TestSeriesValidate(t *testing.T) {
	ok := Series{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Series{Name: "b", X: []float64{1}, Y: []float64{}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestWriteCSVSingleSeries(t *testing.T) {
	var b strings.Builder
	s := Series{Name: "power", X: []float64{0, 1, 2}, Y: []float64{-60, -70, -80}}
	if err := WriteCSV(&b, "km", s); err != nil {
		t.Fatal(err)
	}
	want := "km,power\n0,-60\n1,-70\n2,-80\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVMergesXGrids(t *testing.T) {
	var b strings.Builder
	a := Series{Name: "a", X: []float64{0, 2}, Y: []float64{1, 2}}
	c := Series{Name: "b", X: []float64{1, 2}, Y: []float64{5, 6}}
	if err := WriteCSV(&b, "x", a, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1," {
		t.Errorf("row 0 = %q (missing cell must be empty)", lines[1])
	}
	if lines[2] != "1,,5" {
		t.Errorf("row 1 = %q", lines[2])
	}
	if lines[3] != "2,2,6" {
		t.Errorf("row 2 = %q", lines[3])
	}
}

func TestWriteCSVEscapesHeader(t *testing.T) {
	var b strings.Builder
	s := Series{Name: `BS "origin", power`, X: []float64{0}, Y: []float64{1}}
	if err := WriteCSV(&b, "x", s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"BS ""origin"", power"`) {
		t.Errorf("header not escaped: %q", b.String())
	}
}

func TestWriteCSVRejectsBadSeries(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, "x", Series{Name: "bad", X: []float64{1}, Y: nil})
	if err == nil {
		t.Error("bad series accepted")
	}
}

func TestLinePlotShape(t *testing.T) {
	s := Series{Name: "walk", X: []float64{0, 1, 2, 3}, Y: []float64{-60, -75, -90, -110}}
	out := LinePlot(60, 14, "Distance [km]", "Received Power [dB]", s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// yLabel + 12 plot rows + axis + xlabels + legend.
	if len(lines) != 1+12+1+1+1 {
		t.Fatalf("plot has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*=walk") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "Received Power [dB]") || !strings.Contains(out, "Distance [km]") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs plotted")
	}
}

func TestLinePlotMultiSeriesGlyphs(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out := LinePlot(50, 10, "x", "y", a, b)
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Errorf("legend glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Error("second series not plotted")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	if out := LinePlot(40, 10, "x", "y"); out != "(no data)\n" {
		t.Errorf("empty plot = %q", out)
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	s := Series{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}
	out := LinePlot(40, 10, "x", "y", s)
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}

func TestScatterPlotEqualAspect(t *testing.T) {
	set := MarkerSet{Name: "walk", Glyph: '.', Points: [][2]float64{{0, 0}, {1, 1}, {2, 0}}}
	out := ScatterPlot(40, 12, set)
	if !strings.Contains(out, ".=walk") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "x:[") || !strings.Contains(out, "y:[") {
		t.Error("range footer missing")
	}
	// Equal aspect: x and y spans in the footer must be equal.
	if out == "(no data)\n" {
		t.Fatal("no data")
	}
}

func TestScatterPlotLayering(t *testing.T) {
	base := MarkerSet{Name: "bs", Glyph: 'B', Points: [][2]float64{{0, 0}}}
	top := MarkerSet{Name: "ms", Glyph: 'M', Points: [][2]float64{{0, 0}}}
	out := ScatterPlot(30, 10, base, top)
	if strings.Contains(strings.Split(out, "\n")[5], "B") && !strings.Contains(out, "M") {
		t.Error("later set must overwrite earlier")
	}
	if !strings.Contains(out, "M") {
		t.Error("top marker missing")
	}
}

func TestScatterPlotEmpty(t *testing.T) {
	if out := ScatterPlot(40, 10); out != "(no data)\n" {
		t.Errorf("empty scatter = %q", out)
	}
}

func TestPolylinePoints(t *testing.T) {
	pts := PolylinePoints([]float64{0, 1}, []float64{0, 2}, 4)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[2] != [2]float64{0.5, 1} {
		t.Errorf("midpoint = %v", pts[2])
	}
	if PolylinePoints([]float64{0}, []float64{0, 1}, 2) != nil {
		t.Error("mismatched input accepted")
	}
	if got := PolylinePoints([]float64{0, 1}, []float64{0, 1}, 0); len(got) != 2 {
		t.Error("perLeg floor not applied")
	}
}
