// Package trace renders experiment artifacts: CSV series for external
// plotting and ASCII charts for terminal inspection.  Every figure of the
// paper is emitted in both forms by cmd/hofigures.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named data series of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Validate checks the series shape.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("trace: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// WriteCSV writes the series set as a CSV table with a shared x column.
// Series may have different x grids; missing cells are left empty.  The
// header is "x,<name1>,<name2>,...".
func WriteCSV(w io.Writer, xLabel string, series ...Series) error {
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	// Collect the union of x values, sorted, de-duplicated.
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	// Per-series lookup.
	lookups := make([]map[float64]float64, len(series))
	for i, s := range series {
		m := make(map[float64]float64, len(s.X))
		for j, x := range s.X {
			m[x] = s.Y[j]
		}
		lookups[i] = m
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, csvEscape(xLabel))
	for _, s := range series {
		header = append(header, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for _, x := range xs {
		row[0] = formatFloat(x)
		for i := range series {
			if y, ok := lookups[i][x]; ok {
				row[i+1] = formatFloat(y)
			} else {
				row[i+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func sortFloats(xs []float64) {
	// Insertion sort keeps the dependency footprint zero; series are small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// plotGlyphs mark successive series in ASCII charts.
var plotGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// LinePlot renders the series as an ASCII chart of the given dimensions
// (including axes).  Y grows upward; each series uses its own glyph; a
// legend line follows the chart.
func LinePlot(width, height int, xLabel, yLabel string, series ...Series) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			empty = false
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if empty {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Leave room for the y-axis labels (10 columns) and the axis itself.
	const labelW = 10
	plotW := width - labelW - 1
	plotH := height - 2
	grid := make([][]byte, plotH)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	for si, s := range series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int(float64(plotW-1) * (s.X[i] - minX) / (maxX - minX))
			r := plotH - 1 - int(float64(plotH-1)*(s.Y[i]-minY)/(maxY-minY))
			if c >= 0 && c < plotW && r >= 0 && r < plotH {
				grid[r][c] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", yLabel)
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g", maxY)
		case plotH - 1:
			label = fmt.Sprintf("%9.3g", minY)
		case plotH / 2:
			label = fmt.Sprintf("%9.3g", (minY+maxY)/2)
		}
		fmt.Fprintf(&b, "%10s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10s+%s\n", "", strings.Repeat("-", plotW))
	fmt.Fprintf(&b, "%10s %-10.3g%*s\n", "", minX, plotW-10, fmt.Sprintf("%.3g  %s", maxX, xLabel))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%10s %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// ScatterMap renders 2-D points (e.g. a walk pattern with cell centres) on
// a square-aspect ASCII canvas.  Marker sets are rendered in order, so later
// sets overwrite earlier ones at shared positions.
type MarkerSet struct {
	Name   string
	Glyph  byte
	Points [][2]float64 // (x, y)
}

// ScatterPlot renders marker sets in a width×height canvas with equal
// x/y scaling around the bounding box of all points.
func ScatterPlot(width, height int, sets ...MarkerSet) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, set := range sets {
		for _, p := range set.Points {
			empty = false
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if empty {
		return "(no data)\n"
	}
	// Equal scale: expand the smaller range; pad 5%.
	spanX, spanY := maxX-minX, maxY-minY
	span := math.Max(math.Max(spanX, spanY), 1e-9) * 1.05
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	minX, maxX = cx-span/2, cx+span/2
	minY, maxY = cy-span/2, cy+span/2

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, set := range sets {
		for _, p := range set.Points {
			c := int(float64(width-1) * (p[0] - minX) / (maxX - minX))
			r := height - 1 - int(float64(height-1)*(p[1]-minY)/(maxY-minY))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = set.Glyph
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	legend := make([]string, 0, len(sets))
	for _, set := range sets {
		legend = append(legend, fmt.Sprintf("%c=%s", set.Glyph, set.Name))
	}
	fmt.Fprintf(&b, "x:[%.2f, %.2f] y:[%.2f, %.2f]  %s\n", minX, maxX, minY, maxY, strings.Join(legend, "  "))
	return b.String()
}

// PolylinePoints densifies a polyline into per-step points for ScatterPlot.
func PolylinePoints(xs, ys []float64, perLeg int) [][2]float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil
	}
	if perLeg < 1 {
		perLeg = 1
	}
	var out [][2]float64
	out = append(out, [2]float64{xs[0], ys[0]})
	for i := 1; i < len(xs); i++ {
		for k := 1; k <= perLeg; k++ {
			t := float64(k) / float64(perLeg)
			out = append(out, [2]float64{
				xs[i-1] + t*(xs[i]-xs[i-1]),
				ys[i-1] + t*(ys[i]-ys[i-1]),
			})
		}
	}
	return out
}
