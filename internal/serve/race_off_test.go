//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build;
// allocation-regression tests skip under it (the instrumentation itself
// allocates).
const raceEnabled = false
