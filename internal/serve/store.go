package serve

// terminalStore is the shard's purpose-built replacement for a
// map[TerminalID]*terminal: an open-addressing hash table over dense
// terminal slabs, tuned for the serving loop's access pattern — lookups
// dominate, inserts happen once per terminal, deletes only on membership
// migrations (a terminal's authority moving to another node).
//
// Layout.  The index is two parallel power-of-two arrays: keys[i] holds
// the terminal ID and refs[i] a 1-based reference into the slab arena
// (0 marks an empty bucket, so the zero value needs no initialisation
// sweep and TerminalID 0 stays a valid key).  Probing is linear from the
// SplitMix64 hash of the ID — the finalizer decorrelates dense ID ranges,
// so linear probing's cache-friendliness comes without its clustering
// pathology.  Terminal state itself lives in fixed-size slabs
// ([]terminal blocks): state of terminals created together is
// cache-adjacent, and growth reallocates only the small index arrays —
// slab entries never move, so *terminal pointers handed out by acquire
// stay valid for the life of the store, which is what lets the batch
// router resolve slots once and commit against them later.
//
// Deletion uses backward-shift repair instead of tombstones: probe
// chains stay exactly as long as live occupancy warrants, so a store
// that has churned through many migrations probes like one that never
// deleted.  Freed slab slots are recycled through a free list.
//
// The store is single-writer by construction (only the owning shard
// goroutine touches it) and never shrinks its index.
type terminalStore struct {
	keys []TerminalID
	refs []uint32
	mask uint64
	// live is the number of occupied buckets (== live terminals); growAt
	// is the occupancy that triggers the next index doubling.
	live   int
	growAt int
	slabs  [][]terminal
	// nextRef is the next never-used slab slot (0-based); freeRefs holds
	// slots freed by remove, reused LIFO so churn stays cache-warm.
	nextRef  uint32
	freeRefs []uint32
}

const (
	// storeMinBuckets sizes the initial index: small enough that an
	// 8-shard engine serving a handful of terminals stays cheap, large
	// enough that typical populations skip the first few doublings.
	storeMinBuckets = 128
	// slabBits sizes the terminal slabs (1<<slabBits terminals each):
	// big enough to amortize slab allocation, small enough that a tiny
	// shard does not commit megabytes up front.
	slabBits = 9
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
)

func newTerminalStore() *terminalStore {
	return &terminalStore{
		keys: make([]TerminalID, storeMinBuckets),
		refs: make([]uint32, storeMinBuckets),
		mask: storeMinBuckets - 1,
		// 3/4 load factor keeps linear-probe runs short.
		growAt: storeMinBuckets * 3 / 4,
	}
}

// count returns the number of terminals in the store.
func (ts *terminalStore) count() int { return ts.live }

// at resolves a slab reference (0-based) to its terminal.
//
//fuzzyho:hotpath
func (ts *terminalStore) at(ref uint32) *terminal {
	return &ts.slabs[ref>>slabBits][ref&slabMask]
}

// probeStart folds the high hash bits into the probe origin: shard
// selection consumed the low bits (mix64(id) % shards), so within one
// shard those are correlated — at power-of-two shard counts every
// terminal of a shard shares its low log2(shards) bits, and probing from
// `hashed & mask` directly would start every chain on a stride-of-shards
// subset of buckets, inflating linear-probe runs by roughly the shard
// count.  (routeBatch's grouping table buckets on high bits for the same
// reason.)
//
//fuzzyho:hotpath
func (ts *terminalStore) probeStart(hashed uint64) uint64 {
	return (hashed ^ hashed>>32) & ts.mask
}

// lookup returns the terminal for id, or nil if the store has never seen
// it.  hashed is mix64(uint64(id)) — callers on the batch path already
// have it.
//
//fuzzyho:hotpath
func (ts *terminalStore) lookup(id TerminalID, hashed uint64) *terminal {
	i := ts.probeStart(hashed)
	for {
		r := ts.refs[i]
		if r == 0 {
			return nil
		}
		if ts.keys[i] == id {
			return ts.at(r - 1)
		}
		i = (i + 1) & ts.mask
	}
}

// acquire returns the terminal for id, creating it zero-valued if absent;
// created reports whether this call made it.  The returned pointer is
// stable: index growth rehashes buckets, never moves slab entries.
//
//fuzzyho:hotpath
func (ts *terminalStore) acquire(id TerminalID, hashed uint64) (t *terminal, created bool) {
	i := ts.probeStart(hashed)
	for {
		r := ts.refs[i]
		if r == 0 {
			break
		}
		if ts.keys[i] == id {
			return ts.at(r - 1), false
		}
		i = (i + 1) & ts.mask
	}
	if ts.live >= ts.growAt {
		//fuzzyho:allow index growth is amortized O(1) and stops at the population high-water mark; steady state (pinned by TestServeSteadyStateBytesPerShardCount) never takes this branch
		ts.grow()
		// Re-probe in the doubled index for the insertion bucket.
		i = ts.probeStart(hashed)
		for ts.refs[i] != 0 {
			i = (i + 1) & ts.mask
		}
	}
	var ref uint32
	if n := len(ts.freeRefs); n > 0 {
		ref = ts.freeRefs[n-1]
		ts.freeRefs = ts.freeRefs[:n-1]
	} else {
		ref = ts.nextRef
		if int(ref)>>slabBits == len(ts.slabs) {
			//fuzzyho:allow slab growth happens once per slabSize new terminals and never in steady state, where every report hits an existing slot
			ts.slabs = append(ts.slabs, make([]terminal, slabSize))
		}
		ts.nextRef++
	}
	ts.keys[i] = id
	ts.refs[i] = ref + 1
	ts.live++
	return ts.at(ref), true
}

// remove deletes id from the store, zeroing and recycling its slab slot.
// It reports whether the terminal was present.  The probe chain is
// repaired by backward shifting: every entry past the hole whose home
// bucket lies at or cyclically before the hole moves into it, so no
// tombstones accumulate and lookup never needs a "deleted" marker.
func (ts *terminalStore) remove(id TerminalID, hashed uint64) bool {
	i := ts.probeStart(hashed)
	for {
		r := ts.refs[i]
		if r == 0 {
			return false
		}
		if ts.keys[i] == id {
			break
		}
		i = (i + 1) & ts.mask
	}
	ref := ts.refs[i] - 1
	*ts.at(ref) = terminal{} // drop algorithm/state references for the GC
	ts.freeRefs = append(ts.freeRefs, ref)
	j := i
	for {
		j = (j + 1) & ts.mask
		if ts.refs[j] == 0 {
			break
		}
		k := ts.probeStart(mix64(uint64(ts.keys[j])))
		// Entry j may fill hole i only if its probe distance from home k
		// reaches at least as far as i — otherwise moving it would strand
		// it before its home and lookups would miss it.
		if (j-k)&ts.mask >= (j-i)&ts.mask {
			ts.keys[i], ts.refs[i] = ts.keys[j], ts.refs[j]
			i = j
		}
	}
	ts.keys[i] = 0
	ts.refs[i] = 0
	ts.live--
	return true
}

// forEach visits every live terminal in index-bucket order.  The visit
// function must not insert or remove (single-writer shard code never
// needs to).
func (ts *terminalStore) forEach(fn func(id TerminalID, t *terminal)) {
	for i, r := range ts.refs {
		if r != 0 {
			fn(ts.keys[i], ts.at(r-1))
		}
	}
}

// grow doubles the index and reinserts every occupied bucket.  Slab
// entries are untouched.
func (ts *terminalStore) grow() {
	oldKeys, oldRefs := ts.keys, ts.refs
	n := uint64(len(oldKeys)) * 2
	ts.keys = make([]TerminalID, n)
	ts.refs = make([]uint32, n)
	ts.mask = n - 1
	ts.growAt = int(n) * 3 / 4
	for j, r := range oldRefs {
		if r == 0 {
			continue
		}
		id := oldKeys[j]
		i := ts.probeStart(mix64(uint64(id)))
		for ts.refs[i] != 0 {
			i = (i + 1) & ts.mask
		}
		ts.keys[i] = id
		ts.refs[i] = r
	}
}
