// Package serve is the streaming handover decision engine: the long-lived
// serving layer that turns the paper's per-epoch controller into a system
// that owns per-terminal state across streamed measurement reports.
//
// The engine partitions the terminal population across shards.  Each shard
// is one goroutine that exclusively owns the state of its terminals
// (previous serving power, attachment, dwell/ping-pong history) and a
// handover.Algorithm instance driven on the allocation-free EvaluateInto
// fast path — steady-state serving performs zero heap allocations per
// decision.  Reports are routed to shards by a 64-bit hash of the terminal
// ID, so one terminal's reports are always processed in submission order by
// the same goroutine: per-terminal decision sequences are deterministic and
// identical to the single-threaded sim path for the same measurement
// stream, regardless of the shard count (see the determinism tests).
//
// Ingest is through bounded per-shard queues with explicit backpressure:
// Submit and SubmitBatch block while the owning shard's queue is full,
// TrySubmit fails fast with ErrBacklogged instead.  Per-shard counters
// (decisions, handovers, ping-pongs, queue depth) are readable at any time
// through Stats without stopping the world.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/obs"
)

// TerminalID identifies one terminal (UE) across reports.
type TerminalID uint64

// Report is one terminal's measurement epoch: the unit of ingest.
type Report struct {
	// Terminal identifies the reporting terminal.
	Terminal TerminalID
	// Meas is the epoch measurement collected by the radio side.
	Meas cell.Measurement
	// Ext carries the wire report's optional extension-feature values
	// (the "x" object), in wire order; nil for plain paper reports.
	// Schema extension features (handover.FeatureExtension) read it by
	// name during the frame gather.
	Ext []handover.ExtValue
}

// Outcome is the engine's verdict for one report, delivered to the
// OnDecision callback on the owning shard's goroutine.
type Outcome struct {
	// Terminal identifies the terminal and Seq its per-terminal report
	// index (0 for the first report the engine saw for it).
	Terminal TerminalID
	Seq      uint64
	// Decision is the algorithm's verdict; Executed reports whether the
	// engine committed the handover to the terminal's state.
	Decision handover.Decision
	Executed bool
	// PingPong flags an executed handover that closed a ping-pong pair
	// (returned to a cell left less than the configured window ago).
	PingPong bool
	// Shard is the index of the shard that served the report.
	Shard int
	// Err is the algorithm error, if any (the report then counts as a
	// no-handover epoch and Decision is the zero value).
	Err error
}

// Config configures an Engine.
type Config struct {
	// Shards is the number of state partitions (and worker goroutines).
	// 0 selects GOMAXPROCS; negative is invalid.
	Shards int
	// QueueDepth bounds each shard's ingest queue, in queued messages:
	// each Submit/TrySubmit enqueues one message of one report, each
	// SubmitBatch packs per-shard messages of up to 64 reports.  0
	// selects DefaultQueueDepth; negative is invalid.
	QueueDepth int
	// AlgorithmFactory builds the decision algorithm (nil: the paper's
	// fuzzy controller).  It is called once per shard — or once per
	// terminal when PerTerminalAlgorithms is set — and must be safe to
	// call from multiple goroutines.
	AlgorithmFactory func() handover.Algorithm
	// PerTerminalAlgorithms gives every terminal its own algorithm
	// instance instead of sharing one per shard.  Required for
	// algorithms with cross-epoch state (e.g. HysteresisTTT's streak
	// counter); the paper's fuzzy controller is stateless across epochs
	// and serves all of a shard's terminals from one instance.
	PerTerminalAlgorithms bool
	// Compiled serves decisions from the compiled control surface: the
	// default fuzzy controller is built around the process-wide compiled
	// kernel (core.DefaultCompiledFLC) instead of per-decision Mamdani
	// inference.  Requires the default algorithm (AlgorithmFactory nil).
	Compiled bool
	// PingPongWindowKm is the walked-distance window of the ping-pong
	// accounting (0: DefaultPingPongWindowKm).
	PingPongWindowKm float64
	// OnDecision, when non-nil, receives every outcome on the owning
	// shard's goroutine.  A blocking callback stalls that shard and —
	// through the bounded queue — eventually the submitters.
	OnDecision func(Outcome)
	// Metrics, when non-nil, registers the engine's telemetry in the
	// registry: per-stage histograms (queue wait, kernel, service,
	// snapshot/restore) plus a collector exporting the live counters
	// Stats() reads.  The steady-state hot path stays allocation-free
	// with metrics enabled (pinned by TestMetricsSteadyStateAllocs); the
	// per-decision cost is a few clock reads per sub-batch.
	Metrics *obs.Registry
	// MetricsLabels are attached to every metric this engine registers —
	// how a multi-engine process (hocluster -local) tells nodes apart.
	MetricsLabels []obs.Label
	// TraceEvery samples every Nth decision per shard into the decision
	// trace ring served at /tracez (0: tracing off).  Sampled captures
	// re-run the FLC for its full inference trace and may allocate;
	// steady-state decisions in between are untouched.
	TraceEvery int
	// TraceBuffer bounds the trace ring (0: DefaultTraceBuffer).
	TraceBuffer int
}

// Defaults.
const (
	// DefaultQueueDepth is the per-shard ingest queue bound.
	DefaultQueueDepth = 1024
	// DefaultPingPongWindowKm matches the simulator's detector window.
	DefaultPingPongWindowKm = 1.0
)

// Engine lifecycle errors.
var (
	// ErrNotRunning is returned by Submit/SubmitBatch/TrySubmit before
	// Start and after Stop.
	ErrNotRunning = errors.New("serve: engine not running")
	// ErrBacklogged is returned by TrySubmit when the owning shard's
	// queue is full.
	ErrBacklogged = errors.New("serve: shard queue full")
)

// engine lifecycle states.
const (
	stateIdle = iota
	stateRunning
	stateStopped
)

// maxSubBatch caps the reports packed into one queued sub-batch: large
// enough to amortize the channel operation across many decisions, small
// enough to keep queueing granularity (and TrySubmit backpressure
// resolution) fine.
const maxSubBatch = 64

// Sub-batch buffers cycle producer → queue → shard → per-shard free list
// (a plain buffered channel rather than a sync.Pool), so steady-state
// recycling is deterministic and immune to GC pool clearing.
//
// The only allocation this scheme performs after warm-up is population
// growth: a queue of depth D can hold D sub-batches, and those buffers
// are built lazily on first use, so an engine whose queues have filled
// once owns shards × (depth+16) buffers and never allocates again (pinned
// per shard count by TestServeSteadyStateBytesPerShardCount).  This
// population build is what BenchmarkServeShards used to report as per-op
// bytes "growing" with the shard count — ~2100 × 7 KiB buffers per shard
// amortized over a b.N that did not scale with the queue volume; the
// bench now warms until the population is complete and measures true
// steady state.

// getBuf takes an empty sub-batch buffer from the shard's free list,
// growing the population when the list is empty.
func (s *shard) getBuf() *[]Report {
	select {
	case b := <-s.free:
		return b
	default:
		b := make([]Report, 0, maxSubBatch)
		return &b
	}
}

// putBuf returns a drained buffer to the shard's free list.
//
//fuzzyho:hotpath
func (s *shard) putBuf(b *[]Report) {
	*b = (*b)[:0]
	select {
	case s.free <- b:
	default: // free list full: let the GC take the surplus
	}
}

// Engine is the sharded streaming decision engine.  Construct with New,
// then Start, Submit/SubmitBatch from any number of goroutines, and Stop
// (which drains the queues) when done.  An Engine cannot be restarted.
type Engine struct {
	shards []*shard
	// perTerminal mirrors Config.PerTerminalAlgorithms: snapshot APIs are
	// refused in that mode (algorithm-internal state is not capturable).
	perTerminal bool
	// staging recycles the per-call shard→sub-batch scatter tables of
	// SubmitBatch on a bounded free list (same GC-immunity rationale as
	// bufPool).
	staging chan []*[]Report
	// metrics/traces are the optional telemetry surfaces (Config.Metrics
	// / Config.TraceEvery); epoch is the monotonic base the queue-wait
	// stamps are taken against.
	metrics *engineMetrics
	traces  *traceRing
	epoch   time.Time
	// schemaHash identifies the scoring algorithm's feature schema (see
	// SchemaHash).
	schemaHash uint64

	// mu serializes lifecycle transitions against submissions: Submit
	// holds the read side across the queue send so Stop can only close
	// the queues once no send is in flight.
	mu    sync.RWMutex
	state int
	wg    sync.WaitGroup
}

// New validates the configuration and builds a stopped engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: shard count %d must be non-negative (0 selects GOMAXPROCS)", cfg.Shards)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: queue depth %d must be non-negative (0 selects the default %d)", cfg.QueueDepth, DefaultQueueDepth)
	}
	if cfg.PingPongWindowKm < 0 {
		return nil, fmt.Errorf("serve: ping-pong window %g km must be non-negative", cfg.PingPongWindowKm)
	}
	if cfg.TraceEvery < 0 {
		return nil, fmt.Errorf("serve: trace sampling interval %d must be non-negative (0 disables tracing)", cfg.TraceEvery)
	}
	if cfg.TraceBuffer < 0 {
		return nil, fmt.Errorf("serve: trace buffer %d must be non-negative (0 selects the default %d)", cfg.TraceBuffer, DefaultTraceBuffer)
	}
	nshards := cfg.Shards
	if nshards == 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	window := cfg.PingPongWindowKm
	if window == 0 {
		window = DefaultPingPongWindowKm
	}
	factory := cfg.AlgorithmFactory
	if factory == nil {
		if cfg.Compiled {
			if _, err := handover.NewCompiledFuzzy(); err != nil {
				return nil, fmt.Errorf("serve: compiled control surface: %w", err)
			}
			factory = func() handover.Algorithm {
				f, _ := handover.NewCompiledFuzzy() // compile already succeeded above
				return f
			}
		} else {
			factory = func() handover.Algorithm { return handover.NewFuzzy(nil) }
		}
	} else if cfg.Compiled {
		return nil, fmt.Errorf("serve: Compiled applies to the default algorithm only; compile inside the custom AlgorithmFactory instead")
	}
	e := &Engine{
		shards:      make([]*shard, nshards),
		perTerminal: cfg.PerTerminalAlgorithms,
		staging:     make(chan []*[]Report, 2*nshards+8),
		epoch:       time.Now(),
	}
	if cfg.Metrics != nil {
		e.metrics = newEngineMetrics(cfg.Metrics, cfg.MetricsLabels)
		e.registerCollector(cfg.Metrics, cfg.MetricsLabels)
	}
	if cfg.TraceEvery > 0 {
		bufSize := cfg.TraceBuffer
		if bufSize == 0 {
			bufSize = DefaultTraceBuffer
		}
		e.traces = newTraceRing(bufSize)
	}
	for i := range e.shards {
		s := &shard{
			id:         i,
			in:         make(chan shardMsg, depth),
			free:       make(chan *[]Report, depth+16),
			store:      newTerminalStore(),
			window:     window,
			onDecision: cfg.OnDecision,
			metrics:    e.metrics,
			epoch:      e.epoch,
			traceEvery: cfg.TraceEvery,
			traces:     e.traces,
		}
		if cfg.PerTerminalAlgorithms {
			s.newAlgo = factory
		} else {
			s.algo = factory()
			s.algo.Reset()
			// The columnar batch pipeline engages when the shared
			// algorithm can score whole sub-batches (the paper's fuzzy
			// controller, exact or compiled, and the schema extensions).
			if bs, ok := s.algo.(handover.BatchScorer); ok {
				s.scorer = bs
				s.stateful = bs.Schema().Stateful()
				s.cols = newBatchCols(bs.Schema())
			}
		}
		e.shards[i] = s
	}
	// The engine's schema hash is what cluster peers compare in the hello
	// exchange: algorithms that don't declare a schema score the paper's
	// three wire antecedents, so they interoperate under the paper hash.
	e.schemaHash = handover.PaperFeatureSchema().Hash()
	if cfg.PerTerminalAlgorithms {
		if bs, ok := factory().(handover.BatchScorer); ok {
			e.schemaHash = bs.Schema().Hash()
		}
	} else if e.shards[0].scorer != nil {
		e.schemaHash = e.shards[0].scorer.Schema().Hash()
	}
	return e, nil
}

// SchemaHash identifies the feature schema this engine's decisions
// consume (handover.FeatureSchema.Hash of the scoring algorithm's
// schema; the paper schema's hash for schema-less algorithms).  Cluster
// peers exchange it in the hello control line and refuse mismatched
// nodes, so a mixed-schema cluster fails fast instead of mis-scoring.
func (e *Engine) SchemaHash() uint64 { return e.schemaHash }

// NumShards returns the engine's shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Start launches the shard goroutines.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateIdle {
		return ErrNotRunning
	}
	e.state = stateRunning
	for _, s := range e.shards {
		e.wg.Add(1)
		go func(s *shard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
	return nil
}

// Stop drains the queues — every report accepted before Stop is decided —
// and joins the shard goroutines.  Submissions concurrent with Stop either
// complete before the queues close or fail with ErrNotRunning.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if e.state != stateRunning {
		e.mu.Unlock()
		return ErrNotRunning
	}
	e.state = stateStopped
	for _, s := range e.shards {
		close(s.in)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed hash that
// decouples shard assignment from dense terminal-ID patterns.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashTerminal exposes the engine's terminal hash (the SplitMix64
// finalizer) so higher routing layers — the cluster's consistent-hash
// ring — partition terminals from the same hash family as the shard
// store.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func HashTerminal(id TerminalID) uint64 { return mix64(uint64(id)) }

// ShardOf returns the index of the shard owning the terminal.
func (e *Engine) ShardOf(id TerminalID) int {
	return int(mix64(uint64(id)) % uint64(len(e.shards)))
}

// send accounts and enqueues one filled sub-batch, blocking while the
// shard's queue is full.
func (e *Engine) send(s *shard, buf *[]Report) {
	s.submitted.Add(uint64(len(*buf)))
	msg := shardMsg{batch: buf}
	if s.metrics != nil {
		msg.enq = int64(time.Since(s.epoch))
	}
	s.in <- msg
}

// Submit enqueues one report, blocking while the owning shard's queue is
// full (backpressure).  It fails with ErrNotRunning before Start or after
// Stop.
func (e *Engine) Submit(r Report) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.state != stateRunning {
		return ErrNotRunning
	}
	s := e.shards[e.ShardOf(r.Terminal)]
	buf := s.getBuf()
	*buf = append(*buf, r)
	e.send(s, buf)
	return nil
}

// SubmitBatch enqueues a batch of reports, blocking on full shard queues
// like Submit.  Reports are scattered into per-shard sub-batches of up to
// maxSubBatch — one channel operation amortized over up to 64 decisions —
// preserving each terminal's in-batch order; the steady-state path
// performs no heap allocations.
func (e *Engine) SubmitBatch(rs []Report) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.state != stateRunning {
		return ErrNotRunning
	}
	var staging []*[]Report
	select {
	case staging = <-e.staging:
	default:
		staging = make([]*[]Report, len(e.shards))
	}
	for i := range rs {
		r := &rs[i] // by reference: a Report is ~112 bytes, copy it once (into the sub-batch)
		idx := e.ShardOf(r.Terminal)
		buf := staging[idx]
		if buf == nil {
			buf = e.shards[idx].getBuf()
			staging[idx] = buf
		}
		*buf = append(*buf, *r)
		if len(*buf) == maxSubBatch {
			staging[idx] = nil
			e.send(e.shards[idx], buf)
		}
	}
	for idx, buf := range staging {
		if buf != nil {
			staging[idx] = nil
			e.send(e.shards[idx], buf)
		}
	}
	select {
	case e.staging <- staging:
	default: // free list full: let the GC take the surplus
	}
	return nil
}

// TrySubmit enqueues one report without blocking: a full shard queue fails
// fast with ErrBacklogged so the caller can shed or retry on its own terms.
func (e *Engine) TrySubmit(r Report) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.state != stateRunning {
		return ErrNotRunning
	}
	s := e.shards[e.ShardOf(r.Terminal)]
	buf := s.getBuf()
	*buf = append(*buf, r)
	msg := shardMsg{batch: buf}
	if s.metrics != nil {
		msg.enq = int64(time.Since(s.epoch))
	}
	// Account before the enqueue, as send does: once the report is in the
	// queue the shard may decide it immediately, and a submitted counter
	// that lags the send lets Stats/Flush observe processed > submitted.
	s.submitted.Add(1)
	select {
	case s.in <- msg:
		return nil
	default:
		s.submitted.Add(^uint64(0)) // roll back the optimistic accounting
		s.putBuf(buf)               // recycle: the buffer never reached the queue
		return ErrBacklogged
	}
}

// Flush blocks until every report submitted before the call has been
// decided.  It does not prevent concurrent submitters from adding more.
func (e *Engine) Flush() {
	for _, s := range e.shards {
		target := s.submitted.Load()
		for i := 0; s.processed.Load() < target; i++ {
			// The target may include a TrySubmit that lost its enqueue
			// race and rolled back; chase submitted downward so Flush
			// never waits on a report that was never queued.
			if cur := s.submitted.Load(); cur < target {
				target = cur
			}
			if i < 256 {
				runtime.Gosched()
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

// ShardStats is one shard's counter snapshot.
type ShardStats struct {
	// Shard is the shard index (-1 in aggregated totals).
	Shard int
	// Terminals is the number of distinct terminals seen.
	Terminals uint64
	// Decisions counts processed reports; Handovers the executed
	// handovers among them; PingPongs the flagged returns; Errors the
	// reports whose algorithm evaluation failed.
	Decisions uint64
	Handovers uint64
	PingPongs uint64
	Errors    uint64
	// QueueDepth is the instantaneous ingest-queue length in queued
	// messages (sub-batches), not reports.
	QueueDepth int
}

// Stats is a point-in-time snapshot of every shard's counters.
type Stats struct {
	Shards []ShardStats
}

// Stats snapshots the per-shard counters.  Counters are read atomically
// per field; a snapshot taken while shards are busy is consistent per
// counter, not across counters.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		st.Shards[i] = ShardStats{
			Shard:      i,
			Terminals:  s.nTerminals.Load(),
			Decisions:  s.processed.Load(),
			Handovers:  s.handovers.Load(),
			PingPongs:  s.pingpongs.Load(),
			Errors:     s.errors.Load(),
			QueueDepth: len(s.in),
		}
	}
	return st
}

// Totals aggregates the per-shard counters (Shard is -1).
func (st Stats) Totals() ShardStats {
	t := ShardStats{Shard: -1}
	for _, s := range st.Shards {
		t.Terminals += s.Terminals
		t.Decisions += s.Decisions
		t.Handovers += s.Handovers
		t.PingPongs += s.PingPongs
		t.Errors += s.Errors
		t.QueueDepth += s.QueueDepth
	}
	return t
}

// String implements fmt.Stringer.
func (s ShardStats) String() string {
	return fmt.Sprintf("terminals=%d decisions=%d handovers=%d pingpong=%d errors=%d queue=%d",
		s.Terminals, s.Decisions, s.Handovers, s.PingPongs, s.Errors, s.QueueDepth)
}
