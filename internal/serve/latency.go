package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyMajors × latencySubs log-linear buckets cover 1 ns .. ~290 years
// with ≤ 1/32 relative resolution — the classic HDR-histogram layout,
// reduced to fixed atomic counters so Observe is lock- and allocation-free
// from any goroutine (the load harness records from shard callbacks).
const (
	latencyMajors = 64
	latencySubs   = 32
)

// LatencyRecorder accumulates duration samples concurrently and reports
// approximate quantiles.  The zero value is ready to use.
type LatencyRecorder struct {
	buckets [latencyMajors * latencySubs]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// bucketIndex maps nanoseconds to a log-linear bucket.
func bucketIndex(ns uint64) int {
	major := bits.Len64(ns) // 1..64 for ns ≥ 1
	if major <= 5 {
		return int(ns) // exact below 32 ns
	}
	sub := (ns >> (uint(major) - 6)) & (latencySubs - 1)
	return (major-5)*latencySubs + int(sub)
}

// bucketValue returns the lower bound of bucket i (inverse of bucketIndex).
func bucketValue(i int) uint64 {
	if i < latencySubs {
		return uint64(i)
	}
	major := i/latencySubs + 5
	sub := uint64(i % latencySubs)
	return (1 << (uint(major) - 1)) | sub<<(uint(major)-6)
}

// Observe records one sample.  Negative durations are ignored (they arise
// only from cross-goroutine clock misuse).
func (l *LatencyRecorder) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	ns := uint64(d)
	l.buckets[bucketIndex(ns)].Add(1)
	l.count.Add(1)
	l.sum.Add(ns)
	for {
		cur := l.max.Load()
		if ns <= cur || l.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() uint64 { return l.count.Load() }

// Mean returns the mean sample (0 when empty).
func (l *LatencyRecorder) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sum.Load() / n)
}

// Max returns the largest sample.
func (l *LatencyRecorder) Max() time.Duration { return time.Duration(l.max.Load()) }

// Quantile returns the approximate q-quantile (q in [0, 1]; the lower
// bound of the containing bucket, so the estimate errs low by at most
// 1/32 relative).  Returns 0 when empty.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i := range l.buckets {
		acc += l.buckets[i].Load()
		if acc >= target {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(l.max.Load())
}
