package serve

import (
	"time"

	"repro/internal/obs"
)

// LatencyRecorder accumulates duration samples concurrently and reports
// approximate quantiles.  It is a thin duration-typed veneer over
// obs.Histogram (the same log-linear layout: 64×32 buckets, ≤ 1/32
// relative resolution, lock- and allocation-free Observe).  The zero
// value is ready to use.
type LatencyRecorder struct {
	h obs.Histogram
}

// bucketIndex maps nanoseconds to a log-linear bucket.
func bucketIndex(ns uint64) int { return obs.BucketIndex(ns) }

// bucketValue returns the lower bound of bucket i (inverse of bucketIndex).
func bucketValue(i int) uint64 { return obs.BucketValue(i) }

// Observe records one sample.  Negative durations are ignored (they arise
// only from cross-goroutine clock misuse).
func (l *LatencyRecorder) Observe(d time.Duration) { l.h.ObserveDuration(d) }

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() uint64 { return l.h.Count() }

// Mean returns the mean sample (0 when empty).
func (l *LatencyRecorder) Mean() time.Duration { return time.Duration(l.h.Mean()) }

// Max returns the largest sample.
func (l *LatencyRecorder) Max() time.Duration { return time.Duration(l.h.Max()) }

// Quantile returns the approximate q-quantile (q in [0, 1]; the lower
// bound of the containing bucket, so the estimate errs low by at most
// 1/32 relative).  Returns 0 when empty.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	return time.Duration(l.h.Quantile(q))
}

// Histogram exposes the underlying histogram, e.g. for registering the
// recorder in an obs.Registry.
func (l *LatencyRecorder) Histogram() *obs.Histogram { return &l.h }

// Snapshot copies the recorder's cumulative state.
func (l *LatencyRecorder) Snapshot() LatencySnapshot {
	return LatencySnapshot{s: l.h.Snapshot()}
}

// SnapshotDelta returns the samples recorded since *prev and advances
// *prev to now — the one-liner a -stats loop calls each interval to get
// per-interval quantiles instead of cumulative ones.
func (l *LatencyRecorder) SnapshotDelta(prev *LatencySnapshot) LatencySnapshot {
	cur := l.h.Snapshot()
	d := cur.Delta(&prev.s)
	prev.s = cur
	return LatencySnapshot{s: d}
}

// LatencySnapshot is a point-in-time (or, via SnapshotDelta, windowed)
// view of a LatencyRecorder.
type LatencySnapshot struct {
	s obs.HistogramSnapshot
}

// Count returns the number of samples in the snapshot.
func (s *LatencySnapshot) Count() uint64 { return s.s.Count() }

// Mean returns the mean sample (0 when empty).
func (s *LatencySnapshot) Mean() time.Duration { return time.Duration(s.s.Mean()) }

// Max returns the largest sample; for windowed snapshots this is the
// lower bound of the highest occupied bucket.
func (s *LatencySnapshot) Max() time.Duration { return time.Duration(s.s.Max()) }

// Quantile returns the approximate q-quantile of the snapshot.
func (s *LatencySnapshot) Quantile(q float64) time.Duration {
	return time.Duration(s.s.Quantile(q))
}
