package serve

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/handover"
	"repro/internal/sim"
)

// TestCompiledDecisionSequenceEquivalence is the serve-level acceptance
// regression of the compiled control surface: replaying the paper's
// scenario grid through a Compiled engine must reproduce the exact-path
// sim verdicts — handover/no-handover, pipeline stage, execution and
// ping-pong accounting — per terminal per epoch, at every shard count.
// The comparison is tolerance-aware: the compiled HD score may differ
// from exact Mamdani inference within the surface's error bound, the
// decisions may not.
func TestCompiledDecisionSequenceEquivalence(t *testing.T) {
	cfgs := paperFleetConfigs()
	streams, results := simStreams(t, cfgs)
	reports := InterleaveReports(streams)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rec := newRecorder(len(cfgs))
			e, err := New(Config{
				Shards:           shards,
				QueueDepth:       64,
				Compiled:         true,
				PingPongWindowKm: sim.DefaultPingPongWindowKm,
				OnDecision:       rec.record,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			if err := e.SubmitBatch(reports); err != nil {
				t.Fatal(err)
			}
			e.Flush()
			if err := e.Stop(); err != nil {
				t.Fatal(err)
			}

			for i, res := range results {
				got := *rec[TerminalID(i)]
				if len(got) != len(res.Epochs) {
					t.Fatalf("terminal %d: %d outcomes, sim has %d epochs", i, len(got), len(res.Epochs))
				}
				pingpongs := 0
				for j, o := range got {
					exp := res.Epochs[j]
					if o.Err != nil {
						t.Fatalf("terminal %d epoch %d: %v", i, j, o.Err)
					}
					if o.Decision.Handover != exp.Decision.Handover || o.Executed != exp.Executed {
						t.Fatalf("terminal %d epoch %d: compiled verdict (handover=%v executed=%v) ≠ exact (handover=%v executed=%v)",
							i, j, o.Decision.Handover, o.Executed, exp.Decision.Handover, exp.Executed)
					}
					if o.Decision.Reason != exp.Decision.Reason || o.Decision.Scored != exp.Decision.Scored {
						t.Fatalf("terminal %d epoch %d: compiled stage %q/%v ≠ exact %q/%v",
							i, j, o.Decision.Reason, o.Decision.Scored, exp.Decision.Reason, exp.Decision.Scored)
					}
					if exp.Decision.Scored && math.Abs(o.Decision.Score-exp.Decision.Score) > 1e-9 {
						t.Fatalf("terminal %d epoch %d: compiled HD %g drifted from exact %g",
							i, j, o.Decision.Score, exp.Decision.Score)
					}
					if o.PingPong {
						pingpongs++
					}
				}
				if pingpongs != res.PingPongCount {
					t.Errorf("terminal %d: %d ping-pongs, sim counted %d", i, pingpongs, res.PingPongCount)
				}
			}
		})
	}
}

// TestCompiledRejectsCustomFactory pins the Compiled/AlgorithmFactory
// conflict diagnostic: the flag only governs the default controller.
func TestCompiledRejectsCustomFactory(t *testing.T) {
	_, err := New(Config{
		Compiled:         true,
		AlgorithmFactory: func() handover.Algorithm { return handover.NewFuzzy(nil) },
	})
	if err == nil {
		t.Fatal("Compiled with a custom AlgorithmFactory accepted")
	}
}
