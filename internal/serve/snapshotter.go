package serve

import "time"

// Snapshotter periodically persists terminal state in the background —
// the crash-recovery companion of the graceful-shutdown snapshot: a
// hard-killed daemon restarts from the last periodic capture instead of
// zero.  Writes are triggered by time (Every) and/or by decision volume
// (EveryDecisions); a trigger with no new decisions since the last write
// is skipped, so an idle daemon does not churn the disk rewriting an
// identical file.
//
// The capture itself (Engine.SnapshotTerminals, Local.SnapshotAll) rides
// the shard control queues and never stops the world, so a background
// snapshot is safe under live traffic; Write should be atomic
// (WriteSnapshotFile) so a crash mid-write cannot eat the previous good
// capture.
type Snapshotter struct {
	// Every triggers a write when this much time has passed since the
	// last one (0: time trigger off).
	Every time.Duration
	// EveryDecisions triggers a write when this many decisions have
	// accumulated since the last one (0: count trigger off).
	EveryDecisions uint64
	// Snapshot captures the current terminal state.
	Snapshot func() ([]TerminalSnapshot, error)
	// Decisions reads the monotonic decided-report counter, feeding the
	// count trigger and the idle skip.
	Decisions func() uint64
	// Write persists one capture (typically a WriteSnapshotFile closure).
	Write func([]TerminalSnapshot) error
	// OnError, if set, receives capture/write failures; the loop keeps
	// running — one failed write must not end crash protection.
	OnError func(error)
}

// Run loops until stop closes (a nil stop channel never fires, so the
// loop then runs for the life of the process).  Ticks are internal and
// finer than Every, so a short Every is honored without a busy loop.
func (s *Snapshotter) Run(stop <-chan struct{}) {
	period := s.Every / 4
	if period <= 0 || period > time.Second {
		period = time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := s.Decisions()
	lastWrite := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		d := s.Decisions()
		due := s.Every > 0 && time.Since(lastWrite) >= s.Every && d != last
		due = due || (s.EveryDecisions > 0 && d-last >= s.EveryDecisions)
		if !due {
			continue
		}
		snaps, err := s.Snapshot()
		if err == nil {
			err = s.Write(snaps)
		}
		if err != nil {
			if s.OnError != nil {
				s.OnError(err)
			}
			continue
		}
		lastWrite = time.Now()
		last = d
	}
}
