package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/handover"
)

func TestParseBatchLineSingleAndArray(t *testing.T) {
	single := `{"terminal":7,"serving":[0,0],"neighbor":[1,0],"serving_db":-88.5,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`
	rs, err := ParseBatchLine([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Terminal != 7 || rs[0].Meas.ServingDB != -88.5 ||
		rs[0].Meas.Neighbor.I != 1 || rs[0].Meas.SpeedKmh != 30 {
		t.Fatalf("parsed %+v", rs)
	}

	batch := "[" + single + "," + strings.Replace(single, `"terminal":7`, `"terminal":8`, 1) + "]"
	rs, err = ParseBatchLine([]byte(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Terminal != 8 {
		t.Fatalf("parsed %+v", rs)
	}

	if rs, err := ParseBatchLine([]byte("   \t")); err != nil || rs != nil {
		t.Errorf("blank line: %v, %v", rs, err)
	}
}

func TestParseBatchLineRejectsMalformed(t *testing.T) {
	bad := []string{
		`{`,
		`[{"terminal":1},`,
		`{"terminal":1,"serving":[0,0],"neighbor":[0,0],"serving_db":-88}`, // serving == neighbor
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"dmb":-2}`,
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"walked_km":-1}`,
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"speed_kmh":-5}`,
		`"just a string"`,
	}
	for _, src := range bad {
		if _, err := ParseBatchLine([]byte(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestAppendOutcomeJSONRoundTrip(t *testing.T) {
	o := Outcome{
		Terminal: 42,
		Seq:      9,
		Decision: handover.Decision{Handover: true, Score: 0.7321, Scored: true, Reason: `execute "now"`},
		Executed: true,
		PingPong: true,
	}
	line := AppendOutcomeJSON(nil, o)
	if line[len(line)-1] != '\n' {
		t.Fatal("no trailing newline")
	}
	var w WireOutcome
	if err := json.Unmarshal(line, &w); err != nil {
		t.Fatalf("%v in %s", err, line)
	}
	if w.Terminal != 42 || w.Seq != 9 || !w.Handover || w.Score != 0.7321 ||
		w.Reason != `execute "now"` || !w.Executed || !w.PingPong {
		t.Errorf("round trip %+v from %s", w, line)
	}
}

// TestAppendOutcomeJSONNoAlloc: encoding into a preallocated buffer must
// not allocate — hoserve encodes every decision on the shard callback.
func TestAppendOutcomeJSONNoAlloc(t *testing.T) {
	o := Outcome{Terminal: 1, Seq: 2, Decision: handover.Decision{Reason: "FLC-threshold", Score: 0.5, Scored: true}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendOutcomeJSON(buf[:0], o)
	})
	if allocs != 0 {
		t.Errorf("AppendOutcomeJSON allocates %v per call", allocs)
	}
}
