package serve

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/hexgrid"
)

func TestParseBatchLineSingleAndArray(t *testing.T) {
	single := `{"terminal":7,"serving":[0,0],"neighbor":[1,0],"serving_db":-88.5,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`
	rs, err := ParseBatchLine([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Terminal != 7 || rs[0].Meas.ServingDB != -88.5 ||
		rs[0].Meas.Neighbor.I != 1 || rs[0].Meas.SpeedKmh != 30 {
		t.Fatalf("parsed %+v", rs)
	}

	batch := "[" + single + "," + strings.Replace(single, `"terminal":7`, `"terminal":8`, 1) + "]"
	rs, err = ParseBatchLine([]byte(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Terminal != 8 {
		t.Fatalf("parsed %+v", rs)
	}

	if rs, err := ParseBatchLine([]byte("   \t")); err != nil || rs != nil {
		t.Errorf("blank line: %v, %v", rs, err)
	}
}

func TestParseBatchLineRejectsMalformed(t *testing.T) {
	bad := []string{
		`{`,
		`[{"terminal":1},`,
		`{"terminal":1,"serving":[0,0],"neighbor":[0,0],"serving_db":-88}`, // serving == neighbor
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"dmb":-2}`,
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"walked_km":-1}`,
		`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"speed_kmh":-5}`,
		`"just a string"`,
	}
	for _, src := range bad {
		if _, err := ParseBatchLine([]byte(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestParseBatchLineMixedBatchPrefix pins the partial-batch contract: a
// batch with an invalid report in the middle yields exactly the validated
// prefix plus an error naming the failing index; everything after the
// first invalid report is dropped even if it would validate.
func TestParseBatchLineMixedBatchPrefix(t *testing.T) {
	good := func(id int) string {
		return `{"terminal":` + string(rune('0'+id)) + `,"serving":[0,0],"neighbor":[1,0],"serving_db":-88.5,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`
	}
	bad := `{"terminal":9,"serving":[0,0],"neighbor":[1,0],"dmb":-2}`

	line := "[" + good(1) + "," + good(2) + "," + bad + "," + good(3) + "]"
	rs, err := ParseBatchLine([]byte(line))
	if err == nil {
		t.Fatal("mixed batch accepted")
	}
	if !strings.Contains(err.Error(), "report 2") {
		t.Errorf("error does not name the failing index: %v", err)
	}
	if len(rs) != 2 || rs[0].Terminal != 1 || rs[1].Terminal != 2 {
		t.Fatalf("validated prefix %+v, want terminals 1, 2", rs)
	}

	// A leading invalid report yields an empty (but non-poisoned) prefix.
	rs, err = ParseBatchLine([]byte("[" + bad + "," + good(1) + "]"))
	if err == nil || len(rs) != 0 {
		t.Fatalf("leading-bad batch: prefix %+v, err %v", rs, err)
	}

	// Broken JSON still yields no reports at all.
	rs, err = ParseBatchLine([]byte("[" + good(1) + ","))
	if err == nil || rs != nil {
		t.Fatalf("broken JSON: prefix %+v, err %v", rs, err)
	}
}

// TestReportExtRoundTrip pins the "x" extension-feature object: extension
// values survive Append → Parse → Append byte-identically, in stored
// order, and a report without extensions emits exactly the seed wire shape
// (no "x" key at all).
func TestReportExtRoundTrip(t *testing.T) {
	in := []Report{
		{Terminal: 1, Meas: wireMeas(0, 0, 1, 0, -88.5, -84, -2.5, 1.1, 3.2, 30),
			Ext: []handover.ExtValue{{Name: "ssn_trend", Value: -1.25}}},
		{Terminal: 2, Meas: wireMeas(0, 0, 1, 0, -90, -85, -3, 0.9, 4, 10),
			Ext: []handover.ExtValue{{Name: "b", Value: 2}, {Name: "a", Value: 0}}},
		{Terminal: 3, Meas: wireMeas(0, 0, 1, 0, -91, -86, -4, 0.8, 5, 0)},
	}
	line := AppendBatchJSON(nil, in)
	out, err := ParseBatchLine(line)
	if err != nil {
		t.Fatalf("%v in %s", err, line)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip\n in  %+v\n out %+v\nline %s", in, out, line)
	}
	if again := AppendBatchJSON(nil, out); string(again) != string(line) {
		t.Errorf("re-encode differs:\n first  %s\n second %s", line, again)
	}
	if strings.Contains(string(AppendReportJSON(nil, in[2])), `"x"`) {
		t.Error("extension-free report emitted an x object")
	}
	// Declared order is preserved, not sorted: b before a.
	one := string(AppendReportJSON(nil, in[1]))
	if !strings.Contains(one, `"x":{"b":2,"a":0}`) {
		t.Errorf("extension object not in declared order: %s", one)
	}
}

// TestParseBatchLineRejectContract pins the strict-ingest contract chosen
// for the wire codec: unknown top-level report fields and malformed "x"
// objects are rejected — with the failing report's index and the validated
// prefix — rather than silently dropped.
func TestParseBatchLineRejectContract(t *testing.T) {
	good := `{"terminal":1,"serving":[0,0],"neighbor":[1,0],"serving_db":-88.5,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`
	cases := map[string]string{
		"unknown-field":  `{"terminal":2,"serving":[0,0],"neighbor":[1,0],"rsrp":-90}`,
		"x-not-object":   `{"terminal":2,"serving":[0,0],"neighbor":[1,0],"x":[1]}`,
		"x-value-string": `{"terminal":2,"serving":[0,0],"neighbor":[1,0],"x":{"t":"fast"}}`,
		"x-value-null":   `{"terminal":2,"serving":[0,0],"neighbor":[1,0],"x":{"t":null}}`,
		"x-dup-name":     `{"terminal":2,"serving":[0,0],"neighbor":[1,0],"x":{"t":1,"t":2}}`,
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			// Alone: rejected outright.
			if _, err := ParseBatchLine([]byte(bad)); err == nil {
				t.Fatalf("accepted %s", bad)
			}
			// In a batch: validated prefix plus an error naming the index.
			rs, err := ParseBatchLine([]byte("[" + good + "," + bad + "]"))
			if err == nil {
				t.Fatalf("batch accepted %s", bad)
			}
			if !strings.Contains(err.Error(), "report 1") {
				t.Errorf("error does not name the failing index: %v", err)
			}
			if len(rs) != 1 || rs[0].Terminal != 1 {
				t.Errorf("validated prefix %+v, want the leading good report", rs)
			}
		})
	}
}

// wireMeas builds a measurement for wire-codec tests.
func wireMeas(si, sj, ni, nj int, serving, ssn, cssp, dmb, walked, speed float64) cell.Measurement {
	return cell.Measurement{
		Serving:    hexgrid.Cell{I: si, J: sj},
		Neighbor:   hexgrid.Cell{I: ni, J: nj},
		ServingDB:  serving,
		NeighborDB: ssn,
		CSSPdB:     cssp,
		DMBNorm:    dmb,
		WalkedKm:   walked,
		SpeedKmh:   speed,
	}
}

// TestReportJSONRoundTrip pins AppendBatchJSON ∘ ParseBatchLine as the
// identity on reports, including negative axial labels and zero fields.
func TestReportJSONRoundTrip(t *testing.T) {
	in := []Report{
		{Terminal: 0, Meas: wireMeas(-2, 1, 0, 0, -88.5, -84.25, -2.5, 1.1, 3.2, 30)},
		{Terminal: 1 << 40, Meas: wireMeas(0, 0, -1, 3, 0, 0, 0, 0, 0, 0)},
		{Terminal: 42, Meas: wireMeas(5, -7, 2, 2, -120.125, -60.5, 12.75, 0.333333333333, 123.456, 250)},
	}
	line := AppendBatchJSON(nil, in)
	if line[len(line)-1] != '\n' {
		t.Fatal("no trailing newline")
	}
	out, err := ParseBatchLine(line)
	if err != nil {
		t.Fatalf("%v in %s", err, line)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip\n in  %+v\n out %+v\nline %s", in, out, line)
	}

	// Single-report form parses too.
	one := AppendReportJSON(nil, in[0])
	out, err = ParseBatchLine(one)
	if err != nil || len(out) != 1 || !reflect.DeepEqual(in[0], out[0]) {
		t.Errorf("single round trip %+v, %v from %s", out, err, one)
	}
}

func TestAppendOutcomeJSONRoundTrip(t *testing.T) {
	o := Outcome{
		Terminal: 42,
		Seq:      9,
		Decision: handover.Decision{Handover: true, Score: 0.7321, Scored: true, Reason: `execute "now"`},
		Executed: true,
		PingPong: true,
	}
	line := AppendOutcomeJSON(nil, o)
	if line[len(line)-1] != '\n' {
		t.Fatal("no trailing newline")
	}
	var w WireOutcome
	if err := json.Unmarshal(line, &w); err != nil {
		t.Fatalf("%v in %s", err, line)
	}
	if w.Terminal != 42 || w.Seq != 9 || !w.Handover || w.Score != 0.7321 || !w.Scored ||
		w.Reason != `execute "now"` || !w.Executed || !w.PingPong {
		t.Errorf("round trip %+v from %s", w, line)
	}
}

// TestOutcomeRoundTripAllShapes is the wire-parity pin: for every outcome
// shape — scored with a nonzero score, scored with score exactly 0 (the
// shape the old omitempty encoding conflated with "not scored"), unscored,
// executed, ping-pong, algorithm error — encode → decode → encode must be
// the identity on bytes, and the decoded outcome must preserve the Scored
// flag and score value exactly.
func TestOutcomeRoundTripAllShapes(t *testing.T) {
	shapes := []Outcome{
		{Terminal: 1, Seq: 0, Decision: handover.Decision{Reason: "POTLC-gate"}},
		{Terminal: 2, Seq: 3, Decision: handover.Decision{Score: 0.69, Scored: true, Reason: "below threshold"}},
		{Terminal: 3, Seq: 7, Decision: handover.Decision{Score: 0, Scored: true, Reason: "below threshold"}},
		{Terminal: 4, Seq: 1, Decision: handover.Decision{Handover: true, Score: 0.73, Scored: true, Reason: "execute-handover"}, Executed: true},
		{Terminal: 5, Seq: 9, Decision: handover.Decision{Handover: true, Score: 1, Scored: true, Reason: "execute"}, Executed: true, PingPong: true},
		{Terminal: 6, Seq: 2, Err: &WireError{Msg: "algorithm: inference failed"}},
		{Terminal: 0, Seq: 0, Decision: handover.Decision{Reason: ""}},
	}
	for i, o := range shapes {
		line1 := AppendOutcomeJSON(nil, o)
		w, err := ParseOutcomeLine(line1)
		if err != nil {
			t.Fatalf("shape %d: decode: %v in %s", i, err, line1)
		}
		got := w.Outcome()
		if got.Decision.Scored != o.Decision.Scored || got.Decision.Score != o.Decision.Score {
			t.Errorf("shape %d: scored/score %v/%g, want %v/%g",
				i, got.Decision.Scored, got.Decision.Score, o.Decision.Scored, o.Decision.Score)
		}
		if got.Terminal != o.Terminal || got.Seq != o.Seq ||
			got.Decision.Handover != o.Decision.Handover || got.Decision.Reason != o.Decision.Reason ||
			got.Executed != o.Executed || got.PingPong != o.PingPong {
			t.Errorf("shape %d: decoded %+v, want %+v", i, got, o)
		}
		if (o.Err == nil) != (got.Err == nil) || (o.Err != nil && got.Err.Error() != o.Err.Error()) {
			t.Errorf("shape %d: err %v, want %v", i, got.Err, o.Err)
		}
		line2 := AppendOutcomeJSON(nil, got)
		if string(line1) != string(line2) {
			t.Errorf("shape %d: re-encode drifted\n first  %s second %s", i, line1, line2)
		}
	}
}

// TestScoreZeroSurvivesRoundTrip is the regression pin for the omitempty
// conflation: a scored decision whose score is exactly 0 must decode as
// scored, distinguishable from a gate decision that was never scored.
func TestScoreZeroSurvivesRoundTrip(t *testing.T) {
	scored := AppendOutcomeJSON(nil, Outcome{Terminal: 1, Decision: handover.Decision{Score: 0, Scored: true, Reason: "r"}})
	unscored := AppendOutcomeJSON(nil, Outcome{Terminal: 1, Decision: handover.Decision{Reason: "r"}})
	if string(scored) == string(unscored) {
		t.Fatalf("scored-0 and unscored encode identically: %s", scored)
	}
	ws, err := ParseOutcomeLine(scored)
	if err != nil || !ws.Scored || ws.Score != 0 {
		t.Errorf("scored-0 decoded %+v, %v", ws, err)
	}
	wu, err := ParseOutcomeLine(unscored)
	if err != nil || wu.Scored {
		t.Errorf("unscored decoded %+v, %v", wu, err)
	}
}

func TestParseOutcomeLineErrors(t *testing.T) {
	// A daemon's line-level reject decodes as *WireError.
	_, err := ParseOutcomeLine([]byte(`{"error":"line 3: malformed report line"}`))
	var we *WireError
	if !errors.As(err, &we) || we.Msg != "line 3: malformed report line" {
		t.Errorf("line-level error decoded as %v", err)
	}
	// Broken JSON and terminal-free non-error lines are malformed.
	if _, err := ParseOutcomeLine([]byte(`{"seq":`)); err == nil {
		t.Error("accepted broken JSON")
	}
	if _, err := ParseOutcomeLine([]byte(`{"seq":1}`)); err == nil {
		t.Error("accepted outcome without terminal")
	}
	// An algorithm-error outcome (terminal present, error set) is a
	// decision, not a line-level reject.
	w, err := ParseOutcomeLine([]byte(`{"terminal":3,"seq":0,"handover":false,"reason":"","executed":false,"error":"boom"}`))
	if err != nil || w.Error != "boom" {
		t.Errorf("algorithm-error outcome: %+v, %v", w, err)
	}
	if w.Outcome().Err == nil {
		t.Error("decoded algorithm error lost")
	}
}

// TestAppendOutcomeJSONNoAlloc: encoding into a preallocated buffer must
// not allocate — hoserve encodes every decision on the shard callback.
func TestAppendOutcomeJSONNoAlloc(t *testing.T) {
	o := Outcome{Terminal: 1, Seq: 2, Decision: handover.Decision{Reason: "FLC-threshold", Score: 0.5, Scored: true}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendOutcomeJSON(buf[:0], o)
	})
	if allocs != 0 {
		t.Errorf("AppendOutcomeJSON allocates %v per call", allocs)
	}
}

// TestAppendBatchJSONNoAlloc: the report encoder must not allocate into a
// warm buffer — the cluster router encodes every forwarded sub-batch.
func TestAppendBatchJSONNoAlloc(t *testing.T) {
	rs := []Report{
		{Terminal: 1, Meas: wireMeas(0, 0, 1, 0, -88.5, -84, -2.5, 1.1, 3.2, 30)},
		{Terminal: 2, Meas: wireMeas(0, 0, 1, 0, -90.25, -83, -1.5, 0.9, 4.7, 50)},
	}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBatchJSON(buf[:0], rs)
	})
	if allocs != 0 {
		t.Errorf("AppendBatchJSON allocates %v per call", allocs)
	}
}

func TestHashTerminalMatchesShardRouting(t *testing.T) {
	e, err := New(Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for id := TerminalID(0); id < 1000; id++ {
		if got, want := int(HashTerminal(id)%8), e.ShardOf(id); got != want {
			t.Fatalf("terminal %d: HashTerminal-derived shard %d, ShardOf %d", id, got, want)
		}
	}
	if math.Abs(float64(HashTerminal(1))-float64(HashTerminal(2))) == 1 {
		t.Error("hash looks like identity; SplitMix64 finalizer not applied")
	}
}
