package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRedialDelaySchedule pins the reconnect backoff as a pure schedule:
// exponential from base, capped, jitter adding at most half a step.
func TestRedialDelaySchedule(t *testing.T) {
	const base, max = 100 * time.Millisecond, 3 * time.Second
	for _, tc := range []struct {
		name    string
		base    time.Duration
		max     time.Duration
		attempt int
		jitter  float64
		want    time.Duration
	}{
		{"first", base, max, 0, 0, 100 * time.Millisecond},
		{"second", base, max, 1, 0, 200 * time.Millisecond},
		{"third", base, max, 2, 0, 400 * time.Millisecond},
		{"capped", base, max, 5, 0, 3 * time.Second},
		{"deep-capped", base, max, 60, 0, 3 * time.Second},
		{"jitter-half-step", base, max, 1, 1, 300 * time.Millisecond},
		{"flat-when-capped-at-base", base, base, 9, 0, base},
		{"zero-attempt-jittered", base, max, 0, 0.5, 125 * time.Millisecond},
	} {
		if got := redialDelay(tc.base, tc.max, tc.attempt, tc.jitter); got != tc.want {
			t.Errorf("%s: redialDelay(%v,%v,%d,%g) = %v, want %v",
				tc.name, tc.base, tc.max, tc.attempt, tc.jitter, got, tc.want)
		}
	}
	// Monotone non-decreasing without jitter: later attempts never wait
	// less (a fleet must spread out, not oscillate back onto the node).
	prev := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := redialDelay(base, max, i, 0)
		if d < prev {
			t.Fatalf("attempt %d waits %v < attempt %d's %v", i, d, i-1, prev)
		}
		prev = d
	}
}

// contReports builds epochs [from, from+n) of the clientTestReports
// stream for the given terminals, so a test can continue a terminal's
// trajectory after a migration or reconnect.
func contReports(terminals []uint64, from, n int) []Report {
	var streams [][]Report
	for _, tid := range terminals {
		var s []Report
		for e := from; e < from+n; e++ {
			s = append(s, Report{
				Terminal: TerminalID(tid),
				Meas: wireMeas(0, 0, 1, 0,
					-80-float64(e), -95+float64(2*e), float64(e)-10, 0.2+0.05*float64(e),
					0.1*float64(e), 30),
			})
		}
		streams = append(streams, s)
	}
	return InterleaveReports(streams)
}

// TestNodeClientIdentityTakeover is the end-to-end reconnect contract:
// cut the connection under a client, let it redial with its identity,
// and the same terminals keep deciding with continuous sequence numbers
// — the reconnection inherits its own claims instead of bouncing off
// them, and the Reconnects counter says what happened.
func TestNodeClientIdentityTakeover(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 2})
	defer stop()

	inj := NewFaultInjector()
	var mu sync.Mutex
	seqs := map[TerminalID][]uint64{}
	c, err := DialNode(addr, NodeClientConfig{
		RedialWait:    10 * time.Millisecond,
		RedialMaxWait: 50 * time.Millisecond,
		Dial:          inj.Dial,
		OnOutcome: func(o Outcome) {
			mu.Lock()
			seqs[o.Terminal] = append(seqs[o.Terminal], o.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	terminals := []uint64{1, 2, 3}
	if err := c.Send(contReports(terminals, 0, 6)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Sever the wire with nothing in flight; the client redials.
	inj.CutAll()

	// Same terminals, next epochs: must be accepted and decided in
	// sequence even if the node hasn't noticed the old connection died.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Send(contReports(terminals, 6, 6))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send after cut never succeeded: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush after reconnect: %v", err)
	}
	cnt := c.Counters()
	if cnt.Reconnects == 0 {
		t.Error("reconnect not counted")
	}
	if cnt.Lost != 0 {
		t.Errorf("lost %d reports across a quiescent cut", cnt.Lost)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tid := range terminals {
		got := seqs[TerminalID(tid)]
		if len(got) != 12 {
			t.Fatalf("terminal %d: %d outcomes, want 12", tid, len(got))
		}
		for i, s := range got {
			if s != uint64(i) {
				t.Fatalf("terminal %d: outcome %d has seq %d — sequence broke at the reconnect", tid, i, s)
			}
		}
	}
}

// TestNodeClientExtractRestore moves live terminal state between two
// nodes over the wire and proves the decision sequences continue on the
// destination exactly where the source left off.
func TestNodeClientExtractRestore(t *testing.T) {
	addr1, stop1 := startTestNode(t, Config{Shards: 2})
	defer stop1()
	addr2, stop2 := startTestNode(t, Config{Shards: 2})
	defer stop2()

	var mu sync.Mutex
	seqs := map[TerminalID][]uint64{}
	record := func(o Outcome) {
		mu.Lock()
		seqs[o.Terminal] = append(seqs[o.Terminal], o.Seq)
		mu.Unlock()
	}
	c1, err := DialNode(addr1, NodeClientConfig{OnOutcome: record})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialNode(addr2, NodeClientConfig{OnOutcome: record})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Terminals 0..3 build 6 epochs of history on node 1.
	if err := c1.Send(contReports([]uint64{0, 1, 2, 3}, 0, 6)); err != nil {
		t.Fatal(err)
	}
	// No explicit Flush: the extract op drains behind the reports.
	// The test node's membership pred keeps id%2==0 for member 0, so
	// extracting as self=0 of members {0,1} ships the odd terminals.
	snaps, err := c1.Extract([]int{0, 1}, 128, 0, false, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("extracted %d terminals, want 2 (the odd ones)", len(snaps))
	}
	for _, s := range snaps {
		if s.Terminal%2 == 0 {
			t.Fatalf("extract shipped even terminal %d", s.Terminal)
		}
		if s.Seq != 6 {
			t.Fatalf("terminal %d snapshot at seq %d, want 6", s.Terminal, s.Seq)
		}
	}
	if err := c2.Restore(snaps, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Restoring the same terminals again must fail in the ack: they are
	// live on node 2 now.
	if err := c2.Restore(snaps, false, 5*time.Second); err == nil || !strings.Contains(err.Error(), "already live") {
		t.Fatalf("double restore: %v", err)
	}

	// The moved terminals continue on node 2; the kept ones on node 1.
	if err := c2.Send(contReports([]uint64{1, 3}, 6, 6)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(contReports([]uint64{0, 2}, 6, 6)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for tid := TerminalID(0); tid < 4; tid++ {
		got := seqs[tid]
		if len(got) != 12 {
			t.Fatalf("terminal %d: %d outcomes, want 12", tid, len(got))
		}
		for i, s := range got {
			if s != uint64(i) {
				t.Fatalf("terminal %d: outcome %d has seq %d — sequence broke at the migration", tid, i, s)
			}
		}
	}
}

// TestNodeClientCtlUnsupportedOp: a daemon without snapshot hooks
// answers extract inside the ack — the data-plane ledger stays clean.
func TestNodeClientCtlErrorsDoNotPoisonFlush(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()
	c, err := DialNode(addr, NodeClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// self not in members → the extract fails remotely, inside the ack.
	if _, err := c.Extract([]int{5, 6}, 128, 9, false, 5*time.Second); err == nil ||
		!strings.Contains(err.Error(), "self not in members") {
		t.Fatalf("extract with bad membership: %v", err)
	}
	// The failure was op-scoped: reports still flow and Flush balances.
	if err := c.Send(contReports([]uint64{7}, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush after failed ctl op: %v", err)
	}
	if cnt := c.Counters(); cnt.RemoteErrors != 0 {
		t.Errorf("ctl failure leaked into remote-error count: %+v", cnt)
	}
}

// TestFaultInjectorShapesTraffic pins the injector's write knobs through
// a real client: a duplicated line double-decides, a partition cuts and
// heals, and the dial counter sees every connection.
func TestFaultInjectorShapesTraffic(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()

	inj := NewFaultInjector()
	var mu sync.Mutex
	var outs []Outcome
	c, err := DialNode(addr, NodeClientConfig{
		RedialWait:    10 * time.Millisecond,
		RedialMaxWait: 50 * time.Millisecond,
		MaxRedials:    200,
		Dial:          inj.Dial,
		OnOutcome: func(o Outcome) {
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Prime the connection so the hello line is already on the wire —
	// the knobs must hit report traffic, not the handshake.
	if err := c.Send(contReports([]uint64{1}, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Duplicate the next write: one submitted report, two decisions.
	// (Same connection owns the terminal, so the duplicate is accepted
	// and advances the terminal's state — exactly what a replayed wire
	// message would do.)
	inj.DuplicateWrites(1)
	if err := c.Send(contReports([]uint64{1}, 1, 1)); err != nil {
		t.Fatal(err)
	}
	dupDeadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(outs)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(dupDeadline) {
			t.Fatalf("duplicated line did not double-decide (%d outcomes)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if len(outs) != 3 || outs[1].Seq != 1 || outs[2].Seq != 2 {
		t.Fatalf("duplicate outcomes %+v, want seqs 1,2 for the duplicated report", outs)
	}
	mu.Unlock()

	// Partition: the client cannot reconnect until Heal.
	before := inj.Dials()
	inj.Partition()
	time.Sleep(50 * time.Millisecond)
	if err := c.Err(); err != nil {
		t.Fatalf("client went fatally down during a short partition: %v", err)
	}
	inj.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for inj.Dials() == before {
		if time.Now().After(deadline) {
			t.Fatal("client never redialed after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Send(contReports([]uint64{1}, 1, 1)); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if cnt := c.Counters(); cnt.Reconnects == 0 {
		t.Errorf("partition+heal left no reconnect trace: %+v", cnt)
	}
}

// TestFaultInjectorDroppedWriteOpensLedgerGap: a silently dropped line
// is exactly the failure Lost accounting exists for — the client can't
// know, but the ledger imbalance is visible and Flush names it.
func TestFaultInjectorDroppedWriteOpensLedgerGap(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()
	inj := NewFaultInjector()
	c, err := DialNode(addr, NodeClientConfig{Dial: inj.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime past the hello handshake so the drop hits a report line.
	if err := c.Send(contReports([]uint64{1}, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	inj.DropWrites(1)
	if err := c.Send(contReports([]uint64{1}, 1, 1)); err != nil {
		t.Fatal(err)
	}
	err = c.Flush(300 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Flush over a dropped line = %v, want outstanding-report timeout", err)
	}
	if cnt := c.Counters(); cnt.Submitted != 2 || cnt.Delivered != 1 {
		t.Errorf("ledger %+v, want the dropped report outstanding", cnt)
	}
}

// TestBindingSupersededSendRejected covers the protocol edge where an
// old connection keeps writing after its claims were taken over: its
// lines are rejected with ErrSuperseded-derived errors, never submitted.
func TestBindingSupersededSendRejected(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 1, OnDecision: mux.Route})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	mux.Drain = func() error { e.Flush(); return nil }

	old := NewBinding(mux, NewSink(&strings.Builder{}))
	old.SetIdentity("ghost")
	if err := old.Submit(contReports([]uint64{4}, 0, 1), e.SubmitBatch); err != nil {
		t.Fatal(err)
	}
	reborn := NewBinding(mux, NewSink(&strings.Builder{}))
	reborn.SetIdentity("ghost")
	if err := reborn.Submit(contReports([]uint64{4}, 1, 1), e.SubmitBatch); err != nil {
		t.Fatalf("takeover submit: %v", err)
	}
	if err := old.Submit(contReports([]uint64{4}, 2, 1), e.SubmitBatch); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("superseded submit: %v", err)
	}
	e.Flush()
	if tot := e.Stats().Totals(); tot.Decisions != 2 {
		t.Errorf("%d decisions, want 2 — the superseded line must not run", tot.Decisions)
	}
}
