package serve

import (
	"sync/atomic"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// pingPongHistory bounds the per-terminal handover ring the ping-pong scan
// walks.  The simulator's detector keeps the full history; the serving
// layer keeps the most recent entries inline (no allocation per handover)
// — the accounting only diverges if a terminal executes more than this
// many handovers inside one window, which the window exists to prevent.
const pingPongHistory = 8

// hoEvent is one executed handover in a terminal's ring.
type hoEvent struct {
	from, to hexgrid.Cell
	walkedKm float64
}

// terminal is the engine-owned state of one terminal: everything the
// single-threaded sim path keeps in its Measurer/algorithm/detector,
// reduced to what streamed reports cannot carry themselves.
type terminal struct {
	// algo is the terminal-private algorithm (PerTerminalAlgorithms
	// mode); nil means the shard's shared instance decides.
	algo handover.Algorithm
	// seq counts reports served for this terminal.
	seq uint64
	// prevDB/havePrev mirror Measurer.PrevServingDB: the serving power
	// of the previous epoch, invalidated by an executed handover.
	prevDB   float64
	havePrev bool
	// serving tracks the attachment the engine believes the terminal
	// holds (updated on executed handovers, corrected from reports).
	serving     hexgrid.Cell
	haveServing bool
	// handovers/pingpongs are per-terminal tallies.
	handovers uint64
	pingpongs uint64
	// events is the recent-handover ring; next indexes the slot the
	// next event overwrites and total counts events ever recorded.
	events [pingPongHistory]hoEvent
	next   int
	total  int
}

// observeHandover records an executed handover and reports whether it
// closes a ping-pong pair, using the simulator detector's rule: a prior
// B→A hop within the walked-distance window makes this A→B hop a return.
func (t *terminal) observeHandover(from, to hexgrid.Cell, walkedKm, windowKm float64) bool {
	pingPong := false
	n := t.total
	if n > pingPongHistory {
		n = pingPongHistory
	}
	for i := 1; i <= n; i++ {
		prev := t.events[(t.next-i+pingPongHistory)%pingPongHistory]
		if walkedKm-prev.walkedKm > windowKm {
			break
		}
		if prev.from == to && prev.to == from {
			pingPong = true
			break
		}
	}
	t.events[t.next] = hoEvent{from: from, to: to, walkedKm: walkedKm}
	t.next = (t.next + 1) % pingPongHistory
	t.total++
	return pingPong
}

// pad keeps producer-written and consumer-written counters on separate
// cache lines so submitters and the shard goroutine do not false-share.
type pad [64]byte

// shard owns one partition of the terminal population.  All fields below
// the queue are touched only by the shard goroutine, except the atomic
// counters, which anyone may read.  The queue carries pooled sub-batches
// (≤ maxSubBatch reports each) so a busy ingest path pays one channel
// operation per sub-batch, not per report.
type shard struct {
	id int
	in chan *[]Report

	terminals map[TerminalID]*terminal
	// algo is the shared per-shard instance; newAlgo, when non-nil,
	// builds per-terminal instances instead.
	algo    handover.Algorithm
	newAlgo func() handover.Algorithm
	window  float64

	onDecision func(Outcome)

	// submitted is written by producers; the remaining counters by the
	// shard goroutine.
	submitted  atomic.Uint64
	_          pad
	processed  atomic.Uint64
	handovers  atomic.Uint64
	pingpongs  atomic.Uint64
	errors     atomic.Uint64
	nTerminals atomic.Uint64
}

// run drains the ingest queue until it is closed, returning emptied
// sub-batch buffers to the pool for producers to refill.
func (s *shard) run(pool *bufPool) {
	for batch := range s.in {
		for _, r := range *batch {
			s.process(r)
		}
		pool.put(batch)
	}
}

// process serves one report: route to (or create) the terminal state,
// decide on the fast path, commit executed handovers, update counters and
// deliver the outcome.  Steady state (known terminal) allocates nothing.
func (s *shard) process(r Report) {
	t := s.terminals[r.Terminal]
	if t == nil {
		t = &terminal{}
		if s.newAlgo != nil {
			t.algo = s.newAlgo()
			t.algo.Reset()
		}
		s.terminals[r.Terminal] = t
		s.nTerminals.Add(1)
	}
	m := r.Meas
	algo := s.algo
	if t.algo != nil {
		algo = t.algo
	}
	if t.haveServing && m.Serving != t.serving {
		// The radio side reattached the terminal without this engine
		// deciding it (restart, external handover): the previous-epoch
		// power belongs to another cell, so the history restarts, as it
		// does after an engine-decided handover.
		t.havePrev = false
		algo.Reset()
	}
	t.serving, t.haveServing = m.Serving, true

	dec, err := algo.Decide(m, t.prevDB, t.havePrev)
	executed := false
	pingPong := false
	if err != nil {
		s.errors.Add(1)
		dec = handover.Decision{}
	} else if dec.Handover {
		executed = true
		t.handovers++
		s.handovers.Add(1)
		pingPong = t.observeHandover(m.Serving, m.Neighbor, m.WalkedKm, s.window)
		if pingPong {
			t.pingpongs++
			s.pingpongs.Add(1)
		}
		// Commit: the terminal now serves from the neighbor, and — as in
		// the simulator's Measurer.Handover — the power history restarts.
		t.serving = m.Neighbor
		t.havePrev = false
		t.prevDB = m.ServingDB
		algo.Reset()
	}
	if !executed {
		// No-handover epochs — including algorithm errors, which are
		// documented to count as one — advance the power history: the
		// measurement itself is valid even when the decision failed.
		t.prevDB = m.ServingDB
		t.havePrev = true
	}
	seq := t.seq
	t.seq++
	s.processed.Add(1)
	if s.onDecision != nil {
		s.onDecision(Outcome{
			Terminal: r.Terminal,
			Seq:      seq,
			Decision: dec,
			Executed: executed,
			PingPong: pingPong,
			Shard:    s.id,
			Err:      err,
		})
	}
}
