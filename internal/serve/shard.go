package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// pingPongHistory bounds the per-terminal handover ring the ping-pong scan
// walks.  The simulator's detector keeps the full history; the serving
// layer keeps the most recent entries inline (no allocation per handover)
// — the accounting only diverges if a terminal executes more than this
// many handovers inside one window, which the window exists to prevent.
const pingPongHistory = 8

// hoEvent is one executed handover in a terminal's ring.
type hoEvent struct {
	from, to hexgrid.Cell
	walkedKm float64
}

// terminal is the engine-owned state of one terminal: everything the
// single-threaded sim path keeps in its Measurer/algorithm/detector,
// reduced to what streamed reports cannot carry themselves.
type terminal struct {
	// algo is the terminal-private algorithm (PerTerminalAlgorithms
	// mode); nil means the shard's shared instance decides.
	algo handover.Algorithm
	// seq counts reports served for this terminal.
	seq uint64
	// prevDB/havePrev mirror Measurer.PrevServingDB: the serving power
	// of the previous epoch, invalidated by an executed handover.
	prevDB   float64
	havePrev bool
	// derived is the per-terminal state stateful schema features extract
	// from (the SSN trend derivation); reset exactly where the algorithm
	// is: executed handovers and external reattachments.
	derived handover.DerivedState
	// serving tracks the attachment the engine believes the terminal
	// holds (updated on executed handovers, corrected from reports).
	serving     hexgrid.Cell
	haveServing bool
	// handovers/pingpongs are per-terminal tallies.
	handovers uint64
	pingpongs uint64
	// events is the recent-handover ring; next indexes the slot the
	// next event overwrites and total counts events ever recorded.
	events [pingPongHistory]hoEvent
	next   int
	total  int
}

// observeHandover records an executed handover and reports whether it
// closes a ping-pong pair, using the simulator detector's rule: a prior
// B→A hop within the walked-distance window makes this A→B hop a return.
//
//fuzzyho:hotpath
func (t *terminal) observeHandover(from, to hexgrid.Cell, walkedKm, windowKm float64) bool {
	pingPong := false
	n := t.total
	if n > pingPongHistory {
		n = pingPongHistory
	}
	for i := 1; i <= n; i++ {
		prev := t.events[(t.next-i+pingPongHistory)%pingPongHistory]
		if walkedKm-prev.walkedKm > windowKm {
			break
		}
		if prev.from == to && prev.to == from {
			pingPong = true
			break
		}
	}
	t.events[t.next] = hoEvent{from: from, to: to, walkedKm: walkedKm}
	t.next = (t.next + 1) % pingPongHistory
	t.total++
	return pingPong
}

// pad keeps producer-written and consumer-written counters on separate
// cache lines so submitters and the shard goroutine do not false-share.
type pad [64]byte

// routeBuckets sizes the per-sub-batch dedup table of the batch router:
// a power of two comfortably above maxSubBatch, so distinct terminals
// rarely share a bucket.  The table is 128+64 bytes of int8 — it lives in
// L1, which is the point: repeated terminals in a sub-batch resolve from
// it instead of re-probing a store index that can span megabytes.
const routeBuckets = 128

// The grouping table indexes reports with int8 (-1 terminates chains), so
// sub-batches must fit in its positive range; this fails to compile if
// maxSubBatch ever outgrows it.
const _ uint = 127 - maxSubBatch

// batchCols is a shard's staging for the columnar decision pipeline: a
// drained sub-batch's measurements gathered into the scorer's
// FeatureFrame (struct-of-arrays columns in the scorer's schema), scored
// in one BatchScorer call, decisions completed per row.  Sized once to
// maxSubBatch; reused for every sub-batch.
type batchCols struct {
	frame *handover.FeatureFrame
	// slots holds the sub-batch's resolved terminal state, one entry per
	// report; head/next are the grouping table of routeBatch (bucket
	// heads and chain links over report indexes, -1 terminated).
	slots []*terminal
	head  [routeBuckets]int8
	next  [maxSubBatch]int8
}

func newBatchCols(schema *handover.FeatureSchema) *batchCols {
	return &batchCols{
		frame: handover.NewFeatureFrame(schema, maxSubBatch),
		slots: make([]*terminal, maxSubBatch),
	}
}

// shardMsg is one queued unit of shard work: a pooled report sub-batch
// (the overwhelmingly common case) or a control message (snapshot
// extract/restore).  Control rides the same ordered queue as reports so
// "everything submitted before the control" is drained by construction —
// the queue itself is the migration protocol's barrier.
type shardMsg struct {
	batch *[]Report
	ctl   *shardCtl
	// enq is the enqueue timestamp (nanoseconds since the engine epoch),
	// stamped only when metrics are enabled; the shard observes the
	// dequeue delta as queue wait.
	enq int64
}

// shard owns one partition of the terminal population.  All fields below
// the queue are touched only by the shard goroutine, except the atomic
// counters, which anyone may read.  The queue carries pooled sub-batches
// (≤ maxSubBatch reports each) so a busy ingest path pays one channel
// operation per sub-batch, not per report.
type shard struct {
	id int
	in chan shardMsg
	// free recycles this shard's drained sub-batch buffers back to
	// producers (see getBuf/putBuf): buffers cycle producer → queue →
	// shard → free list without touching the garbage collector.
	free chan *[]Report

	// store indexes the shard's terminal state: an open-addressing table
	// over dense slabs (see terminalStore) whose pointers stay stable
	// across growth.
	store *terminalStore
	// algo is the shared per-shard instance; newAlgo, when non-nil,
	// builds per-terminal instances instead.
	algo    handover.Algorithm
	newAlgo func() handover.Algorithm
	// scorer is algo's BatchScorer view, non-nil when the shared
	// algorithm supports the columnar batch pipeline; stateful mirrors
	// scorer.Schema().Stateful() — such scorers must see every report
	// through the frame path (the gather advances per-terminal derived
	// state), so the per-report Decide shortcut is disabled for them.
	scorer   handover.BatchScorer
	stateful bool
	cols     *batchCols
	window   float64

	onDecision func(Outcome)

	// metrics/epoch mirror the engine's telemetry wiring (nil/zero when
	// metrics are off); traceEvery/traces drive decision-trace sampling
	// and traceSkip is the shard-local decision countdown.  stageSkip
	// counts sub-batches toward the next sampled stage-timing observation
	// and stageSample marks the in-flight sub-batch as sampled (see
	// stageSampleEvery).
	metrics     *engineMetrics
	epoch       time.Time
	traceEvery  int
	traceSkip   int
	traces      *traceRing
	stageSkip   int
	stageSample bool
	// verdictLocal tallies decision verdicts within the current
	// sub-batch (shard-goroutine only); flushVerdicts publishes it into
	// the readable verdicts atomics once per sub-batch.
	verdictLocal [numVerdicts]uint64

	// submitted is written by producers; the remaining counters by the
	// shard goroutine.
	submitted  atomic.Uint64
	_          pad
	processed  atomic.Uint64
	handovers  atomic.Uint64
	pingpongs  atomic.Uint64
	errors     atomic.Uint64
	nTerminals atomic.Uint64
	verdicts   [numVerdicts]atomic.Uint64
}

// run drains the ingest queue until it is closed, returning emptied
// sub-batch buffers to the free list for producers to refill.  processed
// is advanced once per sub-batch — after every report in it is decided —
// so the counter costs one atomic per channel message, not per report.
//
//fuzzyho:hotpath
func (s *shard) run() {
	for msg := range s.in {
		if msg.ctl != nil {
			//fuzzyho:allow control path: migration extract/restore messages are rare and allowed to allocate; report sub-batches never take this branch
			s.handleCtl(msg.ctl)
			continue
		}
		var start int64
		if m := s.metrics; m != nil {
			// Stage timings are sampled 1-in-stageSampleEvery sub-batches:
			// the histograms stay faithful distributions while the hot loop
			// pays the clock reads and the contended histogram atomics on a
			// small fraction of sub-batches.
			s.stageSkip++
			s.stageSample = s.stageSkip >= stageSampleEvery
			if s.stageSample {
				s.stageSkip = 0
				start = int64(time.Since(s.epoch))
				m.queueWait.Observe(uint64(start - msg.enq))
			}
		}
		batch := msg.batch
		if s.scorer != nil && (len(*batch) > 1 || s.stateful) {
			s.processColumnar(*batch)
		} else {
			for i := range *batch {
				s.process(&(*batch)[i])
			}
		}
		s.processed.Add(uint64(len(*batch)))
		if m := s.metrics; m != nil {
			if s.stageSample {
				m.service.Observe(uint64(int64(time.Since(s.epoch)) - start))
			}
			s.flushVerdicts()
		}
		s.putBuf(batch)
	}
}

// processColumnar serves one sub-batch through the columnar pipeline:
// routeBatch resolves every report's terminal slot up front, the
// measurements are gathered into the scorer's FeatureFrame by its
// declared schema, the history-free decision stages (POTLC gate, FLC
// score, and — for adaptive scorers — the speed-dependent threshold) run
// over the whole frame in one BatchScorer call — through the compiled
// control surface's EvaluateBatch when the controller is compiled — and
// the stateful remainder completes per report, in order, against each
// resolved slot.  Per-terminal decision sequences are identical to the
// per-report path: for stateless schemas the batched stages depend only
// on the measurement, and for stateful schemas the gather advances each
// terminal's derived state in report order — falling back to one report
// at a time (processStatefulSequential) when a terminal repeats within
// the sub-batch, because a mid-batch executed handover resets that
// terminal's derivation and its later rows must be gathered after the
// reset.
//
//fuzzyho:hotpath
func (s *shard) processColumnar(batch []Report) {
	n := len(batch)
	c := s.cols
	hasDup := s.routeBatch(batch)
	if s.stateful && hasDup {
		s.processStatefulSequential(batch)
		return
	}
	f := c.frame
	f.Reset(n)
	if s.stateful {
		// Stateful features read per-terminal derived state: apply the
		// reattachment correction before extraction so the derivation
		// restarts exactly where the per-report path restarts it.
		for i := range batch {
			r := &batch[i]
			t := c.slots[i]
			s.observe(r, t)
			f.Gather(i, &r.Meas, r.Ext, &t.derived)
		}
	} else {
		for i := range batch {
			r := &batch[i]
			f.Gather(i, &r.Meas, r.Ext, nil)
		}
	}
	var scoreStart int64
	sampled := s.metrics != nil && s.stageSample
	if sampled {
		scoreStart = int64(time.Since(s.epoch))
	}
	err := s.scorer.ScoreFrame(f)
	if sampled {
		s.metrics.score.Observe(uint64(int64(time.Since(s.epoch)) - scoreStart))
	}
	if err != nil {
		// Schema errors cannot happen with shard-owned frames; recover
		// rather than dropping the sub-batch.  The stateless fallback
		// re-decides per report; a stateful schema's derivation has
		// already advanced, so its reports commit as algorithm errors.
		if s.stateful {
			for i := range batch {
				s.commit(&batch[i], c.slots[i], s.algo, handover.Decision{}, err)
			}
			return
		}
		for i := range batch {
			s.process(&batch[i])
		}
		return
	}
	if s.stateful {
		// observe already ran during the gather.
		for i := range batch {
			r := &batch[i]
			t := c.slots[i]
			dec, derr := s.scorer.DecideScored(&r.Meas, t.prevDB, t.havePrev, f.HD[i], f.Status[i])
			s.commit(r, t, s.algo, dec, derr)
		}
		return
	}
	for i := range batch {
		r := &batch[i]
		t := c.slots[i]
		s.observe(r, t)
		dec, derr := s.scorer.DecideScored(&r.Meas, t.prevDB, t.havePrev, f.HD[i], f.Status[i])
		s.commit(r, t, s.algo, dec, derr)
	}
}

// processStatefulSequential serves a sub-batch with repeated terminals
// for a stateful schema one report at a time through a 1-row frame: a
// mid-batch executed handover resets the terminal's derived state, and
// the terminal's next report must be gathered after that reset — exactly
// the scalar path's ordering.  Distinct-terminal sub-batches (the normal
// multi-terminal load shape) take the whole-frame path instead.
//
//fuzzyho:hotpath
func (s *shard) processStatefulSequential(batch []Report) {
	c := s.cols
	f := c.frame
	for i := range batch {
		r := &batch[i]
		t := c.slots[i]
		s.observe(r, t)
		f.Reset(1)
		f.Gather(0, &r.Meas, r.Ext, &t.derived)
		var dec handover.Decision
		var derr error
		if err := s.scorer.ScoreFrame(f); err != nil {
			derr = err
		} else {
			dec, derr = s.scorer.DecideScored(&r.Meas, t.prevDB, t.havePrev, f.HD[0], f.Status[0])
		}
		s.commit(r, t, s.algo, dec, derr)
	}
}

// routeBatch resolves the terminal slot of every report in the sub-batch
// in one pass, so the store index is probed once per distinct terminal
// per sub-batch rather than once per report.  Repeats resolve from two
// L1-resident shortcuts: a run of adjacent reports for one terminal
// reuses the previous slot directly, and non-adjacent repeats (a
// population cycling through the batch) hit a small hash-bucket grouping
// table chained over the sub-batch's first occurrences.  Only the slot
// pointers are resolved here — the reattachment correction and state
// commits stay in the per-report completion loop, in report order, so
// per-terminal sequences are untouched.
//
// It reports whether any terminal repeats within the sub-batch — the
// signal the stateful-schema path uses to fall back to sequential
// gathering.
//
//fuzzyho:hotpath
func (s *shard) routeBatch(batch []Report) bool {
	c := s.cols
	hasDup := false
	for i := range c.head {
		c.head[i] = -1
	}
	for i := range batch {
		id := batch[i].Terminal
		if i > 0 && batch[i-1].Terminal == id {
			c.slots[i] = c.slots[i-1]
			hasDup = true
			continue
		}
		h := mix64(uint64(id))
		// Bucket on high hash bits: shard selection consumed the low
		// ones, and within one shard those are correlated.
		b := (h >> 32) & (routeBuckets - 1)
		dup := false
		for j := c.head[b]; j >= 0; j = c.next[j] {
			if batch[j].Terminal == id {
				c.slots[i] = c.slots[j]
				dup = true
				break
			}
		}
		if dup {
			hasDup = true
			continue
		}
		t, created := s.store.acquire(id, h)
		if created {
			//fuzzyho:allow creation path: runs once per terminal lifetime (and may build a per-terminal algorithm); steady state resolves existing slots only
			s.initTerminal(t)
		}
		c.slots[i] = t
		c.next[i] = c.head[b]
		c.head[b] = int8(i)
	}
	return hasDup
}

// initTerminal completes a freshly created (zero-valued) terminal slot.
func (s *shard) initTerminal(t *terminal) {
	if s.newAlgo != nil {
		t.algo = s.newAlgo()
		t.algo.Reset()
	}
	s.nTerminals.Add(1)
}

// observe applies the external-reattachment correction and records the
// report's serving attachment.
//
//fuzzyho:hotpath
func (s *shard) observe(r *Report, t *terminal) {
	if t.haveServing && r.Meas.Serving != t.serving {
		// The radio side reattached the terminal without this engine
		// deciding it (restart, external handover): the previous-epoch
		// power belongs to another cell, so the history restarts, as it
		// does after an engine-decided handover.
		t.havePrev = false
		t.derived.Reset()
		if t.algo != nil {
			t.algo.Reset()
		} else {
			s.algo.Reset()
		}
	}
	t.serving, t.haveServing = r.Meas.Serving, true
}

// route finds (or creates) the terminal state for a report and applies the
// external-reattachment correction.
//
//fuzzyho:hotpath
func (s *shard) route(r *Report) *terminal {
	t, created := s.store.acquire(r.Terminal, mix64(uint64(r.Terminal)))
	if created {
		//fuzzyho:allow creation path: runs once per terminal lifetime (and may build a per-terminal algorithm); steady state resolves existing slots only
		s.initTerminal(t)
	}
	s.observe(r, t)
	return t
}

// process serves one report on the per-report path: route, decide on the
// fast path, commit.  Steady state (known terminal) allocates nothing.
//
//fuzzyho:hotpath
func (s *shard) process(r *Report) {
	t := s.route(r)
	algo := s.algo
	if t.algo != nil {
		algo = t.algo
	}
	dec, err := algo.Decide(r.Meas, t.prevDB, t.havePrev)
	s.commit(r, t, algo, dec, err)
}

// commit applies one decision to the terminal's state, updates counters
// and delivers the outcome.
//
//fuzzyho:hotpath
func (s *shard) commit(r *Report, t *terminal, algo handover.Algorithm, dec handover.Decision, err error) {
	m := &r.Meas
	executed := false
	pingPong := false
	if err != nil {
		s.errors.Add(1)
		dec = handover.Decision{}
	} else if dec.Handover {
		executed = true
		t.handovers++
		s.handovers.Add(1)
		pingPong = t.observeHandover(m.Serving, m.Neighbor, m.WalkedKm, s.window)
		if pingPong {
			t.pingpongs++
			s.pingpongs.Add(1)
		}
		// Commit: the terminal now serves from the neighbor, and — as in
		// the simulator's Measurer.Handover — the power history restarts:
		// havePrev stays false until the next no-handover epoch seeds
		// prevDB from its own measurement.
		t.serving = m.Neighbor
		t.havePrev = false
		t.derived.Reset()
		algo.Reset()
	}
	if !executed {
		// No-handover epochs — including algorithm errors, which are
		// documented to count as one — advance the power history: the
		// measurement itself is valid even when the decision failed.
		t.prevDB = m.ServingDB
		t.havePrev = true
	}
	if s.metrics != nil {
		s.classifyVerdict(&dec, err, executed)
	}
	seq := t.seq
	t.seq++
	if s.traceEvery > 0 {
		s.traceSkip++
		if s.traceSkip >= s.traceEvery {
			s.traceSkip = 0
			//fuzzyho:allow sampled tracing: reached once per traceEvery decisions by construction of the countdown above, and the ring slot is preallocated
			s.captureTrace(r, algo, &dec, err, executed, pingPong, seq)
		}
	}
	if s.onDecision != nil {
		//fuzzyho:allow delivery hook: bound once at engine construction (loopback or cluster reply writer), audited at its definition; the Outcome is passed by value
		s.onDecision(Outcome{
			Terminal: r.Terminal,
			Seq:      seq,
			Decision: dec,
			Executed: executed,
			PingPong: pingPong,
			Shard:    s.id,
			Err:      err,
		})
	}
}
