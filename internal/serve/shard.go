package serve

import (
	"sync/atomic"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// pingPongHistory bounds the per-terminal handover ring the ping-pong scan
// walks.  The simulator's detector keeps the full history; the serving
// layer keeps the most recent entries inline (no allocation per handover)
// — the accounting only diverges if a terminal executes more than this
// many handovers inside one window, which the window exists to prevent.
const pingPongHistory = 8

// hoEvent is one executed handover in a terminal's ring.
type hoEvent struct {
	from, to hexgrid.Cell
	walkedKm float64
}

// terminal is the engine-owned state of one terminal: everything the
// single-threaded sim path keeps in its Measurer/algorithm/detector,
// reduced to what streamed reports cannot carry themselves.
type terminal struct {
	// algo is the terminal-private algorithm (PerTerminalAlgorithms
	// mode); nil means the shard's shared instance decides.
	algo handover.Algorithm
	// seq counts reports served for this terminal.
	seq uint64
	// prevDB/havePrev mirror Measurer.PrevServingDB: the serving power
	// of the previous epoch, invalidated by an executed handover.
	prevDB   float64
	havePrev bool
	// serving tracks the attachment the engine believes the terminal
	// holds (updated on executed handovers, corrected from reports).
	serving     hexgrid.Cell
	haveServing bool
	// handovers/pingpongs are per-terminal tallies.
	handovers uint64
	pingpongs uint64
	// events is the recent-handover ring; next indexes the slot the
	// next event overwrites and total counts events ever recorded.
	events [pingPongHistory]hoEvent
	next   int
	total  int
}

// observeHandover records an executed handover and reports whether it
// closes a ping-pong pair, using the simulator detector's rule: a prior
// B→A hop within the walked-distance window makes this A→B hop a return.
func (t *terminal) observeHandover(from, to hexgrid.Cell, walkedKm, windowKm float64) bool {
	pingPong := false
	n := t.total
	if n > pingPongHistory {
		n = pingPongHistory
	}
	for i := 1; i <= n; i++ {
		prev := t.events[(t.next-i+pingPongHistory)%pingPongHistory]
		if walkedKm-prev.walkedKm > windowKm {
			break
		}
		if prev.from == to && prev.to == from {
			pingPong = true
			break
		}
	}
	t.events[t.next] = hoEvent{from: from, to: to, walkedKm: walkedKm}
	t.next = (t.next + 1) % pingPongHistory
	t.total++
	return pingPong
}

// pad keeps producer-written and consumer-written counters on separate
// cache lines so submitters and the shard goroutine do not false-share.
type pad [64]byte

// batchCols is a shard's struct-of-arrays staging for the columnar
// decision pipeline: a drained sub-batch's measurements laid out as
// columns, scored in one BatchScorer call, decisions completed per row.
// Sized once to maxSubBatch; reused for every sub-batch.
type batchCols struct {
	serving, cssp, ssn, dmb, hd []float64
	status                      []handover.ScoreStatus
}

func newBatchCols() *batchCols {
	return &batchCols{
		serving: make([]float64, maxSubBatch),
		cssp:    make([]float64, maxSubBatch),
		ssn:     make([]float64, maxSubBatch),
		dmb:     make([]float64, maxSubBatch),
		hd:      make([]float64, maxSubBatch),
		status:  make([]handover.ScoreStatus, maxSubBatch),
	}
}

// shard owns one partition of the terminal population.  All fields below
// the queue are touched only by the shard goroutine, except the atomic
// counters, which anyone may read.  The queue carries pooled sub-batches
// (≤ maxSubBatch reports each) so a busy ingest path pays one channel
// operation per sub-batch, not per report.
type shard struct {
	id int
	in chan *[]Report
	// free recycles this shard's drained sub-batch buffers back to
	// producers (see getBuf/putBuf): buffers cycle producer → queue →
	// shard → free list without touching the garbage collector.
	free chan *[]Report

	terminals map[TerminalID]*terminal
	// algo is the shared per-shard instance; newAlgo, when non-nil,
	// builds per-terminal instances instead.
	algo    handover.Algorithm
	newAlgo func() handover.Algorithm
	// scorer is algo's BatchScorer view, non-nil when the shared
	// algorithm supports the columnar batch pipeline.
	scorer handover.BatchScorer
	cols   *batchCols
	window float64

	onDecision func(Outcome)

	// submitted is written by producers; the remaining counters by the
	// shard goroutine.
	submitted  atomic.Uint64
	_          pad
	processed  atomic.Uint64
	handovers  atomic.Uint64
	pingpongs  atomic.Uint64
	errors     atomic.Uint64
	nTerminals atomic.Uint64
}

// run drains the ingest queue until it is closed, returning emptied
// sub-batch buffers to the free list for producers to refill.
func (s *shard) run() {
	for batch := range s.in {
		if s.scorer != nil && len(*batch) > 1 {
			s.processColumnar(*batch)
		} else {
			for _, r := range *batch {
				s.process(r)
			}
		}
		s.putBuf(batch)
	}
}

// processColumnar serves one sub-batch through the columnar pipeline: the
// measurements are transposed into struct-of-arrays columns, the
// stateless decision stages (POTLC gate, FLC score) run over the whole
// batch in one BatchScorer call — through the compiled control surface's
// EvaluateBatch when the controller is compiled — and the stateful
// remainder completes per report, in order, against each terminal's
// history.  Per-terminal decision sequences are identical to the
// per-report path because the batched stages depend only on the
// measurement, never on terminal state.
func (s *shard) processColumnar(batch []Report) {
	n := len(batch)
	c := s.cols
	for i, r := range batch {
		c.serving[i] = r.Meas.ServingDB
		c.cssp[i] = r.Meas.CSSPdB
		c.ssn[i] = r.Meas.NeighborDB
		c.dmb[i] = r.Meas.DMBNorm
	}
	if err := s.scorer.ScoreBatch(c.serving[:n], c.cssp[:n], c.ssn[:n], c.dmb[:n], c.hd[:n], c.status[:n]); err != nil {
		// Shape errors cannot happen with shard-owned columns; fall back
		// to the per-report path rather than dropping the sub-batch.
		for _, r := range batch {
			s.process(r)
		}
		return
	}
	for i, r := range batch {
		t := s.route(r)
		dec, err := s.scorer.DecideScored(r.Meas, t.prevDB, t.havePrev, c.hd[i], c.status[i])
		s.commit(r, t, s.algo, dec, err)
	}
}

// route finds (or creates) the terminal state for a report and applies the
// external-reattachment correction.
func (s *shard) route(r Report) *terminal {
	t := s.terminals[r.Terminal]
	if t == nil {
		t = &terminal{}
		if s.newAlgo != nil {
			t.algo = s.newAlgo()
			t.algo.Reset()
		}
		s.terminals[r.Terminal] = t
		s.nTerminals.Add(1)
	}
	if t.haveServing && r.Meas.Serving != t.serving {
		// The radio side reattached the terminal without this engine
		// deciding it (restart, external handover): the previous-epoch
		// power belongs to another cell, so the history restarts, as it
		// does after an engine-decided handover.
		t.havePrev = false
		if t.algo != nil {
			t.algo.Reset()
		} else {
			s.algo.Reset()
		}
	}
	t.serving, t.haveServing = r.Meas.Serving, true
	return t
}

// process serves one report on the per-report path: route, decide on the
// fast path, commit.  Steady state (known terminal) allocates nothing.
func (s *shard) process(r Report) {
	t := s.route(r)
	algo := s.algo
	if t.algo != nil {
		algo = t.algo
	}
	dec, err := algo.Decide(r.Meas, t.prevDB, t.havePrev)
	s.commit(r, t, algo, dec, err)
}

// commit applies one decision to the terminal's state, updates counters
// and delivers the outcome.
func (s *shard) commit(r Report, t *terminal, algo handover.Algorithm, dec handover.Decision, err error) {
	m := r.Meas
	executed := false
	pingPong := false
	if err != nil {
		s.errors.Add(1)
		dec = handover.Decision{}
	} else if dec.Handover {
		executed = true
		t.handovers++
		s.handovers.Add(1)
		pingPong = t.observeHandover(m.Serving, m.Neighbor, m.WalkedKm, s.window)
		if pingPong {
			t.pingpongs++
			s.pingpongs.Add(1)
		}
		// Commit: the terminal now serves from the neighbor, and — as in
		// the simulator's Measurer.Handover — the power history restarts.
		t.serving = m.Neighbor
		t.havePrev = false
		t.prevDB = m.ServingDB
		algo.Reset()
	}
	if !executed {
		// No-handover epochs — including algorithm errors, which are
		// documented to count as one — advance the power history: the
		// measurement itself is valid even when the decision failed.
		t.prevDB = m.ServingDB
		t.havePrev = true
	}
	seq := t.seq
	t.seq++
	s.processed.Add(1)
	if s.onDecision != nil {
		s.onDecision(Outcome{
			Terminal: r.Terminal,
			Seq:      seq,
			Decision: dec,
			Executed: executed,
			PingPong: pingPong,
			Shard:    s.id,
			Err:      err,
		})
	}
}
