package serve

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

func sampleSnapshot() TerminalSnapshot {
	return TerminalSnapshot{
		Terminal:    7,
		Seq:         42,
		PrevDB:      -88.5,
		HavePrev:    true,
		Serving:     hexgrid.Cell{I: 1, J: -1},
		HaveServing: true,
		Handovers:   3,
		PingPongs:   1,
		TotalEvents: 3,
		Events: []SnapshotEvent{
			{From: hexgrid.Cell{I: 0, J: 0}, To: hexgrid.Cell{I: 1, J: 0}, WalkedKm: 0.4},
			{From: hexgrid.Cell{I: 1, J: 0}, To: hexgrid.Cell{I: 0, J: 0}, WalkedKm: 0.9},
			{From: hexgrid.Cell{I: 0, J: 0}, To: hexgrid.Cell{I: 1, J: -1}, WalkedKm: 1.7},
		},
	}
}

// TestSnapshotCodecRoundTrip pins encode→decode→encode byte identity —
// the property that lets migrations compare shipped state as bytes.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	for name, s := range map[string]TerminalSnapshot{
		"full":  sampleSnapshot(),
		"fresh": {Terminal: 0},
		"ring-overflow": func() TerminalSnapshot {
			s := sampleSnapshot()
			s.TotalEvents = 100
			for len(s.Events) < pingPongHistory {
				s.Events = append(s.Events, SnapshotEvent{WalkedKm: float64(len(s.Events))})
			}
			return s
		}(),
		"negative-zero-db": {Terminal: 1, PrevDB: math.Copysign(0, -1), HavePrev: true},
		"trend": func() TerminalSnapshot {
			s := sampleSnapshot()
			s.Trend = handover.TrendState{PrevSSN: -91.25, Slope: -0.5, Have: true}
			return s
		}(),
		"trend-anchored": {Terminal: 2, Trend: handover.TrendState{PrevSSN: -84, Have: true}},
	} {
		line := AppendSnapshotJSON(nil, s)
		dec, err := ParseSnapshotLine(line)
		if err != nil {
			t.Fatalf("%s: %v\nline: %s", name, err, line)
		}
		again := AppendSnapshotJSON(nil, dec)
		if !bytes.Equal(line, again) {
			t.Errorf("%s: re-encode differs:\n  %s  %s", name, line, again)
		}
	}
}

// TestSnapshotVersionByContent pins the version-selection rule: zero trend
// state emits exactly the seed v1 bytes (paper-path snapshots are
// unchanged by the trend feature), non-zero trend state emits v2 with the
// trailing trend object, and both parse back to the original state.
func TestSnapshotVersionByContent(t *testing.T) {
	plain := AppendSnapshotJSON(nil, sampleSnapshot())
	if !bytes.Contains(plain, []byte(`"v":1`)) || bytes.Contains(plain, []byte(`"trend"`)) {
		t.Errorf("zero-trend snapshot is not plain v1: %s", plain)
	}

	s := sampleSnapshot()
	s.Trend = handover.TrendState{PrevSSN: -91.25, Slope: -0.5, Have: true}
	line := AppendSnapshotJSON(nil, s)
	if !bytes.Contains(line, []byte(`"v":2`)) ||
		!bytes.Contains(line, []byte(`"trend":{"prev_ssn":-91.25,"slope":-0.5,"have":true}`)) {
		t.Errorf("trend snapshot not encoded as v2: %s", line)
	}
	dec, err := ParseSnapshotLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trend != s.Trend {
		t.Errorf("trend state %+v, want %+v", dec.Trend, s.Trend)
	}

	// Validate refuses non-finite trend state (struct-built snapshots on
	// the Restore path; the wire cannot carry NaN).
	s.Trend.Slope = math.NaN()
	if err := s.Validate(); err == nil {
		t.Error("NaN trend slope validated")
	}
}

// TestSnapshotParseRejects pins the validation gate: snapshots that
// would corrupt a restored terminal are refused whole.
func TestSnapshotParseRejects(t *testing.T) {
	for name, tc := range map[string]struct {
		line string
		want string
	}{
		"wrong-version":   {`{"v":3,"terminal":1}`, "version"},
		"missing-version": {`{"terminal":1}`, "version"},
		"trend-on-v1":     {`{"v":1,"terminal":1,"trend":{"prev_ssn":-90,"slope":1,"have":true}}`, "trend"},
		"trend-bad-type":  {`{"v":2,"terminal":1,"trend":{"prev_ssn":"x"}}`, "malformed"},
		"broken-json":     {`{"v":1,`, "malformed"},
		"event-mismatch":  {`{"v":1,"terminal":1,"total_events":2,"events":[]}`, "events"},
		"overflow-total":  {`{"v":1,"terminal":1,"total_events":99999999999}`, "out of range"},
	} {
		if _, err := ParseSnapshotLine([]byte(tc.line)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: ParseSnapshotLine = %v, want error containing %q", name, err, tc.want)
		}
	}
	bad := sampleSnapshot()
	bad.PrevDB = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN prev_db validated")
	}
}

// TestSnapshotFileRoundTrip pins the whole-node file format.
func TestSnapshotFileRoundTrip(t *testing.T) {
	snaps := []TerminalSnapshot{sampleSnapshot(), {Terminal: 9, Seq: 1}}
	var buf bytes.Buffer
	if err := WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snaps) {
		t.Fatalf("read %d snapshots, wrote %d", len(got), len(snaps))
	}
	for i := range snaps {
		if !bytes.Equal(AppendSnapshotJSON(nil, got[i]), AppendSnapshotJSON(nil, snaps[i])) {
			t.Errorf("snapshot %d changed across the file round trip", i)
		}
	}
}

// runEngineSegments serves the report stream through cfg-configured
// engines, migrating the full population through snapshots at each
// segment boundary, and returns the per-terminal outcome sequences.
func runEngineSegments(t *testing.T, cfg Config, terminals int, segments [][]Report) recorder {
	t.Helper()
	rec := newRecorder(terminals)
	cfg.OnDecision = rec.record
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i, seg := range segments {
		if err := e.SubmitBatch(seg); err != nil {
			t.Fatal(err)
		}
		if i == len(segments)-1 {
			break
		}
		// Move the whole population to a fresh engine mid-stream.  No
		// explicit Flush: the extract control message rides the shard
		// queues behind the segment's reports.
		snaps, err := e.ExtractSnapshots(func(TerminalID) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		// Codec round trip on the way: migrated state travels as lines.
		var buf bytes.Buffer
		if err := WriteSnapshots(&buf, snaps); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadSnapshots(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Stop(); err != nil {
			t.Fatal(err)
		}
		next, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := next.Start(); err != nil {
			t.Fatal(err)
		}
		if err := next.RestoreSnapshots(decoded); err != nil {
			t.Fatal(err)
		}
		e = next
	}
	e.Flush()
	e.Stop()
	return rec
}

// TestSnapshotMigrationPreservesSequences is the codec's load-bearing
// guarantee: extract → encode → decode → restore into a fresh engine
// mid-stream, and every terminal's decision sequence is byte-identical
// to an uninterrupted engine — across decision modes.
func TestSnapshotMigrationPreservesSequences(t *testing.T) {
	streams, _ := simStreams(t, paperFleetConfigs())
	terminals := len(streams)
	all := InterleaveReports(streams)
	// Three segments: handovers and ping-pong windows straddle both cuts.
	segs := [][]Report{all[:len(all)/3], all[len(all)/3 : 2*len(all)/3], all[2*len(all)/3:]}

	for name, cfg := range map[string]Config{
		"exact":    {Shards: 3},
		"compiled": {Shards: 3, Compiled: true},
		"adaptive": {Shards: 3, AlgorithmFactory: func() handover.Algorithm { return handover.NewAdaptiveFuzzy() }},
		// The trend scorer's per-terminal derivation rides the snapshot's
		// v2 trend object; losing it across the cut would diverge here.
		"trendfuzzy": {Shards: 3, AlgorithmFactory: func() handover.Algorithm {
			a, err := handover.NewCompiledTrendFuzzy()
			if err != nil {
				panic(err)
			}
			return a
		}},
	} {
		ref := newRecorder(terminals)
		rcfg := cfg
		rcfg.OnDecision = ref.record
		e, err := New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		if err := e.SubmitBatch(all); err != nil {
			t.Fatal(err)
		}
		e.Flush()
		e.Stop()

		got := runEngineSegments(t, cfg, terminals, segs)
		for id := 0; id < terminals; id++ {
			want, have := *ref[TerminalID(id)], *got[TerminalID(id)]
			if len(have) != len(want) {
				t.Fatalf("%s terminal %d: %d outcomes across migrations, %d uninterrupted", name, id, len(have), len(want))
			}
			for j := range want {
				w, h := want[j], have[j]
				if h.Seq != w.Seq || h.Decision != w.Decision || h.Executed != w.Executed || h.PingPong != w.PingPong {
					t.Fatalf("%s terminal %d epoch %d: migrated %+v ≠ uninterrupted %+v", name, id, j, h, w)
				}
			}
		}
	}
}

// TestSnapshotAPISemantics pins the non-migration contracts: whole-node
// snapshots do not disturb state, restores refuse live terminals, and
// per-terminal-algorithm engines refuse the API entirely.
func TestSnapshotAPISemantics(t *testing.T) {
	e, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	rs := clientTestReports(8, 6)
	if err := e.SubmitBatch(rs); err != nil {
		t.Fatal(err)
	}
	snaps, err := e.SnapshotTerminals()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 8 {
		t.Fatalf("SnapshotTerminals returned %d, want 8", len(snaps))
	}
	if tot := e.Stats().Totals(); tot.Terminals != 8 {
		t.Fatalf("non-destructive snapshot changed population: %d terminals", tot.Terminals)
	}
	// Restoring over live terminals must fail per terminal.
	err = e.RestoreSnapshots(snaps[:1])
	var ee *TerminalExistsError
	if !errors.As(err, &ee) {
		t.Fatalf("restore over live terminal: %v", err)
	}
	// Extract removes: the terminal is forgotten.
	victim := snaps[0].Terminal
	ext, err := e.ExtractSnapshots(func(id TerminalID) bool { return id == victim })
	if err != nil || len(ext) != 1 {
		t.Fatalf("extract: %v (%d snaps)", err, len(ext))
	}
	if tot := e.Stats().Totals(); tot.Terminals != 7 {
		t.Fatalf("extract did not remove: %d terminals", tot.Terminals)
	}
	if err := e.RestoreSnapshots(ext); err != nil {
		t.Fatalf("restore after extract: %v", err)
	}

	pt, err := New(Config{Shards: 1, PerTerminalAlgorithms: true,
		AlgorithmFactory: func() handover.Algorithm { return handover.NewHysteresisTTT(3, 2) }})
	if err != nil {
		t.Fatal(err)
	}
	pt.Start()
	defer pt.Stop()
	if _, err := pt.SnapshotTerminals(); !errors.Is(err, ErrStatefulAlgorithms) {
		t.Errorf("SnapshotTerminals on per-terminal engine: %v", err)
	}
	if err := pt.RestoreSnapshots(snaps[:1]); !errors.Is(err, ErrStatefulAlgorithms) {
		t.Errorf("RestoreSnapshots on per-terminal engine: %v", err)
	}
}

// TestTwoPhasePrimitives pins the copy/commit/replay primitives a
// two-phase migration is built from: SnapshotWhere copies without
// removing, DiscardTerminals removes without capturing (and counts),
// and RestoreSnapshotsSkipLive installs exactly the missing terminals —
// the idempotent replay form crash recovery leans on.
func TestTwoPhasePrimitives(t *testing.T) {
	e, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	if err := e.SubmitBatch(clientTestReports(8, 6)); err != nil {
		t.Fatal(err)
	}
	moving := func(id TerminalID) bool { return id%2 == 0 }

	// Copy phase: the source still serves everything it copied.
	copies, err := e.SnapshotWhere(moving)
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 4 {
		t.Fatalf("SnapshotWhere copied %d terminals, want 4", len(copies))
	}
	if tot := e.Stats().Totals(); tot.Terminals != 8 {
		t.Fatalf("copy phase changed population: %d terminals, want 8", tot.Terminals)
	}

	// The destination of the move.
	dst, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst.Start()
	defer dst.Stop()
	if err := dst.RestoreSnapshots(copies); err != nil {
		t.Fatal(err)
	}

	// Release phase: the originals drop without being captured again.
	n, err := e.DiscardTerminals(moving)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("DiscardTerminals dropped %d, want 4", n)
	}
	if tot := e.Stats().Totals(); tot.Terminals != 4 {
		t.Fatalf("release left %d terminals, want 4", tot.Terminals)
	}
	// Releasing again is a no-op, not an error.
	if n, err := e.DiscardTerminals(moving); err != nil || n != 0 {
		t.Fatalf("second release = (%d, %v), want (0, nil)", n, err)
	}

	// Idempotent replay: re-restoring the same copies over a live
	// destination skips every one of them; a half-done restore replayed
	// installs exactly the missing terminals.
	if n, err := dst.RestoreSnapshotsSkipLive(copies); err != nil || n != 0 {
		t.Fatalf("skip-live over live terminals = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := dst.ExtractSnapshots(func(id TerminalID) bool { return id == copies[0].Terminal }); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.RestoreSnapshotsSkipLive(copies); err != nil || n != 1 {
		t.Fatalf("skip-live replay after partial loss = (%d, %v), want (1, nil)", n, err)
	}
	if tot := dst.Stats().Totals(); tot.Terminals != 4 {
		t.Fatalf("destination serves %d terminals after replay, want 4", tot.Terminals)
	}
}
