package serve

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedPartition is the dial/write failure surfaced while a
// FaultInjector's partition is active.
var ErrInjectedPartition = errors.New("serve: injected network partition")

// FaultInjector is a test harness that sits on a NodeClient's wire path
// (wire it as NodeClientConfig.Dial) and injects the failures a real
// network produces: write delays, dropped and duplicated writes, cut
// connections and full partitions.  All knobs are safe for concurrent
// use and act on live connections as well as future dials.
//
// Drops and duplicates act on whole queued lines (one Write per line),
// so they model lost and replayed wire messages, not byte corruption.
type FaultInjector struct {
	mu          sync.Mutex
	delay       time.Duration
	drop        int
	dup         int
	partitioned bool
	conns       []*faultConn
	dials       int
}

// NewFaultInjector returns a transparent injector; arm knobs as needed.
func NewFaultInjector() *FaultInjector { return &FaultInjector{} }

// Dial opens a TCP connection through the injector.  Use as the
// client's Dial hook.
func (f *FaultInjector) Dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	cut := f.partitioned
	f.mu.Unlock()
	if cut {
		return nil, ErrInjectedPartition
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, f: f}
	f.mu.Lock()
	f.dials++
	f.conns = append(f.conns, fc)
	f.mu.Unlock()
	return fc, nil
}

// Dials returns how many connections the injector has opened.
func (f *FaultInjector) Dials() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials
}

// SetDelay makes every subsequent write sleep d first (0 clears).
func (f *FaultInjector) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// DropWrites silently discards the next n writes: the sender believes
// they reached the node.
func (f *FaultInjector) DropWrites(n int) {
	f.mu.Lock()
	f.drop += n
	f.mu.Unlock()
}

// DuplicateWrites sends the next n writes twice.
func (f *FaultInjector) DuplicateWrites(n int) {
	f.mu.Lock()
	f.dup += n
	f.mu.Unlock()
}

// CutAll severs every live connection (the client sees a connection
// loss and redials).  New dials still succeed.
func (f *FaultInjector) CutAll() {
	f.mu.Lock()
	conns := f.conns
	f.conns = nil
	f.mu.Unlock()
	for _, fc := range conns {
		fc.Conn.Close()
	}
}

// Partition cuts every live connection AND fails subsequent dials until
// Heal — the node is unreachable, not just momentarily gone.
func (f *FaultInjector) Partition() {
	f.mu.Lock()
	f.partitioned = true
	f.mu.Unlock()
	f.CutAll()
}

// Heal lifts the partition; the client's next redial succeeds.
func (f *FaultInjector) Heal() {
	f.mu.Lock()
	f.partitioned = false
	f.mu.Unlock()
}

// faultConn applies the injector's knobs to one connection's writes.
type faultConn struct {
	net.Conn
	f *FaultInjector
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.f.mu.Lock()
	delay := c.f.delay
	cut := c.f.partitioned
	drop := c.f.drop > 0
	if drop {
		c.f.drop--
	}
	dup := !drop && c.f.dup > 0
	if dup {
		c.f.dup--
	}
	c.f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		return 0, ErrInjectedPartition
	}
	if drop {
		return len(b), nil
	}
	if dup {
		if _, err := c.Conn.Write(b); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(b)
}
