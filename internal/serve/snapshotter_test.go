package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotterTimeTriggerRetriesAndSkipsIdle pins the background
// snapshot loop's contracts on the time trigger: an idle engine is never
// rewritten, a failed write surfaces through OnError without ending the
// loop (the next tick retries), and a quiet period after a successful
// write stays quiet.
func TestSnapshotterTimeTriggerRetriesAndSkipsIdle(t *testing.T) {
	var decisions atomic.Uint64
	writes := make(chan int, 64)
	failures := make(chan error, 64)
	var failOnce atomic.Bool
	failOnce.Store(true)
	s := &Snapshotter{
		Every: 20 * time.Millisecond,
		Snapshot: func() ([]TerminalSnapshot, error) {
			return []TerminalSnapshot{{Terminal: 1, Seq: decisions.Load()}}, nil
		},
		Decisions: decisions.Load,
		Write: func(snaps []TerminalSnapshot) error {
			if failOnce.CompareAndSwap(true, false) {
				return errors.New("disk full")
			}
			writes <- len(snaps)
			return nil
		},
		OnError: func(err error) { failures <- err },
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); s.Run(stop) }()
	defer func() { close(stop); <-done }()

	// Idle: the time trigger alone must not rewrite an unchanged capture.
	select {
	case <-writes:
		t.Fatal("idle snapshotter wrote with no new decisions")
	case <-failures:
		t.Fatal("idle snapshotter attempted a write")
	case <-time.After(100 * time.Millisecond):
	}

	// New decisions: the first write fails and surfaces; the loop keeps
	// running and the retry succeeds.
	decisions.Store(5)
	select {
	case <-failures:
	case <-time.After(5 * time.Second):
		t.Fatal("write failure never reached OnError")
	}
	select {
	case n := <-writes:
		if n != 1 {
			t.Fatalf("write carried %d snapshots, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loop never retried after the failed write")
	}

	// Quiet again: the successful write reset the idle skip.
	select {
	case <-writes:
		t.Fatal("snapshotter rewrote an unchanged capture after success")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestSnapshotterDecisionTrigger pins the volume trigger: crossing
// EveryDecisions forces a write even with no time trigger configured.
func TestSnapshotterDecisionTrigger(t *testing.T) {
	var decisions atomic.Uint64
	writes := make(chan struct{}, 16)
	s := &Snapshotter{
		EveryDecisions: 3,
		Snapshot:       func() ([]TerminalSnapshot, error) { return nil, nil },
		Decisions:      decisions.Load,
		Write:          func([]TerminalSnapshot) error { writes <- struct{}{}; return nil },
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); s.Run(stop) }()
	defer func() { close(stop); <-done }()

	// Keep deciding until the write lands: the loop samples its baseline
	// when it starts, so a single pre-loop bump could be folded into it.
	deadline := time.After(10 * time.Second)
	for {
		decisions.Add(3)
		select {
		case <-writes:
			return
		case <-deadline:
			t.Fatal("decision-volume trigger never fired")
		case <-time.After(50 * time.Millisecond):
		}
	}
}
