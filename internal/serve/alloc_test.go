package serve

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/handover"
)

// steadyBatch builds a batch cycling nTerminals terminals through
// FLC-engaging, non-handover epochs — the steady-state serving workload.
func steadyBatch(n, nTerminals int) []Report {
	batch := make([]Report, n)
	for i := range batch {
		r := flcMeas(TerminalID(i % nTerminals))
		// Vary the inputs so the FLC fuzzifies fresh values each epoch.
		r.Meas.CSSPdB = -1 + float64(i%5)*0.5
		r.Meas.NeighborDB = -102 + float64(i%7)
		r.Meas.DMBNorm = 0.5 + float64(i%4)*0.1
		batch[i] = r
	}
	return batch
}

// TestSubmitBatchSteadyStateAllocs is the acceptance regression: once
// every terminal has been seen (state structs built, scratches warm), the
// whole SubmitBatch → shard → EvaluateInto → counters path must run
// without heap allocations.  AllocsPerRun counts mallocs process-wide, so
// the shard goroutines are included in the measurement.
func TestSubmitBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the regression runs in the non-race job")
	}
	e, err := New(Config{Shards: 4, QueueDepth: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	batch := steadyBatch(256, 32)
	// Warm: create terminals, grow maps, build scratches, cache sudogs.
	for i := 0; i < 4; i++ {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}

	allocs := testing.AllocsPerRun(20, func() {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	})
	perDecision := allocs / float64(len(batch))
	if perDecision >= 0.01 {
		t.Errorf("steady-state SubmitBatch allocates %.1f per batch (%.4f per decision), want 0",
			allocs, perDecision)
	}
	if got := e.Stats().Totals().Handovers; got != 0 {
		t.Fatalf("steady batch executed %d handovers; the workload is not steady-state", got)
	}
}

// TestTrendWholeFrameSteadyStateAllocs pins the other stateful columnar
// shape: with every sub-batch's terminals distinct, the trend scorer runs
// the whole-frame observe + Gather + ScoreFrame path, which must also be
// allocation-free once terminal state and the shard frames are warm.
func TestTrendWholeFrameSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the regression runs in the non-race job")
	}
	e, err := New(Config{Shards: 4, QueueDepth: 512, AlgorithmFactory: func() handover.Algorithm {
		a, err := handover.NewCompiledTrendFuzzy()
		if err != nil {
			panic(err)
		}
		return a
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	batch := steadyBatch(256, 256) // every terminal appears once per batch
	for i := 0; i < 4; i++ {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}

	allocs := testing.AllocsPerRun(20, func() {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	})
	if perDecision := allocs / float64(len(batch)); perDecision >= 0.01 {
		t.Errorf("trend whole-frame steady state allocates %.1f per batch (%.4f per decision), want 0",
			allocs, perDecision)
	}
}

// TestServeSteadyStateBytesPerShardCount pins the byte side of the
// steady-state contract at every shard count, in every decision mode
// (exact, compiled, and the speed-adaptive extension on the compiled
// kernel): once each shard's sub-batch buffer population exists (built
// lazily while the queue first fills; see bufPool), ingest → decide →
// recycle must allocate nothing, so per-op bytes cannot grow with the
// shard count.  Bytes are measured from MemStats.TotalAlloc, which is
// monotonic and GC-independent.
func TestServeSteadyStateBytesPerShardCount(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the regression runs in the non-race job")
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		{"exact", Config{}},
		{"compiled", Config{Compiled: true}},
		{"adaptive", Config{AlgorithmFactory: func() handover.Algorithm {
			a, err := handover.NewCompiledAdaptiveFuzzy()
			if err != nil {
				panic(err)
			}
			return a
		}}},
		// trendfuzzy's stateful schema drives the stateful columnar paths;
		// the 32-terminal cycling batch repeats terminals within sub-batches,
		// so this pins the sequential one-row-frame fallback at 0 allocs too.
		{"trendfuzzy", Config{AlgorithmFactory: func() handover.Algorithm {
			a, err := handover.NewCompiledTrendFuzzy()
			if err != nil {
				panic(err)
			}
			return a
		}}},
	}
	for _, mode := range modes {
		for _, shards := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", mode.name, shards), func(t *testing.T) {
				cfg := mode.cfg
				cfg.Shards, cfg.QueueDepth = shards, 64
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
				defer e.Stop()
				batch := steadyBatch(256, 32)
				// Warm until the buffer population of every queue exists:
				// submit more sub-batches than shards × depth can hold.
				for i := 0; i < shards*64/2+8; i++ {
					if err := e.SubmitBatch(batch); err != nil {
						t.Fatal(err)
					}
				}
				e.Flush()

				var before, after runtime.MemStats
				const rounds = 20
				runtime.ReadMemStats(&before)
				for i := 0; i < rounds; i++ {
					if err := e.SubmitBatch(batch); err != nil {
						t.Fatal(err)
					}
					e.Flush()
				}
				runtime.ReadMemStats(&after)
				perDecision := float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds*len(batch))
				// The threshold leaves room for runtime-internal noise
				// (ReadMemStats itself, background sweeping) while failing
				// loudly on any real per-decision or per-shard allocation.
				if perDecision >= 2 {
					t.Errorf("steady state allocates %.2f B per decision at %d shards, want ≈ 0",
						perDecision, shards)
				}
			})
		}
	}
}
