package serve

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/obs"
)

// Decision verdict classes: every committed decision falls into exactly
// one, so the serve_verdicts_total counters partition serve_decisions_total.
// Classification is branch-only on the hot path (plus one constant string
// compare to split the PRTLC cancellation from a plain sub-threshold
// verdict); the per-class tallies accumulate in a shard-local array and
// flush to atomics once per sub-batch.
const (
	// verdictGated: the POTLC quality gate kept the call (not scored).
	verdictGated = iota
	// verdictBelow: the FLC scored below the (possibly adaptive) threshold.
	verdictBelow
	// verdictPRTLC: the score crossed the threshold but the PRTLC
	// confirmation found the signal recovering and cancelled.
	verdictPRTLC
	// verdictExecuted: the handover was committed.
	verdictExecuted
	// verdictError: the algorithm evaluation failed.
	verdictError
	numVerdicts
)

// prtlcReason matches core.StagePRTLC.String() and the adaptive
// controller's PRTLC reason — the only scored-no-handover reason that is
// a cancellation rather than a sub-threshold verdict.
const prtlcReason = "PRTLC-confirmation"

// verdictNames label the serve_verdicts_total counter.
var verdictNames = [numVerdicts]string{
	verdictGated:    "quality-gate",
	verdictBelow:    "below-threshold",
	verdictPRTLC:    "prtlc-cancelled",
	verdictExecuted: "execute-handover",
	verdictError:    "error",
}

// engineMetrics holds the engine's per-stage histograms, registered in
// the configured registry.  Stage durations are observed once per queued
// sub-batch (≤ maxSubBatch reports), so with metrics enabled the hot
// path pays a handful of clock reads per 64 decisions; the counters on
// /metrics are not duplicated here — they are exported by a collector
// reading the same shard atomics Stats() reads.
type engineMetrics struct {
	// queueWait is the submit→dequeue wait of one sub-batch.
	queueWait *obs.Histogram
	// service is the dequeue→done time of one sub-batch: decision kernel
	// plus outcome delivery (OnDecision callbacks).
	service *obs.Histogram
	// score is the columnar ScoreFrame kernel time of one sub-batch.
	score *obs.Histogram
	// snapshot/restore are whole-call durations of the snapshot /
	// migration control plane.
	snapshot *obs.Histogram
	restore  *obs.Histogram
}

func newEngineMetrics(r *obs.Registry, labels []obs.Label) *engineMetrics {
	return &engineMetrics{
		queueWait: r.Histogram("serve_queue_wait_ns", labels...),
		service:   r.Histogram("serve_batch_service_ns", labels...),
		score:     r.Histogram("serve_score_ns", labels...),
		snapshot:  r.Histogram("serve_snapshot_ns", labels...),
		restore:   r.Histogram("serve_restore_ns", labels...),
	}
}

// registerCollector exports the engine's live counters into the registry.
// The collector reads the very atomics Stats() reads, so a quiesced
// engine's /metrics and Engine.Stats() can never disagree.
func (e *Engine) registerCollector(r *obs.Registry, labels []obs.Label) {
	base := labels[:len(labels):len(labels)] // appends below must not alias
	r.Collector(func(emit func(obs.Point)) {
		st := e.Stats()
		tot := st.Totals()
		counter := func(name string, v uint64) {
			emit(obs.Point{Name: name, Kind: obs.KindCounter, Labels: base, Value: float64(v)})
		}
		counter("serve_decisions_total", tot.Decisions)
		counter("serve_handovers_total", tot.Handovers)
		counter("serve_pingpongs_total", tot.PingPongs)
		counter("serve_errors_total", tot.Errors)
		emit(obs.Point{Name: "serve_terminals", Kind: obs.KindGauge, Labels: base, Value: float64(tot.Terminals)})
		emit(obs.Point{Name: "serve_queue_depth", Kind: obs.KindGauge, Labels: base, Value: float64(tot.QueueDepth)})
		for _, sh := range st.Shards {
			emit(obs.Point{
				Name: "serve_shard_queue_depth", Kind: obs.KindGauge,
				Labels: append(base, obs.L("shard", strconv.Itoa(sh.Shard))),
				Value:  float64(sh.QueueDepth),
			})
		}
		for v, n := range e.verdictTotals() {
			emit(obs.Point{
				Name: "serve_verdicts_total", Kind: obs.KindCounter,
				Labels: append(base, obs.L("verdict", verdictNames[v])),
				Value:  float64(n),
			})
		}
	})
}

// ServiceHistogram returns the engine's sub-batch service-time histogram
// (decision kernel plus outcome delivery), or nil when the engine was
// built without a metrics registry.  The -stats loops print its windowed
// quantiles.
func (e *Engine) ServiceHistogram() *obs.Histogram {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.service
}

// verdictTotals sums the per-shard verdict counters.
func (e *Engine) verdictTotals() [numVerdicts]uint64 {
	var tot [numVerdicts]uint64
	for _, s := range e.shards {
		for v := range tot {
			tot[v] += s.verdicts[v].Load()
		}
	}
	return tot
}

// Verdicts returns the engine's cumulative decision-verdict counters,
// keyed by verdict name.  The five classes partition the decision count:
// quality-gate, below-threshold, prtlc-cancelled, execute-handover, error.
// Verdicts are tallied only while metrics are enabled (Config.Metrics) —
// an uninstrumented engine keeps its hot path branch-for-branch identical
// to the pre-telemetry layer and reports all-zero tallies here.
func (e *Engine) Verdicts() map[string]uint64 {
	tot := e.verdictTotals()
	out := make(map[string]uint64, numVerdicts)
	for v, n := range tot {
		out[verdictNames[v]] = n
	}
	return out
}

// classifyVerdict tallies one committed decision in the shard-local
// verdict array (flushed to atomics per sub-batch by flushVerdicts).
//
//fuzzyho:hotpath
func (s *shard) classifyVerdict(dec *handover.Decision, err error, executed bool) {
	switch {
	case err != nil:
		s.verdictLocal[verdictError]++
	case executed:
		s.verdictLocal[verdictExecuted]++
	case dec.Scored:
		if dec.Reason == prtlcReason {
			s.verdictLocal[verdictPRTLC]++
		} else {
			s.verdictLocal[verdictBelow]++
		}
	default:
		s.verdictLocal[verdictGated]++
	}
}

// flushVerdicts publishes the shard-local verdict tallies, one atomic add
// per non-zero class per sub-batch.
//
//fuzzyho:hotpath
func (s *shard) flushVerdicts() {
	for v := range s.verdictLocal {
		if n := s.verdictLocal[v]; n != 0 {
			s.verdicts[v].Add(n)
			s.verdictLocal[v] = 0
		}
	}
}

// stageSampleEvery is the sub-batch sampling period of the per-stage
// latency histograms (queue wait, batch service, batch score): every
// stageSampleEvery-th sub-batch per shard is timed and observed.  The
// histograms remain unbiased distribution estimates — sub-batches are
// sampled by count, independent of their content — while the steady
// state pays the clock reads and the engine-wide histogram atomics on
// 1/stageSampleEvery of sub-batches, which is what keeps always-on
// metrics within the serve hot path's throughput budget.  Decision,
// verdict and handover counters are exact, never sampled.
const stageSampleEvery = 8

// DefaultTraceBuffer is the decision-trace ring capacity when
// Config.TraceBuffer is 0.
const DefaultTraceBuffer = 256

// DecisionTrace is one sampled decision with its full explanation: the
// measurement, the verdict, and — when the algorithm implements
// handover.Explainer, as the paper's controllers do — the rendered FLC
// inference trace.  Served as JSON at /tracez.
type DecisionTrace struct {
	Terminal  TerminalID       `json:"terminal"`
	Seq       uint64           `json:"seq"`
	Shard     int              `json:"shard"`
	When      time.Time        `json:"when"`
	Meas      cell.Measurement `json:"meas"`
	Handover  bool             `json:"handover"`
	Executed  bool             `json:"executed"`
	PingPong  bool             `json:"ping_pong"`
	Scored    bool             `json:"scored"`
	Score     float64          `json:"score"`
	Reason    string           `json:"reason"`
	Err       string           `json:"err,omitempty"`
	FLC       string           `json:"flc,omitempty"`
	ExplainNs int64            `json:"explain_ns"`
}

// traceRing is the bounded, engine-wide decision-trace buffer.  Sampled
// captures are rare (every TraceEvery-th decision per shard), so one
// mutex is plenty.
type traceRing struct {
	mu    sync.Mutex
	buf   []DecisionTrace
	next  int
	total uint64
}

func newTraceRing(n int) *traceRing {
	return &traceRing{buf: make([]DecisionTrace, 0, n)}
}

func (r *traceRing) add(t DecisionTrace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the buffered traces, oldest first.
func (r *traceRing) snapshot() []DecisionTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionTrace, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Traces returns the sampled decision traces, oldest first — nil when
// tracing is disabled (Config.TraceEvery 0).
func (e *Engine) Traces() []DecisionTrace {
	if e.traces == nil {
		return nil
	}
	return e.traces.snapshot()
}

// TracesSampled returns how many decisions have been sampled in total
// (including traces the bounded ring has since evicted).
func (e *Engine) TracesSampled() uint64 {
	if e.traces == nil {
		return 0
	}
	e.traces.mu.Lock()
	defer e.traces.mu.Unlock()
	return e.traces.total
}

// captureTrace records one sampled decision, re-running the explainable
// part of the pipeline for the rationale.  This path allocates by design
// — it runs once every TraceEvery decisions, never in between.
func (s *shard) captureTrace(r *Report, algo handover.Algorithm, dec *handover.Decision, err error, executed, pingPong bool, seq uint64) {
	start := time.Now()
	tr := DecisionTrace{
		Terminal: r.Terminal,
		Seq:      seq,
		Shard:    s.id,
		When:     start,
		Meas:     r.Meas,
		Handover: dec.Handover,
		Executed: executed,
		PingPong: pingPong,
		Scored:   dec.Scored,
		Score:    dec.Score,
		Reason:   dec.Reason,
	}
	if err != nil {
		tr.Err = err.Error()
	}
	if ex, ok := algo.(handover.Explainer); ok {
		if text, ok := ex.Explain(r.Meas); ok {
			tr.FLC = text
		}
	}
	tr.ExplainNs = int64(time.Since(start))
	s.traces.add(tr)
}
