package serve

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyBucketsInvertible(t *testing.T) {
	for _, ns := range []uint64{0, 1, 5, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketIndex(ns)
		lo := bucketValue(i)
		if lo > ns {
			t.Errorf("bucketValue(%d) = %d > sample %d", i, lo, ns)
		}
		// Relative resolution: the lower bound is within 1/32 of the sample.
		if ns > 64 && float64(ns-lo)/float64(ns) > 1.0/32 {
			t.Errorf("sample %d mapped to bound %d: error %g", ns, lo, float64(ns-lo)/float64(ns))
		}
	}
}

func TestLatencyRecorderQuantiles(t *testing.T) {
	var l LatencyRecorder
	if l.Quantile(0.5) != 0 || l.Max() != 0 || l.Mean() != 0 {
		t.Error("empty recorder not zero")
	}
	for i := 1; i <= 1000; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	l.Observe(-time.Second) // ignored
	if l.Count() != 1000 {
		t.Fatalf("count %d", l.Count())
	}
	if got := l.Max(); got != 1000*time.Microsecond {
		t.Errorf("max %v", got)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}, {1, 1000 * time.Microsecond}}
	for _, c := range checks {
		got := l.Quantile(c.q)
		// Bucketed lower bound: within 1/32 below the exact order statistic.
		if got > c.want || float64(c.want-got) > float64(c.want)/16 {
			t.Errorf("q%.2f = %v, want ≈ %v", c.q, got, c.want)
		}
	}
	mean := l.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Errorf("mean %v", mean)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	var l LatencyRecorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Errorf("count %d", l.Count())
	}
}
