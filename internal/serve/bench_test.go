package serve

import (
	"fmt"
	"sync"
	"testing"
)

// benchEngine builds and starts an engine with the given shard count.
func benchEngine(b *testing.B, shards int) *Engine {
	b.Helper()
	e, err := New(Config{Shards: shards, QueueDepth: 2048})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Stop() })
	return e
}

// runLoad pushes n reports through the engine from `submitters` concurrent
// goroutines, each cycling its own terminal-disjoint batch, then flushes.
func runLoad(b *testing.B, e *Engine, batches [][]Report, n int) {
	b.Helper()
	var wg sync.WaitGroup
	per := (n + len(batches) - 1) / len(batches)
	for _, batch := range batches {
		wg.Add(1)
		go func(batch []Report) {
			defer wg.Done()
			sent := 0
			for sent < per {
				if err := e.SubmitBatch(batch); err != nil {
					b.Error(err)
					return
				}
				sent += len(batch)
			}
		}(batch)
	}
	wg.Wait()
	e.Flush()
}

// submitterBatches splits a terminal population into terminal-disjoint
// batches, one per submitter, so per-terminal report order is preserved.
func submitterBatches(submitters, batchLen, terminals int) [][]Report {
	out := make([][]Report, submitters)
	for s := range out {
		batch := steadyBatch(batchLen, terminals/submitters)
		for i := range batch {
			batch[i].Terminal = TerminalID(s*1_000_000) + batch[i].Terminal
		}
		out[s] = batch
	}
	return out
}

// BenchmarkServeShards measures steady-state serving throughput (ns per
// decision) as the shard count grows — the scaling headline.  4 submitter
// goroutines feed every configuration so ingest is never the bottleneck.
func BenchmarkServeShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, shards)
			batches := submitterBatches(4, 512, 256)
			// Warm terminal state and scratches.
			runLoad(b, e, batches, 4*512)
			before := e.Stats().Totals().Decisions
			b.ReportAllocs()
			b.ResetTimer()
			runLoad(b, e, batches, b.N)
			b.StopTimer()
			decided := e.Stats().Totals().Decisions - before
			b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/sec")
		})
	}
}

// BenchmarkServeIngestOnly isolates the routing/queueing overhead: every
// report is settled by the POTLC quality gate, so the decision work is a
// branch and the measurement is hash + channel + state bookkeeping.
func BenchmarkServeIngestOnly(b *testing.B) {
	e := benchEngine(b, 4)
	batches := make([][]Report, 4)
	for s := range batches {
		batch := make([]Report, 512)
		for i := range batch {
			batch[i] = gateMeas(TerminalID(s*1_000_000 + i%64))
		}
		batches[s] = batch
	}
	runLoad(b, e, batches, 4*512)
	b.ReportAllocs()
	b.ResetTimer()
	runLoad(b, e, batches, b.N)
}

// BenchmarkServeSubmitBatch measures the producer-side cost alone: one
// goroutine submitting against idle-enough shards (large queue, 4 shards).
func BenchmarkServeSubmitBatch(b *testing.B) {
	e := benchEngine(b, 4)
	batch := steadyBatch(512, 64)
	runLoad(b, e, [][]Report{batch}, 512)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		if err := e.SubmitBatch(batch); err != nil {
			b.Fatal(err)
		}
		sent += len(batch)
	}
	e.Flush()
}
