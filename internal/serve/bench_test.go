package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/handover"
	"repro/internal/obs"
)

// benchQueueDepth is the per-shard queue bound of the serve benchmarks:
// deep enough that ingest is never the bottleneck, shallow enough that the
// warm-up pass can build the complete sub-batch buffer population (shards
// × depth buffers; see bufPool) before the timer starts.
const benchQueueDepth = 256

// benchEngine builds and starts an engine with the given shard count.
func benchEngine(b *testing.B, shards int, compiled bool) *Engine {
	b.Helper()
	return benchEngineCfg(b, Config{Shards: shards, QueueDepth: benchQueueDepth, Compiled: compiled})
}

func benchEngineCfg(b *testing.B, cfg Config) *Engine {
	b.Helper()
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Stop() })
	return e
}

// warmEngine pushes enough reports through the engine to build every
// steady-state resource: terminal state structs, inference scratches, and
// — the big one — the full sub-batch buffer population of every shard
// queue (a queue of depth D lazily builds D buffers while producers
// outpace the shard).  Benchmarks that skip this measure the population
// build as per-op bytes that scale with shards × depth instead of the
// steady state, which is exactly the artifact the old BENCH_serve.json
// recorded.
func warmEngine(b *testing.B, e *Engine, batches [][]Report) {
	b.Helper()
	runLoad(b, e, batches, e.NumShards()*benchQueueDepth*maxSubBatch+4*512)
}

// runLoad pushes n reports through the engine from `submitters` concurrent
// goroutines, each cycling its own terminal-disjoint batch, then flushes.
func runLoad(b *testing.B, e *Engine, batches [][]Report, n int) {
	b.Helper()
	var wg sync.WaitGroup
	per := (n + len(batches) - 1) / len(batches)
	for _, batch := range batches {
		wg.Add(1)
		go func(batch []Report) {
			defer wg.Done()
			sent := 0
			for sent < per {
				if err := e.SubmitBatch(batch); err != nil {
					b.Error(err)
					return
				}
				sent += len(batch)
			}
		}(batch)
	}
	wg.Wait()
	e.Flush()
}

// submitterBatches splits a terminal population into terminal-disjoint
// batches, one per submitter, so per-terminal report order is preserved.
func submitterBatches(submitters, batchLen, terminals int) [][]Report {
	out := make([][]Report, submitters)
	for s := range out {
		batch := steadyBatch(batchLen, terminals/submitters)
		for i := range batch {
			batch[i].Terminal = TerminalID(s*1_000_000) + batch[i].Terminal
		}
		out[s] = batch
	}
	return out
}

// benchServeShards is the body shared by the shard scaling benchmarks
// (exact, compiled and adaptive): 4 submitter goroutines feed every
// configuration so ingest is never the bottleneck, and the warm-up builds
// the full buffer population so the timed region is true steady state.
func benchServeShards(b *testing.B, e *Engine) {
	batches := submitterBatches(4, 512, 256)
	warmEngine(b, e, batches)
	before := e.Stats().Totals().Decisions
	b.ReportAllocs()
	b.ResetTimer()
	runLoad(b, e, batches, b.N)
	b.StopTimer()
	decided := e.Stats().Totals().Decisions - before
	b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/sec")
}

// BenchmarkServeShards measures steady-state serving throughput (ns per
// decision) as the shard count grows — the scaling headline.
func BenchmarkServeShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServeShards(b, benchEngine(b, shards, false))
		})
	}
}

// BenchmarkServeCompiled is BenchmarkServeShards on the compiled control
// surface: the shard decide loop drains sub-batches through the columnar
// EvaluateBatch pipeline instead of per-decision Mamdani inference.
func BenchmarkServeCompiled(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServeShards(b, benchEngine(b, shards, true))
		})
	}
}

// BenchmarkServeCompiledMetrics is BenchmarkServeCompiled with the full
// telemetry layer live — registry, stage histograms, verdict tallies —
// recording what always-on metrics cost the compiled hot path (the
// acceptance budget is <2% against the uninstrumented baseline).
func BenchmarkServeCompiledMetrics(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngineCfg(b, Config{
				Shards: shards, QueueDepth: benchQueueDepth, Compiled: true,
				Metrics: obs.NewRegistry(),
			})
			benchServeShards(b, e)
		})
	}
}

// BenchmarkServeAdaptive serves the speed-adaptive extension on the
// compiled kernel through the columnar pipeline — the third decision mode
// the bench-smoke gate tracks.
func BenchmarkServeAdaptive(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngineCfg(b, Config{
				Shards: shards, QueueDepth: benchQueueDepth,
				AlgorithmFactory: func() handover.Algorithm {
					a, err := handover.NewCompiledAdaptiveFuzzy()
					if err != nil {
						panic(err)
					}
					return a
				},
			})
			benchServeShards(b, e)
		})
	}
}

// BenchmarkServeIngestOnly isolates the routing/queueing overhead: every
// report is settled by the POTLC quality gate, so the decision work is a
// branch and the measurement is hash + channel + state bookkeeping.
func BenchmarkServeIngestOnly(b *testing.B) {
	e := benchEngine(b, 4, false)
	batches := make([][]Report, 4)
	for s := range batches {
		batch := make([]Report, 512)
		for i := range batch {
			batch[i] = gateMeas(TerminalID(s*1_000_000 + i%64))
		}
		batches[s] = batch
	}
	warmEngine(b, e, batches)
	b.ReportAllocs()
	b.ResetTimer()
	runLoad(b, e, batches, b.N)
}

// BenchmarkServeSubmitBatch measures the producer-side cost alone: one
// goroutine submitting against idle-enough shards (large queue, 4 shards).
func BenchmarkServeSubmitBatch(b *testing.B) {
	e := benchEngine(b, 4, false)
	batch := steadyBatch(512, 64)
	warmEngine(b, e, [][]Report{batch})
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		if err := e.SubmitBatch(batch); err != nil {
			b.Fatal(err)
		}
		sent += len(batch)
	}
	e.Flush()
}
