package serve

import (
	"fmt"
	"testing"

	"repro/internal/handover"
	"repro/internal/sim"
)

// simStreams runs the given configs through the single-threaded simulator
// and returns one tagged report stream per run plus the reference results.
func simStreams(t *testing.T, cfgs []sim.Config) ([][]Report, []*sim.Result) {
	t.Helper()
	streams := make([][]Report, len(cfgs))
	results := make([]*sim.Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("sim config %d: %v", i, err)
		}
		results[i] = res
		streams[i] = ReplayReports(TerminalID(i), res.Measurements())
	}
	return streams, results
}

// paperFleetConfigs expands both paper scenarios across replicas × speeds —
// a small fleet with runs that do and do not hand over.
func paperFleetConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, base := range []sim.Config{sim.PaperBoundaryConfig(), sim.PaperCrossingConfig()} {
		c, _ := sim.SweepGrid("x", base, 2, []float64{0, 30})
		cfgs = append(cfgs, c...)
	}
	return cfgs
}

// recorder collects outcomes per terminal.  Entries are created before the
// engine starts; each terminal's slice is appended to by exactly one shard
// goroutine, so no locking is needed.
type recorder map[TerminalID]*[]Outcome

func newRecorder(n int) recorder {
	r := make(recorder, n)
	for i := 0; i < n; i++ {
		r[TerminalID(i)] = new([]Outcome)
	}
	return r
}

func (r recorder) record(o Outcome) { *r[o.Terminal] = append(*r[o.Terminal], o) }

// checkAgainstSim compares each terminal's outcome sequence with the
// reference sim run: decision (verdict, score, reason), execution flag and
// ping-pong accounting must all match epoch by epoch.
func checkAgainstSim(t *testing.T, rec recorder, results []*sim.Result, shards int) {
	t.Helper()
	for i, res := range results {
		got := *rec[TerminalID(i)]
		if len(got) != len(res.Epochs) {
			t.Fatalf("shards=%d terminal %d: %d outcomes, sim has %d epochs",
				shards, i, len(got), len(res.Epochs))
		}
		pingpongs := 0
		for j, o := range got {
			e := res.Epochs[j]
			if o.Err != nil {
				t.Fatalf("shards=%d terminal %d epoch %d: %v", shards, i, j, o.Err)
			}
			if o.Seq != uint64(j) {
				t.Fatalf("shards=%d terminal %d epoch %d: seq %d", shards, i, j, o.Seq)
			}
			if o.Decision != e.Decision {
				t.Errorf("shards=%d terminal %d epoch %d: decision %+v, sim %+v",
					shards, i, j, o.Decision, e.Decision)
			}
			if o.Executed != e.Executed {
				t.Errorf("shards=%d terminal %d epoch %d: executed %v, sim %v",
					shards, i, j, o.Executed, e.Executed)
			}
			if o.PingPong {
				pingpongs++
			}
		}
		if pingpongs != res.PingPongCount {
			t.Errorf("shards=%d terminal %d: %d ping-pongs, sim counted %d",
				shards, i, pingpongs, res.PingPongCount)
		}
	}
}

// TestDeterminismMatchesSim is the multi-shard determinism guarantee:
// replaying sim-generated walks for a fleet of terminals through the
// engine — reports interleaved round-robin across terminals, any shard
// count — yields per-terminal decision sequences identical to the
// single-threaded sim path.
func TestDeterminismMatchesSim(t *testing.T) {
	cfgs := paperFleetConfigs()
	streams, results := simStreams(t, cfgs)
	reports := InterleaveReports(streams)

	for _, shards := range []int{1, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rec := newRecorder(len(cfgs))
			e, err := New(Config{
				Shards:           shards,
				QueueDepth:       64,
				PingPongWindowKm: sim.DefaultPingPongWindowKm,
				OnDecision:       rec.record,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			if err := e.SubmitBatch(reports); err != nil {
				t.Fatal(err)
			}
			e.Flush()
			if err := e.Stop(); err != nil {
				t.Fatal(err)
			}
			checkAgainstSim(t, rec, results, shards)

			totals := e.Stats().Totals()
			wantHO, wantPP := uint64(0), uint64(0)
			for _, res := range results {
				wantHO += uint64(res.HandoverCount())
				wantPP += uint64(res.PingPongCount)
			}
			if totals.Decisions != uint64(len(reports)) ||
				totals.Handovers != wantHO || totals.PingPongs != wantPP ||
				totals.Terminals != uint64(len(cfgs)) || totals.Errors != 0 {
				t.Errorf("totals %+v, want decisions=%d handovers=%d pingpongs=%d terminals=%d",
					totals, len(reports), wantHO, wantPP, len(cfgs))
			}
		})
	}
}

// trendFleetConfigs expands the trend-drift scenario family across
// replicas × speeds with the given algorithm factory — the fleet for the
// 4-input stateful-schema determinism pins.
func trendFleetConfigs(factory func() handover.Algorithm) []sim.Config {
	cfgs, _ := sim.SweepGrid("trend", sim.TrendDriftConfig(), 2, []float64{0, 30})
	for i := range cfgs {
		cfgs[i].AlgorithmFactory = factory
	}
	return cfgs
}

// TestDeterminismTrendFuzzy pins the stateful-schema columnar path: the
// 4-input trend controller's serve decisions — the SSN-trend feature
// extracted from shard-held per-terminal derived state and scored through
// the whole-frame gather — must match the single-threaded sim path, which
// advances the same derivation inside the scalar Decide.  Interleaved
// streams keep sub-batch terminals distinct, so this drives the
// whole-frame stateful gather.
func TestDeterminismTrendFuzzy(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		t.Run(fmt.Sprintf("compiled=%v", compiled), func(t *testing.T) {
			factory, err := handover.AlgorithmFactoryFor("trendfuzzy", compiled)
			if err != nil {
				t.Fatal(err)
			}
			cfgs := trendFleetConfigs(factory)
			streams, results := simStreams(t, cfgs)
			reports := InterleaveReports(streams)

			for _, shards := range []int{1, 4} {
				rec := newRecorder(len(cfgs))
				e, err := New(Config{
					Shards:           shards,
					QueueDepth:       64,
					AlgorithmFactory: factory,
					PingPongWindowKm: sim.DefaultPingPongWindowKm,
					OnDecision:       rec.record,
				})
				if err != nil {
					t.Fatal(err)
				}
				if want := handover.TrendFeatureSchema().Hash(); e.SchemaHash() != want {
					t.Fatalf("engine schema hash %#x, want trend schema %#x", e.SchemaHash(), want)
				}
				if err := e.Start(); err != nil {
					t.Fatal(err)
				}
				if err := e.SubmitBatch(reports); err != nil {
					t.Fatal(err)
				}
				e.Flush()
				if err := e.Stop(); err != nil {
					t.Fatal(err)
				}
				checkAgainstSim(t, rec, results, shards)
			}
		})
	}
}

// TestDeterminismTrendFuzzySequentialBatches covers the stateful repeat
// fallback: submitting each terminal's stream contiguously puts repeated
// terminals inside single sub-batches, forcing processStatefulSequential's
// one-row frames — whose decisions must still match the sim reference.
func TestDeterminismTrendFuzzySequentialBatches(t *testing.T) {
	factory, err := handover.AlgorithmFactoryFor("trendfuzzy", true)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := trendFleetConfigs(factory)
	streams, results := simStreams(t, cfgs)
	var reports []Report
	for _, s := range streams {
		reports = append(reports, s...)
	}

	rec := newRecorder(len(cfgs))
	e, err := New(Config{
		Shards:           4,
		QueueDepth:       64,
		AlgorithmFactory: factory,
		PingPongWindowKm: sim.DefaultPingPongWindowKm,
		OnDecision:       rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	checkAgainstSim(t, rec, results, 4)
}

// TestDeterminismPerTerminalAlgorithms covers the stateful-algorithm mode:
// per-terminal HysteresisTTT instances must reproduce the sim sequences,
// streak state and all, under concurrent sharding.
func TestDeterminismPerTerminalAlgorithms(t *testing.T) {
	factory := func() handover.Algorithm { return handover.NewHysteresisTTT(3, 2) }
	cfgs := paperFleetConfigs()
	for i := range cfgs {
		cfgs[i].AlgorithmFactory = factory
	}
	streams, results := simStreams(t, cfgs)
	reports := InterleaveReports(streams)

	rec := newRecorder(len(cfgs))
	e, err := New(Config{
		Shards:                4,
		QueueDepth:            64,
		AlgorithmFactory:      factory,
		PerTerminalAlgorithms: true,
		PingPongWindowKm:      sim.DefaultPingPongWindowKm,
		OnDecision:            rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	checkAgainstSim(t, rec, results, 4)

	// The probe is only meaningful if the TTT baseline actually fires
	// somewhere in the fleet.
	if e.Stats().Totals().Handovers == 0 {
		t.Error("TTT fleet executed no handovers; streak state never exercised")
	}
}
