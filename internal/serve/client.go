package serve

import (
	"bufio"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Node-client defaults.
const (
	// DefaultNodeQueueDepth bounds a node client's send queue, in encoded
	// batch lines.
	DefaultNodeQueueDepth = 256
	// DefaultRedialWait is the base pause before the first reconnect
	// attempt; later attempts back off exponentially from it.
	DefaultRedialWait = 200 * time.Millisecond
	// DefaultRedialMaxWait caps the exponential reconnect backoff.
	DefaultRedialMaxWait = 3 * time.Second
	// DefaultMaxRedials bounds consecutive failed reconnect attempts
	// before the client goes fatally down.
	DefaultMaxRedials = 25
	// DefaultCloseGrace bounds how long Close waits for the node to
	// answer the drained tail (and for a blocked write to clear) before
	// the connection is cut and the remainder accounted lost.
	DefaultCloseGrace = 10 * time.Second
)

// ErrClientClosed is returned by NodeClient sends after Close.
var ErrClientClosed = errors.New("serve: node client closed")

// NodeClientConfig configures a NodeClient.
type NodeClientConfig struct {
	// QueueDepth bounds the send queue in encoded batch lines (0:
	// DefaultNodeQueueDepth).  A full queue is per-node backpressure:
	// TrySend fails fast with ErrBacklogged, Send blocks.
	QueueDepth int
	// OnOutcome receives every decoded decision, in the node's emission
	// order (per-terminal order is the engine's submission order).  It
	// runs on the client's reader goroutine.
	OnOutcome func(Outcome)
	// OnError receives line-level remote rejects, lost-report notices and
	// connection errors.  Nil discards them — set it: the client's
	// no-silent-drop guarantee is only as good as the listener.
	OnError func(error)
	// RedialWait is the base pause before the first reconnect attempt
	// (0: default); attempt n waits about RedialWait·2ⁿ, jittered.
	RedialWait time.Duration
	// RedialMaxWait caps the exponential backoff between reconnect
	// attempts (0: default; clamped up to RedialWait).
	RedialMaxWait time.Duration
	// MaxRedials bounds consecutive failed reconnects before the client
	// goes fatally down (0: default; negative: no reconnection at all).
	MaxRedials int
	// CloseGrace bounds Close's wait for the tail of decisions (0:
	// DefaultCloseGrace).  Flush before Close to not race the grace.
	CloseGrace time.Duration
	// ClientID is the connection identity announced to the node in the
	// hello control line; a reconnection with the same identity takes
	// over the dead connection's terminal claims instead of bouncing off
	// them (0: a fresh random identity).
	ClientID string
	// SchemaHash is the feature-schema hash announced in the hello
	// control line (0: not announced, and the node checks the paper
	// schema).  A node whose engine scores a different schema rejects
	// the connection outright — mixed-schema report routing would
	// mis-gather feature columns silently.
	SchemaHash uint64
	// Dial overrides how connections are established (nil: net.Dial
	// "tcp").  The fault-injection harness hooks here.
	Dial func(addr string) (net.Conn, error)
}

// NodeCounters is a snapshot of a NodeClient's report ledger.
type NodeCounters struct {
	// Submitted counts reports accepted into the send queue; Delivered
	// the outcomes received back; Lost the reports the client has given
	// up on (connection died with them in flight, or the client went
	// fatally down with them queued).  Submitted − Delivered − Lost is
	// the in-flight balance Flush waits on.
	Submitted, Delivered, Lost uint64
	// Handovers/PingPongs tally executed handovers and flagged returns
	// among the delivered outcomes; RemoteErrors counts line-level
	// rejects the node sent back.
	Handovers, PingPongs, RemoteErrors uint64
	// Reconnects counts successful re-establishments of the connection;
	// Redials every reconnect attempt, successful or not — the gap
	// between them is the node's flappiness, which /metrics exports as
	// serve_client_redials_total.
	Reconnects, Redials uint64
	// QueuedLines is the instantaneous send-queue depth in lines.
	QueuedLines int
}

// pendingLine is one encoded batch line in the send queue.
type pendingLine struct {
	line []byte
	n    uint64 // reports in the line
}

// NodeClient speaks the newline-JSON wire protocol to one remote engine
// node (a hoserve daemon): report batches out on a single ordered
// connection, decision lines back.  It is the per-node building block of
// the cluster's TCP router.
//
// Delivery contract: every submitted report is either decided (OnOutcome)
// or loudly lost — when the connection dies, in-flight reports are counted
// in Lost and surfaced through OnError; the client then reconnects (up to
// MaxRedials) and keeps serving the queue.  Reports are never silently
// dropped and never retried (a retry after a partial write could replay a
// decision and fork the terminal's state stream — re-submission policy
// belongs to the caller, which knows whether its stream is idempotent).
type NodeClient struct {
	addr string
	cfg  NodeClientConfig

	queue chan pendingLine

	// mu guards the closing flag against sends.
	mu      sync.RWMutex
	closing bool
	// connMu guards conn, the live connection, so Close can bound a
	// blocked read or write with a deadline.
	connMu sync.Mutex
	conn   net.Conn
	// down closes when the client goes fatally down; fatalErr carries the
	// error.  Kept apart from mu so a sender blocked on a full queue can
	// observe the transition without anyone needing the write lock.
	down     chan struct{}
	fatalErr atomic.Pointer[error]

	wg sync.WaitGroup

	// ctlMu admits one control operation (Extract/Restore) at a time;
	// pendMu guards the pending op the reader completes.
	ctlMu  sync.Mutex
	pendMu sync.Mutex
	pend   *ctlOp

	submitted  atomic.Uint64
	written    atomic.Uint64
	delivered  atomic.Uint64
	lost       atomic.Uint64
	handovers  atomic.Uint64
	pingpongs  atomic.Uint64
	remoteErrs atomic.Uint64
	reconnects atomic.Uint64
	redials    atomic.Uint64
}

// ctlOp is one in-flight control operation: the reader goroutine
// accumulates shipped snapshots (or the stats payload, or an ack's
// count/node) into it and completes done exactly once.
type ctlOp struct {
	snaps []TerminalSnapshot
	stats WireStats
	count int
	node  int
	done  chan error // buffered; completion never blocks the reader
}

// DialNode connects to a node daemon and starts the writer/reader loops.
// The initial dial is synchronous: a node that is down at construction is
// reported immediately, not after a queue fills.
func DialNode(addr string, cfg NodeClientConfig) (*NodeClient, error) {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultNodeQueueDepth
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: node queue depth %d must be positive", cfg.QueueDepth)
	}
	if cfg.RedialWait == 0 {
		cfg.RedialWait = DefaultRedialWait
	}
	if cfg.RedialMaxWait == 0 {
		cfg.RedialMaxWait = DefaultRedialMaxWait
	}
	if cfg.RedialMaxWait < cfg.RedialWait {
		cfg.RedialMaxWait = cfg.RedialWait
	}
	if cfg.MaxRedials == 0 {
		cfg.MaxRedials = DefaultMaxRedials
	}
	if cfg.CloseGrace == 0 {
		cfg.CloseGrace = DefaultCloseGrace
	}
	if cfg.ClientID == "" {
		cfg.ClientID = newClientID()
	}
	c := &NodeClient{
		addr:  addr,
		cfg:   cfg,
		queue: make(chan pendingLine, cfg.QueueDepth),
		down:  make(chan struct{}),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("serve: node %s: %w", addr, err)
	}
	c.wg.Add(1)
	go c.run(conn)
	return c, nil
}

// Addr returns the node address the client dials.
func (c *NodeClient) Addr() string { return c.addr }

// Err returns the sticky fatal error, if the client has gone down.
func (c *NodeClient) Err() error {
	if p := c.fatalErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Send encodes the reports as one batch line and enqueues it, blocking
// while the node's queue is full (backpressure).  It fails with
// ErrClientClosed after Close and with the fatal error once the client
// has given up on the node.
func (c *NodeClient) Send(rs []Report) error { return c.send(rs, true) }

// TrySend is Send without blocking: a full queue fails fast with
// ErrBacklogged so the caller can shed or retry on its own terms.
func (c *NodeClient) TrySend(rs []Report) error { return c.send(rs, false) }

func (c *NodeClient) send(rs []Report, block bool) error {
	if len(rs) == 0 {
		return nil
	}
	// Enforce wire validity before anything is enqueued: one invalid
	// report (non-finite float, negative distance, serving == neighbor)
	// would make the remote daemon reject part or all of the coalesced
	// line — dropping other reports on it and opening a ledger gap the
	// client cannot account.  The in-process backends accept what the
	// engine accepts; the wire must be held to the wire's rules here.
	for i := range rs {
		if err := rs[i].Wire().Validate(); err != nil {
			return fmt.Errorf("serve: node %s: report %d: %w", c.addr, i, err)
		}
	}
	p := pendingLine{line: AppendBatchJSON(make([]byte, 0, 160*len(rs)), rs), n: uint64(len(rs))}
	return c.enqueue(p, block, time.Time{})
}

// enqueue adds one encoded line to the send queue.  block=false fails
// fast on a full queue; a non-zero deadline bounds the blocking wait.
func (c *NodeClient) enqueue(p pendingLine, block bool, deadline time.Time) error {
	var wait *time.Timer
	defer func() {
		if wait != nil {
			wait.Stop()
		}
	}()
	for {
		// The enqueue itself is non-blocking and happens under the read
		// lock, after the closing/fatal checks: a line is only ever added
		// while the writer is still guaranteed to drain it (Close flips
		// the flag under the write lock, goDown drains under it).
		// Critically, no sender blocks while holding the lock — that
		// would deadlock Close/goDown against a stalled peer.
		c.mu.RLock()
		if c.closing {
			c.mu.RUnlock()
			return ErrClientClosed
		}
		if err := c.Err(); err != nil {
			c.mu.RUnlock()
			return err
		}
		select {
		case c.queue <- p:
			c.submitted.Add(p.n)
			c.mu.RUnlock()
			return nil
		default:
		}
		c.mu.RUnlock()
		if !block {
			return ErrBacklogged
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("serve: node %s: send queue full past deadline", c.addr)
		}
		// Queue full: wait for drain (or client death) without the lock.
		// One reusable timer — a saturated sender must not allocate a
		// fresh timer every spin.
		if wait == nil {
			wait = time.NewTimer(100 * time.Microsecond)
		} else {
			wait.Reset(100 * time.Microsecond)
		}
		select {
		case <-c.down:
			return c.Err()
		case <-wait.C:
		}
	}
}

// Flush blocks until every report submitted before the call is either
// delivered or accounted lost, or the timeout elapses.  The target is
// snapshotted once — concurrent submitters cannot turn Flush into a
// moving-target wait.  It returns the client's fatal error if it went
// down, and a descriptive error on timeout.
func (c *NodeClient) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	sub := c.submitted.Load()
	for {
		if c.delivered.Load()+c.lost.Load() >= sub {
			return c.Err()
		}
		if err := c.Err(); err != nil {
			// Down for good: the outstanding balance will never clear.
			return err
		}
		if n := c.remoteErrs.Load(); n > 0 {
			// The node rejected n whole ingest lines: their reports will
			// never be decided and the client cannot know how many there
			// were, so the balance can never provably clear.  Fail fast
			// instead of burning the whole timeout on every Flush.
			return fmt.Errorf("serve: node %s: %d ingest line(s) rejected by the node; the ledger cannot balance (see OnError for the rejects)", c.addr, n)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: node %s: flush timed out with %d of %d reports outstanding",
				c.addr, sub-c.delivered.Load()-c.lost.Load(), sub)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Close stops accepting sends, drains the queued lines to the node, reads
// the remaining decisions and tears the connection down.  The whole
// teardown is bounded by CloseGrace: a node that stops answering cannot
// wedge Close — the tail is cut and accounted lost instead.  Safe to call
// once; concurrent with sends.
func (c *NodeClient) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.closing = true
	c.mu.Unlock()
	// Bound a write blocked against a stalled peer (and the read drain).
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.SetDeadline(time.Now().Add(c.cfg.CloseGrace))
	}
	c.connMu.Unlock()
	c.wg.Wait()
	return c.Err()
}

// setConn records the live connection for Close to bound.  (Lock order:
// connMu may take mu's read side; Close releases mu before taking connMu,
// so there is no inversion.)
func (c *NodeClient) setConn(conn net.Conn) {
	c.connMu.Lock()
	c.conn = conn
	if c.isClosing() {
		conn.SetDeadline(time.Now().Add(c.cfg.CloseGrace))
	}
	c.connMu.Unlock()
}

// Counters snapshots the report ledger.
func (c *NodeClient) Counters() NodeCounters {
	return NodeCounters{
		Submitted:    c.submitted.Load(),
		Delivered:    c.delivered.Load(),
		Lost:         c.lost.Load(),
		Handovers:    c.handovers.Load(),
		PingPongs:    c.pingpongs.Load(),
		RemoteErrors: c.remoteErrs.Load(),
		Reconnects:   c.reconnects.Load(),
		Redials:      c.redials.Load(),
		QueuedLines:  len(c.queue),
	}
}

// surfaces err through OnError, if set.
func (c *NodeClient) surface(err error) {
	if c.cfg.OnError != nil {
		c.cfg.OnError(err)
	}
}

// isClosing reports whether Close has been requested.
func (c *NodeClient) isClosing() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.closing
}

// run owns the connection lifecycle: write the queue to the connection,
// read decisions back, reconnect on failure, account in-flight reports as
// lost whenever a connection dies.
func (c *NodeClient) run(conn net.Conn) {
	defer c.wg.Done()
	for {
		c.setConn(conn)
		// Announce the connection identity before anything else: the
		// node keys claim takeover on it, so a reconnection must say who
		// it is before its first report line bounces off stale claims.
		if _, err := conn.Write(AppendControlJSON(nil, WireControl{Op: "hello", Client: c.cfg.ClientID, Schema: c.cfg.SchemaHash})); err != nil {
			conn.Close()
			c.surface(fmt.Errorf("serve: node %s: hello: %w", c.addr, err))
			next, rerr := c.redial()
			if rerr != nil {
				c.failPendingCtl(rerr)
				c.goDown(rerr)
				return
			}
			conn = next
			continue
		}
		readerDone := make(chan struct{})
		go c.readLoop(conn, readerDone)
		finished, werr := c.writeLoop(conn, readerDone)
		if finished {
			// Clean shutdown: everything queued was written; half-close
			// so the node sees EOF, decides the tail and closes — the
			// reader drains those decisions before we return, bounded by
			// the close grace so a mute peer cannot wedge us.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				conn.Close()
			}
			conn.SetReadDeadline(time.Now().Add(c.cfg.CloseGrace))
			<-readerDone
			conn.Close()
			c.accountLost("connection closed")
			c.failPendingCtl(ErrClientClosed)
			return
		}
		conn.Close()
		<-readerDone
		c.accountLost("connection lost")
		// A control op spanning the dead connection cannot resume — its
		// partial snapshot stream is gone.  Fail it; the caller retries.
		c.failPendingCtl(fmt.Errorf("serve: node %s: connection lost during control op", c.addr))
		if werr != nil {
			c.surface(fmt.Errorf("serve: node %s: %w", c.addr, werr))
		}
		next, err := c.redial()
		if err != nil {
			c.goDown(err)
			return
		}
		conn = next
	}
}

// writeLoop drains the send queue onto the connection.  It returns
// finished=true when Close was requested and the queue is empty, false
// (with the error) when the connection failed — including a connection
// the peer closed, which only the reader notices (readerDone).
func (c *NodeClient) writeLoop(conn net.Conn, readerDone <-chan struct{}) (finished bool, err error) {
	write := func(p pendingLine) error {
		// The line may partially reach the node on failure, where the
		// fragment cannot parse as a complete report line; its reports
		// are this connection's in-flight loss either way.
		_, werr := conn.Write(p.line)
		c.written.Add(p.n)
		return werr
	}
	idle := time.NewTimer(10 * time.Millisecond)
	defer idle.Stop()
	for {
		select {
		case p := <-c.queue:
			if err := write(p); err != nil {
				return false, err
			}
		default:
			if c.isClosing() {
				// Queue empty and no new sends can start: done.  (A send
				// that raced the closing flag enqueued before we read it
				// here — the inner drain below catches it.)
				select {
				case p := <-c.queue:
					if err := write(p); err != nil {
						return false, err
					}
					continue
				default:
					return true, nil
				}
			}
			// Idle: block until work, peer death or closing (reusable
			// timer — this arm runs for the life of the connection).
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(10 * time.Millisecond)
			select {
			case p := <-c.queue:
				if err := write(p); err != nil {
					return false, err
				}
			case <-readerDone:
				return false, errors.New("connection closed by peer")
			case <-idle.C:
			}
		}
	}
}

// readLoop decodes decision lines until the connection fails or closes.
func (c *NodeClient) readLoop(conn net.Conn, done chan<- struct{}) {
	defer close(done)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for scanner.Scan() {
		if isControlLine(scanner.Bytes()) {
			c.handleCtlLine(scanner.Bytes())
			continue
		}
		w, err := ParseOutcomeLine(scanner.Bytes())
		if err != nil {
			var we *WireError
			if errors.As(err, &we) {
				// The node rejected a whole ingest line: its reports will
				// never be decided.  The client cannot know the count from
				// here, so it surfaces loudly and lets Flush's timeout
				// catch the ledger gap.
				c.remoteErrs.Add(1)
				c.surface(fmt.Errorf("serve: node %s rejected a line: %w", c.addr, err))
			} else {
				c.surface(fmt.Errorf("serve: node %s: %w", c.addr, err))
			}
			continue
		}
		o := w.Outcome()
		if o.Executed {
			c.handovers.Add(1)
		}
		if o.PingPong {
			c.pingpongs.Add(1)
		}
		if c.cfg.OnOutcome != nil {
			c.cfg.OnOutcome(o)
		}
		// Counted only after the callback returns: Flush observing
		// delivered == submitted must mean every outcome has fully reached
		// the caller, so post-Flush reads of callback state are ordered.
		c.delivered.Add(1)
	}
}

// accountLost moves the written-but-undelivered balance into the lost
// ledger and surfaces it.  Called only from run, with no reader active.
func (c *NodeClient) accountLost(cause string) {
	inflight := c.written.Load() - c.delivered.Load() - c.lost.Load()
	if inflight == 0 {
		return
	}
	c.lost.Add(inflight)
	c.surface(fmt.Errorf("serve: node %s: %s with %d reports in flight; they are lost (resubmit if idempotent)",
		c.addr, cause, inflight))
}

// redialDelay computes the pause before reconnect attempt (0-based):
// exponential from base, capped at max, plus up to half a step of jitter
// (jitter ∈ [0,1)).  Pure, so the schedule is testable; jitter keeps a
// fleet of clients that lost the same node from redialing in lockstep.
func redialDelay(base, max time.Duration, attempt int, jitter float64) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + time.Duration(jitter*float64(d)/2)
}

// redial re-establishes the connection with bounded retries and
// exponential backoff.  Every attempt — the first included — waits
// beforehand: the node needs a beat to notice the dead connection before
// the replacement arrives (same-identity takeover covers the race, but
// an orderly release is cheaper than a takeover drain).
func (c *NodeClient) redial() (net.Conn, error) {
	if c.cfg.MaxRedials < 0 {
		return nil, fmt.Errorf("serve: node %s: connection lost and reconnection disabled", c.addr)
	}
	var last error
	for i := 0; i < c.cfg.MaxRedials; i++ {
		time.Sleep(redialDelay(c.cfg.RedialWait, c.cfg.RedialMaxWait, i, rand.Float64()))
		if c.isClosing() {
			return nil, fmt.Errorf("serve: node %s: closed while reconnecting", c.addr)
		}
		c.redials.Add(1)
		conn, err := c.dial()
		if err == nil {
			c.reconnects.Add(1)
			return conn, nil
		}
		last = err
	}
	return nil, fmt.Errorf("serve: node %s: gave up after %d reconnect attempts: %w", c.addr, c.cfg.MaxRedials, last)
}

// dial opens one connection to the node via the configured dialer.
func (c *NodeClient) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(c.addr)
	}
	return net.Dial("tcp", c.addr)
}

// newClientID returns a random connection identity.
func newClientID() string {
	var b [8]byte
	crand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// goDown marks the client fatally down: queued lines are drained into the
// lost ledger (loudly), and future sends fail with err.  The fatal error
// is published before down closes, so a sender woken by down always reads
// a non-nil Err.  The drain runs under the write lock, which a sender
// never holds while enqueueing-or-waiting: any enqueue that raced the
// transition completed before the lock was granted and is caught by the
// drain, so no report is ever stranded un-accounted.
func (c *NodeClient) goDown(err error) {
	c.fatalErr.Store(&err)
	close(c.down)
	c.mu.Lock()
	var dropped uint64
	for {
		select {
		case p := <-c.queue:
			dropped += p.n
		default:
			c.mu.Unlock()
			if dropped > 0 {
				c.lost.Add(dropped)
				c.surface(fmt.Errorf("serve: node %s: dropped %d queued reports: %w", c.addr, dropped, err))
			}
			c.surface(err)
			return
		}
	}
}

// Extract asks the node to drain and ship back every terminal that the
// consistent-hash ring over members (vnodes virtual nodes each) no
// longer assigns to member self — removing them, or only copying when
// keep is true (the source then stays authoritative until Release
// commits the move).  The control line rides the ordered send queue, so
// it lands behind every report already submitted; the node drains before
// extracting, so the snapshots carry every decision.  One control op
// runs at a time; timeout bounds the whole exchange.
func (c *NodeClient) Extract(members []int, vnodes, self int, keep bool, timeout time.Duration) ([]TerminalSnapshot, error) {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	line := AppendControlJSON(nil, WireControl{Op: "extract", Members: members, VNodes: vnodes, Self: self, Keep: keep})
	if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
		return nil, err
	}
	if err := c.waitCtl(op, deadline); err != nil {
		return nil, err
	}
	return op.snaps, nil
}

// Release asks the node to drop — without shipping — every terminal the
// ring over members no longer assigns to member self: the commit of an
// earlier keep-Extract, issued only after the copies landed on their new
// owner.  Returns how many terminals the node dropped.
func (c *NodeClient) Release(members []int, vnodes, self int, timeout time.Duration) (int, error) {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	line := AppendControlJSON(nil, WireControl{Op: "release", Members: members, VNodes: vnodes, Self: self})
	if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
		return 0, err
	}
	if err := c.waitCtl(op, deadline); err != nil {
		return 0, err
	}
	return op.count, nil
}

// Restore ships terminal snapshots to the node in bounded chunks and
// waits for the restored ack.  skipLive makes already-live terminals a
// silent skip instead of an error — the idempotent replay form crash
// recovery uses.  Snapshot validation failures (and, without skipLive,
// already-live terminals) are reported in the returned error.
func (c *NodeClient) Restore(snaps []TerminalSnapshot, skipLive bool, timeout time.Duration) error {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	for rest := snaps; len(rest) > 0; {
		n := min(len(rest), snapshotChunk)
		line := AppendControlJSON(nil, WireControl{Op: "restore", Snapshots: rest[:n], SkipLive: skipLive})
		if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
			return err
		}
		rest = rest[n:]
	}
	done := AppendControlJSON(nil, WireControl{Op: "restore-done"})
	if err := c.enqueue(pendingLine{line: done}, true, deadline); err != nil {
		return err
	}
	return c.waitCtl(op, deadline)
}

// AddNode asks a cluster front-door daemon (hocluster) to grow the
// membership by dialing addr as a fresh member, returning the new
// member's ID.  Engine nodes answer with an unsupported-op error.
func (c *NodeClient) AddNode(addr string, timeout time.Duration) (int, error) {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	line := AppendControlJSON(nil, WireControl{Op: "addnode", Addr: addr})
	if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
		return 0, err
	}
	if err := c.waitCtl(op, deadline); err != nil {
		return 0, err
	}
	return op.node, nil
}

// RemoveNode asks a cluster front-door daemon to retire member node,
// migrating its terminals to the remaining members first.
func (c *NodeClient) RemoveNode(node int, timeout time.Duration) error {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	line := AppendControlJSON(nil, WireControl{Op: "removenode", Node: node})
	if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
		return err
	}
	return c.waitCtl(op, deadline)
}

// Stats asks the node for its telemetry snapshot: shard counters plus
// the exported points of its metrics registry.  Like every control op it
// rides the ordered send queue (so it observes every report already
// submitted on this connection), runs one at a time, and is bounded by
// timeout.
func (c *NodeClient) Stats(timeout time.Duration) (WireStats, error) {
	c.ctlMu.Lock()
	defer c.ctlMu.Unlock()
	deadline := time.Now().Add(timeout)
	op := c.armCtl()
	defer c.disarmCtl()
	line := AppendControlJSON(nil, WireControl{Op: "stats"})
	if err := c.enqueue(pendingLine{line: line}, true, deadline); err != nil {
		return WireStats{}, err
	}
	if err := c.waitCtl(op, deadline); err != nil {
		return WireStats{}, err
	}
	return op.stats, nil
}

// armCtl installs a fresh pending op for the reader to complete.
func (c *NodeClient) armCtl() *ctlOp {
	op := &ctlOp{done: make(chan error, 1)}
	c.pendMu.Lock()
	c.pend = op
	c.pendMu.Unlock()
	return op
}

func (c *NodeClient) disarmCtl() {
	c.pendMu.Lock()
	c.pend = nil
	c.pendMu.Unlock()
}

// waitCtl blocks until the pending op completes, the client goes down,
// or the deadline passes.
func (c *NodeClient) waitCtl(op *ctlOp, deadline time.Time) error {
	wait := time.NewTimer(time.Until(deadline))
	defer wait.Stop()
	select {
	case err := <-op.done:
		return err
	case <-c.down:
		return c.Err()
	case <-wait.C:
		return fmt.Errorf("serve: node %s: control op timed out", c.addr)
	}
}

// failPendingCtl completes the pending control op with err, if one is
// armed.  Called from run when a connection dies or the client stops.
func (c *NodeClient) failPendingCtl(err error) {
	c.pendMu.Lock()
	op := c.pend
	c.pendMu.Unlock()
	if op != nil {
		select {
		case op.done <- err:
		default:
		}
	}
}

// handleCtlLine processes one node→client control line on the reader
// goroutine: snapshot chunks accumulate into the pending op, acks
// complete it.  The op's channel hand-off orders the accumulation before
// the waiter's read.
func (c *NodeClient) handleCtlLine(line []byte) {
	ctl, err := ParseControlLine(line)
	if err != nil {
		c.surface(fmt.Errorf("serve: node %s: %w", c.addr, err))
		return
	}
	c.pendMu.Lock()
	op := c.pend
	if op != nil && ctl.Op != "snapshots" {
		// A completing reply finishes the op exactly once; disarming here
		// keeps a stale duplicate (e.g. a retransmitted request answered
		// after the waiter timed out) from mutating an op that has already
		// been handed back to its waiter.
		c.pend = nil
	}
	c.pendMu.Unlock()
	if op == nil {
		c.surface(fmt.Errorf("serve: node %s: control %q with no operation pending", c.addr, ctl.Op))
		return
	}
	switch ctl.Op {
	case "snapshots":
		op.snaps = append(op.snaps, ctl.Snapshots...)
	case "stats":
		var res error
		if ctl.Error != "" {
			res = fmt.Errorf("serve: node %s: %s", c.addr, ctl.Error)
		} else if ctl.Stats != nil {
			op.stats = *ctl.Stats
		}
		select {
		case op.done <- res:
		default:
		}
	case "extracted", "restored", "released", "node-added", "node-removed":
		var res error
		if ctl.Error != "" {
			res = fmt.Errorf("serve: node %s: %s", c.addr, ctl.Error)
		} else if ctl.Op == "extracted" && ctl.Count != len(op.snaps) {
			res = fmt.Errorf("serve: node %s: extracted ack counts %d snapshots, %d received", c.addr, ctl.Count, len(op.snaps))
		}
		op.count = ctl.Count
		op.node = ctl.Node
		select {
		case op.done <- res:
		default:
		}
	default:
		c.surface(fmt.Errorf("serve: node %s: unexpected control op %q", c.addr, ctl.Op))
	}
}
