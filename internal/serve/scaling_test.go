package serve

import (
	"runtime"
	"testing"
	"time"
)

// measureThroughput drives the steady-state workload through an engine
// with the given shard count for roughly the given duration and returns
// decisions per second.
func measureThroughput(t *testing.T, shards int, d time.Duration) float64 {
	t.Helper()
	e, err := New(Config{Shards: shards, QueueDepth: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	batches := submitterBatches(4, 512, 256)
	// Warm.
	for _, batch := range batches {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	before := e.Stats().Totals().Decisions
	start := time.Now()
	deadline := start.Add(d)
	done := make(chan struct{})
	for _, batch := range batches {
		go func(batch []Report) {
			defer func() { done <- struct{}{} }()
			for time.Now().Before(deadline) {
				if err := e.SubmitBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(batch)
	}
	for range batches {
		<-done
	}
	e.Flush()
	elapsed := time.Since(start)
	return float64(e.Stats().Totals().Decisions-before) / elapsed.Seconds()
}

// TestShardThroughputScales is the acceptance check behind
// BenchmarkServeShards: with ≥ 4 cores available, 4 shards must serve
// decisions measurably faster than 1.  On smaller machines parallel
// speedup is physically unavailable and the test skips (the benchmark
// still records the numbers).
func TestShardThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts timing")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4: no parallel speedup available", runtime.GOMAXPROCS(0))
	}
	// Best-of-N with a conservative bar: genuine scaling lands well
	// above 2× on idle 4-core machines, so 1.1× only trips when sharding
	// is truly broken, not when a noisy co-tenant steals a core.
	const trials = 4
	best := 0.0
	for i := 0; i < trials && best < 1.5; i++ {
		one := measureThroughput(t, 1, 300*time.Millisecond)
		four := measureThroughput(t, 4, 300*time.Millisecond)
		if ratio := four / one; ratio > best {
			best = ratio
		}
	}
	t.Logf("best 4-shard/1-shard throughput ratio over ≤%d trials: %.2f", trials, best)
	if best < 1.1 {
		t.Errorf("4 shards only reached %.2f× the 1-shard throughput; want > 1.1×", best)
	}
}
