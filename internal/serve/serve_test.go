package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/hexgrid"
)

// gateMeas is an epoch the POTLC gate settles (serving above −75 dB):
// the cheapest decision the engine can serve.
func gateMeas(id TerminalID) Report {
	return Report{Terminal: id, Meas: cell.Measurement{
		Serving:   hexgrid.Cell{I: 0, J: 0},
		Neighbor:  hexgrid.Cell{I: 1, J: 0},
		ServingDB: -60, NeighborDB: -80, DMBNorm: 0.3,
	}}
}

// flcMeas is an epoch that reaches the FLC (serving below the gate) but
// does not hand over — the steady-state serving workload.
func flcMeas(id TerminalID) Report {
	return Report{Terminal: id, Meas: cell.Measurement{
		Serving:   hexgrid.Cell{I: 0, J: 0},
		Neighbor:  hexgrid.Cell{I: 1, J: 0},
		ServingDB: -80, NeighborDB: -100, CSSPdB: 1, DMBNorm: 0.6,
	}}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: -1},
		{QueueDepth: -5},
		{PingPongWindowKm: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumShards() < 1 {
		t.Errorf("default shard count %d", e.NumShards())
	}
}

func TestLifecycle(t *testing.T) {
	e, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(gateMeas(1)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Submit before Start: %v", err)
	}
	if err := e.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Stop before Start: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("double Start: %v", err)
	}
	if err := e.Submit(gateMeas(1)); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(gateMeas(1)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Submit after Stop: %v", err)
	}
	if got := e.Stats().Totals().Decisions; got != 1 {
		t.Errorf("decisions = %d, want 1", got)
	}
}

// TestStopDrainsQueue: reports accepted before Stop are all decided.
func TestStopDrainsQueue(t *testing.T) {
	var decided atomic.Uint64
	e, err := New(Config{Shards: 2, QueueDepth: 256, OnDecision: func(Outcome) { decided.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := e.Submit(gateMeas(TerminalID(i % 7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if decided.Load() != n {
		t.Errorf("decided %d of %d before Stop returned", decided.Load(), n)
	}
}

// TestBackpressure: a stalled shard fills its bounded queue; TrySubmit
// then fails fast with ErrBacklogged while Submit blocks until the shard
// drains.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once atomic.Bool
	e, err := New(Config{Shards: 1, QueueDepth: 2, OnDecision: func(Outcome) {
		if once.CompareAndSwap(false, true) {
			close(first)
		}
		<-release
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// One report stalls in the callback; two more fill the queue.
	for i := 0; i < 3; i++ {
		if err := e.Submit(gateMeas(TerminalID(i))); err != nil {
			t.Fatal(err)
		}
	}
	<-first
	if err := e.TrySubmit(gateMeas(9)); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("TrySubmit on full queue: %v", err)
	}
	if got := e.Stats().Shards[0].QueueDepth; got != 2 {
		t.Errorf("queue depth %d, want 2", got)
	}

	// A blocking Submit must complete once the shard drains.
	done := make(chan error, 1)
	go func() { done <- e.Submit(gateMeas(10)) }()
	select {
	case err := <-done:
		t.Fatalf("Submit returned %v while the queue was full", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Totals().Decisions; got != 4 {
		t.Errorf("decisions = %d, want 4", got)
	}
}

// TestExternalReattachment: a report whose serving cell differs from the
// engine's recorded attachment restarts the terminal's power history
// instead of feeding the algorithm stale cross-cell state.
func TestExternalReattachment(t *testing.T) {
	var outs []Outcome
	e, err := New(Config{Shards: 1, OnDecision: func(o Outcome) { outs = append(outs, o) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	r1 := flcMeas(1)
	r2 := flcMeas(1)
	r2.Meas.Serving = hexgrid.Cell{I: 2, J: 0} // reattached elsewhere
	r2.Meas.ServingDB = -90
	if err := e.SubmitBatch([]Report{r1, r2}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	// With history restarted the PRTLC sees havePrev=false; had the stale
	// −80 dB prev been kept, the falling −90 dB signal would look like a
	// confirmed degradation.  The fuzzy verdict here is no-handover either
	// way, so assert on the engine state instead: the terminal count stays
	// 1 and no handover was recorded.
	tot := e.Stats().Totals()
	if tot.Terminals != 1 || tot.Handovers != 0 || tot.Errors != 0 {
		t.Errorf("totals %+v", tot)
	}
}

func TestShardOfIsStable(t *testing.T) {
	e, err := New(Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		s := e.ShardOf(TerminalID(i))
		if s != e.ShardOf(TerminalID(i)) {
			t.Fatal("ShardOf is not stable")
		}
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s]++
	}
	// Dense IDs must spread: no shard may own more than twice its share.
	for s, n := range seen {
		if n > 2*4096/8 {
			t.Errorf("shard %d owns %d of 4096 terminals", s, n)
		}
	}
}
