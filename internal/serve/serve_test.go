package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// gateMeas is an epoch the POTLC gate settles (serving above −75 dB):
// the cheapest decision the engine can serve.
func gateMeas(id TerminalID) Report {
	return Report{Terminal: id, Meas: cell.Measurement{
		Serving:   hexgrid.Cell{I: 0, J: 0},
		Neighbor:  hexgrid.Cell{I: 1, J: 0},
		ServingDB: -60, NeighborDB: -80, DMBNorm: 0.3,
	}}
}

// flcMeas is an epoch that reaches the FLC (serving below the gate) but
// does not hand over — the steady-state serving workload.
func flcMeas(id TerminalID) Report {
	return Report{Terminal: id, Meas: cell.Measurement{
		Serving:   hexgrid.Cell{I: 0, J: 0},
		Neighbor:  hexgrid.Cell{I: 1, J: 0},
		ServingDB: -80, NeighborDB: -100, CSSPdB: 1, DMBNorm: 0.6,
	}}
}

func TestConfigValidation(t *testing.T) {
	// Every validated field distinguishes zero (select a default) from
	// negative (reject): the diagnostics must say "non-negative", not
	// demand a positive value the zero default would then violate.
	for _, tc := range []struct {
		name    string
		cfg     Config
		wantErr string // empty: the config must be accepted
	}{
		{"negative shards", Config{Shards: -1}, "non-negative"},
		{"zero shards selects default", Config{Shards: 0}, ""},
		{"negative queue depth", Config{QueueDepth: -5}, "non-negative"},
		{"zero queue depth selects default", Config{QueueDepth: 0}, ""},
		{"negative ping-pong window", Config{PingPongWindowKm: -1}, "non-negative"},
		{"zero ping-pong window selects default", Config{PingPongWindowKm: 0}, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("config %+v rejected: %v", tc.cfg, err)
				}
				if e.NumShards() < 1 {
					t.Errorf("shard count %d after defaulting", e.NumShards())
				}
				return
			}
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestStartAfterStop: a stopped engine cannot be restarted; Start must
// fail with ErrNotRunning rather than panic on the closed queues.
func TestStartAfterStop(t *testing.T) {
	e, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Start after Stop: %v, want ErrNotRunning", err)
	}
	if err := e.Submit(gateMeas(1)); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Submit after failed restart: %v, want ErrNotRunning", err)
	}
}

func TestLifecycle(t *testing.T) {
	e, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(gateMeas(1)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Submit before Start: %v", err)
	}
	if err := e.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Stop before Start: %v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("double Start: %v", err)
	}
	if err := e.Submit(gateMeas(1)); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(gateMeas(1)); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Submit after Stop: %v", err)
	}
	if got := e.Stats().Totals().Decisions; got != 1 {
		t.Errorf("decisions = %d, want 1", got)
	}
}

// TestStopDrainsQueue: reports accepted before Stop are all decided.
func TestStopDrainsQueue(t *testing.T) {
	var decided atomic.Uint64
	e, err := New(Config{Shards: 2, QueueDepth: 256, OnDecision: func(Outcome) { decided.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := e.Submit(gateMeas(TerminalID(i % 7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if decided.Load() != n {
		t.Errorf("decided %d of %d before Stop returned", decided.Load(), n)
	}
}

// TestBackpressure: a stalled shard fills its bounded queue; TrySubmit
// then fails fast with ErrBacklogged while Submit blocks until the shard
// drains.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once atomic.Bool
	e, err := New(Config{Shards: 1, QueueDepth: 2, OnDecision: func(Outcome) {
		if once.CompareAndSwap(false, true) {
			close(first)
		}
		<-release
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// One report stalls in the callback; two more fill the queue.
	for i := 0; i < 3; i++ {
		if err := e.Submit(gateMeas(TerminalID(i))); err != nil {
			t.Fatal(err)
		}
	}
	<-first
	if err := e.TrySubmit(gateMeas(9)); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("TrySubmit on full queue: %v", err)
	}
	if got := e.Stats().Shards[0].QueueDepth; got != 2 {
		t.Errorf("queue depth %d, want 2", got)
	}

	// A blocking Submit must complete once the shard drains.
	done := make(chan error, 1)
	go func() { done <- e.Submit(gateMeas(10)) }()
	select {
	case err := <-done:
		t.Fatalf("Submit returned %v while the queue was full", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Totals().Decisions; got != 4 {
		t.Errorf("decisions = %d, want 4", got)
	}
}

// TestExternalReattachment: a report whose serving cell differs from the
// engine's recorded attachment restarts the terminal's power history
// instead of feeding the algorithm stale cross-cell state.
func TestExternalReattachment(t *testing.T) {
	var outs []Outcome
	e, err := New(Config{Shards: 1, OnDecision: func(o Outcome) { outs = append(outs, o) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	r1 := flcMeas(1)
	r2 := flcMeas(1)
	r2.Meas.Serving = hexgrid.Cell{I: 2, J: 0} // reattached elsewhere
	r2.Meas.ServingDB = -90
	if err := e.SubmitBatch([]Report{r1, r2}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	// With history restarted the PRTLC sees havePrev=false; had the stale
	// −80 dB prev been kept, the falling −90 dB signal would look like a
	// confirmed degradation.  The fuzzy verdict here is no-handover either
	// way, so assert on the engine state instead: the terminal count stays
	// 1 and no handover was recorded.
	tot := e.Stats().Totals()
	if tot.Terminals != 1 || tot.Handovers != 0 || tot.Errors != 0 {
		t.Errorf("totals %+v", tot)
	}
}

// TestTrySubmitAccountingInvariant: the submitted counter is advanced
// before the enqueue (and rolled back on ErrBacklogged), so no snapshot —
// however unluckily timed against a fast shard — can observe
// processed > submitted.
func TestTrySubmitAccountingInvariant(t *testing.T) {
	e, err := New(Config{Shards: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := e.TrySubmit(flcMeas(TerminalID(w*64 + i%64)))
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrBacklogged):
					// expected under load: the rollback path
				default:
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Sample the invariant while the submitters hammer the small queues.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, s := range e.shards {
			processed := s.processed.Load()
			submitted := s.submitted.Load()
			// processed is read FIRST: submitted can only have grown by the
			// time it is read (every processed report's submitted increment
			// happened before its enqueue and is never rolled back), so
			// processed > submitted here proves the ordering bug, not
			// snapshot skew.  Reading submitted first would race fresh
			// accepted submissions into the processed read and flag phantom
			// violations.
			if processed > submitted {
				close(stop)
				t.Fatalf("shard %d: processed %d > submitted %d", s.id, processed, submitted)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Flush must terminate even though rolled-back TrySubmits briefly
	// over-accounted, and the final ledger must balance exactly.
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Totals().Decisions; got != accepted.Load() {
		t.Errorf("decisions %d ≠ accepted TrySubmits %d", got, accepted.Load())
	}
}

// TestTrySubmitBackloggedRecyclesBuffer: the fail-fast path must return
// its staged sub-batch buffer to the shard's free list — a TrySubmit
// storm against a backlogged shard may not grow (or leak) the buffer
// population.
func TestTrySubmitBackloggedRecyclesBuffer(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once atomic.Bool
	e, err := New(Config{Shards: 1, QueueDepth: 2, OnDecision: func(Outcome) {
		if once.CompareAndSwap(false, true) {
			close(first)
		}
		<-release
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// One report stalls in the callback; two more fill the queue.
	for i := 0; i < 3; i++ {
		if err := e.Submit(gateMeas(TerminalID(i))); err != nil {
			t.Fatal(err)
		}
	}
	<-first

	s := e.shards[0]
	// Warm: the first failure may mint a fresh buffer and recycle it.
	if err := e.TrySubmit(gateMeas(9)); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("TrySubmit on full queue: %v", err)
	}
	freeBefore := len(s.free)
	for i := 0; i < 100; i++ {
		if err := e.TrySubmit(gateMeas(9)); !errors.Is(err, ErrBacklogged) {
			t.Fatalf("TrySubmit %d on full queue: %v", i, err)
		}
	}
	if got := len(s.free); got != freeBefore {
		t.Errorf("free list went %d → %d across 100 backlogged TrySubmits; buffers leaked or hoarded", freeBefore, got)
	}

	close(release)
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Totals().Decisions; got != 3 {
		t.Errorf("decisions = %d, want 3 (every backlogged TrySubmit rolled back)", got)
	}
}

// crossingMeas is an epoch whose FLC score clears the paper's 0.7
// threshold (degrading serving power, strong distant neighbor), so the
// verdict is settled by the PRTLC history stage — the epoch shape that
// exposes history-handling bugs.  Callers pick serving cell and power.
func crossingMeas(id TerminalID, serving hexgrid.Cell, servingDB float64) Report {
	return Report{Terminal: id, Meas: cell.Measurement{
		Serving:   serving,
		Neighbor:  hexgrid.Cell{I: serving.I + 1, J: serving.J},
		ServingDB: servingDB, NeighborDB: -93.7, CSSPdB: -3.5, DMBNorm: 1.2,
	}}
}

// TestExternalReattachmentColumnar drives the reattachment correction
// through the columnar batch pipeline with a stream where the correction
// is decision-visible: without the history restart, the falling serving
// power of the reattached terminal would read as a confirmed degradation
// and execute a handover.
func TestExternalReattachmentColumnar(t *testing.T) {
	r1 := crossingMeas(1, hexgrid.Cell{I: 0, J: 0}, -90)
	r2 := crossingMeas(1, hexgrid.Cell{I: 2, J: 0}, -95) // reattached elsewhere, power falling
	r2.Meas.WalkedKm = 0.1

	// Precondition: with the stale history kept, r2 would hand over.
	if dec, err := handover.NewFuzzy(nil).Decide(r2.Meas, r1.Meas.ServingDB, true); err != nil || !dec.Handover {
		t.Fatalf("precondition: r2 with stale history → (%+v, %v), want an executed handover", dec, err)
	}

	var outs []Outcome
	e, err := New(Config{Shards: 1, OnDecision: func(o Outcome) { outs = append(outs, o) }})
	if err != nil {
		t.Fatal(err)
	}
	if e.shards[0].scorer == nil {
		t.Fatal("default engine lost its BatchScorer; the test would not cover the columnar path")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// One SubmitBatch of two reports for one shard: a single sub-batch of
	// length 2, which run() routes through processColumnar.
	if err := e.SubmitBatch([]Report{r1, r2}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	if outs[1].Executed || outs[1].Decision.Handover {
		t.Fatalf("columnar path executed a handover on reattachment: %+v", outs[1])
	}
	if outs[1].Decision.Reason != "PRTLC-confirmation" {
		t.Errorf("post-reattachment stage %q, want PRTLC-confirmation (history restarted)", outs[1].Decision.Reason)
	}
}

// TestCommitRestartsHistoryAfterHandover pins the post-handover PRTLC
// sequence against the sim path's history semantics (Measurer.Handover:
// an executed handover invalidates the previous-epoch power; the next
// no-handover epoch re-seeds it from its own measurement).  The engine
// must reproduce the per-report reference walk epoch by epoch — in
// particular, the epoch right after a handover must settle as
// PRTLC-confirmation even though its power is lower than anything seen
// before the handover.
func TestCommitRestartsHistoryAfterHandover(t *testing.T) {
	cellA := hexgrid.Cell{I: 0, J: 0}
	// crossingMeas hands over to serving.I+1, so the stream tracks the
	// attachment the engine commits.
	cellB := hexgrid.Cell{I: 1, J: 0}
	reports := []Report{
		crossingMeas(1, cellA, -90),  // no history yet → PRTLC-confirmation
		crossingMeas(1, cellA, -95),  // falling vs −90 → execute-handover
		crossingMeas(1, cellB, -99),  // post-handover: history restarted → PRTLC-confirmation
		crossingMeas(1, cellB, -101), // falling vs −99 → execute-handover
	}
	for i := range reports {
		reports[i].Meas.WalkedKm = float64(i) * 0.1
	}

	// Per-report reference with the simulator's history rules.
	ref := handover.NewFuzzy(nil)
	prevDB, havePrev := 0.0, false
	var want []bool
	for _, r := range reports {
		dec, err := ref.Decide(r.Meas, prevDB, havePrev)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dec.Handover)
		prevDB, havePrev = r.Meas.ServingDB, !dec.Handover
	}
	if len(want) != 4 || want[0] || !want[1] || want[2] || !want[3] {
		t.Fatalf("reference walk %v does not exercise the post-handover epochs (want [false true false true])", want)
	}

	var outs []Outcome
	e, err := New(Config{Shards: 1, OnDecision: func(o Outcome) { outs = append(outs, o) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("epoch %d: %v", i, o.Err)
		}
		if o.Executed != want[i] {
			t.Errorf("epoch %d: executed %v, reference %v", i, o.Executed, want[i])
		}
	}
	if outs[2].Decision.Reason != "PRTLC-confirmation" {
		t.Errorf("post-handover epoch stage %q, want PRTLC-confirmation", outs[2].Decision.Reason)
	}
}

func TestShardOfIsStable(t *testing.T) {
	e, err := New(Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		s := e.ShardOf(TerminalID(i))
		if s != e.ShardOf(TerminalID(i)) {
			t.Fatal("ShardOf is not stable")
		}
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s]++
	}
	// Dense IDs must spread: no shard may own more than twice its share.
	for s, n := range seen {
		if n > 2*4096/8 {
			t.Errorf("shard %d owns %d of 4096 terminals", s, n)
		}
	}
}
