package serve

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

// StatsReporter is the shared stats printer of the serving CLIs
// (hoserve, hocluster) — the -stats loop and the end-of-run dump both
// binaries used to carry as diverging copies.  The loop line is
// rendered from the obs registry every daemon now carries, so whatever
// is on /metrics is what lands on stderr.
type StatsReporter struct {
	// Name prefixes every stderr line ("hoserve", "hocluster").
	Name string
	// Registry is the process registry the loop line renders from.
	Registry *obs.Registry
	// DecisionsCounter names the counter whose per-interval delta is the
	// throughput figure (e.g. "serve_decisions_total").
	DecisionsCounter string
	// Service, when non-nil, appends the histogram's per-interval
	// p50/p99 (windowed via SnapshotDelta semantics) to each loop line.
	Service *obs.Histogram
	// Units returns the per-unit lines of the final dump (per shard,
	// per node); Totals returns the aggregate line.
	Units  func() []string
	Totals func() string
}

// Loop prints one throughput-and-counters line per tick until stop
// closes.  Rates and quantiles are per interval, not cumulative.
func (sr *StatsReporter) Loop(every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	var last uint64
	var prevSvc obs.HistogramSnapshot
	if sr.Service != nil {
		prevSvc = sr.Service.Snapshot()
	}
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		line, decisions := sr.renderCounters()
		rate := float64(decisions-last) / every.Seconds()
		last = decisions
		if sr.Service != nil {
			cur := sr.Service.Snapshot()
			d := cur.Delta(&prevSvc)
			prevSvc = cur
			line += fmt.Sprintf(" batch_p50=%s batch_p99=%s",
				time.Duration(d.Quantile(0.5)), time.Duration(d.Quantile(0.99)))
		}
		fmt.Fprintf(os.Stderr, "%s: %.0f decisions/sec |%s\n", sr.Name, rate, line)
	}
}

// renderCounters aggregates the registry's counters and gauges into one
// compact key=value line.  Points are summed across the "node" label (a
// multi-engine process reports cluster totals here; the per-node view
// lives on /metrics) and per-shard gauges are left to the endpoint; any
// other label is folded into the key ("verdicts/execute-handover").
func (sr *StatsReporter) renderCounters() (string, uint64) {
	points := sr.Registry.Export()
	agg := make(map[string]float64, len(points))
	order := make([]string, 0, len(points))
	var decisions float64
	for _, p := range points {
		if p.Name == sr.DecisionsCounter {
			decisions += p.Value
		}
		if p.Kind == obs.KindHistogram {
			continue
		}
		key := shortMetricName(p.Name)
		skip := false
		for _, l := range p.Labels {
			switch l.Key {
			case "node":
				// Aggregate across nodes.
			case "shard":
				skip = true
			default:
				key += "/" + l.Value
			}
		}
		if skip {
			continue
		}
		if _, ok := agg[key]; !ok {
			order = append(order, key)
		}
		agg[key] += p.Value
	}
	var sb strings.Builder
	for _, key := range order {
		fmt.Fprintf(&sb, " %s=%g", key, agg[key])
	}
	return sb.String(), uint64(decisions)
}

// shortMetricName compresses "serve_decisions_total" to "decisions" for
// the stderr line; /metrics keeps the full names.
func shortMetricName(name string) string {
	if i := strings.IndexByte(name, '_'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, "_total")
}

// Print writes the end-of-run dump: one line per unit, then the total.
func (sr *StatsReporter) Print() {
	if sr.Units != nil {
		for _, u := range sr.Units() {
			fmt.Fprintf(os.Stderr, "%s: %s\n", sr.Name, u)
		}
	}
	if sr.Totals != nil {
		fmt.Fprintf(os.Stderr, "%s: total: %s\n", sr.Name, sr.Totals())
	}
}
