package serve

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/handover"
	"repro/internal/sim"
)

// adaptiveFleetConfigs expands both paper scenarios across replicas and a
// speed axis that exercises the adaptive threshold (50 km/h is where the
// fixed-threshold controller stalls and the adaptive one fires), with
// every run decided by AdaptiveFuzzy on the per-report path.
func adaptiveFleetConfigs(factory func() handover.Algorithm) []sim.Config {
	var cfgs []sim.Config
	for _, base := range []sim.Config{sim.PaperBoundaryConfig(), sim.PaperCrossingConfig()} {
		c, _ := sim.SweepGrid("adaptive", base, 2, []float64{0, 30, 50})
		cfgs = append(cfgs, c...)
	}
	for i := range cfgs {
		cfgs[i].AlgorithmFactory = factory
	}
	return cfgs
}

// TestAdaptiveColumnarMatchesPerReport is the serve-level acceptance pin
// for AdaptiveFuzzy as a BatchScorer: replaying the paper's scenario grid
// through an engine whose shards share one AdaptiveFuzzy instance — which
// routes every multi-report sub-batch through the columnar pipeline, speed
// column and all — must reproduce the per-report (sim-path) decision
// sequence of the same controller, per terminal per epoch.
func TestAdaptiveColumnarMatchesPerReport(t *testing.T) {
	exactFactory := func() handover.Algorithm { return handover.NewAdaptiveFuzzy() }
	compiledFactory := func() handover.Algorithm {
		a, err := handover.NewCompiledAdaptiveFuzzy()
		if err != nil {
			panic(err) // compile is verified below before any engine is built
		}
		return a
	}
	if _, err := handover.NewCompiledAdaptiveFuzzy(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		factory func() handover.Algorithm
		// scoreTol bounds per-epoch HD drift vs the exact sim reference
		// (0 for the exact engine; the compiled kernel is validated
		// bit-equivalent for the paper FLC, 1e-9 leaves margin).
		scoreTol float64
	}{
		{"exact", exactFactory, 0},
		{"compiled", compiledFactory, 1e-9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfgs := adaptiveFleetConfigs(exactFactory)
			streams, results := simStreams(t, cfgs)
			reports := InterleaveReports(streams)

			for _, shards := range []int{1, 4} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					rec := newRecorder(len(cfgs))
					e, err := New(Config{
						Shards:           shards,
						QueueDepth:       64,
						AlgorithmFactory: tc.factory,
						PingPongWindowKm: sim.DefaultPingPongWindowKm,
						OnDecision:       rec.record,
					})
					if err != nil {
						t.Fatal(err)
					}
					// The point of the test is the columnar pipeline: the
					// shared AdaptiveFuzzy must have been recognised as a
					// BatchScorer.
					for _, s := range e.shards {
						if s.scorer == nil {
							t.Fatal("AdaptiveFuzzy not engaged as BatchScorer; the columnar path is not under test")
						}
					}
					if err := e.Start(); err != nil {
						t.Fatal(err)
					}
					if err := e.SubmitBatch(reports); err != nil {
						t.Fatal(err)
					}
					e.Flush()
					if err := e.Stop(); err != nil {
						t.Fatal(err)
					}

					for i, res := range results {
						got := *rec[TerminalID(i)]
						if len(got) != len(res.Epochs) {
							t.Fatalf("terminal %d: %d outcomes, sim has %d epochs", i, len(got), len(res.Epochs))
						}
						for j, o := range got {
							exp := res.Epochs[j]
							if o.Err != nil {
								t.Fatalf("terminal %d epoch %d: %v", i, j, o.Err)
							}
							if o.Decision.Handover != exp.Decision.Handover || o.Executed != exp.Executed ||
								o.Decision.Scored != exp.Decision.Scored || o.Decision.Reason != exp.Decision.Reason {
								t.Fatalf("terminal %d epoch %d: columnar %+v/executed=%v ≠ per-report %+v/executed=%v",
									i, j, o.Decision, o.Executed, exp.Decision, exp.Executed)
							}
							if exp.Decision.Scored && math.Abs(o.Decision.Score-exp.Decision.Score) > tc.scoreTol {
								t.Fatalf("terminal %d epoch %d: columnar HD %g drifted from per-report %g",
									i, j, o.Decision.Score, exp.Decision.Score)
							}
						}
					}

					// The grid must actually exercise the extension: the
					// adaptive controller fires somewhere the sweep's high
					// speeds make it, so the equality above is not vacuous.
					if e.Stats().Totals().Handovers == 0 {
						t.Error("adaptive fleet executed no handovers; the threshold schedule was never exercised")
					}
				})
			}
		})
	}
}
