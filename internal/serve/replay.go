package serve

import "repro/internal/cell"

// ReplayReports tags a measurement stream (e.g. sim.Result.Measurements —
// a simulated walk) with a terminal identity, producing the engine's
// ingest representation of that walk.
func ReplayReports(id TerminalID, ms []cell.Measurement) []Report {
	out := make([]Report, len(ms))
	for i, m := range ms {
		out[i] = Report{Terminal: id, Meas: m}
	}
	return out
}

// InterleaveReports merges per-terminal report streams round-robin — the
// arrival pattern of a live population, where every terminal reports once
// per epoch.  Streams of unequal length contribute until exhausted; the
// per-terminal order is preserved, which is all the engine's determinism
// relies on.
func InterleaveReports(streams [][]Report) []Report {
	total := 0
	longest := 0
	for _, s := range streams {
		total += len(s)
		if len(s) > longest {
			longest = len(s)
		}
	}
	out := make([]Report, 0, total)
	for epoch := 0; epoch < longest; epoch++ {
		for _, s := range streams {
			if epoch < len(s) {
				out = append(out, s[epoch])
			}
		}
	}
	return out
}
