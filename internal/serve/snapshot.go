package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// SnapshotVersion is the base terminal-snapshot codec version:
// AppendSnapshotJSON emits it for every terminal without derived feature
// state, so paper deployments' snapshot bytes never change across this
// codec's history.  SnapshotVersionTrend adds the trend-derivation object
// and is emitted exactly when that state is non-zero.  ParseSnapshotLine
// rejects any other version: a node must never restore state it cannot
// interpret bit-faithfully.
const (
	SnapshotVersion      = 1
	SnapshotVersionTrend = 2
)

// SnapshotEvent is one executed handover in a snapshot's recent-handover
// ring, oldest first.
type SnapshotEvent struct {
	From     hexgrid.Cell
	To       hexgrid.Cell
	WalkedKm float64
}

// TerminalSnapshot is the complete decision state of one terminal —
// everything the engine keeps between reports: the sequence counter, the
// previous-epoch power history, the believed attachment, the handover
// tallies and the recent-handover ring the ping-pong detector scans.
// Restoring a snapshot into a fresh engine and continuing the terminal's
// report stream yields decision sequences byte-identical to never having
// moved: the paper's controller is stateless across epochs, so this
// struct is the whole migration payload.
//
// Events holds the last min(TotalEvents, window) executed handovers,
// oldest first; TotalEvents counts every handover ever executed (the
// ring forgets, the tally does not).
type TerminalSnapshot struct {
	Terminal    TerminalID
	Seq         uint64
	PrevDB      float64
	HavePrev    bool
	Serving     hexgrid.Cell
	HaveServing bool
	Handovers   uint64
	PingPongs   uint64
	TotalEvents uint64
	Events      []SnapshotEvent
	// Trend is the terminal's SSN-trend derivation (stateful schema
	// feature state).  Zero for paper schemas — and encoded only when
	// non-zero, under SnapshotVersionTrend, so paper snapshot bytes are
	// untouched by the schema extension.
	Trend handover.TrendState
}

// maxSnapshotTotalEvents bounds TotalEvents so the restore cast to the
// terminal's int counter is safe on every platform.
const maxSnapshotTotalEvents = 1<<31 - 1

// Validate rejects snapshots no engine can restore faithfully.
func (s TerminalSnapshot) Validate() error {
	if math.IsNaN(s.PrevDB) || math.IsInf(s.PrevDB, 0) {
		return fmt.Errorf("serve: snapshot terminal %d: prev_db is not finite", s.Terminal)
	}
	if s.TotalEvents > maxSnapshotTotalEvents {
		return fmt.Errorf("serve: snapshot terminal %d: total_events %d out of range", s.Terminal, s.TotalEvents)
	}
	want := int(s.TotalEvents)
	if want > pingPongHistory {
		want = pingPongHistory
	}
	if len(s.Events) != want {
		return fmt.Errorf("serve: snapshot terminal %d: %d events, want min(total_events=%d, %d)=%d",
			s.Terminal, len(s.Events), s.TotalEvents, pingPongHistory, want)
	}
	for i, e := range s.Events {
		if math.IsNaN(e.WalkedKm) || math.IsInf(e.WalkedKm, 0) {
			return fmt.Errorf("serve: snapshot terminal %d: event %d walked_km is not finite", s.Terminal, i)
		}
	}
	if math.IsNaN(s.Trend.PrevSSN) || math.IsInf(s.Trend.PrevSSN, 0) ||
		math.IsNaN(s.Trend.Slope) || math.IsInf(s.Trend.Slope, 0) {
		return fmt.Errorf("serve: snapshot terminal %d: trend state is not finite", s.Terminal)
	}
	return nil
}

// snapshot captures the terminal's state.  The ring is emitted oldest
// first relative to the write cursor, so the rotation of the backing
// array — which has no behavioral meaning — does not leak into the
// encoding and two equal states encode identically.
func (t *terminal) snapshot(id TerminalID) TerminalSnapshot {
	s := TerminalSnapshot{
		Terminal:    id,
		Seq:         t.seq,
		PrevDB:      t.prevDB,
		HavePrev:    t.havePrev,
		Serving:     t.serving,
		HaveServing: t.haveServing,
		Handovers:   t.handovers,
		PingPongs:   t.pingpongs,
		TotalEvents: uint64(t.total),
		Trend:       t.derived.Trend,
	}
	n := t.total
	if n > pingPongHistory {
		n = pingPongHistory
	}
	for i := n; i >= 1; i-- {
		e := t.events[(t.next-i+pingPongHistory)%pingPongHistory]
		s.Events = append(s.Events, SnapshotEvent{From: e.from, To: e.to, WalkedKm: e.walkedKm})
	}
	return s
}

// restoreFrom installs a validated snapshot into a freshly created
// terminal slot.  The ring is laid out from slot 0 with the cursor past
// the newest event — a different rotation than the source, which is
// invisible: observeHandover scans relative to the cursor only.
func (t *terminal) restoreFrom(s TerminalSnapshot) {
	t.seq = s.Seq
	t.prevDB = s.PrevDB
	t.havePrev = s.HavePrev
	t.serving = s.Serving
	t.haveServing = s.HaveServing
	t.handovers = s.Handovers
	t.pingpongs = s.PingPongs
	for i, e := range s.Events {
		t.events[i] = hoEvent{from: e.From, to: e.To, walkedKm: e.WalkedKm}
	}
	t.next = len(s.Events) % pingPongHistory
	t.total = int(s.TotalEvents)
	t.derived.Trend = s.Trend
}

// AppendSnapshotJSON appends the snapshot as one versioned JSON line
// (with trailing newline) to dst and returns the extended slice.  Field
// order and float formatting are fixed, so encode→decode→encode is
// byte-identical (pinned by FuzzSnapshotRoundTrip) — which is what lets
// migration tests compare shipped state for equality as bytes.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
//fuzzyho:wirepair parse=ParseSnapshotLine fuzz=FuzzSnapshotRoundTrip
func AppendSnapshotJSON(dst []byte, s TerminalSnapshot) []byte {
	return append(appendSnapshotObj(dst, s), '\n')
}

// appendSnapshotObj appends the snapshot object without the line
// terminator — the embeddable form control messages carry in their
// "snapshots" arrays.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func appendSnapshotObj(dst []byte, s TerminalSnapshot) []byte {
	v := int64(SnapshotVersion)
	if !s.Trend.IsZero() {
		v = SnapshotVersionTrend
	}
	dst = append(dst, `{"v":`...)
	dst = strconv.AppendInt(dst, v, 10)
	dst = append(dst, `,"terminal":`...)
	dst = strconv.AppendUint(dst, uint64(s.Terminal), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, s.Seq, 10)
	dst = append(dst, `,"prev_db":`...)
	dst = strconv.AppendFloat(dst, s.PrevDB, 'g', -1, 64)
	dst = append(dst, `,"have_prev":`...)
	dst = strconv.AppendBool(dst, s.HavePrev)
	dst = append(dst, `,"serving":[`...)
	dst = strconv.AppendInt(dst, int64(s.Serving.I), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(s.Serving.J), 10)
	dst = append(dst, `],"have_serving":`...)
	dst = strconv.AppendBool(dst, s.HaveServing)
	dst = append(dst, `,"handovers":`...)
	dst = strconv.AppendUint(dst, s.Handovers, 10)
	dst = append(dst, `,"pingpongs":`...)
	dst = strconv.AppendUint(dst, s.PingPongs, 10)
	dst = append(dst, `,"total_events":`...)
	dst = strconv.AppendUint(dst, s.TotalEvents, 10)
	dst = append(dst, `,"events":[`...)
	for i, e := range s.Events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"from":[`...)
		dst = strconv.AppendInt(dst, int64(e.From.I), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.From.J), 10)
		dst = append(dst, `],"to":[`...)
		dst = strconv.AppendInt(dst, int64(e.To.I), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(e.To.J), 10)
		dst = append(dst, `],"walked_km":`...)
		dst = strconv.AppendFloat(dst, e.WalkedKm, 'g', -1, 64)
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	if v == SnapshotVersionTrend {
		dst = append(dst, `,"trend":{"prev_ssn":`...)
		dst = strconv.AppendFloat(dst, s.Trend.PrevSSN, 'g', -1, 64)
		dst = append(dst, `,"slope":`...)
		dst = strconv.AppendFloat(dst, s.Trend.Slope, 'g', -1, 64)
		dst = append(dst, `,"have":`...)
		dst = strconv.AppendBool(dst, s.Trend.Have)
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// wireSnapshotEvent/wireSnapshot are the decode shapes of the snapshot
// line.
type wireSnapshotEvent struct {
	From     [2]int  `json:"from"`
	To       [2]int  `json:"to"`
	WalkedKm float64 `json:"walked_km"`
}

type wireSnapshot struct {
	V           int                 `json:"v"`
	Terminal    uint64              `json:"terminal"`
	Seq         uint64              `json:"seq"`
	PrevDB      float64             `json:"prev_db"`
	HavePrev    bool                `json:"have_prev"`
	Serving     [2]int              `json:"serving"`
	HaveServing bool                `json:"have_serving"`
	Handovers   uint64              `json:"handovers"`
	PingPongs   uint64              `json:"pingpongs"`
	TotalEvents uint64              `json:"total_events"`
	Events      []wireSnapshotEvent `json:"events"`
	Trend       *wireTrend          `json:"trend"`
}

// wireTrend is the decode shape of the v2 trend-derivation object.
type wireTrend struct {
	PrevSSN float64 `json:"prev_ssn"`
	Slope   float64 `json:"slope"`
	Have    bool    `json:"have"`
}

// snapshot converts the decode shape, enforcing version and validity.
// A v1 line carrying a trend object is rejected — trend state exists
// only under SnapshotVersionTrend, and silently dropping it would skew
// the restored terminal's decision stream.
func (w wireSnapshot) snapshot() (TerminalSnapshot, error) {
	if w.V != SnapshotVersion && w.V != SnapshotVersionTrend {
		return TerminalSnapshot{}, fmt.Errorf("serve: snapshot version %d not supported (this build speaks %d..%d)", w.V, SnapshotVersion, SnapshotVersionTrend)
	}
	if w.V == SnapshotVersion && w.Trend != nil {
		return TerminalSnapshot{}, fmt.Errorf("serve: snapshot version %d does not carry trend state", SnapshotVersion)
	}
	s := TerminalSnapshot{
		Terminal:    TerminalID(w.Terminal),
		Seq:         w.Seq,
		PrevDB:      w.PrevDB,
		HavePrev:    w.HavePrev,
		Serving:     hexgrid.Cell{I: w.Serving[0], J: w.Serving[1]},
		HaveServing: w.HaveServing,
		Handovers:   w.Handovers,
		PingPongs:   w.PingPongs,
		TotalEvents: w.TotalEvents,
	}
	if w.Trend != nil {
		s.Trend = handover.TrendState{PrevSSN: w.Trend.PrevSSN, Slope: w.Trend.Slope, Have: w.Trend.Have}
	}
	for _, e := range w.Events {
		s.Events = append(s.Events, SnapshotEvent{
			From:     hexgrid.Cell{I: e.From[0], J: e.From[1]},
			To:       hexgrid.Cell{I: e.To[0], J: e.To[1]},
			WalkedKm: e.WalkedKm,
		})
	}
	if err := s.Validate(); err != nil {
		return TerminalSnapshot{}, err
	}
	return s, nil
}

// ParseSnapshotLine decodes and validates one snapshot line.  Unknown
// versions and structurally inconsistent snapshots (event count not
// matching the tally, non-finite floats) are rejected: restoring them
// would corrupt a terminal's decision stream silently.
//
//fuzzyho:deterministic
func ParseSnapshotLine(line []byte) (TerminalSnapshot, error) {
	var w wireSnapshot
	if err := json.Unmarshal(trimSpace(line), &w); err != nil {
		return TerminalSnapshot{}, fmt.Errorf("serve: malformed snapshot line: %w", err)
	}
	return w.snapshot()
}

// WriteSnapshots writes the snapshots as newline-JSON, one line each —
// the whole-node snapshot file format of hoserve -snapshot.
func WriteSnapshots(w io.Writer, snaps []TerminalSnapshot) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for _, s := range snaps {
		buf = AppendSnapshotJSON(buf[:0], s)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshots decodes a newline-JSON snapshot stream to completion.
// Any bad line fails the whole read: a partially restored node would
// serve some terminals from reset state, which is exactly the silent
// corruption snapshots exist to prevent.
func ReadSnapshots(r io.Reader) ([]TerminalSnapshot, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var snaps []TerminalSnapshot
	line := 0
	for scanner.Scan() {
		line++
		if len(trimSpace(scanner.Bytes())) == 0 {
			continue
		}
		s, err := ParseSnapshotLine(scanner.Bytes())
		if err != nil {
			return nil, fmt.Errorf("snapshot line %d: %w", line, err)
		}
		snaps = append(snaps, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return snaps, nil
}

// Snapshot/restore errors.
var (
	// ErrStatefulAlgorithms is returned by the snapshot APIs when the
	// engine runs PerTerminalAlgorithms: algorithm-internal state (e.g. a
	// hysteresis streak counter) is not capturable, so migrating such a
	// terminal would silently fork its decision stream.
	ErrStatefulAlgorithms = errors.New("serve: per-terminal algorithm state cannot be snapshotted; migration requires shard-shared (epoch-stateless) algorithms")
)

// TerminalExistsError reports a restore of a terminal the engine already
// serves — restoring over live state would discard decided history.
type TerminalExistsError struct{ Terminal TerminalID }

func (e *TerminalExistsError) Error() string {
	return fmt.Sprintf("serve: terminal %d already live on this engine; refusing to restore over it", e.Terminal)
}

// shardCtl is a control message on a shard's ingest queue.  Because it
// rides the same ordered queue as report sub-batches, the shard handles
// it only after deciding every report enqueued before it — queue order
// IS the drain barrier of the migration protocol, with no stop-the-world
// flush.
type shardCtl struct {
	// pred, when non-nil, selects terminals to snapshot; remove also
	// deletes them (extract).  snaps receives the result, unless discard
	// drops the state instead of capturing it (release) — then count
	// tallies the terminals removed.
	pred    func(TerminalID) bool
	remove  bool
	discard bool
	snaps   []TerminalSnapshot
	// install, when non-empty, restores these snapshots into the shard.
	// skipLive makes already-live terminals a silent no-op instead of a
	// *TerminalExistsError — the idempotent-replay form; count tallies
	// the snapshots actually installed.
	install  []TerminalSnapshot
	skipLive bool
	count    int
	err      error
	done     chan *shardCtl
}

// handleCtl executes one control message on the shard goroutine.
func (s *shard) handleCtl(c *shardCtl) {
	if c.pred != nil {
		var removed []TerminalID
		s.store.forEach(func(id TerminalID, t *terminal) {
			if !c.pred(id) {
				return
			}
			if c.discard {
				c.count++
			} else {
				c.snaps = append(c.snaps, t.snapshot(id))
			}
			if c.remove {
				removed = append(removed, id)
			}
		})
		for _, id := range removed {
			s.store.remove(id, mix64(uint64(id)))
			s.nTerminals.Add(^uint64(0))
		}
	}
	for _, snap := range c.install {
		t, created := s.store.acquire(snap.Terminal, mix64(uint64(snap.Terminal)))
		if !created {
			if !c.skipLive {
				c.err = errors.Join(c.err, &TerminalExistsError{Terminal: snap.Terminal})
			}
			continue
		}
		s.initTerminal(t)
		t.restoreFrom(snap)
		c.count++
	}
	c.done <- c
}

// runCtls enqueues one prepared control message per shard and waits for
// all of them, joining errors and concatenating results in shard order.
func (e *Engine) runCtls(ctls []*shardCtl) ([]TerminalSnapshot, error) {
	done := make(chan *shardCtl, len(e.shards))
	e.mu.RLock()
	if e.state != stateRunning {
		e.mu.RUnlock()
		return nil, ErrNotRunning
	}
	for i, s := range e.shards {
		ctls[i].done = done
		s.in <- shardMsg{ctl: ctls[i]}
	}
	e.mu.RUnlock()
	for range ctls {
		<-done
	}
	var snaps []TerminalSnapshot
	var err error
	for _, c := range ctls {
		snaps = append(snaps, c.snaps...)
		err = errors.Join(err, c.err)
	}
	return snaps, err
}

// snapshotWhere snapshots (and optionally removes) every terminal
// matching pred, across all shards.
func (e *Engine) snapshotWhere(pred func(TerminalID) bool, remove bool) ([]TerminalSnapshot, error) {
	if e.perTerminal {
		return nil, ErrStatefulAlgorithms
	}
	start := time.Now()
	ctls := make([]*shardCtl, len(e.shards))
	for i := range ctls {
		ctls[i] = &shardCtl{pred: pred, remove: remove}
	}
	snaps, err := e.runCtls(ctls)
	if e.metrics != nil {
		e.metrics.snapshot.ObserveDuration(time.Since(start))
	}
	return snaps, err
}

// SnapshotTerminals captures the decision state of every live terminal
// without disturbing it — the whole-node snapshot of crash recovery.
// Reports submitted before the call are decided before the capture (the
// control message rides the shard queues); reports submitted after it
// are not included.
func (e *Engine) SnapshotTerminals() ([]TerminalSnapshot, error) {
	return e.snapshotWhere(func(TerminalID) bool { return true }, false)
}

// ExtractSnapshots captures and removes every terminal matching pred —
// the donor half of a migration.  After it returns, the engine no longer
// serves those terminals: a later report for one re-creates it from
// zero, so the caller must re-route before resuming their streams.
func (e *Engine) ExtractSnapshots(pred func(TerminalID) bool) ([]TerminalSnapshot, error) {
	if pred == nil {
		return nil, fmt.Errorf("serve: ExtractSnapshots requires a predicate")
	}
	return e.snapshotWhere(pred, true)
}

// SnapshotWhere captures every terminal matching pred without removing
// it — the copy phase of a two-phase migration: the source keeps serving
// (and holding) the state until the copies have landed on the
// destination and a later DiscardTerminals releases the originals.
func (e *Engine) SnapshotWhere(pred func(TerminalID) bool) ([]TerminalSnapshot, error) {
	if pred == nil {
		return nil, fmt.Errorf("serve: SnapshotWhere requires a predicate")
	}
	return e.snapshotWhere(pred, false)
}

// DiscardTerminals removes every terminal matching pred without
// capturing snapshots, returning how many were dropped — the release
// phase of a two-phase migration, after the copies landed elsewhere.
// Discarding state no other node holds loses it; callers sequence a
// successful restore on the destination first.
func (e *Engine) DiscardTerminals(pred func(TerminalID) bool) (int, error) {
	if pred == nil {
		return 0, fmt.Errorf("serve: DiscardTerminals requires a predicate")
	}
	if e.perTerminal {
		return 0, ErrStatefulAlgorithms
	}
	ctls := make([]*shardCtl, len(e.shards))
	for i := range ctls {
		ctls[i] = &shardCtl{pred: pred, remove: true, discard: true}
	}
	_, err := e.runCtls(ctls)
	n := 0
	for _, c := range ctls {
		n += c.count
	}
	return n, err
}

// RestoreSnapshots installs validated snapshots — the recipient half of
// a migration, or a whole-node restore.  Restoring a terminal the engine
// already serves fails with *TerminalExistsError (joined across the
// batch); the remaining snapshots are still installed.
func (e *Engine) RestoreSnapshots(snaps []TerminalSnapshot) error {
	_, err := e.restoreSnaps(snaps, false)
	return err
}

// RestoreSnapshotsSkipLive installs snapshots like RestoreSnapshots but
// silently skips terminals the engine already serves, returning how many
// were actually installed.  This is the idempotent replay form crash
// recovery needs: re-running a half-done restore installs exactly the
// missing terminals and never disturbs live ones.
func (e *Engine) RestoreSnapshotsSkipLive(snaps []TerminalSnapshot) (int, error) {
	return e.restoreSnaps(snaps, true)
}

func (e *Engine) restoreSnaps(snaps []TerminalSnapshot, skipLive bool) (int, error) {
	if e.perTerminal {
		return 0, ErrStatefulAlgorithms
	}
	if len(snaps) == 0 {
		return 0, nil
	}
	for _, s := range snaps {
		if err := s.Validate(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	ctls := make([]*shardCtl, len(e.shards))
	for i := range ctls {
		ctls[i] = &shardCtl{skipLive: skipLive}
	}
	for _, s := range snaps {
		idx := e.ShardOf(s.Terminal)
		ctls[idx].install = append(ctls[idx].install, s)
	}
	_, err := e.runCtls(ctls)
	if e.metrics != nil {
		e.metrics.restore.ObserveDuration(time.Since(start))
	}
	n := 0
	for _, c := range ctls {
		n += c.count
	}
	return n, err
}

// WriteSnapshotFile atomically persists the snapshots to path: the bytes
// land in a uniquely named temp file in the same directory, are fsync'd,
// and replace path with one rename.  A crash mid-write never truncates
// or corrupts the previous good snapshot, and concurrent writers (a
// periodic Snapshotter racing a shutdown snapshot) each complete — last
// rename wins.
func WriteSnapshotFile(path string, snaps []TerminalSnapshot) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	tmp := f.Name()
	err = WriteSnapshots(f, snaps)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	return nil
}

// ReadSnapshotFile loads a snapshot file written by WriteSnapshotFile.
func ReadSnapshotFile(path string) ([]TerminalSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snaps, err := ReadSnapshots(f)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	return snaps, nil
}
