package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/obs"
)

// The wire control plane rides the same newline-JSON streams as reports
// and outcomes, on both directions of a node connection.  A control line
// always leads with the "ctl" key — AppendControlJSON guarantees it —
// so both ends dispatch with one prefix comparison and the data hot
// path never JSON-parses a line twice.
//
// Ops, client → node:
//
//	{"ctl":"hello","client":ID,"schema":H}
//	                                  announce connection identity; lets
//	                                  a reconnection take over its own
//	                                  terminal claims (see DecisionMux).
//	                                  H is the client's feature-schema
//	                                  hash; the node rejects a mismatch
//	                                  with its own engine's schema so a
//	                                  mixed-schema cluster fails fast
//	                                  instead of mis-gathering columns
//	{"ctl":"extract","members":[...],"vnodes":V,"self":S}
//	                                  extract every terminal the ring
//	                                  over members no longer assigns to
//	                                  member S; with "keep":true the node
//	                                  copies instead of removing (the
//	                                  first phase of a two-phase move)
//	{"ctl":"release","members":[...],"vnodes":V,"self":S}
//	                                  drop every terminal the ring no
//	                                  longer assigns to member S without
//	                                  shipping it — commits a keep-copy
//	                                  after the copies landed elsewhere
//	{"ctl":"restore","snapshots":[...]}  install one snapshot chunk; with
//	                                  "skip_live":true already-live
//	                                  terminals are skipped, not errors
//	                                  (idempotent crash-recovery replay)
//	{"ctl":"restore-done"}            finish the restore op
//	{"ctl":"stats"}                   request the node's stats/metrics
//	{"ctl":"addnode","addr":A}        grow the membership (front door of
//	                                  a cluster router; engine nodes
//	                                  reject it)
//	{"ctl":"removenode","node":N}     shrink the membership
//
// Ops, node → client:
//
//	{"ctl":"snapshots","snapshots":[...]}  one extracted chunk
//	{"ctl":"extracted","count":N}     extract finished (Error on failure)
//	{"ctl":"restored","count":N}      restore finished (Error on failure)
//	{"ctl":"released","count":N}      release finished (Error on failure)
//	{"ctl":"node-added","node":N}     addnode finished: the new member ID
//	                                  (Error on failure)
//	{"ctl":"node-removed","node":N}   removenode finished (Error on
//	                                  failure)
//	{"ctl":"stats","stats":{...}}     the node's shard counters and
//	                                  exported metric points (Error when
//	                                  the node serves no stats)
type WireControl struct {
	// Op names the control operation.
	Op string
	// Client is the connection identity ("hello").
	Client string
	// Schema is the announcing side's feature-schema hash ("hello").
	// Zero means the peer predates feature schemas (or declared none)
	// and is checked against the paper schema.
	Schema uint64
	// Members/VNodes/Self describe the post-change ring membership
	// ("extract"/"release"): the node keeps only terminals the ring
	// still assigns to member Self.
	Members []int
	VNodes  int
	Self    int
	// Keep makes "extract" copy instead of remove: the source stays
	// authoritative until a later "release" commits the move.
	Keep bool
	// SkipLive makes "restore" skip terminals the node already serves
	// instead of failing them — the idempotent replay form.
	SkipLive bool
	// Addr is the new member's dial address ("addnode").
	Addr string
	// Node is a member ID ("removenode" and the membership acks).
	Node int
	// Count is the total snapshot count of a finished op.
	Count int
	// Snapshots carries one chunk of terminal state.
	Snapshots []TerminalSnapshot
	// Stats carries a node's telemetry in a "stats" reply.
	Stats *WireStats
	// Error reports an op failure in an ack.
	Error string
}

// WireStats is the payload of a {"ctl":"stats"} reply: the node's shard
// counter snapshot plus its registry's exported metric points.  Not a
// hot-path message, so it is encoded with encoding/json.
type WireStats struct {
	Shards []ShardStats `json:"shards,omitempty"`
	Points []obs.Point  `json:"points,omitempty"`
}

// snapshotChunk bounds the snapshots packed into one control line, so a
// big migration streams as bounded lines instead of one giant one.
const snapshotChunk = 512

// controlPrefix is the mandatory lead of a control line.
var controlPrefix = []byte(`{"ctl"`)

// isControlLine reports whether the line is a control message.  The
// encoder emits the ctl key first, making this a single memcmp.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func isControlLine(line []byte) bool {
	return bytes.HasPrefix(trimSpace(line), controlPrefix)
}

// AppendControlJSON appends the control message as one JSON line (with
// trailing newline) to dst and returns the extended slice.  The ctl key
// is emitted first — isControlLine depends on it.  Control messages are
// rare (migration, admin) so the encoder is not hotpath-audited, but it
// is deterministic: migration journal replay compares control lines as
// bytes.
//
//fuzzyho:deterministic
func AppendControlJSON(dst []byte, c WireControl) []byte {
	dst = append(dst, `{"ctl":`...)
	dst = appendJSONString(dst, c.Op)
	if c.Client != "" {
		dst = append(dst, `,"client":`...)
		dst = appendJSONString(dst, c.Client)
	}
	if c.Schema != 0 {
		dst = append(dst, `,"schema":`...)
		dst = strconv.AppendUint(dst, c.Schema, 10)
	}
	if c.Addr != "" {
		dst = append(dst, `,"addr":`...)
		dst = appendJSONString(dst, c.Addr)
	}
	if c.Node != 0 {
		dst = append(dst, `,"node":`...)
		dst = strconv.AppendInt(dst, int64(c.Node), 10)
	}
	if c.Members != nil {
		dst = append(dst, `,"members":[`...)
		for i, m := range c.Members {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(m), 10)
		}
		dst = append(dst, `],"vnodes":`...)
		dst = strconv.AppendInt(dst, int64(c.VNodes), 10)
		dst = append(dst, `,"self":`...)
		dst = strconv.AppendInt(dst, int64(c.Self), 10)
	}
	if c.Keep {
		dst = append(dst, `,"keep":true`...)
	}
	if c.SkipLive {
		dst = append(dst, `,"skip_live":true`...)
	}
	if c.Snapshots != nil {
		dst = append(dst, `,"snapshots":[`...)
		for i, s := range c.Snapshots {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendSnapshotObj(dst, s)
		}
		dst = append(dst, ']')
	}
	if c.Count != 0 {
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, int64(c.Count), 10)
	}
	if c.Stats != nil {
		dst = append(dst, `,"stats":`...)
		// Stats replies are rare (one per scrape) and never on the data
		// hot path; the stdlib encoder is fine here.
		b, err := json.Marshal(c.Stats)
		if err != nil {
			// A WireStats is plain data and cannot fail to marshal; keep
			// the line well-formed regardless.
			b = []byte(`{}`)
		}
		dst = append(dst, b...)
	}
	if c.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, c.Error)
	}
	return append(dst, '}', '\n')
}

// ParseControlLine decodes one control line, validating any embedded
// snapshots (bad state is rejected at the wire, before it can reach an
// engine).
//
//fuzzyho:deterministic
func ParseControlLine(line []byte) (WireControl, error) {
	var aux struct {
		Op        string         `json:"ctl"`
		Client    string         `json:"client"`
		Schema    uint64         `json:"schema"`
		Addr      string         `json:"addr"`
		Node      int            `json:"node"`
		Members   []int          `json:"members"`
		VNodes    int            `json:"vnodes"`
		Self      int            `json:"self"`
		Keep      bool           `json:"keep"`
		SkipLive  bool           `json:"skip_live"`
		Count     int            `json:"count"`
		Snapshots []wireSnapshot `json:"snapshots"`
		Stats     *WireStats     `json:"stats"`
		Error     string         `json:"error"`
	}
	if err := json.Unmarshal(trimSpace(line), &aux); err != nil {
		return WireControl{}, fmt.Errorf("serve: malformed control line: %w", err)
	}
	if aux.Op == "" {
		return WireControl{}, fmt.Errorf("serve: control line carries no op: %.200s", line)
	}
	c := WireControl{
		Op:       aux.Op,
		Client:   aux.Client,
		Schema:   aux.Schema,
		Addr:     aux.Addr,
		Node:     aux.Node,
		Members:  aux.Members,
		VNodes:   aux.VNodes,
		Self:     aux.Self,
		Keep:     aux.Keep,
		SkipLive: aux.SkipLive,
		Count:    aux.Count,
		Stats:    aux.Stats,
		Error:    aux.Error,
	}
	for i, w := range aux.Snapshots {
		s, err := w.snapshot()
		if err != nil {
			return WireControl{}, fmt.Errorf("serve: control snapshot %d: %w", i, err)
		}
		c.Snapshots = append(c.Snapshots, s)
	}
	return c, nil
}
