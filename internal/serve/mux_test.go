package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func muxReportLine(terminal uint64, servingDB float64) string {
	return fmt.Sprintf(`{"terminal":%d,"serving":[0,0],"neighbor":[1,0],"serving_db":%g,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`,
		terminal, servingDB)
}

// TestDecisionMuxExclusiveOwnership pins the ownership rule: first binder
// owns, a conflicting bind fails with *OwnershipError, release frees the
// terminal for re-claiming.
func TestDecisionMuxExclusiveOwnership(t *testing.T) {
	mux := NewDecisionMux()
	a := NewSink(&bytes.Buffer{})
	b := NewSink(&bytes.Buffer{})

	if err := mux.Bind(7, a); err != nil {
		t.Fatal(err)
	}
	if err := mux.Bind(7, a); err != nil {
		t.Fatalf("owner rebind: %v", err)
	}
	err := mux.Bind(7, b)
	var oe *OwnershipError
	if !errors.As(err, &oe) || oe.Terminal != 7 {
		t.Fatalf("conflicting bind: %v", err)
	}
	// Other terminals are unaffected.
	if err := mux.Bind(8, b); err != nil {
		t.Fatal(err)
	}
	// Releasing a frees 7 but not b's 8.
	mux.Release(a)
	if err := mux.Bind(7, b); err != nil {
		t.Fatalf("re-claim after release: %v", err)
	}
	if err := mux.Bind(8, a); err == nil {
		t.Fatal("b's claim vanished with a's release")
	}
}

// TestDecisionMuxRoutesToOwner: outcomes reach the owning sink only.
func TestDecisionMuxRoutesToOwner(t *testing.T) {
	mux := NewDecisionMux()
	var bufA, bufB bytes.Buffer
	a, b := NewSink(&bufA), NewSink(&bufB)
	if err := mux.Bind(1, a); err != nil {
		t.Fatal(err)
	}
	if err := mux.Bind(2, b); err != nil {
		t.Fatal(err)
	}
	mux.Route(Outcome{Terminal: 1, Seq: 0})
	mux.Route(Outcome{Terminal: 2, Seq: 0})
	mux.Route(Outcome{Terminal: 3, Seq: 0}) // unowned: dropped
	a.Flush()
	b.Flush()
	if got := bufA.String(); !strings.Contains(got, `"terminal":1`) || strings.Contains(got, `"terminal":2`) {
		t.Errorf("sink a got %q", got)
	}
	if got := bufB.String(); !strings.Contains(got, `"terminal":2`) || strings.Contains(got, `"terminal":1`) {
		t.Errorf("sink b got %q", got)
	}
}

// TestIngestDuplicateTerminalAcrossConnections is the regression test for
// duplicate terminal ownership in TCP mode: two clients submitting the
// same TerminalID must not interleave one terminal's state stream.  The
// second client's conflicting line is rejected whole; after the first
// client disconnects (Release), the terminal can be re-claimed.
func TestIngestDuplicateTerminalAcrossConnections(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 2, QueueDepth: 16, OnDecision: mux.Route})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var outA, outB bytes.Buffer
	sinkA, sinkB := NewSink(&outA), NewSink(&outB)

	// Client A claims terminals 1 and 2.
	var rejectsA []error
	IngestLines(strings.NewReader(muxReportLine(1, -88)+"\n"+muxReportLine(2, -88)+"\n"),
		mux, sinkA, e.SubmitBatch, func(_ int, err error) { rejectsA = append(rejectsA, err) })
	if len(rejectsA) != 0 {
		t.Fatalf("client A rejected: %v", rejectsA)
	}

	// Client B submits a batch touching its own terminal 3 and A's
	// terminal 1: the whole line must be rejected with an ownership error
	// and nothing from it submitted.
	conflict := "[" + muxReportLine(3, -90) + "," + muxReportLine(1, -90) + "]\n"
	var rejectsB []error
	lines, bad := IngestLines(strings.NewReader(conflict+muxReportLine(4, -91)+"\n"),
		mux, sinkB, e.SubmitBatch, func(_ int, err error) { rejectsB = append(rejectsB, err) })
	if lines != 2 || bad != 1 || len(rejectsB) != 1 {
		t.Fatalf("lines=%d bad=%d rejects=%v", lines, bad, rejectsB)
	}
	var oe *OwnershipError
	if !errors.As(rejectsB[0], &oe) || oe.Terminal != 1 {
		t.Fatalf("reject is %v, want ownership conflict on terminal 1", rejectsB[0])
	}

	e.Flush()
	sinkA.Flush()
	sinkB.Flush()
	if got := outB.String(); strings.Contains(got, `"terminal":1`) {
		t.Errorf("client B received decisions for A's terminal: %q", got)
	}
	if got := outA.String(); !strings.Contains(got, `"terminal":1`) || !strings.Contains(got, `"terminal":2`) {
		t.Errorf("client A missing its decisions: %q", got)
	}
	// Terminal 1 decided exactly once: B's conflicting report never ran.
	if n := strings.Count(outA.String()+outB.String(), `"terminal":1,`); n != 1 {
		t.Errorf("terminal 1 decided %d times, want 1", n)
	}

	// A disconnects; B can now claim terminal 1 and its decisions flow to B.
	mux.Release(sinkA)
	var rejects2 []error
	IngestLines(strings.NewReader(muxReportLine(1, -92)+"\n"),
		mux, sinkB, e.SubmitBatch, func(_ int, err error) { rejects2 = append(rejects2, err) })
	if len(rejects2) != 0 {
		t.Fatalf("post-release claim rejected: %v", rejects2)
	}
	e.Flush()
	sinkB.Flush()
	if got := outB.String(); !strings.Contains(got, `"terminal":1,`) {
		t.Errorf("client B did not receive re-claimed terminal's decision: %q", got)
	}
}

// TestIngestServesValidatedPrefix pins the partial-batch ingest policy: a
// line whose batch fails validation mid-way serves the validated prefix
// and reports the failing index; later lines keep flowing.
func TestIngestServesValidatedPrefix(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 1, QueueDepth: 16, OnDecision: mux.Route})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var out bytes.Buffer
	sink := NewSink(&out)
	badReport := `{"terminal":9,"serving":[0,0],"neighbor":[1,0],"dmb":-2}`
	mixed := "[" + muxReportLine(1, -88) + "," + muxReportLine(2, -88) + "," + badReport + "]\n"
	var rejects []error
	lines, bad := IngestLines(strings.NewReader(mixed+muxReportLine(3, -89)+"\n"),
		mux, sink, e.SubmitBatch, func(_ int, err error) { rejects = append(rejects, err) })
	if lines != 2 || bad != 1 {
		t.Fatalf("lines=%d bad=%d", lines, bad)
	}
	if len(rejects) != 1 || !strings.Contains(rejects[0].Error(), "report 2") {
		t.Fatalf("rejects %v", rejects)
	}
	e.Flush()
	sink.Flush()
	got := out.String()
	for _, want := range []string{`"terminal":1,`, `"terminal":2,`, `"terminal":3,`} {
		if !strings.Contains(got, want) {
			t.Errorf("prefix/later decisions missing %s in %q", want, got)
		}
	}
	if strings.Contains(got, `"terminal":9`) {
		t.Errorf("invalid report decided: %q", got)
	}
}
