package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func muxReportLine(terminal uint64, servingDB float64) string {
	return fmt.Sprintf(`{"terminal":%d,"serving":[0,0],"neighbor":[1,0],"serving_db":%g,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`,
		terminal, servingDB)
}

// bindTerminals claims ids for b through the Submit path with a no-op
// submit, returning the first error.
func bindTerminals(b *Binding, ids ...TerminalID) error {
	rs := make([]Report, len(ids))
	for i, id := range ids {
		rs[i] = Report{Terminal: id}
	}
	return b.Submit(rs, func([]Report) error { return nil })
}

// TestDecisionMuxExclusiveOwnership pins the ownership rule: first
// claimer owns, a conflicting anonymous claim fails with
// *OwnershipError, release frees the terminal for re-claiming.
func TestDecisionMuxExclusiveOwnership(t *testing.T) {
	mux := NewDecisionMux()
	a := NewBinding(mux, NewSink(&bytes.Buffer{}))
	b := NewBinding(mux, NewSink(&bytes.Buffer{}))

	if err := bindTerminals(a, 7); err != nil {
		t.Fatal(err)
	}
	if err := bindTerminals(a, 7); err != nil {
		t.Fatalf("owner rebind: %v", err)
	}
	err := bindTerminals(b, 7)
	var oe *OwnershipError
	if !errors.As(err, &oe) || oe.Terminal != 7 {
		t.Fatalf("conflicting bind: %v", err)
	}
	// Other terminals are unaffected.
	if err := bindTerminals(b, 8); err != nil {
		t.Fatal(err)
	}
	// Releasing a frees 7 but not b's 8.
	a.Release()
	if err := bindTerminals(b, 7); err != nil {
		t.Fatalf("re-claim after release: %v", err)
	}
	if err := bindTerminals(NewBinding(mux, NewSink(&bytes.Buffer{})), 8); err == nil {
		t.Fatal("b's claim vanished with a's release")
	}
	// A released binding refuses further submits.
	if err := bindTerminals(a, 9); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("submit after release: %v", err)
	}
}

// TestDecisionMuxRoutesToOwner: outcomes reach the owning sink only.
func TestDecisionMuxRoutesToOwner(t *testing.T) {
	mux := NewDecisionMux()
	var bufA, bufB bytes.Buffer
	a, b := NewBinding(mux, NewSink(&bufA)), NewBinding(mux, NewSink(&bufB))
	if err := bindTerminals(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := bindTerminals(b, 2); err != nil {
		t.Fatal(err)
	}
	mux.Route(Outcome{Terminal: 1, Seq: 0})
	mux.Route(Outcome{Terminal: 2, Seq: 0})
	mux.Route(Outcome{Terminal: 3, Seq: 0}) // unowned: dropped
	a.sink.Flush()
	b.sink.Flush()
	if got := bufA.String(); !strings.Contains(got, `"terminal":1`) || strings.Contains(got, `"terminal":2`) {
		t.Errorf("sink a got %q", got)
	}
	if got := bufB.String(); !strings.Contains(got, `"terminal":2`) || strings.Contains(got, `"terminal":1`) {
		t.Errorf("sink b got %q", got)
	}
}

// TestIngestDuplicateTerminalAcrossConnections is the regression test for
// duplicate terminal ownership in TCP mode: two clients submitting the
// same TerminalID must not interleave one terminal's state stream.  The
// second client's conflicting line is rejected whole; after the first
// client disconnects (Release), the terminal can be re-claimed.
func TestIngestDuplicateTerminalAcrossConnections(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 2, QueueDepth: 16, OnDecision: mux.Route})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var outA, outB bytes.Buffer
	bndA, bndB := NewBinding(mux, NewSink(&outA)), NewBinding(mux, NewSink(&outB))

	// Client A claims terminals 1 and 2.
	var rejectsA []error
	IngestLines(strings.NewReader(muxReportLine(1, -88)+"\n"+muxReportLine(2, -88)+"\n"),
		bndA, e.SubmitBatch, nil, func(_ int, err error) { rejectsA = append(rejectsA, err) })
	if len(rejectsA) != 0 {
		t.Fatalf("client A rejected: %v", rejectsA)
	}

	// Client B submits a batch touching its own terminal 3 and A's
	// terminal 1: the whole line must be rejected with an ownership error
	// and nothing from it submitted.
	conflict := "[" + muxReportLine(3, -90) + "," + muxReportLine(1, -90) + "]\n"
	var rejectsB []error
	lines, bad := IngestLines(strings.NewReader(conflict+muxReportLine(4, -91)+"\n"),
		bndB, e.SubmitBatch, nil, func(_ int, err error) { rejectsB = append(rejectsB, err) })
	if lines != 2 || bad != 1 || len(rejectsB) != 1 {
		t.Fatalf("lines=%d bad=%d rejects=%v", lines, bad, rejectsB)
	}
	var oe *OwnershipError
	if !errors.As(rejectsB[0], &oe) || oe.Terminal != 1 {
		t.Fatalf("reject is %v, want ownership conflict on terminal 1", rejectsB[0])
	}

	e.Flush()
	bndA.sink.Flush()
	bndB.sink.Flush()
	if got := outB.String(); strings.Contains(got, `"terminal":1`) {
		t.Errorf("client B received decisions for A's terminal: %q", got)
	}
	if got := outA.String(); !strings.Contains(got, `"terminal":1`) || !strings.Contains(got, `"terminal":2`) {
		t.Errorf("client A missing its decisions: %q", got)
	}
	// Terminal 1 decided exactly once: B's conflicting report never ran.
	if n := strings.Count(outA.String()+outB.String(), `"terminal":1,`); n != 1 {
		t.Errorf("terminal 1 decided %d times, want 1", n)
	}

	// A disconnects; B can now claim terminal 1 and its decisions flow to B.
	bndA.Release()
	var rejects2 []error
	IngestLines(strings.NewReader(muxReportLine(1, -92)+"\n"),
		bndB, e.SubmitBatch, nil, func(_ int, err error) { rejects2 = append(rejects2, err) })
	if len(rejects2) != 0 {
		t.Fatalf("post-release claim rejected: %v", rejects2)
	}
	e.Flush()
	bndB.sink.Flush()
	if got := outB.String(); !strings.Contains(got, `"terminal":1,`) {
		t.Errorf("client B did not receive re-claimed terminal's decision: %q", got)
	}
}

// TestIngestServesValidatedPrefix pins the partial-batch ingest policy: a
// line whose batch fails validation mid-way serves the validated prefix
// and reports the failing index; later lines keep flowing.
func TestIngestServesValidatedPrefix(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 1, QueueDepth: 16, OnDecision: mux.Route})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var out bytes.Buffer
	bnd := NewBinding(mux, NewSink(&out))
	badReport := `{"terminal":9,"serving":[0,0],"neighbor":[1,0],"dmb":-2}`
	mixed := "[" + muxReportLine(1, -88) + "," + muxReportLine(2, -88) + "," + badReport + "]\n"
	var rejects []error
	lines, bad := IngestLines(strings.NewReader(mixed+muxReportLine(3, -89)+"\n"),
		bnd, e.SubmitBatch, nil, func(_ int, err error) { rejects = append(rejects, err) })
	if lines != 2 || bad != 1 {
		t.Fatalf("lines=%d bad=%d", lines, bad)
	}
	if len(rejects) != 1 || !strings.Contains(rejects[0].Error(), "report 2") {
		t.Fatalf("rejects %v", rejects)
	}
	e.Flush()
	bnd.sink.Flush()
	got := out.String()
	for _, want := range []string{`"terminal":1,`, `"terminal":2,`, `"terminal":3,`} {
		if !strings.Contains(got, want) {
			t.Errorf("prefix/later decisions missing %s in %q", want, got)
		}
	}
	if strings.Contains(got, `"terminal":9`) {
		t.Errorf("invalid report decided: %q", got)
	}
}

// TestBindingTakeoverByIdentity is the reconnect-vs-drain regression
// test: a new connection announcing the same identity as a still-bound
// old connection takes the old connection's claims — after the mux
// drain barrier ran — instead of bouncing off them, and the old binding
// is fenced out of further submits.
func TestBindingTakeoverByIdentity(t *testing.T) {
	mux := NewDecisionMux()
	drains := 0
	mux.Drain = func() error { drains++; return nil }
	var bufOld, bufNew bytes.Buffer
	old := NewBinding(mux, NewSink(&bufOld))
	old.SetIdentity("client-x")
	if err := bindTerminals(old, 1, 2, 3); err != nil {
		t.Fatal(err)
	}

	// A different identity still conflicts.
	other := NewBinding(mux, NewSink(&bytes.Buffer{}))
	other.SetIdentity("client-y")
	var oe *OwnershipError
	if err := bindTerminals(other, 1); !errors.As(err, &oe) {
		t.Fatalf("cross-identity claim: %v", err)
	}
	// An anonymous binding conflicts too.
	if err := bindTerminals(NewBinding(mux, NewSink(&bytes.Buffer{})), 1); !errors.As(err, &oe) {
		t.Fatalf("anonymous claim: %v", err)
	}

	// The same identity takes over ALL of the old binding's claims.
	reborn := NewBinding(mux, NewSink(&bufNew))
	reborn.SetIdentity("client-x")
	if err := bindTerminals(reborn, 1); err != nil {
		t.Fatalf("same-identity takeover: %v", err)
	}
	if drains != 1 {
		t.Fatalf("takeover ran %d drains, want 1", drains)
	}
	if !old.Superseded() {
		t.Fatal("old binding not revoked by takeover")
	}
	if err := bindTerminals(old, 4); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("old binding submit after takeover: %v", err)
	}
	// Claims 2 and 3 moved with 1: outcomes route to the new sink.
	mux.Route(Outcome{Terminal: 2})
	mux.Route(Outcome{Terminal: 3})
	reborn.sink.Flush()
	old.sink.Flush()
	if bufOld.Len() != 0 {
		t.Errorf("old sink got post-takeover outcomes: %q", bufOld.String())
	}
	if got := bufNew.String(); !strings.Contains(got, `"terminal":2`) || !strings.Contains(got, `"terminal":3`) {
		t.Errorf("new sink missing transferred terminals: %q", got)
	}
	// The old binding's release must not free the transferred claims.
	old.Release()
	stranger := NewBinding(mux, NewSink(&bytes.Buffer{}))
	if err := bindTerminals(stranger, 2); !errors.As(err, &oe) {
		t.Fatalf("transferred claim freed by old release: %v", err)
	}
}

// TestBindingMutualTakeoverNoDeadlock pins the takeover fence's escape
// hatch: two live connections with the same identity trying to take each
// other over must both back out with ErrSuperseded, not deadlock.
func TestBindingMutualTakeoverNoDeadlock(t *testing.T) {
	for round := 0; round < 50; round++ {
		mux := NewDecisionMux()
		a := NewBinding(mux, NewSink(&bytes.Buffer{}))
		b := NewBinding(mux, NewSink(&bytes.Buffer{}))
		a.SetIdentity("same")
		b.SetIdentity("same")
		if err := bindTerminals(a, 1); err != nil {
			t.Fatal(err)
		}
		if err := bindTerminals(b, 2); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = bindTerminals(a, 2) }()
		go func() { defer wg.Done(); errs[1] = bindTerminals(b, 1) }()
		wg.Wait() // deadlock here fails the test by timeout
		// At most one side can win; a loser reports ErrSuperseded.
		if errs[0] == nil && errs[1] == nil {
			t.Fatalf("round %d: both mutual takeovers succeeded", round)
		}
		for i, err := range errs {
			if err != nil && !errors.Is(err, ErrSuperseded) {
				t.Fatalf("round %d: loser %d failed with %v", round, i, err)
			}
		}
	}
}
