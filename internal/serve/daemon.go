package serve

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/handover"
)

// Daemon is the shared front-door scaffolding of the serving binaries
// (hoserve above one engine, hocluster above a node router): newline-JSON
// report ingest from stdin or TCP, one decision line back per report
// through a DecisionMux, periodic sink flushing, and exclusive
// per-connection terminal ownership with release on disconnect.  Keeping
// the connection lifecycle here means both daemons share one teardown
// ordering (drain, then release) instead of diverging copies.
//
// Connections may interleave control lines (see WireControl) with their
// report stream: hello announces a connection identity so a reconnection
// can take over its own terminal claims, and extract/restore move
// terminal state in and out for cluster membership changes.  Control
// failures are answered inside the op's ack (Error field), never as
// `{"error":...}` reject lines — a reject line would poison the client's
// data-plane error accounting for an op the data plane never issued.
//
// Half-open clients cannot hold their terminals forever: accepted TCP
// connections carry the runtime's default keepalive, so a vanished peer
// errors the ingest read within the OS probe window and the handler
// releases its claims.
type Daemon struct {
	// Name prefixes stderr log lines ("hoserve", "hocluster").
	Name string
	// Mux routes outcomes to the owning connection's sink; the caller
	// wires Mux.Route as the engine's/router's decision callback.
	Mux *DecisionMux
	// Submit routes one parsed report batch (Engine.SubmitBatch or a
	// cluster router's SubmitBatch).
	Submit func([]Report) error
	// Drain blocks until every report submitted so far is decided
	// (Engine.Flush, or a router Flush with timeout).  Its error is a
	// serving failure, reported separately from rejected input lines.
	// Also installed as Mux.Drain (the takeover barrier) if that is
	// still nil.
	Drain func() error
	// Extract, if set, returns snapshots of every terminal that the
	// consistent-hash ring over members (with vnodes virtual nodes each)
	// no longer assigns to member self — removing them, or only copying
	// when keep is true (the first phase of a two-phase move, committed
	// by a later Release).  Serving the "extract" control op requires it.
	Extract func(members []int, vnodes, self int, keep bool) ([]TerminalSnapshot, error)
	// Restore, if set, installs terminal snapshots into the engine.
	// skipLive skips terminals already live instead of failing them (the
	// idempotent crash-recovery replay).  Serving the "restore" control
	// op requires it; it is also the recovery path when extracted state
	// cannot reach the requester.
	Restore func(snaps []TerminalSnapshot, skipLive bool) error
	// Release, if set, drops every terminal the ring over members no
	// longer assigns to member self without shipping it — the commit of
	// a keep-extract, after the copies landed on their new owner.
	// Serving the "release" control op requires it.
	Release func(members []int, vnodes, self int) (int, error)
	// AddNode/RemoveNode, if set, serve the runtime membership control
	// ops — only meaningful on a daemon fronting a cluster router
	// (hocluster); engine nodes leave them nil and the ops fail in their
	// acks.
	AddNode    func(addr string) (int, error)
	RemoveNode func(node int) error
	// Stats, if set, snapshots the node's telemetry (shard counters plus
	// exported metric points) for the "stats" control op — how a cluster
	// router scrapes member nodes over their existing connections.
	Stats func() WireStats
	// SchemaHash, if non-zero, is the serving engine's feature-schema
	// hash (Engine.SchemaHash).  A hello announcing a different schema —
	// absent meaning the paper schema — is answered with an error line
	// and the connection closed: a mixed-schema cluster must fail fast
	// at connection time, not mis-gather feature columns report by
	// report.  Zero disables the check.
	SchemaHash uint64

	initOnce sync.Once
}

// init wires the mux's takeover drain barrier to the daemon's drain.
func (d *Daemon) init() {
	d.initOnce.Do(func() {
		if d.Mux.Drain == nil {
			d.Mux.Drain = d.Drain
		}
	})
}

// flushLoop periodically flushes a sink until stop closes.
func flushLoop(s *Sink, stop <-chan struct{}) {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Flush()
		case <-stop:
			return
		}
	}
}

// RunStdio ingests os.Stdin to completion, emits decisions on os.Stdout,
// and drains.  It returns the lines read, the lines (fully or partially)
// rejected, and the drain error, so the caller can report input problems
// and serving problems as what they are.  Control ops are not served on
// stdio — there is no reconnection or migration without a network.
func (d *Daemon) RunStdio() (lines, bad int, drainErr error) {
	d.init()
	out := NewSink(os.Stdout)
	bnd := NewBinding(d.Mux, out)
	stop := make(chan struct{})
	go flushLoop(out, stop)
	lines, bad = IngestLines(os.Stdin, bnd, d.Submit, nil, func(line int, err error) {
		fmt.Fprintf(os.Stderr, "%s: line %d: %v\n", d.Name, line, err)
	})
	drainErr = d.Drain()
	close(stop)
	out.Flush()
	bnd.Release()
	return lines, bad, drainErr
}

// RunTCP accepts ingest connections forever.  Each connection owns the
// terminals it submits first (see DecisionMux) until it disconnects; its
// rejects come back as {"error":...} lines on its own sink.
func (d *Daemon) RunTCP(ln net.Listener) {
	d.init()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				// Closing the listener is the clean-shutdown signal.
				return
			}
			// Transient accept failures (aborted handshakes, fd
			// exhaustion) must not tear down the daemon and every
			// connected client: log, back off briefly, keep accepting.
			fmt.Fprintf(os.Stderr, "%s: accept: %v\n", d.Name, err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		go d.serveConn(conn)
	}
}

// serveConn runs one ingest connection to completion: ingest, drain the
// in-flight decisions so the client's tail reaches its sink, then release
// the connection's terminal claims.
func (d *Daemon) serveConn(conn net.Conn) {
	d.init()
	defer conn.Close()
	out := NewSink(conn)
	bnd := NewBinding(d.Mux, out)
	stop := make(chan struct{})
	go flushLoop(out, stop)

	// Restore arrives as a chunk stream; failures park here until the
	// restore-done ack reports them.
	var restoreCount int
	var restoreErr error
	ctl := func(c WireControl) error {
		switch c.Op {
		case "hello":
			if c.Client != "" {
				bnd.SetIdentity(c.Client)
			}
			if d.SchemaHash != 0 {
				peer := c.Schema
				if peer == 0 {
					// A peer that predates schemas speaks the paper wire
					// shape, which is exactly the paper feature set.
					peer = handover.PaperFeatureSchema().Hash()
				}
				if peer != d.SchemaHash {
					out.WriteError(fmt.Errorf("%s: feature-schema mismatch: connection announces schema %#x, node serves %#x; closing", d.Name, peer, d.SchemaHash))
					out.Flush()
					conn.Close()
					return nil
				}
			}
			return nil
		case "extract":
			d.handleExtract(out, c)
			return nil
		case "restore":
			if restoreErr != nil {
				return nil // op already failed; swallow remaining chunks
			}
			if d.Restore == nil {
				restoreErr = fmt.Errorf("%s: restore not supported", d.Name)
				return nil
			}
			if err := d.Restore(c.Snapshots, c.SkipLive); err != nil {
				restoreErr = err
			} else {
				restoreCount += len(c.Snapshots)
			}
			return nil
		case "release":
			if d.Release == nil {
				out.WriteControl(WireControl{Op: "released", Error: d.Name + ": release not supported"})
				return nil
			}
			// Settle in-flight reports first: a report decided after its
			// terminal was released would resurrect the terminal from
			// zero and fork its stream from the migrated copy.
			if err := d.Drain(); err != nil {
				out.WriteControl(WireControl{Op: "released", Error: err.Error()})
				return nil
			}
			n, err := d.Release(c.Members, c.VNodes, c.Self)
			if err != nil {
				out.WriteControl(WireControl{Op: "released", Error: err.Error()})
				return nil
			}
			out.WriteControl(WireControl{Op: "released", Count: n})
			return nil
		case "addnode":
			if d.AddNode == nil {
				out.WriteControl(WireControl{Op: "node-added", Error: d.Name + ": addnode not supported"})
				return nil
			}
			id, err := d.AddNode(c.Addr)
			if err != nil {
				out.WriteControl(WireControl{Op: "node-added", Error: err.Error()})
				return nil
			}
			out.WriteControl(WireControl{Op: "node-added", Node: id})
			return nil
		case "removenode":
			if d.RemoveNode == nil {
				out.WriteControl(WireControl{Op: "node-removed", Error: d.Name + ": removenode not supported"})
				return nil
			}
			if err := d.RemoveNode(c.Node); err != nil {
				out.WriteControl(WireControl{Op: "node-removed", Error: err.Error()})
				return nil
			}
			out.WriteControl(WireControl{Op: "node-removed", Node: c.Node})
			return nil
		case "restore-done":
			ack := WireControl{Op: "restored", Count: restoreCount}
			if restoreErr != nil {
				ack = WireControl{Op: "restored", Error: restoreErr.Error()}
			}
			restoreCount, restoreErr = 0, nil
			out.WriteControl(ack)
			return nil
		case "stats":
			if d.Stats == nil {
				out.WriteControl(WireControl{Op: "stats", Error: d.Name + ": stats not supported"})
				return nil
			}
			st := d.Stats()
			out.WriteControl(WireControl{Op: "stats", Stats: &st})
			return nil
		default:
			return fmt.Errorf("%s: unknown control op %q", d.Name, c.Op)
		}
	}

	IngestLines(conn, bnd, d.Submit, ctl, func(line int, err error) {
		out.WriteError(fmt.Errorf("line %d: %w", line, err))
	})
	if err := d.Drain(); err != nil {
		out.WriteError(fmt.Errorf("drain: %w", err))
	}
	close(stop)
	out.Flush()
	bnd.Release()
}

// handleExtract serves one "extract" control op: drain, extract the
// terminals the new ring assigns elsewhere, stream their snapshots back
// in bounded chunks, and ack with the count.  Failures answer inside the
// "extracted" ack.  If the extracted state cannot reach the requester
// (the connection died mid-stream), it is restored locally rather than
// lost.
func (d *Daemon) handleExtract(out *Sink, c WireControl) {
	if d.Extract == nil {
		out.WriteControl(WireControl{Op: "extracted", Error: d.Name + ": extract not supported"})
		return
	}
	// The extract control line was parsed in ingest order, but reports
	// already submitted may still be in flight; settle them so the
	// snapshots carry every decision the client has sent.
	if err := d.Drain(); err != nil {
		out.WriteControl(WireControl{Op: "extracted", Error: err.Error()})
		return
	}
	snaps, err := d.Extract(c.Members, c.VNodes, c.Self, c.Keep)
	if err != nil {
		out.WriteControl(WireControl{Op: "extracted", Error: err.Error()})
		return
	}
	for rest := snaps; len(rest) > 0; {
		n := min(len(rest), snapshotChunk)
		out.WriteControl(WireControl{Op: "snapshots", Snapshots: rest[:n]})
		rest = rest[n:]
	}
	out.WriteControl(WireControl{Op: "extracted", Count: len(snaps)})
	if out.Flush() != nil && len(snaps) > 0 && d.Restore != nil && !c.Keep {
		// The requester never got the state; losing it would erase the
		// terminals' histories.  Put it back and let the requester retry.
		// (A keep-copy removed nothing, so there is nothing to put back.)
		if rerr := d.Restore(snaps, false); rerr != nil {
			fmt.Fprintf(os.Stderr, "%s: restoring %d snapshots after failed extract delivery: %v\n",
				d.Name, len(snaps), rerr)
		}
	}
}

// ServeConn exposes the per-connection protocol for callers that manage
// their own listener (tests, embedding).
func (d *Daemon) ServeConn(conn net.Conn) { d.serveConn(conn) }
