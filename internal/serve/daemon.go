package serve

import (
	"fmt"
	"net"
	"os"
	"time"
)

// Daemon is the shared front-door scaffolding of the serving binaries
// (hoserve above one engine, hocluster above a node router): newline-JSON
// report ingest from stdin or TCP, one decision line back per report
// through a DecisionMux, periodic sink flushing, and exclusive
// per-connection terminal ownership with release on disconnect.  Keeping
// the connection lifecycle here means both daemons share one teardown
// ordering (drain, then release) instead of diverging copies.
//
// Half-open clients cannot hold their terminals forever: accepted TCP
// connections carry the runtime's default keepalive, so a vanished peer
// errors the ingest read within the OS probe window and the handler
// releases its claims.
type Daemon struct {
	// Name prefixes stderr log lines ("hoserve", "hocluster").
	Name string
	// Mux routes outcomes to the owning connection's sink; the caller
	// wires Mux.Route as the engine's/router's decision callback.
	Mux *DecisionMux
	// Submit routes one parsed report batch (Engine.SubmitBatch or a
	// cluster router's SubmitBatch).
	Submit func([]Report) error
	// Drain blocks until every report submitted so far is decided
	// (Engine.Flush, or a router Flush with timeout).  Its error is a
	// serving failure, reported separately from rejected input lines.
	Drain func() error
}

// flushLoop periodically flushes a sink until stop closes.
func flushLoop(s *Sink, stop <-chan struct{}) {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Flush()
		case <-stop:
			return
		}
	}
}

// RunStdio ingests os.Stdin to completion, emits decisions on os.Stdout,
// and drains.  It returns the lines read, the lines (fully or partially)
// rejected, and the drain error, so the caller can report input problems
// and serving problems as what they are.
func (d *Daemon) RunStdio() (lines, bad int, drainErr error) {
	out := NewSink(os.Stdout)
	stop := make(chan struct{})
	go flushLoop(out, stop)
	lines, bad = IngestLines(os.Stdin, d.Mux, out, d.Submit, func(line int, err error) {
		fmt.Fprintf(os.Stderr, "%s: line %d: %v\n", d.Name, line, err)
	})
	drainErr = d.Drain()
	close(stop)
	out.Flush()
	return lines, bad, drainErr
}

// RunTCP accepts ingest connections forever.  Each connection owns the
// terminals it submits first (see DecisionMux) until it disconnects; its
// rejects come back as {"error":...} lines on its own sink.
func (d *Daemon) RunTCP(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Transient accept failures (aborted handshakes, fd
			// exhaustion) must not tear down the daemon and every
			// connected client: log, back off briefly, keep accepting.
			fmt.Fprintf(os.Stderr, "%s: accept: %v\n", d.Name, err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		go d.serveConn(conn)
	}
}

// serveConn runs one ingest connection to completion: ingest, drain the
// in-flight decisions so the client's tail reaches its sink, then release
// the connection's terminal claims.
func (d *Daemon) serveConn(conn net.Conn) {
	defer conn.Close()
	out := NewSink(conn)
	stop := make(chan struct{})
	go flushLoop(out, stop)
	IngestLines(conn, d.Mux, out, d.Submit, func(line int, err error) {
		out.WriteError(fmt.Errorf("line %d: %w", line, err))
	})
	if err := d.Drain(); err != nil {
		out.WriteError(fmt.Errorf("drain: %w", err))
	}
	close(stop)
	out.Flush()
	d.Mux.Release(out)
}

// ServeConn exposes the per-connection protocol for callers that manage
// their own listener (tests, embedding).
func (d *Daemon) ServeConn(conn net.Conn) { d.serveConn(conn) }
