package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sink serializes decision lines onto one writer — one per ingest
// connection (or one for stdout).  After a write error the sink goes dead
// and drops further output: a vanished client must not stall the shard
// callbacks that feed it.
type Sink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
}

// NewSink wraps w in a buffered decision sink.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// WriteOutcome encodes and writes one decision line.
func (s *Sink) WriteOutcome(o Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendOutcomeJSON(s.buf[:0], o)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// WriteControl encodes and writes one control line.
func (s *Sink) WriteControl(c WireControl) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendControlJSON(s.buf[:0], c)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// WriteError writes one line-level `{"error":...}` message (the shape
// ParseOutcomeLine decodes as *WireError).
func (s *Sink) WriteError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = append(s.buf[:0], `{"error":`...)
	s.buf = appendJSONString(s.buf, err.Error())
	s.buf = append(s.buf, '}', '\n')
	if _, werr := s.w.Write(s.buf); werr != nil {
		s.err = werr
	}
}

// Flush pushes buffered lines to the underlying writer and returns the
// sink's sticky error, if any.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.err
}

// OwnershipError reports a terminal-ownership conflict: a connection
// submitted reports for a terminal another live connection already owns.
type OwnershipError struct{ Terminal TerminalID }

func (e *OwnershipError) Error() string {
	return fmt.Sprintf("serve: terminal %d is owned by another connection", e.Terminal)
}

// ErrSuperseded means the connection's claims were taken over by a newer
// connection carrying the same identity; the superseded connection must
// stop submitting.
var ErrSuperseded = errors.New("serve: connection superseded by a newer connection with the same identity")

// DecisionMux routes engine outcomes back to the ingest connection that
// owns each terminal, with exclusive ownership:
//
//   - A terminal is claimed by the first connection that submits a report
//     for it and stays claimed until that connection releases (closes).
//   - A second connection submitting the same terminal is rejected with an
//     *OwnershipError — accepting it would interleave one terminal's state
//     stream across connections and route decisions to whichever sink
//     happened to bind last.
//   - Exception: a connection that announced the same identity (hello)
//     as the current owner TAKES OVER the owner's claims.  This is the
//     reconnect path — the old connection is a dead incarnation of the
//     same client, but its socket may not have errored yet, so waiting
//     for its release would strand the client.  Takeover is safe, not
//     just permitted: the old binding is revoked first (its in-flight
//     submit fences out), then the mux drains so every already-submitted
//     outcome reaches the old sink, and only then do claims transfer.
//     No terminal's decision stream is lost or interleaved across the
//     boundary.
//   - A claim made by a line that is later rejected (validation error
//     further into the batch) is kept: ownership is a property of the
//     connection, not of any one line's fate.
//
// Route runs on shard goroutines; Binding methods on connection
// goroutines.
type DecisionMux struct {
	// Drain blocks until every outcome for reports submitted so far has
	// been routed.  Takeover uses it as the barrier between routing a
	// terminal's decisions to the old sink and to the new one; nil skips
	// the barrier (outcomes may race the transfer).
	Drain func() error

	claims sync.Map // TerminalID → *Binding
}

// NewDecisionMux returns an empty mux.
func NewDecisionMux() *DecisionMux { return &DecisionMux{} }

// Route delivers one outcome to the owning connection's sink (drops it
// if the owner already released).  Use as the engine's OnDecision
// callback.
func (m *DecisionMux) Route(o Outcome) {
	if v, ok := m.claims.Load(o.Terminal); ok {
		v.(*Binding).sink.WriteOutcome(o)
	}
}

// ClaimSummary is the mux's live claim table grouped by connection
// identity — the /statusz view of which connections own which share of
// the terminal population.
type ClaimSummary struct {
	// Terminals is the total number of claimed terminals.
	Terminals int `json:"terminals"`
	// Owners maps connection identity ("anonymous" when the connection
	// never sent a hello) to its claim count.
	Owners map[string]int `json:"owners,omitempty"`
}

// Claims summarizes the live claim table.  A snapshot under concurrent
// claiming is consistent per entry, not across the table.
func (m *DecisionMux) Claims() ClaimSummary {
	sum := ClaimSummary{Owners: make(map[string]int)}
	m.claims.Range(func(_, v any) bool {
		sum.Terminals++
		id := v.(*Binding).identityString()
		if id == "" {
			id = "anonymous"
		}
		sum.Owners[id]++
		return true
	})
	return sum
}

// Binding is one connection's claim-holding handle on a mux.  It pairs
// the connection's sink with an optional client identity and carries the
// revocation state takeover needs.
type Binding struct {
	mux  *DecisionMux
	sink *Sink

	// identity is the client-announced connection identity ("" until a
	// hello arrives).  Claims held under an identity can be taken over
	// by a new connection announcing the same one.
	identity atomic.Value // string

	// revoked flips when a newer same-identity connection takes this
	// binding's claims (or the binding releases); Submit then refuses
	// with ErrSuperseded.
	revoked atomic.Bool

	// mu serializes Submit/Release and is the takeover fence: a taker
	// must hold it before moving claims, so no submit is mid-flight
	// across the transfer.
	mu sync.Mutex
}

// NewBinding returns a binding routing the mux's outcomes to sink.
func NewBinding(m *DecisionMux, sink *Sink) *Binding {
	return &Binding{mux: m, sink: sink}
}

// SetIdentity records the client-announced connection identity, enabling
// same-identity claim takeover on reconnect.
func (b *Binding) SetIdentity(id string) { b.identity.Store(id) }

func (b *Binding) identityString() string {
	s, _ := b.identity.Load().(string)
	return s
}

// Superseded reports whether a newer connection took this binding's
// claims.
func (b *Binding) Superseded() bool { return b.revoked.Load() }

// Submit claims every report's terminal for this binding and forwards
// the batch through submit.  Claims made before the first conflict are
// kept (see DecisionMux).  Returns ErrSuperseded once a newer connection
// with the same identity has taken over.
func (b *Binding) Submit(rs []Report, submit func([]Report) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.revoked.Load() {
		return ErrSuperseded
	}
	for i := range rs {
		if err := b.bind(rs[i].Terminal); err != nil {
			return err
		}
	}
	return submit(rs)
}

// bind claims one terminal, taking over a dead same-identity owner if
// needed.  Called with b.mu held.
func (b *Binding) bind(id TerminalID) error {
	for {
		cur, loaded := b.mux.claims.LoadOrStore(id, b)
		if !loaded || cur == any(b) {
			return nil
		}
		owner := cur.(*Binding)
		ident := b.identityString()
		if ident == "" || owner.identityString() != ident {
			return &OwnershipError{Terminal: id}
		}
		if err := b.takeover(owner); err != nil {
			return err
		}
		// Claims transferred (or the owner released concurrently);
		// retry the claim.
	}
}

// takeover moves every claim held by owner to b: revoke, fence out the
// owner's in-flight submit, drain routed outcomes to the old sink, then
// transfer.  Called with b.mu held.
func (b *Binding) takeover(owner *Binding) error {
	owner.revoked.Store(true)
	// Fence: wait until no submit is running on the owner.  TryLock-spin
	// instead of Lock so that two live same-identity connections taking
	// each other over cannot deadlock — each sees itself revoked by the
	// other and backs out.
	for !owner.mu.TryLock() {
		if b.revoked.Load() {
			return ErrSuperseded
		}
		runtime.Gosched()
	}
	defer owner.mu.Unlock()
	// Barrier: everything the owner submitted must route to the owner's
	// sink before claims move, or the tail of its decision stream would
	// appear on the new connection.
	if b.mux.Drain != nil {
		if err := b.mux.Drain(); err != nil {
			return fmt.Errorf("serve: drain before takeover: %w", err)
		}
	}
	b.mux.claims.Range(func(k, v any) bool {
		if v == any(owner) {
			b.mux.claims.CompareAndSwap(k, owner, b)
		}
		return true
	})
	return nil
}

// Release revokes the binding and drops every claim it still holds, so
// its terminals can be re-claimed by a later connection.  Claims already
// taken over are left with their new owner.
func (b *Binding) Release() {
	b.revoked.Store(true)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mux.claims.Range(func(k, v any) bool {
		if v == any(b) {
			b.mux.claims.CompareAndDelete(k, b)
		}
		return true
	})
}

// IngestLines reads newline-JSON lines from rd until EOF.  Report lines
// claim their terminals for b and are forwarded through submit; control
// lines (leading `{"ctl"`) are parsed and handed to ctl, which answers
// on the connection's sink itself (a nil ctl rejects them).  Rejected
// lines are reported through reject (with their 1-based line number) and
// skipped; the reader keeps going.  A line whose batch fails validation
// part-way is served up to the failing report: the validated prefix is
// bound and submitted, and the error names the index where the rest was
// dropped.  Returns lines read and lines (fully or partially) rejected.
func IngestLines(rd io.Reader, b *Binding, submit func([]Report) error, ctl func(WireControl) error, reject func(line int, err error)) (lines, bad int) {
	scanner := bufio.NewScanner(rd)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scanner.Scan() {
		lines++
		rejected := false
		fail := func(err error) {
			if !rejected {
				rejected = true
				bad++
			}
			reject(lines, err)
		}
		if isControlLine(scanner.Bytes()) {
			c, err := ParseControlLine(scanner.Bytes())
			if err == nil && ctl == nil {
				err = fmt.Errorf("serve: control op %q not supported here", c.Op)
			}
			if err == nil {
				err = ctl(c)
			}
			if err != nil {
				fail(err)
			}
			continue
		}
		reports, err := ParseBatchLine(scanner.Bytes())
		if err != nil {
			fail(err)
		}
		if len(reports) == 0 {
			continue
		}
		if err := b.Submit(reports, submit); err != nil {
			fail(err)
		}
	}
	if err := scanner.Err(); err != nil {
		reject(lines, fmt.Errorf("read: %w", err))
	}
	return lines, bad
}
