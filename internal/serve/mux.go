package serve

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Sink serializes decision lines onto one writer — one per ingest
// connection (or one for stdout).  After a write error the sink goes dead
// and drops further output: a vanished client must not stall the shard
// callbacks that feed it.
type Sink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
}

// NewSink wraps w in a buffered decision sink.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// WriteOutcome encodes and writes one decision line.
func (s *Sink) WriteOutcome(o Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendOutcomeJSON(s.buf[:0], o)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// WriteError writes one line-level `{"error":...}` message (the shape
// ParseOutcomeLine decodes as *WireError).
func (s *Sink) WriteError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = append(s.buf[:0], `{"error":`...)
	s.buf = appendJSONString(s.buf, err.Error())
	s.buf = append(s.buf, '}', '\n')
	if _, werr := s.w.Write(s.buf); werr != nil {
		s.err = werr
	}
}

// Flush pushes buffered lines to the underlying writer and returns the
// sink's sticky error, if any.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.err
}

// OwnershipError reports a terminal-ownership conflict: a connection
// submitted reports for a terminal another live connection already owns.
type OwnershipError struct{ Terminal TerminalID }

func (e *OwnershipError) Error() string {
	return fmt.Sprintf("serve: terminal %d is owned by another connection", e.Terminal)
}

// DecisionMux routes engine outcomes back to the ingest connection that
// owns each terminal, with exclusive ownership:
//
//   - A terminal is claimed by the first connection that submits a report
//     for it and stays claimed until that connection releases (closes).
//   - A second connection submitting the same terminal is rejected with an
//     *OwnershipError — accepting it would interleave one terminal's state
//     stream across connections and route decisions to whichever sink
//     happened to bind last.
//   - A claim made by a line that is later rejected (validation error
//     further into the batch) is kept: ownership is a property of the
//     connection, not of any one line's fate.
//
// Route runs on shard goroutines; Bind/Release on connection goroutines.
type DecisionMux struct {
	sinks sync.Map // TerminalID → *Sink
}

// NewDecisionMux returns an empty mux.
func NewDecisionMux() *DecisionMux { return &DecisionMux{} }

// Bind claims the terminal for s.  Rebinding by the owner is a cheap
// no-op; a claim held by another sink fails with *OwnershipError.
func (m *DecisionMux) Bind(id TerminalID, s *Sink) error {
	if cur, loaded := m.sinks.LoadOrStore(id, s); loaded && cur != any(s) {
		return &OwnershipError{Terminal: id}
	}
	return nil
}

// BindAll claims every report's terminal for s, failing on the first
// conflict.  Terminals claimed earlier in the same call keep their claim —
// see the DecisionMux ownership rules.
func (m *DecisionMux) BindAll(rs []Report, s *Sink) error {
	for i := range rs {
		if err := m.Bind(rs[i].Terminal, s); err != nil {
			return err
		}
	}
	return nil
}

// Release drops every claim held by s, so its terminals can be re-claimed
// by a later connection.
func (m *DecisionMux) Release(s *Sink) {
	m.sinks.Range(func(k, v any) bool {
		if v == any(s) {
			m.sinks.Delete(k)
		}
		return true
	})
}

// Route delivers one outcome to the owning sink (drops it if the owner
// already released).  Use as the engine's OnDecision callback.
func (m *DecisionMux) Route(o Outcome) {
	if v, ok := m.sinks.Load(o.Terminal); ok {
		v.(*Sink).WriteOutcome(o)
	}
}

// IngestLines reads newline-JSON report lines from rd, claims each
// report's terminal for out on mux, and submits through submit.  Rejected
// lines are reported through reject (with their 1-based line number) and
// skipped; the reader keeps going.  A line whose batch fails validation
// part-way is served up to the failing report: the validated prefix is
// bound and submitted, and the error names the index where the rest was
// dropped.  Returns lines read and lines (fully or partially) rejected.
func IngestLines(rd io.Reader, mux *DecisionMux, out *Sink, submit func([]Report) error, reject func(line int, err error)) (lines, bad int) {
	scanner := bufio.NewScanner(rd)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for scanner.Scan() {
		lines++
		rejected := false
		fail := func(err error) {
			if !rejected {
				rejected = true
				bad++
			}
			reject(lines, err)
		}
		reports, err := ParseBatchLine(scanner.Bytes())
		if err != nil {
			fail(err)
		}
		if len(reports) == 0 {
			continue
		}
		if err := mux.BindAll(reports, out); err != nil {
			fail(err)
			continue
		}
		if err := submit(reports); err != nil {
			fail(err)
		}
	}
	if err := scanner.Err(); err != nil {
		reject(lines, fmt.Errorf("read: %w", err))
	}
	return lines, bad
}
