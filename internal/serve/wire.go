package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/cell"
	"repro/internal/hexgrid"
)

// WireReport is the newline-JSON ingest format of one measurement report —
// the over-the-wire shape of Report consumed by cmd/hoserve.  Cells are
// [i, j] axial labels; power fields are dB.
type WireReport struct {
	Terminal   uint64  `json:"terminal"`
	Serving    [2]int  `json:"serving"`
	Neighbor   [2]int  `json:"neighbor"`
	ServingDB  float64 `json:"serving_db"`
	NeighborDB float64 `json:"ssn_db"`
	CSSPdB     float64 `json:"cssp_db"`
	DMBNorm    float64 `json:"dmb"`
	WalkedKm   float64 `json:"walked_km"`
	SpeedKmh   float64 `json:"speed_kmh"`
}

// WireOutcome is the newline-JSON decision format cmd/hoserve emits.
type WireOutcome struct {
	Terminal uint64  `json:"terminal"`
	Seq      uint64  `json:"seq"`
	Handover bool    `json:"handover"`
	Score    float64 `json:"score,omitempty"`
	Reason   string  `json:"reason"`
	Executed bool    `json:"executed"`
	PingPong bool    `json:"pingpong,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Report converts the wire shape to the engine's ingest type.
func (w WireReport) Report() Report {
	return Report{
		Terminal: TerminalID(w.Terminal),
		Meas: cell.Measurement{
			Serving:    hexgrid.Cell{I: w.Serving[0], J: w.Serving[1]},
			Neighbor:   hexgrid.Cell{I: w.Neighbor[0], J: w.Neighbor[1]},
			ServingDB:  w.ServingDB,
			NeighborDB: w.NeighborDB,
			CSSPdB:     w.CSSPdB,
			DMBNorm:    w.DMBNorm,
			WalkedKm:   w.WalkedKm,
			SpeedKmh:   w.SpeedKmh,
		},
	}
}

// Validate rejects reports no decision algorithm can sanely consume.
func (w WireReport) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"serving_db", w.ServingDB}, {"ssn_db", w.NeighborDB},
		{"cssp_db", w.CSSPdB}, {"dmb", w.DMBNorm},
		{"walked_km", w.WalkedKm}, {"speed_kmh", w.SpeedKmh},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("serve: report field %s is not finite", f.name)
		}
	}
	if w.DMBNorm < 0 {
		return fmt.Errorf("serve: negative dmb %g", w.DMBNorm)
	}
	if w.WalkedKm < 0 {
		return fmt.Errorf("serve: negative walked_km %g", w.WalkedKm)
	}
	if w.SpeedKmh < 0 {
		return fmt.Errorf("serve: negative speed_kmh %g", w.SpeedKmh)
	}
	if w.Serving == w.Neighbor {
		return fmt.Errorf("serve: serving and neighbor are both BS(%d,%d)", w.Serving[0], w.Serving[1])
	}
	return nil
}

// ParseBatchLine decodes one ingest line: either a single JSON report
// object or a JSON array of them (one batch).  Every report is validated;
// a malformed line yields a descriptive error and no reports.
func ParseBatchLine(line []byte) ([]Report, error) {
	trimmed := trimSpace(line)
	if len(trimmed) == 0 {
		return nil, nil
	}
	var wires []WireReport
	if trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &wires); err != nil {
			return nil, fmt.Errorf("serve: malformed batch line: %w", err)
		}
	} else {
		var w WireReport
		if err := json.Unmarshal(trimmed, &w); err != nil {
			return nil, fmt.Errorf("serve: malformed report line: %w", err)
		}
		wires = append(wires, w)
	}
	out := make([]Report, 0, len(wires))
	for i, w := range wires {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("report %d: %w", i, err)
		}
		out = append(out, w.Report())
	}
	return out, nil
}

// trimSpace strips ASCII whitespace without allocating.
func trimSpace(b []byte) []byte {
	lo, hi := 0, len(b)
	for lo < hi && (b[lo] == ' ' || b[lo] == '\t' || b[lo] == '\r' || b[lo] == '\n') {
		lo++
	}
	for hi > lo && (b[hi-1] == ' ' || b[hi-1] == '\t' || b[hi-1] == '\r' || b[hi-1] == '\n') {
		hi--
	}
	return b[lo:hi]
}

// AppendOutcomeJSON appends the outcome as one JSON line (with trailing
// newline) to dst and returns the extended slice.  It is hand-rolled so a
// busy decision stream does not allocate per outcome.
func AppendOutcomeJSON(dst []byte, o Outcome) []byte {
	dst = append(dst, `{"terminal":`...)
	dst = strconv.AppendUint(dst, uint64(o.Terminal), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, o.Seq, 10)
	dst = append(dst, `,"handover":`...)
	dst = strconv.AppendBool(dst, o.Decision.Handover)
	if o.Decision.Scored {
		dst = append(dst, `,"score":`...)
		dst = strconv.AppendFloat(dst, o.Decision.Score, 'g', -1, 64)
	}
	dst = append(dst, `,"reason":`...)
	dst = appendJSONString(dst, o.Decision.Reason)
	dst = append(dst, `,"executed":`...)
	dst = strconv.AppendBool(dst, o.Executed)
	if o.PingPong {
		dst = append(dst, `,"pingpong":true`...)
	}
	if o.Err != nil {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, o.Err.Error())
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendJSONString appends s as a JSON string.  Reasons and error texts
// are ASCII; anything outside the safe set is escaped numerically.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, fmt.Sprintf(`\u%04x`, c)...)
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
