package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// WireReport is the newline-JSON ingest format of one measurement report —
// the over-the-wire shape of Report consumed by cmd/hoserve.  Cells are
// [i, j] axial labels; power fields are dB.
type WireReport struct {
	Terminal   uint64  `json:"terminal"`
	Serving    [2]int  `json:"serving"`
	Neighbor   [2]int  `json:"neighbor"`
	ServingDB  float64 `json:"serving_db"`
	NeighborDB float64 `json:"ssn_db"`
	CSSPdB     float64 `json:"cssp_db"`
	DMBNorm    float64 `json:"dmb"`
	WalkedKm   float64 `json:"walked_km"`
	SpeedKmh   float64 `json:"speed_kmh"`
	X          WireExt `json:"x,omitempty"`
}

// WireExt is the optional "x" extension-feature object of a wire report:
// named scalar inputs for schema features beyond the paper's measurement
// set.  Order is load-bearing — encode emits entries in stored order and
// decode preserves arrival order — so encode→decode→encode is
// byte-identical like every other codec here.  Decode rejects duplicate
// names and non-number values; an empty object decodes to nil.
type WireExt []handover.ExtValue

// UnmarshalJSON decodes the extension object through the token stream,
// which is the only stdlib path that sees object keys in wire order.
func (x *WireExt) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("serve: report field x must be an object")
	}
	var vals []handover.ExtValue
	for dec.More() {
		ktok, err := dec.Token()
		if err != nil {
			return err
		}
		k, _ := ktok.(string)
		for _, v := range vals {
			if v.Name == k {
				return fmt.Errorf("serve: duplicate x extension feature %q", k)
			}
		}
		vtok, err := dec.Token()
		if err != nil {
			return err
		}
		num, ok := vtok.(json.Number)
		if !ok {
			return fmt.Errorf("serve: x extension feature %q is not a number", k)
		}
		f, err := num.Float64()
		if err != nil {
			return fmt.Errorf("serve: x extension feature %q: %w", k, err)
		}
		vals = append(vals, handover.ExtValue{Name: k, Value: f})
	}
	if _, err := dec.Token(); err != nil { // consume the closing brace
		return err
	}
	*x = vals
	return nil
}

// MarshalJSON mirrors the hand-rolled appendExtJSON encoding for callers
// that marshal a WireReport through the stdlib.
func (x WireExt) MarshalJSON() ([]byte, error) {
	b := appendExtObj(nil, x)
	return b, nil
}

// WireOutcome is the newline-JSON decision format cmd/hoserve emits.
// Score is meaningful only when Scored is set: the pair distinguishes a
// legitimate score of exactly 0 from "the algorithm produced no score",
// which a bare omitempty float cannot.
type WireOutcome struct {
	Terminal uint64  `json:"terminal"`
	Seq      uint64  `json:"seq"`
	Handover bool    `json:"handover"`
	Score    float64 `json:"score,omitempty"`
	Scored   bool    `json:"scored,omitempty"`
	Reason   string  `json:"reason"`
	Executed bool    `json:"executed"`
	PingPong bool    `json:"pingpong,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Wire converts a report to its wire shape — the inverse of
// WireReport.Report, used by clients to validate before encoding (a
// non-finite float would render as a bare NaN/Inf token, which is not
// JSON, and an invalid report would poison its whole coalesced batch
// line at the remote daemon).
func (r Report) Wire() WireReport {
	return WireReport{
		Terminal:   uint64(r.Terminal),
		Serving:    [2]int{r.Meas.Serving.I, r.Meas.Serving.J},
		Neighbor:   [2]int{r.Meas.Neighbor.I, r.Meas.Neighbor.J},
		ServingDB:  r.Meas.ServingDB,
		NeighborDB: r.Meas.NeighborDB,
		CSSPdB:     r.Meas.CSSPdB,
		DMBNorm:    r.Meas.DMBNorm,
		WalkedKm:   r.Meas.WalkedKm,
		SpeedKmh:   r.Meas.SpeedKmh,
		X:          WireExt(r.Ext),
	}
}

// Report converts the wire shape to the engine's ingest type.
func (w WireReport) Report() Report {
	return Report{
		Terminal: TerminalID(w.Terminal),
		Meas: cell.Measurement{
			Serving:    hexgrid.Cell{I: w.Serving[0], J: w.Serving[1]},
			Neighbor:   hexgrid.Cell{I: w.Neighbor[0], J: w.Neighbor[1]},
			ServingDB:  w.ServingDB,
			NeighborDB: w.NeighborDB,
			CSSPdB:     w.CSSPdB,
			DMBNorm:    w.DMBNorm,
			WalkedKm:   w.WalkedKm,
			SpeedKmh:   w.SpeedKmh,
		},
		Ext: []handover.ExtValue(w.X),
	}
}

// Validate rejects reports no decision algorithm can sanely consume.
func (w WireReport) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"serving_db", w.ServingDB}, {"ssn_db", w.NeighborDB},
		{"cssp_db", w.CSSPdB}, {"dmb", w.DMBNorm},
		{"walked_km", w.WalkedKm}, {"speed_kmh", w.SpeedKmh},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("serve: report field %s is not finite", f.name)
		}
	}
	if w.DMBNorm < 0 {
		return fmt.Errorf("serve: negative dmb %g", w.DMBNorm)
	}
	if w.WalkedKm < 0 {
		return fmt.Errorf("serve: negative walked_km %g", w.WalkedKm)
	}
	if w.SpeedKmh < 0 {
		return fmt.Errorf("serve: negative speed_kmh %g", w.SpeedKmh)
	}
	if w.Serving == w.Neighbor {
		return fmt.Errorf("serve: serving and neighbor are both BS(%d,%d)", w.Serving[0], w.Serving[1])
	}
	for i, e := range w.X {
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("serve: x extension feature %q is not finite", e.Name)
		}
		for j := 0; j < i; j++ {
			if w.X[j].Name == e.Name {
				return fmt.Errorf("serve: duplicate x extension feature %q", e.Name)
			}
		}
	}
	return nil
}

// ParseBatchLine decodes one ingest line: either a single JSON report
// object or a JSON array of them (one batch).  A malformed line (broken
// JSON) yields a descriptive error and no reports.  Reports decode
// strictly: an unknown top-level field or a malformed "x" extension
// object rejects that report — this codec's pinned contract, since a
// silently dropped field would desynchronize a mixed-version cluster's
// decisions without any error surfacing.  A line whose report i fails to
// decode or validate yields the validated prefix — every report before
// the offending one, in order — alongside an error naming the failing
// index, so callers can serve the prefix (or drop it) without
// re-parsing; reports after the first invalid one are never returned.
//
//fuzzyho:deterministic
func ParseBatchLine(line []byte) ([]Report, error) {
	trimmed := trimSpace(line)
	if len(trimmed) == 0 {
		return nil, nil
	}
	var raws []json.RawMessage
	if trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &raws); err != nil {
			return nil, fmt.Errorf("serve: malformed batch line: %w", err)
		}
	} else {
		var w WireReport
		if err := unmarshalReportStrict(trimmed, &w); err != nil {
			return nil, fmt.Errorf("serve: malformed report line: %w", err)
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("report 0: %w (0 of 1 validated)", err)
		}
		return []Report{w.Report()}, nil
	}
	out := make([]Report, 0, len(raws))
	for i, raw := range raws {
		var w WireReport
		if err := unmarshalReportStrict(raw, &w); err != nil {
			return out, fmt.Errorf("report %d: %w (%d of %d validated)", i, err, len(out), len(raws))
		}
		if err := w.Validate(); err != nil {
			return out, fmt.Errorf("report %d: %w (%d of %d validated)", i, err, len(out), len(raws))
		}
		out = append(out, w.Report())
	}
	return out, nil
}

// unmarshalReportStrict decodes one report object rejecting unknown
// top-level fields and trailing data.
//
//fuzzyho:deterministic
func unmarshalReportStrict(data []byte, w *WireReport) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(w); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after report object")
	}
	return nil
}

// trimSpace strips ASCII whitespace without allocating.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func trimSpace(b []byte) []byte {
	lo, hi := 0, len(b)
	for lo < hi && (b[lo] == ' ' || b[lo] == '\t' || b[lo] == '\r' || b[lo] == '\n') {
		lo++
	}
	for hi > lo && (b[hi-1] == ' ' || b[hi-1] == '\t' || b[hi-1] == '\r' || b[hi-1] == '\n') {
		hi--
	}
	return b[lo:hi]
}

// AppendReportJSON appends one report in the WireReport shape (no trailing
// newline — reports usually travel inside batch arrays) to dst and returns
// the extended slice.  Hand-rolled like AppendOutcomeJSON so a cluster
// router forwarding millions of reports does not allocate per report.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
//fuzzyho:wirepair parse=ParseBatchLine fuzz=FuzzParseBatchLine
func AppendReportJSON(dst []byte, r Report) []byte {
	dst = append(dst, `{"terminal":`...)
	dst = strconv.AppendUint(dst, uint64(r.Terminal), 10)
	dst = append(dst, `,"serving":[`...)
	dst = strconv.AppendInt(dst, int64(r.Meas.Serving.I), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(r.Meas.Serving.J), 10)
	dst = append(dst, `],"neighbor":[`...)
	dst = strconv.AppendInt(dst, int64(r.Meas.Neighbor.I), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(r.Meas.Neighbor.J), 10)
	dst = append(dst, `],"serving_db":`...)
	dst = strconv.AppendFloat(dst, r.Meas.ServingDB, 'g', -1, 64)
	dst = append(dst, `,"ssn_db":`...)
	dst = strconv.AppendFloat(dst, r.Meas.NeighborDB, 'g', -1, 64)
	dst = append(dst, `,"cssp_db":`...)
	dst = strconv.AppendFloat(dst, r.Meas.CSSPdB, 'g', -1, 64)
	dst = append(dst, `,"dmb":`...)
	dst = strconv.AppendFloat(dst, r.Meas.DMBNorm, 'g', -1, 64)
	dst = append(dst, `,"walked_km":`...)
	dst = strconv.AppendFloat(dst, r.Meas.WalkedKm, 'g', -1, 64)
	dst = append(dst, `,"speed_kmh":`...)
	dst = strconv.AppendFloat(dst, r.Meas.SpeedKmh, 'g', -1, 64)
	if len(r.Ext) > 0 {
		dst = append(dst, `,"x":`...)
		dst = appendExtObj(dst, r.Ext)
	}
	return append(dst, '}')
}

// appendExtObj appends the "x" extension object in stored entry order.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func appendExtObj(dst []byte, ext []handover.ExtValue) []byte {
	dst = append(dst, '{')
	for i, e := range ext {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, e.Name)
		dst = append(dst, ':')
		dst = strconv.AppendFloat(dst, e.Value, 'g', -1, 64)
	}
	return append(dst, '}')
}

// AppendBatchJSON appends a batch of reports as one JSON-array ingest line
// (with trailing newline) to dst and returns the extended slice.  The
// output round-trips through ParseBatchLine report for report.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func AppendBatchJSON(dst []byte, rs []Report) []byte {
	dst = append(dst, '[')
	for i := range rs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendReportJSON(dst, rs[i])
	}
	return append(dst, ']', '\n')
}

// AppendOutcomeJSON appends the outcome as one JSON line (with trailing
// newline) to dst and returns the extended slice.  It is hand-rolled so a
// busy decision stream does not allocate per outcome.  The score is
// emitted together with an explicit "scored" flag whenever the decision
// carries one, so a score of exactly 0 survives the round trip.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
//fuzzyho:wirepair parse=ParseOutcomeLine fuzz=FuzzOutcomeRoundTrip
func AppendOutcomeJSON(dst []byte, o Outcome) []byte {
	dst = append(dst, `{"terminal":`...)
	dst = strconv.AppendUint(dst, uint64(o.Terminal), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, o.Seq, 10)
	dst = append(dst, `,"handover":`...)
	dst = strconv.AppendBool(dst, o.Decision.Handover)
	if o.Decision.Scored {
		dst = append(dst, `,"score":`...)
		dst = strconv.AppendFloat(dst, o.Decision.Score, 'g', -1, 64)
		dst = append(dst, `,"scored":true`...)
	}
	dst = append(dst, `,"reason":`...)
	dst = appendJSONString(dst, o.Decision.Reason)
	dst = append(dst, `,"executed":`...)
	dst = strconv.AppendBool(dst, o.Executed)
	if o.PingPong {
		dst = append(dst, `,"pingpong":true`...)
	}
	if o.Err != nil {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, o.Err.Error())
	}
	dst = append(dst, '}', '\n')
	return dst
}

// WireError is the decode of a line-level `{"error":...}` message: the
// shape a daemon emits when it rejects a whole ingest line (malformed
// JSON, ownership conflict) rather than deciding a report.  It is also
// the Err type of decoded outcomes, carrying the remote error text
// verbatim — re-encoding a decoded outcome reproduces the original line
// byte for byte.
type WireError struct{ Msg string }

func (e *WireError) Error() string { return e.Msg }

// ParseOutcomeLine decodes one decision line a daemon emitted.  Lines
// carrying a terminal decode into a WireOutcome; line-level error messages
// (no "terminal" key) decode into a *WireError so clients can tell "a
// report was decided, possibly with an algorithm error" from "an ingest
// line was rejected and its reports will never be decided".  One JSON
// parse per line — this sits on the cluster read hot path.
//
//fuzzyho:deterministic
func ParseOutcomeLine(line []byte) (WireOutcome, error) {
	var aux struct {
		Terminal *uint64 `json:"terminal"` // pointer: presence distinguishes reject lines
		Seq      uint64  `json:"seq"`
		Handover bool    `json:"handover"`
		Score    float64 `json:"score"`
		Scored   bool    `json:"scored"`
		Reason   string  `json:"reason"`
		Executed bool    `json:"executed"`
		PingPong bool    `json:"pingpong"`
		Error    string  `json:"error"`
	}
	if err := json.Unmarshal(line, &aux); err != nil {
		return WireOutcome{}, fmt.Errorf("serve: malformed outcome line: %w", err)
	}
	if aux.Terminal == nil {
		if aux.Error != "" {
			return WireOutcome{}, &WireError{Msg: aux.Error}
		}
		return WireOutcome{}, fmt.Errorf("serve: outcome line carries no terminal: %.200s", line)
	}
	return WireOutcome{
		Terminal: *aux.Terminal,
		Seq:      aux.Seq,
		Handover: aux.Handover,
		Score:    aux.Score,
		Scored:   aux.Scored,
		Reason:   aux.Reason,
		Executed: aux.Executed,
		PingPong: aux.PingPong,
		Error:    aux.Error,
	}, nil
}

// Outcome converts the wire shape back to the engine's outcome type.  The
// Shard field is not carried on the wire (a remote consumer has no use for
// another process's shard index) and decodes as -1.
func (w WireOutcome) Outcome() Outcome {
	o := Outcome{
		Terminal: TerminalID(w.Terminal),
		Seq:      w.Seq,
		Executed: w.Executed,
		PingPong: w.PingPong,
		Shard:    -1,
	}
	o.Decision.Handover = w.Handover
	o.Decision.Score = w.Score
	o.Decision.Scored = w.Scored
	o.Decision.Reason = w.Reason
	if w.Error != "" {
		o.Err = &WireError{Msg: w.Error}
	}
	return o
}

// appendJSONString appends s as a JSON string.  Reasons and error texts
// are ASCII; anything outside the safe set is escaped numerically.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func appendJSONString(dst []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			// Control bytes escape as \u00XX, hand-rolled: a fmt.Sprintf
			// here would put an allocation on the outcome encode path for
			// every reason string containing one.
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
