package serve

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// exportValues flattens a registry export into name → summed value for
// counters/gauges, and name/label → value for labeled points.
func exportValues(points []obs.Point) map[string]float64 {
	out := map[string]float64{}
	for _, p := range points {
		if p.Kind == obs.KindHistogram {
			continue
		}
		if len(p.Labels) == 0 {
			out[p.Name] += p.Value
			continue
		}
		key := p.Name
		for _, l := range p.Labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		out[key] = p.Value
		out[p.Name] += p.Value // aggregate across labels too
	}
	return out
}

// TestMetricsMatchEngineStats pins the tentpole consistency contract:
// after concurrent load and a flush, every counter on /metrics equals the
// corresponding Engine.Stats() field exactly — the collector reads the
// same atomics, so there is no second bookkeeping to drift.  Runs under
// race as-is.
func TestMetricsMatchEngineStats(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(Config{Shards: 4, QueueDepth: 256, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	const workers = 4
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var r Report
				if i%3 == 0 {
					r = gateMeas(TerminalID(w*64 + i%32))
				} else {
					r = flcMeas(TerminalID(w*64 + i%32))
				}
				if err := e.Submit(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.Flush()

	tot := e.Stats().Totals()
	if tot.Decisions != workers*perWorker {
		t.Fatalf("decisions = %d, want %d", tot.Decisions, workers*perWorker)
	}
	vals := exportValues(reg.Export())
	pin := func(name string, want uint64) {
		t.Helper()
		if got := vals[name]; got != float64(want) {
			t.Errorf("%s = %g, want %d (Engine.Stats)", name, got, want)
		}
	}
	pin("serve_decisions_total", tot.Decisions)
	pin("serve_handovers_total", tot.Handovers)
	pin("serve_pingpongs_total", tot.PingPongs)
	pin("serve_errors_total", tot.Errors)
	pin("serve_terminals", tot.Terminals)
	pin("serve_queue_depth", uint64(tot.QueueDepth))

	// The verdict classes must partition the decision count, and each
	// labeled verdict counter must equal Verdicts().
	var verdictSum uint64
	for name, n := range e.Verdicts() {
		verdictSum += n
		if got := vals[`serve_verdicts_total{verdict=`+name+`}`]; got != float64(n) {
			t.Errorf("verdict %q = %g on /metrics, want %d", name, got, n)
		}
	}
	if verdictSum != tot.Decisions {
		t.Errorf("verdicts sum to %d, decisions %d — classes do not partition", verdictSum, tot.Decisions)
	}

	// Stage histograms observed work: one queue-wait and one service
	// sample per dequeued sub-batch.
	if vals["serve_queue_wait_ns"] != 0 {
		t.Errorf("histogram leaked into counter export")
	}
	for _, p := range reg.Export() {
		if p.Name == "serve_batch_service_ns" && p.Count == 0 {
			t.Errorf("serve_batch_service_ns has no samples after %d decisions", tot.Decisions)
		}
	}

	// And the rendered Prometheus text carries the pinned counter.
	text := obs.PrometheusText(reg.Export())
	if !strings.Contains(text, "serve_decisions_total 2000") {
		t.Errorf("prometheus text lacks pinned serve_decisions_total:\n%s", text)
	}
}

// TestMetricsSteadyStateAllocs extends the engine's zero-alloc pin to a
// metrics-enabled engine: the instrumented steady-state path (queue-wait
// stamps, stage histograms, verdict tallies) must still run without heap
// allocations per decision.
func TestMetricsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the regression runs in the non-race job")
	}
	reg := obs.NewRegistry()
	e, err := New(Config{Shards: 4, QueueDepth: 512, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	batch := steadyBatch(256, 32)
	for i := 0; i < 4; i++ {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	})
	perDecision := allocs / float64(len(batch))
	if perDecision >= 0.01 {
		t.Errorf("metrics-enabled steady state allocates %.4f allocs/decision, want ~0", perDecision)
	}
}

// TestDecisionTraceSampling pins the sampling cadence, the ring bound,
// and the captured FLC explanation.
func TestDecisionTraceSampling(t *testing.T) {
	e, err := New(Config{Shards: 1, QueueDepth: 64, TraceEvery: 5, TraceBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	for i := 0; i < 50; i++ {
		if err := e.Submit(flcMeas(TerminalID(i % 8))); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	if got := e.TracesSampled(); got != 10 {
		t.Fatalf("sampled %d decisions, want 10 (50 decisions / every 5)", got)
	}
	traces := e.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want the 4 newest", len(traces))
	}
	for i, tr := range traces {
		if tr.Shard != 0 {
			t.Errorf("trace %d: shard %d, want 0", i, tr.Shard)
		}
		if tr.Reason == "" {
			t.Errorf("trace %d: no decision reason", i)
		}
		if tr.FLC == "" {
			t.Errorf("trace %d: no FLC explanation (default algorithm implements Explainer)", i)
		}
		if !strings.Contains(tr.FLC, "HD") {
			t.Errorf("trace %d: FLC text lacks the HD verdict line:\n%s", i, tr.FLC)
		}
		if tr.When.IsZero() {
			t.Errorf("trace %d: zero capture time", i)
		}
	}
	// Oldest-first: samples 7..10 of 10 (decision indices 35, 40, 45, 50).
	for i := 1; i < len(traces); i++ {
		if !traces[i].When.After(traces[i-1].When) && traces[i].When != traces[i-1].When {
			t.Errorf("traces not oldest-first at %d", i)
		}
	}

	// Tracing off → nil.
	e2, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Traces() != nil || e2.TracesSampled() != 0 {
		t.Error("tracing disabled engine reports traces")
	}
}

// TestWireControlStatsRoundTrip pins the {"ctl":"stats"} wire shape:
// encode → isControlLine → parse must reproduce the payload.
func TestWireControlStatsRoundTrip(t *testing.T) {
	st := &WireStats{
		Shards: []ShardStats{
			{Shard: 0, Terminals: 3, Decisions: 10, Handovers: 2, PingPongs: 1, QueueDepth: 5},
			{Shard: 1, Decisions: 7, Errors: 1},
		},
		Points: []obs.Point{
			{Name: "serve_decisions_total", Kind: obs.KindCounter, Value: 17},
			{Name: "serve_queue_wait_ns", Kind: obs.KindHistogram, Count: 4, Sum: 400, Max: 200,
				Labels:    []obs.Label{obs.L("node", "2")},
				Quantiles: []obs.Quantile{{Q: 0.5, Value: 90}}},
		},
	}
	line := AppendControlJSON(nil, WireControl{Op: "stats", Stats: st})
	if !isControlLine(line) {
		t.Fatalf("stats reply not recognized as a control line: %s", line)
	}
	c, err := ParseControlLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != "stats" || c.Stats == nil {
		t.Fatalf("parsed op %q, stats %v", c.Op, c.Stats)
	}
	if len(c.Stats.Shards) != 2 || c.Stats.Shards[0].Decisions != 10 || c.Stats.Shards[1].Errors != 1 {
		t.Errorf("shards did not round-trip: %+v", c.Stats.Shards)
	}
	if len(c.Stats.Points) != 2 {
		t.Fatalf("points did not round-trip: %+v", c.Stats.Points)
	}
	p := c.Stats.Points[1]
	if p.Kind != obs.KindHistogram || p.Count != 4 || len(p.Quantiles) != 1 || p.Quantiles[0].Value != 90 {
		t.Errorf("histogram point did not round-trip: %+v", p)
	}
	if len(p.Labels) != 1 || p.Labels[0] != obs.L("node", "2") {
		t.Errorf("labels did not round-trip: %+v", p.Labels)
	}

	// The request side carries no payload and stays a pure ctl line.
	req := AppendControlJSON(nil, WireControl{Op: "stats"})
	if string(req) != `{"ctl":"stats"}`+"\n" {
		t.Errorf("stats request = %q", req)
	}

	// An unsupported-stats error reply round-trips the error.
	errLine := AppendControlJSON(nil, WireControl{Op: "stats", Error: "nope"})
	ec, err := ParseControlLine(errLine)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Error != "nope" || ec.Stats != nil {
		t.Errorf("error reply round-trip: %+v", ec)
	}
}

// TestNodeClientStatsRoundTrip scrapes a live daemon over the wire —
// through the fault-injection transport, across injected latency and a
// connection cut — and pins the scraped counters to the node's truth.
func TestNodeClientStatsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	addr, stop := startTestNode(t, Config{Shards: 2, Metrics: reg})
	defer stop()

	inj := NewFaultInjector()
	c, err := DialNode(addr, NodeClientConfig{
		RedialWait:    10 * time.Millisecond,
		RedialMaxWait: 50 * time.Millisecond,
		Dial:          inj.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Send(clientTestReports(4, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var decisions uint64
	for _, sh := range st.Shards {
		decisions += sh.Decisions
	}
	if decisions != 32 {
		t.Fatalf("scraped %d decisions across shards, want 32", decisions)
	}
	if got := exportValues(st.Points)["serve_decisions_total"]; got != 32 {
		t.Fatalf("scraped serve_decisions_total = %g, want 32", got)
	}

	// A second scrape under injected latency still completes.
	inj.SetDelay(20 * time.Millisecond)
	if _, err := c.Stats(5 * time.Second); err != nil {
		t.Fatalf("stats under delay: %v", err)
	}
	inj.SetDelay(0)

	// Partition the node: the scrape must fail cleanly (redials are
	// refused too), then heal and the next scrape succeeds.
	inj.Partition()
	if _, err := c.Stats(200 * time.Millisecond); err == nil {
		t.Fatal("stats across a partition succeeded")
	}
	inj.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.Stats(time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never recovered after heal: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := exportValues(st.Points)["serve_decisions_total"]; got != 32 {
		t.Fatalf("post-heal serve_decisions_total = %g, want 32", got)
	}
}

// TestStatsNotSupported pins the daemon's error reply when no Stats hook
// is wired (e.g. a stdio-only deployment).
func TestStatsNotSupported(t *testing.T) {
	mux := NewDecisionMux()
	e, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	d := &Daemon{
		Name:   "bare",
		Mux:    mux,
		Submit: e.SubmitBatch,
		Drain:  func() error { e.Flush(); return nil },
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.ServeConn(conn)
	}()
	c, err := DialNode(ln.Addr().String(), NodeClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(2 * time.Second); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want a not-supported error, got %v", err)
	}
}
