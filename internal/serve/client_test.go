package serve

import (
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestNode serves an engine over TCP with the daemon's connection
// protocol (IngestLines + DecisionMux per connection), returning its
// address and a stop function.  It is the in-test stand-in for a hoserve
// daemon.
func startTestNode(t *testing.T, cfg Config) (addr string, stop func()) {
	t.Helper()
	mux := NewDecisionMux()
	cfg.OnDecision = mux.Route
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &Daemon{
		Name:   "testnode",
		Mux:    mux,
		Submit: e.SubmitBatch,
		Drain:  func() error { e.Flush(); return nil },
		// Stand-in membership pred: member i of members owns terminals
		// with id ≡ i (mod len).  The real daemons build a consistent-
		// hash ring here; the serve-layer protocol doesn't care how the
		// pred partitions.
		Extract: func(members []int, _, self int, keep bool) ([]TerminalSnapshot, error) {
			idx := -1
			for i, m := range members {
				if m == self {
					idx = i
				}
			}
			if idx < 0 {
				return nil, errors.New("self not in members")
			}
			pred := func(id TerminalID) bool {
				return int(id)%len(members) != idx
			}
			if keep {
				return e.SnapshotWhere(pred)
			}
			return e.ExtractSnapshots(pred)
		},
		Restore: func(snaps []TerminalSnapshot, skipLive bool) error {
			if skipLive {
				_, err := e.RestoreSnapshotsSkipLive(snaps)
				return err
			}
			return e.RestoreSnapshots(snaps)
		},
		Release: func(members []int, _, self int) (int, error) {
			idx := -1
			for i, m := range members {
				if m == self {
					idx = i
				}
			}
			if idx < 0 {
				return 0, errors.New("self not in members")
			}
			return e.DiscardTerminals(func(id TerminalID) bool {
				return int(id)%len(members) != idx
			})
		},
		Stats: func() WireStats {
			ws := WireStats{Shards: e.Stats().Shards}
			if cfg.Metrics != nil {
				ws.Points = cfg.Metrics.Export()
			}
			return ws
		},
	}
	var wg sync.WaitGroup
	var cmu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			cmu.Lock()
			conns = append(conns, conn)
			cmu.Unlock()
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				d.ServeConn(conn)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		cmu.Lock()
		for _, c := range conns {
			c.Close()
		}
		cmu.Unlock()
		wg.Wait()
		e.Stop()
	}
}

// clientTestReports builds an interleaved multi-terminal stream with
// enough epochs to execute handovers (crossing walk-like powers).
func clientTestReports(terminals, epochs int) []Report {
	var streams [][]Report
	for tid := 0; tid < terminals; tid++ {
		var s []Report
		for e := 0; e < epochs; e++ {
			// Serving decays, neighbor rises: forces eventual handover.
			s = append(s, Report{
				Terminal: TerminalID(tid),
				Meas: wireMeas(0, 0, 1, 0,
					-80-float64(e), -95+float64(2*e), float64(e)-10, 0.2+0.05*float64(e),
					0.1*float64(e), 30),
			})
		}
		streams = append(streams, s)
	}
	return InterleaveReports(streams)
}

// TestNodeClientRoundTrip pins the client against a live node: every
// report decided, per-terminal sequences identical to an in-process
// engine on the same stream.
func TestNodeClientRoundTrip(t *testing.T) {
	const terminals, epochs = 5, 12
	reports := clientTestReports(terminals, epochs)

	// Reference: in-process engine.
	ref := newRecorder(terminals)
	e, err := New(Config{Shards: 2, OnDecision: ref.record})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	e.Stop()

	addr, stop := startTestNode(t, Config{Shards: 2})
	defer stop()

	got := newRecorder(terminals)
	var mu sync.Mutex
	c, err := DialNode(addr, NodeClientConfig{
		OnOutcome: func(o Outcome) { mu.Lock(); got.record(o); mu.Unlock() },
		OnError:   func(err error) { t.Errorf("unexpected client error: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Send in a few batches to exercise coalesced lines.
	for i := 0; i < len(reports); i += 17 {
		end := i + 17
		if end > len(reports) {
			end = len(reports)
		}
		if err := c.Send(reports[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil && !errors.Is(err, ErrClientClosed) {
		t.Fatal(err)
	}

	for tid := 0; tid < terminals; tid++ {
		want, have := *ref[TerminalID(tid)], *got[TerminalID(tid)]
		if len(have) != len(want) {
			t.Fatalf("terminal %d: %d outcomes over the wire, %d in-process", tid, len(have), len(want))
		}
		for j := range want {
			w, h := want[j], have[j]
			if h.Seq != w.Seq || h.Decision.Handover != w.Decision.Handover ||
				h.Decision.Scored != w.Decision.Scored || h.Decision.Score != w.Decision.Score ||
				h.Decision.Reason != w.Decision.Reason || h.Executed != w.Executed || h.PingPong != w.PingPong {
				t.Fatalf("terminal %d epoch %d: wire %+v ≠ in-process %+v", tid, j, h, w)
			}
		}
	}
	cnt := c.Counters()
	if cnt.Submitted != uint64(len(reports)) || cnt.Delivered != cnt.Submitted || cnt.Lost != 0 {
		t.Errorf("ledger %+v, want submitted=delivered=%d lost=0", cnt, len(reports))
	}
}

// TestNodeClientRejectsInvalidReports: wire validity is enforced before
// anything is enqueued — one bad report must fail the Send with its
// index, not poison a coalesced line at the remote daemon.
func TestNodeClientRejectsInvalidReports(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()
	c, err := DialNode(addr, NodeClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	valid := Report{Terminal: 1, Meas: wireMeas(0, 0, 1, 0, -88, -84, -2.5, 1.1, 3.2, 30)}
	sameCell := Report{Terminal: 2, Meas: wireMeas(0, 0, 0, 0, -88, -84, -2.5, 1.1, 3.2, 30)}
	nan := valid
	nan.Meas.ServingDB = math.NaN()
	for _, tc := range []struct {
		name string
		bad  Report
	}{{"serving==neighbor", sameCell}, {"NaN", nan}} {
		err := c.Send([]Report{valid, tc.bad})
		if err == nil || !strings.Contains(err.Error(), "report 1") {
			t.Errorf("%s: Send = %v, want index-naming validation error", tc.name, err)
		}
	}
	if cnt := c.Counters(); cnt.Submitted != 0 {
		t.Errorf("rejected sends leaked into the ledger: %+v", cnt)
	}
}

// TestNodeClientFlushFailsFastAfterRemoteReject: a line-level reject from
// the node opens a ledger gap the client cannot size; Flush must fail
// fast with a reject-naming error instead of burning its whole timeout.
func TestNodeClientFlushFailsFastAfterRemoteReject(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()

	rs := clientTestReports(1, 1) // terminal 0
	a, err := DialNode(addr, NodeClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(rs); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A second connection to the same node submitting A's terminal gets
	// an ownership reject — the realistic way a healthy client sees a
	// line-level error.
	b, err := DialNode(addr, NodeClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Send(rs); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = b.Flush(30 * time.Second)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Flush after remote reject = %v, want reject-naming error", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Flush took %v; the reject fail-fast did not engage", elapsed)
	}
	if b.Counters().RemoteErrors == 0 {
		t.Error("remote reject not counted")
	}
}

// TestNodeClientBackpressure: a node that accepts but never reads fills
// the bounded queue; TrySend surfaces ErrBacklogged instead of blocking.
func TestNodeClientBackpressure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	var holdOnce sync.Once
	unhold := func() { holdOnce.Do(func() { close(hold) }) }
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		<-hold
		conn.Close()
	}()
	// Unblock the peer before Close runs (defers are LIFO): a Close while
	// the writer is kernel-blocked against a never-reading peer would wait
	// out the whole redial budget.
	c, err := DialNode(ln.Addr().String(), NodeClientConfig{
		QueueDepth: 2, RedialWait: 10 * time.Millisecond, MaxRedials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer unhold()
	rs := clientTestReports(1, 1)
	backlogged := false
	// The OS socket buffer absorbs some lines; the bounded queue must
	// still fill once the writer blocks on the kernel.
	for i := 0; i < 100000 && !backlogged; i++ {
		if err := c.TrySend(rs); err != nil {
			if !errors.Is(err, ErrBacklogged) {
				t.Fatalf("TrySend: %v", err)
			}
			backlogged = true
		}
	}
	if !backlogged {
		t.Fatal("queue never backlogged against a stalled node")
	}
}

// TestNodeClientReconnect: killing the connection mid-stream surfaces the
// in-flight loss and the client reconnects and keeps serving — no silent
// drops, no permanent stall.
func TestNodeClientReconnect(t *testing.T) {
	addr, stop := startTestNode(t, Config{Shards: 1})
	defer stop()

	var errs []string
	var emu sync.Mutex
	delivered := make(chan Outcome, 1024)
	c, err := DialNode(addr, NodeClientConfig{
		RedialWait: 20 * time.Millisecond,
		OnOutcome:  func(o Outcome) { delivered <- o },
		OnError: func(err error) {
			emu.Lock()
			errs = append(errs, err.Error())
			emu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rs := clientTestReports(1, 1)
	if err := c.Send(rs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Sever the transport under the client: forge a write failure by
	// dialing through a proxy we can kill.  Simpler: restart-capable node
	// keeps listening, so killing the established conn from the client's
	// peer side is enough — the test node closes conns when the listener
	// closes, so instead exercise the path by pointing a second client at
	// a one-shot server that dies after the first line.
	oneshot, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer oneshot.Close()
	accepted := make(chan struct{}, 2)
	go func() {
		first := true
		for {
			conn, err := oneshot.Accept()
			if err != nil {
				return
			}
			accepted <- struct{}{}
			if first {
				first = false
				// Die without answering: the line's reports are lost.
				time.Sleep(30 * time.Millisecond)
				conn.Close()
				continue
			}
			// Second connection: echo outcomes like a healthy node.
			go func(conn net.Conn) {
				mux := NewDecisionMux()
				e, _ := New(Config{Shards: 1, OnDecision: mux.Route})
				e.Start()
				d := &Daemon{
					Name:   "oneshot",
					Mux:    mux,
					Submit: e.SubmitBatch,
					Drain:  func() error { e.Flush(); return nil },
				}
				d.ServeConn(conn)
				e.Stop()
			}(conn)
		}
	}()

	var lostSeen sync.WaitGroup
	lostSeen.Add(1)
	var once sync.Once
	c2, err := DialNode(oneshot.Addr().String(), NodeClientConfig{
		RedialWait: 20 * time.Millisecond,
		OnError: func(err error) {
			if strings.Contains(err.Error(), "lost") {
				once.Do(lostSeen.Done)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	<-accepted
	if err := c2.Send(rs); err != nil {
		t.Fatal(err)
	}
	// Wait until the one-shot conn died and the loss was surfaced.
	done := make(chan struct{})
	go func() { lostSeen.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight loss never surfaced")
	}
	// The client must have reconnected: a fresh send is decided.
	<-accepted
	if err := c2.Send(rs); err != nil {
		t.Fatalf("send after reconnect: %v", err)
	}
	if err := c2.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush after reconnect: %v", err)
	}
	cnt := c2.Counters()
	if cnt.Lost == 0 || cnt.Delivered == 0 {
		t.Errorf("ledger %+v: want both lost (first conn) and delivered (reconnect)", cnt)
	}
}

// TestNodeClientGoesDownLoudly: when the node vanishes for good, the
// client gives up after bounded redials, fails sends with the fatal
// error, and accounts every undelivered report as lost.
func TestNodeClientGoesDownLoudly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
	}()

	c, err := DialNode(addr, NodeClientConfig{
		RedialWait: 10 * time.Millisecond,
		MaxRedials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := <-conns
	ln.Close() // no reconnection possible
	rs := clientTestReports(1, 1)
	if err := c.Send(rs); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the line hit the dead peer's socket
	conn.Close()

	// Poll sends until the client reports itself down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Send(rs)
		if err != nil && !errors.Is(err, ErrBacklogged) {
			if !strings.Contains(err.Error(), "gave up") {
				t.Fatalf("fatal error %v, want redial give-up", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never went down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Flush(time.Second); err == nil {
		t.Error("Flush on a down client reported success")
	}
	cnt := c.Counters()
	if cnt.Submitted != cnt.Delivered+cnt.Lost {
		t.Errorf("ledger does not balance: %+v", cnt)
	}
}
