package serve

import (
	"testing"
)

// TestTerminalStoreRoundTrip pins basic acquire/lookup semantics,
// including TerminalID 0 (the refs sentinel must not shadow it).
func TestTerminalStoreRoundTrip(t *testing.T) {
	ts := newTerminalStore()
	if got := ts.lookup(0, mix64(0)); got != nil {
		t.Fatalf("lookup on empty store returned %p", got)
	}
	t0, created := ts.acquire(0, mix64(0))
	if !created || t0 == nil {
		t.Fatalf("acquire(0) = %p, created=%v", t0, created)
	}
	t0.seq = 42
	if again, created := ts.acquire(0, mix64(0)); created || again != t0 {
		t.Fatalf("second acquire(0) = %p created=%v, want %p", again, created, t0)
	}
	if got := ts.lookup(0, mix64(0)); got != t0 || got.seq != 42 {
		t.Fatalf("lookup(0) = %p (seq %d), want %p (seq 42)", got, got.seq, t0)
	}
	if ts.count() != 1 {
		t.Fatalf("count = %d, want 1", ts.count())
	}
}

// TestTerminalStoreGrowthKeepsPointers is the slab-stability contract the
// batch router relies on: pointers handed out before index growth must
// stay valid (and keep their state) after the store has rehashed many
// times.
func TestTerminalStoreGrowthKeepsPointers(t *testing.T) {
	ts := newTerminalStore()
	const n = 10_000 // ≫ storeMinBuckets: forces several doublings and slabs
	ptrs := make(map[TerminalID]*terminal, n)
	for i := 0; i < n; i++ {
		id := TerminalID(i * 7) // sparse, non-contiguous IDs
		tt, created := ts.acquire(id, mix64(uint64(id)))
		if !created {
			t.Fatalf("id %d: created=false on first acquire", id)
		}
		tt.seq = uint64(i)
		ptrs[id] = tt
	}
	if ts.count() != n {
		t.Fatalf("count = %d, want %d", ts.count(), n)
	}
	for id, want := range ptrs {
		got := ts.lookup(id, mix64(uint64(id)))
		if got != want {
			t.Fatalf("id %d: pointer moved across growth: %p ≠ %p", id, got, want)
		}
		if got.seq != uint64(id/7) {
			t.Fatalf("id %d: state lost across growth: seq %d", id, got.seq)
		}
	}
	if got := ts.lookup(TerminalID(n*7+1), mix64(uint64(n*7+1))); got != nil {
		t.Fatalf("lookup of absent id returned %p", got)
	}
}

// TestTerminalStoreDenseIDs exercises the probe sequence under the
// worst-case key pattern for open addressing — a fully dense ID range —
// which SplitMix64 must scatter.
func TestTerminalStoreDenseIDs(t *testing.T) {
	ts := newTerminalStore()
	const n = 4096
	for i := 0; i < n; i++ {
		if _, created := ts.acquire(TerminalID(i), mix64(uint64(i))); !created {
			t.Fatalf("dense id %d: created=false", i)
		}
	}
	for i := 0; i < n; i++ {
		if ts.lookup(TerminalID(i), mix64(uint64(i))) == nil {
			t.Fatalf("dense id %d lost", i)
		}
	}
	if ts.count() != n {
		t.Fatalf("count = %d, want %d", ts.count(), n)
	}
}

// TestTerminalStoreSteadyLookupAllocs pins that post-insert lookups and
// re-acquires allocate nothing.
func TestTerminalStoreSteadyLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ts := newTerminalStore()
	const n = 1000
	for i := 0; i < n; i++ {
		ts.acquire(TerminalID(i), mix64(uint64(i)))
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			if _, created := ts.acquire(TerminalID(i), mix64(uint64(i))); created {
				t.Fatal("steady-state acquire created a terminal")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state acquire allocates %g per sweep, want 0", allocs)
	}
}
