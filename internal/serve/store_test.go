package serve

import (
	"testing"
)

// TestTerminalStoreRoundTrip pins basic acquire/lookup semantics,
// including TerminalID 0 (the refs sentinel must not shadow it).
func TestTerminalStoreRoundTrip(t *testing.T) {
	ts := newTerminalStore()
	if got := ts.lookup(0, mix64(0)); got != nil {
		t.Fatalf("lookup on empty store returned %p", got)
	}
	t0, created := ts.acquire(0, mix64(0))
	if !created || t0 == nil {
		t.Fatalf("acquire(0) = %p, created=%v", t0, created)
	}
	t0.seq = 42
	if again, created := ts.acquire(0, mix64(0)); created || again != t0 {
		t.Fatalf("second acquire(0) = %p created=%v, want %p", again, created, t0)
	}
	if got := ts.lookup(0, mix64(0)); got != t0 || got.seq != 42 {
		t.Fatalf("lookup(0) = %p (seq %d), want %p (seq 42)", got, got.seq, t0)
	}
	if ts.count() != 1 {
		t.Fatalf("count = %d, want 1", ts.count())
	}
}

// TestTerminalStoreGrowthKeepsPointers is the slab-stability contract the
// batch router relies on: pointers handed out before index growth must
// stay valid (and keep their state) after the store has rehashed many
// times.
func TestTerminalStoreGrowthKeepsPointers(t *testing.T) {
	ts := newTerminalStore()
	const n = 10_000 // ≫ storeMinBuckets: forces several doublings and slabs
	ptrs := make(map[TerminalID]*terminal, n)
	for i := 0; i < n; i++ {
		id := TerminalID(i * 7) // sparse, non-contiguous IDs
		tt, created := ts.acquire(id, mix64(uint64(id)))
		if !created {
			t.Fatalf("id %d: created=false on first acquire", id)
		}
		tt.seq = uint64(i)
		ptrs[id] = tt
	}
	if ts.count() != n {
		t.Fatalf("count = %d, want %d", ts.count(), n)
	}
	for id, want := range ptrs {
		got := ts.lookup(id, mix64(uint64(id)))
		if got != want {
			t.Fatalf("id %d: pointer moved across growth: %p ≠ %p", id, got, want)
		}
		if got.seq != uint64(id/7) {
			t.Fatalf("id %d: state lost across growth: seq %d", id, got.seq)
		}
	}
	if got := ts.lookup(TerminalID(n*7+1), mix64(uint64(n*7+1))); got != nil {
		t.Fatalf("lookup of absent id returned %p", got)
	}
}

// TestTerminalStoreDenseIDs exercises the probe sequence under the
// worst-case key pattern for open addressing — a fully dense ID range —
// which SplitMix64 must scatter.
func TestTerminalStoreDenseIDs(t *testing.T) {
	ts := newTerminalStore()
	const n = 4096
	for i := 0; i < n; i++ {
		if _, created := ts.acquire(TerminalID(i), mix64(uint64(i))); !created {
			t.Fatalf("dense id %d: created=false", i)
		}
	}
	for i := 0; i < n; i++ {
		if ts.lookup(TerminalID(i), mix64(uint64(i))) == nil {
			t.Fatalf("dense id %d lost", i)
		}
	}
	if ts.count() != n {
		t.Fatalf("count = %d, want %d", ts.count(), n)
	}
}

// TestTerminalStoreSteadyLookupAllocs pins that post-insert lookups and
// re-acquires allocate nothing.
func TestTerminalStoreSteadyLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ts := newTerminalStore()
	const n = 1000
	for i := 0; i < n; i++ {
		ts.acquire(TerminalID(i), mix64(uint64(i)))
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			if _, created := ts.acquire(TerminalID(i), mix64(uint64(i))); created {
				t.Fatal("steady-state acquire created a terminal")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state acquire allocates %g per sweep, want 0", allocs)
	}
}

// TestTerminalStoreRemove pins deletion semantics: removed terminals
// vanish from lookup, survivors keep their pointers and state, freed
// slab slots are recycled, and the probe chains stay intact (checked
// against a map reference under randomized interleaved ops).
func TestTerminalStoreRemove(t *testing.T) {
	ts := newTerminalStore()
	const n = 5000
	ptrs := make(map[TerminalID]*terminal, n)
	for i := 0; i < n; i++ {
		id := TerminalID(i * 3)
		tt, _ := ts.acquire(id, mix64(uint64(id)))
		tt.seq = uint64(i)
		ptrs[id] = tt
	}
	// Remove every other terminal.
	for i := 0; i < n; i += 2 {
		id := TerminalID(i * 3)
		if !ts.remove(id, mix64(uint64(id))) {
			t.Fatalf("remove(%d) = false for a live terminal", id)
		}
		delete(ptrs, id)
	}
	if ts.remove(TerminalID(1), mix64(1)) {
		t.Fatal("remove of an absent id reported true")
	}
	if ts.count() != n/2 {
		t.Fatalf("count = %d, want %d", ts.count(), n/2)
	}
	for i := 0; i < n; i++ {
		id := TerminalID(i * 3)
		got := ts.lookup(id, mix64(uint64(id)))
		if i%2 == 0 {
			if got != nil {
				t.Fatalf("removed id %d still resolves (probe chain not repaired)", id)
			}
			continue
		}
		if got != ptrs[id] || got.seq != uint64(i) {
			t.Fatalf("survivor id %d: got %p seq %d, want %p seq %d", id, got, got.seq, ptrs[id], uint64(i))
		}
	}
	// Re-inserting after removal recycles freed slots: the slab arena
	// must not grow past its high-water mark.
	slabsBefore := len(ts.slabs)
	for i := 0; i < n; i += 2 {
		id := TerminalID(i * 3)
		tt, created := ts.acquire(id, mix64(uint64(id)))
		if !created {
			t.Fatalf("re-acquire(%d) after remove: created=false", id)
		}
		if tt.seq != 0 {
			t.Fatalf("recycled slot for id %d not zeroed: seq=%d", id, tt.seq)
		}
	}
	if len(ts.slabs) != slabsBefore {
		t.Fatalf("slab arena grew %d→%d despite %d freed slots", slabsBefore, len(ts.slabs), n/2)
	}
	if ts.count() != n {
		t.Fatalf("count after re-insert = %d, want %d", ts.count(), n)
	}
}

// TestTerminalStoreRemoveRandomized cross-checks interleaved
// acquire/remove/lookup against a map reference with a deterministic
// xorshift schedule, catching backward-shift repair mistakes that only
// specific collision geometries trigger.
func TestTerminalStoreRemoveRandomized(t *testing.T) {
	ts := newTerminalStore()
	ref := make(map[TerminalID]uint64)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for step := 0; step < 200_000; step++ {
		id := TerminalID(next() % 2048) // small key space: high collision churn
		switch next() % 3 {
		case 0: // acquire
			tt, created := ts.acquire(id, mix64(uint64(id)))
			if _, have := ref[id]; have == created {
				t.Fatalf("step %d: acquire(%d) created=%v disagrees with reference", step, id, created)
			}
			if created {
				tt.seq = uint64(step)
				ref[id] = uint64(step)
			} else if tt.seq != ref[id] {
				t.Fatalf("step %d: id %d seq %d, want %d", step, id, tt.seq, ref[id])
			}
		case 1: // remove
			_, have := ref[id]
			if got := ts.remove(id, mix64(uint64(id))); got != have {
				t.Fatalf("step %d: remove(%d) = %v, reference has=%v", step, id, got, have)
			}
			delete(ref, id)
		case 2: // lookup
			got := ts.lookup(id, mix64(uint64(id)))
			want, have := ref[id]
			if have != (got != nil) {
				t.Fatalf("step %d: lookup(%d) = %p, reference has=%v", step, id, got, have)
			}
			if got != nil && got.seq != want {
				t.Fatalf("step %d: lookup(%d) seq %d, want %d", step, id, got.seq, want)
			}
		}
		if ts.count() != len(ref) {
			t.Fatalf("step %d: count %d ≠ reference %d", step, ts.count(), len(ref))
		}
	}
}
