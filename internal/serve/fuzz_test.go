package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/handover"
	"repro/internal/hexgrid"
)

// FuzzParseBatchLine drives the ingest parser with arbitrary lines and
// checks its structural invariants: no panics, the validated-prefix
// contract (returned reports always validate, an error always names a
// report index on partial returns), and encode→parse idempotence on
// whatever was accepted.
func FuzzParseBatchLine(f *testing.F) {
	single := `{"terminal":7,"serving":[0,0],"neighbor":[1,0],"serving_db":-88.5,"ssn_db":-84,"cssp_db":-2.5,"dmb":1.1,"walked_km":3.2,"speed_kmh":30}`
	f.Add([]byte(single))
	f.Add([]byte("[" + single + "," + strings.Replace(single, `"terminal":7`, `"terminal":8`, 1) + "]"))
	f.Add([]byte("  \t "))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[0,0]}`)) // serving == neighbor
	f.Add([]byte(`[{"terminal":1,"serving":[0,0],"neighbor":[1,0],"dmb":-2},` + single + `]`))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"serving_db":1e999}`))
	f.Add([]byte(`"just a string"`))
	// Extension-feature object seeds: valid, wrong shape, wrong value
	// type, duplicate name, and an unknown top-level field.
	f.Add([]byte(strings.Replace(single, `"speed_kmh":30`, `"speed_kmh":30,"x":{"ssn_trend":-1.25}`, 1)))
	f.Add([]byte(strings.Replace(single, `"speed_kmh":30`, `"speed_kmh":30,"x":{"b":2,"a":0}`, 1)))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"x":[1]}`))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"x":{"t":"fast"}}`))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"x":{"t":1,"t":2}}`))
	f.Add([]byte(`{"terminal":1,"serving":[0,0],"neighbor":[1,0],"rsrp":-90}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		reports, err := ParseBatchLine(line)
		if err == nil && reports == nil && len(trimSpace(line)) != 0 {
			// Non-blank lines either parse to reports or error; a silent
			// nil/nil is only the blank-line contract.  (A parsed empty
			// batch "[]" is also fine: len 0 but non-nil is not required.)
			_ = reports
		}
		for i := range reports {
			// Everything returned — full parse or validated prefix — must
			// itself survive the wire validator.
			if verr := reports[i].Wire().Validate(); verr != nil {
				t.Fatalf("returned report %d fails validation: %v (line %q)", i, verr, line)
			}
		}
		if err != nil && len(reports) > 0 && !strings.Contains(err.Error(), "report ") {
			t.Fatalf("partial return without an index-bearing error: %v", err)
		}
		if err == nil && len(reports) > 0 {
			// Round trip: encoding the accepted reports and re-parsing
			// must reproduce them exactly.
			enc := AppendBatchJSON(nil, reports)
			again, err2 := ParseBatchLine(enc)
			if err2 != nil {
				t.Fatalf("re-parse of encoded batch failed: %v (%s)", err2, enc)
			}
			if !reflect.DeepEqual(reports, again) {
				t.Fatalf("round trip drifted:\n in  %+v\n out %+v", reports, again)
			}
		}
	})
}

// FuzzSnapshotRoundTrip drives the terminal-snapshot codec with
// arbitrary decision states: a structurally valid snapshot must encode →
// ParseSnapshotLine → re-encode byte-identically.  The byte identity is
// what migration and crash-recovery lean on — shipped state can be
// compared for equality as bytes, and a restore-then-extract returns
// exactly what arrived.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(7), uint64(12), -88.5, true, -2, 3, true, uint64(3), uint64(1), uint64(3), 1.25, 0.0, 0.0, false)
	f.Add(uint64(0), uint64(0), 0.0, false, 0, 0, false, uint64(0), uint64(0), uint64(0), 0.0, 0.0, 0.0, false)
	f.Add(uint64(1<<40), uint64(1<<50), 1e-300, true, 1000, -1000, true, uint64(99), uint64(98), uint64(97), -0.0, 0.0, 0.0, false)
	// Trend-state seeds: the v2 shape (EWMA slope mid-walk) and the
	// anchored-only first observation.
	f.Add(uint64(3), uint64(5), -90.0, true, 1, 0, true, uint64(1), uint64(0), uint64(1), 0.5, -91.25, -0.5, true)
	f.Add(uint64(4), uint64(1), 0.0, false, 0, 0, false, uint64(0), uint64(0), uint64(0), 0.0, -84.0, 0.0, true)
	f.Fuzz(func(t *testing.T, terminal, seq uint64, prevDB float64, havePrev bool,
		si, sj int, haveServing bool, handovers, pingpongs, totalEvents uint64, walked float64,
		trendPrevSSN, trendSlope float64, trendHave bool) {
		if math.IsNaN(prevDB) || math.IsInf(prevDB, 0) || math.IsNaN(walked) || math.IsInf(walked, 0) {
			t.Skip("power and distance values are finite by construction")
		}
		if math.IsNaN(trendPrevSSN) || math.IsInf(trendPrevSSN, 0) ||
			math.IsNaN(trendSlope) || math.IsInf(trendSlope, 0) {
			t.Skip("trend state is finite by construction")
		}
		totalEvents %= maxSnapshotTotalEvents + 1
		s := TerminalSnapshot{
			Terminal:    TerminalID(terminal),
			Seq:         seq,
			PrevDB:      prevDB,
			HavePrev:    havePrev,
			Serving:     hexgrid.Cell{I: si, J: sj},
			HaveServing: haveServing,
			Handovers:   handovers,
			PingPongs:   pingpongs,
			TotalEvents: totalEvents,
			Trend:       handover.TrendState{PrevSSN: trendPrevSSN, Slope: trendSlope, Have: trendHave},
		}
		n := int(totalEvents)
		if n > pingPongHistory {
			n = pingPongHistory
		}
		for i := 0; i < n; i++ {
			s.Events = append(s.Events, SnapshotEvent{
				From:     hexgrid.Cell{I: si + i, J: sj - i},
				To:       hexgrid.Cell{I: si + i + 1, J: sj - i},
				WalkedKm: walked + float64(i),
			})
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("constructed snapshot invalid: %v", err)
		}
		line1 := AppendSnapshotJSON(nil, s)
		got, err := ParseSnapshotLine(line1)
		if err != nil {
			t.Fatalf("decode: %v (line %s)", err, line1)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("decode drifted:\n in  %+v\n out %+v\nline %s", s, got, line1)
		}
		line2 := AppendSnapshotJSON(nil, got)
		if string(line1) != string(line2) {
			t.Fatalf("re-encode drifted:\n first  %s second %s", line1, line2)
		}
	})
}

// FuzzParseControlLine drives the control-plane codec with arbitrary lines:
// no panics, and anything ParseControlLine accepts must reach a one-round
// encode fixed point — AppendControlJSON(parse(AppendControlJSON(c))) is
// byte-identical to AppendControlJSON(c), and the encoding satisfies the
// isControlLine prefix contract the wire dispatcher leans on.  (The
// fixed point is one round, not input-identity: omitted zero fields and
// empty snapshot arrays normalize on the first encode.)
func FuzzParseControlLine(f *testing.F) {
	snap := `{"terminal":7,"seq":3,"prev_db":-88.5,"serving":[1,0],"handovers":2,"pingpongs":1,"total_events":2}`
	for _, seed := range []string{
		`{"ctl":"hello","client":"loadgen-1"}`,
		`{"ctl":"extract","members":[0,1,2],"vnodes":128,"self":0,"keep":true}`,
		`{"ctl":"extracted","count":37}`,
		`{"ctl":"restore","snapshots":[` + snap + `],"skip_live":true}`,
		`{"ctl":"restore-done"}`,
		`{"ctl":"restored","count":37}`,
		`{"ctl":"release","members":[1,2],"vnodes":128,"self":1}`,
		`{"ctl":"released","count":12}`,
		`{"ctl":"addnode","addr":"127.0.0.1:7293"}`,
		`{"ctl":"node-added","node":2}`,
		`{"ctl":"removenode","node":0}`,
		`{"ctl":"node-removed","node":0,"error":"cluster: node 0 is not a member"}`,
		`{"ctl":"stats"}`,
		`{"ctl":"drain"}`,
		`{"ctl":"snapshots","snapshots":[` + snap + `]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		c1, err := ParseControlLine(line)
		if err != nil {
			return
		}
		enc1 := AppendControlJSON(nil, c1)
		if !isControlLine(enc1) {
			t.Fatalf("encoded control line fails the prefix contract: %s", enc1)
		}
		c2, err := ParseControlLine(enc1)
		if err != nil {
			t.Fatalf("re-parse of encoded control line failed: %v (%s)", err, enc1)
		}
		enc2 := AppendControlJSON(nil, c2)
		if string(enc1) != string(enc2) {
			t.Fatalf("encode fixed point drifted:\n first  %s second %s(input %q)", enc1, enc2, line)
		}
	})
}

// FuzzOutcomeRoundTrip drives the outcome codec with arbitrary decision
// shapes: encode → ParseOutcomeLine → re-encode must be the identity on
// bytes, and the decoded outcome must preserve every field — including
// the scored/score-0 distinction the omitempty encoding used to lose.
func FuzzOutcomeRoundTrip(f *testing.F) {
	f.Add(uint64(42), uint64(9), true, 0.7321, true, "execute-handover", true, true, "")
	f.Add(uint64(3), uint64(7), false, 0.0, true, "below threshold", false, false, "")
	f.Add(uint64(1), uint64(0), false, 0.0, false, "POTLC-gate", false, false, "")
	f.Add(uint64(6), uint64(2), false, 0.0, false, "", false, false, "algorithm: inference failed")
	f.Fuzz(func(t *testing.T, terminal, seq uint64, handover bool, score float64, scored bool,
		reason string, executed, pingpong bool, errMsg string) {
		if math.IsNaN(score) || math.IsInf(score, 0) {
			t.Skip("scores come from the FLC and are finite by construction")
		}
		if !scored {
			// Score is meaningful (and wire-carried) only when Scored:
			// an unscored decision's score is not part of the contract.
			score = 0
		}
		if !utf8.ValidString(reason) || !utf8.ValidString(errMsg) {
			// encoding/json replaces invalid UTF-8 on decode; reasons and
			// error texts are ASCII in practice.
			t.Skip("non-UTF-8 strings are out of codec scope")
		}
		o := Outcome{
			Terminal: TerminalID(terminal),
			Seq:      seq,
			Executed: executed,
			PingPong: pingpong,
			Shard:    -1,
		}
		o.Decision.Handover = handover
		o.Decision.Score = score
		o.Decision.Scored = scored
		o.Decision.Reason = reason
		if errMsg != "" {
			o.Err = &WireError{Msg: errMsg}
		}

		line1 := AppendOutcomeJSON(nil, o)
		w, err := ParseOutcomeLine(line1)
		if err != nil {
			t.Fatalf("decode: %v (line %s)", err, line1)
		}
		got := w.Outcome()
		if got.Terminal != o.Terminal || got.Seq != o.Seq ||
			got.Decision.Handover != o.Decision.Handover ||
			got.Decision.Scored != o.Decision.Scored ||
			got.Decision.Score != o.Decision.Score ||
			got.Decision.Reason != o.Decision.Reason ||
			got.Executed != o.Executed || got.PingPong != o.PingPong {
			t.Fatalf("decode drifted:\n in  %+v\n out %+v\nline %s", o, got, line1)
		}
		if (o.Err == nil) != (got.Err == nil) || (o.Err != nil && got.Err.Error() != o.Err.Error()) {
			t.Fatalf("error drifted: %v vs %v", o.Err, got.Err)
		}
		line2 := AppendOutcomeJSON(nil, got)
		if string(line1) != string(line2) {
			t.Fatalf("re-encode drifted:\n first  %s second %s", line1, line2)
		}
	})
}
