package cluster

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// RegisterMetrics exports a router's per-node counters into the registry
// as cluster_node_* series labeled node="<id>".  The collector reads
// Router.Stats() at export time — the same snapshot the -stats loop and
// Totals() render — so /metrics and Stats() cannot disagree on a
// quiesced cluster.  Works for both backends; departed members keep
// exporting their frozen final counters so totals stay accountable.
func RegisterMetrics(r *obs.Registry, router Router) {
	r.Collector(func(emit func(obs.Point)) {
		for _, n := range router.Stats().Nodes {
			labels := []obs.Label{obs.L("node", strconv.Itoa(n.Node))}
			counter := func(name string, v uint64) {
				emit(obs.Point{Name: name, Kind: obs.KindCounter, Labels: labels, Value: float64(v)})
			}
			gauge := func(name string, v float64) {
				emit(obs.Point{Name: name, Kind: obs.KindGauge, Labels: labels, Value: v})
			}
			counter("cluster_node_submitted_total", n.Submitted)
			counter("cluster_node_decisions_total", n.Decisions)
			counter("cluster_node_lost_total", n.Lost)
			counter("cluster_node_handovers_total", n.Handovers)
			counter("cluster_node_pingpongs_total", n.PingPongs)
			counter("cluster_node_errors_total", n.Errors)
			counter("cluster_node_reconnects_total", n.Reconnects)
			gauge("cluster_node_terminals", float64(n.Terminals))
			gauge("cluster_node_queue_depth", float64(n.QueueDepth))
			departed := 0.0
			if n.Departed {
				departed = 1
			}
			gauge("cluster_node_departed", departed)
		}
	})
	// The TCP backend additionally exports the raw client-ledger counters
	// delivery debugging wants: redials (every dial attempt, including
	// failed ones — the gap against cluster_node_reconnects_total is
	// connection flappiness) and lost reports, per node.
	if t, ok := router.(*TCP); ok {
		r.Collector(func(emit func(obs.Point)) {
			for _, c := range t.ClientCounters() {
				labels := []obs.Label{
					obs.L("node", strconv.Itoa(c.Node)),
					obs.L("addr", c.Addr),
				}
				emit(obs.Point{Name: "serve_client_redials_total", Kind: obs.KindCounter, Labels: labels, Value: float64(c.Counters.Redials)})
				emit(obs.Point{Name: "serve_client_lost_total", Kind: obs.KindCounter, Labels: labels, Value: float64(c.Counters.Lost)})
			}
		})
	}
}

// Status is the /statusz view of a cluster router: the live ring
// membership plus every node's counters (departed members included, with
// frozen counters) and the aggregate.
type Status struct {
	// Members are the live ring member IDs, ascending.
	Members []int `json:"members"`
	// Nodes are the per-node counter snapshots, live members first.
	Nodes []NodeStats `json:"nodes"`
	// Totals aggregates Nodes (Node is -1).
	Totals NodeStats `json:"totals"`
	// Migration is the in-flight membership change, if any (Active=false
	// on a stable ring).
	Migration MigrationStatus `json:"migration"`
}

// StatusOf snapshots a router's membership, counters, and any in-flight
// membership change.
func StatusOf(router Router) Status {
	st := router.Stats()
	return Status{
		Members:   router.Members(),
		Nodes:     st.Nodes,
		Totals:    st.Totals(),
		Migration: router.Migration(),
	}
}

// NodeScrape is one member's reply to a cluster-wide stats scrape: the
// node's own shard counters and exported metric points (each point
// re-labeled node="<id>"), or the error that kept the node out of the
// merged view.
type NodeScrape struct {
	// Node is the member ID; Addr its dial address.
	Node int
	Addr string
	// Stats is the node's {"ctl":"stats"} reply payload.
	Stats serve.WireStats
	// Err is the per-node scrape failure (nil on success).  A node that
	// cannot answer must not hide the others, so scrape errors are
	// per-node data, not a collective failure.
	Err error
}

// ScrapeStats asks every live member for its telemetry over the existing
// node connections ({"ctl":"stats"}), sequentially in member order, each
// under its own timeout.  Every returned point is labeled with the
// member's node ID, so the merged set is safe to serve from one
// /metrics endpoint.
func (t *TCP) ScrapeStats(timeout time.Duration) []NodeScrape {
	t.memMu.RLock()
	nodes := t.sortedNodes()
	t.memMu.RUnlock()
	out := make([]NodeScrape, 0, len(nodes))
	for _, n := range nodes {
		sc := NodeScrape{Node: n.id, Addr: n.addr}
		sc.Stats, sc.Err = n.client.Stats(timeout)
		id := strconv.Itoa(n.id)
		for i := range sc.Stats.Points {
			sc.Stats.Points[i] = sc.Stats.Points[i].WithLabel("node", id)
		}
		out = append(out, sc)
	}
	return out
}
