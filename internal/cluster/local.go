package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// LocalConfig configures an in-process cluster: N serve.Engines in one
// process, partitioned by the consistent-hash ring.
type LocalConfig struct {
	// Nodes is the member count (≥ 1).
	Nodes int
	// VirtualNodes is the ring's per-member virtual node count (0:
	// DefaultVirtualNodes).
	VirtualNodes int
	// Engine is the per-node engine template (shards, queue depth,
	// algorithm, ping-pong window).  Engine.OnDecision must be nil — use
	// OnDecision below, which carries the node index.
	Engine serve.Config
	// OnDecision, when non-nil, receives every outcome together with the
	// index of the node that decided it, on that node's shard goroutine.
	OnDecision func(node int, o serve.Outcome)
}

// Local is the in-process Router backend: the cheapest way to run one
// terminal population across several engines (tests, single-box NUMA-ish
// scaling) and the reference the TCP backend is checked against.
type Local struct {
	ring    *Ring
	engines []*serve.Engine

	submitted []atomic.Uint64 // per node

	// scatter recycles the per-call node → sub-slice tables.
	scatter sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// NewLocal validates the configuration, builds and starts the node
// engines.  The router is ready to submit when NewLocal returns.
func NewLocal(cfg LocalConfig) (*Local, error) {
	if cfg.Engine.OnDecision != nil {
		return nil, fmt.Errorf("cluster: set LocalConfig.OnDecision (with the node index), not Engine.OnDecision")
	}
	ring, err := NewRing(cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	l := &Local{
		ring:      ring,
		engines:   make([]*serve.Engine, cfg.Nodes),
		submitted: make([]atomic.Uint64, cfg.Nodes),
	}
	l.scatter.New = func() any {
		bufs := make([][]serve.Report, cfg.Nodes)
		return &bufs
	}
	for n := range l.engines {
		ecfg := cfg.Engine
		if cfg.OnDecision != nil {
			node := n
			ecfg.OnDecision = func(o serve.Outcome) { cfg.OnDecision(node, o) }
		}
		e, err := serve.New(ecfg)
		if err == nil {
			err = e.Start()
		}
		if err != nil {
			for _, started := range l.engines[:n] {
				started.Stop()
			}
			return nil, fmt.Errorf("cluster: node %d: %w", n, err)
		}
		l.engines[n] = e
	}
	return l, nil
}

// NumNodes implements Router.
func (l *Local) NumNodes() int { return l.ring.Nodes() }

// NodeOf implements Router.
func (l *Local) NodeOf(id serve.TerminalID) int { return l.ring.NodeOf(id) }

// Engine returns node n's engine (read-only use: stats, shard count).
func (l *Local) Engine(n int) *serve.Engine { return l.engines[n] }

// Submit implements Router.
func (l *Local) Submit(r serve.Report) error {
	n := l.ring.NodeOf(r.Terminal)
	// Account before the engine call, as the engine itself does: once a
	// report is queued the node may decide it immediately, and a counter
	// that lags lets Stats observe decisions > submitted.
	l.submitted[n].Add(1)
	if err := l.engines[n].Submit(r); err != nil {
		l.submitted[n].Add(^uint64(0)) // roll back the optimistic accounting
		return fmt.Errorf("cluster: node %d: %w", n, err)
	}
	return nil
}

// SubmitBatch implements Router: reports scatter into per-node sub-slices
// (preserving per-terminal order) and each node gets one coalesced
// Engine.SubmitBatch call, which blocks under that node's backpressure.
func (l *Local) SubmitBatch(rs []serve.Report) error {
	if len(rs) == 0 {
		return nil
	}
	if l.ring.Nodes() == 1 {
		l.submitted[0].Add(uint64(len(rs)))
		if err := l.engines[0].SubmitBatch(rs); err != nil {
			l.submitted[0].Add(^uint64(len(rs) - 1))
			return fmt.Errorf("cluster: node 0: %w", err)
		}
		return nil
	}
	bufs := l.scatter.Get().(*[][]serve.Report)
	defer l.putScatter(bufs)
	for i := range rs {
		n := l.ring.NodeOf(rs[i].Terminal)
		(*bufs)[n] = append((*bufs)[n], rs[i])
	}
	for n, sub := range *bufs {
		if len(sub) == 0 {
			continue
		}
		l.submitted[n].Add(uint64(len(sub)))
		if err := l.engines[n].SubmitBatch(sub); err != nil {
			l.submitted[n].Add(^uint64(len(sub) - 1))
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	return nil
}

// TrySubmitBatch implements Router: per-report TrySubmit against the
// owning node, shedding (and counting) everything from the first
// backlogged node on.  Reports accepted before the backlog stay accepted.
func (l *Local) TrySubmitBatch(rs []serve.Report) error {
	shed := 0
	firstNode := -1
	backlogged := make([]bool, l.ring.Nodes())
	for i := range rs {
		n := l.ring.NodeOf(rs[i].Terminal)
		if backlogged[n] {
			// Order within a backlogged node must not be violated by
			// accepting later reports after shedding earlier ones.
			shed++
			continue
		}
		l.submitted[n].Add(1)
		err := l.engines[n].TrySubmit(rs[i])
		if err != nil {
			l.submitted[n].Add(^uint64(0)) // roll back the optimistic accounting
		}
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrBacklogged):
			backlogged[n] = true
			if firstNode < 0 {
				firstNode = n
			}
			shed++
		default:
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	if shed > 0 {
		return &BacklogError{Node: firstNode, Shed: shed}
	}
	return nil
}

func (l *Local) putScatter(bufs *[][]serve.Report) {
	for i := range *bufs {
		(*bufs)[i] = (*bufs)[i][:0]
	}
	l.scatter.Put(bufs)
}

// Flush implements Router.  In-process queues drain deterministically, so
// the timeout is not consulted: Engine.Flush returns once every accepted
// report is decided.
func (l *Local) Flush(time.Duration) error {
	for _, e := range l.engines {
		e.Flush()
	}
	return nil
}

// Stats implements Router, merging each node's serve.Stats totals.
func (l *Local) Stats() Stats {
	st := Stats{Nodes: make([]NodeStats, len(l.engines))}
	for n, e := range l.engines {
		tot := e.Stats().Totals()
		st.Nodes[n] = NodeStats{
			Node:       n,
			Submitted:  l.submitted[n].Load(),
			Decisions:  tot.Decisions,
			Handovers:  tot.Handovers,
			PingPongs:  tot.PingPongs,
			Errors:     tot.Errors,
			Terminals:  tot.Terminals,
			QueueDepth: tot.QueueDepth,
		}
	}
	return st
}

// EngineStats returns node n's full per-shard serve.Stats (the in-process
// backend's extra observability over the merged Stats view).
func (l *Local) EngineStats(n int) serve.Stats { return l.engines[n].Stats() }

// Close implements Router: every engine is drained (Stop decides all
// accepted reports) and stopped.
func (l *Local) Close() error {
	l.closeOnce.Do(func() {
		for n, e := range l.engines {
			if err := e.Stop(); err != nil && l.closeErr == nil {
				l.closeErr = fmt.Errorf("cluster: node %d: %w", n, err)
			}
		}
	})
	return l.closeErr
}
