package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// LocalConfig configures an in-process cluster: N serve.Engines in one
// process, partitioned by the consistent-hash ring.
type LocalConfig struct {
	// Nodes is the initial member count (≥ 1); members get IDs
	// 0..Nodes-1.  AddNode grows the set with fresh IDs.
	Nodes int
	// VirtualNodes is the ring's per-member virtual node count (0:
	// DefaultVirtualNodes).
	VirtualNodes int
	// Engine is the per-node engine template (shards, queue depth,
	// algorithm, ping-pong window).  Engine.OnDecision must be nil — use
	// OnDecision below, which carries the node ID.
	Engine serve.Config
	// OnDecision, when non-nil, receives every outcome together with the
	// ID of the node that decided it, on that node's shard goroutine.
	OnDecision func(node int, o serve.Outcome)
	// Metrics, when non-nil, is the shared registry every member engine
	// registers its instruments in, each labeled node="<id>" (overriding
	// Engine.Metrics/Engine.MetricsLabels).  Engines added later by
	// AddNode register under their fresh IDs in the same registry.
	Metrics *obs.Registry
	// OrphanDir is where rollback double-failures quarantine terminal
	// snapshots that could be delivered to no live owner ("": the OS temp
	// directory).
	OrphanDir string
	// MigrateBufferCap bounds the reports buffered for moving terminals
	// during a membership change; TrySubmitBatch sheds past it (0:
	// DefaultMigrateBufferCap).
	MigrateBufferCap int
}

// localNode is one in-process member: an engine plus its route ledger.
type localNode struct {
	id        int
	engine    *serve.Engine
	submitted atomic.Uint64
}

// Local is the in-process Router backend: the cheapest way to run one
// terminal population across several engines (tests, single-box NUMA-ish
// scaling) and the reference the TCP backend is checked against.
//
// Membership is elastic: AddNode/RemoveNode migrate exactly the
// terminals whose ring arc moved, and submissions keep flowing while the
// migration runs — unmoved arcs route normally, moving arcs buffer until
// the cutover flips the ring (see migration).
type Local struct {
	cfg LocalConfig

	// changeMu serializes membership changes — one migration at a time.
	// memMu orders the brief ring mutations against routing: submits hold
	// the read side; only the install and cutover steps take the write
	// side, so routing never stalls for a whole migration.
	changeMu sync.Mutex
	memMu    sync.RWMutex
	ring     *Ring
	nodes    map[int]*localNode
	nextID   int
	retired  []NodeStats
	// mig is non-nil while a membership change is in flight; submit paths
	// consult it under the read lock (see migration).
	mig     *migration
	migStat migTracker

	// migHook is a test-only hook called at the "copy" and "cutover"
	// boundaries of a membership change, so tests can hold a migration
	// open and drive submissions through the route-to-both window.
	migHook func(phase string)

	// scatter recycles the per-call node → sub-slice tables.
	scatter sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// hook consults the test-only migration hook.
func (l *Local) hook(phase string) {
	if l.migHook != nil {
		l.migHook(phase)
	}
}

// NewLocal validates the configuration, builds and starts the node
// engines.  The router is ready to submit when NewLocal returns.
func NewLocal(cfg LocalConfig) (*Local, error) {
	if cfg.Engine.OnDecision != nil {
		return nil, fmt.Errorf("cluster: set LocalConfig.OnDecision (with the node ID), not Engine.OnDecision")
	}
	ring, err := NewRing(cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	l := &Local{
		cfg:    cfg,
		ring:   ring,
		nodes:  make(map[int]*localNode, cfg.Nodes),
		nextID: cfg.Nodes,
	}
	l.scatter.New = func() any { return &map[int][]serve.Report{} }
	for n := 0; n < cfg.Nodes; n++ {
		node, err := l.startNode(n)
		if err != nil {
			for _, started := range l.nodes {
				started.engine.Stop()
			}
			return nil, err
		}
		l.nodes[n] = node
	}
	return l, nil
}

// startNode builds and starts one member engine (does not link it into
// the member map).
func (l *Local) startNode(id int) (*localNode, error) {
	ecfg := l.cfg.Engine
	if l.cfg.OnDecision != nil {
		ecfg.OnDecision = func(o serve.Outcome) { l.cfg.OnDecision(id, o) }
	}
	if l.cfg.Metrics != nil {
		ecfg.Metrics = l.cfg.Metrics
		ecfg.MetricsLabels = []obs.Label{obs.L("node", strconv.Itoa(id))}
	}
	e, err := serve.New(ecfg)
	if err == nil {
		err = e.Start()
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return &localNode{id: id, engine: e}, nil
}

// NumNodes implements Router.
//
//fuzzyho:nolockio
func (l *Local) NumNodes() int {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	return l.ring.Nodes()
}

// Members returns the live member IDs in ascending order.
//
//fuzzyho:nolockio
func (l *Local) Members() []int {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	return l.ring.Members()
}

// NodeOf implements Router.
//
//fuzzyho:nolockio
func (l *Local) NodeOf(id serve.TerminalID) int {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	return l.ring.NodeOf(id)
}

// Engine returns member id's engine (read-only use: stats, shard
// count), or nil after the member departed.
func (l *Local) Engine(id int) *serve.Engine {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	if n, ok := l.nodes[id]; ok {
		return n.engine
	}
	return nil
}

// beginMigration installs the route-to-both window: from here until
// cutover (or abort), submissions for moving terminals buffer instead of
// routing, and everything else routes under the old ring.
func (l *Local) beginMigration(op string, node int, oldRing, newRing *Ring) {
	bcap := l.cfg.MigrateBufferCap
	if bcap == 0 {
		bcap = DefaultMigrateBufferCap
	}
	m := &migration{oldRing: oldRing, newRing: newRing, cap: bcap}
	l.memMu.Lock()
	l.mig = m
	l.memMu.Unlock()
	l.migStat.begin(op, node)
}

// abortMigration dismantles the window after a rolled-back change: the
// buffered moving-terminal reports are released under the UNCHANGED old
// ring (their owners got their state back).
func (l *Local) abortMigration() error {
	l.memMu.Lock()
	buf := l.mig.take()
	l.mig = nil
	err := l.submitBatchLocked(buf)
	l.memMu.Unlock()
	l.migStat.end()
	if err != nil {
		return fmt.Errorf("cluster: resubmitting %d reports buffered during the aborted migration: %w", len(buf), err)
	}
	return nil
}

// AddNode starts a fresh member engine, migrates to it exactly the
// terminals the grown ring assigns to it, and routes to it from then on.
// Returns the new member's ID.  Submissions keep flowing while the
// migration runs: unmoved arcs route normally, moving arcs buffer until
// the cutover flips the ring — every moved terminal resumes its decision
// sequence on the new node exactly where it stopped on the old one.
func (l *Local) AddNode() (int, error) {
	l.changeMu.Lock()
	defer l.changeMu.Unlock()
	l.memMu.RLock()
	oldRing := l.ring
	id := l.nextID
	srcs := l.sortedNodes()
	l.memMu.RUnlock()
	newRing, err := NewRingMembers(append(oldRing.Members(), id), l.cfg.VirtualNodes)
	if err != nil {
		return 0, err
	}
	node, err := l.startNode(id)
	if err != nil {
		return 0, err
	}
	l.beginMigration("addnode", id, oldRing, newRing)
	l.hook("copy")
	// Pull the new member's terminals out of every current owner.  The
	// extract rides each engine's shard queues behind every report already
	// submitted, so the snapshots carry complete histories; reports
	// arriving DURING the pull are for buffered (moving) terminals and
	// wait for cutover.
	var moved []serve.TerminalSnapshot
	migErr := func() error {
		for _, src := range srcs {
			l.migStat.phase(fmt.Sprintf("copy:%d", src.id))
			snaps, err := src.engine.ExtractSnapshots(func(t serve.TerminalID) bool {
				return newRing.NodeOf(t) == id
			})
			if err != nil {
				return fmt.Errorf("cluster: extracting for new node %d from node %d: %w", id, src.id, err)
			}
			moved = append(moved, snaps...)
		}
		l.migStat.phase(fmt.Sprintf("restore:%d", id))
		if err := node.engine.RestoreSnapshots(moved); err != nil {
			return fmt.Errorf("cluster: restoring into new node %d: %w", id, err)
		}
		return nil
	}()
	if migErr != nil {
		// Put back what the owners already gave up, then release the
		// buffered reports under the unchanged ring.
		rbErr := l.restoreBack(oldRing, moved)
		node.engine.Stop()
		abErr := l.abortMigration()
		return 0, errors.Join(migErr, rbErr, abErr)
	}
	l.hook("cutover")
	l.migStat.phase("cutover")
	// Commit: flip the ring and release the buffered moving-arc reports
	// under the same write lock, so no post-cutover submission can outrun
	// them and break per-terminal order.
	l.memMu.Lock()
	l.ring = newRing
	l.nodes[id] = node
	l.nextID = id + 1
	buf := l.mig.take()
	l.mig = nil
	ferr := l.submitBatchLocked(buf)
	l.memMu.Unlock()
	l.migStat.end()
	if ferr != nil {
		return id, fmt.Errorf("cluster: migration committed, but releasing %d buffered reports failed: %w", len(buf), ferr)
	}
	return id, nil
}

// RemoveNode migrates every terminal member id owns to the members the
// shrunk ring assigns them to, freezes the departing node's stats, and
// stops its engine.  Submissions keep flowing throughout: only the
// departing member's arcs buffer, everything else routes normally.
func (l *Local) RemoveNode(id int) error {
	l.changeMu.Lock()
	defer l.changeMu.Unlock()
	l.memMu.RLock()
	node, ok := l.nodes[id]
	nLive := len(l.nodes)
	oldRing := l.ring
	l.memMu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: node %d is not a member", id)
	}
	if nLive == 1 {
		return fmt.Errorf("cluster: cannot remove the last member")
	}
	members := oldRing.Members()
	rest := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != id {
			rest = append(rest, m)
		}
	}
	newRing, err := NewRingMembers(rest, l.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	l.beginMigration("removenode", id, oldRing, newRing)
	l.hook("copy")
	migErr := func() error {
		l.migStat.phase(fmt.Sprintf("copy:%d", id))
		moved, err := node.engine.ExtractSnapshots(func(serve.TerminalID) bool { return true })
		if err != nil {
			return fmt.Errorf("cluster: extracting node %d: %w", id, err)
		}
		// Scatter the departing member's terminals to their new owners.
		byDest := map[int][]serve.TerminalSnapshot{}
		for _, s := range moved {
			d := newRing.NodeOf(s.Terminal)
			byDest[d] = append(byDest[d], s)
		}
		var delivered []int
		for _, d := range sortedKeys(byDest) {
			l.migStat.phase(fmt.Sprintf("restore:%d", d))
			if err := l.nodes[d].engine.RestoreSnapshots(byDest[d]); err != nil {
				// Roll the migration back: reclaim what already landed and
				// return everything to the departing member.  The reclaimed
				// copies equal the extracted snapshots (reports for moving
				// terminals buffer, so no destination decided anything),
				// which is why restoring `moved` restores the world.
				movedSet := make(map[serve.TerminalID]bool, len(moved))
				for _, s := range moved {
					movedSet[s.Terminal] = true
				}
				errs := []error{fmt.Errorf("cluster: restoring into node %d: %w", d, err)}
				for _, dd := range delivered {
					if _, xerr := l.nodes[dd].engine.ExtractSnapshots(func(t serve.TerminalID) bool {
						return movedSet[t]
					}); xerr != nil {
						errs = append(errs, fmt.Errorf("cluster: reclaiming from node %d: %w", dd, xerr))
					}
				}
				if rerr := node.engine.RestoreSnapshots(moved); rerr != nil {
					// The departing member cannot take its state back: the
					// snapshots now live nowhere, so quarantine them rather
					// than lose them with this process.
					errs = append(errs,
						fmt.Errorf("cluster: rollback to node %d also failed: %w", id, rerr),
						orphanError(l.cfg.OrphanDir, moved))
				}
				return errors.Join(errs...)
			}
			delivered = append(delivered, d)
		}
		return nil
	}()
	if migErr != nil {
		return errors.Join(migErr, l.abortMigration())
	}
	l.hook("cutover")
	l.migStat.phase("cutover")
	// Commit: freeze the departing member's final counters, drop it from
	// the ring, and release the buffered reports — all of which now route
	// to remaining members, since every arc of id moved.
	l.memMu.Lock()
	st := l.nodeStats(node)
	st.Departed = true
	l.retired = append(l.retired, st)
	delete(l.nodes, id)
	l.ring = newRing
	buf := l.mig.take()
	l.mig = nil
	ferr := l.submitBatchLocked(buf)
	l.memMu.Unlock()
	l.migStat.end()
	var errs []error
	if ferr != nil {
		errs = append(errs, fmt.Errorf("cluster: migration committed, but releasing %d buffered reports failed: %w", len(buf), ferr))
	}
	if err := node.engine.Stop(); err != nil {
		errs = append(errs, fmt.Errorf("cluster: stopping node %d: %w", id, err))
	}
	return errors.Join(errs...)
}

// SnapshotAll drains every member and returns the whole cluster's
// terminal snapshots (crash-recovery export; state stays live).
func (l *Local) SnapshotAll() ([]serve.TerminalSnapshot, error) {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	var all []serve.TerminalSnapshot
	for _, n := range l.sortedNodes() {
		n.engine.Flush()
		snaps, err := n.engine.SnapshotTerminals()
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshotting node %d: %w", n.id, err)
		}
		all = append(all, snaps...)
	}
	return all, nil
}

// RestoreAll scatters a whole-cluster snapshot set to the members the
// current ring assigns each terminal to (crash-recovery import).
func (l *Local) RestoreAll(snaps []serve.TerminalSnapshot) error {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	byDest := map[int][]serve.TerminalSnapshot{}
	for _, s := range snaps {
		d := l.ring.NodeOf(s.Terminal)
		byDest[d] = append(byDest[d], s)
	}
	for _, d := range sortedKeys(byDest) {
		if err := l.nodes[d].engine.RestoreSnapshots(byDest[d]); err != nil {
			return fmt.Errorf("cluster: restoring into node %d: %w", d, err)
		}
	}
	return nil
}

// restoreBack returns extracted snapshots to the engines ring assigns
// them to (their sources), after a failed migration, skipping terminals
// an engine still holds.  Snapshots that can land nowhere are
// quarantined, never dropped.
func (l *Local) restoreBack(ring *Ring, snaps []serve.TerminalSnapshot) error {
	if len(snaps) == 0 {
		return nil
	}
	l.memMu.RLock()
	nodes := make(map[int]*localNode, len(l.nodes))
	for id, n := range l.nodes {
		nodes[id] = n
	}
	l.memMu.RUnlock()
	byDest := map[int][]serve.TerminalSnapshot{}
	for _, s := range snaps {
		d := ring.NodeOf(s.Terminal)
		byDest[d] = append(byDest[d], s)
	}
	var errs []error
	var orphans []serve.TerminalSnapshot
	for _, d := range sortedKeys(byDest) {
		n, ok := nodes[d]
		if !ok {
			errs = append(errs, fmt.Errorf("cluster: owner %d of %d reclaimed terminals is not a live member", d, len(byDest[d])))
			orphans = append(orphans, byDest[d]...)
			continue
		}
		if _, err := n.engine.RestoreSnapshotsSkipLive(byDest[d]); err != nil {
			errs = append(errs, fmt.Errorf("cluster: returning %d terminals to node %d: %w", len(byDest[d]), d, err))
			orphans = append(orphans, byDest[d]...)
		}
	}
	if len(orphans) > 0 {
		errs = append(errs, orphanError(l.cfg.OrphanDir, orphans))
	}
	return errors.Join(errs...)
}

// sortedNodes returns the live members in ascending ID order.
//
//fuzzyho:nolockio
func (l *Local) sortedNodes() []*localNode {
	out := make([]*localNode, 0, len(l.nodes))
	for _, n := range l.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// sortedKeys collects a map's keys in ascending order — the pattern that
// turns map iteration into a deterministic visit order.
//
//fuzzyho:nolockio
//fuzzyho:deterministic
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	//fuzzyho:allow order-insensitive reduction: the keys are sorted below, so the result cannot observe iteration order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Submit implements Router.  During a membership change a report for a
// moving terminal buffers until cutover; everything else routes as if no
// change were in flight.
//
//fuzzyho:nolockio
func (l *Local) Submit(r serve.Report) error {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	if l.mig != nil && l.mig.moving(r.Terminal) {
		l.mig.add(r)
		return nil
	}
	node := l.nodes[l.ring.NodeOf(r.Terminal)]
	// Account before the engine call, as the engine itself does: once a
	// report is queued the node may decide it immediately, and a counter
	// that lags lets Stats observe decisions > submitted.
	node.submitted.Add(1)
	//fuzzyho:allow backpressure by design: the engine's shard consumers drain independently of memMu, so this wait is bounded by shard progress, never by the membership change itself
	if err := node.engine.Submit(r); err != nil {
		node.submitted.Add(^uint64(0)) // roll back the optimistic accounting
		return fmt.Errorf("cluster: node %d: %w", node.id, err)
	}
	return nil
}

// SubmitBatch implements Router: reports scatter into per-node sub-slices
// (preserving per-terminal order) and each node gets one coalesced
// Engine.SubmitBatch call, which blocks under that node's backpressure.
// During a membership change, moving-terminal reports peel off into the
// migration buffer first.
//
//fuzzyho:nolockio
func (l *Local) SubmitBatch(rs []serve.Report) error {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	if l.mig != nil {
		rs = l.mig.intercept(rs)
	}
	//fuzzyho:allow backpressure by design: shard queues drain independently of memMu (see submitBatchLocked)
	return l.submitBatchLocked(rs)
}

// submitBatchLocked scatters under a held member lock (read side for
// submissions, write side for the cutover/abort buffer flush).
//
//fuzzyho:nolockio
func (l *Local) submitBatchLocked(rs []serve.Report) error {
	if len(rs) == 0 {
		return nil
	}
	if l.ring.Nodes() == 1 {
		node := l.nodes[l.ring.Members()[0]]
		node.submitted.Add(uint64(len(rs)))
		//fuzzyho:allow backpressure by design: the engine's shard consumers drain independently of memMu, so this wait is bounded by shard progress, never by the membership change itself
		if err := node.engine.SubmitBatch(rs); err != nil {
			node.submitted.Add(^uint64(len(rs) - 1))
			return fmt.Errorf("cluster: node %d: %w", node.id, err)
		}
		return nil
	}
	bufs := l.scatter.Get().(*map[int][]serve.Report)
	defer l.putScatter(bufs)
	for i := range rs {
		n := l.ring.NodeOf(rs[i].Terminal)
		(*bufs)[n] = append((*bufs)[n], rs[i])
	}
	for _, id := range sortedKeys(*bufs) {
		sub := (*bufs)[id]
		if len(sub) == 0 {
			continue
		}
		node := l.nodes[id]
		node.submitted.Add(uint64(len(sub)))
		//fuzzyho:allow backpressure by design: the engine's shard consumers drain independently of memMu, so this wait is bounded by shard progress, never by the membership change itself
		if err := node.engine.SubmitBatch(sub); err != nil {
			node.submitted.Add(^uint64(len(sub) - 1))
			return fmt.Errorf("cluster: node %d: %w", id, err)
		}
	}
	return nil
}

// TrySubmitBatch implements Router: per-report TrySubmit against the
// owning node, shedding (and counting) everything from the first
// backlogged node on.  Reports accepted before the backlog stay accepted.
// A full migration buffer sheds moving-terminal reports the same way.
//
//fuzzyho:nolockio
func (l *Local) TrySubmitBatch(rs []serve.Report) error {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	shed := 0
	firstNode := -1
	if l.mig != nil {
		var bshed, bnode int
		rs, bshed, bnode = l.mig.interceptTry(rs)
		if bshed > 0 {
			shed = bshed
			firstNode = bnode
		}
	}
	backlogged := map[int]bool{}
	for i := range rs {
		n := l.ring.NodeOf(rs[i].Terminal)
		if backlogged[n] {
			// Order within a backlogged node must not be violated by
			// accepting later reports after shedding earlier ones.
			shed++
			continue
		}
		node := l.nodes[n]
		node.submitted.Add(1)
		err := node.engine.TrySubmit(rs[i])
		if err != nil {
			node.submitted.Add(^uint64(0)) // roll back the optimistic accounting
		}
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrBacklogged):
			backlogged[n] = true
			if firstNode < 0 {
				firstNode = n
			}
			shed++
		default:
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	if shed > 0 {
		return &BacklogError{Node: firstNode, Shed: shed}
	}
	return nil
}

//fuzzyho:nolockio
func (l *Local) putScatter(bufs *map[int][]serve.Report) {
	for id, sub := range *bufs {
		(*bufs)[id] = sub[:0]
	}
	l.scatter.Put(bufs)
}

// Flush implements Router.  In-process queues drain deterministically, so
// the timeout is not consulted: Engine.Flush returns once every accepted
// report is decided.
func (l *Local) Flush(time.Duration) error {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	for _, n := range l.sortedNodes() {
		n.engine.Flush()
	}
	return nil
}

// nodeStats snapshots one live member's counters.
//
//fuzzyho:nolockio
func (l *Local) nodeStats(n *localNode) NodeStats {
	tot := n.engine.Stats().Totals()
	return NodeStats{
		Node:       n.id,
		Submitted:  n.submitted.Load(),
		Decisions:  tot.Decisions,
		Handovers:  tot.Handovers,
		PingPongs:  tot.PingPongs,
		Errors:     tot.Errors,
		Terminals:  tot.Terminals,
		QueueDepth: tot.QueueDepth,
	}
}

// Stats implements Router, merging each node's serve.Stats totals.
// Departed members appear after the live ones with frozen counters, so
// cluster totals still account every decision ever made.
//
//fuzzyho:nolockio
func (l *Local) Stats() Stats {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	st := Stats{Nodes: make([]NodeStats, 0, len(l.nodes)+len(l.retired))}
	for _, n := range l.sortedNodes() {
		st.Nodes = append(st.Nodes, l.nodeStats(n))
	}
	st.Nodes = append(st.Nodes, l.retired...)
	return st
}

// Migration implements Router.
//
//fuzzyho:nolockio
func (l *Local) Migration() MigrationStatus {
	l.memMu.RLock()
	buffered := 0
	if l.mig != nil {
		buffered = l.mig.buffered()
	}
	l.memMu.RUnlock()
	return l.migStat.status(buffered)
}

// EngineStats returns member id's full per-shard serve.Stats (the
// in-process backend's extra observability over the merged Stats view);
// zero after the member departed.
//
//fuzzyho:nolockio
func (l *Local) EngineStats(id int) serve.Stats {
	l.memMu.RLock()
	defer l.memMu.RUnlock()
	if n, ok := l.nodes[id]; ok {
		return n.engine.Stats()
	}
	return serve.Stats{}
}

// Close implements Router: every engine is drained (Stop decides all
// accepted reports) and stopped.
func (l *Local) Close() error {
	l.closeOnce.Do(func() {
		l.memMu.Lock()
		defer l.memMu.Unlock()
		for _, n := range l.sortedNodes() {
			if err := n.engine.Stop(); err != nil && l.closeErr == nil {
				l.closeErr = fmt.Errorf("cluster: node %d: %w", n.id, err)
			}
		}
	})
	return l.closeErr
}
