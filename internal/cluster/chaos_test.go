package cluster

import (
	"bufio"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// TestTCPRouterKillRestartResumesFromJournal is the crash-safety
// acceptance pin: the ROUTER (not a node) dies mid-migration, a fresh
// router restarts on the same intent journal, and recovery either rolls
// the half-done change back (no cutover record) or forward (cutover
// durable) from the daemons' state — then the replay finishes with zero
// lost reports and decision sequences byte-identical to a static single
// engine.
func TestTCPRouterKillRestartResumesFromJournal(t *testing.T) {
	// Three speeds → 12 terminals: the grown ring reassigns terminals
	// from BOTH incumbents (two speeds would move none — see
	// TestRingShrinkRestoresAssignment for the ring-stability pin).
	reports, terminals := paperGridReports(t, []float64{0, 30, 50}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)
	nodeCfg := serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}

	cases := []struct {
		name        string
		crashAt     string // phase boundary where the router "dies"
		wantMembers []int
	}{
		// Died after copies landed but before the cutover record: the
		// restarted router must reclaim the copies and keep the old ring.
		{name: "crash-before-cutover-rolls-back", crashAt: "restored", wantMembers: []int{0, 1}},
		// Died after the cutover record became durable: the restarted
		// router must finish the join and route to the new member.
		{name: "crash-after-cutover-rolls-forward", crashAt: "cutover", wantMembers: []int{0, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Each subtest gets its own daemons and journal: a crash leaves
			// state deliberately scattered, which must not leak across cases.
			addr0, stop0 := startNodeDaemon(t, nodeCfg)
			defer stop0()
			addr1, stop1 := startNodeDaemon(t, nodeCfg)
			defer stop1()
			addr2, stop2 := startNodeDaemon(t, nodeCfg)
			defer stop2()
			journal := filepath.Join(t.TempDir(), "journal.jsonl")

			rec := newOutcomeRecorder(terminals)
			var recMu sync.Mutex
			cfg := TCPConfig{
				Addrs:   []string{addr0, addr1},
				Journal: journal,
				OnDecision: func(_ int, o serve.Outcome) {
					recMu.Lock()
					rec.record(o)
					recMu.Unlock()
				},
				OnError: func(node int, err error) { t.Errorf("node %d: %v", node, err) },
			}
			router1, err := DialTCP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mid := len(reports) / 2
			replayChunks(t, router1.SubmitBatch, reports[:mid], 1, nil)
			if err := router1.Flush(20 * time.Second); err != nil {
				t.Fatal(err)
			}

			// "Kill" the router at the phase boundary: the migration is
			// abandoned with no rollback and no journal truncation, exactly
			// the state a SIGKILL would leave behind.
			router1.crashPoint = func(phase string) bool { return phase == tc.crashAt }
			if _, err := router1.AddNode(addr2); !errors.Is(err, errMigrationAbandoned) {
				t.Fatalf("AddNode with crash at %q = %v, want errMigrationAbandoned", tc.crashAt, err)
			}
			tot1 := router1.Stats().Totals()
			if err := router1.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart on the same journal.  DialTCP replays it: the
			// checkpointed membership supersedes Addrs and the pending
			// intent is completed or rolled back from the daemons' state.
			router2, err := DialTCP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := router2.Members(); !equalInts(got, tc.wantMembers) {
				t.Fatalf("recovered members %v, want %v", got, tc.wantMembers)
			}
			replayChunks(t, router2.SubmitBatch, reports[mid:], 1, nil)
			if err := router2.Flush(20 * time.Second); err != nil {
				t.Fatal(err)
			}
			tot2 := router2.Stats().Totals()
			if err := router2.Close(); err != nil {
				t.Fatal(err)
			}

			checkSequencesEqual(t, "tcp/"+tc.name, rec, ref)
			if lost := tot1.Lost + tot2.Lost; lost != 0 {
				t.Errorf("lost %d reports across the router kill/restart", lost)
			}
			if dec := tot1.Decisions + tot2.Decisions; dec != uint64(len(reports)) {
				t.Errorf("decisions %d, want %d", dec, len(reports))
			}
		})
	}
}

// equalInts reports whether two int slices are element-wise equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLocalMigrationOverlapsSubmissions pins the two-phase overlap
// contract: while a migration is frozen mid-copy, submissions for
// UNMOVED arcs decide immediately, submissions for MOVING arcs buffer
// (decisions do not advance), and the cutover releases the buffer so the
// full run stays byte-identical to a static single engine.
func TestLocalMigrationOverlapsSubmissions(t *testing.T) {
	// Three speeds → 12 terminals, so the second half has both moving
	// and unmoved arcs under the 2→3 member ring change.
	reports, terminals := paperGridReports(t, []float64{0, 30, 50}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	l, err := NewLocal(LocalConfig{
		Nodes:  2,
		Engine: serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm},
		OnDecision: func(_ int, o serve.Outcome) {
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	mid := len(reports) / 2
	replayChunks(t, l.SubmitBatch, reports[:mid], 1, nil)
	if err := l.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Partition the second half exactly as the router will: terminals the
	// grown ring reassigns to the new member are "moving", the rest are
	// "unmoved".  Ring points depend only on member IDs, so these rings
	// match the router's own.
	oldRing, err := NewRingMembers([]int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := NewRingMembers([]int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var unmoved, moving []serve.Report
	for _, r := range reports[mid:] {
		if oldRing.NodeOf(r.Terminal) != newRing.NodeOf(r.Terminal) {
			moving = append(moving, r)
		} else {
			unmoved = append(unmoved, r)
		}
	}
	if len(moving) == 0 || len(unmoved) == 0 {
		t.Fatalf("degenerate partition: %d moving, %d unmoved", len(moving), len(unmoved))
	}

	// Freeze AddNode at the copy phase so the migration window stays open
	// while we probe it.
	entered, hold := make(chan struct{}), make(chan struct{})
	l.migHook = func(phase string) {
		if phase == "copy" {
			close(entered)
			<-hold
		}
	}
	addErr := make(chan error, 1)
	go func() {
		id, err := l.AddNode()
		if err == nil && id != 2 {
			err = errors.New("AddNode returned wrong ID")
		}
		addErr <- err
	}()
	<-entered

	if ms := l.Migration(); !ms.Active || ms.Op != "addnode" || ms.Node != 2 {
		t.Fatalf("mid-migration status %+v, want active addnode for node 2", ms)
	}
	base := l.Stats().Totals().Decisions

	// Unmoved arcs must not stall: their decisions land while the
	// migration is still mid-copy.
	if err := l.SubmitBatch(unmoved); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := l.Stats().Totals().Decisions
	if got != base+uint64(len(unmoved)) {
		t.Fatalf("unmoved decisions %d, want %d: unmoved arcs stalled during migration", got-base, len(unmoved))
	}

	// Moving arcs buffer: no decisions, all reports held for cutover.
	if err := l.SubmitBatch(moving); err != nil {
		t.Fatal(err)
	}
	if ms := l.Migration(); ms.Buffered != len(moving) {
		t.Fatalf("buffered %d, want %d", ms.Buffered, len(moving))
	}
	if dec := l.Stats().Totals().Decisions; dec != got {
		t.Fatalf("decisions advanced to %d while moving reports should be buffered", dec)
	}

	// Release the migration; cutover flushes the buffer in order.
	close(hold)
	if err := <-addErr; err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkSequencesEqual(t, "local/overlap", rec, ref)
	tot := l.Stats().Totals()
	if tot.Decisions != uint64(len(reports)) || tot.Lost != 0 {
		t.Errorf("totals %+v, want decisions=%d lost=0", tot, len(reports))
	}
}

// TestDaemonMembershipCtlOps drives membership through the daemon wire
// control plane — the hocluster front door: {"ctl":"addnode"} and
// {"ctl":"removenode"} lines change the live ring, and a plain engine
// node (no membership hooks) rejects them in the ack, not by dying.
func TestDaemonMembershipCtlOps(t *testing.T) {
	nodeCfg := serve.Config{Shards: 1, QueueDepth: 64}
	addr0, stop0 := startNodeDaemon(t, nodeCfg)
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, nodeCfg)
	defer stop1()
	addr2, stop2 := startNodeDaemon(t, nodeCfg)
	defer stop2()

	router, err := DialTCP(TCPConfig{Addrs: []string{addr0, addr1}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// The front daemon, wired exactly as cmd/hocluster wires it.
	front := &serve.Daemon{
		Name:       "front",
		Mux:        serve.NewDecisionMux(),
		Submit:     router.SubmitBatch,
		Drain:      func() error { return router.Flush(10 * time.Second) },
		AddNode:    router.AddNode,
		RemoveNode: func(node int) error { return router.RemoveNode(node) },
	}
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		front.ServeConn(server)
	}()
	defer func() { client.Close(); <-done }()

	sc := bufio.NewScanner(client)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	roundTrip := func(c serve.WireControl, wantOp string) serve.WireControl {
		t.Helper()
		if _, err := client.Write(serve.AppendControlJSON(nil, c)); err != nil {
			t.Fatal(err)
		}
		for sc.Scan() {
			ack, err := serve.ParseControlLine(sc.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if ack.Op == wantOp {
				return ack
			}
		}
		t.Fatalf("connection closed before %q ack (scan err %v)", wantOp, sc.Err())
		return serve.WireControl{}
	}

	ack := roundTrip(serve.WireControl{Op: "addnode", Addr: addr2}, "node-added")
	if ack.Error != "" || ack.Node != 2 {
		t.Fatalf("addnode ack %+v, want node 2 with no error", ack)
	}
	if got := router.Members(); !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("members after ctl addnode: %v, want [0 1 2]", got)
	}

	ack = roundTrip(serve.WireControl{Op: "removenode", Node: 1}, "node-removed")
	if ack.Error != "" || ack.Node != 1 {
		t.Fatalf("removenode ack %+v, want node 1 with no error", ack)
	}
	if got := router.Members(); !equalInts(got, []int{0, 2}) {
		t.Fatalf("members after ctl removenode: %v, want [0 2]", got)
	}

	// A plain engine node has no membership hooks: the op must come back
	// as an error ack on the same connection, never a dropped line.
	conn, err := net.Dial("tcp", addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(serve.AppendControlJSON(nil, serve.WireControl{Op: "addnode", Addr: "127.0.0.1:1"})); err != nil {
		t.Fatal(err)
	}
	nsc := bufio.NewScanner(conn)
	for nsc.Scan() {
		ack, err := serve.ParseControlLine(nsc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if ack.Op == "node-added" {
			if !strings.Contains(ack.Error, "addnode not supported") {
				t.Fatalf("engine-node addnode ack %+v, want not-supported error", ack)
			}
			return
		}
	}
	t.Fatalf("engine node closed connection before rejecting addnode (scan err %v)", nsc.Err())
}
