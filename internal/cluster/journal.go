package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// The migration intent journal makes membership changes crash-safe: the
// daemons hold the state, the journal holds the intent.  It is a
// newline-JSON file of three record kinds:
//
//	{"j":"checkpoint","members":[0,1],"addrs":{"0":"...","1":"..."},"next_id":2}
//	{"j":"intent","op":"addnode","node":2,"addr":"...","members":[0,1],"new_members":[0,1,2],"vnodes":128}
//	{"j":"phase","phase":"moved","source":0,"count":37}
//	{"j":"phase","phase":"cutover"}
//
// A checkpoint is always the first record — Checkpoint rewrites the
// whole file atomically (temp + fsync + rename), which is also how a
// completed change truncates its intent.  The intent record is appended
// and fsync'd BEFORE the first snapshot moves; phase records track
// progress; the cutover phase commits the change.  On restart, a journal
// that still carries an intent is replayed: no cutover → roll back (pull
// the copies off the destination, old membership stands), cutover → roll
// forward (finish the idempotent copy/restore/release sweep).  A torn
// final line — the append the crash interrupted — is ignored: fsync
// ordering guarantees every decision-relevant record before it is whole.

// IntentRecord names one membership change before any state moves.
type IntentRecord struct {
	// Op is "addnode" or "removenode"; Node the member joining or
	// leaving; Addr its dial address (the only place a joining member's
	// address is recorded before it is committed).
	Op   string `json:"op"`
	Node int    `json:"node"`
	Addr string `json:"addr,omitempty"`
	// Members is the pre-change membership, NewMembers the post-change
	// one, VNodes the ring's virtual-node count — everything recovery
	// needs to rebuild both rings without the dead router's memory.
	Members    []int `json:"members"`
	NewMembers []int `json:"new_members"`
	VNodes     int   `json:"vnodes"`
}

// PhaseRecord is one progress mark inside an intent: "moved" after a
// source's arcs landed on their destination (Source/Count say whose and
// how many), "cutover" when the change committed.
type PhaseRecord struct {
	Phase  string `json:"phase"`
	Source int    `json:"source,omitempty"`
	Count  int    `json:"count,omitempty"`
}

// JournalState is what OpenJournal recovered from an existing file.
type JournalState struct {
	// HasCheckpoint reports a checkpoint record was present; Members,
	// Addrs and NextID are its contents — the durable membership that
	// supersedes whatever static configuration the router restarted with.
	HasCheckpoint bool
	Members       []int
	Addrs         map[int]string
	NextID        int
	// Intent is the pending (non-truncated) membership change, nil when
	// the last change completed; Cutover whether it committed; Phases the
	// progress marks recorded before the crash.
	Intent  *IntentRecord
	Cutover bool
	Phases  []PhaseRecord
}

type journalCheckpoint struct {
	Kind    string            `json:"j"`
	Members []int             `json:"members"`
	Addrs   map[string]string `json:"addrs,omitempty"`
	NextID  int               `json:"next_id"`
}

type journalIntent struct {
	Kind string `json:"j"`
	IntentRecord
}

type journalPhase struct {
	Kind string `json:"j"`
	PhaseRecord
}

// Journal is the append handle.  All writes fsync before returning, so a
// record that was "written" survives any later crash.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenJournal opens (or creates) the journal at path and parses whatever
// a previous router left in it.  A structurally bad record anywhere but
// the final line is corruption and fails the open — recovering from a
// journal that lies is worse than not recovering.
func OpenJournal(path string) (*Journal, JournalState, error) {
	var st JournalState
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, st, fmt.Errorf("cluster: journal %s: %w", path, err)
	}
	if err == nil {
		if st, err = parseJournal(data); err != nil {
			return nil, JournalState{}, fmt.Errorf("cluster: journal %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, st, fmt.Errorf("cluster: journal %s: %w", path, err)
	}
	return &Journal{path: path, f: f}, st, nil
}

// parseJournal folds the record stream into the recovered state.
func parseJournal(data []byte) (JournalState, error) {
	var st JournalState
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var lines [][]byte
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	for i, line := range lines {
		var kind struct {
			Kind string `json:"j"`
		}
		bad := func(err error) (JournalState, error) {
			return JournalState{}, fmt.Errorf("record %d: %w", i+1, err)
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			if i == len(lines)-1 {
				// The append a crash tore mid-line; everything durable
				// precedes it.
				break
			}
			return bad(err)
		}
		switch kind.Kind {
		case "checkpoint":
			var c journalCheckpoint
			if err := json.Unmarshal(line, &c); err != nil {
				return bad(err)
			}
			st = JournalState{HasCheckpoint: true, Members: c.Members, NextID: c.NextID}
			if c.Addrs != nil {
				st.Addrs = make(map[int]string, len(c.Addrs))
				for k, a := range c.Addrs {
					id, err := strconv.Atoi(k)
					if err != nil {
						return bad(fmt.Errorf("checkpoint addr key %q: %w", k, err))
					}
					st.Addrs[id] = a
				}
			}
		case "intent":
			var in journalIntent
			if err := json.Unmarshal(line, &in); err != nil {
				return bad(err)
			}
			if st.Intent != nil {
				return bad(fmt.Errorf("second intent (%s node %d) before the first completed", in.Op, in.Node))
			}
			rec := in.IntentRecord
			st.Intent = &rec
		case "phase":
			var p journalPhase
			if err := json.Unmarshal(line, &p); err != nil {
				return bad(err)
			}
			if st.Intent == nil {
				return bad(fmt.Errorf("phase %q with no intent", p.Phase))
			}
			if p.Phase == "cutover" {
				st.Cutover = true
			} else {
				st.Phases = append(st.Phases, p.PhaseRecord)
			}
		default:
			return bad(fmt.Errorf("unknown record kind %q", kind.Kind))
		}
	}
	return st, nil
}

// append marshals one record, appends it and fsyncs.
func (j *Journal) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	return nil
}

// Intent durably records a membership change before any state moves.
func (j *Journal) Intent(rec IntentRecord) error {
	return j.append(journalIntent{Kind: "intent", IntentRecord: rec})
}

// Phase durably records migration progress inside the current intent.
func (j *Journal) Phase(rec PhaseRecord) error {
	return j.append(journalPhase{Kind: "phase", PhaseRecord: rec})
}

// Cutover durably commits the current intent: recovery past this record
// rolls the change forward instead of back.
func (j *Journal) Cutover() error {
	return j.Phase(PhaseRecord{Phase: "cutover"})
}

// Checkpoint atomically rewrites the journal to a single checkpoint
// record carrying the (post-change) membership — which is also how a
// completed or rolled-back change truncates its intent.  The rewrite
// goes through a fsync'd temp file and a rename, then reopens the append
// handle (the old descriptor points at the replaced inode) and fsyncs
// the directory so the rename itself is durable.
func (j *Journal) Checkpoint(members []int, addrs map[int]string, nextID int) error {
	rec := journalCheckpoint{Kind: "checkpoint", Members: members, NextID: nextID}
	if addrs != nil {
		rec.Addrs = make(map[string]string, len(addrs))
		for id, a := range addrs {
			rec.Addrs[strconv.Itoa(id)] = a
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	dir, base := filepath.Split(j.path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	tmp := f.Name()
	_, err = f.Write(b)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, j.path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: journal %s: %w", j.path, err)
	}
	j.f.Close()
	if j.f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return fmt.Errorf("cluster: journal %s: reopen after checkpoint: %w", j.path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Close releases the append handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
