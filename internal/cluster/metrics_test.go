package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// clusterBatch builds n reports spread across terminals 0..terminals-1.
func clusterBatch(terminals, n int) []serve.Report {
	rs := make([]serve.Report, n)
	for i := range rs {
		id := i % terminals
		rs[i] = serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(id)}
	}
	return rs
}

// nodePoints indexes exported points by metric name and node label.
func nodePoints(points []obs.Point) map[string]map[int]obs.Point {
	out := map[string]map[int]obs.Point{}
	for _, p := range points {
		node := -1
		for _, l := range p.Labels {
			if l.Key == "node" {
				node, _ = strconv.Atoi(l.Value)
				break
			}
		}
		if out[p.Name] == nil {
			out[p.Name] = map[int]obs.Point{}
		}
		out[p.Name][node] = p
	}
	return out
}

// TestRegisterMetricsMatchesClusterStats is the acceptance pin for the
// cluster stats plane: after concurrent load across a multi-node router,
// every cluster_node_* series on /metrics equals the same node's
// cluster.Stats() counters exactly, and every member's engine exports
// its serve_* instruments under its own node label.  Runs under race.
func TestRegisterMetricsMatchesClusterStats(t *testing.T) {
	reg := obs.NewRegistry()
	router, err := NewLocal(LocalConfig{
		Nodes:   3,
		Engine:  serve.Config{Shards: 2, QueueDepth: 128},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	RegisterMetrics(reg, router)

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := router.SubmitBatch(clusterBatch(64, 100)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := router.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	stats := router.Stats()
	if got := stats.Totals().Decisions; got != workers*5*100 {
		t.Fatalf("decisions = %d, want %d", got, workers*5*100)
	}
	byNode := nodePoints(reg.Export())
	for _, n := range stats.Nodes {
		pin := func(name string, want float64) {
			t.Helper()
			p, ok := byNode[name][n.Node]
			if !ok {
				t.Errorf("node %d: no %s point on /metrics", n.Node, name)
				return
			}
			if p.Value != want {
				t.Errorf("node %d: %s = %g on /metrics, %g in cluster.Stats()", n.Node, name, p.Value, want)
			}
		}
		pin("cluster_node_submitted_total", float64(n.Submitted))
		pin("cluster_node_decisions_total", float64(n.Decisions))
		pin("cluster_node_lost_total", float64(n.Lost))
		pin("cluster_node_handovers_total", float64(n.Handovers))
		pin("cluster_node_pingpongs_total", float64(n.PingPongs))
		pin("cluster_node_errors_total", float64(n.Errors))
		pin("cluster_node_terminals", float64(n.Terminals))
		pin("cluster_node_queue_depth", float64(n.QueueDepth))

		// The member's engine shares the registry under the same label:
		// its serve_decisions_total must agree with the node's ledger.
		pin("serve_decisions_total", float64(n.Decisions))
		if _, ok := byNode["serve_batch_service_ns"][n.Node]; !ok {
			t.Errorf("node %d: engine histograms missing from shared registry", n.Node)
		}
	}

	// The rendered exposition carries one decisions sample per member.
	text := obs.PrometheusText(reg.Export())
	for _, id := range router.Members() {
		want := `cluster_node_decisions_total{node="` + strconv.Itoa(id) + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text lacks %s", want)
		}
	}
}

// TestScrapeStatsPerNode pins the TCP stats plane: hocluster's merged
// /metrics view scrapes every live member over the existing daemon
// connections and labels each point with the member's node ID.
func TestScrapeStatsPerNode(t *testing.T) {
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	addr0, stop0 := startNodeDaemon(t, serve.Config{Shards: 2, Metrics: regs[0]})
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, serve.Config{Shards: 2, Metrics: regs[1]})
	defer stop1()

	router, err := DialTCP(TCPConfig{Addrs: []string{addr0, addr1}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	if err := router.SubmitBatch(clusterBatch(64, 640)); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	scrapes := router.ScrapeStats(5 * time.Second)
	if len(scrapes) != 2 {
		t.Fatalf("scraped %d members, want 2", len(scrapes))
	}
	stats := router.Stats()
	var total uint64
	for i, sc := range scrapes {
		if sc.Err != nil {
			t.Fatalf("node %d scrape: %v", sc.Node, sc.Err)
		}
		if sc.Node != stats.Nodes[i].Node || sc.Addr != stats.Nodes[i].Addr {
			t.Errorf("scrape %d: node %d@%s, stats order %d@%s", i, sc.Node, sc.Addr, stats.Nodes[i].Node, stats.Nodes[i].Addr)
		}
		var shardSum uint64
		for _, sh := range sc.Stats.Shards {
			shardSum += sh.Decisions
		}
		// The daemon's shard truth must match both the router's ledger and
		// the node's own exported counter.
		if shardSum != stats.Nodes[i].Decisions {
			t.Errorf("node %d: %d decisions on the wire, %d in router stats", sc.Node, shardSum, stats.Nodes[i].Decisions)
		}
		byNode := nodePoints(sc.Stats.Points)
		p, ok := byNode["serve_decisions_total"][sc.Node]
		if !ok {
			t.Fatalf("node %d: scraped points lack serve_decisions_total under its own label", sc.Node)
		}
		if p.Value != float64(shardSum) {
			t.Errorf("node %d: exported %g decisions, shards say %d", sc.Node, p.Value, shardSum)
		}
		// Every scraped point is tagged with this member's ID.
		for _, pt := range sc.Stats.Points {
			if len(pt.Labels) == 0 || pt.Labels[0] != obs.L("node", strconv.Itoa(sc.Node)) {
				t.Fatalf("node %d: point %s not node-labeled: %+v", sc.Node, pt.Name, pt.Labels)
			}
		}
		total += shardSum
	}
	if total != 640 {
		t.Errorf("scraped decisions total %d, want 640", total)
	}
}

// statuszApp decodes the cluster half of a /statusz reply.
type statuszApp struct {
	App struct {
		Cluster Status             `json:"cluster"`
		Claims  serve.ClaimSummary `json:"claims"`
	} `json:"app"`
}

// getStatusz hits the admin handler and decodes the app payload.
func getStatusz(t *testing.T, adm *obs.Admin) statuszApp {
	t.Helper()
	rec := httptest.NewRecorder()
	adm.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != 200 {
		t.Fatalf("/statusz status %d", rec.Code)
	}
	var got statuszApp
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/statusz decode: %v\n%s", err, rec.Body.String())
	}
	return got
}

// TestStatuszAcrossMembershipAndTakeover drives /statusz exactly as
// hocluster wires it — cluster.StatusOf plus the mux claim table — and
// pins it across AddNode, RemoveNode, and a same-identity claim
// takeover.
func TestStatuszAcrossMembershipAndTakeover(t *testing.T) {
	mux := serve.NewDecisionMux()
	router, err := NewLocal(LocalConfig{
		Nodes:      2,
		Engine:     serve.Config{Shards: 1, QueueDepth: 64},
		OnDecision: func(_ int, o serve.Outcome) { mux.Route(o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	mux.Drain = func() error { return router.Flush(5 * time.Second) }
	adm := &obs.Admin{Status: func() any {
		return map[string]any{"cluster": StatusOf(router), "claims": mux.Claims()}
	}}

	// A first connection claims 8 terminals under identity "loader".
	sinkA := serve.NewSink(discard{})
	bindA := serve.NewBinding(mux, sinkA)
	bindA.SetIdentity("loader")
	if err := bindA.Submit(clusterBatch(8, 8), router.SubmitBatch); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	st := getStatusz(t, adm)
	if len(st.App.Cluster.Members) != 2 {
		t.Fatalf("members = %v, want 2 live members", st.App.Cluster.Members)
	}
	if st.App.Cluster.Totals.Decisions != 8 {
		t.Errorf("totals.decisions = %d, want 8", st.App.Cluster.Totals.Decisions)
	}
	if st.App.Claims.Terminals != 8 || st.App.Claims.Owners["loader"] != 8 {
		t.Errorf("claims = %+v, want 8 terminals under \"loader\"", st.App.Claims)
	}

	// Grow the ring: the new member appears in /statusz and its node row
	// exists (zero counters are fine — it has decided nothing yet).
	newID, err := router.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	st = getStatusz(t, adm)
	if len(st.App.Cluster.Members) != 3 {
		t.Fatalf("after AddNode: members = %v", st.App.Cluster.Members)
	}
	found := false
	for _, n := range st.App.Cluster.Nodes {
		if n.Node == newID && !n.Departed {
			found = true
		}
	}
	if !found {
		t.Fatalf("after AddNode: node %d missing from /statusz nodes", newID)
	}

	// Shrink: the removed member leaves Members but stays in Nodes as a
	// departed row with frozen counters, so Totals still accounts it.
	preTotals := st.App.Cluster.Totals.Decisions
	if err := router.RemoveNode(0); err != nil {
		t.Fatal(err)
	}
	st = getStatusz(t, adm)
	if len(st.App.Cluster.Members) != 2 {
		t.Fatalf("after RemoveNode: members = %v", st.App.Cluster.Members)
	}
	for _, id := range st.App.Cluster.Members {
		if id == 0 {
			t.Fatalf("after RemoveNode: node 0 still a member: %v", st.App.Cluster.Members)
		}
	}
	departed := false
	for _, n := range st.App.Cluster.Nodes {
		if n.Node == 0 && n.Departed {
			departed = true
		}
	}
	if !departed {
		t.Error("after RemoveNode: node 0 has no departed row in /statusz")
	}
	if st.App.Cluster.Totals.Decisions != preTotals {
		t.Errorf("after RemoveNode: totals.decisions %d, want the frozen %d", st.App.Cluster.Totals.Decisions, preTotals)
	}

	// Reconnect: a new connection with the same identity takes the claims
	// over; the table must show the same 8 terminals under "loader" — no
	// claim lost, none duplicated — and the old binding is superseded.
	sinkB := serve.NewSink(discard{})
	bindB := serve.NewBinding(mux, sinkB)
	bindB.SetIdentity("loader")
	if err := bindB.Submit(clusterBatch(8, 8), router.SubmitBatch); err != nil {
		t.Fatal(err)
	}
	if !bindA.Superseded() {
		t.Error("old binding not superseded after takeover")
	}
	st = getStatusz(t, adm)
	if st.App.Claims.Terminals != 8 || st.App.Claims.Owners["loader"] != 8 {
		t.Errorf("after takeover: claims = %+v, want 8 terminals under \"loader\"", st.App.Claims)
	}
	if err := bindA.Submit(clusterBatch(8, 1), router.SubmitBatch); err != serve.ErrSuperseded {
		t.Errorf("superseded binding submit: %v, want ErrSuperseded", err)
	}
}

// discard is an io.Writer black hole for test sinks.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
