package cluster

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/serve"
)

// benchBatches builds terminal-disjoint report batches, one per
// submitter, cycling a varied-measurement population (per-terminal order
// preserved because each submitter owns its terminals).
func benchBatches(submitters, batchLen, terminalsPer int) [][]serve.Report {
	out := make([][]serve.Report, submitters)
	for s := range out {
		batch := make([]serve.Report, batchLen)
		for i := range batch {
			id := s*1_000_000 + i%terminalsPer
			batch[i] = serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(i)}
		}
		out[s] = batch
	}
	return out
}

// benchClusterLoad pushes n reports through the router from concurrent
// submitters and flushes.
func benchClusterLoad(b *testing.B, r Router, batches [][]serve.Report, n int) {
	b.Helper()
	var wg sync.WaitGroup
	per := (n + len(batches) - 1) / len(batches)
	for _, batch := range batches {
		wg.Add(1)
		go func(batch []serve.Report) {
			defer wg.Done()
			sent := 0
			for sent < per {
				if err := r.SubmitBatch(batch); err != nil {
					b.Error(err)
					return
				}
				sent += len(batch)
			}
		}(batch)
	}
	wg.Wait()
	if err := r.Flush(0); err != nil {
		b.Error(err)
	}
}

// BenchmarkClusterLocal measures steady-state routed throughput across
// in-process node counts (compiled decision mode, 2 shards per node) —
// the cluster section of BENCH_serve.json.  nodes=1 is the router-layer
// overhead baseline against BenchmarkServeCompiled.
func BenchmarkClusterLocal(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			l, err := NewLocal(LocalConfig{
				Nodes:  nodes,
				Engine: serve.Config{Shards: 2, QueueDepth: 256, Compiled: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batches := benchBatches(4, 512, 64)
			// Warm the engines' buffer populations and terminal stores so
			// the timed region is steady state.
			benchClusterLoad(b, l, batches, nodes*2*256*64)
			before := l.Stats().Totals().Decisions
			b.ReportAllocs()
			b.ResetTimer()
			benchClusterLoad(b, l, batches, b.N)
			b.StopTimer()
			decided := l.Stats().Totals().Decisions - before
			b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/sec")
		})
	}
}
