// Package cluster is the horizontal scaling layer above internal/serve:
// it partitions the terminal population across N engine nodes with a
// consistent-hash ring over TerminalID and routes report batches to the
// node owning each terminal, behind one Router interface with two
// backends — in-process (N serve.Engines in one process, for tests and
// single-box scaling) and TCP (the newline-JSON wire protocol to remote
// hoserve daemons).
//
// The load-bearing guarantee is determinism: because the ring assigns
// every terminal to exactly one node and submission order is preserved
// per terminal all the way through, a cluster of N nodes produces
// per-terminal decision sequences identical to a single engine on the
// same stream — at any node count, in every decision mode (exact,
// compiled, adaptive).  The equivalence tests pin this on the paper's
// scenario grid.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/serve"
)

// DefaultVirtualNodes is the ring's virtual-node count per member: large
// enough that load spreads within a few percent of fair and a future
// membership change moves ~1/N of the terminals, small enough that the
// ring stays a cache-resident sorted array.
const DefaultVirtualNodes = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is a consistent-hash ring over TerminalID.  Terminals hash with
// serve.HashTerminal — the same SplitMix64 family the engine's shard
// store probes with — and are owned by the first virtual node clockwise
// from their hash.  Immutable once built; safe for concurrent use.
//
// Members are identified by arbitrary small integer IDs, and a member's
// ring points depend only on its own ID: a ring over {0,1,2} and a ring
// over {0,1,2,5} place the shared members' points identically, so
// adding or removing one member moves only the ~1/(N+1) of terminals
// whose owning arc changed.  Elastic membership (Local.AddNode and
// friends) is built on exactly this property.
type Ring struct {
	points  []ringPoint
	members []int // sorted, unique
	// lut is the fast path of NodeOf: bucket b covers the hash prefix
	// range [b<<lutShift, (b+1)<<lutShift); when every hash in the bucket
	// resolves to one member the entry holds that member, otherwise -1
	// and the lookup falls back to binary search.  With the default ring
	// density well under 1% of buckets straddle a point boundary, so the
	// routing hot loop costs one shift and one load per report.
	lut []int16
}

// lutBits sizes the lookup table: 2^16 entries (128 KiB of int16) keeps
// straddling buckets rare at default density while staying cache-friendly.
const lutBits = 16

const lutShift = 64 - lutBits

// MaxMemberID bounds member IDs: the LUT stores members as int16 with
// -1 reserved as the straddle sentinel.
const MaxMemberID = 32766

// NewRing builds a ring of member IDs 0..nodes-1 with virtualNodes
// points each (0 selects DefaultVirtualNodes).
func NewRing(nodes, virtualNodes int) (*Ring, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: node count %d must be ≥ 1", nodes)
	}
	members := make([]int, nodes)
	for i := range members {
		members[i] = i
	}
	return NewRingMembers(members, virtualNodes)
}

// NewRingMembers builds a ring over an explicit member-ID set with
// virtualNodes points per member (0 selects DefaultVirtualNodes).  IDs
// must be unique and within [0, MaxMemberID]; order does not matter.
func NewRingMembers(members []int, virtualNodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if virtualNodes == 0 {
		virtualNodes = DefaultVirtualNodes
	}
	if virtualNodes < 1 {
		return nil, fmt.Errorf("cluster: virtual node count %d must be ≥ 1 (0 selects the default %d)",
			virtualNodes, DefaultVirtualNodes)
	}
	sorted := make([]int, len(members))
	copy(sorted, members)
	sort.Ints(sorted)
	for i, m := range sorted {
		if m < 0 || m > MaxMemberID {
			return nil, fmt.Errorf("cluster: member ID %d outside [0, %d]", m, MaxMemberID)
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member ID %d", m)
		}
	}
	r := &Ring{points: make([]ringPoint, 0, len(sorted)*virtualNodes), members: sorted}
	for _, m := range sorted {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tiebreak so equal-hash points (vanishingly rare)
		// cannot make two equally-configured rings disagree.
		return r.points[i].node < r.points[j].node
	})
	if len(sorted) > 1 {
		r.buildLUT()
	}
	return r, nil
}

// buildLUT fills the prefix lookup table from the sorted points.
func (r *Ring) buildLUT() {
	r.lut = make([]int16, 1<<lutBits)
	for b := range r.lut {
		lo := r.search(uint64(b) << lutShift)
		hi := r.search(uint64(b)<<lutShift | (1<<lutShift - 1))
		if lo == hi {
			// The whole bucket resolves past the same set of points to
			// one successor.
			r.lut[b] = int16(r.points[lo%len(r.points)].node)
		} else {
			r.lut[b] = -1
		}
	}
}

// pointHash derives the ring position of member node's virtual node v:
// two rounds of the SplitMix64 finalizer over a (node, v) blend that is
// unique across members.  The second round matters — a single round over
// small blends would place node 0's points exactly on the hashes of
// terminal IDs 0..virtualNodes-1 (identical inputs to HashTerminal), and
// every low terminal would systematically land on node 0.
//
//fuzzyho:deterministic
func pointHash(node, v int) uint64 {
	h := serve.HashTerminal(serve.TerminalID(uint64(node)<<32 + uint64(v)))
	return serve.HashTerminal(serve.TerminalID(h))
}

// Nodes returns the member count.
//
//fuzzyho:nolockio
func (r *Ring) Nodes() int { return len(r.members) }

// Members returns the member IDs in ascending order (a copy).
//
//fuzzyho:nolockio
//fuzzyho:deterministic
func (r *Ring) Members() []int {
	out := make([]int, len(r.members))
	copy(out, r.members)
	return out
}

// NodeOf returns the member owning the terminal: the node of the first
// ring point at or clockwise past the terminal's hash.  Runs per report
// under the router's membership read lock: hot, deterministic (the
// equivalence pins route on it) and never blocking.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
//fuzzyho:nolockio
func (r *Ring) NodeOf(id serve.TerminalID) int {
	if r.lut == nil {
		return r.members[0] // single member owns everything
	}
	h := serve.HashTerminal(id)
	if n := r.lut[h>>lutShift]; n >= 0 {
		return int(n)
	}
	return r.points[r.search(h)%len(r.points)].node
}

// search returns the index of the first point with hash ≥ h (== len when
// h is past the last point; callers wrap with % len).
//
//fuzzyho:hotpath
//fuzzyho:deterministic
//fuzzyho:nolockio
func (r *Ring) search(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
