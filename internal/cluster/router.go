package cluster

import (
	"fmt"
	"time"

	"repro/internal/serve"
)

// Router routes measurement reports to the engine node owning each
// terminal.  Both backends guarantee per-terminal submission order is
// preserved end to end, which is what makes cluster decision sequences
// identical to a single engine's.
//
// Backpressure semantics differ by backend and are part of the contract:
//
//   - SubmitBatch blocks while a destination cannot accept (the
//     in-process backend delegates to Engine.SubmitBatch's bounded
//     queues; the TCP backend blocks on the owning node's send queue).
//   - TrySubmitBatch never blocks: a full destination fails fast with a
//     *BacklogError (errors.Is serve.ErrBacklogged) naming the node and
//     how many reports were shed — sub-batches bound for other nodes are
//     still accepted, so the error is the caller's resubmission ledger,
//     never a silent drop.
type Router interface {
	// Submit routes one report.
	Submit(r serve.Report) error
	// SubmitBatch routes a batch, coalescing per destination node and
	// blocking under backpressure.
	SubmitBatch(rs []serve.Report) error
	// TrySubmitBatch routes a batch without blocking; see the
	// backpressure contract above.
	TrySubmitBatch(rs []serve.Report) error
	// Flush blocks until every routed report is decided (or accounted
	// lost by a failed node), up to timeout.
	Flush(timeout time.Duration) error
	// Stats snapshots the per-node counters.
	Stats() Stats
	// NumNodes returns the member count.
	NumNodes() int
	// Members returns the live member IDs in ascending order.
	Members() []int
	// NodeOf returns the ring's owner for a terminal.
	NodeOf(id serve.TerminalID) int
	// Migration snapshots the in-flight membership change, if any:
	// Active=false means the ring is stable.  Submissions never block on
	// a migration — unmoved arcs route normally and moving arcs buffer —
	// so this is observability, not a gate.
	Migration() MigrationStatus
	// Close tears the router down.  In-process engines are drained and
	// stopped; TCP node connections are flushed and closed.
	Close() error
}

// MigrationStatus is the observable progress of an in-flight membership
// change (Router.Migration, /statusz).
type MigrationStatus struct {
	// Active reports a change in flight; Op ("addnode"/"removenode") and
	// Node name it; Phase is the current step ("prepare", "copy:<src>",
	// "restore:<dst>", "release", "cutover").
	Active bool   `json:"active"`
	Op     string `json:"op,omitempty"`
	Node   int    `json:"node"`
	Phase  string `json:"phase,omitempty"`
	// Buffered counts reports for moving terminals held in the
	// route-to-both buffer, to be released at cutover.
	Buffered int `json:"buffered"`
}

// BacklogError reports a fail-fast submission that shed reports because a
// node's queue was full.  It unwraps to serve.ErrBacklogged.
type BacklogError struct {
	// Node is the first backlogged member; Shed the total reports (across
	// all backlogged members) that were NOT accepted and may be
	// resubmitted by the caller.
	Node int
	Shed int
}

func (e *BacklogError) Error() string {
	return fmt.Sprintf("cluster: node %d backlogged; %d reports shed", e.Node, e.Shed)
}

func (e *BacklogError) Unwrap() error { return serve.ErrBacklogged }

// NodeStats is one member's counter snapshot.
type NodeStats struct {
	// Node is the member index (-1 in aggregated totals); Addr its dial
	// address for the TCP backend ("" in-process).
	Node int
	Addr string
	// Submitted counts reports routed to the node; Decisions the
	// decisions it delivered; Lost the reports a failed TCP connection
	// dropped (always 0 in-process).
	Submitted, Decisions, Lost uint64
	// Handovers/PingPongs/Errors tally executed handovers, flagged
	// returns, and errors (algorithm errors in-process; line-level remote
	// rejects over TCP) among the node's decisions.
	Handovers, PingPongs, Errors uint64
	// Terminals is the distinct-terminal count (in-process only: the wire
	// protocol does not carry it).
	Terminals uint64
	// Reconnects counts re-established node connections (TCP only).
	Reconnects uint64
	// QueueDepth is the instantaneous ingest backlog (sub-batches
	// in-process, encoded lines over TCP).
	QueueDepth int
	// Departed marks a node removed from the ring: its counters are the
	// frozen final snapshot, kept so totals still account its work.
	Departed bool
}

// Stats is a point-in-time snapshot of every node's counters, merging the
// per-node serve.Stats (in-process) or client ledgers (TCP).
type Stats struct {
	Nodes []NodeStats
}

// Totals aggregates the per-node counters (Node is -1).
func (s Stats) Totals() NodeStats {
	t := NodeStats{Node: -1}
	for _, n := range s.Nodes {
		t.Submitted += n.Submitted
		t.Decisions += n.Decisions
		t.Lost += n.Lost
		t.Handovers += n.Handovers
		t.PingPongs += n.PingPongs
		t.Errors += n.Errors
		t.Terminals += n.Terminals
		t.Reconnects += n.Reconnects
		t.QueueDepth += n.QueueDepth
	}
	return t
}

// String implements fmt.Stringer.
func (n NodeStats) String() string {
	s := fmt.Sprintf("submitted=%d decisions=%d handovers=%d pingpong=%d errors=%d lost=%d reconnects=%d queue=%d",
		n.Submitted, n.Decisions, n.Handovers, n.PingPongs, n.Errors, n.Lost, n.Reconnects, n.QueueDepth)
	if n.Departed {
		s += " departed"
	}
	return s
}
