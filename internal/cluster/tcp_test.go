package cluster

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/hexgrid"
	"repro/internal/serve"
	"repro/internal/sim"
)

// testMeas builds a valid measurement whose inputs vary with id.
func testMeas(id int) cell.Measurement {
	return cell.Measurement{
		Serving:    hexgrid.Cell{I: 0, J: 0},
		Neighbor:   hexgrid.Cell{I: 1, J: 0},
		ServingDB:  -80 - float64(id%7),
		NeighborDB: -100 + float64(id%9),
		CSSPdB:     -1 + float64(id%5)*0.5,
		DMBNorm:    0.5 + float64(id%4)*0.1,
		WalkedKm:   0.1 * float64(id%11),
		SpeedKmh:   float64(10 * (id % 5)),
	}
}

// startNodeDaemon serves one engine over TCP with the daemon connection
// protocol — the in-test stand-in for a hoserve process.  Returns the
// node's address and a stop function.
func startNodeDaemon(t testing.TB, cfg serve.Config) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, addr, stop = startNodeDaemonOn(t, ln, cfg)
	return addr, stop
}

// startNodeDaemonOn is startNodeDaemon on a caller-provided listener
// (kill/restart tests rebind the same port), also returning the engine
// so crash-recovery tests can snapshot it.  The daemon serves the full
// snapshot control plane, exactly as hoserve wires it.
func startNodeDaemonOn(t testing.TB, ln net.Listener, cfg serve.Config) (engine *serve.Engine, addr string, stop func()) {
	t.Helper()
	mux := serve.NewDecisionMux()
	cfg.OnDecision = mux.Route
	e, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	d := &serve.Daemon{
		Name:       "testnode",
		Mux:        mux,
		Submit:     e.SubmitBatch,
		Drain:      func() error { e.Flush(); return nil },
		SchemaHash: e.SchemaHash(),
	}
	d.Extract, d.Restore, d.Release = MigrationHooks(e)
	d.Stats = func() serve.WireStats {
		ws := serve.WireStats{Shards: e.Stats().Shards}
		if cfg.Metrics != nil {
			ws.Points = cfg.Metrics.Export()
		}
		return ws
	}
	var wg sync.WaitGroup
	var cmu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			cmu.Lock()
			conns = append(conns, conn)
			cmu.Unlock()
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				d.ServeConn(conn)
			}(conn)
		}
	}()
	return e, ln.Addr().String(), func() {
		ln.Close()
		cmu.Lock()
		for _, c := range conns {
			c.Close()
		}
		cmu.Unlock()
		wg.Wait()
		e.Stop()
	}
}

// TestTCPClusterMatchesSingleEngine runs the paper scenario grid through
// a 2-node TCP cluster (real sockets, real wire protocol) and demands
// per-terminal decision sequences identical to a single engine — wire
// codec parity included, since scores and flags survive the JSON round
// trip bit for bit.
func TestTCPClusterMatchesSingleEngine(t *testing.T) {
	reports, terminals := paperGridReports(t, []float64{0, 30}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)

	nodeCfg := serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	addr0, stop0 := startNodeDaemon(t, nodeCfg)
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, nodeCfg)
	defer stop1()

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	router, err := DialTCP(TCPConfig{
		Addrs: []string{addr0, addr1},
		OnDecision: func(_ int, o serve.Outcome) {
			// Two node readers may interleave across terminals; each
			// terminal still arrives on exactly one reader.  The lock
			// only orders the slice-header writes.
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
		OnError: func(node int, err error) { t.Errorf("node %d: %v", node, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(reports); i += 113 {
		end := i + 113
		if end > len(reports) {
			end = len(reports)
		}
		if err := router.SubmitBatch(reports[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.Flush(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	tot := router.Stats().Totals()
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}

	checkSequencesEqual(t, "tcp/nodes=2", rec, ref)
	if tot.Submitted != uint64(len(reports)) || tot.Decisions != uint64(len(reports)) || tot.Lost != 0 {
		t.Errorf("totals %+v, want submitted=decisions=%d lost=0", tot, len(reports))
	}
	if tot.Handovers == 0 {
		t.Error("grid executed no handovers over TCP; equivalence is vacuous")
	}
	// Both nodes must have decided — otherwise the ring degenerated.
	for _, ns := range router.Stats().Nodes {
		if ns.Decisions == 0 {
			t.Errorf("node %d (%s) decided nothing", ns.Node, ns.Addr)
		}
	}
}

// trendNodeConfig is a node engine serving the 4-input trend schema.
func trendNodeConfig(shards int) serve.Config {
	return serve.Config{
		Shards: shards, QueueDepth: 64,
		PingPongWindowKm: sim.DefaultPingPongWindowKm,
		AlgorithmFactory: func() handover.Algorithm {
			a, err := handover.NewCompiledTrendFuzzy()
			if err != nil {
				panic(err)
			}
			return a
		},
	}
}

// TestTCPClusterSchemaMismatch pins the fail-fast contract of the hello
// schema exchange: a router announcing the paper schema (the zero-value
// default) against a node serving the trend schema is rejected at the
// first connection — loudly, through OnError — and a router announcing
// the matching hash is served.
func TestTCPClusterSchemaMismatch(t *testing.T) {
	addr, stop := startNodeDaemon(t, trendNodeConfig(1))
	defer stop()

	errCh := make(chan error, 64)
	router, err := DialTCP(TCPConfig{
		Addrs:      []string{addr},
		RedialWait: 10 * time.Millisecond,
		MaxRedials: 2,
		OnError:    func(_ int, err error) { errCh <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	sawMismatch := false
	deadline := time.After(10 * time.Second)
	for !sawMismatch {
		select {
		case err := <-errCh:
			if strings.Contains(err.Error(), "schema mismatch") {
				sawMismatch = true
			}
		case <-deadline:
			t.Fatal("schema mismatch never surfaced through OnError")
		}
	}

	// The matching announcement is served end to end.
	ok, err := DialTCP(TCPConfig{
		Addrs:      []string{addr},
		SchemaHash: handover.TrendFeatureSchema().Hash(),
		OnError:    func(_ int, err error) { t.Errorf("matching schema: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var rs []serve.Report
	for id := 0; id < 64; id++ {
		rs = append(rs, serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(id)})
	}
	if err := ok.SubmitBatch(rs); err != nil {
		t.Fatal(err)
	}
	if err := ok.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ok.Stats().Totals().Decisions; got != uint64(len(rs)) {
		t.Errorf("matching-schema router decided %d, want %d", got, len(rs))
	}
	if err := ok.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPClusterTrendFuzzyMatchesSingleEngine extends the wire-parity
// guarantee to the 4-input stateful schema: the trend fleet through a
// 2-node TCP cluster of trend engines must reproduce a single trend
// engine's per-terminal sequences — which also exercises the schema
// announcement on every node connection.
func TestTCPClusterTrendFuzzyMatchesSingleEngine(t *testing.T) {
	cfgs, _ := sim.SweepGrid("cluster", sim.TrendDriftConfig(), 2, []float64{0, 30})
	factory := func() handover.Algorithm {
		a, err := handover.NewCompiledTrendFuzzy()
		if err != nil {
			panic(err)
		}
		return a
	}
	for i := range cfgs {
		cfgs[i].AlgorithmFactory = factory
	}
	streams := make([][]serve.Report, len(cfgs))
	for i, cfg := range cfgs {
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("sim config %d: %v", i, err)
		}
		streams[i] = serve.ReplayReports(serve.TerminalID(i), res.Measurements())
	}
	reports, terminals := serve.InterleaveReports(streams), len(cfgs)

	ref := runSingleEngine(t, trendNodeConfig(4), reports, terminals)

	addr0, stop0 := startNodeDaemon(t, trendNodeConfig(2))
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, trendNodeConfig(2))
	defer stop1()

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	router, err := DialTCP(TCPConfig{
		Addrs:      []string{addr0, addr1},
		SchemaHash: handover.TrendFeatureSchema().Hash(),
		OnDecision: func(_ int, o serve.Outcome) {
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
		OnError: func(node int, err error) { t.Errorf("node %d: %v", node, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(reports); i += 113 {
		end := i + 113
		if end > len(reports) {
			end = len(reports)
		}
		if err := router.SubmitBatch(reports[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.Flush(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	checkSequencesEqual(t, "tcp-trend/nodes=2", rec, ref)
}

// TestTCPClusterBackpressure: a stalled node fills its bounded send queue
// and TrySubmitBatch sheds that node's sub-batch with a BacklogError
// naming the shed count, while the healthy node keeps accepting.
func TestTCPClusterBackpressure(t *testing.T) {
	// Healthy node.
	addr0, stop0 := startNodeDaemon(t, serve.Config{Shards: 1, QueueDepth: 64})
	defer stop0()
	// Stalled node: accepts and never reads.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	var holdOnce sync.Once
	unhold := func() { holdOnce.Do(func() { close(hold) }) }
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		<-hold
		conn.Close()
	}()

	router, err := DialTCP(TCPConfig{
		Addrs:      []string{addr0, ln.Addr().String()},
		QueueDepth: 2,
		RedialWait: 10 * time.Millisecond,
		MaxRedials: 2,
		CloseGrace: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	defer unhold()

	var rs []serve.Report
	for id := 0; id < 512; id++ {
		rs = append(rs, serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(id)})
	}
	sawBacklog := false
	for i := 0; i < 20000 && !sawBacklog; i++ {
		err := router.TrySubmitBatch(rs)
		if err == nil {
			continue
		}
		var be *BacklogError
		if !errors.As(err, &be) || !errors.Is(err, serve.ErrBacklogged) {
			t.Fatalf("TrySubmitBatch: %v", err)
		}
		if be.Node != 1 || be.Shed == 0 {
			t.Fatalf("backlog error %+v, want node 1 with a shed count", be)
		}
		sawBacklog = true
	}
	if !sawBacklog {
		t.Fatal("stalled node never surfaced ErrBacklogged")
	}
	// The healthy node kept serving its share.
	if n0 := router.Stats().Nodes[0]; n0.Submitted == 0 {
		t.Error("healthy node accepted nothing while its peer was stalled")
	}
}

// TestTCPClusterSurfacesNodeLoss: killing one node mid-stream surfaces
// the loss through OnError and the Lost counter — never a silent drop —
// while the surviving node keeps deciding its terminals.
func TestTCPClusterSurfacesNodeLoss(t *testing.T) {
	addr0, stop0 := startNodeDaemon(t, serve.Config{Shards: 1, QueueDepth: 64})
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, serve.Config{Shards: 1, QueueDepth: 64})

	lossCh := make(chan error, 64)
	router, err := DialTCP(TCPConfig{
		Addrs:      []string{addr0, addr1},
		RedialWait: 10 * time.Millisecond,
		MaxRedials: 2,
		OnError:    func(node int, err error) { lossCh <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	var rs []serve.Report
	for id := 0; id < 256; id++ {
		rs = append(rs, serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(id)})
	}
	if err := router.SubmitBatch(rs); err != nil {
		t.Fatal(err)
	}
	if err := router.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	stop1() // node 1 dies for good
	deadline := time.Now().Add(10 * time.Second)
	lossSeen := false
	for !lossSeen && time.Now().Before(deadline) {
		if err := router.SubmitBatch(rs); err != nil {
			// Node 1 down for good: submission against it now fails
			// loudly, which also satisfies the no-silent-drop contract.
			lossSeen = true
			break
		}
		select {
		case <-lossCh:
			lossSeen = true
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !lossSeen {
		t.Fatal("node loss never surfaced")
	}
	if router.Stats().Nodes[0].Decisions == 0 {
		t.Error("surviving node decided nothing")
	}
}
