package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/handover"
	"repro/internal/serve"
	"repro/internal/sim"
)

// paperGridReports expands both paper scenarios across replicas × speeds,
// simulates each cell, and returns the interleaved report stream (one
// terminal per grid cell) plus the terminal count.
func paperGridReports(t *testing.T, speeds []float64, factory func() handover.Algorithm) ([]serve.Report, int) {
	t.Helper()
	var cfgs []sim.Config
	for _, base := range []sim.Config{sim.PaperBoundaryConfig(), sim.PaperCrossingConfig()} {
		c, _ := sim.SweepGrid("cluster", base, 2, speeds)
		cfgs = append(cfgs, c...)
	}
	for i := range cfgs {
		cfgs[i].AlgorithmFactory = factory
	}
	streams := make([][]serve.Report, len(cfgs))
	for i, cfg := range cfgs {
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("sim config %d: %v", i, err)
		}
		streams[i] = serve.ReplayReports(serve.TerminalID(i), res.Measurements())
	}
	return serve.InterleaveReports(streams), len(cfgs)
}

// outcomeRecorder collects per-terminal outcome sequences.  Each
// terminal's slice is appended to by exactly one shard goroutine of one
// node, so per-slice access is single-writer.
type outcomeRecorder struct {
	seqs [][]serve.Outcome
}

func newOutcomeRecorder(terminals int) *outcomeRecorder {
	return &outcomeRecorder{seqs: make([][]serve.Outcome, terminals)}
}

func (r *outcomeRecorder) record(o serve.Outcome) {
	r.seqs[o.Terminal] = append(r.seqs[o.Terminal], o)
}

// runSingleEngine replays the stream through one engine and returns the
// per-terminal sequences — the reference the cluster must match.
func runSingleEngine(t *testing.T, cfg serve.Config, reports []serve.Report, terminals int) *outcomeRecorder {
	t.Helper()
	rec := newOutcomeRecorder(terminals)
	cfg.OnDecision = rec.record
	e, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch(reports); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	return rec
}

// checkSequencesEqual demands byte-identical per-terminal decision
// sequences (verdict, score bits, reason, execution, ping-pong, seq).
func checkSequencesEqual(t *testing.T, label string, got, want *outcomeRecorder) {
	t.Helper()
	for tid := range want.seqs {
		g, w := got.seqs[tid], want.seqs[tid]
		if len(g) != len(w) {
			t.Fatalf("%s: terminal %d: %d outcomes, single engine has %d", label, tid, len(g), len(w))
		}
		for j := range w {
			if g[j].Seq != w[j].Seq || g[j].Decision != w[j].Decision ||
				g[j].Executed != w[j].Executed || g[j].PingPong != w[j].PingPong {
				t.Fatalf("%s: terminal %d epoch %d:\n cluster %+v executed=%v pingpong=%v\n single  %+v executed=%v pingpong=%v",
					label, tid, j, g[j].Decision, g[j].Executed, g[j].PingPong,
					w[j].Decision, w[j].Executed, w[j].PingPong)
			}
			if (g[j].Err == nil) != (w[j].Err == nil) {
				t.Fatalf("%s: terminal %d epoch %d: err %v vs %v", label, tid, j, g[j].Err, w[j].Err)
			}
		}
	}
}

// TestClusterMatchesSingleEngine is the cluster determinism guarantee —
// the acceptance pin of the multi-node router: partitioning the paper
// scenario grid across N in-process nodes produces per-terminal decision
// sequences byte-identical to a single engine, in all three decision
// modes (exact, compiled, adaptive), at every node count tried.
func TestClusterMatchesSingleEngine(t *testing.T) {
	adaptiveFactory := func() handover.Algorithm { return handover.NewAdaptiveFuzzy() }
	modes := []struct {
		name    string
		speeds  []float64
		factory func() handover.Algorithm // sim reference algorithm (nil: paper fuzzy)
		engine  serve.Config
	}{
		// Three speeds → 12 grid cells/terminals, enough that every node
		// of a 3-member ring owns at least one terminal.
		{"exact", []float64{0, 30, 50}, nil, serve.Config{QueueDepth: 64, PingPongWindowKm: sim.DefaultPingPongWindowKm}},
		{"compiled", []float64{0, 30, 50}, nil, serve.Config{QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}},
		{"adaptive", []float64{0, 30, 50}, adaptiveFactory,
			serve.Config{QueueDepth: 64, AlgorithmFactory: adaptiveFactory, PingPongWindowKm: sim.DefaultPingPongWindowKm}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			reports, terminals := paperGridReports(t, mode.speeds, mode.factory)

			single := mode.engine
			single.Shards = 4
			ref := runSingleEngine(t, single, reports, terminals)

			for _, nodes := range []int{2, 3} {
				t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
					rec := newOutcomeRecorder(terminals)
					engineCfg := mode.engine
					engineCfg.Shards = 2
					l, err := NewLocal(LocalConfig{
						Nodes:      nodes,
						Engine:     engineCfg,
						OnDecision: func(_ int, o serve.Outcome) { rec.record(o) },
					})
					if err != nil {
						t.Fatal(err)
					}
					// Submit in moderate batches so the router's per-node
					// coalescing actually engages.
					for i := 0; i < len(reports); i += 97 {
						end := i + 97
						if end > len(reports) {
							end = len(reports)
						}
						if err := l.SubmitBatch(reports[i:end]); err != nil {
							t.Fatal(err)
						}
					}
					if err := l.Flush(10 * time.Second); err != nil {
						t.Fatal(err)
					}
					checkSequencesEqual(t, fmt.Sprintf("%s/nodes=%d", mode.name, nodes), rec, ref)

					st := l.Stats()
					tot := st.Totals()
					if tot.Submitted != uint64(len(reports)) || tot.Decisions != uint64(len(reports)) ||
						tot.Terminals != uint64(terminals) || tot.Lost != 0 {
						t.Errorf("totals %+v, want submitted=decisions=%d terminals=%d lost=0",
							tot, len(reports), terminals)
					}
					if tot.Handovers == 0 {
						t.Error("grid executed no handovers; equivalence is vacuous")
					}
					// Every node must actually own terminals at these
					// counts, or the test degenerates to single-node.
					for _, ns := range st.Nodes {
						if ns.Terminals == 0 {
							t.Errorf("node %d owns no terminals", ns.Node)
						}
					}
					if err := l.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestLocalSubmitAndTrySubmit covers the remaining Router entry points:
// single-report Submit routes like SubmitBatch, and TrySubmitBatch either
// accepts everything or sheds loudly with a BacklogError.
func TestLocalSubmitAndTrySubmit(t *testing.T) {
	var mu sync.Mutex
	perNode := map[int]uint64{}
	l, err := NewLocal(LocalConfig{
		Nodes: 3,
		// TrySubmit enqueues one message per report (no sub-batching), so
		// the queue must hold a node's whole share for the happy path.
		Engine: serve.Config{Shards: 1, QueueDepth: 512},
		OnDecision: func(node int, o serve.Outcome) {
			mu.Lock()
			perNode[node]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var rs []serve.Report
	for id := 0; id < 300; id++ {
		rs = append(rs, serve.Report{Terminal: serve.TerminalID(id), Meas: testMeas(id)})
	}
	for _, r := range rs[:100] {
		if err := l.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TrySubmitBatch(rs[100:]); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tot := l.Stats().Totals()
	if tot.Decisions != 300 || tot.Submitted != 300 {
		t.Fatalf("totals %+v, want 300 decided", tot)
	}
	mu.Lock()
	nodesServing := len(perNode)
	mu.Unlock()
	if nodesServing != 3 {
		t.Errorf("%d of 3 nodes served decisions", nodesServing)
	}
}
