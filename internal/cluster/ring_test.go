package cluster

import (
	"math"
	"testing"

	"repro/internal/serve"
)

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("accepted 0 nodes")
	}
	if _, err := NewRing(3, -1); err == nil {
		t.Error("accepted negative virtual nodes")
	}
	r, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.points) != 3*DefaultVirtualNodes || r.Nodes() != 3 {
		t.Errorf("ring has %d points for %d nodes", len(r.points), r.Nodes())
	}
}

// TestRingDeterministic: two equally-configured rings agree on every
// terminal — the property that lets a router and a test (or two router
// processes) partition identically.
func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(5, 64)
	b, _ := NewRing(5, 64)
	for id := serve.TerminalID(0); id < 10000; id++ {
		if a.NodeOf(id) != b.NodeOf(id) {
			t.Fatalf("rings disagree on terminal %d", id)
		}
	}
}

// TestRingBalance: with the default virtual-node count, load spreads
// within a reasonable factor of fair share across members.
func TestRingBalance(t *testing.T) {
	const nodes, terminals = 4, 100000
	r, _ := NewRing(nodes, 0)
	counts := make([]int, nodes)
	for id := serve.TerminalID(0); id < terminals; id++ {
		counts[r.NodeOf(id)]++
	}
	fair := float64(terminals) / nodes
	for n, c := range counts {
		if dev := math.Abs(float64(c)-fair) / fair; dev > 0.35 {
			t.Errorf("node %d owns %d of %d terminals (%.0f%% from fair share %g)",
				n, c, terminals, 100*dev, fair)
		}
	}
}

// TestRingLowIDsSpread is the regression pin for the point-hash
// collision: a single SplitMix64 round over raw (node, v) blends placed
// node 0's virtual points exactly on the hashes of terminal IDs
// 0..virtualNodes-1, so every low terminal landed on node 0.  Dense
// low IDs — the common population shape — must spread across members.
func TestRingLowIDsSpread(t *testing.T) {
	for _, nodes := range []int{2, 3, 4} {
		r, _ := NewRing(nodes, 0)
		seen := map[int]bool{}
		for id := serve.TerminalID(0); id < 64; id++ {
			seen[r.NodeOf(id)] = true
		}
		if len(seen) != nodes {
			t.Errorf("%d nodes: terminals 0..63 reached only %d member(s)", nodes, len(seen))
		}
	}
}

// TestRingMembershipStability: growing the cluster from N to N+1 members
// moves roughly 1/(N+1) of the terminals — the consistent-hashing
// property that makes future membership changes cheap — and never moves a
// terminal between two nodes that exist in both rings.
func TestRingMembershipStability(t *testing.T) {
	const terminals = 100000
	old, _ := NewRing(3, 0)
	grown, _ := NewRing(4, 0)
	moved := 0
	for id := serve.TerminalID(0); id < terminals; id++ {
		was, now := old.NodeOf(id), grown.NodeOf(id)
		if was == now {
			continue
		}
		moved++
		if now != 3 {
			t.Fatalf("terminal %d moved %d → %d, not to the new member", id, was, now)
		}
	}
	frac := float64(moved) / terminals
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("grow 3→4 moved %.1f%% of terminals, want ≈25%%", 100*frac)
	}
}

// TestRingLUTMatchesSearch: the prefix lookup table is an optimization,
// never a semantic: every terminal must resolve to exactly the node the
// pure binary search yields.
func TestRingLUTMatchesSearch(t *testing.T) {
	for _, nodes := range []int{2, 3, 7} {
		r, _ := NewRing(nodes, 0)
		for i := 0; i < 200000; i++ {
			// Mix dense low IDs with scattered high ones.
			id := serve.TerminalID(i)
			if i%2 == 1 {
				id = serve.TerminalID(uint64(i) * 0x9E3779B97F4A7C15)
			}
			h := serve.HashTerminal(id)
			want := r.points[r.search(h)%len(r.points)].node
			if got := r.NodeOf(id); got != want {
				t.Fatalf("nodes=%d terminal %d: LUT says %d, search says %d", nodes, id, got, want)
			}
		}
	}
}

// TestRingMatchesRouterNodeOf: both backends must expose the ring's
// assignment unchanged.
func TestRingMatchesRouterNodeOf(t *testing.T) {
	l, err := NewLocal(LocalConfig{Nodes: 3, Engine: serveConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, _ := NewRing(3, 0)
	for id := serve.TerminalID(0); id < 5000; id++ {
		if l.NodeOf(id) != r.NodeOf(id) {
			t.Fatalf("Local disagrees with ring on terminal %d", id)
		}
	}
}

func serveConfig(shards int) serve.Config {
	return serve.Config{Shards: shards, QueueDepth: 64}
}
