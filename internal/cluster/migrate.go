package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/serve"
)

// DefaultMigrateBufferCap bounds the reports buffered for moving
// terminals during one membership change (TrySubmitBatch sheds past it;
// blocking submits are exempt — they already accepted backpressure).
const DefaultMigrateBufferCap = 1 << 16

// errMigrationAbandoned is what the crashPoint test hook turns a
// migration into: the router walks away mid-change exactly as a killed
// process would — no rollback, no journal truncation — so recovery
// tests can replay the journal from a realistic half-done state.
var errMigrationAbandoned = errors.New("cluster: migration abandoned (simulated router crash)")

// migration is the route-to-both window of one membership change.  While
// it is installed, submissions consult it under the router's read lock:
// reports for terminals whose owner does not change route normally (they
// never stall), reports for moving terminals are buffered here and
// released to the destination at cutover — preserving per-terminal
// submission order, because a moving terminal's reports go exclusively
// through the buffer for the whole window.
type migration struct {
	oldRing *Ring
	newRing *Ring
	cap     int

	mu  sync.Mutex
	buf []serve.Report
}

// moving reports whether the terminal's owner changes under the new ring.
//
//fuzzyho:nolockio
//fuzzyho:deterministic
func (m *migration) moving(t serve.TerminalID) bool {
	return m.oldRing.NodeOf(t) != m.newRing.NodeOf(t)
}

// add buffers one moving-terminal report.  Appends never block: a
// submitter stalled here while holding the router's read lock would
// deadlock the cutover's write lock.
//
//fuzzyho:nolockio
func (m *migration) add(r serve.Report) {
	m.mu.Lock()
	m.buf = append(m.buf, r)
	m.mu.Unlock()
}

// intercept splits rs for a blocking submit: moving-terminal reports are
// buffered, the returned slice holds the rest (routable under the old
// ring).  The input slice is never mutated; when nothing moves it is
// returned as-is with no allocation — the common case, since a change
// moves ~1/N of the key space.
//
//fuzzyho:nolockio
func (m *migration) intercept(rs []serve.Report) []serve.Report {
	split := -1
	for i := range rs {
		if m.moving(rs[i].Terminal) {
			split = i
			break
		}
	}
	if split < 0 {
		return rs
	}
	rest := make([]serve.Report, 0, len(rs)-1)
	rest = append(rest, rs[:split]...)
	m.mu.Lock()
	for _, r := range rs[split:] {
		if m.moving(r.Terminal) {
			m.buf = append(m.buf, r)
		} else {
			rest = append(rest, r)
		}
	}
	m.mu.Unlock()
	return rest
}

// interceptTry is intercept for the fail-fast path: moving reports past
// the buffer cap are shed (counted, with the destination node of the
// first shed report) instead of growing the buffer unboundedly.  Only
// this call's own reports are ever shed — reports a blocking submit
// already buffered were accepted and stay accepted.
//
//fuzzyho:nolockio
func (m *migration) interceptTry(rs []serve.Report) (rest []serve.Report, shed int, node int) {
	node = -1
	split := -1
	for i := range rs {
		if m.moving(rs[i].Terminal) {
			split = i
			break
		}
	}
	if split < 0 {
		return rs, 0, node
	}
	rest = make([]serve.Report, 0, len(rs)-1)
	rest = append(rest, rs[:split]...)
	m.mu.Lock()
	for _, r := range rs[split:] {
		if !m.moving(r.Terminal) {
			rest = append(rest, r)
			continue
		}
		if len(m.buf) >= m.cap {
			shed++
			if node < 0 {
				node = m.newRing.NodeOf(r.Terminal)
			}
			continue
		}
		m.buf = append(m.buf, r)
	}
	m.mu.Unlock()
	return rest, shed, node
}

// take hands the buffered reports to the cutover (or abort) flush.
//
//fuzzyho:nolockio
func (m *migration) take() []serve.Report {
	m.mu.Lock()
	b := m.buf
	m.buf = nil
	m.mu.Unlock()
	return b
}

// buffered is the instantaneous buffer depth.
//
//fuzzyho:nolockio
func (m *migration) buffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// migTracker publishes migration phase progress for Router.Migration()
// (and through it /statusz), decoupled from the migration's own locks so
// a status scrape never contends with a cutover.
type migTracker struct {
	mu sync.Mutex
	st MigrationStatus
}

func (g *migTracker) begin(op string, node int) {
	g.mu.Lock()
	g.st = MigrationStatus{Active: true, Op: op, Node: node, Phase: "prepare"}
	g.mu.Unlock()
}

func (g *migTracker) phase(p string) {
	g.mu.Lock()
	g.st.Phase = p
	g.mu.Unlock()
}

func (g *migTracker) end() {
	g.mu.Lock()
	g.st = MigrationStatus{}
	g.mu.Unlock()
}

//fuzzyho:nolockio
func (g *migTracker) status(buffered int) MigrationStatus {
	g.mu.Lock()
	st := g.st
	g.mu.Unlock()
	st.Buffered = buffered
	return st
}

// quarantineSnapshots writes orphaned terminal state — snapshots a
// failed rollback could deliver to no live owner — to a uniquely named
// newline-JSON file, so it is recoverable by hand (serve.ReadSnapshots +
// restore) instead of dying with the router's memory.  dir "" falls back
// to the OS temp directory.
func quarantineSnapshots(dir string, snaps []serve.TerminalSnapshot) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("cluster-orphans-%d.jsonl", time.Now().UnixNano()))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	err = serve.WriteSnapshots(f, snaps)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	return path, nil
}

// orphanError quarantines the snapshots and folds the outcome into the
// rollback error chain: the operator learns where the state went either
// way.
func orphanError(dir string, snaps []serve.TerminalSnapshot) error {
	path, err := quarantineSnapshots(dir, snaps)
	if err != nil {
		return fmt.Errorf("cluster: %d terminal snapshots are orphaned AND quarantine failed (state lost): %w", len(snaps), err)
	}
	return fmt.Errorf("cluster: %d orphaned terminal snapshots quarantined to %s (recover with serve.ReadSnapshots + restore)", len(snaps), path)
}
