package cluster

import (
	"fmt"

	"repro/internal/serve"
)

// migrationPred builds the "no longer mine" predicate a daemon applies
// during a membership change: every terminal the ring over members does
// NOT give to self.  One rule covers both directions:
//
//   - grow: an existing member (self ∈ members) gives up the arcs the
//     new member took — ~1/(N+1) of its terminals;
//   - shrink: the departing member (self ∉ members) owns nothing under
//     the new ring and gives up everything it holds.
func migrationPred(members []int, vnodes, self int) (func(serve.TerminalID) bool, error) {
	ring, err := NewRingMembers(members, vnodes)
	if err != nil {
		return nil, fmt.Errorf("cluster: migration ring: %w", err)
	}
	if !contains(ring.Members(), self) {
		// Departing member: nothing is ours under the new ring.
		return func(serve.TerminalID) bool { return true }, nil
	}
	return func(t serve.TerminalID) bool { return ring.NodeOf(t) != self }, nil
}

// MigrationHooks returns serve.Daemon Extract/Restore/Release
// implementations backed by engine e, closing the loop between the wire
// control plane and the ring: a router driving a membership change tells
// each daemon the NEW member set, and the daemon itself computes which
// of its terminals the new ring no longer assigns to it.
//
// The hooks implement the two-phase move: extract with keep copies the
// moving terminals without removing them (the engine is drained first by
// the daemon, so every snapshot carries the terminal's complete decision
// history); once the copies have landed on the destination, release
// drops the originals.  A plain extract (keep=false) is the one-shot
// move; restore with skipLive is the idempotent replay form crash
// recovery uses.
func MigrationHooks(e *serve.Engine) (
	extract func(members []int, vnodes, self int, keep bool) ([]serve.TerminalSnapshot, error),
	restore func(snaps []serve.TerminalSnapshot, skipLive bool) error,
	release func(members []int, vnodes, self int) (int, error),
) {
	extract = func(members []int, vnodes, self int, keep bool) ([]serve.TerminalSnapshot, error) {
		pred, err := migrationPred(members, vnodes, self)
		if err != nil {
			return nil, err
		}
		if keep {
			return e.SnapshotWhere(pred)
		}
		return e.ExtractSnapshots(pred)
	}
	restore = func(snaps []serve.TerminalSnapshot, skipLive bool) error {
		if skipLive {
			_, err := e.RestoreSnapshotsSkipLive(snaps)
			return err
		}
		return e.RestoreSnapshots(snaps)
	}
	release = func(members []int, vnodes, self int) (int, error) {
		pred, err := migrationPred(members, vnodes, self)
		if err != nil {
			return 0, err
		}
		return e.DiscardTerminals(pred)
	}
	return extract, restore, release
}
