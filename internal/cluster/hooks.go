package cluster

import (
	"fmt"

	"repro/internal/serve"
)

// MigrationHooks returns serve.Daemon Extract/Restore implementations
// backed by engine e, closing the loop between the wire control plane
// and the ring: a router driving a membership change tells each daemon
// the NEW member set, and the daemon itself computes which of its
// terminals the new ring no longer assigns to it and extracts exactly
// those.
//
// The predicate is "every terminal the ring over members does NOT give
// to self", which covers both migration directions with one rule:
//
//   - grow: an existing member (self ∈ members) gives up the arcs the
//     new member took — ~1/(N+1) of its terminals;
//   - shrink: the departing member (self ∉ members) owns nothing under
//     the new ring and gives up everything it holds.
//
// Extraction is atomic per call (serve.Engine.ExtractSnapshots): the
// engine is drained first by the daemon, so every extracted snapshot
// carries the terminal's complete decision history up to the last
// report routed under the old ring.
func MigrationHooks(e *serve.Engine) (
	extract func(members []int, vnodes, self int) ([]serve.TerminalSnapshot, error),
	restore func([]serve.TerminalSnapshot) error,
) {
	extract = func(members []int, vnodes, self int) ([]serve.TerminalSnapshot, error) {
		ring, err := NewRingMembers(members, vnodes)
		if err != nil {
			return nil, fmt.Errorf("cluster: extract ring: %w", err)
		}
		if !contains(ring.Members(), self) {
			// Departing member: nothing is ours under the new ring.
			return e.ExtractSnapshots(func(serve.TerminalID) bool { return true })
		}
		return e.ExtractSnapshots(func(t serve.TerminalID) bool {
			return ring.NodeOf(t) != self
		})
	}
	return extract, e.RestoreSnapshots
}
