package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// TestRingMembersValidation pins NewRingMembers' input contract.
func TestRingMembersValidation(t *testing.T) {
	if _, err := NewRingMembers(nil, 0); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := NewRingMembers([]int{0, 1, 1}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRingMembers([]int{-1}, 0); err == nil {
		t.Error("negative member accepted")
	}
	if _, err := NewRingMembers([]int{MaxMemberID + 1}, 0); err == nil {
		t.Error("member past MaxMemberID accepted")
	}
	// A sole member with a non-zero ID owns everything under its own ID —
	// the single-member fast path must not hardcode 0.
	r, err := NewRingMembers([]int{7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := serve.TerminalID(0); id < 100; id++ {
		if n := r.NodeOf(id); n != 7 {
			t.Fatalf("sole member 7: terminal %d routed to %d", id, n)
		}
	}
	if got := r.Members(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Members() = %v, want [7]", got)
	}
}

// TestRingShrinkRestoresAssignment extends the grow-stability pin
// (TestRingMembershipStability in ring_test.go) with the inverse
// direction elastic membership needs: shrinking {0,1,2,3} back to
// {0,1,2} restores the exact original assignment, because a member's
// ring points depend only on its own ID.
func TestRingShrinkRestoresAssignment(t *testing.T) {
	before, err := NewRingMembers([]int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRingMembers([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const terminals = 100000
	moved := 0
	for id := serve.TerminalID(0); id < terminals; id++ {
		a, b := before.NodeOf(id), after.NodeOf(id)
		if a == b {
			continue
		}
		if b != 3 {
			t.Fatalf("terminal %d moved %d → %d: only the new member may gain terminals", id, a, b)
		}
		moved++
	}
	// The new member should take ~1/4; allow generous slack for hash
	// variance at the default virtual-node density.
	if frac := float64(moved) / terminals; frac < 0.10 || frac > 0.45 {
		t.Errorf("grow moved %.1f%% of terminals, want roughly 25%%", 100*frac)
	}
	// Shrinking is exactly the inverse.
	shrunk, err := NewRingMembers([]int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := serve.TerminalID(0); id < terminals; id++ {
		if before.NodeOf(id) != shrunk.NodeOf(id) {
			t.Fatalf("terminal %d: rebuilt ring disagrees with original", id)
		}
	}
}

// replayChunks submits reports in chunks, invoking between(chunkIdx)
// before each chunk past the first — the hook point where membership
// changes happen mid-replay.
func replayChunks(t *testing.T, submit func([]serve.Report) error, reports []serve.Report,
	chunks int, between func(chunk int)) {
	t.Helper()
	per := (len(reports) + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo, hi := c*per, (c+1)*per
		if hi > len(reports) {
			hi = len(reports)
		}
		if lo >= hi {
			break
		}
		if c > 0 && between != nil {
			between(c)
		}
		for i := lo; i < hi; i += 97 {
			end := i + 97
			if end > hi {
				end = hi
			}
			if err := submit(reports[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestLocalMembershipEquivalence grows and shrinks an in-process cluster
// mid-replay — AddNode after the first third, RemoveNode(0) after the
// second — and demands every terminal's decision sequence byte-identical
// to a static single engine: migration moves authority, never history.
func TestLocalMembershipEquivalence(t *testing.T) {
	reports, terminals := paperGridReports(t, []float64{0, 30, 50}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	l, err := NewLocal(LocalConfig{
		Nodes:  2,
		Engine: serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm},
		OnDecision: func(_ int, o serve.Outcome) {
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	replayChunks(t, l.SubmitBatch, reports, 3, func(chunk int) {
		switch chunk {
		case 1:
			id, err := l.AddNode()
			if err != nil {
				t.Fatal(err)
			}
			if id != 2 {
				t.Fatalf("AddNode ID %d, want 2", id)
			}
		case 2:
			if err := l.RemoveNode(0); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := l.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.Members(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("final members %v, want [1 2]", got)
	}
	checkSequencesEqual(t, "local/elastic", rec, ref)

	st := l.Stats()
	tot := st.Totals()
	if tot.Submitted != uint64(len(reports)) || tot.Decisions != uint64(len(reports)) || tot.Lost != 0 {
		t.Errorf("totals %+v, want submitted=decisions=%d lost=0", tot, len(reports))
	}
	// The departed member must survive in Stats as a frozen snapshot, or
	// its decisions vanish from the ledger.
	var departed *NodeStats
	for i := range st.Nodes {
		if st.Nodes[i].Departed {
			departed = &st.Nodes[i]
		}
	}
	if departed == nil {
		t.Fatal("removed node absent from Stats")
	}
	if departed.Node != 0 || departed.Decisions == 0 {
		t.Errorf("departed stats %+v, want node 0 with decisions", departed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLocalRemoveGuards pins RemoveNode's refusals: unknown members and
// the last member.
func TestLocalRemoveGuards(t *testing.T) {
	l, err := NewLocal(LocalConfig{Nodes: 1, Engine: serve.Config{Shards: 1, QueueDepth: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.RemoveNode(5); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Errorf("RemoveNode(5) = %v, want not-a-member", err)
	}
	if err := l.RemoveNode(0); err == nil || !strings.Contains(err.Error(), "last member") {
		t.Errorf("RemoveNode(0) on sole member = %v, want last-member refusal", err)
	}
}

// TestTCPMembershipEquivalence is the acceptance chaos pin over real
// sockets: a node leaves and a new one joins mid-replay (state migrating
// over the wire control plane both times) and every terminal's decision
// sequence stays byte-identical to the static single-engine run — no
// terminal state lost, duplicated, or interleaved.
func TestTCPMembershipEquivalence(t *testing.T) {
	reports, terminals := paperGridReports(t, []float64{0, 30, 50}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)

	nodeCfg := serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	addr0, stop0 := startNodeDaemon(t, nodeCfg)
	defer stop0()
	addr1, stop1 := startNodeDaemon(t, nodeCfg)
	defer stop1()
	addr2, stop2 := startNodeDaemon(t, nodeCfg)
	defer stop2()

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	router, err := DialTCP(TCPConfig{
		Addrs: []string{addr0, addr1},
		OnDecision: func(_ int, o serve.Outcome) {
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
		OnError: func(node int, err error) { t.Errorf("node %d: %v", node, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	replayChunks(t, router.SubmitBatch, reports, 3, func(chunk int) {
		switch chunk {
		case 1:
			// Join: node 2 takes its arcs from both incumbents.
			id, err := router.AddNode(addr2)
			if err != nil {
				t.Fatal(err)
			}
			if id != 2 {
				t.Fatalf("AddNode ID %d, want 2", id)
			}
		case 2:
			// Leave: node 0 hands everything it holds to nodes 1 and 2.
			if err := router.RemoveNode(0); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := router.Flush(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := router.Members(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("final members %v, want [1 2]", got)
	}
	checkSequencesEqual(t, "tcp/elastic", rec, ref)

	st := router.Stats()
	tot := st.Totals()
	if tot.Submitted != uint64(len(reports)) || tot.Decisions != uint64(len(reports)) || tot.Lost != 0 {
		t.Errorf("totals %+v, want submitted=decisions=%d lost=0", tot, len(reports))
	}
	var sawDeparted bool
	for _, ns := range st.Nodes {
		if ns.Departed && ns.Node == 0 {
			sawDeparted = true
		}
	}
	if !sawDeparted {
		t.Error("departed node 0 absent from Stats")
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPNodeKillRestartRecovers is crash recovery end to end: a node is
// killed outright (listener and connections torn down), restarted on the
// same address from its whole-node snapshot, and the router's client
// redials and resumes — every terminal's sequence byte-identical to the
// static single-engine run, with zero reports lost.
func TestTCPNodeKillRestartRecovers(t *testing.T) {
	reports, terminals := paperGridReports(t, []float64{0, 30}, nil)
	single := serve.Config{Shards: 4, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	ref := runSingleEngine(t, single, reports, terminals)

	nodeCfg := serve.Config{Shards: 2, QueueDepth: 64, Compiled: true, PingPongWindowKm: sim.DefaultPingPongWindowKm}
	addr0, stop0 := startNodeDaemon(t, nodeCfg)
	defer stop0()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng1, addr1, stop1 := startNodeDaemonOn(t, ln1, nodeCfg)

	rec := newOutcomeRecorder(terminals)
	var recMu sync.Mutex
	router, err := DialTCP(TCPConfig{
		Addrs:      []string{addr0, addr1},
		RedialWait: 10 * time.Millisecond,
		MaxRedials: 200,
		OnDecision: func(_ int, o serve.Outcome) {
			recMu.Lock()
			rec.record(o)
			recMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	mid := len(reports) / 2
	replayChunks(t, router.SubmitBatch, reports[:mid], 1, nil)
	// Quiesce so the snapshot captures every decision the client has seen.
	if err := router.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	eng1.Flush()
	snaps, err := eng1.SnapshotTerminals()
	if err != nil {
		t.Fatal(err)
	}

	// Kill node 1: listener closed, connections severed, engine gone.
	stop1()

	// Restart on the SAME address from the snapshot (hoserve -restore).
	var ln2 net.Listener
	for attempt := 0; ; attempt++ {
		ln2, err = net.Listen("tcp", addr1)
		if err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("rebinding %s: %v", addr1, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	eng2, _, stop2 := startNodeDaemonOn(t, ln2, nodeCfg)
	defer stop2()
	if err := eng2.RestoreSnapshots(snaps); err != nil {
		t.Fatal(err)
	}

	// Wait for the client to re-establish before resuming: a line written
	// into the severed socket before the client notices the EOF is
	// correctly ledgered as lost (no retransmit on the wire), and this
	// test wants the zero-loss recovery path, not the loss-accounting one.
	c1 := router.Client(1)
	reconDeadline := time.Now().Add(10 * time.Second)
	for c1.Counters().Reconnects == 0 {
		if time.Now().After(reconDeadline) {
			t.Fatal("client never reconnected to the restarted node")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The node client redials on its own; sends retry through the redial
	// window (the send queue may fill while the connection is down).
	deadline := time.Now().Add(10 * time.Second)
	for i := mid; i < len(reports); i += 97 {
		end := i + 97
		if end > len(reports) {
			end = len(reports)
		}
		for {
			err := router.SubmitBatch(reports[i:end])
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("submitting after restart: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := router.Flush(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkSequencesEqual(t, "tcp/kill-restart", rec, ref)

	tot := router.Stats().Totals()
	if tot.Lost != 0 {
		t.Errorf("lost %d reports across the kill/restart; snapshot recovery must not shed", tot.Lost)
	}
	if tot.Reconnects == 0 {
		t.Error("no reconnects recorded; the kill never exercised the redial path")
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
}
