package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve"
)

// TCPConfig configures a TCP cluster router: one serve.NodeClient per
// remote hoserve daemon, partitioned by the consistent-hash ring.
type TCPConfig struct {
	// Addrs are the node daemons' dial addresses; the ring member index
	// is the position in this slice, so the address order is part of the
	// cluster identity (reordering remaps terminals).
	Addrs []string
	// VirtualNodes is the ring's per-member virtual node count (0:
	// DefaultVirtualNodes).
	VirtualNodes int
	// QueueDepth bounds each node's send queue in encoded batch lines (0:
	// serve.DefaultNodeQueueDepth).  A full queue is that node's
	// backpressure signal.
	QueueDepth int
	// RedialWait/MaxRedials/CloseGrace tune each node client's
	// reconnection and bounded teardown (0: serve defaults).
	RedialWait time.Duration
	MaxRedials int
	CloseGrace time.Duration
	// OnDecision, when non-nil, receives every outcome with the deciding
	// node's index, on that node client's reader goroutine.
	OnDecision func(node int, o serve.Outcome)
	// OnError receives per-node failures: line-level remote rejects,
	// lost-report notices, connection losses.  Routing never drops
	// reports silently — when a connection dies, the in-flight count is
	// surfaced here and in Stats().Lost.
	OnError func(node int, err error)
}

// TCP is the multi-process Router backend: it speaks the existing
// newline-JSON wire protocol to remote hoserve daemons, with a dedicated
// ordered connection and writer per node, batch coalescing per
// destination, per-node backpressure and reconnect-with-error-surfacing
// (see serve.NodeClient for the delivery contract).
type TCP struct {
	ring    *Ring
	clients []*serve.NodeClient

	scatter sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// DialTCP connects to every node daemon and returns the router.  All
// dials are synchronous: a cluster with an unreachable member fails
// construction rather than shedding that member's terminals later.
func DialTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	ring, err := NewRing(len(cfg.Addrs), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	t := &TCP{ring: ring, clients: make([]*serve.NodeClient, len(cfg.Addrs))}
	t.scatter.New = func() any {
		bufs := make([][]serve.Report, len(cfg.Addrs))
		return &bufs
	}
	for n, addr := range cfg.Addrs {
		node := n
		ccfg := serve.NodeClientConfig{
			QueueDepth: cfg.QueueDepth,
			RedialWait: cfg.RedialWait,
			MaxRedials: cfg.MaxRedials,
			CloseGrace: cfg.CloseGrace,
		}
		if cfg.OnDecision != nil {
			ccfg.OnOutcome = func(o serve.Outcome) { cfg.OnDecision(node, o) }
		}
		if cfg.OnError != nil {
			ccfg.OnError = func(err error) { cfg.OnError(node, err) }
		}
		c, err := serve.DialNode(addr, ccfg)
		if err != nil {
			for _, dialed := range t.clients[:n] {
				dialed.Close()
			}
			return nil, fmt.Errorf("cluster: node %d: %w", n, err)
		}
		t.clients[n] = c
	}
	return t, nil
}

// NumNodes implements Router.
func (t *TCP) NumNodes() int { return t.ring.Nodes() }

// NodeOf implements Router.
func (t *TCP) NodeOf(id serve.TerminalID) int { return t.ring.NodeOf(id) }

// Client returns node n's client (read-only use: counters, address).
func (t *TCP) Client(n int) *serve.NodeClient { return t.clients[n] }

// Submit implements Router.
func (t *TCP) Submit(r serve.Report) error {
	n := t.ring.NodeOf(r.Terminal)
	if err := t.clients[n].Send([]serve.Report{r}); err != nil {
		return fmt.Errorf("cluster: node %d: %w", n, err)
	}
	return nil
}

// SubmitBatch implements Router: reports scatter into per-node sub-slices
// and each destination gets one coalesced wire line, blocking on that
// node's send queue under backpressure.
func (t *TCP) SubmitBatch(rs []serve.Report) error {
	return t.submitBatch(rs, func(n int, sub []serve.Report) error {
		return t.clients[n].Send(sub)
	})
}

// TrySubmitBatch implements Router: like SubmitBatch but a full node
// queue sheds that node's sub-batch and fails with *BacklogError instead
// of blocking; other nodes' sub-batches are still accepted.
func (t *TCP) TrySubmitBatch(rs []serve.Report) error {
	shed := 0
	firstNode := -1
	err := t.submitBatch(rs, func(n int, sub []serve.Report) error {
		err := t.clients[n].TrySend(sub)
		if errors.Is(err, serve.ErrBacklogged) {
			shed += len(sub)
			if firstNode < 0 {
				firstNode = n
			}
			return nil
		}
		return err
	})
	if err != nil {
		return err
	}
	if shed > 0 {
		return &BacklogError{Node: firstNode, Shed: shed}
	}
	return nil
}

func (t *TCP) submitBatch(rs []serve.Report, send func(n int, sub []serve.Report) error) error {
	if len(rs) == 0 {
		return nil
	}
	if t.ring.Nodes() == 1 {
		if err := send(0, rs); err != nil {
			return fmt.Errorf("cluster: node 0: %w", err)
		}
		return nil
	}
	bufs := t.scatter.Get().(*[][]serve.Report)
	defer t.putScatter(bufs)
	for i := range rs {
		n := t.ring.NodeOf(rs[i].Terminal)
		(*bufs)[n] = append((*bufs)[n], rs[i])
	}
	for n, sub := range *bufs {
		if len(sub) == 0 {
			continue
		}
		if err := send(n, sub); err != nil {
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	return nil
}

func (t *TCP) putScatter(bufs *[][]serve.Report) {
	for i := range *bufs {
		(*bufs)[i] = (*bufs)[i][:0]
	}
	t.scatter.Put(bufs)
}

// Flush implements Router: waits until every node's ledger balances
// (delivered + lost ≥ submitted) within the shared timeout.  Node
// failures are returned joined, not hidden.
func (t *TCP) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var errs []error
	for n, c := range t.clients {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if err := c.Flush(remaining); err != nil {
			errs = append(errs, fmt.Errorf("cluster: node %d: %w", n, err))
		}
	}
	return errors.Join(errs...)
}

// Stats implements Router from the per-node client ledgers.  Terminal
// counts are not carried on the wire and read 0.
func (t *TCP) Stats() Stats {
	st := Stats{Nodes: make([]NodeStats, len(t.clients))}
	for n, c := range t.clients {
		cnt := c.Counters()
		st.Nodes[n] = NodeStats{
			Node:       n,
			Addr:       c.Addr(),
			Submitted:  cnt.Submitted,
			Decisions:  cnt.Delivered,
			Lost:       cnt.Lost,
			Handovers:  cnt.Handovers,
			PingPongs:  cnt.PingPongs,
			Errors:     cnt.RemoteErrors,
			QueueDepth: cnt.QueuedLines,
		}
	}
	return st
}

// Close implements Router: every node client drains its queue to the
// node, reads the remaining decisions and closes.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		var errs []error
		for n, c := range t.clients {
			if err := c.Close(); err != nil && !errors.Is(err, serve.ErrClientClosed) {
				errs = append(errs, fmt.Errorf("cluster: node %d: %w", n, err))
			}
		}
		t.closeErr = errors.Join(errs...)
	})
	return t.closeErr
}
