package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// DefaultMigrateTimeout bounds each extract/restore control exchange
// during a TCP membership change.
const DefaultMigrateTimeout = 30 * time.Second

// TCPConfig configures a TCP cluster router: one serve.NodeClient per
// remote hoserve daemon, partitioned by the consistent-hash ring.
type TCPConfig struct {
	// Addrs are the node daemons' dial addresses; the ring member ID is
	// the position in this slice, so the address order is part of the
	// cluster identity (reordering remaps terminals).  AddNode grows the
	// member set with fresh IDs past the initial ones.
	Addrs []string
	// VirtualNodes is the ring's per-member virtual node count (0:
	// DefaultVirtualNodes).
	VirtualNodes int
	// QueueDepth bounds each node's send queue in encoded batch lines (0:
	// serve.DefaultNodeQueueDepth).  A full queue is that node's
	// backpressure signal.
	QueueDepth int
	// RedialWait/RedialMaxWait/MaxRedials/CloseGrace tune each node
	// client's reconnection backoff and bounded teardown (0: serve
	// defaults).
	RedialWait    time.Duration
	RedialMaxWait time.Duration
	MaxRedials    int
	CloseGrace    time.Duration
	// MigrateTimeout bounds each node's extract/restore exchange during
	// AddNode/RemoveNode (0: DefaultMigrateTimeout).
	MigrateTimeout time.Duration
	// OnDecision, when non-nil, receives every outcome with the deciding
	// node's ID, on that node client's reader goroutine.
	OnDecision func(node int, o serve.Outcome)
	// OnError receives per-node failures: line-level remote rejects,
	// lost-report notices, connection losses.  Routing never drops
	// reports silently — when a connection dies, the in-flight count is
	// surfaced here and in Stats().Lost.
	OnError func(node int, err error)
	// Dial, when non-nil, replaces net.Dial for every node client (fault
	// injection, custom transports).
	Dial func(addr string) (net.Conn, error)
}

// tcpNode is one remote member: its client plus identity.
type tcpNode struct {
	id     int
	addr   string
	client *serve.NodeClient
}

// TCP is the multi-process Router backend: it speaks the existing
// newline-JSON wire protocol to remote hoserve daemons, with a dedicated
// ordered connection and writer per node, batch coalescing per
// destination, per-node backpressure and reconnect-with-error-surfacing
// (see serve.NodeClient for the delivery contract).
//
// Membership is elastic when the daemons serve the snapshot control
// plane (hoserve does): AddNode/RemoveNode move exactly the terminals
// whose ring arc changed, extracting their decision state from the old
// owner and restoring it bit-faithfully into the new one, so decision
// sequences continue across the migration as if nothing moved.
type TCP struct {
	cfg TCPConfig

	// memMu orders membership changes against routing, exactly as in
	// Local: submits hold the read side, Add/RemoveNode the write side.
	memMu   sync.RWMutex
	ring    *Ring
	nodes   map[int]*tcpNode
	nextID  int
	retired []NodeStats

	scatter sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// DialTCP connects to every node daemon and returns the router.  All
// dials are synchronous: a cluster with an unreachable member fails
// construction rather than shedding that member's terminals later.
func DialTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	if cfg.MigrateTimeout == 0 {
		cfg.MigrateTimeout = DefaultMigrateTimeout
	}
	ring, err := NewRing(len(cfg.Addrs), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		cfg:    cfg,
		ring:   ring,
		nodes:  make(map[int]*tcpNode, len(cfg.Addrs)),
		nextID: len(cfg.Addrs),
	}
	t.scatter.New = func() any { return &map[int][]serve.Report{} }
	for n, addr := range cfg.Addrs {
		node, err := t.dialNode(n, addr)
		if err != nil {
			for _, dialed := range t.sortedNodes() {
				dialed.client.Close()
			}
			return nil, err
		}
		t.nodes[n] = node
	}
	return t, nil
}

// dialNode dials one member daemon (does not link it into the member
// map).
func (t *TCP) dialNode(id int, addr string) (*tcpNode, error) {
	ccfg := serve.NodeClientConfig{
		QueueDepth:    t.cfg.QueueDepth,
		RedialWait:    t.cfg.RedialWait,
		RedialMaxWait: t.cfg.RedialMaxWait,
		MaxRedials:    t.cfg.MaxRedials,
		CloseGrace:    t.cfg.CloseGrace,
	}
	if t.cfg.OnDecision != nil {
		ccfg.OnOutcome = func(o serve.Outcome) { t.cfg.OnDecision(id, o) }
	}
	if t.cfg.OnError != nil {
		ccfg.OnError = func(err error) { t.cfg.OnError(id, err) }
	}
	if t.cfg.Dial != nil {
		ccfg.Dial = t.cfg.Dial
	}
	c, err := serve.DialNode(addr, ccfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return &tcpNode{id: id, addr: addr, client: c}, nil
}

// NumNodes implements Router.
func (t *TCP) NumNodes() int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.Nodes()
}

// Members returns the live member IDs in ascending order.
func (t *TCP) Members() []int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.Members()
}

// NodeOf implements Router.
func (t *TCP) NodeOf(id serve.TerminalID) int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.NodeOf(id)
}

// Client returns member id's client (read-only use: counters, address),
// or nil after the member departed.
func (t *TCP) Client(id int) *serve.NodeClient {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	if n, ok := t.nodes[id]; ok {
		return n.client
	}
	return nil
}

// AddNode dials addr as a fresh member, migrates to it exactly the
// terminals the grown ring assigns to it (each current member extracts
// and ships its share over the snapshot control plane), and routes to
// it from then on.  Returns the new member's ID.  Submissions block for
// the duration; every moved terminal resumes its decision sequence on
// the new node where it stopped on the old one.
func (t *TCP) AddNode(addr string) (int, error) {
	t.memMu.Lock()
	defer t.memMu.Unlock()
	id := t.nextID
	newMembers := append(t.ring.Members(), id)
	newRing, err := NewRingMembers(newMembers, t.cfg.VirtualNodes)
	if err != nil {
		return 0, err
	}
	node, err := t.dialNode(id, addr)
	if err != nil {
		return 0, err
	}
	vnodes := t.cfg.VirtualNodes
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	// Each current owner computes the new ring itself (from the member
	// list on the wire) and extracts the terminals it loses to id.
	for _, src := range t.sortedNodes() {
		snaps, err := src.client.Extract(newMembers, vnodes, src.id, t.cfg.MigrateTimeout)
		if err != nil {
			node.client.Close()
			return 0, fmt.Errorf("cluster: extracting for new node %d from node %d: %w", id, src.id, err)
		}
		if len(snaps) == 0 {
			continue
		}
		if err := node.client.Restore(snaps, t.cfg.MigrateTimeout); err != nil {
			// The source daemon restores extracted state back on a failed
			// delivery only when ITS sink died; here delivery to the new
			// node failed, so hand the snapshots back explicitly.
			if rerr := src.client.Restore(snaps, t.cfg.MigrateTimeout); rerr != nil {
				node.client.Close()
				return 0, errors.Join(
					fmt.Errorf("cluster: restoring into new node %d: %w", id, err),
					fmt.Errorf("cluster: rollback to node %d also failed: %w", src.id, rerr))
			}
			node.client.Close()
			return 0, fmt.Errorf("cluster: restoring into new node %d: %w", id, err)
		}
	}
	t.ring = newRing
	t.nodes[id] = node
	t.nextID = id + 1
	return id, nil
}

// RemoveNode drains member id, migrates every terminal it owns to the
// members the shrunk ring assigns them to, freezes the departing node's
// final counters into Stats (Departed), and closes its client.
// Submissions block for the duration.
func (t *TCP) RemoveNode(id int) error {
	t.memMu.Lock()
	defer t.memMu.Unlock()
	node, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("cluster: node %d is not a member", id)
	}
	if len(t.nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last member")
	}
	members := t.ring.Members()
	rest := members[:0]
	for _, m := range members {
		if m != id {
			rest = append(rest, m)
		}
	}
	newRing, err := NewRingMembers(rest, t.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	vnodes := t.cfg.VirtualNodes
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	// The departing member is not in the remaining set, which the daemon
	// extract hook reads as "extract everything I hold".
	moved, err := node.client.Extract(rest, vnodes, id, t.cfg.MigrateTimeout)
	if err != nil {
		return fmt.Errorf("cluster: extracting node %d: %w", id, err)
	}
	byDest := map[int][]serve.TerminalSnapshot{}
	for _, s := range moved {
		d := newRing.NodeOf(s.Terminal)
		byDest[d] = append(byDest[d], s)
	}
	var delivered []int
	for _, d := range sortedKeys(byDest) {
		if err := t.nodes[d].client.Restore(byDest[d], t.cfg.MigrateTimeout); err != nil {
			// Roll back: reclaim from the already-restored destinations the
			// terminals the OLD ring (which still includes the departing
			// member) does not assign them, then return everything to the
			// departing member.  The membership change does not happen.
			rerrs := []error{fmt.Errorf("cluster: restoring into node %d: %w", d, err)}
			returned := make([]serve.TerminalSnapshot, 0, len(moved))
			for _, s := range moved {
				if newRing.NodeOf(s.Terminal) == d || !contains(delivered, newRing.NodeOf(s.Terminal)) {
					returned = append(returned, s)
				}
			}
			for _, landed := range delivered {
				back, xerr := t.nodes[landed].client.Extract(members, vnodes, landed, t.cfg.MigrateTimeout)
				if xerr != nil {
					rerrs = append(rerrs, fmt.Errorf("cluster: reclaiming from node %d: %w", landed, xerr))
					continue
				}
				returned = append(returned, back...)
			}
			if rerr := node.client.Restore(returned, t.cfg.MigrateTimeout); rerr != nil {
				rerrs = append(rerrs, fmt.Errorf("cluster: rollback to node %d failed: %w", id, rerr))
			}
			return errors.Join(rerrs...)
		}
		delivered = append(delivered, d)
	}
	st := t.nodeStats(node)
	st.Departed = true
	t.retired = append(t.retired, st)
	delete(t.nodes, id)
	t.ring = newRing
	if err := node.client.Close(); err != nil && !errors.Is(err, serve.ErrClientClosed) {
		return fmt.Errorf("cluster: closing node %d: %w", id, err)
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sortedNodes returns the live members in ascending ID order.
func (t *TCP) sortedNodes() []*tcpNode {
	out := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Submit implements Router.
func (t *TCP) Submit(r serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	n := t.ring.NodeOf(r.Terminal)
	if err := t.nodes[n].client.Send([]serve.Report{r}); err != nil {
		return fmt.Errorf("cluster: node %d: %w", n, err)
	}
	return nil
}

// SubmitBatch implements Router: reports scatter into per-node sub-slices
// and each destination gets one coalesced wire line, blocking on that
// node's send queue under backpressure.
func (t *TCP) SubmitBatch(rs []serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.submitBatch(rs, func(n int, sub []serve.Report) error {
		return t.nodes[n].client.Send(sub)
	})
}

// TrySubmitBatch implements Router: like SubmitBatch but a full node
// queue sheds that node's sub-batch and fails with *BacklogError instead
// of blocking; other nodes' sub-batches are still accepted.
func (t *TCP) TrySubmitBatch(rs []serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	shed := 0
	firstNode := -1
	err := t.submitBatch(rs, func(n int, sub []serve.Report) error {
		err := t.nodes[n].client.TrySend(sub)
		if errors.Is(err, serve.ErrBacklogged) {
			shed += len(sub)
			if firstNode < 0 {
				firstNode = n
			}
			return nil
		}
		return err
	})
	if err != nil {
		return err
	}
	if shed > 0 {
		return &BacklogError{Node: firstNode, Shed: shed}
	}
	return nil
}

// submitBatch scatters under a held read lock.
func (t *TCP) submitBatch(rs []serve.Report, send func(n int, sub []serve.Report) error) error {
	if len(rs) == 0 {
		return nil
	}
	if t.ring.Nodes() == 1 {
		sole := t.ring.Members()[0]
		if err := send(sole, rs); err != nil {
			return fmt.Errorf("cluster: node %d: %w", sole, err)
		}
		return nil
	}
	bufs := t.scatter.Get().(*map[int][]serve.Report)
	defer t.putScatter(bufs)
	for i := range rs {
		n := t.ring.NodeOf(rs[i].Terminal)
		(*bufs)[n] = append((*bufs)[n], rs[i])
	}
	for _, n := range sortedKeys(*bufs) {
		sub := (*bufs)[n]
		if len(sub) == 0 {
			continue
		}
		if err := send(n, sub); err != nil {
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	return nil
}

func (t *TCP) putScatter(bufs *map[int][]serve.Report) {
	for n, sub := range *bufs {
		(*bufs)[n] = sub[:0]
	}
	t.scatter.Put(bufs)
}

// Flush implements Router: waits until every node's ledger balances
// (delivered + lost ≥ submitted) within the shared timeout.  Node
// failures are returned joined, not hidden.
func (t *TCP) Flush(timeout time.Duration) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	deadline := time.Now().Add(timeout)
	var errs []error
	for _, n := range t.sortedNodes() {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if err := n.client.Flush(remaining); err != nil {
			errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.id, err))
		}
	}
	return errors.Join(errs...)
}

// nodeStats snapshots one live member's client ledger.
func (t *TCP) nodeStats(n *tcpNode) NodeStats {
	cnt := n.client.Counters()
	return NodeStats{
		Node:       n.id,
		Addr:       n.addr,
		Submitted:  cnt.Submitted,
		Decisions:  cnt.Delivered,
		Lost:       cnt.Lost,
		Handovers:  cnt.Handovers,
		PingPongs:  cnt.PingPongs,
		Errors:     cnt.RemoteErrors,
		Reconnects: cnt.Reconnects,
		QueueDepth: cnt.QueuedLines,
	}
}

// Stats implements Router from the per-node client ledgers.  Terminal
// counts are not carried on the wire and read 0.  Departed members
// appear after the live ones with frozen counters.
func (t *TCP) Stats() Stats {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	st := Stats{Nodes: make([]NodeStats, 0, len(t.nodes)+len(t.retired))}
	for _, n := range t.sortedNodes() {
		st.Nodes = append(st.Nodes, t.nodeStats(n))
	}
	st.Nodes = append(st.Nodes, t.retired...)
	return st
}

// Close implements Router: every node client drains its queue to the
// node, reads the remaining decisions and closes.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.memMu.Lock()
		defer t.memMu.Unlock()
		var errs []error
		for _, n := range t.sortedNodes() {
			if err := n.client.Close(); err != nil && !errors.Is(err, serve.ErrClientClosed) {
				errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.id, err))
			}
		}
		t.closeErr = errors.Join(errs...)
	})
	return t.closeErr
}
