package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// DefaultMigrateTimeout bounds each extract/restore control exchange
// during a TCP membership change.
const DefaultMigrateTimeout = 30 * time.Second

// TCPConfig configures a TCP cluster router: one serve.NodeClient per
// remote hoserve daemon, partitioned by the consistent-hash ring.
type TCPConfig struct {
	// Addrs are the node daemons' dial addresses; the ring member ID is
	// the position in this slice, so the address order is part of the
	// cluster identity (reordering remaps terminals).  AddNode grows the
	// member set with fresh IDs past the initial ones.
	Addrs []string
	// VirtualNodes is the ring's per-member virtual node count (0:
	// DefaultVirtualNodes).
	VirtualNodes int
	// QueueDepth bounds each node's send queue in encoded batch lines (0:
	// serve.DefaultNodeQueueDepth).  A full queue is that node's
	// backpressure signal.
	QueueDepth int
	// RedialWait/RedialMaxWait/MaxRedials/CloseGrace tune each node
	// client's reconnection backoff and bounded teardown (0: serve
	// defaults).
	RedialWait    time.Duration
	RedialMaxWait time.Duration
	MaxRedials    int
	CloseGrace    time.Duration
	// MigrateTimeout bounds each node's extract/restore exchange during
	// AddNode/RemoveNode (0: DefaultMigrateTimeout).
	MigrateTimeout time.Duration
	// Journal, when non-empty, is the migration intent journal path.
	// Membership changes are journaled before any state moves, and a
	// router restarted on the same journal recovers both the committed
	// membership (which then supersedes Addrs) and any half-done change —
	// completing or rolling it back from the daemons' state.  Empty
	// disables crash-safe membership (changes still work; a router killed
	// mid-change strands the moving terminals).
	Journal string
	// OrphanDir is where rollback double-failures quarantine terminal
	// snapshots that could be delivered to no live owner ("": the OS temp
	// directory).
	OrphanDir string
	// MigrateBufferCap bounds the reports buffered for moving terminals
	// during a membership change; TrySubmitBatch sheds past it (0:
	// DefaultMigrateBufferCap).
	MigrateBufferCap int
	// OnDecision, when non-nil, receives every outcome with the deciding
	// node's ID, on that node client's reader goroutine.
	OnDecision func(node int, o serve.Outcome)
	// OnError receives per-node failures: line-level remote rejects,
	// lost-report notices, connection losses.  Routing never drops
	// reports silently — when a connection dies, the in-flight count is
	// surfaced here and in Stats().Lost.
	OnError func(node int, err error)
	// Dial, when non-nil, replaces net.Dial for every node client (fault
	// injection, custom transports).
	Dial func(addr string) (net.Conn, error)
	// SchemaHash is the feature-schema hash every node client announces
	// in its hello line (serve.NodeClientConfig.SchemaHash).  Member
	// daemons serving a different schema reject the connection, so a
	// mixed-schema cluster fails at dial time instead of silently
	// mis-scoring reports (0: not announced; daemons then check the
	// paper schema).
	SchemaHash uint64
}

// tcpNode is one remote member: its client plus identity.
type tcpNode struct {
	id     int
	addr   string
	client *serve.NodeClient
}

// TCP is the multi-process Router backend: it speaks the existing
// newline-JSON wire protocol to remote hoserve daemons, with a dedicated
// ordered connection and writer per node, batch coalescing per
// destination, per-node backpressure and reconnect-with-error-surfacing
// (see serve.NodeClient for the delivery contract).
//
// Membership is elastic when the daemons serve the snapshot control
// plane (hoserve does): AddNode/RemoveNode move exactly the terminals
// whose ring arc changed in two overlapped phases (copy, then release
// after a cutover record), so decision sequences continue across the
// migration as if nothing moved — and submissions keep flowing while it
// runs: unmoved arcs route normally, moving arcs buffer until cutover.
// With a Journal configured the change is also crash-safe; see
// TCPConfig.Journal.
type TCP struct {
	cfg     TCPConfig
	journal *Journal

	// changeMu serializes membership changes — one migration at a time.
	// memMu orders the brief ring mutations against routing: submits
	// hold the read side; only the short prepare and cutover steps take
	// the write side.  The copy/restore/release window itself runs under
	// neither — that is the two-phase overlap.
	changeMu sync.Mutex
	memMu    sync.RWMutex
	ring     *Ring
	nodes    map[int]*tcpNode
	nextID   int
	retired  []NodeStats
	// mig is non-nil while a membership change is in flight; submit
	// paths consult it under the read lock (see migration).
	mig     *migration
	migStat migTracker

	// crashPoint is a test-only hook: returning true at a named phase
	// boundary abandons the migration exactly as a killed router would —
	// no rollback, no journal truncation — so recovery tests can replay
	// the journal from a realistic half-done state.
	crashPoint func(phase string) bool

	scatter sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// vnodes is the effective per-member virtual-node count.
func (t *TCP) vnodes() int {
	if t.cfg.VirtualNodes != 0 {
		return t.cfg.VirtualNodes
	}
	return DefaultVirtualNodes
}

// crashed consults the test-only crash hook at a phase boundary.
func (t *TCP) crashed(phase string) bool {
	return t.crashPoint != nil && t.crashPoint(phase)
}

// DialTCP connects to every node daemon and returns the router.  All
// dials are synchronous: a cluster with an unreachable member fails
// construction rather than shedding that member's terminals later.
//
// With cfg.Journal set, a checkpoint in the journal supersedes
// cfg.Addrs — runtime membership changes survive a router restart — and
// a pending intent (a change a previous router died inside) is replayed
// before the router serves: rolled back when it never cut over, rolled
// forward when it did.  Either way the journal ends checkpointed to the
// recovered membership.
func DialTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.MigrateTimeout == 0 {
		cfg.MigrateTimeout = DefaultMigrateTimeout
	}
	t := &TCP{cfg: cfg, nodes: make(map[int]*tcpNode, len(cfg.Addrs))}
	t.scatter.New = func() any { return &map[int][]serve.Report{} }

	members := make([]int, 0, len(cfg.Addrs))
	addrs := make(map[int]string, len(cfg.Addrs))
	for i, a := range cfg.Addrs {
		members = append(members, i)
		addrs[i] = a
	}
	t.nextID = len(cfg.Addrs)

	var pending JournalState
	if cfg.Journal != "" {
		j, st, err := OpenJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		t.journal = j
		pending = st
		if st.HasCheckpoint {
			members = st.Members
			addrs = st.Addrs
			if st.NextID > t.nextID {
				t.nextID = st.NextID
			}
		} else if st.Intent != nil {
			t.journal.Close()
			return nil, fmt.Errorf("cluster: journal %s carries an intent but no checkpoint; refusing to guess the base membership", cfg.Journal)
		}
	}
	fail := func(err error) (*TCP, error) {
		for _, dialed := range t.sortedNodes() {
			dialed.client.Close()
		}
		if t.journal != nil {
			t.journal.Close()
		}
		return nil, err
	}
	if len(members) == 0 {
		return fail(fmt.Errorf("cluster: no node addresses"))
	}
	ring, err := NewRingMembers(members, cfg.VirtualNodes)
	if err != nil {
		return fail(err)
	}
	t.ring = ring
	for _, m := range members {
		if m >= t.nextID {
			t.nextID = m + 1
		}
		addr, ok := addrs[m]
		if !ok {
			return fail(fmt.Errorf("cluster: journal names member %d with no address", m))
		}
		node, err := t.dialNode(m, addr)
		if err != nil {
			if in := pending.Intent; in != nil && pending.Cutover && in.Op == "removenode" && in.Node == m {
				// The member was mid-removal and its change committed; its
				// daemon may legitimately be gone already.  Recovery below
				// finishes dropping it from the ring.
				continue
			}
			return fail(err)
		}
		t.nodes[m] = node
	}
	if pending.Intent != nil {
		if err := t.recoverIntent(pending); err != nil {
			return fail(fmt.Errorf("cluster: journal replay: %w", err))
		}
	}
	if err := t.checkpoint(); err != nil {
		return fail(err)
	}
	return t, nil
}

// checkpoint rewrites the journal (if any) to the current membership,
// truncating any completed intent.
func (t *TCP) checkpoint() error {
	if t.journal == nil {
		return nil
	}
	t.memMu.RLock()
	members := t.ring.Members()
	addrs := make(map[int]string, len(t.nodes))
	for id, n := range t.nodes {
		addrs[id] = n.addr
	}
	next := t.nextID
	t.memMu.RUnlock()
	return t.journal.Checkpoint(members, addrs, next)
}

// journalIntent durably records a change before any state moves; with no
// journal it is a no-op (the change then simply is not crash-safe).
func (t *TCP) journalIntent(rec IntentRecord) error {
	if t.journal == nil {
		return nil
	}
	if err := t.journal.Intent(rec); err != nil {
		return fmt.Errorf("cluster: journaling %s intent: %w", rec.Op, err)
	}
	return nil
}

// journalPhase records best-effort progress — recovery does not depend
// on phase records (replay is idempotent), so a failed append must not
// fail the migration.
func (t *TCP) journalPhase(rec PhaseRecord) {
	if t.journal != nil {
		t.journal.Phase(rec)
	}
}

// journalCutover durably commits the in-flight change.  Unlike phase
// records its failure fails the migration: without the record, a crash
// would roll back a change whose release already ran.
func (t *TCP) journalCutover() error {
	if t.journal == nil {
		return nil
	}
	return t.journal.Cutover()
}

// dialNode dials one member daemon (does not link it into the member
// map).
func (t *TCP) dialNode(id int, addr string) (*tcpNode, error) {
	ccfg := serve.NodeClientConfig{
		QueueDepth:    t.cfg.QueueDepth,
		RedialWait:    t.cfg.RedialWait,
		RedialMaxWait: t.cfg.RedialMaxWait,
		MaxRedials:    t.cfg.MaxRedials,
		CloseGrace:    t.cfg.CloseGrace,
		SchemaHash:    t.cfg.SchemaHash,
	}
	if t.cfg.OnDecision != nil {
		ccfg.OnOutcome = func(o serve.Outcome) { t.cfg.OnDecision(id, o) }
	}
	if t.cfg.OnError != nil {
		ccfg.OnError = func(err error) { t.cfg.OnError(id, err) }
	}
	if t.cfg.Dial != nil {
		ccfg.Dial = t.cfg.Dial
	}
	c, err := serve.DialNode(addr, ccfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return &tcpNode{id: id, addr: addr, client: c}, nil
}

// NumNodes implements Router.
func (t *TCP) NumNodes() int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.Nodes()
}

// Members returns the live member IDs in ascending order.
func (t *TCP) Members() []int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.Members()
}

// NodeOf implements Router.
func (t *TCP) NodeOf(id serve.TerminalID) int {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	return t.ring.NodeOf(id)
}

// Client returns member id's client (read-only use: counters, address),
// or nil after the member departed.
func (t *TCP) Client(id int) *serve.NodeClient {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	if n, ok := t.nodes[id]; ok {
		return n.client
	}
	return nil
}

// beginMigration installs the route-to-both window: from here until
// cutover (or abort), submissions for moving terminals buffer instead of
// routing, and everything else routes under the old ring.
func (t *TCP) beginMigration(op string, node int, oldRing, newRing *Ring) {
	bcap := t.cfg.MigrateBufferCap
	if bcap == 0 {
		bcap = DefaultMigrateBufferCap
	}
	m := &migration{oldRing: oldRing, newRing: newRing, cap: bcap}
	t.memMu.Lock()
	t.mig = m
	t.memMu.Unlock()
	t.migStat.begin(op, node)
}

// abortMigration dismantles the window after a rolled-back change: the
// buffered moving-terminal reports are released under the UNCHANGED old
// ring (their owners kept — or got back — their state).
func (t *TCP) abortMigration() error {
	t.memMu.Lock()
	buf := t.mig.take()
	t.mig = nil
	err := t.submitBatch(buf, func(n int, sub []serve.Report) error {
		return t.nodes[n].client.Send(sub)
	})
	t.memMu.Unlock()
	t.migStat.end()
	if err != nil {
		return fmt.Errorf("cluster: resubmitting %d reports buffered during the aborted migration: %w", len(buf), err)
	}
	return nil
}

// AddNode dials addr as a fresh member and migrates to it exactly the
// terminals the grown ring assigns to it, in two overlapped phases per
// source: the owner copies its moving arcs (keeping the originals), the
// copies land on the new node, then the owner releases them.  While that
// runs, submissions keep flowing — unmoved arcs route normally and
// moving arcs buffer until the cutover flips the ring, so their stall is
// bounded by their own backlog, not the whole extract/restore window.
// With a journal configured the change is crash-safe: a durable intent
// precedes the first copy and a cutover record commits the change, so a
// router killed mid-change replays the journal on restart (see DialTCP).
// Returns the new member's ID.
func (t *TCP) AddNode(addr string) (int, error) {
	t.changeMu.Lock()
	defer t.changeMu.Unlock()
	t.memMu.RLock()
	oldRing := t.ring
	id := t.nextID
	srcs := t.sortedNodes()
	t.memMu.RUnlock()
	newMembers := append(oldRing.Members(), id)
	newRing, err := NewRingMembers(newMembers, t.cfg.VirtualNodes)
	if err != nil {
		return 0, err
	}
	node, err := t.dialNode(id, addr)
	if err != nil {
		return 0, err
	}
	vnodes := t.vnodes()
	if err := t.journalIntent(IntentRecord{
		Op: "addnode", Node: id, Addr: addr,
		Members: oldRing.Members(), NewMembers: newMembers, VNodes: vnodes,
	}); err != nil {
		node.client.Close()
		return 0, err
	}
	t.beginMigration("addnode", id, oldRing, newRing)

	migErr := func() error {
		for _, src := range srcs {
			t.migStat.phase(fmt.Sprintf("copy:%d", src.id))
			if t.crashed("copy") {
				return errMigrationAbandoned
			}
			// Copy before release: at every instant some daemon holds a
			// complete replica of each moving terminal, which is what
			// makes a crash anywhere recoverable.
			snaps, err := src.client.Extract(newMembers, vnodes, src.id, true, t.cfg.MigrateTimeout)
			if err != nil {
				return fmt.Errorf("cluster: copying for new node %d from node %d: %w", id, src.id, err)
			}
			if len(snaps) > 0 {
				if err := node.client.Restore(snaps, false, t.cfg.MigrateTimeout); err != nil {
					return fmt.Errorf("cluster: restoring into new node %d: %w", id, err)
				}
				if t.crashed("restored") {
					return errMigrationAbandoned
				}
				if _, err := src.client.Release(newMembers, vnodes, src.id, t.cfg.MigrateTimeout); err != nil {
					return fmt.Errorf("cluster: releasing moved arcs on node %d: %w", src.id, err)
				}
			}
			t.journalPhase(PhaseRecord{Phase: "moved", Source: src.id, Count: len(snaps)})
		}
		if t.crashed("pre-cutover") {
			return errMigrationAbandoned
		}
		t.migStat.phase("cutover")
		if err := t.journalCutover(); err != nil {
			return fmt.Errorf("cluster: journaling cutover: %w", err)
		}
		if t.crashed("cutover") {
			return errMigrationAbandoned
		}
		return nil
	}()
	if migErr != nil {
		if errors.Is(migErr, errMigrationAbandoned) {
			// Simulated router crash: leave the daemons' half-moved state
			// and the journaled intent exactly as a dead process would.
			// Only the new node's client is torn down — a real crash
			// closes that socket too.
			node.client.Close()
			return 0, migErr
		}
		// Roll back: pull everything the new node received and return it
		// to the owners the old ring names.  Sources that already
		// released get their arcs back; sources that did not skip the
		// duplicates (skip-live restore).
		rbErr := t.reclaimInto(node, oldRing.Members(), vnodes, oldRing)
		node.client.Close()
		abErr := t.abortMigration()
		ckErr := t.checkpoint()
		return 0, errors.Join(migErr, rbErr, abErr, ckErr)
	}

	// Commit: flip the ring and release the buffered moving-arc reports
	// to the new node under the same write lock, so no post-cutover
	// submission can outrun them and break per-terminal order.
	t.memMu.Lock()
	t.ring = newRing
	t.nodes[id] = node
	t.nextID = id + 1
	buf := t.mig.take()
	t.mig = nil
	ferr := t.submitBatch(buf, func(n int, sub []serve.Report) error {
		return t.nodes[n].client.Send(sub)
	})
	t.memMu.Unlock()
	t.migStat.end()
	err = t.checkpoint()
	if ferr != nil {
		err = errors.Join(fmt.Errorf("cluster: migration committed, but releasing %d buffered reports failed: %w", len(buf), ferr), err)
	}
	return id, err
}

// RemoveNode migrates every terminal member id owns to the members the
// shrunk ring assigns them to (copy to the new owners, then release the
// originals), freezes the departing node's final counters into Stats
// (Departed), and closes its client.  Submissions keep flowing
// throughout: only the departing member's arcs buffer, everything else
// routes normally.  Crash-safe with a journal, like AddNode.
func (t *TCP) RemoveNode(id int) error {
	t.changeMu.Lock()
	defer t.changeMu.Unlock()
	t.memMu.RLock()
	node, ok := t.nodes[id]
	nLive := len(t.nodes)
	oldRing := t.ring
	t.memMu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: node %d is not a member", id)
	}
	if nLive == 1 {
		return fmt.Errorf("cluster: cannot remove the last member")
	}
	members := oldRing.Members()
	rest := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != id {
			rest = append(rest, m)
		}
	}
	newRing, err := NewRingMembers(rest, t.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	vnodes := t.vnodes()
	if err := t.journalIntent(IntentRecord{
		Op: "removenode", Node: id, Addr: node.addr,
		Members: members, NewMembers: rest, VNodes: vnodes,
	}); err != nil {
		return err
	}
	t.beginMigration("removenode", id, oldRing, newRing)

	migErr := func() error {
		t.migStat.phase(fmt.Sprintf("copy:%d", id))
		if t.crashed("copy") {
			return errMigrationAbandoned
		}
		// The departing member is not in the remaining set, which the
		// daemon hook reads as "everything I hold"; keep leaves it
		// authoritative until release.
		moved, err := node.client.Extract(rest, vnodes, id, true, t.cfg.MigrateTimeout)
		if err != nil {
			return fmt.Errorf("cluster: copying node %d: %w", id, err)
		}
		byDest := map[int][]serve.TerminalSnapshot{}
		for _, s := range moved {
			d := newRing.NodeOf(s.Terminal)
			byDest[d] = append(byDest[d], s)
		}
		for _, d := range sortedKeys(byDest) {
			t.migStat.phase(fmt.Sprintf("restore:%d", d))
			if err := t.nodes[d].client.Restore(byDest[d], false, t.cfg.MigrateTimeout); err != nil {
				return fmt.Errorf("cluster: restoring into node %d: %w", d, err)
			}
			t.journalPhase(PhaseRecord{Phase: "moved", Source: d, Count: len(byDest[d])})
		}
		if t.crashed("restored") {
			return errMigrationAbandoned
		}
		t.migStat.phase("release")
		if _, err := node.client.Release(rest, vnodes, id, t.cfg.MigrateTimeout); err != nil {
			return fmt.Errorf("cluster: releasing node %d: %w", id, err)
		}
		t.migStat.phase("cutover")
		if err := t.journalCutover(); err != nil {
			return fmt.Errorf("cluster: journaling cutover: %w", err)
		}
		if t.crashed("cutover") {
			return errMigrationAbandoned
		}
		return nil
	}()
	if migErr != nil {
		if errors.Is(migErr, errMigrationAbandoned) {
			return migErr
		}
		// Roll back: the departing member still holds its originals
		// (release runs last), so stripping the copies off the remaining
		// members restores the pre-change world.  If release itself
		// failed the departing member may hold nothing — then the
		// reclaimed copies restore it (skip-live covers both cases).
		var rbErrs []error
		for _, d := range rest {
			t.memMu.RLock()
			dn := t.nodes[d]
			t.memMu.RUnlock()
			back, xerr := dn.client.Extract(members, vnodes, d, false, t.cfg.MigrateTimeout)
			if xerr != nil {
				rbErrs = append(rbErrs, fmt.Errorf("cluster: reclaiming from node %d: %w", d, xerr))
				continue
			}
			if rerr := t.returnToOwners(oldRing, back); rerr != nil {
				rbErrs = append(rbErrs, rerr)
			}
		}
		abErr := t.abortMigration()
		ckErr := t.checkpoint()
		return errors.Join(append(rbErrs, migErr, abErr, ckErr)...)
	}

	// Commit: freeze the departing member's final counters, drop it from
	// the ring, and release the buffered reports — all of which now route
	// to remaining members, since every arc of id moved.
	t.memMu.Lock()
	st := t.nodeStats(node)
	st.Departed = true
	t.retired = append(t.retired, st)
	delete(t.nodes, id)
	t.ring = newRing
	buf := t.mig.take()
	t.mig = nil
	ferr := t.submitBatch(buf, func(n int, sub []serve.Report) error {
		return t.nodes[n].client.Send(sub)
	})
	t.memMu.Unlock()
	t.migStat.end()
	var errs []error
	if ferr != nil {
		errs = append(errs, fmt.Errorf("cluster: migration committed, but releasing %d buffered reports failed: %w", len(buf), ferr))
	}
	if err := node.client.Close(); err != nil && !errors.Is(err, serve.ErrClientClosed) {
		errs = append(errs, fmt.Errorf("cluster: closing node %d: %w", id, err))
	}
	if err := t.checkpoint(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// reclaimInto pulls everything member `from` holds that ownerRing (over
// ownerMembers) does not assign to it — for a node being rolled out of
// an addnode, its ID is not in ownerMembers, so that is everything —
// and returns the state to the owners.  Failed returns quarantine the
// orphans instead of losing them with the router's memory.
func (t *TCP) reclaimInto(from *tcpNode, ownerMembers []int, vnodes int, ownerRing *Ring) error {
	back, err := from.client.Extract(ownerMembers, vnodes, from.id, false, t.cfg.MigrateTimeout)
	if err != nil {
		return fmt.Errorf("cluster: reclaiming from node %d failed — its terminal state is still on the daemon at %s: %w", from.id, from.addr, err)
	}
	return t.returnToOwners(ownerRing, back)
}

// returnToOwners restores snapshots to the members ring assigns them to,
// skipping terminals an owner still holds (rollback reaches here with a
// mix of released and still-held arcs).  Snapshots that can land nowhere
// are quarantined, never dropped.
func (t *TCP) returnToOwners(ring *Ring, snaps []serve.TerminalSnapshot) error {
	if len(snaps) == 0 {
		return nil
	}
	t.memMu.RLock()
	nodes := make(map[int]*tcpNode, len(t.nodes))
	for id, n := range t.nodes {
		nodes[id] = n
	}
	t.memMu.RUnlock()
	byDest := map[int][]serve.TerminalSnapshot{}
	for _, s := range snaps {
		d := ring.NodeOf(s.Terminal)
		byDest[d] = append(byDest[d], s)
	}
	var errs []error
	var orphans []serve.TerminalSnapshot
	for _, d := range sortedKeys(byDest) {
		dn, ok := nodes[d]
		if !ok {
			errs = append(errs, fmt.Errorf("cluster: owner %d of %d reclaimed terminals is not a live member", d, len(byDest[d])))
			orphans = append(orphans, byDest[d]...)
			continue
		}
		if err := dn.client.Restore(byDest[d], true, t.cfg.MigrateTimeout); err != nil {
			errs = append(errs, fmt.Errorf("cluster: returning %d terminals to node %d: %w", len(byDest[d]), d, err))
			orphans = append(orphans, byDest[d]...)
		}
	}
	if len(orphans) > 0 {
		errs = append(errs, orphanError(t.cfg.OrphanDir, orphans))
	}
	return errors.Join(errs...)
}

// recoverIntent completes or rolls back the half-done membership change
// a previous router process left in the journal.  Before the cutover
// record the change never committed: the copies are pulled back off the
// destination(s) and the old membership stands.  At or past cutover the
// change is completed — the re-copy/skip-live-restore/release sweep is
// idempotent, so replaying a partially executed phase is safe.  Runs at
// construction, before the router serves anything.
func (t *TCP) recoverIntent(st JournalState) error {
	in := st.Intent
	oldRing, err := NewRingMembers(in.Members, in.VNodes)
	if err != nil {
		return fmt.Errorf("old ring: %w", err)
	}
	newRing, err := NewRingMembers(in.NewMembers, in.VNodes)
	if err != nil {
		return fmt.Errorf("new ring: %w", err)
	}
	vnodes := in.VNodes
	switch in.Op {
	case "addnode":
		dest, err := t.dialNode(in.Node, in.Addr)
		if err != nil {
			return fmt.Errorf("dialing half-joined node %d at %s: %w", in.Node, in.Addr, err)
		}
		if !st.Cutover {
			// Roll back: whatever landed on the new node goes back to the
			// owners the old ring names; the join never happened.
			rbErr := t.reclaimInto(dest, in.Members, vnodes, oldRing)
			dest.client.Close()
			return rbErr
		}
		// Roll forward: finish the copy/restore/release sweep (no-ops for
		// sources that completed before the crash) and seat the member.
		for _, src := range t.sortedNodes() {
			snaps, err := src.client.Extract(in.NewMembers, vnodes, src.id, true, t.cfg.MigrateTimeout)
			if err != nil {
				dest.client.Close()
				return fmt.Errorf("re-copying from node %d: %w", src.id, err)
			}
			if len(snaps) > 0 {
				if err := dest.client.Restore(snaps, true, t.cfg.MigrateTimeout); err != nil {
					dest.client.Close()
					return fmt.Errorf("re-restoring into node %d: %w", in.Node, err)
				}
			}
			if _, err := src.client.Release(in.NewMembers, vnodes, src.id, t.cfg.MigrateTimeout); err != nil {
				dest.client.Close()
				return fmt.Errorf("releasing node %d: %w", src.id, err)
			}
		}
		t.nodes[in.Node] = dest
		t.ring = newRing
		if in.Node >= t.nextID {
			t.nextID = in.Node + 1
		}
		return nil
	case "removenode":
		if !st.Cutover {
			// Roll back: the departing member still holds its originals
			// (or gets them back skip-live); strip the copies off the
			// remaining members.
			var errs []error
			for _, m := range in.NewMembers {
				dn, ok := t.nodes[m]
				if !ok {
					errs = append(errs, fmt.Errorf("member %d from the journal is not dialed", m))
					continue
				}
				back, err := dn.client.Extract(in.Members, vnodes, m, false, t.cfg.MigrateTimeout)
				if err != nil {
					errs = append(errs, fmt.Errorf("reclaiming from node %d: %w", m, err))
					continue
				}
				if err := t.returnToOwners(oldRing, back); err != nil {
					errs = append(errs, err)
				}
			}
			return errors.Join(errs...)
		}
		// Roll forward: drain whatever the departing member still holds
		// to the new owners and drop it from the ring.  A departing
		// daemon that is already gone is tolerated — cutover means every
		// copy landed (and was released) before the crash.
		if node, ok := t.nodes[in.Node]; ok {
			moved, err := node.client.Extract(in.NewMembers, vnodes, in.Node, true, t.cfg.MigrateTimeout)
			if err != nil {
				return fmt.Errorf("re-copying departing node %d: %w", in.Node, err)
			}
			byDest := map[int][]serve.TerminalSnapshot{}
			for _, s := range moved {
				byDest[newRing.NodeOf(s.Terminal)] = append(byDest[newRing.NodeOf(s.Terminal)], s)
			}
			for _, d := range sortedKeys(byDest) {
				dn, ok := t.nodes[d]
				if !ok {
					return fmt.Errorf("owner %d of re-copied terminals is not dialed", d)
				}
				if err := dn.client.Restore(byDest[d], true, t.cfg.MigrateTimeout); err != nil {
					return fmt.Errorf("re-restoring into node %d: %w", d, err)
				}
			}
			if _, err := node.client.Release(in.NewMembers, vnodes, in.Node, t.cfg.MigrateTimeout); err != nil {
				return fmt.Errorf("releasing departing node %d: %w", in.Node, err)
			}
			fin := t.nodeStats(node)
			fin.Departed = true
			t.retired = append(t.retired, fin)
			delete(t.nodes, in.Node)
			node.client.Close()
		}
		t.ring = newRing
		return nil
	default:
		return fmt.Errorf("unknown intent op %q", in.Op)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sortedNodes returns the live members in ascending ID order.
//
//fuzzyho:nolockio
func (t *TCP) sortedNodes() []*tcpNode {
	out := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Submit implements Router.  During a membership change a report for a
// moving terminal buffers until cutover; everything else routes as if no
// change were in flight.  Runs under memMu's read side: the client send
// below parks on a select (queue slot or client death), never on the
// network — lockcheck audits the rest of the path.
//
//fuzzyho:nolockio
func (t *TCP) Submit(r serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	if t.mig != nil && t.mig.moving(r.Terminal) {
		t.mig.add(r)
		return nil
	}
	n := t.ring.NodeOf(r.Terminal)
	if err := t.nodes[n].client.Send([]serve.Report{r}); err != nil {
		return fmt.Errorf("cluster: node %d: %w", n, err)
	}
	return nil
}

// SubmitBatch implements Router: reports scatter into per-node sub-slices
// and each destination gets one coalesced wire line, blocking on that
// node's send queue under backpressure.  During a membership change,
// moving-terminal reports peel off into the migration buffer first.
//
//fuzzyho:nolockio
func (t *TCP) SubmitBatch(rs []serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	if t.mig != nil {
		rs = t.mig.intercept(rs)
	}
	return t.submitBatch(rs, func(n int, sub []serve.Report) error {
		return t.nodes[n].client.Send(sub)
	})
}

// TrySubmitBatch implements Router: like SubmitBatch but a full node
// queue sheds that node's sub-batch and fails with *BacklogError instead
// of blocking; other nodes' sub-batches are still accepted.  A full
// migration buffer sheds moving-terminal reports the same way.
//
//fuzzyho:nolockio
func (t *TCP) TrySubmitBatch(rs []serve.Report) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	shed := 0
	firstNode := -1
	if t.mig != nil {
		var bshed, bnode int
		rs, bshed, bnode = t.mig.interceptTry(rs)
		if bshed > 0 {
			shed = bshed
			firstNode = bnode
		}
	}
	err := t.submitBatch(rs, func(n int, sub []serve.Report) error {
		err := t.nodes[n].client.TrySend(sub)
		if errors.Is(err, serve.ErrBacklogged) {
			shed += len(sub)
			if firstNode < 0 {
				firstNode = n
			}
			return nil
		}
		return err
	})
	if err != nil {
		return err
	}
	if shed > 0 {
		return &BacklogError{Node: firstNode, Shed: shed}
	}
	return nil
}

// Migration implements Router.
//
//fuzzyho:nolockio
func (t *TCP) Migration() MigrationStatus {
	t.memMu.RLock()
	buffered := 0
	if t.mig != nil {
		buffered = t.mig.buffered()
	}
	t.memMu.RUnlock()
	return t.migStat.status(buffered)
}

// submitBatch scatters under a held read lock.
//
//fuzzyho:nolockio
func (t *TCP) submitBatch(rs []serve.Report, send func(n int, sub []serve.Report) error) error {
	if len(rs) == 0 {
		return nil
	}
	if t.ring.Nodes() == 1 {
		sole := t.ring.Members()[0]
		if err := send(sole, rs); err != nil {
			return fmt.Errorf("cluster: node %d: %w", sole, err)
		}
		return nil
	}
	bufs := t.scatter.Get().(*map[int][]serve.Report)
	defer t.putScatter(bufs)
	for i := range rs {
		n := t.ring.NodeOf(rs[i].Terminal)
		(*bufs)[n] = append((*bufs)[n], rs[i])
	}
	for _, n := range sortedKeys(*bufs) {
		sub := (*bufs)[n]
		if len(sub) == 0 {
			continue
		}
		if err := send(n, sub); err != nil {
			return fmt.Errorf("cluster: node %d: %w", n, err)
		}
	}
	return nil
}

//fuzzyho:nolockio
func (t *TCP) putScatter(bufs *map[int][]serve.Report) {
	for n, sub := range *bufs {
		(*bufs)[n] = sub[:0]
	}
	t.scatter.Put(bufs)
}

// Flush implements Router: waits until every node's ledger balances
// (delivered + lost ≥ submitted) within the shared timeout.  Node
// failures are returned joined, not hidden.
func (t *TCP) Flush(timeout time.Duration) error {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	deadline := time.Now().Add(timeout)
	var errs []error
	for _, n := range t.sortedNodes() {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if err := n.client.Flush(remaining); err != nil {
			errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.id, err))
		}
	}
	return errors.Join(errs...)
}

// nodeStats snapshots one live member's client ledger.
//
//fuzzyho:nolockio
func (t *TCP) nodeStats(n *tcpNode) NodeStats {
	cnt := n.client.Counters()
	return NodeStats{
		Node:       n.id,
		Addr:       n.addr,
		Submitted:  cnt.Submitted,
		Decisions:  cnt.Delivered,
		Lost:       cnt.Lost,
		Handovers:  cnt.Handovers,
		PingPongs:  cnt.PingPongs,
		Errors:     cnt.RemoteErrors,
		Reconnects: cnt.Reconnects,
		QueueDepth: cnt.QueuedLines,
	}
}

// Stats implements Router from the per-node client ledgers.  Terminal
// counts are not carried on the wire and read 0.  Departed members
// appear after the live ones with frozen counters.
//
//fuzzyho:nolockio
func (t *TCP) Stats() Stats {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	st := Stats{Nodes: make([]NodeStats, 0, len(t.nodes)+len(t.retired))}
	for _, n := range t.sortedNodes() {
		st.Nodes = append(st.Nodes, t.nodeStats(n))
	}
	st.Nodes = append(st.Nodes, t.retired...)
	return st
}

// ClientCounters is one member's raw serve.NodeCounters snapshot paired
// with its cluster identity, for telemetry that wants the client-level
// ledger (redials, lost reports) rather than the NodeStats digest.
type ClientCounters struct {
	Node     int
	Addr     string
	Counters serve.NodeCounters
}

// ClientCounters snapshots every live member's client ledger in
// ascending node order.
//
//fuzzyho:nolockio
func (t *TCP) ClientCounters() []ClientCounters {
	t.memMu.RLock()
	defer t.memMu.RUnlock()
	out := make([]ClientCounters, 0, len(t.nodes))
	for _, n := range t.sortedNodes() {
		out = append(out, ClientCounters{Node: n.id, Addr: n.addr, Counters: n.client.Counters()})
	}
	return out
}

// Close implements Router: every node client drains its queue to the
// node, reads the remaining decisions and closes.  Reports still held in
// an in-flight migration's buffer are in no client's ledger, so Close
// surfaces their count through OnError instead of dropping them silently.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.memMu.Lock()
		defer t.memMu.Unlock()
		var errs []error
		if t.mig != nil {
			if buf := t.mig.take(); len(buf) > 0 && t.cfg.OnError != nil {
				t.cfg.OnError(-1, fmt.Errorf("cluster: %d buffered reports dropped by Close during an in-flight migration", len(buf)))
			}
			t.mig = nil
		}
		for _, n := range t.sortedNodes() {
			if err := n.client.Close(); err != nil && !errors.Is(err, serve.ErrClientClosed) {
				errs = append(errs, fmt.Errorf("cluster: node %d: %w", n.id, err))
			}
		}
		if t.journal != nil {
			if err := t.journal.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cluster: closing journal: %w", err))
			}
		}
		t.closeErr = errors.Join(errs...)
	})
	return t.closeErr
}
