package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalRoundTrip pins the journal's happy path: checkpoint +
// intent + phases written by one handle are recovered verbatim by the
// next open, and a completing checkpoint truncates the intent.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasCheckpoint || st.Intent != nil {
		t.Fatalf("fresh journal recovered %+v, want empty state", st)
	}
	addrs := map[int]string{0: "127.0.0.1:7291", 1: "127.0.0.1:7292"}
	if err := j.Checkpoint([]int{0, 1}, addrs, 2); err != nil {
		t.Fatal(err)
	}
	intent := IntentRecord{
		Op: "addnode", Node: 2, Addr: "127.0.0.1:7293",
		Members: []int{0, 1}, NewMembers: []int{0, 1, 2}, VNodes: 128,
	}
	if err := j.Intent(intent); err != nil {
		t.Fatal(err)
	}
	if err := j.Phase(PhaseRecord{Phase: "moved", Source: 0, Count: 37}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the crash-recovery read.
	j2, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasCheckpoint || !equalInts(st.Members, []int{0, 1}) || st.NextID != 2 {
		t.Fatalf("checkpoint state %+v, want members [0 1] nextID 2", st)
	}
	if len(st.Addrs) != 2 || st.Addrs[0] != addrs[0] || st.Addrs[1] != addrs[1] {
		t.Fatalf("addrs %v, want %v", st.Addrs, addrs)
	}
	if st.Intent == nil || st.Cutover {
		t.Fatalf("state %+v, want pending non-cutover intent", st)
	}
	if got := *st.Intent; got.Op != intent.Op || got.Node != intent.Node || got.Addr != intent.Addr ||
		!equalInts(got.Members, intent.Members) || !equalInts(got.NewMembers, intent.NewMembers) ||
		got.VNodes != intent.VNodes {
		t.Fatalf("intent %+v, want %+v", got, intent)
	}
	if len(st.Phases) != 1 || st.Phases[0] != (PhaseRecord{Phase: "moved", Source: 0, Count: 37}) {
		t.Fatalf("phases %+v, want the one moved record", st.Phases)
	}

	// Cutover flips the recovery direction.
	if err := j2.Cutover(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Intent == nil || !st.Cutover {
		t.Fatalf("state %+v, want committed (cutover) intent", st)
	}

	// A checkpoint after completion truncates the intent: the next open
	// sees only the new membership.
	j3, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Checkpoint([]int{0, 1, 2}, nil, 3); err != nil {
		t.Fatal(err)
	}
	// The handle must survive its own rewrite: a post-checkpoint append
	// lands in the NEW file, not the renamed-away inode.
	if err := j3.Intent(IntentRecord{Op: "removenode", Node: 0, Members: []int{0, 1, 2}, NewMembers: []int{1, 2}, VNodes: 128}); err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(st.Members, []int{0, 1, 2}) || st.NextID != 3 {
		t.Fatalf("post-truncate state %+v, want members [0 1 2] nextID 3", st)
	}
	if st.Intent == nil || st.Intent.Op != "removenode" || st.Cutover {
		t.Fatalf("post-truncate intent %+v, want fresh removenode", st.Intent)
	}
}

// TestJournalTornFinalLine: the append a crash interrupted mid-line is
// ignored, everything fsync'd before it is recovered.
func TestJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint([]int{0, 1}, nil, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Intent(IntentRecord{Op: "addnode", Node: 2, Members: []int{0, 1}, NewMembers: []int{0, 1, 2}, VNodes: 128}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn tail of an interrupted append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"j":"phase","ph`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, st, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn final line must not fail the open: %v", err)
	}
	if !st.HasCheckpoint || st.Intent == nil || st.Cutover || len(st.Phases) != 0 {
		t.Fatalf("recovered %+v, want checkpoint + pending intent, torn phase dropped", st)
	}
}

// TestJournalRejectsCorruption: structurally bad records anywhere but
// the final line are corruption, not noise — the open must fail rather
// than recover from a journal that lies.
func TestJournalRejectsCorruption(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{
			name: "torn-line-mid-file",
			content: `{"j":"checkpoint","members":[0,1],"next_id":2}
{"j":"inte
{"j":"phase","phase":"cutover"}
`,
			wantErr: "record 2",
		},
		{
			name: "phase-without-intent",
			content: `{"j":"checkpoint","members":[0,1],"next_id":2}
{"j":"phase","phase":"moved","source":0,"count":3}
`,
			wantErr: "no intent",
		},
		{
			name: "second-intent",
			content: `{"j":"intent","op":"addnode","node":2,"members":[0,1],"new_members":[0,1,2],"vnodes":128}
{"j":"intent","op":"removenode","node":0,"members":[0,1],"new_members":[1],"vnodes":128}
`,
			wantErr: "second intent",
		},
		{
			name:    "unknown-kind",
			content: `{"j":"wat"}` + "\n" + `{"j":"checkpoint","members":[0],"next_id":1}` + "\n",
			wantErr: "unknown record kind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := OpenJournal(path)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("OpenJournal = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
