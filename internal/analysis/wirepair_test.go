package analysis

import "testing"

func TestWireBaseName(t *testing.T) {
	cases := []struct {
		name string
		base string
		ok   bool
	}{
		{"AppendReportJSON", "Report", true},
		{"AppendOutcomeJSON", "Outcome", true},
		{"AppendJSON", "", false}, // empty base is not a codec name
		{"AppendText", "", false},
		{"ParseReportLine", "", false},
		{"Append", "", false},
	}
	for _, c := range cases {
		base, ok := wireBaseName(c.name)
		if base != c.base || ok != c.ok {
			t.Errorf("wireBaseName(%q) = %q, %v; want %q, %v", c.name, base, ok, c.base, c.ok)
		}
	}
}

func TestParseWirepairArgs(t *testing.T) {
	p, fz, err := parseWirepairArgs("parse=ParseBatchLine fuzz=FuzzParseBatchLine")
	if err != nil || p != "ParseBatchLine" || fz != "FuzzParseBatchLine" {
		t.Errorf("got (%q, %q, %v)", p, fz, err)
	}
	for _, bad := range []string{
		"parse=ParseBatchLine",    // fuzz missing
		"fuzz=FuzzParseBatchLine", // parse missing
		"parse=",                  // empty value
		"parse=P fuzz=F extra=Q",  // unknown key
		"parse=P fuzz=F bare",     // not key=value
		"",                        // both missing
	} {
		if _, _, err := parseWirepairArgs(bad); err == nil {
			t.Errorf("parseWirepairArgs(%q): want error, got nil", bad)
		}
	}
}
