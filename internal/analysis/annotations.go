package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive names.
const (
	DirHotpath       = "hotpath"
	DirDeterministic = "deterministic"
	DirNoLockIO      = "nolockio"
	DirAllow         = "allow"
	DirWirepair      = "wirepair"
)

const directivePrefix = "//fuzzyho:"

// Directive is one parsed //fuzzyho: annotation.
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// parseDirectives extracts fuzzyho directives from a comment group.
func parseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(rest, " ")
		out = append(out, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()})
	}
	return out
}

// HasDirective reports whether the comment group carries the named
// fuzzyho directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	for _, d := range parseDirectives(doc) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// DirectiveArgs returns the argument string of the named directive and
// whether it is present.
func DirectiveArgs(doc *ast.CommentGroup, name string) (string, bool) {
	for _, d := range parseDirectives(doc) {
		if d.Name == name {
			return d.Args, true
		}
	}
	return "", false
}

// Annotations is the per-package allow index.
type Annotations struct {
	// allows maps file name -> line -> justification.
	allows map[string]map[int]string
}

// Allowed reports whether a diagnostic at pos is suppressed by a
// `//fuzzyho:allow reason` annotation on the same line (trailing
// comment) or on a standalone comment line directly above.
func (a *Annotations) Allowed(pos token.Position) bool {
	lines := a.allows[pos.Filename]
	if lines == nil {
		return false
	}
	_, ok := lines[pos.Line]
	return ok
}

// knownDirectives guards against typos: an unknown fuzzyho directive is
// an error, not a silently dead annotation.
var knownDirectives = map[string]bool{
	DirHotpath:       true,
	DirDeterministic: true,
	DirNoLockIO:      true,
	DirAllow:         true,
	DirWirepair:      true,
}

// ScanAnnotations indexes every //fuzzyho: comment in the package's
// non-test files and validates annotation syntax.  An allow annotation
// that ends a code line suppresses that line; an allow on a line of its
// own suppresses the next line.  Allows without a justification string,
// and unknown directives, are diagnostics.
func ScanAnnotations(pkg *Package) (*Annotations, []Diagnostic) {
	ann := &Annotations{allows: make(map[string]map[int]string)}
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "fuzzyho", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				name, args, _ := strings.Cut(rest, " ")
				args = strings.TrimSpace(args)
				if !knownDirectives[name] {
					report(c.Pos(), "unknown fuzzyho directive //fuzzyho:"+name+" (known: hotpath, deterministic, nolockio, allow, wirepair)")
					continue
				}
				if name != DirAllow {
					continue
				}
				if args == "" {
					report(c.Pos(), "//fuzzyho:allow requires a justification string (what invariant is being waived, and why it holds anyway)")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if standaloneComment(pkg.Src[pos.Filename], pos) {
					line++
				}
				m := ann.allows[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					ann.allows[pos.Filename] = m
				}
				m[line] = args
			}
		}
	}
	return ann, diags
}

// standaloneComment reports whether the comment starting at pos is the
// only thing on its source line (everything before it is whitespace), in
// which case an allow applies to the following line.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	i := pos.Offset - 1
	for i >= 0 && src[i] != '\n' {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
		i--
	}
	return true
}

// annotatedFuncs returns the *types.Func of every function declaration
// in the package carrying the named directive, including interface
// methods annotated at the interface definition (the way the hot
// decision interfaces mark their call sites as audited).
func annotatedFuncs(pkg *Package, directive string) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if HasDirective(d.Doc, directive) {
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						out[fn] = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						if !HasDirective(m.Doc, directive) {
							continue
						}
						for _, name := range m.Names {
							if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
								out[fn] = true
							}
						}
					}
				}
			}
		}
	}
	return out
}

// funcDeclsWith yields the package's function declarations (with bodies)
// carrying the named directive.
func funcDeclsWith(pkg *Package, directive string) map[*ast.FuncDecl]*ast.File {
	out := make(map[*ast.FuncDecl]*ast.File)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && HasDirective(fd.Doc, directive) {
				out[fd] = f
			}
		}
	}
	return out
}
