package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathAnalyzer enforces the 0 B/decision steady-state invariant on
// functions annotated //fuzzyho:hotpath: the serve decision loop
// (shard.process / processColumnar), the compiled segment kernel, the
// terminal-store probes, obs Observe/Add and the wire append codecs.
// The runtime guard for the same property is
// TestServeSteadyStateBytesPerShardCount, which samples; this analyzer
// checks every line of every build.
//
// Inside a hotpath function the analyzer rejects:
//
//   - defer and go statements, closures, map/slice/pointer composite
//     literals, make/new, map iteration — each an allocation or a
//     scheduling point;
//   - string<->[]byte conversions and conversions to interface types
//     (boxing);
//   - interface boxing at call arguments, returns and assignments for
//     non-pointer-shaped operands;
//   - calls to fmt, errors, log and other allocating stdlib surface;
//   - calls to any function that is neither whitelisted (math,
//     sync/atomic, strconv.Append*, ...) nor itself annotated
//     //fuzzyho:hotpath — the transitive audit flows through object
//     facts, so cross-package callees are covered.
//
// Cold guard branches that are genuinely unreachable in steady state
// carry //fuzzyho:allow with a justification.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation and unaudited calls in //fuzzyho:hotpath functions",
	Run:  runHotpath,
}

// hotpathFact marks an object as hotpath-audited for importing packages.
type hotpathFact struct{}

// hotpathAllowedPkgs are packages every function of which is considered
// allocation-free and safe on the hot path.
var hotpathAllowedPkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"sync/atomic":  true,
	"unicode/utf8": true,
	"unsafe":       true,
}

// hotpathAllowedFuncs whitelists individual stdlib functions and methods
// (types.Func.FullName form) that do not allocate.
var hotpathAllowedFuncs = map[string]bool{
	"time.Since":                  true,
	"(time.Time).UnixNano":        true,
	"(time.Duration).Seconds":     true,
	"(time.Duration).Nanoseconds": true,
	"strconv.AppendInt":           true,
	"strconv.AppendUint":          true,
	"strconv.AppendFloat":         true,
	"strconv.AppendBool":          true,
	"bytes.HasPrefix":             true,
	"bytes.IndexByte":             true,
	"bytes.Equal":                 true,
	"(error).Error":               true,
	"sort.Search":                 true,
}

// hotpathDeniedPkgs name the usual allocation suspects explicitly so the
// diagnostic can say why; any other unlisted package is still denied by
// default, with the generic not-audited message.
var hotpathDeniedPkgs = map[string]string{
	"fmt":    "every fmt call allocates (boxing its arguments at minimum)",
	"errors": "errors.New/errors.Join allocate; predeclare sentinel errors at package level",
	"log":    "log formats through fmt and locks",
}

func runHotpath(pass *Pass) error {
	pkg := pass.Pkg
	// Phase 1: export facts for every annotated function and interface
	// method, so same-package (declaration order independent) and
	// importing-package calls both resolve.
	annotated := annotatedFuncs(pkg, DirHotpath)
	for fn := range annotated {
		pass.ExportFact(fn, hotpathFact{})
	}
	isHot := func(fn *types.Func) bool {
		if annotated[fn] {
			return true
		}
		_, ok := pass.ImportFact(fn)
		return ok
	}

	// Phase 2: check annotated bodies.
	for decl := range funcDeclsWith(pkg, DirHotpath) {
		name := decl.Name.Name
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				pass.Reportf(n.Pos(), "defer in hotpath function %s: defers allocate their frame and run off the fast path (0 B/decision invariant, pinned by TestServeSteadyStateBytesPerShardCount)", name)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in hotpath function %s: spawning goroutines allocates and schedules on the decision path", name)
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "closure literal in hotpath function %s: captured variables escape to the heap (0 B/decision invariant)", name)
				return false
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok && isMapType(tv.Type) {
					pass.Reportf(n.Pos(), "map iteration in hotpath function %s: map ranging costs hidden iterator work and randomizes order; hot state belongs in slices/arrays (cf. terminalStore)", name)
				}
			case *ast.CompositeLit:
				if tv, ok := pkg.Info.Types[n]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map, *types.Slice:
						pass.Reportf(n.Pos(), "%s composite literal in hotpath function %s allocates; preallocate in setup and reuse (0 B/decision invariant)", typeKindName(tv.Type), name)
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						pass.Reportf(n.Pos(), "&composite literal in hotpath function %s escapes to the heap; reuse preallocated state instead (0 B/decision invariant)", name)
					}
				}
			case *ast.CallExpr:
				checkHotpathCall(pass, name, n, isHot)
			case *ast.ReturnStmt:
				checkHotpathReturn(pass, pkg, name, decl, n)
			case *ast.AssignStmt:
				checkHotpathAssign(pass, pkg, name, n)
			}
			return true
		})
	}
	return nil
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr, isHot func(*types.Func) bool) {
	pkg := pass.Pkg
	kind, obj := callee(pkg.Info, call)
	switch kind {
	case calleeBuiltin:
		switch obj.Name() {
		case "make", "new":
			pass.Reportf(call.Pos(), "%s in hotpath function %s allocates; size buffers in setup and reuse them (0 B/decision invariant)", obj.Name(), name)
		}
		return
	case calleeConversion:
		checkHotpathConversion(pass, name, call)
		return
	case calleeDynamic:
		pass.Reportf(call.Pos(), "dynamic call through a func value in hotpath function %s: the target cannot be audited statically — call an annotated function or method, or //fuzzyho:allow with the reason the target is safe", name)
		return
	case calleeFunc:
		fn := obj.(*types.Func)
		checkHotpathBoxingArgs(pass, name, call, fn)
		if isHot(fn) {
			return
		}
		fnPkg := fn.Pkg()
		if fnPkg == nil { // error.Error and other universe-scope methods
			if hotpathAllowedFuncs[fn.FullName()] {
				return
			}
		} else {
			if hotpathAllowedPkgs[fnPkg.Path()] || hotpathAllowedFuncs[fn.FullName()] {
				return
			}
			if why, ok := hotpathDeniedPkgs[fnPkg.Path()]; ok {
				pass.Reportf(call.Pos(), "call to %s in hotpath function %s: %s (0 B/decision invariant, pinned by TestServeSteadyStateBytesPerShardCount)", funcDisplayName(fn), name, why)
				return
			}
		}
		pass.Reportf(call.Pos(), "hotpath function %s calls %s, which is neither //fuzzyho:hotpath-annotated nor whitelisted: every transitive callee of the serve decision loop must be audited for the 0 B/decision invariant", name, funcDisplayName(fn))
	}
}

// checkHotpathConversion flags conversions that allocate: string<->[]byte
// and concrete-to-interface.
func checkHotpathConversion(pass *Pass, name string, call *ast.CallExpr) {
	pkg := pass.Pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	src := pkg.Info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if isStringByteConv(dst, src) {
		pass.Reportf(call.Pos(), "string/[]byte conversion in hotpath function %s copies its operand; keep one representation end to end (0 B/decision invariant)", name)
		return
	}
	if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) && !pointerShaped(src) {
		pass.Reportf(call.Pos(), "conversion to interface type in hotpath function %s boxes its operand on the heap (0 B/decision invariant)", name)
	}
}

func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// checkHotpathBoxingArgs flags concrete, non-pointer-shaped arguments
// passed to interface-typed parameters: the values box on the heap.
func checkHotpathBoxingArgs(pass *Pass, name string, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, name, arg, pt, "argument")
	}
}

func checkHotpathReturn(pass *Pass, pkg *Package, name string, decl *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // multi-value forwarding; covered at the callee
	}
	for i, expr := range ret.Results {
		reportBoxing(pass, name, expr, results.At(i).Type(), "return value")
	}
}

func checkHotpathAssign(pass *Pass, pkg *Package, name string, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pkg.Info.Types[lhs].Type
		if lt == nil {
			if id, ok := lhs.(*ast.Ident); ok {
				if def := pkg.Info.Defs[id]; def != nil {
					lt = def.Type()
				}
			}
		}
		if lt == nil {
			continue
		}
		reportBoxing(pass, name, as.Rhs[i], lt, "assignment")
	}
}

// reportBoxing reports expr being used as dst when that implies boxing a
// concrete non-pointer-shaped value into an interface.
func reportBoxing(pass *Pass, name string, expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(src.Underlying()) || pointerShaped(src) {
		return
	}
	// Untyped constants convert at compile time; small constants are
	// interned by the runtime, but the general case still allocates —
	// keep the check and let call sites justify exceptions.
	pass.Reportf(expr.Pos(), "interface boxing at %s in hotpath function %s: %s value stored in an interface allocates (0 B/decision invariant)", what, name, strings.TrimPrefix(src.String(), pass.Pkg.Path+"."))
}
