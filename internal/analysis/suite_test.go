package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture files under testdata/src mark each line that must produce a
// finding with a trailing `want:<analyzer>` comment (repeated when the
// line must produce several findings of the same analyzer).  The checks
// run both directions: every marker must be matched by a diagnostic and
// every diagnostic by a marker, so a fixture line staying silent is as
// much an assertion as one that fires.
var wantMarker = regexp.MustCompile(`want:([a-z]+)`)

type findingKey struct {
	file     string
	line     int
	analyzer string
}

func runFixture(t *testing.T, paths ...string) ([]Diagnostic, []*Package) {
	t.Helper()
	pkgs, err := LoadFixtures(filepath.Join("testdata", "src"), paths...)
	if err != nil {
		t.Fatalf("LoadFixtures(%v): %v", paths, err)
	}
	diags, err := NewSuite(DefaultAnalyzers()...).Run(pkgs)
	if err != nil {
		t.Fatalf("Run(%v): %v", paths, err)
	}
	return diags, pkgs
}

func checkFixture(t *testing.T, paths ...string) {
	t.Helper()
	diags, pkgs := runFixture(t, paths...)
	want := make(map[findingKey]int)
	for _, pkg := range pkgs {
		for path, src := range pkg.Src {
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
					want[findingKey{filepath.Base(path), i + 1, m[1]}]++
				}
			}
		}
	}
	got := make(map[findingKey]int)
	for _, d := range diags {
		got[findingKey{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer}]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", k.file, k.line, n, k.analyzer, got[k])
		}
	}
	for _, d := range diags {
		k := findingKey{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer}
		if want[k] == 0 {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestHotpathAnalyzer(t *testing.T) { checkFixture(t, "hot") }

// TestHotpathTransitiveFacts loads a fixture package importing another:
// hotdep calls both an annotated and an unannotated function from hot,
// exercising the cross-package fact flow.
func TestHotpathTransitiveFacts(t *testing.T) { checkFixture(t, "hot", "hotdep") }

func TestDeterminismAnalyzer(t *testing.T) { checkFixture(t, "det") }

// TestLockcheckAnalyzer covers direct blocking ops, package-local
// transitive reach, bare vs select-bounded sends, allow waivers, and —
// via lockdep — blocking facts imported across packages.
func TestLockcheckAnalyzer(t *testing.T) { checkFixture(t, "lock", "lockdep") }

func TestWirepairAnalyzer(t *testing.T) { checkFixture(t, "wire") }

// TestAnnotationDiagnostics asserts the two annotation-syntax errors in
// the ann fixture explicitly (markers cannot sit on comment-only lines):
// an unknown directive and a justification-less allow.  Neither is
// waivable, so exact positions and messages are pinned here.
func TestAnnotationDiagnostics(t *testing.T) {
	diags, _ := runFixture(t, "ann")
	if len(diags) != 2 {
		t.Fatalf("want 2 annotation diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "fuzzyho" {
			t.Errorf("want analyzer fuzzyho, got %q in %s", d.Analyzer, d)
		}
	}
	if diags[0].Pos.Line != 5 || !strings.Contains(diags[0].Message, "unknown fuzzyho directive") {
		t.Errorf("want unknown-directive diagnostic at ann.go:5, got %s", diags[0])
	}
	if diags[1].Pos.Line != 9 || !strings.Contains(diags[1].Message, "requires a justification") {
		t.Errorf("want bare-allow diagnostic at ann.go:9, got %s", diags[1])
	}
}
