package wire

import "testing"

func FuzzParseGoodLine(f *testing.F) {
	f.Add([]byte("1"))
	f.Fuzz(func(t *testing.T, b []byte) { ParseGoodLine(b) })
}

func FuzzParseStaleLine(f *testing.F) {
	f.Fuzz(func(t *testing.T, b []byte) { ParseStaleLine(b) })
}

func FuzzDecodeCustom(f *testing.F) {
	f.Add([]byte("x"))
	f.Fuzz(func(t *testing.T, b []byte) { DecodeCustom(b) })
}
