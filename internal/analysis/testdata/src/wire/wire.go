// Package wire is the wirepair analyzer fixture.
package wire

// AppendGoodJSON has the conventional decoder and a seeded fuzz target.
func AppendGoodJSON(dst []byte, v byte) []byte { return append(dst, v) }

// ParseGoodLine pairs with AppendGoodJSON.
func ParseGoodLine(line []byte) (int, error) { return len(line), nil }

// AppendOrphanJSON has neither a decoder nor a fuzz target.
func AppendOrphanJSON(dst []byte) []byte { // want:wirepair want:wirepair
	return dst
}

// AppendStaleJSON has a decoder, but its fuzz target carries no f.Add
// seed.
func AppendStaleJSON(dst []byte) []byte { // want:wirepair
	return dst
}

// ParseStaleLine pairs with AppendStaleJSON.
func ParseStaleLine(line []byte) (int, error) { return len(line), nil }

// AppendCustomJSON declares its non-conventional pair explicitly.
//
//fuzzyho:wirepair parse=DecodeCustom fuzz=FuzzDecodeCustom
func AppendCustomJSON(dst []byte) []byte { return dst }

// DecodeCustom is AppendCustomJSON's decoder.
func DecodeCustom(line []byte) int { return len(line) }

// AppendHalfJSON carries a malformed wirepair annotation (missing fuzz=).
//
//fuzzyho:wirepair parse=DecodeCustom
func AppendHalfJSON(dst []byte) []byte { // want:wirepair
	return dst
}

// appendLowerJSON is unexported: the convention does not apply.
func appendLowerJSON(dst []byte) []byte { return dst }

// AppendText is not an Append*JSON encoder.
func AppendText(dst []byte) []byte { return dst }
