// Package hotdep exercises cross-package hotpath facts: hot.Step is
// annotated in its own package and must be accepted here; hot.Cold is
// not and must be flagged.
package hotdep

import "hot"

//fuzzyho:hotpath
func Fast(x int) int { return hot.Step(x) }

//fuzzyho:hotpath
func Slow(x int) int {
	return hot.Cold(x) // want:hotpath
}
