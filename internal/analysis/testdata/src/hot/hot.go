// Package hot is the hotpath analyzer fixture.  Lines carrying a
// `want:<analyzer>` marker must produce exactly that many findings of
// that analyzer; every other line must stay silent.
package hot

import (
	"errors"
	"fmt"
)

// Cold is deliberately unannotated: hotpath callers (here and in the
// importing hotdep fixture) must be flagged for calling it.
func Cold(x int) int { return x + 1 }

type point struct{ x int }

var boxed any

// Step is hotpath and clean: an annotated callee and arithmetic only.
//
//fuzzyho:hotpath
func Step(x int) int { return mix(x) }

//fuzzyho:hotpath
func mix(x int) int { return x<<1 ^ x }

//fuzzyho:hotpath
func reset() {}

//fuzzyho:hotpath
func Bad(m map[int]int, f func() int, b []byte) int {
	defer reset()                // want:hotpath
	go reset()                   // want:hotpath
	g := func() int { return 1 } // want:hotpath
	_ = g
	s := 0
	for k := range m { // want:hotpath
		s += k
	}
	buf := make([]int, 4) // want:hotpath
	_ = buf
	xs := []int{1, 2} // want:hotpath
	_ = xs
	p := &point{x: 1} // want:hotpath
	_ = p
	s += f()         // want:hotpath
	str := string(b) // want:hotpath
	_ = str
	boxed = s                 // want:hotpath
	s += Cold(s)              // want:hotpath
	err := errors.New("boom") // want:hotpath
	_ = err
	err2 := fmt.Errorf("boom") // want:hotpath
	_ = err2
	return s
}

// Waived shows //fuzzyho:allow suppressing a finding on its line.
//
//fuzzyho:hotpath
func Waived() []int {
	//fuzzyho:allow fixture: setup-time allocation, waived to test suppression
	return make([]int, 8)
}
