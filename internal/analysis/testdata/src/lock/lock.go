// Package lock is the lockcheck analyzer fixture.
package lock

import (
	"net"
	"time"
)

// Blocking is unannotated but carries a blocking fact for importers
// (see the lockdep fixture).
func Blocking(c net.Conn, b []byte) {
	c.Write(b)
}

func sleepy() { time.Sleep(time.Millisecond) }

//fuzzyho:nolockio
func DirectWrite(c net.Conn, b []byte) {
	c.Write(b) // want:lockcheck
}

//fuzzyho:nolockio
func Transitive() {
	sleepy() // want:lockcheck
}

//fuzzyho:nolockio
func Sender(ch chan int) {
	ch <- 1 // want:lockcheck
}

// BoundedSender is clean: a send inside a select has alternatives.
//
//fuzzyho:nolockio
func BoundedSender(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// Waived shows //fuzzyho:allow on a send that is safe by design.
//
//fuzzyho:nolockio
func Waived(ch chan int) {
	//fuzzyho:allow fixture: the consumer drains independently of the lock
	ch <- 1
}
