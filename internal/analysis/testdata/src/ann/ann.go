// Package ann holds deliberately broken fuzzyho annotations; the suite
// must turn each into a "fuzzyho" diagnostic that no allow can waive.
package ann

//fuzzyho:hotpth
func Typo() {}

func Unjustified() {
	//fuzzyho:allow
	_ = 0
}
