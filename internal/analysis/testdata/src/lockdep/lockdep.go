// Package lockdep exercises cross-package lockcheck facts: lock.Blocking
// reaches a network write in its own package and must be flagged here.
package lockdep

import (
	"net"

	"lock"
)

//fuzzyho:nolockio
func Remote(c net.Conn, b []byte) {
	lock.Blocking(c, b) // want:lockcheck
}
