// Package det is the determinism analyzer fixture.
package det

import (
	"math/rand"
	"time"
)

//fuzzyho:deterministic
func Bad(m map[int]int, ch chan int) int {
	t := time.Now()   // want:determinism
	r := rand.Intn(3) // want:determinism
	s := 0
	for k := range m { // want:determinism
		s += k
	}
	select { // want:determinism
	case v := <-ch:
		s += v
	case ch <- s:
	}
	return s + r + int(t.UnixNano())
}

// SeededDraw shows the accepted pattern: a seeded *rand.Rand method is
// not the global generator.
//
//fuzzyho:deterministic
func SeededDraw(rng *rand.Rand) int { return rng.Intn(3) }

// Sum shows //fuzzyho:allow on an order-insensitive map reduction.
//
//fuzzyho:deterministic
func Sum(m map[int]int) int {
	s := 0
	//fuzzyho:allow order-insensitive reduction: addition is commutative, the result cannot observe iteration order
	for k := range m {
		s += k
	}
	return s
}

// Unannotated functions may do what they like.
func Clock() int64 { return time.Now().UnixNano() }
