package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	content := "# accepted escapes, one per line\n" +
		"\n" +
		"repro/internal/x.Old: make([]uint64, n) escapes to heap\n" +
		"repro/internal/x.Gone: moved to heap: v\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []EscapeFinding{
		{Func: "repro/internal/x.Old", Message: "make([]uint64, n) escapes to heap"},
		{Func: "repro/internal/x.New", Message: "new(big) escapes to heap"},
	}
	news, stale, err := CompareBaseline(path, findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(news) != 1 || news[0].Func != "repro/internal/x.New" {
		t.Errorf("news = %v; want the one unbaselined finding", news)
	}
	if len(stale) != 1 || stale[0] != "repro/internal/x.Gone: moved to heap: v" {
		t.Errorf("stale = %v; want the one no-longer-observed entry", stale)
	}
}

// TestCompareBaselineMissingFile: no baseline means every finding is
// new — the make target bootstraps by redirecting -list output.
func TestCompareBaselineMissingFile(t *testing.T) {
	findings := []EscapeFinding{{Func: "repro/internal/x.F", Message: "x escapes to heap"}}
	news, stale, err := CompareBaseline(filepath.Join(t.TempDir(), "absent.txt"), findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(news) != 1 || len(stale) != 0 {
		t.Errorf("got news=%v stale=%v; want all findings new, nothing stale", news, stale)
	}
}

func TestSplitCompilerDiag(t *testing.T) {
	file, line, msg, ok := splitCompilerDiag("serve.go:12:6: make([]byte, n) escapes to heap")
	if !ok || file != "serve.go" || line != 12 || msg != "make([]byte, n) escapes to heap" {
		t.Errorf("got (%q, %d, %q, %v)", file, line, msg, ok)
	}
	if _, _, _, ok := splitCompilerDiag("not a diagnostic"); ok {
		t.Error("plain text accepted as a diagnostic")
	}
}
