package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockcheckAnalyzer enforces the no-blocking-I/O-under-the-membership-
// lock invariant on functions annotated //fuzzyho:nolockio: everything
// that runs while holding TCP.memMu / Local.memMu (the ring-flip lock)
// or inside a paused shard.  The two-phase migration rework exists
// precisely because blocking under that lock stalls every submitter; the
// runtime guard is the -race chaos smoke, which only catches the
// schedules it happens to drive.
//
// The analyzer computes, for every function in the analyzed packages, a
// "reaches blocking I/O" fact — direct network reads/writes and dials,
// fsync, time.Sleep, and channel sends outside a select — and propagates
// it through the static call graph (cross-package via facts, since
// packages are analyzed in dependency order).  A nolockio function that
// performs or reaches any of these gets a diagnostic naming the chain.
//
// Limitations, by design: calls through interfaces other than net.Conn
// and through func values are not resolved (the migration hooks are
// exercised by the chaos tests instead), and sends inside any select are
// considered bounded by the select's alternatives.
var LockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "forbid blocking I/O reachable from //fuzzyho:nolockio functions",
	Run:  runLockcheck,
}

// blockingFact records why a function blocks, with the position of the
// offending operation or call chain.
type blockingFact struct {
	reason string
}

// blockingFuncs are operations that block on external progress.
var blockingFuncs = map[string]string{
	"(net.Conn).Read":           "network read",
	"(net.Conn).Write":          "network write",
	"(*net.TCPConn).Read":       "network read",
	"(*net.TCPConn).Write":      "network write",
	"(*net.UnixConn).Read":      "network read",
	"(*net.UnixConn).Write":     "network write",
	"net.Dial":                  "network dial",
	"net.DialTimeout":           "network dial",
	"(*net.Dialer).Dial":        "network dial",
	"(*net.Dialer).DialContext": "network dial",
	"(*os.File).Sync":           "fsync",
	"time.Sleep":                "sleep",
	"(*sync.WaitGroup).Wait":    "waitgroup wait",
}

func runLockcheck(pass *Pass) error {
	pkg := pass.Pkg

	// Build the package-local call graph: per function, the first direct
	// blocking op (if any) and the static callees.
	type edge struct {
		fn  *types.Func
		pos ast.Node
	}
	type node struct {
		decl    *ast.FuncDecl
		obj     *types.Func
		reason  string
		callees []edge
	}
	nodes := make(map[*types.Func]*node)

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			nd := &node{decl: fd, obj: obj}
			selectDepth := 0
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // closures run who-knows-when; out of scope
				case *ast.SelectStmt:
					selectDepth++
					ast.Inspect(n.Body, walk)
					selectDepth--
					return false
				case *ast.SendStmt:
					if selectDepth == 0 && nd.reason == "" {
						nd.reason = fmt.Sprintf("unbounded channel send at %s", pass.Fset.Position(n.Pos()))
					}
				case *ast.CallExpr:
					kind, obj := callee(pkg.Info, n)
					if kind != calleeFunc {
						return true
					}
					fn := obj.(*types.Func)
					if why, ok := blockingFuncs[fn.FullName()]; ok {
						if nd.reason == "" {
							nd.reason = fmt.Sprintf("%s (%s) at %s", why, fn.FullName(), pass.Fset.Position(n.Pos()))
						}
						return true
					}
					nd.callees = append(nd.callees, edge{fn: fn, pos: n})
				}
				return true
			}
			ast.Inspect(fd.Body, walk)
			nodes[obj] = nd
		}
	}

	// Seed from directly blocking functions and imported facts, then
	// propagate to a fixpoint over the package-local call graph.
	reason := make(map[*types.Func]string)
	for obj, nd := range nodes {
		if nd.reason != "" {
			reason[obj] = nd.reason
		}
	}
	lookup := func(fn *types.Func) (string, bool) {
		if r, ok := reason[fn]; ok {
			return r, true
		}
		if f, ok := pass.ImportFact(fn); ok {
			return f.(blockingFact).reason, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for obj, nd := range nodes {
			if _, ok := reason[obj]; ok {
				continue
			}
			for _, e := range nd.callees {
				if r, ok := lookup(e.fn); ok {
					reason[obj] = fmt.Sprintf("calls %s → %s", funcDisplayName(e.fn), r)
					changed = true
					break
				}
			}
		}
	}
	for obj, r := range reason {
		pass.ExportFact(obj, blockingFact{reason: r})
	}

	// Diagnose annotated functions: report each blocking operation or
	// blocking-reaching call at its own position, so //fuzzyho:allow can
	// waive individual lines.
	for decl := range funcDeclsWith(pkg, DirNoLockIO) {
		name := decl.Name.Name
		selectDepth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				selectDepth++
				ast.Inspect(n.Body, walk)
				selectDepth--
				return false
			case *ast.SendStmt:
				if selectDepth == 0 {
					pass.Reportf(n.Pos(), "unbounded channel send in %s, annotated //fuzzyho:nolockio (runs under TCP.memMu / the ring-flip lock): a full channel would stall every submitter and the membership change itself — the failure class the two-phase migration was rebuilt to remove", name)
				}
			case *ast.CallExpr:
				kind, obj := callee(pkg.Info, n)
				if kind != calleeFunc {
					return true
				}
				fn := obj.(*types.Func)
				if why, ok := blockingFuncs[fn.FullName()]; ok {
					pass.Reportf(n.Pos(), "%s (%s) in %s, annotated //fuzzyho:nolockio (runs under TCP.memMu / the ring-flip lock): blocking under the membership lock stalls every submitter until the peer answers", why, fn.FullName(), name)
					return true
				}
				if r, ok := lookup(fn); ok {
					pass.Reportf(n.Pos(), "%s, annotated //fuzzyho:nolockio (runs under TCP.memMu / the ring-flip lock), reaches blocking I/O: %s → %s", name, funcDisplayName(fn), r)
				}
			}
			return true
		}
		ast.Inspect(decl.Body, walk)
	}
	return nil
}
