package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// Package is one loaded package: syntax with comments, type information,
// and the parsed (but deliberately not type-checked) in-package and
// external test files, which the wirepair analyzer scans for fuzz
// targets.
type Package struct {
	Path string
	Dir  string
	Fset *token.FileSet
	// Files are the package's non-test files, type-checked.
	Files []*ast.File
	// TestFiles are the package's *_test.go files (internal and
	// external), parsed for syntax only.
	TestFiles []*ast.File
	// Src maps file path to raw content, for annotation-position checks.
	Src map[string][]byte

	Types *types.Package
	Info  *types.Info

	// Target marks packages the suite analyzes (dependencies loaded only
	// for type information have Target false).
	Target bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	ImportMap    map[string]string
	Export       string
	Standard     bool
	DepOnly      bool
	Incomplete   bool
}

// goList runs `go list -deps -export -json` over the patterns and
// returns the decoded records in dependency order (go list emits
// dependencies before dependents).
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files (the
// paths `go list -export` reports), with source-checked module packages
// taking precedence so the whole load shares one types object space.
type exportImporter struct {
	gc     types.ImporterFrom
	source map[string]*types.Package
	// importMap, per importing package, translates import paths as
	// written to resolved paths (vendoring, "C" shims); nil when empty.
	importMap map[string]string
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if m, ok := im.importMap[path]; ok && m != "" {
		path = m
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.source[path]; ok {
		return p, nil
	}
	return im.gc.ImportFrom(path, dir, mode)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load loads the packages matching patterns (relative to dir; "" means
// the current directory) for analysis.  Packages in the pattern set are
// type-checked from source and marked Target; their dependencies are
// imported from export data.  The returned slice is in dependency order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exportFiles := make(map[string]string, len(list))
	for _, lp := range list {
		if lp.Export != "" {
			exportFiles[lp.ImportPath] = lp.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("gc importer does not implement types.ImporterFrom")
	}
	source := make(map[string]*types.Package)

	var out []*Package
	for _, lp := range list {
		if lp.Standard || lp.DepOnly || lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Incomplete {
			return nil, fmt.Errorf("package %s failed to load (run `go build ./...` first)", lp.ImportPath)
		}
		pkg, err := typeCheck(fset, lp, &exportImporter{gc: gc, source: source, importMap: lp.ImportMap})
		if err != nil {
			return nil, err
		}
		source[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses and type-checks one package from source and parses
// its test files for syntax.
func typeCheck(fset *token.FileSet, lp *listPkg, imp types.Importer) (*Package, error) {
	pkg := &Package{
		Path:   lp.ImportPath,
		Dir:    lp.Dir,
		Fset:   fset,
		Src:    make(map[string][]byte),
		Target: true,
	}
	for _, name := range lp.GoFiles {
		f, err := parseOne(fset, pkg, filepath.Join(lp.Dir, name))
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...) {
		f, err := parseOne(fset, pkg, filepath.Join(lp.Dir, name))
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func parseOne(fset *token.FileSet, pkg *Package, path string) (*ast.File, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg.Src[path] = src
	return f, nil
}

// LoadFixtures loads analyzer test fixtures: each entry in paths names a
// package directory under root (its import path inside the fixture
// universe).  Imports between fixture packages resolve by directory;
// everything else resolves through the toolchain's export data via one
// `go list` call.  Fixture *_test.go files are parsed but not
// type-checked, matching the real loader.  The result is in dependency
// order, all packages Target.
func LoadFixtures(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	type fixture struct {
		path  string
		pkg   *Package
		deps  []string // fixture-internal imports
		ext   []string // external imports
		done  bool
		onStk bool
	}
	fixtures := make(map[string]*fixture, len(paths))
	isFixture := func(imp string) bool {
		st, err := os.Stat(filepath.Join(root, imp))
		return err == nil && st.IsDir()
	}
	extSet := map[string]bool{}
	for _, p := range paths {
		dir := filepath.Join(root, p)
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fx := &fixture{path: p, pkg: &Package{Path: p, Dir: dir, Fset: fset, Src: make(map[string][]byte), Target: true}}
		var names []string
		for _, e := range ents {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parseOne(fset, fx.pkg, filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			if isTestFile(name) {
				fx.pkg.TestFiles = append(fx.pkg.TestFiles, f)
				continue
			}
			fx.pkg.Files = append(fx.pkg.Files, f)
			for _, spec := range f.Imports {
				imp, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					return nil, err
				}
				if isFixture(imp) {
					fx.deps = append(fx.deps, imp)
				} else {
					fx.ext = append(fx.ext, imp)
					extSet[imp] = true
				}
			}
		}
		fixtures[p] = fx
	}

	// One go list over the union of external imports supplies export data
	// for the fixtures' dependencies.
	exportFiles := make(map[string]string)
	if len(extSet) > 0 {
		ext := make([]string, 0, len(extSet))
		for p := range extSet {
			ext = append(ext, p)
		}
		sort.Strings(ext)
		list, err := goList(root, ext)
		if err != nil {
			return nil, err
		}
		for _, lp := range list {
			if lp.Export != "" {
				exportFiles[lp.ImportPath] = lp.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	gc, _ := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	source := make(map[string]*types.Package)
	imp := &exportImporter{gc: gc, source: source}

	// Type-check in dependency order (fixture graphs are tiny; recurse).
	var out []*Package
	var visit func(p string) error
	visit = func(p string) error {
		fx, ok := fixtures[p]
		if !ok {
			return fmt.Errorf("fixture %s imported but not listed", p)
		}
		if fx.done {
			return nil
		}
		if fx.onStk {
			return fmt.Errorf("fixture import cycle through %s", p)
		}
		fx.onStk = true
		for _, d := range fx.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		fx.onStk = false
		fx.pkg.Info = newInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(p, fset, fx.pkg.Files, fx.pkg.Info)
		if err != nil {
			return fmt.Errorf("type-checking fixture %s: %w", p, err)
		}
		fx.pkg.Types = tpkg
		source[p] = tpkg
		fx.done = true
		out = append(out, fx.pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
