package analysis

import (
	"go/ast"
	"go/types"
)

// calleeKind classifies what a CallExpr invokes.
type calleeKind int

const (
	calleeUnknown calleeKind = iota
	calleeFunc               // static function or method (incl. interface methods)
	calleeBuiltin            // len, append, make, ...
	calleeConversion
	calleeDynamic // call through a func value (variable, field, parameter)
)

// callee resolves what a call expression invokes using the package's
// type information.
func callee(info *types.Info, call *ast.CallExpr) (calleeKind, types.Object) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return calleeConversion, nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return calleeDynamic, nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	switch o := obj.(type) {
	case *types.Builtin:
		return calleeBuiltin, o
	case *types.Func:
		if g := o.Origin(); g != nil {
			o = g
		}
		return calleeFunc, o
	case *types.Var:
		return calleeDynamic, o
	case *types.TypeName:
		return calleeConversion, nil
	case nil:
		return calleeUnknown, nil
	}
	return calleeUnknown, obj
}

// funcDisplayName renders a callee for diagnostics: FullName for
// methods, package-qualified name for functions.
func funcDisplayName(fn *types.Func) string {
	return fn.FullName()
}

// isMapType reports whether t (after unwrapping named types and
// pointers) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	_, ok := u.(*types.Map)
	return ok
}

// pointerShaped reports whether values of type t fit an interface's data
// word without heap allocation (pointers, channels, maps, funcs, unsafe
// pointers).  Everything else boxes when converted to an interface.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
