// Package analysis is the custom static-analysis suite (`hovet`) that
// enforces the codebase's three load-bearing invariants at build time:
//
//   - 0 B/decision steady state on the serve hot path (hotpath analyzer),
//   - byte-identical decision sequences across sim/serve/cluster
//     (determinism analyzer),
//   - no blocking I/O reachable from code that runs under the membership
//     locks (lockcheck analyzer),
//
// plus the wire-surface pairing rule (wirepair analyzer): an encoder
// cannot land without its decoder and a seeded fuzz target.
//
// The suite is intentionally self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / object Facts /
// analysistest-style fixtures) but is built only on the standard
// library's go/ast, go/types and go/importer, with package metadata and
// export data supplied by `go list -deps -export -json`.  The container
// this repo builds in has no module proxy access, so vendoring x/tools
// is not an option; the subset implemented here is exactly what the four
// analyzers need.
//
// Policy lives next to the code as comment annotations:
//
//	//fuzzyho:hotpath        this function is on the 0-alloc serve path
//	//fuzzyho:deterministic  this function feeds decision sequences or
//	                         wire bytes
//	//fuzzyho:nolockio       this function runs while holding TCP.memMu /
//	                         the ring-flip lock
//	//fuzzyho:allow <why>    suppress findings on the annotated line
//	                         (the justification string is mandatory)
//	//fuzzyho:wirepair parse=P fuzz=F   explicit encoder/decoder pairing
//	                         when names do not match by convention
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.  Run inspects a single package through its
// Pass and reports diagnostics; cross-package state flows through object
// facts (see Pass.ExportFact / Pass.ImportFact).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	suite *Suite
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.  Findings on lines carrying (or
// directly below) a `//fuzzyho:allow reason` annotation are dropped by
// the suite after the analyzer runs.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// factKey namespaces facts per analyzer: each analyzer sees only the
// facts it exported itself (on any package analyzed earlier in
// dependency order, or this one).
type factKey struct {
	analyzer string
	obj      types.Object
}

// ExportFact attaches a fact to obj for this analyzer.  Packages are
// analyzed in dependency order and share one types object space (module
// packages are type-checked from source and imported as the same
// *types.Package), so facts exported while analyzing a dependency are
// visible verbatim when its importers are analyzed.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	p.suite.facts[factKey{p.Analyzer.Name, obj}] = fact
}

// ImportFact returns the fact this analyzer attached to obj, if any.
func (p *Pass) ImportFact(obj types.Object) (any, bool) {
	f, ok := p.suite.facts[factKey{p.Analyzer.Name, obj}]
	return f, ok
}

// Suite runs a set of analyzers over packages in dependency order with a
// shared fact store.
type Suite struct {
	Analyzers []*Analyzer
	facts     map[factKey]any
}

// NewSuite builds a suite over the given analyzers.
func NewSuite(as ...*Analyzer) *Suite {
	return &Suite{Analyzers: as, facts: make(map[factKey]any)}
}

// DefaultAnalyzers is the hovet check set, in reporting order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{HotpathAnalyzer, DeterminismAnalyzer, LockcheckAnalyzer, WirepairAnalyzer}
}

// Run analyzes every target package (pkgs must be in dependency order,
// as returned by the loader) and returns the surviving diagnostics,
// sorted by position.  Malformed fuzzyho annotations are themselves
// diagnostics (analyzer name "fuzzyho"); `//fuzzyho:allow` suppressions
// are applied to analyzer findings but never to annotation errors.
func (s *Suite) Run(pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		ann, annDiags := ScanAnnotations(pkg)
		out = append(out, annDiags...)
		for _, a := range s.Analyzers {
			var diags []Diagnostic
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, suite: s, diags: &diags}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				if ann.Allowed(d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// funcDeclOf returns the FuncDecl enclosing pos in file, or nil.
func funcDeclOf(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
