package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeFinding is one compiler-reported heap escape inside a
// //fuzzyho:hotpath function.  Findings are normalized to be
// line-number independent (function identity plus the compiler's escape
// message) so the committed baseline survives unrelated edits to the
// same file.
type EscapeFinding struct {
	Func    string // pkgpath.(Recv).Name
	Message string // e.g. "make([]uint64, n) escapes to heap"
}

func (e EscapeFinding) String() string { return e.Func + ": " + e.Message }

// EscapeCheck recompiles every target package that contains hotpath
// annotations with `go tool compile -m=1` and returns the escape
// diagnostics that land inside hotpath function bodies, sorted and
// deduplicated.
//
// The hotpath analyzer forbids the allocation constructs it can see in
// the syntax; this pass asks the compiler's escape analysis about the
// ones it cannot (a parameter leaking to the heap through a callee, a
// slice header outliving its frame).  `go build -gcflags=-m` is useless
// here because cached builds print nothing; invoking the compiler
// directly with an importcfg assembled from `go list -export` is
// cache-proof and touches only the annotated packages.
func EscapeCheck(dir string, pkgs []*Package) ([]EscapeFinding, error) {
	seen := make(map[EscapeFinding]bool)
	var out []EscapeFinding
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		decls := funcDeclsWith(pkg, DirHotpath)
		if len(decls) == 0 {
			continue
		}
		findings, err := escapeCheckPkg(dir, pkg, decls)
		if err != nil {
			return nil, err
		}
		for _, f := range findings {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// escapeCheckPkg compiles one package with -m=1 and maps escape
// diagnostics back to the hotpath functions that contain them.
func escapeCheckPkg(dir string, pkg *Package, decls map[*ast.FuncDecl]*ast.File) ([]EscapeFinding, error) {
	list, err := goList(dir, []string{pkg.Path})
	if err != nil {
		return nil, err
	}
	var cfg bytes.Buffer
	var files []string
	for _, lp := range list {
		if lp.ImportPath == pkg.Path {
			for _, name := range lp.GoFiles {
				files = append(files, filepath.Join(lp.Dir, name))
			}
			continue
		}
		if lp.Export != "" {
			fmt.Fprintf(&cfg, "packagefile %s=%s\n", lp.ImportPath, lp.Export)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("escape-check: no Go files for %s", pkg.Path)
	}
	cfgFile, err := os.CreateTemp("", "hovet-importcfg-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(cfgFile.Name())
	if _, err := cfgFile.Write(cfg.Bytes()); err != nil {
		cfgFile.Close()
		return nil, err
	}
	cfgFile.Close()

	args := append([]string{"tool", "compile", "-m=1", "-p", pkg.Path,
		"-importcfg", cfgFile.Name(), "-o", os.DevNull}, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	outBytes, err := cmd.CombinedOutput()
	// compile exits 0 with -m diagnostics on stdout/stderr; a non-zero
	// exit means the package does not compile, which Load would already
	// have caught — report it with the compiler's own output.
	if err != nil && !looksLikeDiagnosticsOnly(outBytes) {
		return nil, fmt.Errorf("escape-check: compiling %s: %v\n%s", pkg.Path, err, outBytes)
	}

	// Index hotpath body line ranges per file.
	type span struct {
		start, end int
		name       string
	}
	spans := make(map[string][]span)
	for fd := range decls {
		start := pkg.Fset.Position(fd.Body.Pos())
		end := pkg.Fset.Position(fd.Body.End())
		spans[start.Filename] = append(spans[start.Filename],
			span{start: start.Line, end: end.Line, name: declDisplayName(pkg, fd)})
	}

	var findings []EscapeFinding
	sc := bufio.NewScanner(bytes.NewReader(outBytes))
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, lineNo, msg, ok := splitCompilerDiag(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		for _, sp := range spans[file] {
			if lineNo >= sp.start && lineNo <= sp.end {
				findings = append(findings, EscapeFinding{Func: sp.name, Message: msg})
				break
			}
		}
	}
	return findings, sc.Err()
}

// splitCompilerDiag parses "file.go:12:6: message" (column optional).
func splitCompilerDiag(line string) (file string, lineNo int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil {
		return "", 0, "", false
	}
	rest = rest[j+1:]
	// Optional column.
	if k := strings.IndexByte(rest, ':'); k >= 0 {
		if _, err := strconv.Atoi(rest[:k]); err == nil {
			rest = rest[k+1:]
		}
	}
	return file, n, strings.TrimSpace(rest), true
}

// looksLikeDiagnosticsOnly reports whether compiler output consists only
// of -m diagnostic lines (inlining/escape notes), not errors.
func looksLikeDiagnosticsOnly(out []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.Contains(line, ": can inline") || strings.Contains(line, ": inlining call") ||
			strings.Contains(line, "escapes to heap") || strings.Contains(line, "moved to heap") ||
			strings.Contains(line, "does not escape") || strings.Contains(line, ": leaking param") {
			continue
		}
		return false
	}
	return true
}

// declDisplayName renders a FuncDecl as pkgpath.Name or
// pkgpath.(Recv).Name for baseline entries.
func declDisplayName(pkg *Package, fd *ast.FuncDecl) string {
	if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return pkg.Path + "." + fd.Name.Name
}

// CompareBaseline diffs findings against the committed baseline file.
// Returns the findings missing from the baseline (failures) and baseline
// entries no longer produced (stale, warn-only).  A missing baseline
// file is treated as empty: everything is new.
func CompareBaseline(baselinePath string, findings []EscapeFinding) (news []EscapeFinding, stale []string, err error) {
	base := make(map[string]bool)
	data, err := os.ReadFile(baselinePath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	if err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			base[line] = true
		}
	}
	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		s := f.String()
		got[s] = true
		if !base[s] {
			news = append(news, f)
		}
	}
	for line := range base {
		if !got[line] {
			stale = append(stale, line)
		}
	}
	sort.Strings(stale)
	return news, stale, nil
}
