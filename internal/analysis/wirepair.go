package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// WirepairAnalyzer enforces the codec-pairing invariant on the wire
// surface: every exported `Append<X>JSON` encoder must have a matching
// `Parse<X>Line` decoder in the same package and a seeded `FuzzParse<X>Line`
// fuzz target in its test files.  The encode→decode→encode byte-identity
// pins only cover codecs that HAVE a decoder; an encoder without one is
// a wire format nothing can read back — exactly how the v1 snapshot
// format rotted before the journaling rework.
//
// Encoders whose decoder breaks the naming convention declare the pair
// explicitly:
//
//	//fuzzyho:wirepair parse=ParseBatchLine fuzz=FuzzParseBatchLine
//
// A fuzz target counts as seeded when its body calls f.Add at least
// once; an unseeded target starts from the empty corpus and spends its
// smoke budget rediscovering the format's first byte.
var WirepairAnalyzer = &Analyzer{
	Name: "wirepair",
	Doc:  "require a Parse* decoder and a seeded Fuzz* target for every exported Append*JSON encoder",
	Run:  runWirepair,
}

func runWirepair(pass *Pass) error {
	pkg := pass.Pkg

	// Index package-level function names in source and test files.
	funcs := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				funcs[fd.Name.Name] = true
			}
		}
	}
	fuzzSeeded := make(map[string]bool) // fuzz func name -> calls f.Add
	for _, f := range pkg.TestFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
				continue
			}
			seeded := false
			if fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
							seeded = true
							return false
						}
					}
					return true
				})
			}
			fuzzSeeded[fd.Name.Name] = seeded
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			name := fd.Name.Name
			base, ok := wireBaseName(name)
			if !ok {
				continue
			}
			parseName := "Parse" + base + "Line"
			fuzzName := "FuzzParse" + base + "Line"
			if args, ok := DirectiveArgs(fd.Doc, DirWirepair); ok {
				p, fz, err := parseWirepairArgs(args)
				if err != nil {
					pass.Reportf(fd.Pos(), "%s: bad //fuzzyho:wirepair annotation: %v", name, err)
					continue
				}
				parseName, fuzzName = p, fz
			}
			if !funcs[parseName] {
				pass.Reportf(fd.Pos(), "encoder %s has no decoder %s in this package: every wire encoder needs a decoder so the encode→decode→encode byte-identity pin can cover it (declare a non-conventional pair with //fuzzyho:wirepair parse=... fuzz=...)", name, parseName)
			}
			seeded, exists := fuzzSeeded[fuzzName]
			switch {
			case !exists:
				pass.Reportf(fd.Pos(), "encoder %s has no fuzz target %s: wire decoders take bytes from the network and must survive arbitrary input (see the fuzz-smoke make target)", name, fuzzName)
			case !seeded:
				pass.Reportf(fd.Pos(), "fuzz target %s for encoder %s has no f.Add seed: an unseeded target starts from the empty corpus and the smoke budget never reaches the interesting states", fuzzName, name)
			}
		}
	}
	return nil
}

// wireBaseName extracts X from Append<X>JSON; ok is false for names that
// do not match the encoder convention.
func wireBaseName(name string) (string, bool) {
	rest, ok := strings.CutPrefix(name, "Append")
	if !ok {
		return "", false
	}
	base, ok := strings.CutSuffix(rest, "JSON")
	if !ok || base == "" {
		return "", false
	}
	return base, true
}

// parseWirepairArgs parses `parse=Name fuzz=Name` annotation arguments.
func parseWirepairArgs(args string) (parse, fuzz string, err error) {
	for _, field := range strings.Fields(args) {
		k, v, ok := strings.Cut(field, "=")
		if !ok || v == "" {
			return "", "", fmt.Errorf("expected key=value fields, got %q", field)
		}
		switch k {
		case "parse":
			parse = v
		case "fuzz":
			fuzz = v
		default:
			return "", "", fmt.Errorf("unknown key %q (want parse=, fuzz=)", k)
		}
	}
	if parse == "" || fuzz == "" {
		return "", "", fmt.Errorf("both parse= and fuzz= are required, got %q", args)
	}
	return parse, fuzz, nil
}
