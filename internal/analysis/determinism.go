package analysis

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the byte-identical-decision-sequence
// invariant on functions annotated //fuzzyho:deterministic: the serve
// wire codecs, the cluster ring and migration planning, the fuzzy
// inference kernels and the sim replay path.  The runtime guards for the
// same property are the equivalence pins (sim-vs-serve-vs-cluster
// decision sequences, encode→decode→encode byte identity); they sample
// specific inputs — this analyzer rejects the constructs that make
// output depend on anything but the input:
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - the global math/rand generator (decision streams must draw from
//     the seeded internal/rng sub-streams),
//   - map iteration (order is randomized per run; emitted or
//     accumulated results become order-unstable — iterate a sorted key
//     slice instead, cf. sortedKeys in internal/cluster),
//   - select over multiple communication cases (the runtime picks a
//     ready case pseudo-randomly).
//
// Order-insensitive exceptions (pure reductions over a map, say) carry
// //fuzzyho:allow with the reason the result cannot observe order.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clock, global rand, map-order and select nondeterminism in //fuzzyho:deterministic functions",
	Run:  runDeterminism,
}

// deterministicDeniedFuncs maps forbidden callees to the invariant each
// would break.
var deterministicDeniedFuncs = map[string]string{
	"time.Now":   "wall-clock input makes replay diverge: byte-identical decision sequences across sim/serve/cluster (equivalence pins, TestLocalMembershipEquivalence) require outputs to be a function of the inputs only",
	"time.Since": "wall-clock input makes replay diverge: byte-identical decision sequences across sim/serve/cluster require outputs to be a function of the inputs only",
	"time.Until": "wall-clock input makes replay diverge: byte-identical decision sequences across sim/serve/cluster require outputs to be a function of the inputs only",
}

// globalRandPkg flags package-level math/rand draws; seeded *rand.Rand
// instances are fine (the sim's per-replica sub-streams are exactly
// that), so only package functions are denied, not methods.
const globalRandPkg = "math/rand"

func runDeterminism(pass *Pass) error {
	pkg := pass.Pkg
	for decl := range funcDeclsWith(pkg, DirDeterministic) {
		name := decl.Name.Name
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				kind, obj := callee(pkg.Info, n)
				if kind != calleeFunc {
					return true
				}
				fn := obj.(*types.Func)
				full := fn.FullName()
				if why, ok := deterministicDeniedFuncs[full]; ok {
					pass.Reportf(n.Pos(), "%s in deterministic function %s: %s", full, name, why)
					return true
				}
				if fnPkg := fn.Pkg(); fnPkg != nil && fnPkg.Path() == globalRandPkg && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(n.Pos(), "global %s in deterministic function %s: the process-global generator is seeded per run; decision streams must draw from the seeded internal/rng sub-streams so sim, serve and cluster replay the same bytes", full, name)
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok && isMapType(tv.Type) {
					pass.Reportf(n.Pos(), "map iteration in deterministic function %s: iteration order is randomized per run, so anything emitted or accumulated in order becomes unstable — iterate a sorted key slice instead (cf. sortedKeys in internal/cluster)", name)
				}
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d communication cases in deterministic function %s: the runtime picks among ready cases pseudo-randomly, reordering the decision stream", comm, name)
				}
			}
			return true
		})
	}
	return nil
}
