package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProducesKnownStream(t *testing.T) {
	// MINSTD with seed 1 has a published reference value: after 10000 steps
	// the state is 1043618065 (Park & Miller 1988).
	s := New(1)
	var v int64
	for i := 0; i < 10000; i++ {
		v = s.Uint31()
	}
	if v != 1043618065 {
		t.Fatalf("MINSTD 10000th output = %d, want 1043618065", v)
	}
}

func TestResetRewindsStream(t *testing.T) {
	s := New(100)
	first := make([]float64, 16)
	for i := range first {
		first[i] = s.Float64()
	}
	s.Reset(100)
	for i := range first {
		if got := s.Float64(); got != first[i] {
			t.Fatalf("after Reset, sample %d = %g, want %g", i, got, first[i])
		}
	}
}

func TestSeedZeroIsUsable(t *testing.T) {
	s := New(0)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		seen[v] = true
	}
	if len(seen) < 90 {
		t.Fatalf("seed-0 stream looks degenerate: only %d distinct values in 100", len(seen))
	}
}

func TestNegativeSeedIsUsable(t *testing.T) {
	s := New(-12345)
	for i := 0; i < 100; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(100), New(200)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 100 and 200 collided on %d of 1000 samples", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 64; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Moments(t *testing.T) {
	s := New(42)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ≈ 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ≈ %g", variance, 1.0/12)
	}
}

func TestGaussMoments(t *testing.T) {
	s := New(7)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Gauss()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %g, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %g, want ≈ 1", variance)
	}
}

func TestGaussFinite(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Gauss()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Gauss() produced non-finite value %g at i=%d", v, i)
		}
	}
}

func TestNormalScaling(t *testing.T) {
	s := New(11)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal(5,2) mean = %g, want ≈ 5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Normal(5,2) variance = %g, want ≈ 4", variance)
	}
}

func TestNormalNegativeStddevPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal with negative stddev did not panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestPositiveNormal(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.PositiveNormal(0.6, 0.3, 0.05)
		if v < 0.05 {
			t.Fatalf("PositiveNormal below floor: %g", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(7) bucket %d count %d far from uniform 10000", b, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %g out of range", v)
		}
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1,0) did not panic")
		}
	}()
	New(1).Uniform(1, 0)
}

func TestAngleRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Angle()
		if v < 0 || v >= 2*math.Pi {
			t.Fatalf("Angle() = %g out of [0, 2π)", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(2)
		if v < 0 {
			t.Fatalf("Exponential(2) = %g negative", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean = %g, want ≈ 0.5", mean)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestSplitIndependence(t *testing.T) {
	base := New(100)
	a, b := base.Split(0), base.Split(1)
	if a.Seed() == b.Seed() {
		t.Fatal("Split(0) and Split(1) derived the same seed")
	}
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("replica streams collided on %d of 1000 samples", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(100).Split(3)
	b := New(100).Split(3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestDeriveSeedRange(t *testing.T) {
	if err := quick.Check(func(seed int64, replica uint8) bool {
		v := DeriveSeed(seed, int(replica))
		return v >= 1 && v <= minstdM-1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeedMatchesSplit(t *testing.T) {
	s := New(777)
	want := DeriveSeed(777, 5)
	if got := s.Split(5).Seed(); got != want {
		t.Fatalf("Split(5).Seed() = %d, want DeriveSeed = %d", got, want)
	}
}

func TestGaussPairBufferingResetCleared(t *testing.T) {
	s := New(21)
	_ = s.Gauss() // buffers the sine half of the pair
	s.Reset(21)
	a := s.Gauss()
	s.Reset(21)
	b := s.Gauss()
	if a != b {
		t.Fatalf("Gauss after Reset differs: %g vs %g (stale pair buffer)", a, b)
	}
}
