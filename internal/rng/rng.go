// Package rng provides the deterministic pseudo-random substrate used by
// every stochastic component of the simulator.
//
// The paper (Barolli et al., ICPP-W 2008) parameterises its Monte-Carlo
// random-walk runs by an integer seed ("iseed = 100, 200"); reproducing its
// experiments therefore requires a generator whose whole stream is a pure
// function of that seed, independent of the Go release in use.  Package rng
// implements the classic MINSTD linear congruential generator (Park-Miller,
// multiplier 16807 modulo 2^31-1) together with the Box-Muller transform for
// Gaussian variates.  MINSTD is the same generator family that the Fortran
// simulation codes of the paper's era shipped with, and its tiny state makes
// sub-stream derivation (one replica per run, as in the paper's "10 times
// simulations") trivial and collision-free.
//
// The package intentionally does not wrap math/rand: the stdlib generator
// changed algorithms across Go releases, which would silently change every
// trajectory in EXPERIMENTS.md.
package rng

import (
	"fmt"
	"math"
)

// MINSTD constants (Park-Miller 1988 "minimal standard" generator).
const (
	minstdA = 16807      // multiplier
	minstdM = 2147483647 // modulus 2^31 - 1 (a Mersenne prime)
)

// Source is a deterministic uniform pseudo-random source.  The zero value is
// not valid; construct with New.  Source is not safe for concurrent use; use
// one Source per goroutine (see Split).
type Source struct {
	state int64
	seed  int64

	// Box-Muller carry: the transform produces variates in pairs.
	gaussReady bool
	gaussValue float64
}

// New returns a Source seeded with seed.  Any seed value is accepted: the
// value is folded into the generator's valid state range (1 .. m-1).  Two
// distinct seeds in [1, m-1] yield distinct streams.
func New(seed int64) *Source {
	s := &Source{seed: seed}
	s.Reset(seed)
	return s
}

// Reset rewinds the source to the beginning of the stream for seed.
func (s *Source) Reset(seed int64) {
	state := seed % minstdM
	if state < 0 {
		state += minstdM
	}
	if state == 0 {
		// State 0 is a fixed point of the LCG; remap it to an arbitrary
		// interior point so that New(0) still yields a usable stream.
		state = 1043618065
	}
	s.seed = seed
	s.state = state
	s.gaussReady = false
	s.gaussValue = 0
}

// Seed returns the seed the source was created (or last Reset) with.
func (s *Source) Seed() int64 { return s.seed }

// next advances the LCG and returns the raw state in [1, m-1].
func (s *Source) next() int64 {
	s.state = (s.state * minstdA) % minstdM
	return s.state
}

// Uint31 returns the next raw generator output in [1, 2^31-2].
func (s *Source) Uint31() int64 { return s.next() }

// Float64 returns a uniform variate in the half-open interval [0, 1).
func (s *Source) Float64() float64 {
	// state ∈ [1, m-1], so (state-1)/(m-1) ∈ [0, 1).
	return float64(s.next()-1) / float64(minstdM-1)
}

// Intn returns a uniform integer in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with non-positive n %d", n))
	}
	return int(s.Float64() * float64(n))
}

// Uniform returns a uniform variate in [lo, hi).  It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: Uniform called with hi %g < lo %g", hi, lo))
	}
	return lo + (hi-lo)*s.Float64()
}

// Angle returns a uniform angle in [0, 2π).
func (s *Source) Angle() float64 { return s.Float64() * 2 * math.Pi }

// Gauss returns a standard normal variate (mean 0, stddev 1) using the
// Box-Muller transform.  Variates are produced in pairs; the second of each
// pair is buffered so consecutive calls consume uniforms at half rate.
func (s *Source) Gauss() float64 {
	if s.gaussReady {
		s.gaussReady = false
		return s.gaussValue
	}
	// Draw u1 ∈ (0,1] to keep Log finite: Float64 returns [0,1), so flip it.
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gaussValue = r * math.Sin(2*math.Pi*u2)
	s.gaussReady = true
	return r * math.Cos(2*math.Pi*u2)
}

// Normal returns a normal variate with the given mean and standard
// deviation.  It panics if stddev is negative.
func (s *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic(fmt.Sprintf("rng: Normal called with negative stddev %g", stddev))
	}
	return mean + stddev*s.Gauss()
}

// PositiveNormal returns |N(mean, stddev)| folded to be at least floor.
// The paper's random walk draws step lengths from a Gaussian with mean
// 0.6 km; folding keeps the walk well defined when the tail goes negative.
func (s *Source) PositiveNormal(mean, stddev, floor float64) float64 {
	v := math.Abs(s.Normal(mean, stddev))
	if v < floor {
		v = floor
	}
	return v
}

// Exponential returns an exponential variate with the given rate (λ).
// It panics if rate is not positive.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exponential called with non-positive rate %g", rate))
	}
	return -math.Log(1-s.Float64()) / rate
}

// Split derives an independent sub-stream source for replica i of this
// source's seed.  The derivation is a SplitMix-style avalanche over
// (seed, i), so replicas of the same seed, and the same replica of
// different seeds, land far apart in seed space.
func (s *Source) Split(i int) *Source {
	return New(DeriveSeed(s.seed, i))
}

// DeriveSeed maps a (seed, replica) pair to a well-mixed derived seed.
// It is exported so that callers that construct sources lazily (one per
// goroutine, one per replica) agree on the derivation with Split.
func DeriveSeed(seed int64, replica int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(replica+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	v := int64(z % (minstdM - 1))
	return v + 1 // [1, m-1]
}
