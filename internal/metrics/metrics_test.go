package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hexgrid"
)

var (
	cellA = hexgrid.Cell{I: 0, J: 0}
	cellB = hexgrid.Cell{I: 2, J: -1}
	cellC = hexgrid.Cell{I: 1, J: -2}
)

func ev(epoch int, km float64, from, to hexgrid.Cell) HandoverEvent {
	return HandoverEvent{Epoch: epoch, WalkedKm: km, From: from, To: to}
}

func TestPingPongDetectorFlagsReturn(t *testing.T) {
	d := NewPingPongDetector(1.0)
	if d.Observe(ev(1, 0.5, cellA, cellB)) {
		t.Error("first handover flagged as ping-pong")
	}
	if !d.Observe(ev(3, 0.9, cellB, cellA)) {
		t.Error("quick return not flagged")
	}
	if d.Count() != 1 {
		t.Errorf("count = %d, want 1", d.Count())
	}
	events := d.Events()
	if len(events) != 2 || events[0].PingPong || !events[1].PingPong {
		t.Errorf("events = %v", events)
	}
}

func TestPingPongDetectorWindowExpires(t *testing.T) {
	d := NewPingPongDetector(1.0)
	d.Observe(ev(1, 0.5, cellA, cellB))
	if d.Observe(ev(9, 2.0, cellB, cellA)) {
		t.Error("slow return (1.5 km later) flagged as ping-pong")
	}
}

func TestPingPongDetectorDifferentTarget(t *testing.T) {
	d := NewPingPongDetector(1.0)
	d.Observe(ev(1, 0.5, cellA, cellB))
	if d.Observe(ev(2, 0.7, cellB, cellC)) {
		t.Error("forward progression B->C flagged as ping-pong")
	}
}

func TestPingPongDetectorChain(t *testing.T) {
	// A->B, B->A, A->B: two returns, both within window — 2 ping-pongs.
	d := NewPingPongDetector(5)
	d.Observe(ev(1, 0.1, cellA, cellB))
	d.Observe(ev(2, 0.2, cellB, cellA))
	d.Observe(ev(3, 0.3, cellA, cellB))
	if d.Count() != 2 {
		t.Errorf("chain count = %d, want 2", d.Count())
	}
}

func TestPingPongDetectorReset(t *testing.T) {
	d := NewPingPongDetector(1)
	d.Observe(ev(1, 0.1, cellA, cellB))
	d.Observe(ev(2, 0.2, cellB, cellA))
	d.Reset()
	if d.Count() != 0 || len(d.Events()) != 0 {
		t.Error("Reset did not clear state")
	}
	if d.Observe(ev(1, 0.3, cellB, cellA)) {
		t.Error("pre-reset history leaked")
	}
}

func TestPingPongDetectorPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	NewPingPongDetector(0)
}

func TestHandoverEventString(t *testing.T) {
	e := ev(4, 1.25, cellA, cellB)
	e.Score = 0.81
	if s := e.String(); !strings.Contains(s, "(0,0) -> (2,-1)") || !strings.Contains(s, "0.810") {
		t.Errorf("String = %q", s)
	}
	e.PingPong = true
	if !strings.Contains(e.String(), "ping-pong") {
		t.Error("ping-pong tag missing")
	}
}

func TestOutageTracker(t *testing.T) {
	o := &OutageTracker{FloorDB: -100}
	for _, p := range []float64{-90, -105, -101, -95} {
		o.Observe(p)
	}
	if got := o.Fraction(); got != 0.5 {
		t.Errorf("outage fraction = %g, want 0.5", got)
	}
	if o.Epochs() != 4 {
		t.Errorf("epochs = %d", o.Epochs())
	}
	o.Reset()
	if o.Fraction() != 0 || o.Epochs() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	if !(s.CI95Lo < s.Mean && s.Mean < s.CI95Hi) {
		t.Errorf("CI [%g, %g] does not bracket the mean", s.CI95Lo, s.CI95Hi)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample not zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.CI95Lo != 3 || s.CI95Hi != 3 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Total() != 100 {
		t.Errorf("total = %d", h.Total())
	}
	for b, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d count %d, want 10", b, c)
		}
	}
	// Out-of-range clamps.
	h.Observe(-5)
	h.Observe(5)
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Error("clamping failed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 10) // uniform over [0, 9.9]
	}
	if q := h.Quantile(0.5); math.Abs(q-5) > 1.1 {
		t.Errorf("median ≈ %g, want ≈ 5", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %g", q)
	}
	empty := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(1, 0, 4) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram accepted")
				}
			}()
			fn()
		}()
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median not NaN")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}
