// Package metrics provides the evaluation instrumentation: the ping-pong
// detector, handover event accounting, outage tracking and summary
// statistics with confidence intervals (the paper averages "10 times
// simulations").
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hexgrid"
)

// HandoverEvent records one executed handover.
type HandoverEvent struct {
	// Epoch is the measurement-epoch index at which the handover fired.
	Epoch int
	// WalkedKm is the cumulative walk distance at that epoch.
	WalkedKm float64
	// From and To are the old and new serving cells.
	From, To hexgrid.Cell
	// Score is the deciding algorithm's decision value (HD for the FLC).
	Score float64
	// PingPong marks the event as the return half of a ping-pong pair
	// (set by the detector, not the algorithm).
	PingPong bool
}

// String implements fmt.Stringer.
func (e HandoverEvent) String() string {
	tag := ""
	if e.PingPong {
		tag = " [ping-pong]"
	}
	return fmt.Sprintf("epoch %d (%.2f km): %v -> %v (score %.3f)%s",
		e.Epoch, e.WalkedKm, e.From, e.To, e.Score, tag)
}

// PingPongDetector flags handovers that return to a recently departed cell.
// The classic definition: a handover A→B followed by B→A within a window is
// a ping-pong pair; the return hop gets flagged.
type PingPongDetector struct {
	// WindowKm is the maximum walked distance between the two hops of a
	// pair for the return to count as ping-pong.
	WindowKm float64

	history []HandoverEvent
	count   int
}

// NewPingPongDetector returns a detector with the given spatial window.
// The window must be positive.
func NewPingPongDetector(windowKm float64) *PingPongDetector {
	if !(windowKm > 0) {
		panic(fmt.Sprintf("metrics: non-positive ping-pong window %g km", windowKm))
	}
	return &PingPongDetector{WindowKm: windowKm}
}

// Observe records a handover and reports whether it closes a ping-pong pair.
func (d *PingPongDetector) Observe(e HandoverEvent) bool {
	pingPong := false
	for i := len(d.history) - 1; i >= 0; i-- {
		prev := d.history[i]
		if e.WalkedKm-prev.WalkedKm > d.WindowKm {
			break
		}
		if prev.From == e.To && prev.To == e.From {
			pingPong = true
			break
		}
	}
	if pingPong {
		d.count++
	}
	e.PingPong = pingPong
	d.history = append(d.history, e)
	return pingPong
}

// Count returns the number of ping-pong returns observed so far.
func (d *PingPongDetector) Count() int { return d.count }

// Events returns all observed handovers with ping-pong flags applied.
func (d *PingPongDetector) Events() []HandoverEvent {
	return append([]HandoverEvent(nil), d.history...)
}

// Reset clears the detector for a new run.
func (d *PingPongDetector) Reset() {
	d.history = d.history[:0]
	d.count = 0
}

// OutageTracker accumulates the fraction of epochs the serving signal spends
// below a quality floor — the link-quality cost of late handovers.
type OutageTracker struct {
	// FloorDB is the outage threshold.
	FloorDB float64

	epochs int
	outage int
}

// Observe records one epoch's serving power.
func (o *OutageTracker) Observe(servingDB float64) {
	o.epochs++
	if servingDB < o.FloorDB {
		o.outage++
	}
}

// Fraction returns outage epochs / total epochs (0 when nothing observed).
func (o *OutageTracker) Fraction() float64 {
	if o.epochs == 0 {
		return 0
	}
	return float64(o.outage) / float64(o.epochs)
}

// Epochs returns the number of observed epochs.
func (o *OutageTracker) Epochs() int { return o.epochs }

// Reset clears the tracker.
func (o *OutageTracker) Reset() { o.epochs, o.outage = 0, 0 }

// Summary holds order statistics of a sample, as reported in
// EXPERIMENTS.md: mean, standard deviation, min/max and a 95% normal
// confidence interval for the mean.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	CI95Lo, CI95Hi float64
}

// Summarize computes a Summary of the sample.  An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	half := 1.96 * s.Std / math.Sqrt(float64(n))
	s.CI95Lo, s.CI95Hi = s.Mean-half, s.Mean+half
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f ci95=[%.4f, %.4f]",
		s.N, s.Mean, s.Std, s.Min, s.Max, s.CI95Lo, s.CI95Hi)
}

// Histogram builds a fixed-width histogram over [lo, hi] with the given
// number of bins; values outside the range clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(hi > lo) || bins < 1 {
		panic(fmt.Sprintf("metrics: bad histogram range [%g, %g] / %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe adds a value.
func (h *Histogram) Observe(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Quantile returns the approximate q-quantile (q in [0, 1]) from the
// histogram, using the left edge of the containing bin.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	acc := 0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		acc += c
		if acc >= target {
			return h.Lo + float64(i)*width
		}
	}
	return h.Hi
}

// Median of a raw sample (exact, not histogram-based).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
