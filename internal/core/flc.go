package core

import (
	"fmt"
	"sync"

	"repro/internal/fuzzy"
)

// FLC is the paper's fuzzy logic controller: the Fig. 5 variables, the
// Table 1 rule base and a Mamdani max–min engine with height
// defuzzification ("triangular and trapezoidal membership functions …
// suitable for real-time operation", §4).  An FLC is immutable and safe for
// concurrent use.
type FLC struct {
	sys *fuzzy.System
	// scratches recycles inference buffers for callers that use the
	// convenience Evaluate; hot loops should hold their own Scratch and
	// call EvaluateInto directly.
	scratches sync.Pool
}

// FLCOptions tunes the inference operators for the ablation studies; the
// zero value is the paper's configuration.
type FLCOptions struct {
	// Engine overrides the fuzzy operator set (nil fields keep defaults:
	// min/max, Mamdani implication, weighted-average defuzzifier).
	Engine fuzzy.Options
	// Rules overrides the rule base (nil keeps the paper's Table 1).
	Rules *fuzzy.RuleBase
	// Variables overrides the linguistic variables (nil entries keep the
	// Fig. 5 definitions).  The output override must be named HD and the
	// inputs CSSP, SSN, DMB.
	CSSP, SSN, DMB, HD *fuzzy.Variable
}

// NewFLC returns the paper's controller.
func NewFLC() *FLC {
	flc, err := NewFLCWithOptions(FLCOptions{})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return flc
}

// NewFLCWithOptions returns a controller with overridden operators,
// variables or rules (the ablation entry point).
func NewFLCWithOptions(opts FLCOptions) (*FLC, error) {
	cssp, ssn, dmb, hd := opts.CSSP, opts.SSN, opts.DMB, opts.HD
	if cssp == nil {
		cssp = NewCSSP()
	}
	if ssn == nil {
		ssn = NewSSN()
	}
	if dmb == nil {
		dmb = NewDMB()
	}
	if hd == nil {
		hd = NewHD()
	}
	for _, check := range []struct{ got, want string }{
		{cssp.Name, VarCSSP}, {ssn.Name, VarSSN}, {dmb.Name, VarDMB}, {hd.Name, VarHD},
	} {
		if check.got != check.want {
			return nil, fmt.Errorf("core: variable named %q, want %q", check.got, check.want)
		}
	}
	rules := NewFRB()
	if opts.Rules != nil {
		rules = *opts.Rules
	}
	sys, err := fuzzy.NewSystem(hd, rules, opts.Engine, cssp, ssn, dmb)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &FLC{sys: sys}, nil
}

// System exposes the underlying fuzzy system (for surface dumps and the
// horules explainer).
func (f *FLC) System() *fuzzy.System { return f.sys }

// NewScratch returns reusable inference buffers for EvaluateInto.  One
// Scratch per goroutine; see fuzzy.Scratch.
func (f *FLC) NewScratch() *fuzzy.Scratch { return f.sys.NewScratch() }

// getScratch pops a pooled Scratch (or makes one); putScratch recycles it.
func (f *FLC) getScratch() *fuzzy.Scratch {
	if sc, ok := f.scratches.Get().(*fuzzy.Scratch); ok {
		return sc
	}
	return f.sys.NewScratch()
}

func (f *FLC) putScratch(sc *fuzzy.Scratch) { f.scratches.Put(sc) }

// Evaluate computes the handover-decision output HD ∈ [0, 1] for the given
// raw inputs.  Inputs are clamped to the Fig. 5 universes, so out-of-range
// measurements saturate rather than fail; the complete Table 1 grid
// guarantees some rule always fires.  Evaluate runs on the positional fast
// path with pooled buffers; per-goroutine hot loops should prefer
// EvaluateInto with their own Scratch.
func (f *FLC) Evaluate(csspDB, ssnDB, dmbNorm float64) (float64, error) {
	sc := f.getScratch()
	hd, err := f.EvaluateInto(sc, csspDB, ssnDB, dmbNorm)
	f.putScratch(sc)
	return hd, err
}

// EvaluateInto is Evaluate on caller-owned buffers: zero heap allocations
// per call.  sc must come from this FLC's NewScratch and must not be shared
// across goroutines.
func (f *FLC) EvaluateInto(sc *fuzzy.Scratch, csspDB, ssnDB, dmbNorm float64) (float64, error) {
	cssp, ssn, dmb := ClampInputs(csspDB, ssnDB, dmbNorm)
	// Positional order matches NewFLCWithOptions: CSSP, SSN, DMB.
	xs := [3]float64{cssp, ssn, dmb}
	return f.sys.EvaluateInto(sc, xs[:])
}

// EvaluateTrace is Evaluate with the full inference explanation.
func (f *FLC) EvaluateTrace(csspDB, ssnDB, dmbNorm float64) (float64, *fuzzy.Trace, error) {
	cssp, ssn, dmb := ClampInputs(csspDB, ssnDB, dmbNorm)
	return f.sys.EvaluateTrace(map[string]float64{
		VarCSSP: cssp,
		VarSSN:  ssn,
		VarDMB:  dmb,
	})
}
