package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fuzzy"
)

// FLC is the paper's fuzzy logic controller: the Fig. 5 variables, the
// Table 1 rule base and a Mamdani max–min engine with height
// defuzzification ("triangular and trapezoidal membership functions …
// suitable for real-time operation", §4).  An FLC is immutable and safe for
// concurrent use.
type FLC struct {
	sys *fuzzy.System
	// surface, when non-nil, is the compiled control surface: Evaluate,
	// EvaluateInto and EvaluateBatch answer from it instead of running
	// Mamdani inference per decision.  Set once by Compile (or the
	// Compiled option) before the FLC is shared; immutable afterwards.
	surface *fuzzy.CompiledSurface
	// scratches recycles inference buffers for callers that use the
	// convenience Evaluate; hot loops should hold their own Scratch and
	// call EvaluateInto directly.
	scratches sync.Pool
}

// FLCOptions tunes the inference operators for the ablation studies; the
// zero value is the paper's configuration.
type FLCOptions struct {
	// Engine overrides the fuzzy operator set (nil fields keep defaults:
	// min/max, Mamdani implication, weighted-average defuzzifier).
	Engine fuzzy.Options
	// Rules overrides the rule base (nil keeps the paper's Table 1).
	Rules *fuzzy.RuleBase
	// Variables overrides the linguistic variables (nil entries keep the
	// Fig. 5 definitions).  The output override must be named HD and the
	// inputs CSSP, SSN, DMB.
	CSSP, SSN, DMB, HD *fuzzy.Variable
	// Compiled builds the compiled control surface at construction: the
	// paper's configuration compiles into the exact segment-table kernel
	// (bit-equivalent, ~5× faster per decision); operator ablations fall
	// back to a sampled interpolation lattice with a probe-reported error
	// bound.  Construction fails if the surface cannot be bounded — use
	// Compile directly to fall back gracefully.
	Compiled bool
	// CompiledResolution overrides the lattice resolution (0: the fuzzy
	// package default; ignored by the exact kernel).
	CompiledResolution int
}

// NewFLC returns the paper's controller.
func NewFLC() *FLC {
	flc, err := NewFLCWithOptions(FLCOptions{})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return flc
}

// NewFLCWithOptions returns a controller with overridden operators,
// variables or rules (the ablation entry point).
func NewFLCWithOptions(opts FLCOptions) (*FLC, error) {
	cssp, ssn, dmb, hd := opts.CSSP, opts.SSN, opts.DMB, opts.HD
	if cssp == nil {
		cssp = NewCSSP()
	}
	if ssn == nil {
		ssn = NewSSN()
	}
	if dmb == nil {
		dmb = NewDMB()
	}
	if hd == nil {
		hd = NewHD()
	}
	for _, check := range []struct{ got, want string }{
		{cssp.Name, VarCSSP}, {ssn.Name, VarSSN}, {dmb.Name, VarDMB}, {hd.Name, VarHD},
	} {
		if check.got != check.want {
			return nil, fmt.Errorf("core: variable named %q, want %q", check.got, check.want)
		}
	}
	rules := NewFRB()
	if opts.Rules != nil {
		rules = *opts.Rules
	}
	sys, err := fuzzy.NewSystem(hd, rules, opts.Engine, cssp, ssn, dmb)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	flc := &FLC{sys: sys}
	if opts.Compiled {
		if err := flc.Compile(opts.CompiledResolution); err != nil {
			return nil, err
		}
	}
	return flc, nil
}

// Compile builds the compiled control surface and routes every subsequent
// Evaluate/EvaluateInto/EvaluateBatch through it.  Call before the FLC is
// shared across goroutines.  Compilation fails — leaving the FLC on the
// exact path — for operator sets the surface compiler cannot bound.
func (f *FLC) Compile(resolution int) error {
	cs, err := fuzzy.NewCompiledSurface(f.sys, resolution)
	if err != nil {
		return fmt.Errorf("core: compile control surface: %w", err)
	}
	f.surface = cs
	return nil
}

// Compiled reports whether the FLC answers from the compiled surface.
func (f *FLC) Compiled() bool { return f.surface != nil }

// defaultCompiled lazily builds the process-wide compiled paper FLC: the
// default configuration is immutable, so every consumer of the compiled
// default (sim fleets, serve shards, CLIs) can share one kernel instead of
// paying the compile per run or per shard.
var defaultCompiled struct {
	once sync.Once
	flc  *FLC
	err  error
}

// DefaultCompiledFLC returns the shared compiled instance of the paper's
// controller (built once per process; safe for concurrent use).
func DefaultCompiledFLC() (*FLC, error) {
	defaultCompiled.once.Do(func() {
		flc := NewFLC()
		if err := flc.Compile(0); err != nil {
			defaultCompiled.err = err
			return
		}
		defaultCompiled.flc = flc
	})
	return defaultCompiled.flc, defaultCompiled.err
}

// Surface returns the compiled control surface (nil on the exact path).
func (f *FLC) Surface() *fuzzy.CompiledSurface { return f.surface }

// System exposes the underlying fuzzy system (for surface dumps and the
// horules explainer).
func (f *FLC) System() *fuzzy.System { return f.sys }

// NewScratch returns reusable inference buffers for EvaluateInto.  One
// Scratch per goroutine; see fuzzy.Scratch.
func (f *FLC) NewScratch() *fuzzy.Scratch { return f.sys.NewScratch() }

// getScratch pops a pooled Scratch (or makes one); putScratch recycles it.
//
//fuzzyho:hotpath
func (f *FLC) getScratch() *fuzzy.Scratch {
	//fuzzyho:allow sync.Pool hit returns a pooled buffer without allocating; a miss (first use per P, or after GC) builds one
	if sc, ok := f.scratches.Get().(*fuzzy.Scratch); ok {
		return sc
	}
	//fuzzyho:allow pool-miss path only: builds the scratch the pool will recycle
	return f.sys.NewScratch()
}

//fuzzyho:hotpath
func (f *FLC) putScratch(sc *fuzzy.Scratch) {
	//fuzzyho:allow sync.Pool.Put stores the pointer without allocating in practice; the scratch itself is reused
	f.scratches.Put(sc)
}

// Evaluate computes the handover-decision output HD ∈ [0, 1] for the given
// raw inputs.  Inputs are clamped to the Fig. 5 universes, so out-of-range
// measurements saturate rather than fail; the complete Table 1 grid
// guarantees some rule always fires.  Evaluate runs on the positional fast
// path with pooled buffers; per-goroutine hot loops should prefer
// EvaluateInto with their own Scratch.
func (f *FLC) Evaluate(csspDB, ssnDB, dmbNorm float64) (float64, error) {
	sc := f.getScratch()
	hd, err := f.EvaluateInto(sc, csspDB, ssnDB, dmbNorm)
	f.putScratch(sc)
	return hd, err
}

// EvaluateInto is Evaluate on caller-owned buffers: zero heap allocations
// per call.  sc must come from this FLC's NewScratch and must not be shared
// across goroutines.  A compiled FLC answers from the surface and leaves sc
// untouched.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func (f *FLC) EvaluateInto(sc *fuzzy.Scratch, csspDB, ssnDB, dmbNorm float64) (float64, error) {
	cssp, ssn, dmb := ClampInputs(csspDB, ssnDB, dmbNorm)
	if f.surface != nil {
		return f.surface.At3(cssp, ssn, dmb)
	}
	// Positional order matches NewFLCWithOptions: CSSP, SSN, DMB.
	xs := [3]float64{cssp, ssn, dmb}
	return f.sys.EvaluateInto(sc, xs[:])
}

// EvaluateBatch computes HD for whole input columns: dst[i] is the output
// for (cssp[i], ssn[i], dmb[i]).  The input columns are clamped to the
// Fig. 5 universes in place, exactly as Evaluate clamps scalars.  Rows the
// engine cannot score (no rule fired on an ablated rulebase) get
// dst[i] = NaN; the error return covers shape mismatches only.  On a compiled FLC the batch runs through the surface's columnar
// fast path; otherwise it loops the exact path over pooled buffers.
// Steady state performs no heap allocations either way.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func (f *FLC) EvaluateBatch(dst, cssp, ssn, dmb []float64) error {
	if len(cssp) != len(dst) || len(ssn) != len(dst) || len(dmb) != len(dst) {
		//fuzzyho:allow shape guard: shard-owned columns always share one length, so this formats only on a caller contract violation
		return fmt.Errorf("core: column lengths %d/%d/%d ≠ batch length %d", len(cssp), len(ssn), len(dmb), len(dst))
	}
	for i := range dst {
		cssp[i], ssn[i], dmb[i] = ClampInputs(cssp[i], ssn[i], dmb[i])
	}
	if f.surface != nil {
		return f.surface.EvaluateBatch3(dst, cssp, ssn, dmb)
	}
	sc := f.getScratch()
	var xs [3]float64
	for i := range dst {
		xs[0], xs[1], xs[2] = cssp[i], ssn[i], dmb[i]
		hd, err := f.sys.EvaluateInto(sc, xs[:])
		if err != nil {
			hd = math.NaN() // mark the row, keep the batch going
		}
		dst[i] = hd
	}
	f.putScratch(sc)
	return nil
}

// EvaluateTrace is Evaluate with the full inference explanation.
func (f *FLC) EvaluateTrace(csspDB, ssnDB, dmbNorm float64) (float64, *fuzzy.Trace, error) {
	cssp, ssn, dmb := ClampInputs(csspDB, ssnDB, dmbNorm)
	return f.sys.EvaluateTrace(map[string]float64{
		VarCSSP: cssp,
		VarSSN:  ssn,
		VarDMB:  dmb,
	})
}
