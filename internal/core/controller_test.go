package core

import (
	"math"
	"strings"
	"testing"
)

// crossingReport is a Report deep in a crossing: FLC votes handover and the
// signal is still falling.
func crossingReport() Report {
	return Report{
		ServingDB:     -98,
		PrevServingDB: -96.5,
		HavePrev:      true,
		CSSPdB:        -3.5,
		SSNdB:         -93.7,
		DMBNorm:       1.2,
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController()
	if c.Threshold() != DefaultHandoverThreshold {
		t.Errorf("threshold = %g, want 0.7", c.Threshold())
	}
	if c.QualityGateDB() != DefaultQualityGateDB {
		t.Errorf("gate = %g, want %g", c.QualityGateDB(), DefaultQualityGateDB)
	}
	if c.FLC() == nil {
		t.Error("FLC not constructed")
	}
}

func TestQualityGateShortCircuits(t *testing.T) {
	c := NewController()
	r := crossingReport()
	r.ServingDB = -60 // strong serving signal: POTLC keeps the call
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Handover || d.Stage != StageQualityGate || d.Evaluated {
		t.Errorf("decision = %+v, want POTLC stay without FLC evaluation", d)
	}
}

func TestFLCStageRejectsLowHD(t *testing.T) {
	c := NewController()
	r := crossingReport()
	r.CSSPdB = -1.0
	r.SSNdB = -93
	r.DMBNorm = 0.9 // boundary-hover profile: HD ≈ 0.66
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Handover || d.Stage != StageFLC || !d.Evaluated {
		t.Errorf("decision = %+v, want FLC-stage stay", d)
	}
	if d.HD <= 0 || d.HD > DefaultHandoverThreshold {
		t.Errorf("HD = %g, want in (0, 0.7]", d.HD)
	}
}

func TestPRTLCCancelsWhenSignalRecovers(t *testing.T) {
	c := NewController()
	r := crossingReport()
	r.PrevServingDB = -99 // present (-98) ≥ previous (-99): recovering
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Handover || d.Stage != StagePRTLC {
		t.Errorf("decision = %+v, want PRTLC cancel", d)
	}
	if !d.Evaluated || d.HD <= DefaultHandoverThreshold {
		t.Errorf("PRTLC cancel must carry the FLC vote, got %+v", d)
	}
}

func TestPRTLCRequiresHistory(t *testing.T) {
	c := NewController()
	r := crossingReport()
	r.HavePrev = false
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Handover || d.Stage != StagePRTLC {
		t.Errorf("decision without history = %+v, want PRTLC cancel", d)
	}
}

func TestExecuteHandover(t *testing.T) {
	c := NewController()
	d, err := c.Decide(crossingReport())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Handover || d.Stage != StageExecute {
		t.Errorf("decision = %+v, want executed handover", d)
	}
	if d.HD <= DefaultHandoverThreshold {
		t.Errorf("executed handover with HD = %g ≤ threshold", d.HD)
	}
}

func TestDisablePRTLCAblation(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{DisablePRTLC: true})
	r := crossingReport()
	r.PrevServingDB = -99 // recovering — PRTLC would cancel
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Handover {
		t.Errorf("with PRTLC disabled, decision = %+v, want handover", d)
	}
}

func TestDisableQualityGateAblation(t *testing.T) {
	c := NewControllerWithConfig(ControllerConfig{DisableQualityGate: true})
	r := crossingReport()
	r.ServingDB = -60
	r.PrevServingDB = -59
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	// Gate bypassed: the FLC runs even on a strong signal.
	if !d.Evaluated {
		t.Errorf("gate not bypassed: %+v", d)
	}
	if !math.IsInf(c.QualityGateDB(), 1) {
		t.Error("disabled gate should report +Inf level")
	}
}

func TestCustomThreshold(t *testing.T) {
	strict := NewControllerWithConfig(ControllerConfig{Threshold: 0.95})
	d, err := strict.Decide(crossingReport())
	if err != nil {
		t.Fatal(err)
	}
	if d.Handover {
		t.Errorf("0.95-threshold controller handed over at HD=%g", d.HD)
	}
	lax := NewControllerWithConfig(ControllerConfig{Threshold: 0.3})
	r := crossingReport()
	r.CSSPdB, r.SSNdB, r.DMBNorm = -1.0, -93, 0.9 // HD ≈ 0.66
	d, err = lax.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Handover {
		t.Errorf("0.3-threshold controller stayed at HD=%g", d.HD)
	}
}

func TestStageStrings(t *testing.T) {
	for stage, want := range map[Stage]string{
		StageQualityGate: "POTLC-quality-gate",
		StageFLC:         "FLC-threshold",
		StagePRTLC:       "PRTLC-confirmation",
		StageExecute:     "execute-handover",
		Stage(99):        "Stage(99)",
	} {
		if got := stage.String(); got != want {
			t.Errorf("Stage(%d).String() = %q, want %q", int(stage), got, want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Handover: true, Stage: StageExecute, HD: 0.85, Evaluated: true}
	s := d.String()
	if !strings.Contains(s, "handover") || !strings.Contains(s, "0.850") {
		t.Errorf("Decision.String() = %q", s)
	}
	gate := Decision{Stage: StageQualityGate}
	if s := gate.String(); !strings.Contains(s, "stay") || strings.Contains(s, "HD=") {
		t.Errorf("gate Decision.String() = %q", s)
	}
}

func TestPipelineOrderGateBeforeFLC(t *testing.T) {
	// A report that would trip the FLC must still be short-circuited by the
	// quality gate — the POTLC runs first per Fig. 4's system operation.
	c := NewController()
	r := crossingReport()
	r.ServingDB = c.QualityGateDB() // exactly at the gate: "still good"
	d, err := c.Decide(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stage != StageQualityGate {
		t.Errorf("stage = %v, want quality gate at the boundary level", d.Stage)
	}
}
