package core

import (
	"fmt"
	"math"

	"repro/internal/fuzzy"
)

// DefaultHandoverThreshold is the paper's decision threshold: "the handover
// is carried out when the output value is bigger than 0.7" (§5).
const DefaultHandoverThreshold = 0.7

// DefaultQualityGateDB is the POTLC's "predefined value": while the serving
// signal is at least this strong, no handover machinery runs ("if the signal
// strength is still good enough the handover is not carried out", §4).
// −75 dB corresponds to roughly 0.4 cell radii under the paper's calibrated
// dipole model, so the FLC engages only in the outer part of the cell.
const DefaultQualityGateDB = -75.0

// Stage identifies where in the Fig. 4 pipeline a decision was made.
type Stage int

// Pipeline stages, in evaluation order.
const (
	// StageQualityGate: the POTLC found the serving signal still good.
	StageQualityGate Stage = iota
	// StageFLC: the FLC output did not exceed the handover threshold.
	StageFLC
	// StagePRTLC: the FLC voted handover but the pre test-loop controller
	// found the signal recovering (present ≥ previous) and cancelled.
	StagePRTLC
	// StageExecute: all checks passed; the handover is carried out.
	StageExecute
)

// String implements fmt.Stringer.  Every named stage returns a
// package-level string constant, so the serve decision loop delivers
// reasons without allocating.
//
//fuzzyho:hotpath
func (s Stage) String() string {
	switch s {
	case StageQualityGate:
		return "POTLC-quality-gate"
	case StageFLC:
		return "FLC-threshold"
	case StagePRTLC:
		return "PRTLC-confirmation"
	case StageExecute:
		return "execute-handover"
	default:
		//fuzzyho:allow unreachable for the four defined stages; only an out-of-range Stage value formats
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Report is the controller's per-epoch input: the radio measurements the
// RNC collects from the Node-B (Fig. 4).
type Report struct {
	// ServingDB is the present received power from the serving BS.
	ServingDB float64
	// PrevServingDB is the serving power at the previous epoch; HavePrev
	// reports whether one exists (false right after attachment).
	PrevServingDB float64
	HavePrev      bool
	// CSSPdB is the change of the serving signal strength (FLC input 1).
	CSSPdB float64
	// SSNdB is the strongest-neighbor signal strength including the speed
	// penalty (FLC input 2).
	SSNdB float64
	// DMBNorm is the serving-BS distance over the cell radius (FLC input 3).
	DMBNorm float64
}

// Decision is the controller's verdict for one epoch.
type Decision struct {
	// Handover reports whether the handover is to be carried out.
	Handover bool
	// Stage tells which pipeline stage produced the verdict.
	Stage Stage
	// HD is the FLC output; valid only when Evaluated is true (the POTLC
	// gate short-circuits the FLC entirely).
	HD        float64
	Evaluated bool
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	verdict := "stay"
	if d.Handover {
		verdict = "handover"
	}
	if d.Evaluated {
		return fmt.Sprintf("%s (stage %s, HD=%.3f)", verdict, d.Stage, d.HD)
	}
	return fmt.Sprintf("%s (stage %s)", verdict, d.Stage)
}

// Controller is the complete fuzzy-based handover system of Fig. 4: POTLC
// quality gate, FLC decision, PRTLC confirmation.  A Controller is stateless
// across epochs (all history arrives in the Report) and safe for concurrent
// use.
type Controller struct {
	flc *FLC
	// Threshold is the HD level above which the handover path is taken.
	threshold float64
	// qualityGateDB is the POTLC's predefined serving-signal level.
	qualityGateDB float64
	// confirmPRTLC enables the PRTLC check (disabled in the ablation).
	confirmPRTLC bool
}

// ControllerConfig configures a Controller; see DefaultControllerConfig.
type ControllerConfig struct {
	// FLC overrides the fuzzy controller (nil = paper's).
	FLC *FLC
	// Threshold is the HD handover threshold (0 = paper's 0.7).
	Threshold float64
	// QualityGateDB is the POTLC gate level (0 = default −75 dB; use
	// DisableQualityGate to bypass the gate).
	QualityGateDB float64
	// DisableQualityGate bypasses the POTLC check entirely.
	DisableQualityGate bool
	// DisablePRTLC bypasses the PRTLC confirmation (ablation).
	DisablePRTLC bool
}

// NewController returns the paper's controller with default configuration.
func NewController() *Controller {
	return NewControllerWithConfig(ControllerConfig{})
}

// NewControllerWithConfig builds a controller with overrides.
func NewControllerWithConfig(cfg ControllerConfig) *Controller {
	c := &Controller{
		flc:           cfg.FLC,
		threshold:     cfg.Threshold,
		qualityGateDB: cfg.QualityGateDB,
		confirmPRTLC:  !cfg.DisablePRTLC,
	}
	if c.flc == nil {
		c.flc = NewFLC()
	}
	if c.threshold == 0 {
		c.threshold = DefaultHandoverThreshold
	}
	if cfg.DisableQualityGate {
		c.qualityGateDB = math.Inf(1) // gate never passes a "good" signal
	} else if c.qualityGateDB == 0 {
		c.qualityGateDB = DefaultQualityGateDB
	}
	return c
}

// FLC returns the controller's fuzzy logic controller.
//
//fuzzyho:hotpath
func (c *Controller) FLC() *FLC { return c.flc }

// Threshold returns the HD handover threshold.
func (c *Controller) Threshold() float64 { return c.threshold }

// QualityGateDB returns the POTLC gate level.
//
//fuzzyho:hotpath
func (c *Controller) QualityGateDB() float64 { return c.qualityGateDB }

// Decide runs one epoch through the Fig. 4 pipeline:
//
//  1. POTLC: if the serving signal is still at least the predefined quality
//     level, no handover is considered.
//  2. FLC: CSSP, SSN and DMB are fuzzified and the FRB evaluated; the
//     handover path continues only if HD exceeds the threshold.
//  3. PRTLC: the present signal strength is compared with the previous one;
//     the handover is carried out only if the signal is still falling.
func (c *Controller) Decide(r Report) (Decision, error) {
	// Stage 1: POTLC quality gate (checked before borrowing buffers so the
	// common in-cell epoch stays branch-only).
	if r.ServingDB >= c.qualityGateDB {
		return Decision{Handover: false, Stage: StageQualityGate}, nil
	}
	sc := c.flc.getScratch()
	d, err := c.DecideInto(sc, r)
	c.flc.putScratch(sc)
	return d, err
}

// DecideInto is Decide on caller-owned inference buffers: the whole POTLC →
// FLC → PRTLC pipeline runs without heap allocations.  sc must come from
// this controller's FLC().NewScratch() and must not be shared across
// goroutines.
//
//fuzzyho:hotpath
func (c *Controller) DecideInto(sc *fuzzy.Scratch, r Report) (Decision, error) {
	// Stage 1: POTLC quality gate.
	if r.ServingDB >= c.qualityGateDB {
		return Decision{Handover: false, Stage: StageQualityGate}, nil
	}
	// Stage 2: FLC.
	hd, err := c.flc.EvaluateInto(sc, r.CSSPdB, r.SSNdB, r.DMBNorm)
	if err != nil {
		//fuzzyho:allow error path: only a no-rule-fired ablation reaches this wrap, never a steady-state decision
		return Decision{}, fmt.Errorf("core: FLC evaluation: %w", err)
	}
	return c.DecideFromHD(r, hd), nil
}

// DecideFromHD completes the Fig. 4 pipeline for a report whose FLC output
// was already computed — the batch decision path scores whole report
// columns through FLC.EvaluateBatch and finishes each decision here.  The
// POTLC gate must have been applied by the caller (a report that passes
// the gate never reaches the FLC).
//
//fuzzyho:hotpath
func (c *Controller) DecideFromHD(r Report, hd float64) Decision {
	if hd <= c.threshold {
		return Decision{Handover: false, Stage: StageFLC, HD: hd, Evaluated: true}
	}
	// Stage 3: PRTLC confirmation.  "When the present signal strength is
	// lower than the strength of the previous signal, the handover
	// procedure is carried out."
	if c.confirmPRTLC {
		if !r.HavePrev || r.ServingDB >= r.PrevServingDB {
			return Decision{Handover: false, Stage: StagePRTLC, HD: hd, Evaluated: true}
		}
	}
	return Decision{Handover: true, Stage: StageExecute, HD: hd, Evaluated: true}
}
