// Package core implements the paper's primary contribution: the fuzzy-based
// handover system of Barolli et al. (ICPP-W 2008) — the FLC with the Fig. 5
// linguistic variables and the 64-rule FRB of Table 1, wrapped in the
// POTLC → FLC → PRTLC decision pipeline of Fig. 4.
package core

import (
	"math"

	"repro/internal/fuzzy"
)

// Linguistic variable and term names, exactly as printed in the paper.
const (
	// VarCSSP is the change of the signal strength of the present BS [dB].
	VarCSSP = "CSSP"
	// VarSSN is the signal strength from the neighbor BS [dB].
	VarSSN = "SSN"
	// VarDMB is the distance of the MS from the BS, normalised by the cell
	// radius (DESIGN.md §3 documents the normalisation).
	VarDMB = "DMB"
	// VarHD is the handover-decision output in [0, 1].
	VarHD = "HD"
)

// T(CSSP) = {Small, Little Change, No Change, Big}.
const (
	CsspSM = "SM"
	CsspLC = "LC"
	CsspNC = "NC"
	CsspBG = "BG"
)

// T(SSN) = {Weak, Not So Weak, Normal, Strong}.
const (
	SsnWK  = "WK"
	SsnNSW = "NSW"
	SsnNO  = "NO"
	SsnST  = "ST"
)

// T(DMB) = {Near, Not So Near, Not So Far, Far}.
const (
	DmbNR  = "NR"
	DmbNSN = "NSN"
	DmbNSF = "NSF"
	DmbFA  = "FA"
)

// T(HD) = {Very Low, Low, Little High, High}.
const (
	HdVL = "VL"
	HdLO = "LO"
	HdLH = "LH"
	HdHG = "HG"
)

// Universe bounds, from the Fig. 5 axis marks.
const (
	CsspMin = -10.0
	CsspMax = 10.0
	SsnMin  = -120.0
	SsnMax  = -80.0
	DmbMin  = 0.0
	DmbMax  = 1.5
	HdMin   = 0.0
	HdMax   = 1.0
)

// NewCSSP returns the CSSP input variable: a Ruspini partition over
// [-10, 10] dB anchored on the printed marks (-10, 0, 10), with the NC
// ("no change") peak at 0 as drawn.
func NewCSSP() *fuzzy.Variable {
	return fuzzy.MustVariable(VarCSSP, CsspMin, CsspMax,
		fuzzy.Term{Name: CsspSM, MF: fuzzy.ShoulderLeft(-10, -5)},
		fuzzy.Term{Name: CsspLC, MF: fuzzy.Tri(-10, -5, 0)},
		fuzzy.Term{Name: CsspNC, MF: fuzzy.Tri(-5, 0, 10)},
		fuzzy.Term{Name: CsspBG, MF: fuzzy.ShoulderRight(0, 10)},
	)
}

// NewSSN returns the SSN input variable: a Ruspini partition over
// [-120, -80] dB with evenly spaced interior peaks, anchored on the printed
// -120 and -80 edges.
func NewSSN() *fuzzy.Variable {
	const third = (SsnMax - SsnMin) / 3 // 13.33 dB
	return fuzzy.MustVariable(VarSSN, SsnMin, SsnMax,
		fuzzy.Term{Name: SsnWK, MF: fuzzy.ShoulderLeft(SsnMin, SsnMin+third)},
		fuzzy.Term{Name: SsnNSW, MF: fuzzy.Tri(SsnMin, SsnMin+third, SsnMin+2*third)},
		fuzzy.Term{Name: SsnNO, MF: fuzzy.Tri(SsnMin+third, SsnMin+2*third, SsnMax)},
		fuzzy.Term{Name: SsnST, MF: fuzzy.ShoulderRight(SsnMin+2*third, SsnMax)},
	)
}

// NewDMB returns the DMB input variable over [0, 1.5] (distance / cell
// radius), anchored on the printed marks 0.25, 0.4, 0.75, 0.8 and 1.
func NewDMB() *fuzzy.Variable {
	return fuzzy.MustVariable(VarDMB, DmbMin, DmbMax,
		fuzzy.Term{Name: DmbNR, MF: fuzzy.ShoulderLeft(0.25, 0.4)},
		fuzzy.Term{Name: DmbNSN, MF: fuzzy.Tri(0.25, 0.4, 0.75)},
		fuzzy.Term{Name: DmbNSF, MF: fuzzy.Tri(0.4, 0.75, 1.0)},
		fuzzy.Term{Name: DmbFA, MF: fuzzy.ShoulderRight(0.8, 1.0)},
	)
}

// NewHD returns the HD output variable over [0, 1], anchored on the printed
// marks 0.2, 0.4, 0.6 and 1.
func NewHD() *fuzzy.Variable {
	return fuzzy.MustVariable(VarHD, HdMin, HdMax,
		fuzzy.Term{Name: HdVL, MF: fuzzy.Trap(0, 0, 0.2, 0.4)},
		fuzzy.Term{Name: HdLO, MF: fuzzy.Tri(0.2, 0.4, 0.6)},
		fuzzy.Term{Name: HdLH, MF: fuzzy.Tri(0.4, 0.6, 0.8)},
		fuzzy.Term{Name: HdHG, MF: fuzzy.Trap(0.6, 1, 1, 1)},
	)
}

// ClampInputs clamps raw measurements to the Fig. 5 universes; exported so
// that report generators can show the effective FLC inputs.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func ClampInputs(cssp, ssn, dmb float64) (float64, float64, float64) {
	return clamp(cssp, CsspMin, CsspMax), clamp(ssn, SsnMin, SsnMax), clamp(dmb, DmbMin, DmbMax)
}

// clamp bounds x to [lo, hi], mapping NaN to lo.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func clamp(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	return math.Min(math.Max(x, lo), hi)
}
