package core

import (
	"math"
	"testing"
)

// TestFLCEvaluateIntoMatchesMapPath sweeps a dense grid of the Fig. 5 input
// universes (plus out-of-range overshoot) and requires the positional fast
// path to agree with the reference map path to 1e-12.
func TestFLCEvaluateIntoMatchesMapPath(t *testing.T) {
	flc := NewFLC()
	sys := flc.System()
	sc := flc.NewScratch()
	const n = 31
	grid := func(lo, hi float64, i int) float64 {
		span := hi - lo
		return lo - 0.1*span + 1.2*span*float64(i)/float64(n-1)
	}
	for i := 0; i < n; i++ {
		cssp := grid(CsspMin, CsspMax, i)
		for j := 0; j < n; j++ {
			ssn := grid(SsnMin, SsnMax, j)
			for k := 0; k < n; k++ {
				dmb := grid(DmbMin, DmbMax, k)
				cc, sc2, dc := ClampInputs(cssp, ssn, dmb)
				want, err := sys.Evaluate(map[string]float64{
					VarCSSP: cc, VarSSN: sc2, VarDMB: dc,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := flc.EvaluateInto(sc, cssp, ssn, dmb)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(want-got) > 1e-12 {
					t.Fatalf("FLC(%g, %g, %g): map %.17g, fast %.17g",
						cssp, ssn, dmb, want, got)
				}
			}
		}
	}
}

// TestFLCEvaluateMatchesEvaluateInto pins the pooled convenience wrapper to
// the explicit-scratch path.
func TestFLCEvaluateMatchesEvaluateInto(t *testing.T) {
	flc := NewFLC()
	sc := flc.NewScratch()
	for i := 0; i < 50; i++ {
		cssp := CsspMin + (CsspMax-CsspMin)*float64(i)/49
		a, err := flc.Evaluate(cssp, -95, 1.1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := flc.EvaluateInto(sc, cssp, -95, 1.1)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Evaluate %.17g != EvaluateInto %.17g at cssp=%g", a, b, cssp)
		}
	}
}

func TestFLCEvaluateIntoZeroAllocs(t *testing.T) {
	flc := NewFLC()
	sc := flc.NewScratch()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := flc.EvaluateInto(sc, -3.5, -95+float64(i%10), 1.1); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("FLC.EvaluateInto allocates %.1f times per call, want 0", allocs)
	}
}

func TestControllerDecideIntoZeroAllocs(t *testing.T) {
	ctrl := NewController()
	sc := ctrl.FLC().NewScratch()
	r := Report{
		ServingDB: -98, PrevServingDB: -96.5, HavePrev: true,
		CSSPdB: -3.5, SSNdB: -93.7, DMBNorm: 1.2,
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ctrl.DecideInto(sc, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Controller.DecideInto allocates %.1f times per call, want 0", allocs)
	}
}

// TestControllerDecideIntoMatchesDecide runs the full pipeline both ways
// across representative reports.
func TestControllerDecideIntoMatchesDecide(t *testing.T) {
	ctrl := NewController()
	sc := ctrl.FLC().NewScratch()
	reports := []Report{
		{ServingDB: -60}, // POTLC gate holds
		{ServingDB: -98, CSSPdB: -3.5, SSNdB: -93.7, DMBNorm: 1.2},
		{ServingDB: -98, PrevServingDB: -96.5, HavePrev: true, CSSPdB: -3.5, SSNdB: -93.7, DMBNorm: 1.2},
		{ServingDB: -98, PrevServingDB: -99.5, HavePrev: true, CSSPdB: -3.5, SSNdB: -93.7, DMBNorm: 1.2},
		{ServingDB: -120, PrevServingDB: -110, HavePrev: true, CSSPdB: -8, SSNdB: -80, DMBNorm: 1.5},
	}
	for _, r := range reports {
		a, err := ctrl.Decide(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctrl.DecideInto(sc, r)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("report %+v: Decide %v != DecideInto %v", r, a, b)
		}
	}
}
