package core

import (
	"strings"
	"testing"

	"repro/internal/fuzzy"
)

// paperTable1 is the paper's Table 1, transcribed as printed (rule number,
// CSSP, SSN, DMB, HD), independently of the frbTable array in frb.go.  The
// two transcriptions guard each other against typos.
const paperTable1 = `
1 SM WK NR LO    33 NC WK NR VL
2 SM WK NSN LO   34 NC WK NSN VL
3 SM WK NSF LH   35 NC WK NSF VL
4 SM WK FA LH    36 NC WK FA LO
5 SM NSW NR LO   37 NC NSW NR VL
6 SM NSW NSN LO  38 NC NSW NSN VL
7 SM NSW NSF LH  39 NC NSW NSF VL
8 SM NSW FA LH   40 NC NSW FA LO
9 SM NO NR LH    41 NC NO NR VL
10 SM NO NSN HG  42 NC NO NSN LO
11 SM NO NSF HG  43 NC NO NSF LO
12 SM NO FA HG   44 NC NO FA LH
13 SM ST NR HG   45 NC ST NR LH
14 SM ST NSN HG  46 NC ST NSN LH
15 SM ST NSF HG  47 NC ST NSF HG
16 SM ST FA HG   48 NC ST FA HG
17 LC WK NR VL   49 BG WK NR VL
18 LC WK NSN VL  50 BG WK NSN VL
19 LC WK NSF LO  51 BG WK NSF VL
20 LC WK FA LO   52 BG WK FA VL
21 LC NSW NR LO  53 BG NSW NR VL
22 LC NSW NSN LO 54 BG NSW NSN VL
23 LC NSW NSF LO 55 BG NSW NSF VL
24 LC NSW FA LH  56 BG NSW FA LO
25 LC NO NR LH   57 BG NO NR VL
26 LC NO NSN LH  58 BG NO NSN VL
27 LC NO NSF HG  59 BG NO NSF LO
28 LC NO FA HG   60 BG NO FA LO
29 LC ST NR LH   61 BG ST NR VL
30 LC ST NSN HG  62 BG ST NSN VL
31 LC ST NSF HG  63 BG ST NSF LO
32 LC ST FA HG   64 BG ST FA LO
`

// parsePaperTable1 parses the verbatim table into ruleNumber → terms.
func parsePaperTable1(t *testing.T) map[int][4]string {
	t.Helper()
	out := make(map[int][4]string, 64)
	for _, line := range strings.Split(strings.TrimSpace(paperTable1), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 10 {
			t.Fatalf("table line %q has %d fields, want 10", line, len(fields))
		}
		for _, half := range [][]string{fields[:5], fields[5:]} {
			num := 0
			for _, ch := range half[0] {
				num = num*10 + int(ch-'0')
			}
			out[num] = [4]string{half[1], half[2], half[3], half[4]}
		}
	}
	if len(out) != 64 {
		t.Fatalf("parsed %d rules, want 64", len(out))
	}
	return out
}

func TestFRBMatchesPaperTable1(t *testing.T) {
	want := parsePaperTable1(t)
	rb := NewFRB()
	if rb.Len() != 64 {
		t.Fatalf("FRB has %d rules, want 64", rb.Len())
	}
	for i, rule := range rb.Rules {
		num := i + 1
		w := want[num]
		if len(rule.If) != 3 {
			t.Fatalf("rule %d has %d clauses", num, len(rule.If))
		}
		got := [4]string{rule.If[0].Term, rule.If[1].Term, rule.If[2].Term, rule.Then.Term}
		if got != w {
			t.Errorf("rule %d = %v, want %v", num, got, w)
		}
		if rule.If[0].Var != VarCSSP || rule.If[1].Var != VarSSN || rule.If[2].Var != VarDMB || rule.Then.Var != VarHD {
			t.Errorf("rule %d has wrong variable bindings", num)
		}
	}
}

func TestFRBIsCompleteGrid(t *testing.T) {
	rb := NewFRB()
	missing := rb.MissingCombinations([]*fuzzy.Variable{NewCSSP(), NewSSN(), NewDMB()})
	if len(missing) != 0 {
		t.Fatalf("FRB misses %d combinations: %v", len(missing), missing)
	}
}

func TestFRBValidates(t *testing.T) {
	rb := NewFRB()
	inputs := map[string]*fuzzy.Variable{
		VarCSSP: NewCSSP(), VarSSN: NewSSN(), VarDMB: NewDMB(),
	}
	if err := rb.Validate(inputs, NewHD()); err != nil {
		t.Fatalf("paper FRB fails validation: %v", err)
	}
}

func TestRuleConsequentLookup(t *testing.T) {
	cases := []struct {
		cssp, ssn, dmb, want string
	}{
		{CsspSM, SsnWK, DmbNR, HdLO},  // rule 1
		{CsspSM, SsnST, DmbFA, HdHG},  // rule 16
		{CsspLC, SsnNO, DmbNSF, HdHG}, // rule 27
		{CsspNC, SsnNO, DmbFA, HdLH},  // rule 44
		{CsspBG, SsnWK, DmbNR, HdVL},  // rule 49
		{CsspBG, SsnST, DmbFA, HdLO},  // rule 64
	}
	for _, tc := range cases {
		got, err := RuleConsequent(tc.cssp, tc.ssn, tc.dmb)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("RuleConsequent(%s,%s,%s) = %s, want %s", tc.cssp, tc.ssn, tc.dmb, got, tc.want)
		}
	}
	if _, err := RuleConsequent("XX", SsnWK, DmbNR); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestRuleNumber(t *testing.T) {
	cases := []struct {
		cssp, ssn, dmb string
		want           int
	}{
		{CsspSM, SsnWK, DmbNR, 1},
		{CsspSM, SsnWK, DmbFA, 4},
		{CsspSM, SsnST, DmbFA, 16},
		{CsspLC, SsnWK, DmbNR, 17},
		{CsspNC, SsnNSW, DmbFA, 40},
		{CsspBG, SsnST, DmbFA, 64},
	}
	for _, tc := range cases {
		got, err := RuleNumber(tc.cssp, tc.ssn, tc.dmb)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("RuleNumber(%s,%s,%s) = %d, want %d", tc.cssp, tc.ssn, tc.dmb, got, tc.want)
		}
	}
	if _, err := RuleNumber("XX", SsnWK, DmbNR); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestFRBMonotoneTrends(t *testing.T) {
	// Structural sanity of Table 1: with everything else fixed, a stronger
	// neighbor signal must never lower the consequent, and a larger distance
	// must never lower it either (scanning the paper's term orders).
	rank := map[string]int{HdVL: 0, HdLO: 1, HdLH: 2, HdHG: 3}
	for _, cssp := range csspOrder {
		for _, dmb := range dmbOrder {
			prev := -1
			for _, ssn := range ssnOrder {
				c, _ := RuleConsequent(cssp, ssn, dmb)
				if rank[c] < prev {
					t.Errorf("HD not monotone in SSN at (%s, *, %s)", cssp, dmb)
				}
				prev = rank[c]
			}
		}
	}
	for _, cssp := range csspOrder {
		for _, ssn := range ssnOrder {
			prev := -1
			for _, dmb := range dmbOrder {
				c, _ := RuleConsequent(cssp, ssn, dmb)
				if rank[c] < prev {
					t.Errorf("HD not monotone in DMB at (%s, %s, *)", cssp, ssn)
				}
				prev = rank[c]
			}
		}
	}
}
