package core

import (
	"fmt"

	"repro/internal/fuzzy"
)

// frbTable is the paper's Table 1, transcribed verbatim: 64 rules over the
// full |T(CSSP)| × |T(SSN)| × |T(DMB)| grid.  Row-major in the paper's
// numbering: CSSP outermost (SM, LC, NC, BG), then SSN (WK, NSW, NO, ST),
// then DMB (NR, NSN, NSF, FA).
var frbTable = [4][4][4]string{
	// CSSP = SM (rules 1-16)
	{
		{HdLO, HdLO, HdLH, HdLH}, // WK
		{HdLO, HdLO, HdLH, HdLH}, // NSW
		{HdLH, HdHG, HdHG, HdHG}, // NO
		{HdHG, HdHG, HdHG, HdHG}, // ST
	},
	// CSSP = LC (rules 17-32)
	{
		{HdVL, HdVL, HdLO, HdLO}, // WK
		{HdLO, HdLO, HdLO, HdLH}, // NSW
		{HdLH, HdLH, HdHG, HdHG}, // NO
		{HdLH, HdHG, HdHG, HdHG}, // ST
	},
	// CSSP = NC (rules 33-48)
	{
		{HdVL, HdVL, HdVL, HdLO}, // WK
		{HdVL, HdVL, HdVL, HdLO}, // NSW
		{HdVL, HdLO, HdLO, HdLH}, // NO
		{HdLH, HdLH, HdHG, HdHG}, // ST
	},
	// CSSP = BG (rules 49-64)
	{
		{HdVL, HdVL, HdVL, HdVL}, // WK
		{HdVL, HdVL, HdVL, HdLO}, // NSW
		{HdVL, HdVL, HdLO, HdLO}, // NO
		{HdVL, HdVL, HdLO, HdLO}, // ST
	},
}

// csspOrder, ssnOrder and dmbOrder fix the paper's term enumeration order.
var (
	csspOrder = [4]string{CsspSM, CsspLC, CsspNC, CsspBG}
	ssnOrder  = [4]string{SsnWK, SsnNSW, SsnNO, SsnST}
	dmbOrder  = [4]string{DmbNR, DmbNSN, DmbNSF, DmbFA}
)

// NewFRB returns the paper's 64-rule fuzzy rule base (Table 1).  Rule i of
// the returned base is exactly rule i of the paper (1-based).
func NewFRB() fuzzy.RuleBase {
	var rb fuzzy.RuleBase
	for ci, cssp := range csspOrder {
		for si, ssn := range ssnOrder {
			for di, dmb := range dmbOrder {
				rb.Add(fuzzy.Rule{
					If: []fuzzy.Clause{
						{Var: VarCSSP, Term: cssp},
						{Var: VarSSN, Term: ssn},
						{Var: VarDMB, Term: dmb},
					},
					Then: fuzzy.Clause{Var: VarHD, Term: frbTable[ci][si][di]},
				})
			}
		}
	}
	return rb
}

// RuleConsequent returns the paper's Table 1 consequent for a term triple,
// e.g. RuleConsequent("SM", "WK", "NR") = "LO".
func RuleConsequent(cssp, ssn, dmb string) (string, error) {
	ci, si, di := -1, -1, -1
	for i, t := range csspOrder {
		if t == cssp {
			ci = i
		}
	}
	for i, t := range ssnOrder {
		if t == ssn {
			si = i
		}
	}
	for i, t := range dmbOrder {
		if t == dmb {
			di = i
		}
	}
	if ci < 0 || si < 0 || di < 0 {
		return "", fmt.Errorf("core: unknown term triple (%s, %s, %s)", cssp, ssn, dmb)
	}
	return frbTable[ci][si][di], nil
}

// RuleNumber returns the paper's 1-based rule number for a term triple.
func RuleNumber(cssp, ssn, dmb string) (int, error) {
	if _, err := RuleConsequent(cssp, ssn, dmb); err != nil {
		return 0, err
	}
	var ci, si, di int
	for i, t := range csspOrder {
		if t == cssp {
			ci = i
		}
	}
	for i, t := range ssnOrder {
		if t == ssn {
			si = i
		}
	}
	for i, t := range dmbOrder {
		if t == dmb {
			di = i
		}
	}
	return ci*16 + si*4 + di + 1, nil
}
