package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fuzzy"
)

// randomFLCInputs draws raw (unclamped) measurement triples spanning and
// slightly exceeding the Fig. 5 universes.
func randomFLCInputs(rng *rand.Rand) (cssp, ssn, dmb float64) {
	return CsspMin - 2 + rng.Float64()*(CsspMax-CsspMin+4),
		SsnMin - 5 + rng.Float64()*(SsnMax-SsnMin+10),
		DmbMin - 0.2 + rng.Float64()*(DmbMax-DmbMin+0.4)
}

// TestFLCCompiledMatchesExact pins the acceptance accuracy criterion: the
// paper's FLC compiles to the exact kernel, its constructor-reported error
// bound is ≤ 1e-3 (in fact ≈ 1e-12), and a random sweep of the universe
// stays within that bound against per-decision Mamdani inference.
func TestFLCCompiledMatchesExact(t *testing.T) {
	exact := NewFLC()
	compiled := NewFLC()
	if err := compiled.Compile(0); err != nil {
		t.Fatal(err)
	}
	if !compiled.Compiled() || compiled.Surface() == nil {
		t.Fatal("Compile did not install a surface")
	}
	if !compiled.Surface().Exact() {
		t.Fatal("paper FLC compiled to the lattice, want the exact kernel")
	}
	bound := compiled.Surface().ErrorBound()
	if bound > 1e-3 {
		t.Fatalf("reported error bound %g exceeds the 1e-3 acceptance ceiling", bound)
	}
	rng := rand.New(rand.NewSource(11))
	sc := exact.NewScratch()
	for i := 0; i < 50000; i++ {
		cssp, ssn, dmb := randomFLCInputs(rng)
		want, err := exact.EvaluateInto(sc, cssp, ssn, dmb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := compiled.EvaluateInto(nil, cssp, ssn, dmb) // compiled path ignores the scratch
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(want - got); e > bound {
			t.Fatalf("at (%g, %g, %g): |%g − %g| = %g exceeds bound %g",
				cssp, ssn, dmb, got, want, e, bound)
		}
	}
}

// TestFLCCompiledAblationProfiles sweeps the compiled surface across the
// operator ablation profiles of the FLC: each profile either compiles
// (kernel for the default operators, lattice for the smooth ablations)
// with a random sweep inside its reported bound, or fails compilation
// cleanly so callers keep the exact path.
func TestFLCCompiledAblationProfiles(t *testing.T) {
	profiles := []struct {
		name       string
		engine     fuzzy.Options
		wantKernel bool
	}{
		{"paper-default", fuzzy.Options{}, true},
		{"larsen", fuzzy.Options{AndNorm: fuzzy.ProductNorm, OrNorm: fuzzy.ProbSumNorm, Implication: fuzzy.ProductImplication}, false},
		{"hamacher", fuzzy.Options{AndNorm: fuzzy.HamacherNorm, OrNorm: fuzzy.ProbSumNorm}, false},
		{"centroid", fuzzy.Options{Defuzzifier: fuzzy.Centroid{Samples: 100}}, false},
		{"mean-of-maxima", fuzzy.Options{Defuzzifier: fuzzy.MeanOfMaxima()}, false},
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			exact, err := NewFLCWithOptions(FLCOptions{Engine: p.engine})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := NewFLCWithOptions(FLCOptions{
				Engine: p.engine, Compiled: true, CompiledResolution: 17,
			})
			if err != nil {
				t.Skipf("profile %s cannot be compiled (%v): exact fallback applies", p.name, err)
			}
			if compiled.Surface().Exact() != p.wantKernel {
				t.Fatalf("profile %s: kernel=%v, want %v", p.name, compiled.Surface().Exact(), p.wantKernel)
			}
			bound := compiled.Surface().ErrorBound()
			rng := rand.New(rand.NewSource(7))
			sc := exact.NewScratch()
			for i := 0; i < 3000; i++ {
				cssp, ssn, dmb := randomFLCInputs(rng)
				want, err1 := exact.EvaluateInto(sc, cssp, ssn, dmb)
				got, err2 := compiled.EvaluateInto(nil, cssp, ssn, dmb)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("at (%g, %g, %g): exact err %v, compiled err %v", cssp, ssn, dmb, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if e := math.Abs(want - got); e > bound {
					t.Fatalf("profile %s at (%g, %g, %g): error %g exceeds bound %g",
						p.name, cssp, ssn, dmb, e, bound)
				}
			}
		})
	}
}

// TestFLCEvaluateBatchMatchesScalar pins the columnar entry point against
// the scalar path on both the exact and compiled FLC, including the
// NaN-measurement policy (ClampInputs maps NaN to the universe floor on
// both paths).
func TestFLCEvaluateBatchMatchesScalar(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		flc := NewFLC()
		if compiled {
			if err := flc.Compile(0); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(23))
		const n = 129
		cssp, ssn, dmb, dst := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			cssp[i], ssn[i], dmb[i] = randomFLCInputs(rng)
		}
		cssp[17] = math.NaN() // clamped to the universe floor, like the scalar path
		raw := [3][]float64{append([]float64(nil), cssp...), append([]float64(nil), ssn...), append([]float64(nil), dmb...)}
		if err := flc.EvaluateBatch(dst, cssp, ssn, dmb); err != nil {
			t.Fatal(err)
		}
		sc := flc.NewScratch()
		for i := 0; i < n; i++ {
			want, err := flc.EvaluateInto(sc, raw[0][i], raw[1][i], raw[2][i])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dst[i]-want) > 1e-12 {
				t.Fatalf("compiled=%v row %d: batch %g ≠ scalar %g", compiled, i, dst[i], want)
			}
		}
		if err := flc.EvaluateBatch(dst[:3], cssp[:3], ssn[:2], dmb[:3]); err == nil {
			t.Fatal("mismatched column lengths accepted")
		}
	}
}

// TestDefaultCompiledFLCIsShared pins the process-wide singleton: every
// consumer (sim fleet cells, serve shards) must share one compiled kernel.
func TestDefaultCompiledFLCIsShared(t *testing.T) {
	a, err := DefaultCompiledFLC()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultCompiledFLC()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DefaultCompiledFLC returned distinct instances")
	}
	if !a.Compiled() || !a.Surface().Exact() {
		t.Fatal("default compiled FLC is not on the exact kernel")
	}
}

// TestControllerDecideFromHD pins the factored pipeline tail: DecideInto
// must equal POTLC gate + FLC + DecideFromHD composed by hand.
func TestControllerDecideFromHD(t *testing.T) {
	ctrl := NewController()
	sc := ctrl.FLC().NewScratch()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		cssp, ssn, dmb := randomFLCInputs(rng)
		r := Report{
			ServingDB:     -110 + rng.Float64()*40,
			PrevServingDB: -110 + rng.Float64()*40,
			HavePrev:      rng.Intn(3) > 0,
			CSSPdB:        cssp,
			SSNdB:         ssn,
			DMBNorm:       dmb,
		}
		want, err := ctrl.DecideInto(sc, r)
		if err != nil {
			t.Fatal(err)
		}
		var got Decision
		if r.ServingDB >= ctrl.QualityGateDB() {
			got = Decision{Handover: false, Stage: StageQualityGate}
		} else {
			hd, err := ctrl.FLC().EvaluateInto(sc, r.CSSPdB, r.SSNdB, r.DMBNorm)
			if err != nil {
				t.Fatal(err)
			}
			got = ctrl.DecideFromHD(r, hd)
		}
		if got != want {
			t.Fatalf("report %+v: composed %+v ≠ DecideInto %+v", r, got, want)
		}
	}
}
