package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fuzzy"
)

func TestVariablesMatchFig5Anchors(t *testing.T) {
	cssp := NewCSSP()
	if cssp.Min != -10 || cssp.Max != 10 {
		t.Errorf("CSSP universe [%g, %g], want [-10, 10]", cssp.Min, cssp.Max)
	}
	// NC ("no change") peaks at 0 as drawn.
	if g := cssp.FuzzifyMap(0)[CsspNC]; g != 1 {
		t.Errorf("μ_NC(0) = %g, want 1", g)
	}
	if g := cssp.FuzzifyMap(-10)[CsspSM]; g != 1 {
		t.Errorf("μ_SM(-10) = %g, want 1", g)
	}
	if g := cssp.FuzzifyMap(10)[CsspBG]; g != 1 {
		t.Errorf("μ_BG(10) = %g, want 1", g)
	}

	ssn := NewSSN()
	if ssn.Min != -120 || ssn.Max != -80 {
		t.Errorf("SSN universe [%g, %g], want [-120, -80]", ssn.Min, ssn.Max)
	}
	if g := ssn.FuzzifyMap(-120)[SsnWK]; g != 1 {
		t.Errorf("μ_WK(-120) = %g, want 1", g)
	}
	if g := ssn.FuzzifyMap(-80)[SsnST]; g != 1 {
		t.Errorf("μ_ST(-80) = %g, want 1", g)
	}

	dmb := NewDMB()
	if g := dmb.FuzzifyMap(0.25)[DmbNR]; g != 1 {
		t.Errorf("μ_NR(0.25) = %g, want 1 (printed anchor)", g)
	}
	if g := dmb.FuzzifyMap(0.4)[DmbNSN]; g != 1 {
		t.Errorf("μ_NSN(0.4) = %g, want 1 (printed anchor)", g)
	}
	if g := dmb.FuzzifyMap(0.75)[DmbNSF]; g != 1 {
		t.Errorf("μ_NSF(0.75) = %g, want 1 (printed anchor)", g)
	}
	if g := dmb.FuzzifyMap(1.0)[DmbFA]; g != 1 {
		t.Errorf("μ_FA(1.0) = %g, want 1 (printed anchor)", g)
	}

	hd := NewHD()
	if hd.Min != 0 || hd.Max != 1 {
		t.Errorf("HD universe [%g, %g], want [0, 1]", hd.Min, hd.Max)
	}
	for term, x := range map[string]float64{HdLO: 0.4, HdLH: 0.6, HdHG: 1.0} {
		if g := hd.FuzzifyMap(x)[term]; g != 1 {
			t.Errorf("μ_%s(%g) = %g, want 1", term, x, g)
		}
	}
}

func TestInputPartitionsAreComplete(t *testing.T) {
	for _, v := range []*fuzzy.Variable{NewCSSP(), NewSSN()} {
		if !v.IsRuspiniPartition(201, 1e-9) {
			t.Errorf("%s is not a Ruspini partition", v.Name)
		}
	}
	// DMB overlaps NSF and FA between 0.8 and 1.0, and HD's HG shoulder
	// overlaps LH, exactly as the Fig. 5 anchors dictate — not Ruspini, but
	// both must cover their universes with no grade holes.
	for _, v := range []*fuzzy.Variable{NewDMB(), NewHD()} {
		if gaps := v.CoverageGaps(201, 0.3); len(gaps) != 0 {
			t.Errorf("%s has coverage gaps: %v", v.Name, gaps)
		}
	}
}

func TestClampInputs(t *testing.T) {
	c, s, d := ClampInputs(-50, -300, 9)
	if c != -10 || s != -120 || d != 1.5 {
		t.Errorf("ClampInputs(-50,-300,9) = (%g,%g,%g)", c, s, d)
	}
	c, s, d = ClampInputs(math.NaN(), -90, 0.5)
	if c != -10 || s != -90 || d != 0.5 {
		t.Errorf("NaN handling = (%g,%g,%g)", c, s, d)
	}
}

func TestFLCAlwaysProducesOutput(t *testing.T) {
	// The complete 64-rule grid over complete partitions means the FLC can
	// never fail for any finite input.
	flc := NewFLC()
	if err := quick.Check(func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		hd, err := flc.Evaluate(a, b, c)
		return err == nil && hd >= 0 && hd <= 1
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFLCScenarioSeparation(t *testing.T) {
	// The paper's headline behaviour: boundary-hover epochs stay below the
	// 0.7 threshold, genuine crossings exceed it.  Inputs transcribed from
	// the calibrated dipole geometry (DESIGN.md §4 success criteria).
	flc := NewFLC()
	below := []struct{ cssp, ssn, dmb float64 }{
		{-1.9, -92.5, 0.90},  // R=1 km boundary hover, 0 km/h
		{-1.9, -102.5, 0.90}, // same point, 50 km/h penalty
		{-1.0, -93.0, 1.00},  // exactly at a 3-cell vertex
		{-0.5, -100, 0.30},   // mid-cell
		{+2.0, -95, 0.50},    // approaching own BS
	}
	for _, p := range below {
		hd, err := flc.Evaluate(p.cssp, p.ssn, p.dmb)
		if err != nil {
			t.Fatal(err)
		}
		if hd > DefaultHandoverThreshold {
			t.Errorf("boundary-class point %+v: HD = %.3f > 0.7", p, hd)
		}
	}
	above := []struct{ cssp, ssn, dmb float64 }{
		{-3.5, -93.7, 1.20}, // crossing into neighbor, 0 km/h
		{-3.5, -98.1, 1.30}, // crossing deep, 50 km/h penalty
		{-6.0, -90.0, 1.40}, // far corner, strong neighbor
		{-4.0, -85.0, 1.10}, // very strong neighbor past boundary
	}
	for _, p := range above {
		hd, err := flc.Evaluate(p.cssp, p.ssn, p.dmb)
		if err != nil {
			t.Fatal(err)
		}
		if hd <= DefaultHandoverThreshold {
			t.Errorf("crossing-class point %+v: HD = %.3f ≤ 0.7", p, hd)
		}
	}
}

// quasiMonotoneTol bounds the small non-monotone ripple that height
// defuzzification is known to introduce when activation mass shifts between
// consequent terms: the symbolic rule table is strictly monotone
// (TestFRBMonotoneTrends), and the numeric surface may dip by at most this
// much between adjacent samples.
const quasiMonotoneTol = 0.02

func TestFLCQuasiMonotoneInSSN(t *testing.T) {
	// Stronger neighbor ⇒ HD must not decrease beyond the defuzzifier
	// ripple, and the universe endpoints must be strictly ordered.
	flc := NewFLC()
	for _, fixed := range []struct{ cssp, dmb float64 }{
		{-3, 1.0}, {-6, 0.9}, {0, 1.2}, {-2, 0.6},
	} {
		prev := -1.0
		for ssn := -120.0; ssn <= -80; ssn += 0.5 {
			hd, err := flc.Evaluate(fixed.cssp, ssn, fixed.dmb)
			if err != nil {
				t.Fatal(err)
			}
			if hd < prev-quasiMonotoneTol {
				t.Fatalf("HD ripple in SSN beyond tolerance at cssp=%g dmb=%g ssn=%g: %g -> %g",
					fixed.cssp, fixed.dmb, ssn, prev, hd)
			}
			prev = hd
		}
		weakest, _ := flc.Evaluate(fixed.cssp, -120, fixed.dmb)
		strongest, _ := flc.Evaluate(fixed.cssp, -80, fixed.dmb)
		if !(weakest < strongest) {
			t.Errorf("endpoints not ordered at %+v: HD(-120)=%g, HD(-80)=%g", fixed, weakest, strongest)
		}
	}
}

func TestFLCQuasiMonotoneInDMB(t *testing.T) {
	flc := NewFLC()
	for _, fixed := range []struct{ cssp, ssn float64 }{
		{-3, -95}, {-6, -100}, {0, -90},
	} {
		prev := -1.0
		for dmb := 0.0; dmb <= 1.5; dmb += 0.01 {
			hd, err := flc.Evaluate(fixed.cssp, fixed.ssn, dmb)
			if err != nil {
				t.Fatal(err)
			}
			if hd < prev-quasiMonotoneTol {
				t.Fatalf("HD ripple in DMB beyond tolerance at cssp=%g ssn=%g dmb=%g: %g -> %g",
					fixed.cssp, fixed.ssn, dmb, prev, hd)
			}
			prev = hd
		}
		near, _ := flc.Evaluate(fixed.cssp, fixed.ssn, 0)
		far, _ := flc.Evaluate(fixed.cssp, fixed.ssn, 1.5)
		if !(near < far) {
			t.Errorf("endpoints not ordered at %+v: HD(0)=%g, HD(1.5)=%g", fixed, near, far)
		}
	}
}

func TestFLCDegradingSignalRaisesHD(t *testing.T) {
	// A sharply falling serving signal (SM) must produce at least the HD of
	// a flat one (NC), other inputs equal.
	flc := NewFLC()
	for _, p := range []struct{ ssn, dmb float64 }{
		{-95, 0.9}, {-100, 1.1}, {-90, 0.7},
	} {
		falling, err := flc.Evaluate(-8, p.ssn, p.dmb)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := flc.Evaluate(0, p.ssn, p.dmb)
		if err != nil {
			t.Fatal(err)
		}
		if falling < flat-1e-9 {
			t.Errorf("HD(falling)=%g < HD(flat)=%g at %+v", falling, flat, p)
		}
	}
}

func TestFLCRisingSignalSuppressesHandover(t *testing.T) {
	// BG (signal getting much better) should keep HD low even far out with
	// a strong neighbor — the anti-ping-pong core of Table 1's BG block.
	flc := NewFLC()
	hd, err := flc.Evaluate(+8, -85, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if hd > DefaultHandoverThreshold {
		t.Errorf("HD with recovering signal = %.3f, want ≤ 0.7", hd)
	}
}

func TestFLCTraceNamesPaperRules(t *testing.T) {
	flc := NewFLC()
	_, tr, err := flc.EvaluateTrace(-7, -85, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// At (-7, -85, 1.3) the dominant rule is SM & ST & FA → HG: rule 16.
	found := false
	for _, f := range tr.Firings {
		if f.Index == 16 {
			found = true
			if f.Rule.Then.Term != HdHG {
				t.Errorf("rule 16 consequent = %s, want HG", f.Rule.Then.Term)
			}
		}
	}
	if !found {
		t.Errorf("rule 16 did not fire; firings: %v", tr.Firings)
	}
}

func TestNewFLCWithOptionsOverrides(t *testing.T) {
	// Larsen variant must build and differ from Mamdani on interior points.
	larsen, err := NewFLCWithOptions(FLCOptions{
		Engine: fuzzy.Options{
			AndNorm:     fuzzy.ProductNorm,
			Implication: fuzzy.ProductImplication,
			Defuzzifier: fuzzy.Centroid{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mamdani := NewFLC()
	a, _ := mamdani.Evaluate(-3.3, -96, 0.95)
	b, _ := larsen.Evaluate(-3.3, -96, 0.95)
	if a == b {
		t.Error("Larsen override had no effect")
	}
}

func TestNewFLCWithOptionsRejectsMisnamedVariables(t *testing.T) {
	wrong := fuzzy.MustVariable("NOT_CSSP", -10, 10,
		fuzzy.Term{Name: CsspSM, MF: fuzzy.ShoulderLeft(-10, -5)},
		fuzzy.Term{Name: CsspLC, MF: fuzzy.Tri(-10, -5, 0)},
		fuzzy.Term{Name: CsspNC, MF: fuzzy.Tri(-5, 0, 10)},
		fuzzy.Term{Name: CsspBG, MF: fuzzy.ShoulderRight(0, 10)},
	)
	if _, err := NewFLCWithOptions(FLCOptions{CSSP: wrong}); err == nil {
		t.Error("misnamed CSSP variable accepted")
	}
}

func TestFLCSystemExposed(t *testing.T) {
	flc := NewFLC()
	if flc.System() == nil || flc.System().Rules().Len() != 64 {
		t.Error("System() accessor broken")
	}
}
