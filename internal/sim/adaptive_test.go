package sim

import (
	"math"
	"testing"

	"repro/internal/handover"
)

// TestAdaptiveCompiledMatchesExact pins the sim-level decision-sequence
// equivalence of the speed-adaptive controller on the compiled control
// surface: across the paper's scenario grid and speed sweep, an
// AdaptiveFuzzy built on core.DefaultCompiledFLC must reproduce the exact
// controller's verdicts epoch by epoch.  This is the sim-side counterpart
// of the serve-level columnar pin in internal/serve.
func TestAdaptiveCompiledMatchesExact(t *testing.T) {
	if _, err := handover.NewCompiledAdaptiveFuzzy(); err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for _, base := range []Config{PaperBoundaryConfig(), PaperCrossingConfig()} {
		c, _ := SweepGrid("adaptive", base, 2, []float64{0, 30, 50})
		cfgs = append(cfgs, c...)
	}

	handovers := 0
	for i, cfg := range cfgs {
		exactCfg := cfg
		exactCfg.AlgorithmFactory = func() handover.Algorithm { return handover.NewAdaptiveFuzzy() }
		compiledCfg := cfg
		compiledCfg.AlgorithmFactory = func() handover.Algorithm {
			a, _ := handover.NewCompiledAdaptiveFuzzy() // compile verified above
			return a
		}
		exact, err := Run(exactCfg)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := Run(compiledCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact.Epochs) != len(compiled.Epochs) {
			t.Fatalf("config %d: %d exact epochs, %d compiled", i, len(exact.Epochs), len(compiled.Epochs))
		}
		for j := range exact.Epochs {
			ee, ce := exact.Epochs[j], compiled.Epochs[j]
			if ee.Decision.Handover != ce.Decision.Handover || ee.Executed != ce.Executed ||
				ee.Decision.Scored != ce.Decision.Scored || ee.Decision.Reason != ce.Decision.Reason {
				t.Fatalf("config %d epoch %d: compiled %+v/executed=%v ≠ exact %+v/executed=%v",
					i, j, ce.Decision, ce.Executed, ee.Decision, ee.Executed)
			}
			if ee.Decision.Scored && math.Abs(ee.Decision.Score-ce.Decision.Score) > 1e-9 {
				t.Fatalf("config %d epoch %d: compiled HD %g drifted from exact %g",
					i, j, ce.Decision.Score, ee.Decision.Score)
			}
			if ee.Executed {
				handovers++
			}
		}
	}
	if handovers == 0 {
		t.Error("adaptive sweep executed no handovers; the grid does not exercise the extension")
	}
}
