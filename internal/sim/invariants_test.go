package sim

import (
	"testing"

	"repro/internal/rng"
)

// TestRunInvariantsAcrossSeeds checks structural invariants of any run over
// a spread of random seeds and both paper radii:
//
//   - the serving-cell sequence has exactly HandoverCount transitions;
//   - handover events are strictly ordered in epochs and reference real
//     epochs whose decision actually requested the handover;
//   - ping-pong count never exceeds the handover count;
//   - every epoch's serving cell matches the attachment implied by the
//     event history.
func TestRunInvariantsAcrossSeeds(t *testing.T) {
	for _, radius := range []float64{1, 2} {
		for k := 0; k < 40; k++ {
			cfg := Config{
				Seed:         rng.DeriveSeed(12345, k),
				CellRadiusKm: radius,
				NWalk:        8,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("radius %g seed %d: %v", radius, k, err)
			}
			// Epochs record the pre-handover attachment, so an event at the
			// final epoch never surfaces in the serving sequence; every
			// other event produces exactly one transition.
			visible := 0
			for _, ev := range res.Events {
				if ev.Epoch < len(res.Epochs)-1 {
					visible++
				}
			}
			if got := len(res.ServingCells) - 1; got != visible {
				t.Fatalf("radius %g replica %d: %d serving transitions, %d visible handovers",
					radius, k, got, visible)
			}
			if res.PingPongCount > res.HandoverCount() {
				t.Fatalf("ping-pong %d exceeds handovers %d", res.PingPongCount, res.HandoverCount())
			}
			prevEpoch := -1
			for _, ev := range res.Events {
				if ev.Epoch <= prevEpoch {
					t.Fatalf("events out of order: %v", res.Events)
				}
				prevEpoch = ev.Epoch
				e := res.Epochs[ev.Epoch]
				if !e.Executed || !e.Decision.Handover {
					t.Fatalf("event at epoch %d not backed by an executed decision", ev.Epoch)
				}
				if e.Serving != ev.From || e.Neighbor != ev.To {
					t.Fatalf("event %v inconsistent with epoch measurement %v->%v",
						ev, e.Serving, e.Neighbor)
				}
			}
			// Replay the attachment from events and compare per epoch.
			serving := res.Epochs[0].Serving
			evIdx := 0
			for _, e := range res.Epochs {
				if e.Serving != serving {
					t.Fatalf("epoch %d serving %v, want %v", e.Index, e.Serving, serving)
				}
				if evIdx < len(res.Events) && res.Events[evIdx].Epoch == e.Index {
					serving = res.Events[evIdx].To
					evIdx++
				}
			}
		}
	}
}
