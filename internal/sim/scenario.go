package sim

import (
	"fmt"

	"repro/internal/handover"
	"repro/internal/hexgrid"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// WalkClass labels a trajectory with the paper's two evaluation scenarios.
type WalkClass int

// Walk classes.
const (
	// ClassOther is any walk matching neither scenario.
	ClassOther WalkClass = iota
	// ClassBoundaryHover is the Fig. 7 / Table 3 class: the walk wanders
	// across cell boundaries without ever penetrating deep into a foreign
	// cell — handing over would cause ping-pong.
	ClassBoundaryHover
	// ClassCrossing is the Fig. 8 / Table 4 class: the walk moves deep
	// inside neighbor cells — handover is necessary.
	ClassCrossing
)

// String implements fmt.Stringer.
func (c WalkClass) String() string {
	switch c {
	case ClassBoundaryHover:
		return "boundary-hover"
	case ClassCrossing:
		return "crossing"
	default:
		return "other"
	}
}

// Classification thresholds, expressed as foreign-cell penetration depth in
// units of the centre-to-centre spacing.  Penetration at point p inside
// foreign cell c is (d2(p) − d1(p)) / spacing, where d1 is the distance to
// c's base station and d2 to the second-nearest: 0 exactly on a boundary,
// rising to 1 at the foreign cell centre.
//
// The deep threshold (0.35) corresponds to a normalised serving-BS distance
// of ≈ 1.2-1.3 — the DMB range of the paper's Table 4 crossing points —
// while the hover ceiling (0.06) keeps the terminal within the band where
// the FLC's output stays below the 0.7 threshold (Table 3's 0.5-0.69).
const (
	hoverMaxDepth    = 0.06 // boundary-hover: never deeper than this
	crossingMinDepth = 0.35 // crossing: a "necessary handover" episode
)

// classResolutionKm is the path-scanning resolution for classification.
const classResolutionKm = 0.02

// NecessaryHandovers counts the handovers an ideal controller must perform:
// scanning the walk, each time the terminal penetrates at least
// crossingMinDepth into a cell other than its current "home", one handover
// is counted and that cell becomes the new home.  For the paper's Fig. 8
// walk ((0,0)→(−1,2)→(−2,1)→(−1,2), each visited deeply) this is 3.
func NecessaryHandovers(path mobility.Path, lattice *hexgrid.Lattice) int {
	if len(path.Points) == 0 {
		return 0
	}
	samples := path.SampleEvery(classResolutionKm)
	home := lattice.ContainingCell(samples[0].Pos)
	count := 0
	for _, s := range samples {
		c := lattice.ContainingCell(s.Pos)
		if c != home && foreignDepth(lattice, c, s.Pos) >= crossingMinDepth {
			count++
			home = c
		}
	}
	return count
}

// ClassifyPath classifies a trajectory on the given lattice.
func ClassifyPath(path mobility.Path, lattice *hexgrid.Lattice) WalkClass {
	if len(path.Points) == 0 {
		return ClassOther
	}
	samples := path.SampleEvery(classResolutionKm)
	start := lattice.ContainingCell(samples[0].Pos)

	cellChanges := 0
	prev := start
	returnedToStart := false
	maxDepth := 0.0
	for _, s := range samples {
		c := lattice.ContainingCell(s.Pos)
		if c != prev {
			cellChanges++
			if c == start {
				returnedToStart = true
			}
			prev = c
		}
		if c != start {
			if depth := foreignDepth(lattice, c, s.Pos); depth > maxDepth {
				maxDepth = depth
			}
		}
	}
	switch {
	case cellChanges == 0:
		return ClassOther
	case maxDepth >= crossingMinDepth:
		return ClassCrossing
	case maxDepth <= hoverMaxDepth && returnedToStart:
		return ClassBoundaryHover
	default:
		return ClassOther
	}
}

// foreignDepth is the penetration of p into its containing cell c relative
// to the nearest boundary, normalised by the lattice spacing.
func foreignDepth(lattice *hexgrid.Lattice, c hexgrid.Cell, p hexgrid.Vec) float64 {
	d1 := lattice.DistanceToCenter(c, p)
	d2 := 1e18
	for _, n := range c.Neighbors() {
		if d := lattice.DistanceToCenter(n, p); d < d2 {
			d2 = d
		}
	}
	return (d2 - d1) / lattice.Spacing()
}

// ScenarioSearchResult reports which derived seed realised a walk class.
type ScenarioSearchResult struct {
	// BaseSeed is the paper's iseed anchor (100 or 200).
	BaseSeed int64
	// Replica is the sub-stream index that produced the matching walk
	// (0 = the base seed itself).
	Replica int
	// Seed is the effective seed to pass to Run.
	Seed int64
	// Class is the realised class.
	Class WalkClass
	// Cells is the geometric cell sequence of the matching walk.
	Cells []hexgrid.Cell
}

// FindScenarioSeed searches the sub-streams of cfg.Seed (replica 0 = the
// seed itself, then rng.DeriveSeed(seed, k)) for the first walk at replica
// index ≥ fromReplica matching the predicate, mirroring the paper's
// Monte-Carlo protocol of selecting representative iseed values.
// DESIGN.md §3 documents the substitution; the chosen replica is recorded
// in every report.
func FindScenarioSeed(cfg Config, fromReplica, maxReplicas int, match func(mobility.Path, *hexgrid.Lattice) bool) (ScenarioSearchResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return ScenarioSearchResult{}, err
	}
	if maxReplicas < 1 {
		maxReplicas = 1
	}
	if fromReplica < 0 {
		fromReplica = 0
	}
	lattice := hexgrid.NewLattice(cfg.CellRadiusKm)
	walk := cfg.Walk
	if walk == nil {
		walk = mobility.DefaultRandomWalk(cfg.NWalk)
	}
	for k := fromReplica; k < maxReplicas; k++ {
		seed := cfg.Seed
		if k > 0 {
			seed = rng.DeriveSeed(cfg.Seed, k)
		}
		path := walk.Generate(rng.New(seed))
		if match(path, lattice) {
			return ScenarioSearchResult{
				BaseSeed: cfg.Seed,
				Replica:  k,
				Seed:     seed,
				Class:    ClassifyPath(path, lattice),
				Cells:    path.Cells(lattice, classResolutionKm),
			}, nil
		}
	}
	return ScenarioSearchResult{}, fmt.Errorf(
		"sim: no matching walk within %d replicas of seed %d", maxReplicas, cfg.Seed)
}

// MatchClass returns a predicate matching a walk class.
func MatchClass(want WalkClass) func(mobility.Path, *hexgrid.Lattice) bool {
	return func(p mobility.Path, l *hexgrid.Lattice) bool {
		return ClassifyPath(p, l) == want
	}
}

// MatchCrossingCount returns a predicate matching crossing-class walks with
// exactly n necessary handovers (the paper's iseed = 200 walk has 3).
func MatchCrossingCount(n int) func(mobility.Path, *hexgrid.Lattice) bool {
	return func(p mobility.Path, l *hexgrid.Lattice) bool {
		return ClassifyPath(p, l) == ClassCrossing && NecessaryHandovers(p, l) == n
	}
}

// PaperCrossingHandovers is the handover count of the paper's iseed = 200
// walk: "the handover should be carried out 3 times" (§5).
const PaperCrossingHandovers = 3

// DefaultScenarioReplicas is the default sub-stream search budget of
// ResolveScenario.  Walk generation is microseconds per candidate, so a
// deep budget stays cheap; the crossing-with-3-handovers class occurs at
// ≈ 10⁻⁴ frequency and needs most of it.
const DefaultScenarioReplicas = 200000

// ResolveScenario returns cfg with Seed replaced by the first sub-stream of
// cfg.Seed realising the scenario the paper associates with that base seed,
// replicating the paper's protocol of exhibiting one representative
// Monte-Carlo run per behaviour:
//
//   - iseed 100 → a Fig. 7 walk: boundary-hover geometry on which the fuzzy
//     system executes no handover while the zero-margin RSS baseline
//     ping-pongs;
//   - iseed 200 → a Fig. 8 walk: crossing geometry with exactly 3 necessary
//     handovers, all three executed by the fuzzy system with no ping-pong;
//   - any other seed → the first crossing-class walk.
//
// The candidate walks are geometric pre-filtered (cheap) and the survivors
// verified by full simulation runs at 0 km/h.  The returned search result
// records the replica index so every report can state exactly which
// sub-stream was used (EXPERIMENTS.md).
func ResolveScenario(cfg Config, maxReplicas int) (Config, ScenarioSearchResult, error) {
	if maxReplicas <= 0 {
		maxReplicas = DefaultScenarioReplicas
	}
	var match func(mobility.Path, *hexgrid.Lattice) bool
	switch cfg.Seed {
	case 100:
		match = MatchClass(ClassBoundaryHover)
	case 200:
		match = MatchCrossingCount(PaperCrossingHandovers)
	default:
		match = MatchClass(ClassCrossing)
	}
	verify := scenarioVerifier(cfg.Seed)

	from := 0
	for {
		res, err := FindScenarioSeed(cfg, from, maxReplicas, match)
		if err != nil {
			return cfg, res, err
		}
		candidate := cfg
		candidate.Seed = res.Seed
		ok, err := verify(candidate)
		if err != nil {
			return cfg, res, err
		}
		if ok {
			return candidate, res, nil
		}
		from = res.Replica + 1
	}
}

// scenarioVerifier returns the behavioural acceptance check for the base
// seed's scenario, run at 0 km/h (the binding speed: the SSN penalty only
// lowers the FLC output, so a hover walk clean at 0 km/h stays clean at
// every speed).
func scenarioVerifier(baseSeed int64) func(Config) (bool, error) {
	switch baseSeed {
	case 100:
		return func(c Config) (bool, error) {
			fuzzyRun := c
			fuzzyRun.Algorithm = nil // paper controller
			fuzzyRun.SpeedKmh = 0
			fr, err := Run(fuzzyRun)
			if err != nil {
				return false, err
			}
			if fr.HandoverCount() != 0 {
				return false, nil
			}
			naive := c
			naive.Algorithm = handover.Hysteresis{MarginDB: 0}
			naive.SpeedKmh = 0
			nr, err := Run(naive)
			if err != nil {
				return false, err
			}
			return nr.PingPongCount >= 1, nil
		}
	case 200:
		return func(c Config) (bool, error) {
			c.Algorithm = nil
			c.SpeedKmh = 0
			r, err := Run(c)
			if err != nil {
				return false, err
			}
			return r.HandoverCount() == PaperCrossingHandovers && r.PingPongCount == 0, nil
		}
	default:
		return func(Config) (bool, error) { return true, nil }
	}
}
