// Package sim drives end-to-end handover simulations: it generates a
// mobility trajectory, samples measurement epochs along it, feeds each epoch
// through a handover algorithm, executes the resulting handovers and records
// every trace the paper's tables and figures need.
package sim

import (
	"fmt"

	"repro/internal/handover"
	"repro/internal/mobility"
)

// Config describes one simulation run.  Zero fields default to the paper's
// Table 2 parameters (see withDefaults).
type Config struct {
	// Seed is the paper's iseed: it determines the walk and any channel
	// randomness.
	Seed int64
	// NWalk is the number of random-walk legs (Table 2: 5 or 10).
	NWalk int
	// CellRadiusKm is the hexagon centre-to-vertex radius (Table 2: 1 or 2).
	CellRadiusKm float64
	// PowerW is the BS transmission power (Table 2: 10 or 20).
	PowerW float64
	// Rings is the number of base-station rings around the origin cell.
	Rings int
	// SampleSpacingKm is the distance between measurement epochs.  The
	// default (0.6 km) equals the paper's mean walk-leg length: Tables 3-4
	// report one measurement per walk step (Table 3's six columns are the
	// six waypoints of the 5-leg iseed = 100 walk), so the CSSP deltas of
	// the paper correspond to per-leg sampling.
	SampleSpacingKm float64
	// SpeedKmh sets the paper's −2 dB / 10 km/h penalty on SSN.
	SpeedKmh float64
	// ShadowSigmaDB enables log-normal shadow fading when positive.
	ShadowSigmaDB float64
	// ShadowDecorrKm is the Gudmundson decorrelation distance (0 =
	// uncorrelated samples when shadowing is enabled).
	ShadowDecorrKm float64
	// ShadowSeed seeds the shadowing process independently of the walk
	// (0 derives it from Seed).  Replica averaging — the paper's "10 times
	// simulations" — varies ShadowSeed while keeping the walk fixed.
	ShadowSeed int64
	// Walk overrides the mobility model (nil: the paper's random walk with
	// NWalk legs starting at the origin).
	Walk mobility.Model
	// Algorithm overrides the handover algorithm (nil: the paper's fuzzy
	// controller with default configuration).  Algorithms may keep per-run
	// state, so one instance must not be shared by configs that run
	// concurrently — for fleets, use AlgorithmFactory instead.
	Algorithm handover.Algorithm
	// AlgorithmFactory builds a fresh algorithm per run when Algorithm is
	// nil; it must be safe to call from multiple goroutines.  This is the
	// fleet-safe way to sweep a custom algorithm (each RunFleet worker gets
	// its own instance).
	AlgorithmFactory func() handover.Algorithm
	// CompiledFLC runs the default fuzzy controller on the compiled
	// control surface (the process-wide shared kernel; see
	// core.DefaultCompiledFLC) instead of per-decision Mamdani inference.
	// Only consulted when Algorithm and AlgorithmFactory are nil.  Fleet
	// runs inherit it per cell, so a whole SweepGrid shares one compiled
	// surface.
	CompiledFLC bool
	// PingPongWindowKm is the return window of the ping-pong detector.
	PingPongWindowKm float64
	// OutageFloorDB is the outage threshold for link-quality accounting.
	OutageFloorDB float64
}

// Paper defaults (Table 2 and §5).
const (
	DefaultNWalk            = 5
	DefaultCellRadiusKm     = 2.0
	DefaultPowerW           = 10.0
	DefaultRings            = 2
	DefaultSampleSpacingKm  = 0.6
	DefaultPingPongWindowKm = 1.0
	DefaultOutageFloorDB    = -105.0
)

// withDefaults fills zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.NWalk == 0 {
		c.NWalk = DefaultNWalk
	}
	if c.CellRadiusKm == 0 {
		c.CellRadiusKm = DefaultCellRadiusKm
	}
	if c.PowerW == 0 {
		c.PowerW = DefaultPowerW
	}
	if c.Rings == 0 {
		c.Rings = DefaultRings
	}
	if c.SampleSpacingKm == 0 {
		c.SampleSpacingKm = DefaultSampleSpacingKm
	}
	if c.PingPongWindowKm == 0 {
		c.PingPongWindowKm = DefaultPingPongWindowKm
	}
	if c.OutageFloorDB == 0 {
		c.OutageFloorDB = DefaultOutageFloorDB
	}
	return c
}

// Validate rejects physically meaningless configurations.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.NWalk < 1:
		return fmt.Errorf("sim: NWalk %d < 1", c.NWalk)
	case c.CellRadiusKm <= 0:
		return fmt.Errorf("sim: cell radius %g ≤ 0", c.CellRadiusKm)
	case c.PowerW <= 0:
		return fmt.Errorf("sim: power %g ≤ 0", c.PowerW)
	case c.Rings < 1:
		return fmt.Errorf("sim: rings %d < 1 (need neighbors)", c.Rings)
	case c.SampleSpacingKm <= 0:
		return fmt.Errorf("sim: sample spacing %g ≤ 0", c.SampleSpacingKm)
	case c.SpeedKmh < 0:
		return fmt.Errorf("sim: speed %g < 0", c.SpeedKmh)
	case c.ShadowSigmaDB < 0:
		return fmt.Errorf("sim: shadow sigma %g < 0", c.ShadowSigmaDB)
	}
	return nil
}

// PaperBoundaryConfig is the iseed = 100 scenario: R = 1 km cells, 5 walk
// legs — the walk class whose terminal hovers on a 3-cell boundary (Fig. 7,
// Table 3).  DESIGN.md §3 explains the radius/seed pairing.
func PaperBoundaryConfig() Config {
	return Config{
		Seed:         100,
		NWalk:        5,
		CellRadiusKm: 1,
		PowerW:       10,
	}
}

// PaperCrossingConfig is the iseed = 200 scenario: R = 2 km cells, 10 walk
// legs — the walk class that moves deep into neighbor cells (Fig. 8,
// Table 4).
func PaperCrossingConfig() Config {
	return Config{
		Seed:         200,
		NWalk:        10,
		CellRadiusKm: 2,
		PowerW:       10,
	}
}

// TrendDriftConfig is the SSN-trend scenario family: the crossing walk
// class with a moving terminal and correlated shadow fading, so the
// neighbour signal drifts on a scale the per-epoch paper inputs cannot
// see — the regime where a trend antecedent (handover.TrendFuzzy's
// fourth input) changes decisions.  Replica sweeps vary ShadowSeed like
// every other family.
func TrendDriftConfig() Config {
	return Config{
		Seed:           300,
		NWalk:          10,
		CellRadiusKm:   2,
		PowerW:         10,
		SpeedKmh:       30,
		ShadowSigmaDB:  4,
		ShadowDecorrKm: 0.3,
	}
}
