package sim

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/handover"
	"repro/internal/hexgrid"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Epoch is one measurement instant with the algorithm's verdict attached.
type Epoch struct {
	Index int
	cell.Measurement
	// Decision is the algorithm's verdict and Executed whether the
	// handover was carried out at this epoch.
	Decision handover.Decision
	Executed bool
	// GeoCell is the cell geometrically containing the terminal —
	// independent of the serving attachment, used for walk classification.
	GeoCell hexgrid.Cell
}

// Result is a completed simulation run.
type Result struct {
	Config  Config
	Path    mobility.Path
	Network *cell.Network
	Epochs  []Epoch
	// Events lists executed handovers with ping-pong flags applied.
	Events []metrics.HandoverEvent
	// PingPongCount is the number of flagged returns.
	PingPongCount int
	// OutageFraction is the share of epochs with serving power below the
	// configured floor.
	OutageFraction float64
	// GeoCells is the deduplicated sequence of cells the walk passes
	// through — the "(0,0)→(2,-1)→…" notation of Figs. 7-8.
	GeoCells []hexgrid.Cell
	// ServingCells is the deduplicated attachment sequence (changes exactly
	// at executed handovers).
	ServingCells []hexgrid.Cell
}

// HandoverCount returns the number of executed handovers.
func (r *Result) HandoverCount() int { return len(r.Events) }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	lattice := hexgrid.NewLattice(cfg.CellRadiusKm)
	dipole := radio.NewDipole(cfg.PowerW)
	network, err := cell.NewNetwork(lattice, dipole, cfg.Rings)
	if err != nil {
		return nil, err
	}
	if cfg.ShadowSigmaDB > 0 {
		shadowSeed := cfg.ShadowSeed
		if shadowSeed == 0 {
			shadowSeed = rng.DeriveSeed(cfg.Seed, 1)
		}
		network.SetShadowing(radio.NewShadowing(
			cfg.ShadowSigmaDB, cfg.ShadowDecorrKm, shadowSeed))
	}

	walk := cfg.Walk
	if walk == nil {
		walk = mobility.DefaultRandomWalk(cfg.NWalk)
	}
	path := walk.Generate(rng.New(cfg.Seed))
	if err := path.Validate(); err != nil {
		return nil, err
	}

	algo := cfg.Algorithm
	if algo == nil && cfg.AlgorithmFactory != nil {
		algo = cfg.AlgorithmFactory()
	}
	if algo == nil {
		if cfg.CompiledFLC {
			f, err := handover.NewCompiledFuzzy()
			if err != nil {
				return nil, fmt.Errorf("sim: compiled FLC: %w", err)
			}
			algo = f
		} else {
			algo = handover.NewFuzzy(nil)
		}
	}
	algo.Reset()

	start := lattice.ContainingCell(path.Points[0])
	if !network.Has(start) {
		return nil, fmt.Errorf("sim: walk starts outside the network at cell %v", start)
	}
	measurer, err := cell.NewMeasurer(network, start, cfg.SpeedKmh)
	if err != nil {
		return nil, err
	}

	detector := metrics.NewPingPongDetector(cfg.PingPongWindowKm)
	outage := &metrics.OutageTracker{FloorDB: cfg.OutageFloorDB}

	samples := path.SampleEvery(cfg.SampleSpacingKm)
	res := &Result{
		Config:  cfg,
		Path:    path,
		Network: network,
		Epochs:  make([]Epoch, 0, len(samples)),
	}
	for i, s := range samples {
		prevDB, havePrev := measurer.PrevServingDB()
		meas, err := measurer.Measure(s.Pos, s.WalkedKm)
		if err != nil {
			return nil, err
		}
		dec, err := algo.Decide(meas, prevDB, havePrev)
		if err != nil {
			return nil, err
		}
		executed := false
		if dec.Handover {
			from := measurer.Serving()
			if err := measurer.Handover(meas.Neighbor); err != nil {
				return nil, err
			}
			algo.Reset()
			executed = true
			ev := metrics.HandoverEvent{
				Epoch:    i,
				WalkedKm: s.WalkedKm,
				From:     from,
				To:       meas.Neighbor,
				Score:    dec.Score,
			}
			ev.PingPong = detector.Observe(ev)
			res.Events = append(res.Events, ev)
		}
		outage.Observe(meas.ServingDB)
		res.Epochs = append(res.Epochs, Epoch{
			Index:       i,
			Measurement: meas,
			Decision:    dec,
			Executed:    executed,
			GeoCell:     lattice.ContainingCell(s.Pos),
		})
	}
	res.PingPongCount = detector.Count()
	res.OutageFraction = outage.Fraction()
	res.GeoCells = dedupCells(res.Epochs, func(e Epoch) hexgrid.Cell { return e.GeoCell })
	res.ServingCells = dedupCells(res.Epochs, func(e Epoch) hexgrid.Cell { return e.Serving })
	return res, nil
}

func dedupCells(epochs []Epoch, get func(Epoch) hexgrid.Cell) []hexgrid.Cell {
	var out []hexgrid.Cell
	for _, e := range epochs {
		c := get(e)
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// PowerTrace returns the received power from one base station along the
// walk, on the epoch grid — the series plotted in the paper's Figs. 9-13.
// The series uses the deterministic channel (no shadowing), matching the
// paper's smooth curves.
func (r *Result) PowerTrace(c hexgrid.Cell) (trace.Series, error) {
	if !r.Network.Has(c) {
		return trace.Series{}, fmt.Errorf("sim: no base station at %v", c)
	}
	dipole := radio.NewDipole(r.Config.PowerW)
	s := trace.Series{
		Name: fmt.Sprintf("BS%v", c),
		X:    make([]float64, len(r.Epochs)),
		Y:    make([]float64, len(r.Epochs)),
	}
	lattice := r.Network.Lattice()
	for i, e := range r.Epochs {
		s.X[i] = e.WalkedKm
		s.Y[i] = dipole.ReceivedPowerDB(lattice.DistanceToCenter(c, e.Pos))
	}
	return s, nil
}

// HDTrace returns the fuzzy decision output per epoch (NaN-free: epochs the
// POTLC short-circuited carry score 0).
func (r *Result) HDTrace() trace.Series {
	s := trace.Series{
		Name: "HD",
		X:    make([]float64, len(r.Epochs)),
		Y:    make([]float64, len(r.Epochs)),
	}
	for i, e := range r.Epochs {
		s.X[i] = e.WalkedKm
		if e.Decision.Scored {
			s.Y[i] = e.Decision.Score
		}
	}
	return s
}

// TopForeignCells returns the non-start cells the walk spends the most
// epochs in, most-visited first — the "neighbor BS" curves of Figs. 10-11.
func (r *Result) TopForeignCells(n int) []hexgrid.Cell {
	if len(r.Epochs) == 0 || n <= 0 {
		return nil
	}
	start := r.Epochs[0].GeoCell
	counts := make(map[hexgrid.Cell]int)
	for _, e := range r.Epochs {
		if e.GeoCell != start {
			counts[e.GeoCell]++
		}
	}
	cells := make([]hexgrid.Cell, 0, len(counts))
	for c := range counts {
		cells = append(cells, c)
	}
	// Sort by count descending, ties by label for determinism.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if counts[b] > counts[a] || (counts[b] == counts[a] && (b.I < a.I || (b.I == a.I && b.J < a.J))) {
				cells[j-1], cells[j] = b, a
			}
		}
	}
	if len(cells) > n {
		cells = cells[:n]
	}
	return cells
}
