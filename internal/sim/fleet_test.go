package sim

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/handover"
	"repro/internal/rng"
)

// fleetTestConfigs builds a small mixed grid: both paper base configs swept
// over replicas and speeds (raw seeds, no scenario resolution — the fleet
// contract is about determinism, not walk class).
func fleetTestConfigs() ([]Config, []FleetPoint) {
	cfgs, points := SweepGrid("boundary", PaperBoundaryConfig(), 3, []float64{0, 30})
	c2, p2 := SweepGrid("crossing", PaperCrossingConfig(), 2, []float64{0, 50})
	return append(cfgs, c2...), append(points, p2...)
}

// resultFingerprint renders every decision-relevant field of a run into a
// byte-comparable string.
func resultFingerprint(r *Result) string {
	return fmt.Sprintf("%+v|%+v|%d|%g|%v|%v",
		r.Epochs, r.Events, r.PingPongCount, r.OutageFraction, r.GeoCells, r.ServingCells)
}

// TestRunFleetMatchesSequentialRun is the determinism contract: 8 parallel
// workers must reproduce byte-identical per-scenario results to sequential
// Run calls, in config order.
func TestRunFleetMatchesSequentialRun(t *testing.T) {
	cfgs, _ := fleetTestConfigs()
	parallel, err := RunFleet(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(parallel), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := parallel[i]
		if got == nil {
			t.Fatalf("config %d: nil result", i)
		}
		if a, b := resultFingerprint(want), resultFingerprint(got); a != b {
			t.Fatalf("config %d (seed %d): fleet result diverges from sequential Run\nseq: %.200s\npar: %.200s",
				i, cfg.Seed, a, b)
		}
		if !reflect.DeepEqual(want.Epochs, got.Epochs) {
			t.Fatalf("config %d: epoch records differ", i)
		}
	}
}

// TestRunFleetWorkerCountInvariance pins that the worker count never changes
// a result.
func TestRunFleetWorkerCountInvariance(t *testing.T) {
	cfgs, _ := fleetTestConfigs()
	base, err := RunFleet(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 16, len(cfgs) + 7} {
		got, err := RunFleet(cfgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if resultFingerprint(base[i]) != resultFingerprint(got[i]) {
				t.Fatalf("workers=%d config %d: result differs from workers=1", workers, i)
			}
		}
	}
}

func TestRunFleetEmpty(t *testing.T) {
	res, err := RunFleet(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("got %d results for empty fleet", len(res))
	}
}

// TestRunFleetReportsFirstErrorByIndex checks that a failing config is
// reported by its lowest index while valid configs still complete.
func TestRunFleetReportsFirstErrorByIndex(t *testing.T) {
	cfgs, _ := fleetTestConfigs()
	bad := cfgs[0]
	bad.NWalk = -1 // fails Validate
	cfgs[2] = bad
	cfgs[5] = bad
	res, err := RunFleet(cfgs, 4)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if want := "fleet config 2"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the lowest failing index (%s)", err, want)
	}
	if res[2] != nil || res[5] != nil {
		t.Error("failed configs produced results")
	}
	if res[0] == nil || res[1] == nil || res[3] == nil {
		t.Error("valid configs missing results after fleet error")
	}
}

// TestSweepGridShape pins the grid expansion order: replica-major, speeds
// inner, replica 0 keeping the base seed.
func TestSweepGridShape(t *testing.T) {
	base := PaperCrossingConfig()
	cfgs, points := SweepGrid("x", base, 2, []float64{0, 25, 50})
	if len(cfgs) != 6 || len(points) != 6 {
		t.Fatalf("got %d configs, %d points, want 6", len(cfgs), len(points))
	}
	if cfgs[0].Seed != base.Seed || points[0].Replica != 0 {
		t.Error("replica 0 does not keep the base seed")
	}
	if cfgs[3].Seed == base.Seed {
		t.Error("replica 1 reuses the base seed")
	}
	for i, wantSpeed := range []float64{0, 25, 50, 0, 25, 50} {
		if cfgs[i].SpeedKmh != wantSpeed || points[i].SpeedKmh != wantSpeed {
			t.Fatalf("grid cell %d: speed %g, want %g", i, cfgs[i].SpeedKmh, wantSpeed)
		}
	}
	if points[3].BaseSeed != base.Seed {
		t.Error("points must record the base seed, not the derived one")
	}
	// Degenerate arguments.
	cfgs, _ = SweepGrid("x", base, 0, nil)
	if len(cfgs) != 1 {
		t.Fatalf("degenerate grid has %d cells, want 1", len(cfgs))
	}
}

// TestSweepGridFleetSafety pins the concurrency contract: expanded cells
// never share base.Algorithm (stateful instances would race across
// workers), the fleet-safe AlgorithmFactory is copied through, and every
// cell gets a distinct shadow sub-stream that cannot collide with any
// cell's walk stream.
func TestSweepGridFleetSafety(t *testing.T) {
	base := PaperCrossingConfig()
	base.Algorithm = handover.NewFuzzy(nil) // stateful since the fast path
	var calls atomic.Int32
	base.AlgorithmFactory = func() handover.Algorithm {
		calls.Add(1)
		return handover.NewFuzzy(nil)
	}
	cfgs, _ := SweepGrid("x", base, 3, []float64{0, 50})
	seen := map[int64]bool{}
	for i, c := range cfgs {
		if c.Algorithm != nil {
			t.Fatalf("cell %d carries the shared base algorithm", i)
		}
		if c.AlgorithmFactory == nil {
			t.Fatalf("cell %d lost the algorithm factory", i)
		}
		if c.ShadowSeed == 0 {
			t.Fatalf("cell %d has no shadow sub-stream", i)
		}
		seen[c.ShadowSeed] = true
	}
	if len(seen) != 3 { // one stream per replica, shared across speeds
		t.Fatalf("%d distinct shadow streams for 3 replicas", len(seen))
	}
	// No shadow stream may equal a walk replica stream of the same base
	// seed (replica 0's default shadow seed used to collide with replica
	// 1's walk seed).
	for k := 0; k < 64; k++ {
		walkSeed := base.Seed
		if k > 0 {
			walkSeed = rng.DeriveSeed(base.Seed, k)
		}
		if seen[walkSeed] {
			t.Fatalf("shadow stream collides with walk replica %d", k)
		}
	}
	// Each factory-built run gets its own instance.
	if _, err := RunFleet(cfgs[:2], 2); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("factory called %d times for 2 runs, want 2", n)
	}
}
