package sim

import (
	"testing"
)

// TestCompiledFLCDecisionSequenceEquivalence is the sim-level acceptance
// regression of the compiled control surface: on the paper's scenario grid
// (both base seeds × replicas × speeds), every epoch of every run must
// reach the same handover verdict — and the same executed-handover
// sequence — whether the FLC runs exact Mamdani inference or the compiled
// surface.  Verdict equivalence is tolerance-aware by construction: HD may
// differ within the surface's error bound, but the decisions must match.
func TestCompiledFLCDecisionSequenceEquivalence(t *testing.T) {
	for _, base := range []struct {
		label string
		cfg   Config
	}{
		{"boundary", PaperBoundaryConfig()},
		{"crossing", PaperCrossingConfig()},
	} {
		exactCfgs, points := SweepGrid(base.label, base.cfg, 3, []float64{0, 10, 30, 50})
		compiledCfgs := make([]Config, len(exactCfgs))
		for i, cfg := range exactCfgs {
			cfg.CompiledFLC = true
			compiledCfgs[i] = cfg
		}
		exact, err := RunFleet(exactCfgs, 0)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := RunFleet(compiledCfgs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			e, c := exact[i], compiled[i]
			if len(e.Epochs) != len(c.Epochs) {
				t.Fatalf("%v: %d epochs exact vs %d compiled", points[i], len(e.Epochs), len(c.Epochs))
			}
			for j := range e.Epochs {
				ee, ce := e.Epochs[j], c.Epochs[j]
				if ee.Decision.Handover != ce.Decision.Handover || ee.Executed != ce.Executed {
					t.Fatalf("%v epoch %d: exact verdict (handover=%v executed=%v) ≠ compiled (handover=%v executed=%v)",
						points[i], j, ee.Decision.Handover, ee.Executed, ce.Decision.Handover, ce.Executed)
				}
				if ee.Decision.Reason != ce.Decision.Reason {
					t.Fatalf("%v epoch %d: exact stage %q ≠ compiled %q",
						points[i], j, ee.Decision.Reason, ce.Decision.Reason)
				}
				if ee.Executed && ee.Neighbor != ce.Neighbor {
					t.Fatalf("%v epoch %d: exact handover target %v ≠ compiled %v",
						points[i], j, ee.Neighbor, ce.Neighbor)
				}
			}
			if e.PingPongCount != c.PingPongCount {
				t.Fatalf("%v: ping-pong count %d exact vs %d compiled",
					points[i], e.PingPongCount, c.PingPongCount)
			}
		}
	}
}
