package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// RunFleet executes many independent simulation configs across a worker
// pool and returns their results in config order: results[i] is the run of
// cfgs[i], regardless of which worker finished it or when.  Each run draws
// every random stream from its own config seed (rng.New(cfg.Seed), plus the
// derived shadowing sub-stream), so a fleet run is bit-identical to running
// the same configs sequentially with Run — the worker count only changes
// wall-clock time, never results.
//
// workers < 1 selects GOMAXPROCS; the pool never exceeds len(cfgs).
//
// Configs must not share mutable state: a non-nil Config.Algorithm or
// Config.Walk that keeps internal state (Fuzzy's scratch, HysteresisTTT's
// streak counter, …) must appear in at most one config.  Leaving Algorithm
// nil — each run then builds its own fuzzy controller — is always safe.
//
// If any run fails, RunFleet still completes the remaining configs and
// returns the partially filled results slice together with the error of the
// lowest-indexed failure (failed slots are nil).
func RunFleet(cfgs []Config, workers int) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sim: fleet config %d (seed %d): %w", i, cfgs[i].Seed, err)
		}
	}
	return results, nil
}

// FleetPoint identifies one cell of a sweep grid: a scenario base config
// evaluated at one (seed replica, speed) combination.
type FleetPoint struct {
	// Label names the scenario family (e.g. "boundary", "crossing").
	Label string
	// BaseSeed is the family's anchor seed; Replica the sub-stream index
	// (0 = the base seed itself).
	BaseSeed int64
	Replica  int
	// SpeedKmh is the terminal speed of this grid cell.
	SpeedKmh float64
}

// String implements fmt.Stringer.
func (p FleetPoint) String() string {
	return fmt.Sprintf("%s seed=%d r%d v=%g", p.Label, p.BaseSeed, p.Replica, p.SpeedKmh)
}

// fleetShadowOffset separates the shadow-fading replica sub-streams from
// the walk replica sub-streams of the same base seed: replica k's walk uses
// DeriveSeed(seed, k) while its shadowing uses DeriveSeed(·, offset+k), so
// no two fleet cells (and no walk/shadow pair) ever consume the same
// generator stream.
const fleetShadowOffset = 1 << 20

// SweepGrid expands one labelled base config into the cross product of seed
// replicas × speeds, in deterministic row-major order (replica outermost).
// Replica 0 keeps the base seed; replica k > 0 runs the derived sub-stream
// rng.DeriveSeed(base.Seed, k) — the paper's "10 times simulations"
// protocol scaled out.  Every cell also gets its own shadow-fading
// sub-stream (derived from base.ShadowSeed when set, the base seed
// otherwise), so shadowed replicas are statistically independent.  The
// returned slices are parallel: cfgs[i] is the config of points[i].
//
// The expanded configs never carry base.Algorithm: sharing one algorithm
// instance across concurrent runs would race on its per-run state (see
// RunFleet).  To sweep a non-default algorithm, set base.AlgorithmFactory —
// it is copied into every cell and each run builds its own instance.
func SweepGrid(label string, base Config, replicas int, speeds []float64) (cfgs []Config, points []FleetPoint) {
	if replicas < 1 {
		replicas = 1
	}
	if len(speeds) == 0 {
		speeds = []float64{base.SpeedKmh}
	}
	shadowBase := base.ShadowSeed
	if shadowBase == 0 {
		shadowBase = base.Seed
	}
	cfgs = make([]Config, 0, replicas*len(speeds))
	points = make([]FleetPoint, 0, replicas*len(speeds))
	for k := 0; k < replicas; k++ {
		seed := base.Seed
		if k > 0 {
			seed = rng.DeriveSeed(base.Seed, k)
		}
		for _, v := range speeds {
			cfg := base
			cfg.Algorithm = nil
			cfg.Seed = seed
			cfg.ShadowSeed = rng.DeriveSeed(shadowBase, fleetShadowOffset+k)
			cfg.SpeedKmh = v
			cfgs = append(cfgs, cfg)
			points = append(points, FleetPoint{
				Label:    label,
				BaseSeed: base.Seed,
				Replica:  k,
				SpeedKmh: v,
			})
		}
	}
	return cfgs, points
}
