package sim

import (
	"math"
	"strings"
	"testing"

	"fmt"
	"repro/internal/handover"
	"repro/internal/hexgrid"

	"repro/internal/core"
	"repro/internal/mobility"
)

// corridorConfig is a controlled scenario: a straight line from the origin
// BS to the centre of neighbor (2,-1) at R = 2 km — one unambiguous deep
// crossing.
func corridorConfig() Config {
	lattice := hexgrid.NewLattice(2)
	return Config{
		Seed:         1,
		CellRadiusKm: 2,
		Walk:         mobility.Line(hexgrid.Vec{}, lattice.Center(hexgrid.Cell{I: 2, J: -1})),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config (all defaults) rejected: %v", err)
	}
	bad := []Config{
		{NWalk: -1},
		{CellRadiusKm: -2},
		{PowerW: -5},
		{Rings: -1},
		{SampleSpacingKm: -0.1},
		{SpeedKmh: -10},
		{ShadowSigmaDB: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPaperConfigs(t *testing.T) {
	b := PaperBoundaryConfig()
	if b.Seed != 100 || b.CellRadiusKm != 1 || b.NWalk != 5 {
		t.Errorf("boundary config = %+v", b)
	}
	c := PaperCrossingConfig()
	if c.Seed != 200 || c.CellRadiusKm != 2 || c.NWalk != 10 {
		t.Errorf("crossing config = %+v", c)
	}
}

func TestRunCorridorHandsOverOnce(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoverCount() != 1 {
		t.Fatalf("corridor handovers = %d, want 1; events: %v", res.HandoverCount(), res.Events)
	}
	ev := res.Events[0]
	if ev.From != (hexgrid.Cell{}) || ev.To != (hexgrid.Cell{I: 2, J: -1}) {
		t.Errorf("handover %v, want (0,0) -> (2,-1)", ev)
	}
	if ev.Score <= 0.7 {
		t.Errorf("handover score %g, want > 0.7", ev.Score)
	}
	if res.PingPongCount != 0 {
		t.Error("corridor crossing flagged as ping-pong")
	}
	// The handover must happen after the geometric boundary (1.73 km) but
	// before the corridor ends (3.46 km) — neither too early nor absurdly
	// late ("a timely handover algorithm", §2).
	if ev.WalkedKm < 1.73 || ev.WalkedKm > 3.2 {
		t.Errorf("handover at %.2f km, want within (1.73, 3.2)", ev.WalkedKm)
	}
	// Attachment sequence is exactly origin → neighbor.
	want := []hexgrid.Cell{{}, {I: 2, J: -1}}
	if len(res.ServingCells) != 2 || res.ServingCells[0] != want[0] || res.ServingCells[1] != want[1] {
		t.Errorf("serving sequence = %v", res.ServingCells)
	}
}

func TestRunEpochInvariants(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 5 {
		t.Fatalf("too few epochs: %d", len(res.Epochs))
	}
	for i, e := range res.Epochs {
		if e.Index != i {
			t.Fatalf("epoch %d has index %d", i, e.Index)
		}
		if i > 0 && e.WalkedKm <= res.Epochs[i-1].WalkedKm {
			t.Fatal("walked distance not increasing")
		}
		if e.DMBNorm < 0 || math.IsNaN(e.ServingDB) || math.IsNaN(e.NeighborDB) {
			t.Fatalf("epoch %d has invalid measurement %+v", i, e.Measurement)
		}
		if e.Serving == e.Neighbor {
			t.Fatalf("epoch %d: neighbor equals serving", i)
		}
	}
}

func TestRunWalkStartingOutsideNetworkFails(t *testing.T) {
	cfg := corridorConfig()
	cfg.Walk = mobility.Line(hexgrid.Vec{X: 100}, hexgrid.Vec{X: 101})
	if _, err := Run(cfg); err == nil {
		t.Fatal("walk outside the network accepted")
	}
}

func TestRunBaselineAlgorithms(t *testing.T) {
	for _, algo := range []handover.Algorithm{
		handover.AbsoluteThreshold{ThresholdDB: -85},
		handover.Hysteresis{MarginDB: 4},
		handover.NewHysteresisTTT(4, 2),
		handover.DistanceBased{TriggerNorm: 1.0},
	} {
		cfg := corridorConfig()
		cfg.Algorithm = algo
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if res.HandoverCount() < 1 {
			t.Errorf("%s never handed over on the corridor", algo.Name())
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := PaperCrossingConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Epochs) != len(b.Epochs) || a.HandoverCount() != b.HandoverCount() {
		t.Fatal("identical configs produced different runs")
	}
	for i := range a.Epochs {
		if a.Epochs[i].ServingDB != b.Epochs[i].ServingDB {
			t.Fatal("epoch measurements differ across identical runs")
		}
	}
}

func TestRunWithShadowingDeterministicAndDifferent(t *testing.T) {
	cfg := corridorConfig()
	cfg.ShadowSigmaDB = 6
	cfg.ShadowDecorrKm = 0.05
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].ServingDB != b.Epochs[i].ServingDB {
			t.Fatal("shadowed run not deterministic per seed")
		}
	}
	plain, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range plain.Epochs {
		if plain.Epochs[i].ServingDB != a.Epochs[i].ServingDB {
			same = false
			break
		}
	}
	if same {
		t.Error("shadowing had no effect on measurements")
	}
}

func TestPowerTrace(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.PowerTrace(hexgrid.Cell{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "BS(0,0)" || len(s.X) != len(res.Epochs) {
		t.Errorf("trace %q with %d points", s.Name, len(s.X))
	}
	// Walking away from the origin BS: power decreases monotonically.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] >= s.Y[i-1] {
			t.Fatalf("origin power not decreasing at %d", i)
		}
	}
	// The neighbor trace increases.
	n, err := res.PowerTrace(hexgrid.Cell{I: 2, J: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Y[len(n.Y)-1] <= n.Y[0] {
		t.Error("neighbor power not increasing toward its BS")
	}
	if _, err := res.PowerTrace(hexgrid.Cell{I: 99, J: 99}); err == nil {
		t.Error("unknown BS accepted")
	}
}

func TestHDTraceAndTopForeignCells(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	hd := res.HDTrace()
	if len(hd.X) != len(res.Epochs) {
		t.Fatal("HD trace length mismatch")
	}
	maxHD := 0.0
	for _, v := range hd.Y {
		if v < 0 || v > 1 {
			t.Fatalf("HD %g outside [0,1]", v)
		}
		if v > maxHD {
			maxHD = v
		}
	}
	if maxHD <= 0.7 {
		t.Errorf("corridor max HD = %g, want > 0.7", maxHD)
	}
	top := res.TopForeignCells(2)
	if len(top) == 0 || top[0] != (hexgrid.Cell{I: 2, J: -1}) {
		t.Errorf("top foreign cells = %v", top)
	}
	if res.TopForeignCells(0) != nil {
		t.Error("TopForeignCells(0) should be nil")
	}
}

func TestClassifyScriptedPaths(t *testing.T) {
	lattice := hexgrid.NewLattice(2)
	d := lattice.Spacing()
	vertex := hexgrid.Vec{X: 2 * math.Cos(-math.Pi/6), Y: 2 * math.Sin(-math.Pi/6)}

	// Deep crossing: straight to the neighbor centre.
	crossing := mobility.Path{Points: []hexgrid.Vec{{}, {X: d}}}
	if got := ClassifyPath(crossing, lattice); got != ClassCrossing {
		t.Errorf("corridor class = %v, want crossing", got)
	}
	// Hover: out to just beyond the 3-cell vertex and back.
	justPast := vertex.Scale(1.05)
	hover := mobility.Path{Points: []hexgrid.Vec{vertex.Scale(0.7), justPast, vertex.Scale(0.7)}}
	if got := ClassifyPath(hover, lattice); got != ClassBoundaryHover {
		t.Errorf("vertex graze class = %v, want boundary-hover", got)
	}
	// Fully interior: other.
	interior := mobility.Path{Points: []hexgrid.Vec{{}, {X: 0.5}}}
	if got := ClassifyPath(interior, lattice); got != ClassOther {
		t.Errorf("interior class = %v, want other", got)
	}
	if got := ClassifyPath(mobility.Path{}, lattice); got != ClassOther {
		t.Errorf("empty path class = %v", got)
	}
}

func TestNecessaryHandoversSyntheticTriple(t *testing.T) {
	lattice := hexgrid.NewLattice(2)
	right := lattice.Center(hexgrid.Cell{I: 2, J: -1})
	upper := lattice.Center(hexgrid.Cell{I: 1, J: 1})
	path := mobility.Path{Points: []hexgrid.Vec{{}, right, {}, upper}}
	if got := NecessaryHandovers(path, lattice); got != 3 {
		t.Errorf("necessary handovers = %d, want 3", got)
	}
	if got := NecessaryHandovers(mobility.Path{}, lattice); got != 0 {
		t.Errorf("empty path necessary = %d", got)
	}
}

func TestWalkClassString(t *testing.T) {
	for class, want := range map[WalkClass]string{
		ClassOther: "other", ClassBoundaryHover: "boundary-hover", ClassCrossing: "crossing",
	} {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", class, got, want)
		}
	}
}

func TestFindScenarioSeedNoMatch(t *testing.T) {
	cfg := PaperBoundaryConfig()
	never := func(mobility.Path, *hexgrid.Lattice) bool { return false }
	if _, err := FindScenarioSeed(cfg, 0, 10, never); err == nil {
		t.Fatal("impossible predicate matched")
	}
}

func TestFindScenarioSeedDeterministic(t *testing.T) {
	cfg := PaperBoundaryConfig()
	a, err := FindScenarioSeed(cfg, 0, 1000, MatchClass(ClassBoundaryHover))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindScenarioSeed(cfg, 0, 1000, MatchClass(ClassBoundaryHover))
	if err != nil {
		t.Fatal(err)
	}
	if a.Replica != b.Replica || a.Seed != b.Seed {
		t.Error("seed search not deterministic")
	}
	if a.Class != ClassBoundaryHover {
		t.Errorf("found class %v", a.Class)
	}
	// fromReplica skips the first hit.
	c, err := FindScenarioSeed(cfg, a.Replica+1, 20000, MatchClass(ClassBoundaryHover))
	if err != nil {
		t.Fatal(err)
	}
	if c.Replica <= a.Replica {
		t.Error("fromReplica not honoured")
	}
}

func TestMeasurementPointSelectors(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := res.BoundaryMeasurementPoints(2, 0.5)
	if len(pts) != 2 {
		t.Fatalf("boundary points = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Error("points not sorted")
		}
	}
	cross := res.CrossingMeasurementPoints(5)
	if len(cross) != 1 {
		t.Fatalf("crossing points = %v, want exactly 1 on the corridor", cross)
	}
	if res.Epochs[cross[0]].GeoCell == res.Epochs[cross[0]-1].GeoCell {
		t.Error("crossing point does not mark a cell change")
	}
	if got := res.HandoverEpochs(); len(got) != 1 {
		t.Errorf("handover epochs = %v", got)
	}
	te := res.CrossingTableEpochs()
	if len(te) != 2 || te[1] != te[0]+1 {
		t.Errorf("crossing table epochs = %v, want adjacent pair", te)
	}
	be := res.BoundaryTableEpochs(4)
	if len(be) != 4 || be[0] != 0 || be[3] != 3 {
		t.Errorf("boundary table epochs = %v", be)
	}
}

func TestBuildPaperTableSpeedShift(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	epochs := res.CrossingTableEpochs()
	tab, err := BuildPaperTable("Table X", res, nil, epochs, []float64{0, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0].Cells) != len(epochs) {
		t.Fatalf("table shape: %d rows × %d cells", len(tab.Rows), len(tab.Rows[0].Cells))
	}
	// Speed shifts SSN by exactly −2 dB per 10 km/h, leaving CSSP and the
	// distance untouched — the paper's Tables 3-4 row structure.
	for c := range tab.Rows[0].Cells {
		v0, v10, v50 := tab.Rows[0].Cells[c], tab.Rows[1].Cells[c], tab.Rows[2].Cells[c]
		if math.Abs(v0.SSNdB-v10.SSNdB-2) > 1e-9 || math.Abs(v0.SSNdB-v50.SSNdB-10) > 1e-9 {
			t.Errorf("column %d SSN shift wrong: %g, %g, %g", c, v0.SSNdB, v10.SSNdB, v50.SSNdB)
		}
		if v0.CSSPdB != v50.CSSPdB || v0.DistanceKm != v50.DistanceKm {
			t.Errorf("column %d CSSP/distance changed with speed", c)
		}
	}
	// Handover column at 0 km/h exceeds the threshold on the corridor.
	if tab.Rows[0].Cells[1].OutputHD <= tab.Threshold {
		t.Errorf("crossing column output = %g, want > %g", tab.Rows[0].Cells[1].OutputHD, tab.Threshold)
	}
	if tab.MaxOutput() < tab.MinOutput() {
		t.Error("max < min")
	}
	s := tab.String()
	for _, want := range []string{"Table X", "CSSP BS", "Neighbor BS", "Distance", "System Output", "Speed 50"} {
		if !strings.Contains(s, want) {
			t.Errorf("table string missing %q", want)
		}
	}
}

func TestBuildPaperTableErrors(t *testing.T) {
	res, err := Run(corridorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPaperTable("t", res, nil, nil, []float64{0}); err == nil {
		t.Error("empty epoch list accepted")
	}
	if _, err := BuildPaperTable("t", res, nil, []int{9999}, []float64{0}); err == nil {
		t.Error("out-of-range epoch accepted")
	}
}

// TestResolvePaperBoundaryScenario verifies the full Table 3 headline: the
// resolved iseed = 100 walk yields zero fuzzy handovers at every speed while
// the zero-margin baseline ping-pongs.
func TestResolvePaperBoundaryScenario(t *testing.T) {
	cfg, sr, err := ResolveScenario(PaperBoundaryConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Class != ClassBoundaryHover || sr.BaseSeed != 100 {
		t.Fatalf("search result %+v", sr)
	}
	for _, speed := range []float64{0, 20, 50} {
		run := cfg
		run.SpeedKmh = speed
		res, err := Run(run)
		if err != nil {
			t.Fatal(err)
		}
		if res.HandoverCount() != 0 {
			t.Errorf("speed %g: fuzzy executed %d handovers on hover walk", speed, res.HandoverCount())
		}
	}
	naive := cfg
	naive.Algorithm = handover.Hysteresis{MarginDB: 0}
	res, err := Run(naive)
	if err != nil {
		t.Fatal(err)
	}
	if res.PingPongCount < 1 {
		t.Error("naive baseline did not ping-pong on the hover walk")
	}
}

// TestResolvePaperCrossingScenario verifies the Table 4 headline: exactly 3
// handovers, no ping-pong, and all three decision scores above 0.7.
func TestResolvePaperCrossingScenario(t *testing.T) {
	cfg, sr, err := ResolveScenario(PaperCrossingConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Class != ClassCrossing {
		t.Fatalf("search result %+v", sr)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoverCount() != PaperCrossingHandovers {
		t.Fatalf("handovers = %d, want 3", res.HandoverCount())
	}
	if res.PingPongCount != 0 {
		t.Error("crossing run ping-ponged")
	}
	for _, ev := range res.Events {
		if ev.Score <= 0.7 {
			t.Errorf("handover score %g ≤ 0.7 at %v", ev.Score, ev)
		}
	}
	// Table 4 layout: the pre-crossing column sits below the threshold, the
	// crossing column above it, at 0 km/h.
	tab, err := BuildPaperTable("Table 4", res, nil, res.CrossingTableEpochs(), []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	cells := tab.Rows[0].Cells
	for i := 0; i+1 < len(cells); i += 2 {
		if cells[i+1].OutputHD <= tab.Threshold {
			t.Errorf("crossing column %d output %g ≤ threshold", i+1, cells[i+1].OutputHD)
		}
	}
}

func TestBuildAveragedPaperTable(t *testing.T) {
	cfg := corridorConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochs := res.CrossingTableEpochs()
	// The deterministic reference uses the same passive protocol as the
	// averaging harness (measurements from the original serving BS).
	passiveCfg := cfg
	passiveCfg.Algorithm = handover.Passive{}
	passiveRes, err := Run(passiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := BuildPaperTable("t", passiveRes, nil, epochs, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	avg0, err := BuildAveragedPaperTable("t", cfg, nil, epochs, []float64{0}, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := range det.Rows[0].Cells {
		if math.Abs(det.Rows[0].Cells[c].OutputHD-avg0.Rows[0].Cells[c].OutputHD) > 1e-12 {
			t.Fatalf("sigma-0 average differs at column %d", c)
		}
	}
	// With shadowing, the 10-replica average stays near the deterministic
	// value — the paper's averaging protocol smoothing out the fading.
	avg, err := BuildAveragedPaperTable("t", cfg, nil, epochs, []float64{0}, 10, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for c := range det.Rows[0].Cells {
		d := math.Abs(det.Rows[0].Cells[c].OutputHD - avg.Rows[0].Cells[c].OutputHD)
		if d > 0.15 {
			t.Errorf("column %d: averaged output drifted %.3f from deterministic", c, d)
		}
	}
	if !strings.Contains(avg.Title, "avg of 10 replicas") {
		t.Errorf("title = %q", avg.Title)
	}
	if _, err := BuildAveragedPaperTable("t", cfg, nil, epochs, []float64{0}, 0, 4, 0.05); err == nil {
		t.Error("zero replicas accepted")
	}
}

// TestAveragedPaperTableConfidenceIntervals pins the CI semantics of the
// averaging harness: identical replicas (σ = 0) carry zero-width
// intervals, fading replicas carry positive ones on the shadow-affected
// rows, the deterministic builder carries none, and the rendered table
// shows the ±95% CI rows.
func TestAveragedPaperTableConfidenceIntervals(t *testing.T) {
	cfg := corridorConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochs := res.CrossingTableEpochs()

	det, err := BuildPaperTable("t", res, nil, epochs, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if det.Replicas != 1 {
		t.Errorf("deterministic table reports %d replicas", det.Replicas)
	}
	for c, cell := range det.Rows[0].Cells {
		if cell.OutputHDCI95 != 0 || cell.SSNdBCI95 != 0 || cell.CSSPdBCI95 != 0 {
			t.Errorf("deterministic cell %d carries a CI: %+v", c, cell)
		}
	}
	if strings.Contains(det.String(), "±95% CI") {
		t.Error("deterministic table renders CI rows")
	}

	// σ = 0: all replicas coincide, every interval collapses to zero.
	avg0, err := BuildAveragedPaperTable("t", cfg, nil, epochs, []float64{0}, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c, cell := range avg0.Rows[0].Cells {
		if cell.OutputHDCI95 != 0 || cell.SSNdBCI95 != 0 {
			t.Errorf("sigma-0 cell %d carries a nonzero CI: %+v", c, cell)
		}
	}

	// σ > 0: the shadow-affected rows (SSN, and HD through it) spread.
	avg, err := BuildAveragedPaperTable("t", cfg, nil, epochs, []float64{0}, 10, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Replicas != 10 {
		t.Fatalf("averaged table reports %d replicas", avg.Replicas)
	}
	sawSSN, sawHD := false, false
	for _, cell := range avg.Rows[0].Cells {
		if cell.SSNdBCI95 < 0 || cell.OutputHDCI95 < 0 || cell.CSSPdBCI95 < 0 {
			t.Fatalf("negative CI half-width: %+v", cell)
		}
		sawSSN = sawSSN || cell.SSNdBCI95 > 0
		sawHD = sawHD || cell.OutputHDCI95 > 0
	}
	if !sawSSN || !sawHD {
		t.Errorf("shadowed averaging produced no spread (SSN CI > 0: %v, HD CI > 0: %v)", sawSSN, sawHD)
	}
	rendered := avg.String()
	if !strings.Contains(rendered, "±95% CI") {
		t.Errorf("averaged table does not render CI rows:\n%s", rendered)
	}
	if !strings.Contains(avg.Title, "±95% CI") {
		t.Errorf("averaged title does not mention CIs: %q", avg.Title)
	}
	// The max-output cell reports its own CI for check notes.
	if got := avg.MaxOutputCell(); got.OutputHD != avg.MaxOutput() {
		t.Errorf("MaxOutputCell %.4f disagrees with MaxOutput %.4f", got.OutputHD, avg.MaxOutput())
	}
}

// TestTCritical95 sanity-pins the Student t table the CI harness uses.
func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 4: 2.776, 9: 2.262, 30: 2.042, 31: 1.96, 1000: 1.96}
	for df, want := range cases {
		if got := tCritical95(df); got != want {
			t.Errorf("tCritical95(%d) = %g, want %g", df, got, want)
		}
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df 0 must be NaN")
	}
}

// TestRunConcurrentSharedFLC exercises the documented concurrency contract:
// one FLC (and one stateless Controller) may serve many goroutines.
func TestRunConcurrentSharedFLC(t *testing.T) {
	flc := core.NewFLC()
	want, err := flc.Evaluate(-3.5, -93.7, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				got, err := flc.Evaluate(-3.5, -93.7, 1.2)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("worker %d: %g != %g", w, got, want)
					return
				}
				// Interleave with unrelated inputs to shake shared state.
				if _, err := flc.Evaluate(float64(i%7)-5, -118+float64(i%30), float64(i%15)/10); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
