package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cell"
)

// Measurements exports the run's per-epoch measurement stream — the walk
// replay the streaming serve layer ingests.  The stream embeds the
// handover feedback loop that produced it (serving attachment, CSSP
// resets), so replaying it through an identically configured decision
// engine reproduces this run's decision sequence exactly; the serve
// package's determinism tests rely on that.
func (r *Result) Measurements() []cell.Measurement {
	out := make([]cell.Measurement, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.Measurement
	}
	return out
}

// ParseSpeeds parses a comma-separated list of terminal speeds in km/h —
// the sweep-grid axis every CLI exposes — rejecting malformed and
// negative entries with a descriptive error.  Empty entries are skipped;
// at least one speed is required.
func ParseSpeeds(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("sim: bad speed %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("sim: negative speed %g km/h", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: no speeds given")
	}
	return out, nil
}
