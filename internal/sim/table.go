package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/handover"
	"repro/internal/radio"
	"repro/internal/rng"
)

// BoundaryMeasurementPoints selects up to n epochs where the terminal sits
// closest to a three-cell boundary — the paper's "measurement for 3 points,
// where the MS is in the boundary of the 3 cells" (Figs. 12-13).  Selected
// epochs are separated by at least minSeparationKm of walked distance.
func (r *Result) BoundaryMeasurementPoints(n int, minSeparationKm float64) []int {
	if n <= 0 || len(r.Epochs) == 0 {
		return nil
	}
	// tripleness: spread of the three nearest BS distances; small = near a
	// triple point.
	score := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		score[i] = threeNearestSpread(r, e)
	}
	order := argsort(score)
	var picked []int
	for _, idx := range order {
		ok := true
		for _, p := range picked {
			if math.Abs(r.Epochs[idx].WalkedKm-r.Epochs[p].WalkedKm) < minSeparationKm {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, idx)
			if len(picked) == n {
				break
			}
		}
	}
	sortInts(picked)
	return picked
}

// threeNearestSpread returns d3 − d1 over the three nearest base stations:
// zero exactly at a triple point.
func threeNearestSpread(r *Result, e Epoch) float64 {
	lattice := r.Network.Lattice()
	d1, d2, d3 := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, c := range r.Network.Cells() {
		d := lattice.DistanceToCenter(c, e.Pos)
		switch {
		case d < d1:
			d1, d2, d3 = d, d1, d2
		case d < d2:
			d2, d3 = d, d2
		case d < d3:
			d3 = d
		}
	}
	return d3 - d1
}

// CrossingMeasurementPoints returns the epochs at which the walk enters a
// new geometric cell (up to n) — the handover-necessary instants of the
// crossing scenario.
func (r *Result) CrossingMeasurementPoints(n int) []int {
	var out []int
	for i := 1; i < len(r.Epochs); i++ {
		if r.Epochs[i].GeoCell != r.Epochs[i-1].GeoCell {
			out = append(out, i)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// HandoverEpochs returns the epochs at which handovers were executed.
func (r *Result) HandoverEpochs() []int {
	out := make([]int, 0, len(r.Events))
	for _, e := range r.Events {
		out = append(out, e.Epoch)
	}
	return out
}

// BoundaryTableEpochs selects the Table 3 measurement columns: every epoch
// of the boundary-hover walk, capped at max.  The paper's Table 3 has six
// columns — exactly the six waypoints of the 5-leg iseed = 100 walk.
func (r *Result) BoundaryTableEpochs(max int) []int {
	n := len(r.Epochs)
	if max > 0 && n > max {
		n = max
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// CrossingTableEpochs selects the Table 4 measurement columns: for every
// executed handover, the epoch immediately before it and the handover epoch
// itself.  This mirrors the paper's sub-column pairs, where the first value
// of each measurement point sits below the 0.7 threshold and the second
// above it.
func (r *Result) CrossingTableEpochs() []int {
	var out []int
	for _, e := range r.Events {
		if e.Epoch > 0 {
			out = append(out, e.Epoch-1)
		}
		out = append(out, e.Epoch)
	}
	return out
}

// PaperTableCell is one (point, epoch) column of Tables 3-4.
type PaperTableCell struct {
	// EpochIndex identifies the epoch in the run.
	EpochIndex int
	// CSSPdB, SSNdB, DistanceKm are the paper's three measurement rows;
	// SSNdB includes the speed penalty of the table row.
	CSSPdB, SSNdB, DistanceKm float64
	// OutputHD is the FLC output for these inputs.
	OutputHD float64
	// CSSPdBCI95, SSNdBCI95, OutputHDCI95 are the half-widths of the
	// two-sided 95% confidence intervals (Student t over the averaging
	// replicas' shadow-fading sub-streams).  Zero on deterministic
	// (non-averaged) tables.
	CSSPdBCI95, SSNdBCI95, OutputHDCI95 float64
}

// PaperTableRow is one speed block of Tables 3-4.
type PaperTableRow struct {
	SpeedKmh float64
	Cells    []PaperTableCell
}

// PaperTable reproduces the structure of the paper's Tables 3-4: for each
// speed, the measurement rows and the FLC output at every selected epoch.
type PaperTable struct {
	// Title distinguishes Table 3 from Table 4 in reports.
	Title string
	// PointEpochs are the selected epochs (two per measurement point in the
	// paper's layout).
	PointEpochs []int
	Rows        []PaperTableRow
	// Threshold is the handover threshold the outputs compare against.
	Threshold float64
	// Replicas is the number of averaged sub-streams (1 for a
	// deterministic table); above 1 the cells carry 95% CIs.
	Replicas int
}

// BuildPaperTable evaluates the FLC at the given epochs across the speed
// sweep.  As in the paper, the walk (and therefore CSSP and the distance)
// is speed-independent; speed only shifts SSN by −2 dB per 10 km/h.  For
// the paper's "10 times simulations" averaging protocol under fading, see
// BuildAveragedPaperTable.
func BuildPaperTable(title string, r *Result, flc *core.FLC, epochs []int, speeds []float64) (*PaperTable, error) {
	if flc == nil {
		flc = core.NewFLC()
	}
	if len(epochs) == 0 {
		return nil, fmt.Errorf("sim: no measurement epochs selected")
	}
	for _, idx := range epochs {
		if idx < 0 || idx >= len(r.Epochs) {
			return nil, fmt.Errorf("sim: epoch index %d out of range", idx)
		}
	}
	t := &PaperTable{
		Title:       title,
		PointEpochs: append([]int(nil), epochs...),
		Threshold:   core.DefaultHandoverThreshold,
		Replicas:    1,
	}
	baseSpeed := r.Config.SpeedKmh
	for _, speed := range speeds {
		row := PaperTableRow{SpeedKmh: speed}
		for _, idx := range epochs {
			e := r.Epochs[idx]
			// Remove the run's own penalty, apply this row's.
			ssn := e.NeighborDB + radio.SpeedPenaltyDB(baseSpeed) - radio.SpeedPenaltyDB(speed)
			hd, err := flc.Evaluate(e.CSSPdB, ssn, e.DMBNorm)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, PaperTableCell{
				EpochIndex: idx,
				CSSPdB:     e.CSSPdB,
				SSNdB:      ssn,
				DistanceKm: e.DistanceKm,
				OutputHD:   hd,
			})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BuildAveragedPaperTable implements the paper's replication protocol —
// "we carry out 10 times simulations and calculate the average values" —
// under shadow fading: the walk (and therefore CSSP and the distances) is
// held fixed while the shadowing process is re-seeded per replica, and the
// measured SSN and FLC outputs are averaged cell-wise.  Replicas measure
// passively (no handover is executed) so every replica's inputs reference
// the same serving attachment — exactly the paper's protocol, whose tables
// report distances from the original BS throughout the walk.  With
// shadowSigmaDB = 0 every replica coincides and the result equals
// BuildPaperTable on a passive deterministic run.
//
// Beyond the paper's point estimates, every averaged cell carries the
// half-width of its two-sided 95% confidence interval over the replica
// sub-streams (Student t with replicas−1 degrees of freedom), so the
// tables report how tight the averaging protocol actually is.
func BuildAveragedPaperTable(title string, base Config, flc *core.FLC, epochs []int, speeds []float64, replicas int, shadowSigmaDB, shadowDecorrKm float64) (*PaperTable, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("sim: replicas %d < 1", replicas)
	}
	if flc == nil {
		flc = core.NewFLC()
	}
	var acc *PaperTable
	var samples [][][3][]float64 // [row][cell]{CSSP, SSN, HD} replica samples
	for rep := 0; rep < replicas; rep++ {
		cfg := base
		cfg.Algorithm = handover.Passive{}
		cfg.ShadowSigmaDB = shadowSigmaDB
		cfg.ShadowDecorrKm = shadowDecorrKm
		if shadowSigmaDB > 0 {
			cfg.ShadowSeed = rng.DeriveSeed(base.Seed, 100+rep)
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t, err := BuildPaperTable(title, res, flc, epochs, speeds)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = t
			samples = make([][][3][]float64, len(t.Rows))
			for r := range t.Rows {
				samples[r] = make([][3][]float64, len(t.Rows[r].Cells))
			}
		}
		for r := range t.Rows {
			for c := range t.Rows[r].Cells {
				cell := t.Rows[r].Cells[c]
				samples[r][c][0] = append(samples[r][c][0], cell.CSSPdB)
				samples[r][c][1] = append(samples[r][c][1], cell.SSNdB)
				samples[r][c][2] = append(samples[r][c][2], cell.OutputHD)
			}
		}
	}
	tcrit := tCritical95(replicas - 1)
	for r := range acc.Rows {
		for c := range acc.Rows[r].Cells {
			cell := &acc.Rows[r].Cells[c]
			cell.CSSPdB, cell.CSSPdBCI95 = meanCI(samples[r][c][0], tcrit)
			cell.SSNdB, cell.SSNdBCI95 = meanCI(samples[r][c][1], tcrit)
			cell.OutputHD, cell.OutputHDCI95 = meanCI(samples[r][c][2], tcrit)
		}
	}
	acc.Replicas = replicas
	acc.Title = fmt.Sprintf("%s (avg of %d replicas ±95%% CI, σ=%g dB)", title, replicas, shadowSigmaDB)
	return acc, nil
}

// meanCI returns the sample mean and the 95% CI half-width t · s/√n over
// the replica samples.  The variance is computed in the numerically
// stable centered form, and coinciding replicas (σ = 0 runs) yield an
// exactly-zero interval rather than cancellation noise.
func meanCI(xs []float64, tcrit float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	min, max := xs[0], xs[0]
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if min == max {
		return min, 0
	}
	return mean, tcrit * math.Sqrt(ss/(n-1)/n)
}

// tCritical95 returns the two-sided 95% Student t critical value for the
// given degrees of freedom (1.96, the normal limit, past the table).
func tCritical95(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// MaxOutput returns the largest FLC output anywhere in the table.
func (t *PaperTable) MaxOutput() float64 { return t.MaxOutputCell().OutputHD }

// MinOutput returns the smallest FLC output anywhere in the table.
func (t *PaperTable) MinOutput() float64 {
	min := math.Inf(1)
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.OutputHD < min {
				min = c.OutputHD
			}
		}
	}
	return min
}

// String renders the table in the paper's row layout.
func (t *PaperTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (threshold %.2f)\n", t.Title, t.Threshold)
	fmt.Fprintf(&b, "%-22s", "Measurement epochs")
	for _, idx := range t.PointEpochs {
		fmt.Fprintf(&b, "%10d", idx)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "Speed %g km/h\n", row.SpeedKmh)
		writeRow := func(label string, get func(PaperTableCell) float64) {
			fmt.Fprintf(&b, "  %-20s", label)
			for _, c := range row.Cells {
				fmt.Fprintf(&b, "%10.4f", get(c))
			}
			b.WriteByte('\n')
		}
		writeRow("CSSP BS [dB]", func(c PaperTableCell) float64 { return c.CSSPdB })
		if t.Replicas > 1 {
			writeRow("  ±95% CI", func(c PaperTableCell) float64 { return c.CSSPdBCI95 })
		}
		writeRow("Neighbor BS [dB]", func(c PaperTableCell) float64 { return c.SSNdB })
		if t.Replicas > 1 {
			writeRow("  ±95% CI", func(c PaperTableCell) float64 { return c.SSNdBCI95 })
		}
		writeRow("Distance [km]", func(c PaperTableCell) float64 { return c.DistanceKm })
		writeRow("System Output", func(c PaperTableCell) float64 { return c.OutputHD })
		if t.Replicas > 1 {
			writeRow("  ±95% CI", func(c PaperTableCell) float64 { return c.OutputHDCI95 })
		}
	}
	return b.String()
}

// MaxOutputCell returns the cell holding the largest FLC output — with
// its CI fields, so callers can report "max output m ± ci".
func (t *PaperTable) MaxOutputCell() PaperTableCell {
	var max PaperTableCell
	max.OutputHD = math.Inf(-1)
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.OutputHD > max.OutputHD {
				max = c
			}
		}
	}
	return max
}

// argsort returns indices ordering xs ascending.
func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
