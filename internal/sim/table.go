package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/handover"
	"repro/internal/radio"
	"repro/internal/rng"
)

// BoundaryMeasurementPoints selects up to n epochs where the terminal sits
// closest to a three-cell boundary — the paper's "measurement for 3 points,
// where the MS is in the boundary of the 3 cells" (Figs. 12-13).  Selected
// epochs are separated by at least minSeparationKm of walked distance.
func (r *Result) BoundaryMeasurementPoints(n int, minSeparationKm float64) []int {
	if n <= 0 || len(r.Epochs) == 0 {
		return nil
	}
	// tripleness: spread of the three nearest BS distances; small = near a
	// triple point.
	score := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		score[i] = threeNearestSpread(r, e)
	}
	order := argsort(score)
	var picked []int
	for _, idx := range order {
		ok := true
		for _, p := range picked {
			if math.Abs(r.Epochs[idx].WalkedKm-r.Epochs[p].WalkedKm) < minSeparationKm {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, idx)
			if len(picked) == n {
				break
			}
		}
	}
	sortInts(picked)
	return picked
}

// threeNearestSpread returns d3 − d1 over the three nearest base stations:
// zero exactly at a triple point.
func threeNearestSpread(r *Result, e Epoch) float64 {
	lattice := r.Network.Lattice()
	d1, d2, d3 := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, c := range r.Network.Cells() {
		d := lattice.DistanceToCenter(c, e.Pos)
		switch {
		case d < d1:
			d1, d2, d3 = d, d1, d2
		case d < d2:
			d2, d3 = d, d2
		case d < d3:
			d3 = d
		}
	}
	return d3 - d1
}

// CrossingMeasurementPoints returns the epochs at which the walk enters a
// new geometric cell (up to n) — the handover-necessary instants of the
// crossing scenario.
func (r *Result) CrossingMeasurementPoints(n int) []int {
	var out []int
	for i := 1; i < len(r.Epochs); i++ {
		if r.Epochs[i].GeoCell != r.Epochs[i-1].GeoCell {
			out = append(out, i)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// HandoverEpochs returns the epochs at which handovers were executed.
func (r *Result) HandoverEpochs() []int {
	out := make([]int, 0, len(r.Events))
	for _, e := range r.Events {
		out = append(out, e.Epoch)
	}
	return out
}

// BoundaryTableEpochs selects the Table 3 measurement columns: every epoch
// of the boundary-hover walk, capped at max.  The paper's Table 3 has six
// columns — exactly the six waypoints of the 5-leg iseed = 100 walk.
func (r *Result) BoundaryTableEpochs(max int) []int {
	n := len(r.Epochs)
	if max > 0 && n > max {
		n = max
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// CrossingTableEpochs selects the Table 4 measurement columns: for every
// executed handover, the epoch immediately before it and the handover epoch
// itself.  This mirrors the paper's sub-column pairs, where the first value
// of each measurement point sits below the 0.7 threshold and the second
// above it.
func (r *Result) CrossingTableEpochs() []int {
	var out []int
	for _, e := range r.Events {
		if e.Epoch > 0 {
			out = append(out, e.Epoch-1)
		}
		out = append(out, e.Epoch)
	}
	return out
}

// PaperTableCell is one (point, epoch) column of Tables 3-4.
type PaperTableCell struct {
	// EpochIndex identifies the epoch in the run.
	EpochIndex int
	// CSSPdB, SSNdB, DistanceKm are the paper's three measurement rows;
	// SSNdB includes the speed penalty of the table row.
	CSSPdB, SSNdB, DistanceKm float64
	// OutputHD is the FLC output for these inputs.
	OutputHD float64
}

// PaperTableRow is one speed block of Tables 3-4.
type PaperTableRow struct {
	SpeedKmh float64
	Cells    []PaperTableCell
}

// PaperTable reproduces the structure of the paper's Tables 3-4: for each
// speed, the measurement rows and the FLC output at every selected epoch.
type PaperTable struct {
	// Title distinguishes Table 3 from Table 4 in reports.
	Title string
	// PointEpochs are the selected epochs (two per measurement point in the
	// paper's layout).
	PointEpochs []int
	Rows        []PaperTableRow
	// Threshold is the handover threshold the outputs compare against.
	Threshold float64
}

// BuildPaperTable evaluates the FLC at the given epochs across the speed
// sweep.  As in the paper, the walk (and therefore CSSP and the distance)
// is speed-independent; speed only shifts SSN by −2 dB per 10 km/h.  For
// the paper's "10 times simulations" averaging protocol under fading, see
// BuildAveragedPaperTable.
func BuildPaperTable(title string, r *Result, flc *core.FLC, epochs []int, speeds []float64) (*PaperTable, error) {
	if flc == nil {
		flc = core.NewFLC()
	}
	if len(epochs) == 0 {
		return nil, fmt.Errorf("sim: no measurement epochs selected")
	}
	for _, idx := range epochs {
		if idx < 0 || idx >= len(r.Epochs) {
			return nil, fmt.Errorf("sim: epoch index %d out of range", idx)
		}
	}
	t := &PaperTable{
		Title:       title,
		PointEpochs: append([]int(nil), epochs...),
		Threshold:   core.DefaultHandoverThreshold,
	}
	baseSpeed := r.Config.SpeedKmh
	for _, speed := range speeds {
		row := PaperTableRow{SpeedKmh: speed}
		for _, idx := range epochs {
			e := r.Epochs[idx]
			// Remove the run's own penalty, apply this row's.
			ssn := e.NeighborDB + radio.SpeedPenaltyDB(baseSpeed) - radio.SpeedPenaltyDB(speed)
			hd, err := flc.Evaluate(e.CSSPdB, ssn, e.DMBNorm)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, PaperTableCell{
				EpochIndex: idx,
				CSSPdB:     e.CSSPdB,
				SSNdB:      ssn,
				DistanceKm: e.DistanceKm,
				OutputHD:   hd,
			})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BuildAveragedPaperTable implements the paper's replication protocol —
// "we carry out 10 times simulations and calculate the average values" —
// under shadow fading: the walk (and therefore CSSP and the distances) is
// held fixed while the shadowing process is re-seeded per replica, and the
// measured SSN and FLC outputs are averaged cell-wise.  Replicas measure
// passively (no handover is executed) so every replica's inputs reference
// the same serving attachment — exactly the paper's protocol, whose tables
// report distances from the original BS throughout the walk.  With
// shadowSigmaDB = 0 every replica coincides and the result equals
// BuildPaperTable on a passive deterministic run.
func BuildAveragedPaperTable(title string, base Config, flc *core.FLC, epochs []int, speeds []float64, replicas int, shadowSigmaDB, shadowDecorrKm float64) (*PaperTable, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("sim: replicas %d < 1", replicas)
	}
	if flc == nil {
		flc = core.NewFLC()
	}
	var acc *PaperTable
	for rep := 0; rep < replicas; rep++ {
		cfg := base
		cfg.Algorithm = handover.Passive{}
		cfg.ShadowSigmaDB = shadowSigmaDB
		cfg.ShadowDecorrKm = shadowDecorrKm
		if shadowSigmaDB > 0 {
			cfg.ShadowSeed = rng.DeriveSeed(base.Seed, 100+rep)
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t, err := BuildPaperTable(title, res, flc, epochs, speeds)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = t
			continue
		}
		for r := range acc.Rows {
			for c := range acc.Rows[r].Cells {
				acc.Rows[r].Cells[c].SSNdB += t.Rows[r].Cells[c].SSNdB
				acc.Rows[r].Cells[c].OutputHD += t.Rows[r].Cells[c].OutputHD
				acc.Rows[r].Cells[c].CSSPdB += t.Rows[r].Cells[c].CSSPdB
			}
		}
	}
	inv := 1 / float64(replicas)
	for r := range acc.Rows {
		for c := range acc.Rows[r].Cells {
			acc.Rows[r].Cells[c].SSNdB *= inv
			acc.Rows[r].Cells[c].OutputHD *= inv
			acc.Rows[r].Cells[c].CSSPdB *= inv
		}
	}
	acc.Title = fmt.Sprintf("%s (avg of %d replicas, σ=%g dB)", title, replicas, shadowSigmaDB)
	return acc, nil
}

// MaxOutput returns the largest FLC output anywhere in the table.
func (t *PaperTable) MaxOutput() float64 {
	max := math.Inf(-1)
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.OutputHD > max {
				max = c.OutputHD
			}
		}
	}
	return max
}

// MinOutput returns the smallest FLC output anywhere in the table.
func (t *PaperTable) MinOutput() float64 {
	min := math.Inf(1)
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			if c.OutputHD < min {
				min = c.OutputHD
			}
		}
	}
	return min
}

// String renders the table in the paper's row layout.
func (t *PaperTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (threshold %.2f)\n", t.Title, t.Threshold)
	fmt.Fprintf(&b, "%-22s", "Measurement epochs")
	for _, idx := range t.PointEpochs {
		fmt.Fprintf(&b, "%10d", idx)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "Speed %g km/h\n", row.SpeedKmh)
		writeRow := func(label string, get func(PaperTableCell) float64) {
			fmt.Fprintf(&b, "  %-20s", label)
			for _, c := range row.Cells {
				fmt.Fprintf(&b, "%10.4f", get(c))
			}
			b.WriteByte('\n')
		}
		writeRow("CSSP BS [dB]", func(c PaperTableCell) float64 { return c.CSSPdB })
		writeRow("Neighbor BS [dB]", func(c PaperTableCell) float64 { return c.SSNdB })
		writeRow("Distance [km]", func(c PaperTableCell) float64 { return c.DistanceKm })
		writeRow("System Output", func(c PaperTableCell) float64 { return c.OutputHD })
	}
	return b.String()
}

// argsort returns indices ordering xs ascending.
func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
