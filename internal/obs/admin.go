package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Admin serves the observability endpoints:
//
//	/metrics       Prometheus text exposition of Registry.Export() + Extra()
//	/statusz       JSON: uptime, Go runtime/GC stats, and the app payload
//	/healthz       "ok" once the process is serving
//	/tracez        JSON decision-trace ring (404 when tracing is not wired)
//	/admin/<name>  POST-only mutation endpoints from Ops
type Admin struct {
	Registry *Registry
	// Extra returns additional /metrics points (e.g. stats scraped from
	// cluster peers) appended to the registry's own export.
	Extra func() []Point
	// Status returns the app-specific /statusz payload, marshaled under
	// the "app" key.
	Status func() any
	// Traces returns the /tracez payload (typically []serve.DecisionTrace).
	Traces func() any
	// Ops maps operation names to mutation handlers, each served at
	// POST /admin/<name> (other methods get 405).  The returned value is
	// marshaled under "result" in {"ok":true,...}; an error becomes a 500
	// with {"error":...}.  Unlike the read-only endpoints above these
	// change the process, so anything listed here is part of the
	// operator surface (e.g. the cluster routers' addnode/removenode).
	Ops map[string]func(r *http.Request) (any, error)

	once    sync.Once
	started time.Time
}

// Handler returns the admin HTTP handler.
func (a *Admin) Handler() http.Handler {
	a.once.Do(func() { a.started = time.Now() })
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/statusz", a.statusz)
	mux.HandleFunc("/healthz", a.healthz)
	mux.HandleFunc("/tracez", a.tracez)
	for name, op := range a.Ops {
		mux.HandleFunc("/admin/"+name, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			res, err := op(r)
			if err != nil {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
				return
			}
			writeJSON(w, map[string]any{"ok": true, "result": res})
		})
	}
	return mux
}

// Serve binds addr and serves the admin endpoints in a background
// goroutine until the returned listener is closed.
func (a *Admin) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln, nil
}

func (a *Admin) metrics(w http.ResponseWriter, _ *http.Request) {
	var points []Point
	if a.Registry != nil {
		points = a.Registry.Export()
	}
	if a.Extra != nil {
		points = append(points, a.Extra()...)
	}
	// Registry order is registration order and Extra points land after it;
	// sort so consecutive scrapes (and diffs of them) are byte-stable no
	// matter which goroutine registered an instrument first.
	SortPoints(points)
	var sb strings.Builder
	WritePrometheus(&sb, points)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(sb.String()))
}

func (a *Admin) statusz(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		UptimeSec float64       `json:"uptime_sec"`
		Runtime   RuntimeStatus `json:"runtime"`
		App       any           `json:"app,omitempty"`
	}{
		UptimeSec: time.Since(a.started).Seconds(),
		Runtime:   ReadRuntimeStatus(),
	}
	if a.Status != nil {
		payload.App = a.Status()
	}
	writeJSON(w, payload)
}

func (a *Admin) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (a *Admin) tracez(w http.ResponseWriter, _ *http.Request) {
	if a.Traces == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, a.Traces())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// RuntimeStatus is a compact snapshot of Go runtime and GC state.
type RuntimeStatus struct {
	Goroutines      int     `json:"goroutines"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	SysBytes        uint64  `json:"sys_bytes"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalNs    uint64  `json:"gc_pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// ReadRuntimeStatus reads the current runtime state.
func ReadRuntimeStatus() RuntimeStatus {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStatus{
		Goroutines:      runtime.NumGoroutine(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		SysBytes:        ms.Sys,
		NumGC:           ms.NumGC,
		PauseTotalNs:    ms.PauseTotalNs,
		GCCPUFraction:   ms.GCCPUFraction,
	}
}
