package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketsInvertible(t *testing.T) {
	for _, v := range []uint64{0, 1, 5, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := BucketIndex(v)
		lo := BucketValue(i)
		if lo > v {
			t.Errorf("BucketValue(%d) = %d > sample %d", i, lo, v)
		}
		if v > 64 && float64(v-lo)/float64(v) > 1.0/32 {
			t.Errorf("sample %d mapped to bound %d: error %g", v, lo, float64(v-lo)/float64(v))
		}
	}
}

func TestHistogramQuantilesAndSnapshot(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	h.ObserveDuration(-time.Second) // ignored
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Max(); got != 1000*1000 {
		t.Errorf("max %d", got)
	}
	for _, c := range []struct {
		q    float64
		want uint64
	}{{0.5, 500_000}, {0.99, 990_000}, {1, 1_000_000}} {
		got := h.Quantile(c.q)
		if got > c.want || float64(c.want-got) > float64(c.want)/16 {
			t.Errorf("q%.2f = %d, want ≈ %d", c.q, got, c.want)
		}
	}
	s := h.Snapshot()
	if s.Count() != h.Count() || s.Sum() != h.Sum() || s.Max() != h.Max() {
		t.Error("snapshot totals diverge from live histogram")
	}
	if s.Quantile(0.5) != h.Quantile(0.5) {
		t.Error("snapshot quantile diverges")
	}
}

func TestHistogramSnapshotDelta(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	prev := h.Snapshot()
	for i := uint64(0); i < 50; i++ {
		h.Observe(1 << 30) // a much slower window
	}
	cur := h.Snapshot()
	d := cur.Delta(&prev)
	if d.Count() != 50 {
		t.Fatalf("delta count %d", d.Count())
	}
	if got := d.Quantile(0.5); got < (1<<30)/2 {
		t.Errorf("windowed p50 %d still reflects old samples", got)
	}
	if d.Max() > 1<<30 || d.Max() < (1<<30)-(1<<30)/32 {
		t.Errorf("windowed max %d not ≈ 2^30", d.Max())
	}
	// The cumulative view is unchanged by taking deltas.
	if cur.Quantile(0.5) > 100 {
		// 100 fast + 50 slow samples: cumulative p50 is still a fast one.
		t.Errorf("cumulative p50 %d", cur.Quantile(0.5))
	}
}

func TestRegistryExportAndPrometheus(t *testing.T) {
	r := NewRegistry(L("node", "3"))
	c := r.Counter("demo_total")
	g := r.Gauge("demo_depth", L("shard", "0"))
	r.GaugeFunc("demo_fn", func() float64 { return 2.5 })
	h := r.Histogram("demo_ns")
	r.Collector(func(emit func(Point)) {
		emit(Point{Name: "demo_dyn", Kind: KindCounter, Labels: []Label{L("k", "v")}, Value: 7})
	})
	c.Add(41)
	c.Inc()
	g.Set(9)
	h.Observe(100)
	h.Observe(200)

	points := r.Export()
	if len(points) != 5 {
		t.Fatalf("exported %d points", len(points))
	}
	text := PrometheusText(points)
	for _, want := range []string{
		"# TYPE demo_total counter\ndemo_total{node=\"3\"} 42\n",
		"demo_depth{node=\"3\",shard=\"0\"} 9\n",
		"demo_fn{node=\"3\"} 2.5\n",
		"# TYPE demo_ns summary\n",
		"demo_ns_count{node=\"3\"} 2\n",
		"demo_ns_sum{node=\"3\"} 300\n",
		"demo_ns{node=\"3\",quantile=\"0.5\"} ",
		"demo_dyn{node=\"3\",k=\"v\"} 7\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered text missing %q:\n%s", want, text)
		}
	}

	// Points must survive a JSON round trip unchanged (the wire path).
	b, err := json.Marshal(points)
	if err != nil {
		t.Fatal(err)
	}
	var back []Point
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if PrometheusText(back) != text {
		t.Error("JSON round trip changed the rendered exposition")
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	text := PrometheusText([]Point{{
		Name: "m", Kind: KindGauge,
		Labels: []Label{L("k", "a\"b\\c\nd")}, Value: 1,
	}})
	if !strings.Contains(text, `m{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping: %s", text)
	}
}

func TestSortPoints(t *testing.T) {
	pts := []Point{
		{Name: "b", Labels: []Label{L("node", "1")}},
		{Name: "a", Labels: []Label{L("node", "1")}},
		{Name: "a", Labels: []Label{L("node", "0")}},
	}
	SortPoints(pts)
	if pts[0].Name != "a" || pts[0].Labels[0].Value != "0" || pts[2].Name != "b" {
		t.Errorf("bad order: %+v", pts)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count %d", h.Count())
	}
}

// TestRecordAllocs pins the zero-allocation property of every hot-path
// record call.
func TestRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(7)
		g.Add(-2)
		h.Observe(12345)
		h.ObserveDuration(54321)
	}); n != 0 {
		t.Errorf("record path allocates %.2f allocs/op", n)
	}
}
