package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histMajors × histSubs log-linear buckets cover 1 .. ~2^63 with ≤ 1/32
// relative resolution — the classic HDR-histogram layout, reduced to
// fixed atomic counters so Observe is lock- and allocation-free from
// any goroutine.  The layout is shared with serve.LatencyRecorder,
// which is built on this type.
const (
	histMajors  = 64
	histSubs    = 32
	histBuckets = histMajors * histSubs
)

// ExportQuantiles are the quantile estimates a histogram Point carries.
var ExportQuantiles = []float64{0.5, 0.9, 0.99}

// Histogram accumulates uint64 samples (conventionally nanoseconds)
// concurrently and reports approximate quantiles.  The zero value is
// ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// BucketIndex maps a sample to a log-linear bucket.
//
//fuzzyho:hotpath
//fuzzyho:deterministic
func BucketIndex(v uint64) int {
	major := bits.Len64(v) // 1..64 for v ≥ 1
	if major <= 5 {
		return int(v) // exact below 32
	}
	sub := (v >> (uint(major) - 6)) & (histSubs - 1)
	return (major-5)*histSubs + int(sub)
}

// BucketValue returns the lower bound of bucket i (inverse of BucketIndex).
func BucketValue(i int) uint64 {
	if i < histSubs {
		return uint64(i)
	}
	major := i/histSubs + 5
	sub := uint64(i % histSubs)
	return (1 << (uint(major) - 1)) | sub<<(uint(major)-6)
}

// Observe records one sample.
//
//fuzzyho:hotpath
func (h *Histogram) Observe(v uint64) {
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records d in nanoseconds.  Negative durations are
// ignored (they arise only from cross-goroutine clock misuse).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		return
	}
	h.Observe(uint64(d))
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the mean sample (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the approximate q-quantile (q in [0, 1]; the lower
// bound of the containing bucket, so the estimate errs low by at most
// 1/32 relative).  Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := quantileTarget(q, n)
	var acc uint64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		if acc >= target {
			return BucketValue(i)
		}
	}
	return h.max.Load()
}

// Snapshot copies the histogram's current state.  The copy is not
// atomic across buckets — concurrent Observes may land in count but not
// yet in a bucket — which only matters if samples arrive during the
// copy; totals reconcile at the next snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	s.max = h.max.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram; Delta
// subtracts an earlier snapshot to get a windowed view, which is how
// the -stats loops report per-interval quantiles.
type HistogramSnapshot struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Count returns the number of samples in the snapshot.
func (s *HistogramSnapshot) Count() uint64 { return s.count }

// Sum returns the sum of samples in the snapshot.
func (s *HistogramSnapshot) Sum() uint64 { return s.sum }

// Max returns the largest sample.  For windowed snapshots produced by
// Delta this is the lower bound of the highest occupied bucket (the
// per-window true max is not recoverable from cumulative counters).
func (s *HistogramSnapshot) Max() uint64 { return s.max }

// Mean returns the mean sample (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Quantile returns the approximate q-quantile of the snapshot.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.count == 0 {
		return 0
	}
	target := quantileTarget(q, s.count)
	var acc uint64
	for i := range s.buckets {
		acc += s.buckets[i]
		if acc >= target {
			return BucketValue(i)
		}
	}
	return s.max
}

// Delta returns the samples recorded between prev and s.
func (s *HistogramSnapshot) Delta(prev *HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	for i := range s.buckets {
		d.buckets[i] = s.buckets[i] - prev.buckets[i]
		if d.buckets[i] > 0 {
			d.max = BucketValue(i)
		}
	}
	d.count = s.count - prev.count
	d.sum = s.sum - prev.sum
	return d
}

func quantileTarget(q float64, n uint64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	return target
}

// point exports the histogram as a Point with the standard quantiles.
func (h *Histogram) point(name string, labels []Label) Point {
	s := h.Snapshot()
	p := Point{
		Name:   name,
		Kind:   KindHistogram,
		Labels: labels,
		Count:  s.count,
		Sum:    float64(s.sum),
		Max:    float64(s.max),
	}
	if s.count > 0 {
		p.Quantiles = make([]Quantile, len(ExportQuantiles))
		for i, q := range ExportQuantiles {
			p.Quantiles[i] = Quantile{Q: q, Value: float64(s.Quantile(q))}
		}
	}
	return p
}
