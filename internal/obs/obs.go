// Package obs is the repo's dependency-free telemetry layer: atomic
// counters, gauges and lock-free log-linear histograms collected in a
// Registry, exported as structured Points (JSON-friendly — the same
// shape travels over the cluster wire in a {"ctl":"stats"} reply) and
// rendered as Prometheus text exposition for /metrics scrapes.
//
// Hot-path record calls (Counter.Add, Gauge.Set, Histogram.Observe)
// never lock or allocate, so engines record from shard goroutines at
// full rate; the alloc tests in this package pin that property.
// Export and rendering are cold paths and may allocate freely.
package obs

import (
	"sort"
	"strconv"
	"strings"
)

// Label is one key=value dimension attached to a metric.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies an exported Point.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Quantile is one quantile estimate exported from a histogram.
type Quantile struct {
	Q     float64 `json:"q"`
	Value float64 `json:"v"`
}

// Point is one exported sample: a counter or gauge carries Value; a
// histogram carries Count/Sum/Max plus quantile estimates.  Points are
// plain data — they marshal to JSON for the wire and for /statusz.
type Point struct {
	Name      string     `json:"name"`
	Kind      Kind       `json:"kind"`
	Labels    []Label    `json:"labels,omitempty"`
	Value     float64    `json:"value,omitempty"`
	Count     uint64     `json:"count,omitempty"`
	Sum       float64    `json:"sum,omitempty"`
	Max       float64    `json:"max,omitempty"`
	Quantiles []Quantile `json:"quantiles,omitempty"`
}

// WithLabel returns a copy of p with key=value prepended to its labels
// (the merge direction hocluster uses to tag scraped points per node).
func (p Point) WithLabel(key, value string) Point {
	labels := make([]Label, 0, len(p.Labels)+1)
	labels = append(labels, Label{Key: key, Value: value})
	labels = append(labels, p.Labels...)
	p.Labels = labels
	return p
}

// WritePrometheus renders points in the Prometheus text exposition
// format (v0.0.4).  Points sharing a name are grouped under one # TYPE
// line; histograms render as summaries (quantile-labeled samples plus
// _sum and _count).  Counter and gauge values that are whole numbers
// render without a fractional part, so a rendered line is byte-stable
// against the integer the counter holds.
func WritePrometheus(sb *strings.Builder, points []Point) {
	// Group by name, preserving first-appearance order.
	order := make([]string, 0, len(points))
	groups := make(map[string][]Point, len(points))
	for _, p := range points {
		if _, ok := groups[p.Name]; !ok {
			order = append(order, p.Name)
		}
		groups[p.Name] = append(groups[p.Name], p)
	}
	for _, name := range order {
		group := groups[name]
		switch group[0].Kind {
		case KindHistogram:
			sb.WriteString("# TYPE ")
			sb.WriteString(name)
			sb.WriteString(" summary\n")
			for _, p := range group {
				for _, q := range p.Quantiles {
					writeSample(sb, name, p.Labels, Label{Key: "quantile", Value: formatValue(q.Q)}, q.Value)
				}
				writeSample(sb, name+"_sum", p.Labels, Label{}, p.Sum)
				writeSample(sb, name+"_count", p.Labels, Label{}, float64(p.Count))
			}
		case KindGauge:
			sb.WriteString("# TYPE ")
			sb.WriteString(name)
			sb.WriteString(" gauge\n")
			for _, p := range group {
				writeSample(sb, name, p.Labels, Label{}, p.Value)
			}
		default:
			sb.WriteString("# TYPE ")
			sb.WriteString(name)
			sb.WriteString(" counter\n")
			for _, p := range group {
				writeSample(sb, name, p.Labels, Label{}, p.Value)
			}
		}
	}
}

// PrometheusText renders points to a string.
func PrometheusText(points []Point) string {
	var sb strings.Builder
	WritePrometheus(&sb, points)
	return sb.String()
}

func writeSample(sb *strings.Builder, name string, labels []Label, extra Label, v float64) {
	sb.WriteString(name)
	if len(labels) > 0 || extra.Key != "" {
		sb.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			writeLabel(sb, l)
		}
		if extra.Key != "" {
			if !first {
				sb.WriteByte(',')
			}
			writeLabel(sb, extra)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

func writeLabel(sb *strings.Builder, l Label) {
	sb.WriteString(l.Key)
	sb.WriteString(`="`)
	for i := 0; i < len(l.Value); i++ {
		switch c := l.Value[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
}

// formatValue renders a float with no trailing fractional noise: whole
// values print as integers ("12345"), everything else in shortest form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortPoints orders points by name, then rendered label set — a stable
// order for tests and merged multi-node views.
func SortPoints(points []Point) {
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return labelKey(points[i].Labels) < labelKey(points[j].Labels)
	})
}

func labelKey(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}
