//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build;
// allocation-regression tests skip under it (the instrumentation itself
// allocates).
const raceEnabled = true
