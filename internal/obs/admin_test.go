package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestAdminOps pins the mutation-endpoint contract: each Ops entry is
// served at POST /admin/<name> only, success wraps the handler's value
// in {"ok":true,"result":...}, and a handler error is a 500 carrying
// {"error":...} — never a dropped or half-written body.
func TestAdminOps(t *testing.T) {
	adm := &Admin{
		Ops: map[string]func(r *http.Request) (any, error){
			"addnode": func(r *http.Request) (any, error) {
				if r.FormValue("addr") == "" {
					return nil, errors.New("addnode requires addr")
				}
				return map[string]any{"node": 2, "members": []int{0, 1, 2}}, nil
			},
		},
	}
	srv := httptest.NewServer(adm.Handler())
	defer srv.Close()

	// Non-POST methods are refused.
	resp, err := http.Get(srv.URL + "/admin/addnode")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/addnode = %d, want 405", resp.StatusCode)
	}

	// A handler error is a JSON 500.
	resp, err = http.PostForm(srv.URL+"/admin/addnode", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST with no addr = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var failure struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &failure); err != nil || !strings.Contains(failure.Error, "requires addr") {
		t.Fatalf("error body %s (%v), want the handler's message", body, err)
	}

	// Success wraps the handler's value.
	resp, err = http.PostForm(srv.URL+"/admin/addnode", url.Values{"addr": {"127.0.0.1:7293"}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/addnode = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var success struct {
		OK     bool `json:"ok"`
		Result struct {
			Node    int   `json:"node"`
			Members []int `json:"members"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &success); err != nil {
		t.Fatalf("success body %s: %v", body, err)
	}
	if !success.OK || success.Result.Node != 2 || len(success.Result.Members) != 3 {
		t.Fatalf("success body %s, want ok=true node=2 members=[0 1 2]", body)
	}

	// Unlisted names are 404s, not silent successes.
	resp, err = http.Post(srv.URL+"/admin/nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /admin/nope = %d, want 404", resp.StatusCode)
	}
}
