package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  All methods are
// lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//fuzzyho:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by 1.
//
//fuzzyho:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.  All methods are lock-free
// and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
//
//fuzzyho:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
//
//fuzzyho:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// instrument is one registered metric source.
type instrument struct {
	name    string
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	collect func(emit func(Point))
}

// Registry holds a set of named instruments plus dynamic collectors and
// exports them all as Points.  Registration takes the registry lock;
// recording on the returned instruments never does.  Base labels given
// at construction are prepended to every exported point.
type Registry struct {
	mu    sync.Mutex
	base  []Label
	items []instrument
}

// NewRegistry returns an empty registry whose exported points all carry
// the given base labels.
func NewRegistry(base ...Label) *Registry {
	return &Registry{base: base}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(instrument{name: name, labels: labels, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(instrument{name: name, labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed by fn at export time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.add(instrument{name: name, labels: labels, gaugeFn: fn})
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(instrument{name: name, labels: labels, hist: h})
	return h
}

// Collector registers fn, called at export time to emit dynamic points
// (e.g. per-shard or per-node stats read from live atomics).  Emitted
// points get the registry's base labels prepended.
func (r *Registry) Collector(fn func(emit func(Point))) {
	r.add(instrument{collect: fn})
}

func (r *Registry) add(it instrument) {
	r.mu.Lock()
	r.items = append(r.items, it)
	r.mu.Unlock()
}

// Export snapshots every instrument into a flat point list, in
// registration order (collector points in emission order).
func (r *Registry) Export() []Point {
	r.mu.Lock()
	items := r.items[:len(r.items):len(r.items)]
	r.mu.Unlock()
	points := make([]Point, 0, len(items))
	for _, it := range items {
		switch {
		case it.counter != nil:
			points = append(points, Point{
				Name: it.name, Kind: KindCounter,
				Labels: r.labels(it.labels), Value: float64(it.counter.Load()),
			})
		case it.gauge != nil:
			points = append(points, Point{
				Name: it.name, Kind: KindGauge,
				Labels: r.labels(it.labels), Value: float64(it.gauge.Load()),
			})
		case it.gaugeFn != nil:
			points = append(points, Point{
				Name: it.name, Kind: KindGauge,
				Labels: r.labels(it.labels), Value: it.gaugeFn(),
			})
		case it.hist != nil:
			points = append(points, it.hist.point(it.name, r.labels(it.labels)))
		case it.collect != nil:
			it.collect(func(p Point) {
				p.Labels = r.labels(p.Labels)
				points = append(points, p)
			})
		}
	}
	return points
}

// labels prepends the registry's base labels to extra.
func (r *Registry) labels(extra []Label) []Label {
	if len(r.base) == 0 {
		return extra
	}
	out := make([]Label, 0, len(r.base)+len(extra))
	out = append(out, r.base...)
	out = append(out, extra...)
	return out
}
