package fcl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzy"
)

// miniFCL is a small well-formed function block exercising every supported
// construct.
const miniFCL = `
(* margin-style handover controller *)
FUNCTION_BLOCK mini

VAR_INPUT
    adv : REAL;
    dist : REAL;
END_VAR

VAR_OUTPUT
    hd : REAL;
END_VAR

FUZZIFY adv
    RANGE := (-20 .. 20);
    TERM losing := (-20, 1) (0, 0);
    TERM winning := (0, 0) (20, 1);
END_FUZZIFY

FUZZIFY dist
    RANGE := (0 .. 1.5);
    TERM near := (0.5, 1) (1.0, 0);
    TERM far := (0.5, 0) (1.0, 1);
END_FUZZIFY

DEFUZZIFY hd
    RANGE := (0 .. 1);
    TERM no := (0, 1) (0.2, 1) (0.5, 0);
    TERM yes := (0.5, 0) (0.8, 1) (1, 1);
    METHOD : COG;
    DEFAULT := 0;
END_DEFUZZIFY

RULEBLOCK No1
    AND : MIN;
    ACT : MIN;
    ACCU : MAX;
    RULE 1 : IF (adv IS losing) THEN (hd IS no);
    RULE 2 : IF (adv IS winning) AND (dist IS far) THEN (hd IS yes);
    RULE 3 : IF adv IS winning AND dist IS near THEN hd IS no;
END_RULEBLOCK

END_FUNCTION_BLOCK
`

func TestParseMini(t *testing.T) {
	sys, err := Parse(miniFCL)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Inputs()) != 2 || sys.Output().Name != "hd" || sys.Rules().Len() != 3 {
		t.Fatalf("structure: %d inputs, output %s, %d rules",
			len(sys.Inputs()), sys.Output().Name, sys.Rules().Len())
	}
	// Losing terminal: low output.
	lo, err := sys.Evaluate(map[string]float64{"adv": -15, "dist": 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// Winning and far: high output.
	hi, err := sys.Evaluate(map[string]float64{"adv": 15, "dist": 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 0.4 && hi > 0.6) {
		t.Errorf("outputs lo=%g hi=%g not separated", lo, hi)
	}
}

func TestParseBlockStructure(t *testing.T) {
	fb, err := ParseBlock(miniFCL)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Name != "mini" {
		t.Errorf("name = %q", fb.Name)
	}
	if len(fb.Inputs) != 2 || len(fb.Outputs) != 1 {
		t.Errorf("vars: %v / %v", fb.Inputs, fb.Outputs)
	}
	vb := fb.Variables["hd"]
	if vb == nil || !vb.isOutput || vb.method != "COG" {
		t.Errorf("hd block = %+v", vb)
	}
	if !vb.hasRange || vb.min != 0 || vb.max != 1 {
		t.Errorf("hd range = [%g, %g]", vb.min, vb.max)
	}
}

func TestParseRangeInference(t *testing.T) {
	src := strings.Replace(miniFCL, "RANGE := (-20 .. 20);\n", "", 1)
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sys.Inputs() {
		if v.Name == "adv" {
			if v.Min != -20 || v.Max != 20 {
				t.Errorf("inferred adv range [%g, %g], want [-20, 20]", v.Min, v.Max)
			}
		}
	}
}

func TestParseSingletonTerm(t *testing.T) {
	src := strings.Replace(miniFCL,
		"TERM yes := (0.5, 0) (0.8, 1) (1, 1);",
		"TERM yes := 0.9;", 1)
	sys, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := sys.Output().Term("yes")
	if !ok {
		t.Fatal("singleton term lost")
	}
	if _, isSingleton := out.MF.(fuzzy.Singleton); !isSingleton {
		t.Errorf("term type %T, want Singleton", out.MF)
	}
}

func TestParseOperatorSelections(t *testing.T) {
	src := strings.Replace(miniFCL, "AND : MIN;", "AND : PROD;", 1)
	src = strings.Replace(src, "ACT : MIN;", "ACT : PROD;", 1)
	sysProd, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sysMin, err := Parse(miniFCL)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]float64{"adv": 7, "dist": 1.2}
	a, _ := sysMin.Evaluate(in)
	b, _ := sysProd.Evaluate(in)
	if a == b {
		t.Error("PROD operators had no effect")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"empty", ""},
		{"no fb", "VAR_INPUT x : REAL; END_VAR"},
		{"unterminated", "FUNCTION_BLOCK x"},
		{"bad type", "FUNCTION_BLOCK x VAR_INPUT a : INT; END_VAR END_FUNCTION_BLOCK"},
		{"unknown keyword", "FUNCTION_BLOCK x WAT END_FUNCTION_BLOCK"},
		{"term outside block", "FUNCTION_BLOCK x TERM a := (0,1); END_FUNCTION_BLOCK"},
		{"bad method", strings.Replace(miniFCL, "METHOD : COG;", "METHOD : WAT;", 1)},
		{"bad and", strings.Replace(miniFCL, "AND : MIN;", "AND : WAT;", 1)},
		{"bad or", strings.Replace(miniFCL, "AND : MIN;", "OR : WAT;", 1)},
		{"bad accu", strings.Replace(miniFCL, "ACCU : MAX;", "ACCU : SUM;", 1)},
		{"broken rule", strings.Replace(miniFCL, "RULE 3 : IF adv IS winning AND dist IS near THEN hd IS no;",
			"RULE 3 : IF broken;", 1)},
		{"rule unknown term", strings.Replace(miniFCL, "THEN (hd IS no);", "THEN (hd IS wat);", 1)},
		{"decreasing points", strings.Replace(miniFCL, "TERM near := (0.5, 1) (1.0, 0);",
			"TERM near := (1.0, 1) (0.5, 0);", 1)},
		{"two outputs", strings.Replace(miniFCL, "hd : REAL;", "hd : REAL;\n    hd2 : REAL;", 1)},
		{"no terms", strings.Replace(miniFCL,
			"    TERM near := (0.5, 1) (1.0, 0);\n    TERM far := (0.5, 0) (1.0, 1);\n", "", 1)},
		{"unterminated comment", "FUNCTION_BLOCK x (* oops"},
		{"garbage char", "FUNCTION_BLOCK x @ END_FUNCTION_BLOCK"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestPaperControllerRoundTrip is the headline: exporting the paper's FLC
// to FCL and re-parsing it reproduces the original outputs across the
// input space.
func TestPaperControllerRoundTrip(t *testing.T) {
	orig := core.NewFLC().System()
	src, err := Write("barolli_handover", orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FUNCTION_BLOCK barolli_handover",
		"FUZZIFY CSSP", "FUZZIFY SSN", "FUZZIFY DMB", "DEFUZZIFY HD",
		"METHOD : COGS;", "RULE 64", "AND : MIN;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("FCL export missing %q", want)
		}
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	// Sweep a grid of inputs; the outputs must agree to high precision.
	for cssp := -10.0; cssp <= 10; cssp += 2.5 {
		for ssn := -120.0; ssn <= -80; ssn += 5 {
			for dmb := 0.0; dmb <= 1.5; dmb += 0.25 {
				in := map[string]float64{"CSSP": cssp, "SSN": ssn, "DMB": dmb}
				a, err := orig.Evaluate(in)
				if err != nil {
					t.Fatal(err)
				}
				b, err := back.Evaluate(in)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("round trip differs at (%g, %g, %g): %g vs %g", cssp, ssn, dmb, a, b)
				}
			}
		}
	}
}

func TestWriteMiniRoundTrip(t *testing.T) {
	sys, err := Parse(miniFCL)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Write("", sys)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "FUNCTION_BLOCK controller") {
		t.Error("default name not applied")
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]float64{"adv": 4.2, "dist": 0.9}
	a, _ := sys.Evaluate(in)
	b, _ := back.Evaluate(in)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("mini round trip differs: %g vs %g", a, b)
	}
}

func TestLexerLineNumbers(t *testing.T) {
	_, err := Parse("FUNCTION_BLOCK x\n\n\nWAT\nEND_FUNCTION_BLOCK")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %v should carry line 4", err)
	}
}
