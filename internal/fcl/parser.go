package fcl

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/fuzzy"
)

// FunctionBlock is the parsed form of an FCL function block before
// compilation.
type FunctionBlock struct {
	Name    string
	Inputs  []string
	Outputs []string
	// Variables holds the FUZZIFY/DEFUZZIFY blocks keyed by variable name.
	Variables map[string]*varBlock
	// Rules are the parsed rules of all RULEBLOCKs in order.
	Rules fuzzy.RuleBase
	// Options are the operators selected by the first RULEBLOCK and the
	// DEFUZZIFY METHOD.
	Options fuzzy.Options
}

type varBlock struct {
	name     string
	isOutput bool
	hasRange bool
	min, max float64
	terms    []fuzzy.Term
	method   string // DEFUZZIFY only
}

// Parse compiles FCL source into a fuzzy inference system.  Exactly one
// output variable (one DEFUZZIFY block) is supported.
func Parse(src string) (*fuzzy.System, error) {
	fb, err := ParseBlock(src)
	if err != nil {
		return nil, err
	}
	return fb.Compile()
}

// ParseBlock parses FCL source into its structural form.
func ParseBlock(src string) (*FunctionBlock, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.functionBlock()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("fcl: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// expectKeyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return p.errf(t, "expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected identifier, got %s", t)
	}
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected number, got %s", t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf(t, "bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) functionBlock() (*FunctionBlock, error) {
	if err := p.expectKeyword("FUNCTION_BLOCK"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	fb := &FunctionBlock{Name: name, Variables: map[string]*varBlock{}}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, p.errf(t, "missing END_FUNCTION_BLOCK")
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected block keyword, got %s", t)
		}
		switch strings.ToUpper(t.text) {
		case "END_FUNCTION_BLOCK":
			p.next()
			return fb, nil
		case "VAR_INPUT":
			p.next()
			names, err := p.varList()
			if err != nil {
				return nil, err
			}
			fb.Inputs = append(fb.Inputs, names...)
		case "VAR_OUTPUT":
			p.next()
			names, err := p.varList()
			if err != nil {
				return nil, err
			}
			fb.Outputs = append(fb.Outputs, names...)
		case "FUZZIFY":
			p.next()
			if err := p.fuzzifyBlock(fb, false); err != nil {
				return nil, err
			}
		case "DEFUZZIFY":
			p.next()
			if err := p.fuzzifyBlock(fb, true); err != nil {
				return nil, err
			}
		case "RULEBLOCK":
			p.next()
			if err := p.ruleBlock(fb); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t, "unexpected keyword %q", t.text)
		}
	}
}

// varList parses "name : REAL ;"* until END_VAR.
func (p *parser) varList() ([]string, error) {
	var names []string
	for {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "END_VAR") {
			p.next()
			return names, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !strings.EqualFold(typ, "REAL") {
			return nil, fmt.Errorf("fcl: variable %s: only REAL is supported, got %s", name, typ)
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
}

// fuzzifyBlock parses FUZZIFY/DEFUZZIFY contents.
func (p *parser) fuzzifyBlock(fb *FunctionBlock, isOutput bool) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	vb := &varBlock{name: name, isOutput: isOutput}
	endKw := "END_FUZZIFY"
	if isOutput {
		endKw = "END_DEFUZZIFY"
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return p.errf(t, "expected TERM/RANGE/METHOD or %s, got %s", endKw, t)
		}
		switch strings.ToUpper(t.text) {
		case strings.ToUpper(endKw):
			p.next()
			fb.Variables[name] = vb
			return nil
		case "TERM":
			p.next()
			if err := p.term(vb); err != nil {
				return err
			}
		case "RANGE":
			p.next()
			if err := p.rangeDecl(vb); err != nil {
				return err
			}
		case "METHOD":
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			m, err := p.ident()
			if err != nil {
				return err
			}
			vb.method = strings.ToUpper(m)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case "DEFAULT":
			// DEFAULT := <number>; — accepted and ignored (the complete
			// paper rulebase never needs a default).
			p.next()
			t := p.next()
			if t.kind != tokAssign {
				return p.errf(t, "expected := after DEFAULT")
			}
			if _, err := p.number(); err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		default:
			return p.errf(t, "unexpected %q in %s block", t.text, name)
		}
	}
}

// term parses "TERM name := (x, y) (x, y) … ;" (or a single number for a
// singleton).
func (p *parser) term(vb *varBlock) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	t := p.next()
	if t.kind != tokAssign {
		return p.errf(t, "expected := in TERM %s", name)
	}
	if p.peek().kind == tokNumber {
		// Singleton: TERM x := 0.5;
		v, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		vb.terms = append(vb.terms, fuzzy.Term{Name: name, MF: fuzzy.Singleton{X: v}})
		return nil
	}
	var pl fuzzy.PiecewiseLinear
	for {
		if p.peek().kind == tokPunct && p.peek().text == ";" {
			p.next()
			break
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		x, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		y, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		pl.X = append(pl.X, x)
		pl.Y = append(pl.Y, y)
	}
	if err := pl.Validate(); err != nil {
		return fmt.Errorf("fcl: TERM %s of %s: %w", name, vb.name, err)
	}
	vb.terms = append(vb.terms, fuzzy.Term{Name: name, MF: pl})
	return nil
}

// rangeDecl parses "RANGE := (lo .. hi);".
func (p *parser) rangeDecl(vb *varBlock) error {
	t := p.next()
	if t.kind != tokAssign {
		return p.errf(t, "expected := after RANGE")
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	lo, err := p.number()
	if err != nil {
		return err
	}
	t = p.next()
	if t.kind != tokRange {
		return p.errf(t, "expected .. in RANGE")
	}
	hi, err := p.number()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	vb.hasRange = true
	vb.min, vb.max = lo, hi
	return nil
}

// ruleBlock parses operator selections and rules.
func (p *parser) ruleBlock(fb *FunctionBlock) error {
	if _, err := p.ident(); err != nil { // block name
		return err
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return p.errf(t, "expected RULE/operator or END_RULEBLOCK, got %s", t)
		}
		switch strings.ToUpper(t.text) {
		case "END_RULEBLOCK":
			p.next()
			return nil
		case "AND":
			p.next()
			op, err := p.operatorDecl()
			if err != nil {
				return err
			}
			switch op {
			case "MIN":
				fb.Options.AndNorm = fuzzy.MinNorm
			case "PROD":
				fb.Options.AndNorm = fuzzy.ProductNorm
			default:
				return fmt.Errorf("fcl: unsupported AND operator %s", op)
			}
		case "OR":
			p.next()
			op, err := p.operatorDecl()
			if err != nil {
				return err
			}
			switch op {
			case "MAX":
				fb.Options.OrNorm = fuzzy.MaxNorm
			case "ASUM":
				fb.Options.OrNorm = fuzzy.ProbSumNorm
			case "BSUM":
				fb.Options.OrNorm = fuzzy.BoundedSumNorm
			default:
				return fmt.Errorf("fcl: unsupported OR operator %s", op)
			}
		case "ACT":
			p.next()
			op, err := p.operatorDecl()
			if err != nil {
				return err
			}
			switch op {
			case "MIN":
				fb.Options.Implication = fuzzy.MinImplication
			case "PROD":
				fb.Options.Implication = fuzzy.ProductImplication
			default:
				return fmt.Errorf("fcl: unsupported ACT operator %s", op)
			}
		case "ACCU":
			p.next()
			op, err := p.operatorDecl()
			if err != nil {
				return err
			}
			if op != "MAX" {
				return fmt.Errorf("fcl: unsupported ACCU operator %s", op)
			}
		case "RULE":
			p.next()
			if err := p.rule(fb); err != nil {
				return err
			}
		default:
			return p.errf(t, "unexpected %q in RULEBLOCK", t.text)
		}
	}
}

// operatorDecl parses ": IDENT ;".
func (p *parser) operatorDecl() (string, error) {
	if err := p.expectPunct(":"); err != nil {
		return "", err
	}
	op, err := p.ident()
	if err != nil {
		return "", err
	}
	if err := p.expectPunct(";"); err != nil {
		return "", err
	}
	return strings.ToUpper(op), nil
}

// rule parses "RULE n : IF … THEN … ;" by collecting tokens up to the
// semicolon (dropping clause parentheses, which our DSL does not use) and
// delegating to the fuzzy rule parser.
func (p *parser) rule(fb *FunctionBlock) error {
	if _, err := p.number(); err != nil { // rule number
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	var parts []string
	for {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errf(t, "unterminated RULE")
		case t.kind == tokPunct && t.text == ";":
			r, err := fuzzy.ParseRule(strings.Join(parts, " "))
			if err != nil {
				return fmt.Errorf("fcl: %w", err)
			}
			fb.Rules.Add(r)
			return nil
		case t.kind == tokPunct && (t.text == "(" || t.text == ")"):
			// FCL clause grouping; the flat DSL needs none.
		default:
			parts = append(parts, t.text)
		}
	}
}

// Compile builds the fuzzy system from the parsed block.
func (fb *FunctionBlock) Compile() (*fuzzy.System, error) {
	if len(fb.Outputs) != 1 {
		return nil, fmt.Errorf("fcl: exactly one VAR_OUTPUT supported, got %d", len(fb.Outputs))
	}
	build := func(name string) (*fuzzy.Variable, error) {
		vb, ok := fb.Variables[name]
		if !ok {
			return nil, fmt.Errorf("fcl: variable %s has no FUZZIFY/DEFUZZIFY block", name)
		}
		if len(vb.terms) == 0 {
			return nil, fmt.Errorf("fcl: variable %s has no terms", name)
		}
		min, max := vb.min, vb.max
		if !vb.hasRange {
			// Infer the universe from the term extremes.
			min, max = inferRange(vb.terms)
		}
		return fuzzy.NewVariable(name, min, max, vb.terms...)
	}
	var inputs []*fuzzy.Variable
	for _, name := range fb.Inputs {
		v, err := build(name)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, v)
	}
	output, err := build(fb.Outputs[0])
	if err != nil {
		return nil, err
	}
	opts := fb.Options
	if vb := fb.Variables[fb.Outputs[0]]; vb != nil {
		switch vb.method {
		case "", "COGS":
			// Default (weighted average over singleton/core positions).
			opts.Defuzzifier = fuzzy.WeightedAverage{}
		case "COG", "COA":
			opts.Defuzzifier = fuzzy.Centroid{}
		case "MM", "MOM":
			opts.Defuzzifier = fuzzy.MeanOfMaxima()
		case "LM":
			opts.Defuzzifier = fuzzy.SmallestOfMaxima()
		case "RM":
			opts.Defuzzifier = fuzzy.LargestOfMaxima()
		default:
			return nil, fmt.Errorf("fcl: unsupported METHOD %s", vb.method)
		}
	}
	return fuzzy.NewSystem(output, fb.Rules, opts, inputs...)
}

func inferRange(terms []fuzzy.Term) (float64, float64) {
	min, max := math.Inf(1), math.Inf(-1)
	for _, t := range terms {
		if pl, ok := t.MF.(fuzzy.PiecewiseLinear); ok && len(pl.X) > 0 {
			if pl.X[0] < min {
				min = pl.X[0]
			}
			if pl.X[len(pl.X)-1] > max {
				max = pl.X[len(pl.X)-1]
			}
			continue
		}
		lo, hi := t.MF.Support()
		if !math.IsInf(lo, -1) && lo < min {
			min = lo
		}
		if !math.IsInf(hi, 1) && hi > max {
			max = hi
		}
	}
	return min, max
}
