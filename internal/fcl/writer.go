package fcl

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fuzzy"
)

// Write renders a fuzzy system as an FCL function block.  Membership
// functions are converted to point lists over each variable's universe
// (exact for triangles/trapezoids/point lists, sampled otherwise), so
// Parse(Write(sys)) reproduces the system's behaviour within the universe.
func Write(name string, sys *fuzzy.System) (string, error) {
	if name == "" {
		name = "controller"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FUNCTION_BLOCK %s\n\n", name)

	b.WriteString("VAR_INPUT\n")
	for _, v := range sys.Inputs() {
		fmt.Fprintf(&b, "    %s : REAL;\n", v.Name)
	}
	b.WriteString("END_VAR\n\nVAR_OUTPUT\n")
	fmt.Fprintf(&b, "    %s : REAL;\n", sys.Output().Name)
	b.WriteString("END_VAR\n\n")

	for _, v := range sys.Inputs() {
		if err := writeVarBlock(&b, "FUZZIFY", v, ""); err != nil {
			return "", err
		}
	}
	method, err := methodName(sys.Options().Defuzzifier)
	if err != nil {
		return "", err
	}
	if err := writeVarBlock(&b, "DEFUZZIFY", sys.Output(), method); err != nil {
		return "", err
	}

	b.WriteString("RULEBLOCK No1\n")
	fmt.Fprintf(&b, "    AND : %s;\n", normName(sys.Options().AndNorm))
	fmt.Fprintf(&b, "    ACT : %s;\n", implName(sys.Options().Implication))
	b.WriteString("    ACCU : MAX;\n")
	for i, r := range sys.Rules().Rules {
		fmt.Fprintf(&b, "    RULE %d : %s;\n", i+1, r)
	}
	b.WriteString("END_RULEBLOCK\n\nEND_FUNCTION_BLOCK\n")
	return b.String(), nil
}

func writeVarBlock(b *strings.Builder, kind string, v *fuzzy.Variable, method string) error {
	fmt.Fprintf(b, "%s %s\n", kind, v.Name)
	fmt.Fprintf(b, "    RANGE := (%s .. %s);\n", num(v.Min), num(v.Max))
	for _, t := range v.Terms {
		// Singletons must round-trip through the scalar TERM form:
		// sampling a zero-width spike onto a point grid would lose it.
		if s, ok := t.MF.(fuzzy.Singleton); ok {
			fmt.Fprintf(b, "    TERM %s := %s;\n", t.Name, num(s.X))
			continue
		}
		pl, err := fuzzy.ToPiecewise(t.MF, v.Min, v.Max, 64)
		if err != nil {
			return fmt.Errorf("fcl: term %s: %w", t.Name, err)
		}
		pts := make([]string, len(pl.X))
		for i := range pl.X {
			pts[i] = fmt.Sprintf("(%s, %s)", num(pl.X[i]), num(pl.Y[i]))
		}
		fmt.Fprintf(b, "    TERM %s := %s;\n", t.Name, strings.Join(pts, " "))
	}
	if method != "" {
		fmt.Fprintf(b, "    METHOD : %s;\n", method)
	}
	fmt.Fprintf(b, "END_%s\n\n", kind)
	return nil
}

func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func methodName(d fuzzy.Defuzzifier) (string, error) {
	switch d.Name() {
	case "weighted-average":
		return "COGS", nil
	case "centroid":
		return "COG", nil
	case "mean-of-maxima":
		return "MM", nil
	case "smallest-of-maxima":
		return "LM", nil
	case "largest-of-maxima":
		return "RM", nil
	default:
		return "", fmt.Errorf("fcl: defuzzifier %s has no FCL method name", d.Name())
	}
}

func normName(n fuzzy.TNorm) string {
	// Function identity is not comparable; probe behaviourally.
	if n(0.5, 0.5) == 0.25 {
		return "PROD"
	}
	return "MIN"
}

func implName(im fuzzy.Implication) string {
	if im(0.5, 0.5) == 0.25 {
		return "PROD"
	}
	return "MIN"
}
