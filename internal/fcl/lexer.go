// Package fcl implements a subset of the IEC 61131-7 Fuzzy Control
// Language: FUNCTION_BLOCK declarations with VAR_INPUT/VAR_OUTPUT, FUZZIFY
// and DEFUZZIFY blocks (point-list terms, RANGE, METHOD, DEFAULT) and one
// or more RULEBLOCKs (AND/OR/ACT/ACCU operators and IF/THEN rules).
//
// FCL is the standard interchange format for fuzzy controllers; the parser
// compiles a function block straight into a fuzzy.System, and the writer
// exports any fuzzy.System — including the paper's FLC — as FCL text.
package fcl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokPunct // one of ( ) , ; :
	tokAssign
	tokRange // ".."
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes FCL source.  Comments use '//' or '(*' … '*)'.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*)")
			if end < 0 {
				return nil, fmt.Errorf("fcl: line %d: unterminated comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == ':' && i+1 < n && src[i+1] == '=':
			toks = append(toks, token{tokAssign, ":=", line})
			i += 2
		case c == '.' && i+1 < n && src[i+1] == '.':
			toks = append(toks, token{tokRange, "..", line})
			i += 2
		case strings.ContainsRune("(),;:", rune(c)):
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		case c == '-' || c == '+' || c == '.' || unicode.IsDigit(rune(c)):
			start := i
			i++
			for i < n && (unicode.IsDigit(rune(src[i])) || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '-' || src[i] == '+') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				// Stop before a ".." range operator.
				if src[i] == '.' && i+1 < n && src[i+1] == '.' {
					break
				}
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], line})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], line})
		default:
			return nil, fmt.Errorf("fcl: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
