package fcl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fuzzy"
)

// TestParseWriteParseEquivalence closes the writer round-trip the other
// way around from TestPaperControllerRoundTrip: starting from FCL text,
// parse → write → parse must yield an equivalent system — same variable
// structure, same rule count, same behaviour across the input space — for
// every supported operator and defuzzifier selection.
func TestParseWriteParseEquivalence(t *testing.T) {
	variants := []struct {
		name string
		src  string
	}{
		{"min-cog", miniFCL},
		{"prod-ops", strings.NewReplacer(
			"AND : MIN;", "AND : PROD;",
			"ACT : MIN;", "ACT : PROD;",
		).Replace(miniFCL)},
		{"cogs", strings.Replace(strings.Replace(miniFCL,
			"METHOD : COG;", "METHOD : COGS;", 1),
			// COGS (weighted average) wants singleton-friendly output terms;
			// keep the piecewise terms — the method still applies.
			"DEFAULT := 0;", "DEFAULT := 0;", 1)},
		{"mean-of-maxima", strings.Replace(miniFCL, "METHOD : COG;", "METHOD : MM;", 1)},
		{"smallest-of-maxima", strings.Replace(miniFCL, "METHOD : COG;", "METHOD : LM;", 1)},
		{"largest-of-maxima", strings.Replace(miniFCL, "METHOD : COG;", "METHOD : RM;", 1)},
		{"singleton-output", strings.NewReplacer(
			"TERM no := (0, 1) (0.2, 1) (0.5, 0);", "TERM no := 0.1;",
			"TERM yes := (0.5, 0) (0.8, 1) (1, 1);", "TERM yes := 0.9;",
			"METHOD : COG;", "METHOD : COGS;",
		).Replace(miniFCL)},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			first, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("initial parse: %v", err)
			}
			exported, err := Write("roundtrip", first)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			second, err := Parse(exported)
			if err != nil {
				t.Fatalf("re-parse of writer output: %v\n%s", err, exported)
			}
			compareSystems(t, first, second)
		})
	}
}

// compareSystems checks structural and behavioural equivalence of two
// inference systems over a dense input grid.
func compareSystems(t *testing.T, a, b *fuzzy.System) {
	t.Helper()
	if len(a.Inputs()) != len(b.Inputs()) {
		t.Fatalf("input count %d vs %d", len(a.Inputs()), len(b.Inputs()))
	}
	for i, va := range a.Inputs() {
		vb := b.Inputs()[i]
		if va.Name != vb.Name || va.Min != vb.Min || va.Max != vb.Max {
			t.Errorf("input %d: %s[%g,%g] vs %s[%g,%g]",
				i, va.Name, va.Min, va.Max, vb.Name, vb.Min, vb.Max)
		}
		if len(va.Terms) != len(vb.Terms) {
			t.Errorf("input %s: %d terms vs %d", va.Name, len(va.Terms), len(vb.Terms))
		}
	}
	if a.Output().Name != b.Output().Name {
		t.Errorf("output %s vs %s", a.Output().Name, b.Output().Name)
	}
	if a.Rules().Len() != b.Rules().Len() {
		t.Fatalf("rule count %d vs %d", a.Rules().Len(), b.Rules().Len())
	}
	if a.Options().Defuzzifier.Name() != b.Options().Defuzzifier.Name() {
		t.Errorf("defuzzifier %s vs %s",
			a.Options().Defuzzifier.Name(), b.Options().Defuzzifier.Name())
	}

	// Behavioural sweep over the shared universe (miniFCL's two inputs).
	const steps = 24
	in := make(map[string]float64, len(a.Inputs()))
	var sweep func(dim int)
	worst := 0.0
	sweep = func(dim int) {
		if dim == len(a.Inputs()) {
			x, errA := a.Evaluate(in)
			y, errB := b.Evaluate(in)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error mismatch at %v: %v vs %v", in, errA, errB)
			}
			if errA != nil {
				return
			}
			if d := math.Abs(x - y); d > worst {
				worst = d
			}
			if math.Abs(x-y) > 1e-9 {
				t.Fatalf("outputs differ at %v: %g vs %g", in, x, y)
			}
			return
		}
		v := a.Inputs()[dim]
		for i := 0; i <= steps; i++ {
			in[v.Name] = v.Min + (v.Max-v.Min)*float64(i)/steps
			sweep(dim + 1)
		}
	}
	sweep(0)
	t.Logf("max |Δoutput| over %d-point grid: %g", (steps+1)*(steps+1), worst)
}
