package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPiecewiseGrades(t *testing.T) {
	p := Points([2]float64{0, 0}, [2]float64{1, 1}, [2]float64{2, 1}, [2]float64{4, 0})
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {2, 1}, {3, 0.5}, {4, 0}, {9, 0},
	}
	for _, tc := range cases {
		if got := p.Grade(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Grade(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestPiecewiseBoundaryPlateau(t *testing.T) {
	// FCL convention: the grade continues at the boundary value, making
	// shoulders expressible.
	left := Points([2]float64{-10, 1}, [2]float64{-5, 0})
	if left.Grade(-100) != 1 || left.Grade(0) != 0 {
		t.Error("left plateau broken")
	}
	lo, hi := left.Support()
	if !math.IsInf(lo, -1) || hi != -5 {
		t.Errorf("support = [%g, %g]", lo, hi)
	}
}

func TestPiecewiseCore(t *testing.T) {
	// Interior plateau.
	p := Points([2]float64{0, 0}, [2]float64{1, 1}, [2]float64{2, 1}, [2]float64{3, 0})
	lo, hi := p.Core()
	if lo != 1 || hi != 2 {
		t.Errorf("core = [%g, %g], want [1, 2]", lo, hi)
	}
	// Boundary maximum extends to infinity.
	right := Points([2]float64{0, 0}, [2]float64{1, 1})
	lo, hi = right.Core()
	if lo != 1 || !math.IsInf(hi, 1) {
		t.Errorf("right-shoulder core = [%g, %g]", lo, hi)
	}
	// Subnormal maximum (max grade < 1) still located correctly.
	sub := Points([2]float64{0, 0}, [2]float64{1, 0.6}, [2]float64{2, 0})
	lo, hi = sub.Core()
	if lo != 1 || hi != 1 {
		t.Errorf("subnormal core = [%g, %g]", lo, hi)
	}
}

func TestPiecewiseValidate(t *testing.T) {
	good := Points([2]float64{0, 0}, [2]float64{1, 1})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PiecewiseLinear{
		{},
		{X: []float64{0, 1}, Y: []float64{0}},
		{X: []float64{1, 0}, Y: []float64{0, 1}},          // decreasing x
		{X: []float64{0, 0}, Y: []float64{0, 1}},          // duplicate x
		{X: []float64{0, 1}, Y: []float64{0, 2}},          // grade > 1
		{X: []float64{0, 1}, Y: []float64{0, -0.5}},       // grade < 0
		{X: []float64{0, 1}, Y: []float64{0, 0}},          // identically zero
		{X: []float64{math.NaN(), 1}, Y: []float64{0, 1}}, // NaN x
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad piecewise %d accepted", i)
		}
	}
}

func TestPiecewiseGradeRangeProperty(t *testing.T) {
	p := Points([2]float64{-3, 0.2}, [2]float64{0, 1}, [2]float64{2, 0.4}, [2]float64{5, 0})
	if err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		g := p.Grade(x)
		return g >= 0 && g <= 1 && !math.IsNaN(g)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPiecewiseString(t *testing.T) {
	p := Points([2]float64{0, 0}, [2]float64{1, 1})
	if got := p.String(); got != "Points((0,0) (1,1))" {
		t.Errorf("String = %q", got)
	}
}

func TestToPiecewiseExactForLinearShapes(t *testing.T) {
	universeMin, universeMax := -10.0, 10.0
	shapes := []MembershipFunc{
		Tri(-5, 0, 5),
		Trap(-8, -4, 4, 8),
		ShoulderLeft(-10, -5),
		ShoulderRight(5, 10),
		Points([2]float64{-10, 1}, [2]float64{0, 0}, [2]float64{5, 0.5}),
	}
	for _, mf := range shapes {
		pl, err := ToPiecewise(mf, universeMin, universeMax, 0)
		if err != nil {
			t.Fatalf("%v: %v", mf, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("%v converted invalid: %v", mf, err)
		}
		for x := universeMin; x <= universeMax; x += 0.125 {
			if a, b := mf.Grade(x), pl.Grade(x); math.Abs(a-b) > 1e-12 {
				t.Fatalf("%v: grade mismatch at %g: %g vs %g", mf, x, a, b)
			}
		}
	}
}

func TestToPiecewiseSamplesSmoothShapes(t *testing.T) {
	g := Gaussian{Mean: 0, Sigma: 2}
	pl, err := ToPiecewise(g, -10, 10, 256)
	if err != nil {
		t.Fatal(err)
	}
	for x := -10.0; x <= 10; x += 0.1 {
		if math.Abs(g.Grade(x)-pl.Grade(x)) > 0.01 {
			t.Fatalf("gaussian sampling error at %g", x)
		}
	}
}

func TestToPiecewiseRejectsInvalid(t *testing.T) {
	if _, err := ToPiecewise(Tri(2, 1, 0), -10, 10, 0); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestPiecewiseJSONRoundTrip(t *testing.T) {
	v := MustVariable("x", 0, 4,
		Term{"p", Points([2]float64{0, 1}, [2]float64{2, 0.5}, [2]float64{4, 0})},
	)
	data, err := v.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Variable
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 4; x += 0.25 {
		if math.Abs(v.Fuzzify(x)[0]-back.Fuzzify(x)[0]) > 1e-12 {
			t.Fatalf("json round trip mismatch at %g", x)
		}
	}
}

func TestPiecewiseInEngine(t *testing.T) {
	// A complete system whose terms are all piecewise behaves like its
	// triangular equivalent.
	mk := func(linear bool) *System {
		var low, high MembershipFunc
		if linear {
			low = Points([2]float64{0, 1}, [2]float64{1, 0})
			high = Points([2]float64{0, 0}, [2]float64{1, 1})
		} else {
			low = ShoulderLeft(0, 1)
			high = ShoulderRight(0, 1)
		}
		in := MustVariable("a", 0, 1, Term{"lo", low}, Term{"hi", high})
		out := MustVariable("y", 0, 1,
			Term{"small", Tri(0, 0.25, 0.5)},
			Term{"large", Tri(0.5, 0.75, 1)},
		)
		var rb RuleBase
		rb.Add(
			Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}},
			Rule{If: []Clause{{Var: "a", Term: "hi"}}, Then: Clause{Var: "y", Term: "large"}},
		)
		return MustSystem(out, rb, Options{}, in)
	}
	pw, tri := mk(true), mk(false)
	for x := 0.0; x <= 1; x += 0.05 {
		a, _ := pw.Evaluate(map[string]float64{"a": x})
		b, _ := tri.Evaluate(map[string]float64{"a": x})
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("piecewise engine differs at %g: %g vs %g", x, a, b)
		}
	}
}
