package fuzzy

import (
	"fmt"
	"sort"
	"strings"
)

// Options selects the operator family of a System.  The zero value yields
// the paper's configuration: Mamdani max–min inference with height
// defuzzification.
type Options struct {
	// AndNorm combines AND-connected clause grades (default MinNorm).
	AndNorm TNorm
	// OrNorm combines OR-connected clause grades and aggregates rule
	// activations per output term (default MaxNorm).
	OrNorm SNorm
	// Implication shapes consequents (default MinImplication / Mamdani).
	Implication Implication
	// Defuzzifier converts the aggregated set to a crisp output
	// (default WeightedAverage).
	Defuzzifier Defuzzifier
}

func (o Options) withDefaults() Options {
	if o.AndNorm == nil {
		o.AndNorm = MinNorm
	}
	if o.OrNorm == nil {
		o.OrNorm = MaxNorm
	}
	if o.Implication == nil {
		o.Implication = MinImplication
	}
	if o.Defuzzifier == nil {
		o.Defuzzifier = WeightedAverage{}
	}
	return o
}

// System is a complete fuzzy inference system: the fuzzifier, rule base,
// inference engine and defuzzifier of the paper's Fig. 2.  Construct with
// NewSystem; a System is immutable afterwards and safe for concurrent use.
type System struct {
	inputs []*Variable
	byName map[string]*Variable
	output *Variable
	rules  RuleBase
	opts   Options
	// compiled rules: term indices resolved once at construction.
	compiled []compiledRule
	// Fast-path compilation (see fast.go): devirtualized input terms,
	// flat rule/clause pools, precomputed output-term midpoints, and flags
	// recording whether the default operator family applies so EvaluateInto
	// can inline it.
	fastIn      [][]fastTerm
	grid        *gridTable
	fastRules   []fastRule
	fastClauses []fastClause
	outMid      []float64
	fastNorms   bool // AndNorm/OrNorm left at defaults (min/max)
	fastDefuzz  bool // defuzzifier is WeightedAverage
}

type compiledRule struct {
	clauses []compiledClause
	conn    Connective
	outTerm int
	weight  float64
}

type compiledClause struct {
	varIdx  int
	termIdx int
	not     bool
}

// NewSystem validates and compiles a fuzzy inference system.
func NewSystem(output *Variable, rules RuleBase, opts Options, inputs ...*Variable) (*System, error) {
	if output == nil {
		return nil, fmt.Errorf("fuzzy: nil output variable")
	}
	if err := output.Validate(); err != nil {
		return nil, err
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("fuzzy: system needs at least one input variable")
	}
	byName := make(map[string]*Variable, len(inputs))
	for _, v := range inputs {
		if v == nil {
			return nil, fmt.Errorf("fuzzy: nil input variable")
		}
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[v.Name]; dup {
			return nil, fmt.Errorf("fuzzy: duplicate input variable %q", v.Name)
		}
		if v.Name == output.Name {
			return nil, fmt.Errorf("fuzzy: input and output share name %q", v.Name)
		}
		byName[v.Name] = v
	}
	if rules.Len() == 0 {
		return nil, fmt.Errorf("fuzzy: empty rulebase")
	}
	if err := rules.Validate(byName, output); err != nil {
		return nil, err
	}

	s := &System{
		inputs: inputs,
		byName: byName,
		output: output,
		rules:  rules,
		opts:   opts.withDefaults(),
		// Explicitly passed norms are honored through the generic path even
		// when they equal the defaults (func values are not comparable).
		fastNorms: opts.AndNorm == nil && opts.OrNorm == nil,
	}
	_, s.fastDefuzz = s.opts.Defuzzifier.(WeightedAverage)
	s.fastIn = make([][]fastTerm, len(inputs))
	for i, v := range inputs {
		s.fastIn[i] = make([]fastTerm, len(v.Terms))
		for j, t := range v.Terms {
			s.fastIn[i][j] = compileTerm(t.MF)
		}
	}
	s.outMid = make([]float64, len(output.Terms))
	for i, t := range output.Terms {
		s.outMid[i] = CoreMidpoint(t.MF, output.Min, output.Max)
	}
	varIdx := make(map[string]int, len(inputs))
	for i, v := range inputs {
		varIdx[v.Name] = i
	}
	termIdx := func(v *Variable, name string) int {
		for i, t := range v.Terms {
			if t.Name == name {
				return i
			}
		}
		return -1 // unreachable: rules validated above
	}
	s.compiled = make([]compiledRule, rules.Len())
	for i, r := range rules.Rules {
		cr := compiledRule{
			conn:    r.Conn,
			outTerm: termIdx(output, r.Then.Term),
			weight:  r.EffectiveWeight(),
			clauses: make([]compiledClause, len(r.If)),
		}
		for j, c := range r.If {
			vi := varIdx[c.Var]
			cr.clauses[j] = compiledClause{
				varIdx:  vi,
				termIdx: termIdx(inputs[vi], c.Term),
				not:     c.Not,
			}
		}
		s.compiled[i] = cr
	}
	s.compileFastRules()
	return s, nil
}

// MustSystem is NewSystem that panics on error.
func MustSystem(output *Variable, rules RuleBase, opts Options, inputs ...*Variable) *System {
	s, err := NewSystem(output, rules, opts, inputs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Inputs returns the input variables in definition order.
func (s *System) Inputs() []*Variable { return s.inputs }

// Output returns the output variable.
func (s *System) Output() *Variable { return s.output }

// Rules returns the rulebase.
func (s *System) Rules() RuleBase { return s.rules }

// Options returns the resolved operator options.
func (s *System) Options() Options { return s.opts }

// RuleFiring records one rule's firing strength in a Trace.
type RuleFiring struct {
	Index    int // 1-based rule number, matching the paper's Table 1
	Rule     Rule
	Strength float64
}

// Trace is a full explanation of one inference: the fuzzified inputs, every
// rule that fired, the per-term aggregated activations and the crisp output.
type Trace struct {
	Inputs      map[string]float64
	Fuzzified   map[string]map[string]float64
	Firings     []RuleFiring
	Activations map[string]float64
	Output      float64

	// Rendering orders, captured from the system at trace time: input
	// variables and their terms in definition order.  Zero-value Traces
	// (built by hand) fall back to sorted map keys.
	inputOrder   []string
	termOrder    [][]string // parallel to inputOrder
	outTermOrder []string
}

// sortedKeys is the fallback ordering for hand-built Traces without a
// captured definition order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the trace as a human-readable explanation (used by the
// horules CLI).  Variables and terms appear in definition order — the order
// of the paper's Fig. 5 — rather than alphabetically.
func (tr *Trace) String() string {
	var b strings.Builder
	names := tr.inputOrder
	if names == nil {
		names = sortedKeys(tr.Inputs)
	}
	b.WriteString("inputs:\n")
	for i, n := range names {
		fmt.Fprintf(&b, "  %s = %g\n", n, tr.Inputs[n])
		grades := tr.Fuzzified[n]
		var terms []string
		if tr.termOrder != nil {
			terms = tr.termOrder[i]
		} else {
			terms = sortedKeys(grades)
		}
		for _, t := range terms {
			if grades[t] > 0 {
				fmt.Fprintf(&b, "    μ_%s = %.4f\n", t, grades[t])
			}
		}
	}
	b.WriteString("fired rules:\n")
	for _, f := range tr.Firings {
		fmt.Fprintf(&b, "  #%d [%.4f] %s\n", f.Index, f.Strength, f.Rule)
	}
	b.WriteString("output activations:\n")
	terms := tr.outTermOrder
	if terms == nil {
		terms = sortedKeys(tr.Activations)
	}
	for _, t := range terms {
		if tr.Activations[t] > 0 {
			fmt.Fprintf(&b, "  %s = %.4f\n", t, tr.Activations[t])
		}
	}
	fmt.Fprintf(&b, "output = %.4f\n", tr.Output)
	return b.String()
}

// Evaluate runs one inference.  The input map must contain a value for every
// input variable; values are clamped to each variable's universe.
func (s *System) Evaluate(in map[string]float64) (float64, error) {
	grades, err := s.fuzzifyAll(in)
	if err != nil {
		return 0, err
	}
	activations := s.infer(grades, nil)
	return s.opts.Defuzzifier.Defuzzify(s.output, activations, s.opts.Implication)
}

// EvaluateTrace is Evaluate with a full explanation attached.
func (s *System) EvaluateTrace(in map[string]float64) (float64, *Trace, error) {
	grades, err := s.fuzzifyAll(in)
	if err != nil {
		return 0, nil, err
	}
	tr := &Trace{
		Inputs:       make(map[string]float64, len(in)),
		Fuzzified:    make(map[string]map[string]float64, len(s.inputs)),
		Activations:  make(map[string]float64, len(s.output.Terms)),
		inputOrder:   make([]string, len(s.inputs)),
		termOrder:    make([][]string, len(s.inputs)),
		outTermOrder: s.output.TermNames(),
	}
	for i, v := range s.inputs {
		tr.inputOrder[i] = v.Name
		tr.termOrder[i] = v.TermNames()
	}
	for k, v := range in {
		tr.Inputs[k] = v
	}
	for i, v := range s.inputs {
		m := make(map[string]float64, len(v.Terms))
		for j, t := range v.Terms {
			m[t.Name] = grades[i][j]
		}
		tr.Fuzzified[v.Name] = m
	}
	activations := s.infer(grades, tr)
	for i, t := range s.output.Terms {
		tr.Activations[t.Name] = activations[i]
	}
	out, err := s.opts.Defuzzifier.Defuzzify(s.output, activations, s.opts.Implication)
	if err != nil {
		return 0, tr, err
	}
	tr.Output = out
	return out, tr, nil
}

// fuzzifyAll grades every input against every term of its variable.
func (s *System) fuzzifyAll(in map[string]float64) ([][]float64, error) {
	grades := make([][]float64, len(s.inputs))
	for i, v := range s.inputs {
		x, ok := in[v.Name]
		if !ok {
			return nil, fmt.Errorf("fuzzy: missing input %q", v.Name)
		}
		grades[i] = v.Fuzzify(x)
	}
	return grades, nil
}

// infer computes per-output-term activations; if tr is non-nil, rule firings
// are recorded.
func (s *System) infer(grades [][]float64, tr *Trace) []float64 {
	activations := make([]float64, len(s.output.Terms))
	s.inferInto(grades, activations, tr)
	return activations
}

// inferInto accumulates per-output-term activations into the zeroed
// activations slice; if tr is non-nil, rule firings are recorded.
func (s *System) inferInto(grades [][]float64, activations []float64, tr *Trace) {
	for i, cr := range s.compiled {
		var strength float64
		for j, c := range cr.clauses {
			g := grades[c.varIdx][c.termIdx]
			if c.not {
				g = Complement(g)
			}
			if j == 0 {
				strength = g
				continue
			}
			if cr.conn == Or {
				strength = s.opts.OrNorm(strength, g)
			} else {
				strength = s.opts.AndNorm(strength, g)
			}
		}
		strength *= cr.weight
		if strength == 0 {
			continue
		}
		if tr != nil {
			tr.Firings = append(tr.Firings, RuleFiring{
				Index:    i + 1,
				Rule:     s.rules.Rules[i],
				Strength: strength,
			})
		}
		activations[cr.outTerm] = s.opts.OrNorm(activations[cr.outTerm], strength)
	}
}

// ControlSurface samples the crisp output over a grid of two input
// variables, holding every other input fixed at the values in fixed.
// It returns a rows×cols matrix: surface[r][c] is the output at
// (xVar = xs[c], yVar = ys[r]).  Used by the hosurface CLI and the
// partition-sensitivity ablation.
//
// The whole grid runs on the positional fast path with one shared Scratch:
// the fixed inputs are resolved to positions once, so no cell re-fuzzifies
// through the map API.
func (s *System) ControlSurface(xVar, yVar string, cols, rows int, fixed map[string]float64) (xs, ys []float64, surface [][]float64, err error) {
	xi, yi := -1, -1
	for i, v := range s.inputs {
		if v.Name == xVar {
			xi = i
		}
		if v.Name == yVar {
			yi = i
		}
	}
	if xi < 0 {
		return nil, nil, nil, fmt.Errorf("fuzzy: unknown surface variable %q", xVar)
	}
	if yi < 0 {
		return nil, nil, nil, fmt.Errorf("fuzzy: unknown surface variable %q", yVar)
	}
	if cols < 2 || rows < 2 {
		return nil, nil, nil, fmt.Errorf("fuzzy: surface grid must be at least 2×2, got %d×%d", cols, rows)
	}
	xv, yv := s.inputs[xi], s.inputs[yi]
	xs = make([]float64, cols)
	ys = make([]float64, rows)
	for c := range xs {
		xs[c] = xv.Min + (xv.Max-xv.Min)*float64(c)/float64(cols-1)
	}
	for r := range ys {
		ys[r] = yv.Min + (yv.Max-yv.Min)*float64(r)/float64(rows-1)
	}
	sc := s.NewScratch()
	in := sc.Xs()
	for i, v := range s.inputs {
		if i == xi || i == yi {
			continue
		}
		val, ok := fixed[v.Name]
		if !ok {
			return nil, nil, nil, fmt.Errorf("fuzzy: missing input %q", v.Name)
		}
		in[i] = val
	}
	surface = make([][]float64, rows)
	for r := range surface {
		surface[r] = make([]float64, cols)
		in[yi] = ys[r]
		for c := range surface[r] {
			in[xi] = xs[c]
			v, evalErr := s.EvaluateInto(sc, in)
			if evalErr != nil {
				return nil, nil, nil, evalErr
			}
			surface[r][c] = v
		}
	}
	return xs, ys, surface, nil
}
