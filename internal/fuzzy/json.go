package fuzzy

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// JSON serialization for variables and rulebases, so controllers can be
// loaded from configuration.  Membership functions are encoded with a type
// tag; infinite shoulder parameters are encoded as the strings "-inf" /
// "inf" (JSON has no infinity literal).

// jsonParam marshals a float64 allowing ±Inf.
type jsonParam float64

// MarshalJSON implements json.Marshaler.
func (p jsonParam) MarshalJSON() ([]byte, error) {
	v := float64(p)
	switch {
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsInf(v, 1):
		return []byte(`"inf"`), nil
	case math.IsNaN(v):
		return nil, fmt.Errorf("fuzzy: cannot encode NaN parameter")
	default:
		return json.Marshal(v)
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *jsonParam) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		switch strings.ToLower(s) {
		case "-inf":
			*p = jsonParam(math.Inf(-1))
			return nil
		case "inf", "+inf":
			*p = jsonParam(math.Inf(1))
			return nil
		default:
			return fmt.Errorf("fuzzy: bad parameter string %q", s)
		}
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*p = jsonParam(v)
	return nil
}

// jsonMF is the tagged wire form of a membership function.
type jsonMF struct {
	Type   string      `json:"type"`
	Params []jsonParam `json:"params"`
}

func encodeMF(mf MembershipFunc) (jsonMF, error) {
	switch m := mf.(type) {
	case Triangular:
		return jsonMF{Type: "tri", Params: []jsonParam{jsonParam(m.A), jsonParam(m.B), jsonParam(m.C)}}, nil
	case Trapezoidal:
		return jsonMF{Type: "trap", Params: []jsonParam{jsonParam(m.A), jsonParam(m.B), jsonParam(m.C), jsonParam(m.D)}}, nil
	case Gaussian:
		return jsonMF{Type: "gauss", Params: []jsonParam{jsonParam(m.Mean), jsonParam(m.Sigma)}}, nil
	case Bell:
		return jsonMF{Type: "bell", Params: []jsonParam{jsonParam(m.A), jsonParam(m.B), jsonParam(m.C)}}, nil
	case Singleton:
		return jsonMF{Type: "singleton", Params: []jsonParam{jsonParam(m.X)}}, nil
	case PiecewiseLinear:
		params := make([]jsonParam, 0, 2*len(m.X))
		for i := range m.X {
			params = append(params, jsonParam(m.X[i]), jsonParam(m.Y[i]))
		}
		return jsonMF{Type: "points", Params: params}, nil
	case Hedged:
		inner, err := encodeMF(m.MF)
		if err != nil {
			return jsonMF{}, err
		}
		// Flatten: hedge(type) with power prepended.
		return jsonMF{
			Type:   "hedge:" + inner.Type,
			Params: append([]jsonParam{jsonParam(m.Power)}, inner.Params...),
		}, nil
	default:
		return jsonMF{}, fmt.Errorf("fuzzy: cannot encode membership function %T", mf)
	}
}

func decodeMF(j jsonMF) (MembershipFunc, error) {
	need := func(n int) error {
		if len(j.Params) != n {
			return fmt.Errorf("fuzzy: %s needs %d params, got %d", j.Type, n, len(j.Params))
		}
		return nil
	}
	p := func(i int) float64 { return float64(j.Params[i]) }
	if rest, ok := strings.CutPrefix(j.Type, "hedge:"); ok {
		if len(j.Params) < 1 {
			return nil, fmt.Errorf("fuzzy: hedge needs a power parameter")
		}
		inner, err := decodeMF(jsonMF{Type: rest, Params: j.Params[1:]})
		if err != nil {
			return nil, err
		}
		return WithPower(inner, p(0)), nil
	}
	switch j.Type {
	case "tri":
		if err := need(3); err != nil {
			return nil, err
		}
		return Tri(p(0), p(1), p(2)), nil
	case "trap":
		if err := need(4); err != nil {
			return nil, err
		}
		return Trap(p(0), p(1), p(2), p(3)), nil
	case "gauss":
		if err := need(2); err != nil {
			return nil, err
		}
		return Gaussian{Mean: p(0), Sigma: p(1)}, nil
	case "bell":
		if err := need(3); err != nil {
			return nil, err
		}
		return Bell{A: p(0), B: p(1), C: p(2)}, nil
	case "singleton":
		if err := need(1); err != nil {
			return nil, err
		}
		return Singleton{X: p(0)}, nil
	case "points":
		if len(j.Params) == 0 || len(j.Params)%2 != 0 {
			return nil, fmt.Errorf("fuzzy: points needs an even, positive parameter count, got %d", len(j.Params))
		}
		var pl PiecewiseLinear
		for i := 0; i < len(j.Params); i += 2 {
			pl.X = append(pl.X, p(i))
			pl.Y = append(pl.Y, p(i+1))
		}
		return pl, nil
	default:
		return nil, fmt.Errorf("fuzzy: unknown membership type %q", j.Type)
	}
}

// jsonTerm and jsonVariable are the wire forms.
type jsonTerm struct {
	Name string `json:"name"`
	MF   jsonMF `json:"mf"`
}

type jsonVariable struct {
	Name  string     `json:"name"`
	Min   jsonParam  `json:"min"`
	Max   jsonParam  `json:"max"`
	Terms []jsonTerm `json:"terms"`
}

// MarshalJSON implements json.Marshaler for Variable.
func (v *Variable) MarshalJSON() ([]byte, error) {
	jv := jsonVariable{
		Name: v.Name,
		Min:  jsonParam(v.Min),
		Max:  jsonParam(v.Max),
	}
	for _, t := range v.Terms {
		mf, err := encodeMF(t.MF)
		if err != nil {
			return nil, fmt.Errorf("term %q: %w", t.Name, err)
		}
		jv.Terms = append(jv.Terms, jsonTerm{Name: t.Name, MF: mf})
	}
	return json.Marshal(jv)
}

// UnmarshalJSON implements json.Unmarshaler for Variable; the decoded
// variable is validated.
func (v *Variable) UnmarshalJSON(data []byte) error {
	var jv jsonVariable
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	out := Variable{Name: jv.Name, Min: float64(jv.Min), Max: float64(jv.Max)}
	for _, jt := range jv.Terms {
		mf, err := decodeMF(jt.MF)
		if err != nil {
			return fmt.Errorf("term %q: %w", jt.Name, err)
		}
		out.Terms = append(out.Terms, Term{Name: jt.Name, MF: mf})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*v = out
	return nil
}

// SystemConfig is a fully serializable description of an inference system:
// variables plus rules in the text DSL.
type SystemConfig struct {
	Inputs []*Variable `json:"inputs"`
	Output *Variable   `json:"output"`
	Rules  []string    `json:"rules"`
}

// NewSystemConfig captures an existing system's structure.
func NewSystemConfig(s *System) SystemConfig {
	cfg := SystemConfig{
		Inputs: s.Inputs(),
		Output: s.Output(),
	}
	for _, r := range s.Rules().Rules {
		cfg.Rules = append(cfg.Rules, r.String())
	}
	return cfg
}

// Build compiles the configuration into a System with the given operator
// options (operators are code, not configuration).
func (c SystemConfig) Build(opts Options) (*System, error) {
	var rb RuleBase
	for i, src := range c.Rules {
		r, err := ParseRule(src)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i+1, err)
		}
		rb.Add(r)
	}
	return NewSystem(c.Output, rb, opts, c.Inputs...)
}

// MarshalSystem serializes a system's structure to JSON.
func MarshalSystem(s *System) ([]byte, error) {
	return json.MarshalIndent(NewSystemConfig(s), "", "  ")
}

// UnmarshalSystem decodes and compiles a system from JSON.
func UnmarshalSystem(data []byte, opts Options) (*System, error) {
	var cfg SystemConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, err
	}
	return cfg.Build(opts)
}
