package fuzzy

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// tipperSystem builds the classic two-input "tipper" system used as an
// engine fixture: service and food quality → tip percentage.
func tipperSystem(t *testing.T, opts Options) *System {
	t.Helper()
	service := MustVariable("service", 0, 10,
		Term{"poor", ShoulderLeft(0, 5)},
		Term{"good", Tri(0, 5, 10)},
		Term{"excellent", ShoulderRight(5, 10)},
	)
	food := MustVariable("food", 0, 10,
		Term{"rancid", ShoulderLeft(0, 5)},
		Term{"delicious", ShoulderRight(5, 10)},
	)
	tip := MustVariable("tip", 0, 30,
		Term{"cheap", Tri(0, 5, 10)},
		Term{"average", Tri(10, 15, 20)},
		Term{"generous", Tri(20, 25, 30)},
	)
	rules, err := ParseRules(`
		IF service IS poor OR food IS rancid THEN tip IS cheap
		IF service IS good THEN tip IS average
		IF service IS excellent OR food IS delicious THEN tip IS generous
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(tip, rules, opts, service, food)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemRejectsBadConfigs(t *testing.T) {
	v := MustVariable("a", 0, 1, Term{"lo", ShoulderLeft(0, 1)})
	out := MustVariable("y", 0, 1, Term{"lo", ShoulderLeft(0, 1)})
	okRule := Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "lo"}}
	var okRB RuleBase
	okRB.Add(okRule)

	cases := []struct {
		name string
		fn   func() (*System, error)
	}{
		{"nil output", func() (*System, error) { return NewSystem(nil, okRB, Options{}, v) }},
		{"no inputs", func() (*System, error) { return NewSystem(out, okRB, Options{}) }},
		{"nil input", func() (*System, error) { return NewSystem(out, okRB, Options{}, nil) }},
		{"empty rulebase", func() (*System, error) { return NewSystem(out, RuleBase{}, Options{}, v) }},
		{"duplicate inputs", func() (*System, error) { return NewSystem(out, okRB, Options{}, v, v) }},
		{"input shadows output", func() (*System, error) {
			y2 := MustVariable("y", 0, 1, Term{"lo", ShoulderLeft(0, 1)})
			return NewSystem(out, okRB, Options{}, y2)
		}},
		{"invalid rule", func() (*System, error) {
			var rb RuleBase
			rb.Add(Rule{If: []Clause{{Var: "nope", Term: "lo"}}, Then: Clause{Var: "y", Term: "lo"}})
			return NewSystem(out, rb, Options{}, v)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMustSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSystem did not panic")
		}
	}()
	out := MustVariable("y", 0, 1, Term{"lo", ShoulderLeft(0, 1)})
	MustSystem(out, RuleBase{}, Options{})
}

func TestEvaluateMissingInput(t *testing.T) {
	sys := tipperSystem(t, Options{})
	if _, err := sys.Evaluate(map[string]float64{"service": 5}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEvaluateKnownPoints(t *testing.T) {
	sys := tipperSystem(t, Options{Defuzzifier: Centroid{}})
	// Terrible service and food: only "cheap" fires fully.
	low, err := sys.Evaluate(map[string]float64{"service": 0, "food": 0})
	if err != nil {
		t.Fatal(err)
	}
	if low < 3 || low > 7 {
		t.Errorf("worst-case tip = %g, want ≈ 5 (cheap centroid)", low)
	}
	// Perfect service and food.
	high, err := sys.Evaluate(map[string]float64{"service": 10, "food": 10})
	if err != nil {
		t.Fatal(err)
	}
	if high < 23 || high > 27 {
		t.Errorf("best-case tip = %g, want ≈ 25 (generous centroid)", high)
	}
	// Mid everything: "good" dominates.
	mid, err := sys.Evaluate(map[string]float64{"service": 5, "food": 5})
	if err != nil {
		t.Fatal(err)
	}
	if mid < 12 || mid > 18 {
		t.Errorf("mid-case tip = %g, want ≈ 15", mid)
	}
	if !(low < mid && mid < high) {
		t.Errorf("tips not ordered: %g, %g, %g", low, mid, high)
	}
}

func TestEvaluateMonotoneInService(t *testing.T) {
	sys := tipperSystem(t, Options{})
	prev := -1.0
	for s := 0.0; s <= 10; s += 0.25 {
		v, err := sys.Evaluate(map[string]float64{"service": s, "food": 5})
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("tip not monotone in service at %g: %g -> %g", s, prev, v)
		}
		prev = v
	}
}

func TestEvaluateOutputWithinUniverse(t *testing.T) {
	defuzzers := []Defuzzifier{
		WeightedAverage{}, Centroid{}, Bisector{},
		MeanOfMaxima(), SmallestOfMaxima(), LargestOfMaxima(),
	}
	for _, d := range defuzzers {
		sys := tipperSystem(t, Options{Defuzzifier: d})
		d := d
		if err := quick.Check(func(sRaw, fRaw float64) bool {
			s := math.Mod(math.Abs(sRaw), 10)
			f := math.Mod(math.Abs(fRaw), 10)
			if math.IsNaN(s) || math.IsNaN(f) {
				return true
			}
			v, err := sys.Evaluate(map[string]float64{"service": s, "food": f})
			if err != nil {
				return false
			}
			return v >= 0 && v <= 30
		}, nil); err != nil {
			t.Errorf("defuzzifier %s: %v", d.Name(), err)
		}
	}
}

func TestEvaluateClampsOutOfRangeInputs(t *testing.T) {
	sys := tipperSystem(t, Options{})
	inRange, err := sys.Evaluate(map[string]float64{"service": 10, "food": 10})
	if err != nil {
		t.Fatal(err)
	}
	beyond, err := sys.Evaluate(map[string]float64{"service": 400, "food": 99})
	if err != nil {
		t.Fatal(err)
	}
	if inRange != beyond {
		t.Errorf("clamped evaluation differs: %g vs %g", inRange, beyond)
	}
}

func TestEvaluateTraceExplainsFirings(t *testing.T) {
	sys := tipperSystem(t, Options{})
	out, tr, err := sys.EvaluateTrace(map[string]float64{"service": 2.5, "food": 7.5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Output != out {
		t.Errorf("trace output %g != returned %g", tr.Output, out)
	}
	if len(tr.Firings) == 0 {
		t.Fatal("no rule firings recorded")
	}
	for _, f := range tr.Firings {
		if f.Strength <= 0 || f.Strength > 1 {
			t.Errorf("firing strength %g outside (0,1]", f.Strength)
		}
		if f.Index < 1 || f.Index > sys.Rules().Len() {
			t.Errorf("firing index %d out of range", f.Index)
		}
	}
	if got := tr.Fuzzified["service"]["poor"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("trace fuzzified service/poor = %g, want 0.5", got)
	}
	s := tr.String()
	for _, want := range []string{"inputs:", "fired rules:", "output activations:", "output ="} {
		if !strings.Contains(s, want) {
			t.Errorf("trace string missing %q", want)
		}
	}
}

func TestLarsenVsMamdaniDiffer(t *testing.T) {
	mamdani := tipperSystem(t, Options{Defuzzifier: Centroid{}})
	larsen := tipperSystem(t, Options{
		AndNorm: ProductNorm, Implication: ProductImplication, Defuzzifier: Centroid{},
	})
	in := map[string]float64{"service": 3.3, "food": 6.1}
	a, err := mamdani.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := larsen.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("Mamdani and Larsen agree exactly; operator options not applied")
	}
	if math.Abs(a-b) > 5 {
		t.Errorf("Mamdani %g and Larsen %g implausibly far apart", a, b)
	}
}

func TestRuleWeightScalesInfluence(t *testing.T) {
	build := func(w float64) *System {
		a := MustVariable("a", 0, 1,
			Term{"lo", ShoulderLeft(0, 1)},
			Term{"hi", ShoulderRight(0, 1)},
		)
		y := MustVariable("y", 0, 1,
			Term{"small", Tri(0, 0.25, 0.5)},
			Term{"large", Tri(0.5, 0.75, 1)},
		)
		var rb RuleBase
		rb.Add(
			Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}},
			Rule{If: []Clause{{Var: "a", Term: "hi"}}, Then: Clause{Var: "y", Term: "large"}, Weight: w},
		)
		return MustSystem(y, rb, Options{}, a)
	}
	full := build(1)
	half := build(0.5)
	in := map[string]float64{"a": 0.5}
	vFull, err := full.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	vHalf, err := half.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !(vHalf < vFull) {
		t.Errorf("down-weighted 'large' rule did not lower output: %g vs %g", vHalf, vFull)
	}
}

func TestNotClause(t *testing.T) {
	a := MustVariable("a", 0, 1,
		Term{"lo", ShoulderLeft(0, 1)},
		Term{"hi", ShoulderRight(0, 1)},
	)
	y := MustVariable("y", 0, 1,
		Term{"small", Tri(0, 0.25, 0.5)},
		Term{"large", Tri(0.5, 0.75, 1)},
	)
	var rb RuleBase
	rb.Add(Rule{If: []Clause{{Var: "a", Term: "lo", Not: true}}, Then: Clause{Var: "y", Term: "large"}})
	sys := MustSystem(y, rb, Options{}, a)
	_, tr, err := sys.EvaluateTrace(map[string]float64{"a": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// μ_lo(0.9) = 0.1, so NOT lo = 0.9.
	if len(tr.Firings) != 1 || math.Abs(tr.Firings[0].Strength-0.9) > 1e-12 {
		t.Fatalf("NOT clause strength = %v", tr.Firings)
	}
}

func TestNoRuleFiredError(t *testing.T) {
	a := MustVariable("a", 0, 10,
		Term{"lo", Tri(0, 1, 2)},
		Term{"hi", Tri(8, 9, 10)},
	)
	y := MustVariable("y", 0, 1, Term{"out", Tri(0, 0.5, 1)})
	var rb RuleBase
	rb.Add(Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "out"}})
	sys := MustSystem(y, rb, Options{}, a)
	_, err := sys.Evaluate(map[string]float64{"a": 5}) // in the coverage hole
	if !errors.Is(err, ErrNoActivation) {
		t.Fatalf("want ErrNoActivation, got %v", err)
	}
}

func TestControlSurface(t *testing.T) {
	sys := tipperSystem(t, Options{})
	xs, ys, surface, err := sys.ControlSurface("service", "food", 11, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 11 || len(ys) != 5 || len(surface) != 5 || len(surface[0]) != 11 {
		t.Fatalf("surface dims: xs=%d ys=%d rows=%d", len(xs), len(ys), len(surface))
	}
	if xs[0] != 0 || xs[10] != 10 {
		t.Errorf("xs endpoints = %g, %g", xs[0], xs[10])
	}
	// Corners ordered: worst < best.
	if !(surface[0][0] < surface[4][10]) {
		t.Errorf("surface corners not ordered: %g vs %g", surface[0][0], surface[4][10])
	}
	// Errors surface: unknown variable, tiny grid.
	if _, _, _, err := sys.ControlSurface("nope", "food", 5, 5, nil); err == nil {
		t.Error("unknown x variable accepted")
	}
	if _, _, _, err := sys.ControlSurface("service", "nope", 5, 5, nil); err == nil {
		t.Error("unknown y variable accepted")
	}
	if _, _, _, err := sys.ControlSurface("service", "food", 1, 5, nil); err == nil {
		t.Error("1-column surface accepted")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := tipperSystem(t, Options{})
	if len(sys.Inputs()) != 2 || sys.Output().Name != "tip" || sys.Rules().Len() != 3 {
		t.Error("accessors inconsistent with construction")
	}
	if sys.Options().Defuzzifier == nil || sys.Options().AndNorm == nil {
		t.Error("options defaults not resolved")
	}
}
