package fuzzy

import (
	"strings"
	"testing"
)

// twoInputFixture builds two input variables and an output for rule tests.
func twoInputFixture(t *testing.T) (inputs map[string]*Variable, inSlice []*Variable, out *Variable) {
	t.Helper()
	a := MustVariable("a", 0, 1,
		Term{"lo", ShoulderLeft(0, 0.5)},
		Term{"hi", ShoulderRight(0.5, 1)},
	)
	b := MustVariable("b", 0, 1,
		Term{"lo", ShoulderLeft(0, 0.5)},
		Term{"hi", ShoulderRight(0.5, 1)},
	)
	out = MustVariable("y", 0, 1,
		Term{"small", Tri(0, 0.25, 0.5)},
		Term{"large", Tri(0.5, 0.75, 1)},
	)
	return map[string]*Variable{"a": a, "b": b}, []*Variable{a, b}, out
}

func TestRuleValidate(t *testing.T) {
	inputs, _, out := twoInputFixture(t)
	good := Rule{
		If:   []Clause{{Var: "a", Term: "lo"}, {Var: "b", Term: "hi"}},
		Then: Clause{Var: "y", Term: "small"},
	}
	if err := good.Validate(inputs, out); err != nil {
		t.Fatalf("good rule rejected: %v", err)
	}
	bad := []Rule{
		{Then: Clause{Var: "y", Term: "small"}},                                                     // empty antecedent
		{If: []Clause{{Var: "zz", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}},              // unknown var
		{If: []Clause{{Var: "a", Term: "zz"}}, Then: Clause{Var: "y", Term: "small"}},               // unknown term
		{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "zz", Term: "small"}},              // wrong output var
		{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "zz"}},                  // unknown output term
		{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small", Not: true}},    // negated consequent
		{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}, Weight: 1.5},  // bad weight
		{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}, Weight: -0.2}, // bad weight
	}
	for i, r := range bad {
		if err := r.Validate(inputs, out); err == nil {
			t.Errorf("bad rule %d accepted: %s", i, r)
		}
	}
}

func TestRuleEffectiveWeight(t *testing.T) {
	r := Rule{}
	if r.EffectiveWeight() != 1 {
		t.Error("zero weight should default to 1")
	}
	r.Weight = 0.3
	if r.EffectiveWeight() != 0.3 {
		t.Error("explicit weight ignored")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		If:   []Clause{{Var: "a", Term: "lo"}, {Var: "b", Term: "hi", Not: true}},
		Then: Clause{Var: "y", Term: "small"},
	}
	want := "IF a IS lo AND b IS NOT hi THEN y IS small"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	r.Weight = 0.5
	if got := r.String(); !strings.HasSuffix(got, "WITH 0.5") {
		t.Errorf("weighted String() = %q", got)
	}
	r.Conn = Or
	if got := r.String(); !strings.Contains(got, " OR ") {
		t.Errorf("OR String() = %q", got)
	}
}

func TestRuleBaseValidateConflict(t *testing.T) {
	inputs, _, out := twoInputFixture(t)
	var rb RuleBase
	rb.Add(
		Rule{If: []Clause{{Var: "a", Term: "lo"}, {Var: "b", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}},
		Rule{If: []Clause{{Var: "b", Term: "lo"}, {Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "large"}},
	)
	err := rb.Validate(inputs, out)
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("conflicting rules not detected: %v", err)
	}
}

func TestRuleBaseValidateAllowsDuplicateAgreement(t *testing.T) {
	inputs, _, out := twoInputFixture(t)
	var rb RuleBase
	r := Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}}
	rb.Add(r, r)
	if err := rb.Validate(inputs, out); err != nil {
		t.Fatalf("agreeing duplicates rejected: %v", err)
	}
}

func TestMissingCombinationsComplete(t *testing.T) {
	_, inSlice, _ := twoInputFixture(t)
	var rb RuleBase
	for _, ta := range []string{"lo", "hi"} {
		for _, tb := range []string{"lo", "hi"} {
			rb.Add(Rule{
				If:   []Clause{{Var: "a", Term: ta}, {Var: "b", Term: tb}},
				Then: Clause{Var: "y", Term: "small"},
			})
		}
	}
	if missing := rb.MissingCombinations(inSlice); len(missing) != 0 {
		t.Errorf("complete grid reports missing: %v", missing)
	}
}

func TestMissingCombinationsDetectsHoles(t *testing.T) {
	_, inSlice, _ := twoInputFixture(t)
	var rb RuleBase
	rb.Add(Rule{
		If:   []Clause{{Var: "a", Term: "lo"}, {Var: "b", Term: "lo"}},
		Then: Clause{Var: "y", Term: "small"},
	})
	missing := rb.MissingCombinations(inSlice)
	if len(missing) != 3 {
		t.Fatalf("want 3 missing combos, got %v", missing)
	}
}

func TestMissingCombinationsIgnoresPartialRules(t *testing.T) {
	_, inSlice, _ := twoInputFixture(t)
	var rb RuleBase
	// A one-clause rule does not cover any full-grid combination.
	rb.Add(Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}})
	if missing := rb.MissingCombinations(inSlice); len(missing) != 4 {
		t.Errorf("want 4 missing combos, got %d", len(missing))
	}
}

func TestRuleBaseString(t *testing.T) {
	var rb RuleBase
	rb.Add(Rule{If: []Clause{{Var: "a", Term: "lo"}}, Then: Clause{Var: "y", Term: "small"}})
	s := rb.String()
	if !strings.Contains(s, "1: IF a IS lo THEN y IS small") {
		t.Errorf("RuleBase.String() = %q", s)
	}
}
